#include "comm/topology.hpp"

#include <algorithm>
#include <cmath>
#include <map>

namespace optimus::comm {

Arrangement parse_arrangement(const std::string& name) {
  if (name == "naive") return Arrangement::kNaive;
  if (name == "bunched") return Arrangement::kBunched;
  OPT_CHECK(false, "unknown arrangement '" << name << "' (want naive|bunched)");
}

namespace {

// Largest factor of n that is <= sqrt(n): gives the most-square node tile.
int square_factor(int n) {
  int best = 1;
  for (int f = 1; f * f <= n; ++f) {
    if (n % f == 0) best = f;
  }
  return best;
}

}  // namespace

Topology::Topology(int world_size, int gpus_per_node, Arrangement arrangement, int mesh_q)
    : world_size_(world_size), gpus_per_node_(gpus_per_node), arrangement_(arrangement) {
  OPT_CHECK(world_size >= 1, "world_size " << world_size);
  OPT_CHECK(gpus_per_node >= 1, "gpus_per_node " << gpus_per_node);
  node_of_.resize(world_size);

  const bool mesh = mesh_q > 0;
  if (mesh) {
    OPT_CHECK(mesh_q * mesh_q == world_size,
              "mesh_q " << mesh_q << " squared != world " << world_size);
  }

  if (arrangement == Arrangement::kBunched && mesh) {
    // Tile the q×q mesh with tr×tc node tiles (tr·tc == gpus_per_node) so each
    // node holds a contiguous sub-square (Fig. 8b). If the tile does not
    // divide the mesh side, fall back to naive packing.
    const int tr = square_factor(gpus_per_node);
    const int tc = gpus_per_node / tr;
    if (mesh_q % tr == 0 && mesh_q % tc == 0) {
      const int tiles_per_row = mesh_q / tc;
      for (int rank = 0; rank < world_size; ++rank) {
        const int row = rank / mesh_q;
        const int col = rank % mesh_q;
        node_of_[rank] = (row / tr) * tiles_per_row + (col / tc);
      }
      num_nodes_ = (world_size + gpus_per_node - 1) / gpus_per_node;
      return;
    }
  }

  for (int rank = 0; rank < world_size; ++rank) node_of_[rank] = rank / gpus_per_node;
  num_nodes_ = (world_size + gpus_per_node - 1) / gpus_per_node;
}

bool Topology::single_node(const std::vector<int>& group) const {
  OPT_CHECK(!group.empty(), "empty group");
  const int node = node_of(group[0]);
  return std::all_of(group.begin(), group.end(),
                     [&](int r) { return node_of(r) == node; });
}

int Topology::max_members_per_node(const std::vector<int>& group) const {
  std::map<int, int> counts;
  for (int r : group) counts[node_of(r)] += 1;
  int mx = 0;
  for (const auto& [node, c] : counts) mx = std::max(mx, c);
  return mx;
}

MachineParams MachineParams::unit_cost() {
  MachineParams p;
  p.alpha = 0.0;
  p.beta_intra = 1.0;  // one "unit" per byte; callers divide by sizeof(T)
  p.beta_inter = 1.0;
  p.flop_rate = 1.0e30;  // compute is free in unit-cost validation runs
  return p;
}

double CostModel::beta_eff(const std::vector<int>& group) const {
  if (group.size() <= 1) return 0.0;
  if (topo_->single_node(group)) return params_.beta_intra;
  // Pipelined-tree contention model: a node hosting m members of this group
  // serves gpn/m concurrently-active sibling groups through its one uplink,
  // but a group with m local members can overlap its inter-node hop with the
  // siblings' intra-node hops, recovering a factor m. Net NIC multiplexing:
  // gpn / m². This reproduces both Fig. 8 (naive columns, m = 1 → 4× penalty)
  // and the paper's measured bunched runs (m = 2 → contention-free).
  const int members = topo_->max_members_per_node(group);
  const double contention = static_cast<double>(topo_->gpus_per_node()) /
                            static_cast<double>(members * members);
  return params_.beta_inter * std::max(1.0, contention);
}

double CostModel::tree_time(const std::vector<int>& group, std::uint64_t bytes) const {
  if (group.size() <= 1) return 0.0;
  const int rounds = log2_ceil(static_cast<int>(group.size()));
  return rounds * (params_.alpha + beta_eff(group) * static_cast<double>(bytes));
}

CostModel::TreePlan CostModel::tree_plan(const std::vector<int>& group,
                                         std::uint64_t bytes) const {
  TreePlan plan;
  plan.time = tree_time(group, bytes);
  if (group.size() <= 1) return plan;
  const int depth = log2_ceil(static_cast<int>(group.size()));
  // Chunking only pays when the tree has at least two rounds (a one-round
  // "tree" is a single hop — no pipeline to fill) and the payload is large
  // enough that per-chunk latency does not dominate. α == 0 models (the
  // unit-cost validation setup) keep the closed-form time exactly.
  constexpr std::uint64_t kMinChunkedBytes = 64 * 1024;
  constexpr std::uint64_t kMinChunkBytes = 16 * 1024;
  constexpr int kMaxChunks = 16;
  if (depth < 2 || params_.alpha <= 0.0 || bytes < kMinChunkedBytes) return plan;
  const double beta = beta_eff(group);
  // Minimise (C + d − 1)·(α + β·B/C) over C: C* = sqrt((d−1)·β·B/α).
  const double c_star =
      std::sqrt((depth - 1) * beta * static_cast<double>(bytes) / params_.alpha);
  const int cap = static_cast<int>(
      std::min<std::uint64_t>(kMaxChunks, bytes / kMinChunkBytes));
  const int chunks =
      std::max(1, std::min(cap, static_cast<int>(std::lround(c_star))));
  const double chunked =
      (chunks + depth - 1) *
      (params_.alpha + beta * static_cast<double>(bytes) / chunks);
  if (chunks > 1 && chunked < plan.time) {
    plan.chunks = chunks;
    plan.time = chunked;
  }
  return plan;
}

double CostModel::ring_allreduce_time(const std::vector<int>& group,
                                      std::uint64_t bytes) const {
  const auto g = static_cast<double>(group.size());
  if (group.size() <= 1) return 0.0;
  return 2.0 * (g - 1.0) *
         (params_.alpha + beta_eff(group) * static_cast<double>(bytes) / g);
}

double CostModel::ring_allgather_time(const std::vector<int>& group,
                                      std::uint64_t total_bytes) const {
  const auto g = static_cast<double>(group.size());
  if (group.size() <= 1) return 0.0;
  return (g - 1.0) *
         (params_.alpha + beta_eff(group) * static_cast<double>(total_bytes) / g);
}

double CostModel::ring_reducescatter_time(const std::vector<int>& group,
                                          std::uint64_t total_bytes) const {
  return ring_allgather_time(group, total_bytes);
}

double CostModel::p2p_time(int src, int dst, std::uint64_t bytes) const {
  const double beta =
      topo_->node_of(src) == topo_->node_of(dst) ? params_.beta_intra : params_.beta_inter;
  return params_.alpha + beta * static_cast<double>(bytes);
}

int log2_ceil(int n) {
  OPT_CHECK(n >= 1, "log2_ceil(" << n << ")");
  int rounds = 0;
  int reach = 1;
  while (reach < n) {
    reach *= 2;
    ++rounds;
  }
  return rounds;
}

}  // namespace optimus::comm
