#pragma once

// Launches a simulated cluster: one std::thread per device, each with its own
// DeviceContext (memory/flop accounting), SimClock and CommStats, connected by
// a shared Fabric.
//
//   comm::Cluster cluster(p, topology, machine_params);
//   comm::Cluster::Report report = cluster.run([&](comm::Context& ctx) {
//     ... ctx.world.all_reduce(...) ...
//   });
//
// The body runs on every rank. Exceptions thrown by any rank are captured and
// the first one is rethrown from run() after all threads join (a failed rank
// would deadlock peers blocked in collectives, so failures in the body should
// be rare and fatal; tests exercising failure paths use single-rank groups).

#include <functional>
#include <memory>
#include <vector>

#include "comm/communicator.hpp"
#include "comm/fabric.hpp"

namespace optimus::comm {

/// Everything a device body needs, handed to the user callback.
struct Context {
  Communicator world;
  SimClock& clock;
  tensor::DeviceContext& device;
  const CostModel& cost;
  int rank;
  int size;
};

class Cluster {
 public:
  struct RankReport {
    double sim_time = 0;        // simulated seconds at body exit
    double comm_time = 0;       // simulated seconds spent in collectives
    std::uint64_t mults = 0;    // scalar multiplications executed
    std::uint64_t peak_bytes = 0;
    std::uint64_t live_bytes = 0;  // should be ~0 after clean teardown
    std::uint64_t alloc_count = 0;
    CommStats stats;
    UtilBreakdown util;  // where sim_time went: compute/align_wait/transfer/idle
  };

  struct Report {
    std::vector<RankReport> ranks;

    double max_sim_time() const;
    double max_comm_time() const;
    std::uint64_t max_peak_bytes() const;
    std::uint64_t total_mults() const;
    /// Sum over ranks of the Table-1 weighted communication units.
    double total_weighted_comm() const;
  };

  Cluster(int world_size, const Topology& topology, const MachineParams& params);

  int world_size() const { return world_size_; }
  const CostModel& cost_model() const { return cost_; }

  /// Arms deterministic fault injection (fabric.hpp) for subsequent run()s.
  void set_fault_plan(const FaultPlan& plan) { fault_plan_ = plan; }

  /// Runs `body` on every rank and gathers per-rank reports. If any rank
  /// throws, the *root* error is rethrown: FabricAborted unwinds from peers of
  /// a faulted rank are reported only when no rank holds the original fault.
  Report run(const std::function<void(Context&)>& body);

 private:
  int world_size_;
  Topology topology_;
  CostModel cost_;
  FaultPlan fault_plan_;
};

/// One-shot convenience: build a cluster with a default single-node-ish
/// topology and run the body. Used heavily by tests.
Cluster::Report run_cluster(int world_size, const std::function<void(Context&)>& body);

/// Same, with deterministic fault injection armed.
Cluster::Report run_cluster(int world_size, const FaultPlan& plan,
                            const std::function<void(Context&)>& body);

}  // namespace optimus::comm
