#include "comm/cluster.hpp"

#include <algorithm>
#include <exception>
#include <thread>

#include "kernel/thread_pool.hpp"
#include "obs/flight.hpp"
#include "obs/trace.hpp"

namespace optimus::comm {

double Cluster::Report::max_sim_time() const {
  double t = 0;
  for (const auto& r : ranks) t = std::max(t, r.sim_time);
  return t;
}

double Cluster::Report::max_comm_time() const {
  double t = 0;
  for (const auto& r : ranks) t = std::max(t, r.comm_time);
  return t;
}

std::uint64_t Cluster::Report::max_peak_bytes() const {
  std::uint64_t b = 0;
  for (const auto& r : ranks) b = std::max(b, r.peak_bytes);
  return b;
}

std::uint64_t Cluster::Report::total_mults() const {
  std::uint64_t m = 0;
  for (const auto& r : ranks) m += r.mults;
  return m;
}

double Cluster::Report::total_weighted_comm() const {
  double w = 0;
  for (const auto& r : ranks) w += r.stats.total_weighted();
  return w;
}

Cluster::Cluster(int world_size, const Topology& topology, const MachineParams& params)
    : world_size_(world_size), topology_(topology), cost_(topology_, params) {
  OPT_CHECK(topology.world_size() == world_size,
            "topology world " << topology.world_size() << " != cluster world " << world_size);
}

Cluster::Report Cluster::run(const std::function<void(Context&)>& body) {
  // Register the simulated devices against the shared kernel thread budget:
  // while they run, each device's intra-op kernels get at most
  // OPTIMUS_KERNEL_THREADS / world_size workers, so device threads × kernel
  // workers never oversubscribe the host.
  kernel::ActiveDevicesGuard devices_guard(world_size_);
  Fabric fabric(world_size_);
  if (fault_plan_.active()) fabric.set_fault_plan(fault_plan_);
  const std::uint64_t world_comm_id = fabric.next_comm_id();
  std::vector<int> world_group(world_size_);
  for (int i = 0; i < world_size_; ++i) world_group[i] = i;

  // Per-rank state lives on the heap so threads never share cache lines by
  // accident and reports outlive the threads.
  struct RankState {
    tensor::DeviceContext device;
    SimClock clock;
    CommStats stats;
    std::exception_ptr error;
  };
  std::vector<std::unique_ptr<RankState>> states;
  states.reserve(world_size_);
  for (int i = 0; i < world_size_; ++i) states.push_back(std::make_unique<RankState>());

  std::vector<std::thread> threads;
  threads.reserve(world_size_);
  for (int rank = 0; rank < world_size_; ++rank) {
    threads.emplace_back([&, rank] {
      RankState& st = *states[rank];
      tensor::ScopedDevice scoped(st.device);
      // Register this thread as simulated device `rank` with the tracer. The
      // sim-time callback extends the lazily-drained clock by the compute that
      // has accumulated since the last collective, so span timestamps advance
      // continuously instead of jumping at drain points.
      obs::ScopedTrack track(rank, [&st, this] {
        return st.clock.now() + cost_.compute_time(st.device.pending_mults());
      });
      try {
        Context ctx{
            Communicator(fabric, world_comm_id, world_group, rank, st.clock, cost_, st.stats),
            st.clock,
            st.device,
            cost_,
            rank,
            world_size_,
        };
        ctx.world.set_label("world");
        obs::Span span("cluster", "rank_body");
        body(ctx);
        // Account compute done after the last collective.
        st.clock.drain_compute(cost_);
      } catch (...) {
        // Leave the post-mortem artifact while this thread still carries the
        // rank's track (flight dumps are keyed by obs::current_rank()).
        obs::flight_write_postmortem();
        st.error = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();

  // Prefer the root cause: when one rank hits a fault and aborts the fabric,
  // its peers unwind with FabricAborted — rethrowing those would mask the
  // actual diagnostic.
  std::exception_ptr first_error, first_root_error;
  for (const auto& st : states) {
    if (!st->error) continue;
    if (!first_error) first_error = st->error;
    if (!first_root_error) {
      try {
        std::rethrow_exception(st->error);
      } catch (const FabricAborted&) {
        // secondary unwind; keep scanning for the original fault
      } catch (...) {
        first_root_error = st->error;
      }
    }
  }
  if (first_root_error) std::rethrow_exception(first_root_error);
  if (first_error) std::rethrow_exception(first_error);

  Report report;
  report.ranks.resize(world_size_);
  for (int rank = 0; rank < world_size_; ++rank) {
    RankState& st = *states[rank];
    RankReport& r = report.ranks[rank];
    r.sim_time = st.clock.now();
    r.comm_time = st.stats.total_time();
    r.mults = st.device.mults_total();
    r.peak_bytes = st.device.bytes_peak();
    r.live_bytes = st.device.bytes_live();
    r.alloc_count = st.device.alloc_count();
    r.stats = st.stats;
    r.util = st.clock.util();
  }
  return report;
}

Cluster::Report run_cluster(int world_size, const std::function<void(Context&)>& body) {
  Topology topo(world_size, /*gpus_per_node=*/4, Arrangement::kBunched,
                /*mesh_q=*/0);
  Cluster cluster(world_size, topo, MachineParams{});
  return cluster.run(body);
}

Cluster::Report run_cluster(int world_size, const FaultPlan& plan,
                            const std::function<void(Context&)>& body) {
  Topology topo(world_size, /*gpus_per_node=*/4, Arrangement::kBunched,
                /*mesh_q=*/0);
  Cluster cluster(world_size, topo, MachineParams{});
  cluster.set_fault_plan(plan);
  return cluster.run(body);
}

}  // namespace optimus::comm
