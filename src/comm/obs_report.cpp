#include "comm/obs_report.hpp"

#include <fstream>

#include "kernel/thread_pool.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace optimus::comm {

namespace {

obs::Json op_json(const CommStats::Op& op) {
  obs::Json j = obs::Json::object();
  j.set("calls", op.calls);
  j.set("elems", op.elems);
  j.set("bytes", op.bytes);
  j.set("weighted", op.weighted);
  j.set("time_s", op.time);
  return j;
}

obs::Json comm_json(const CommStats& s) {
  obs::Json j = obs::Json::object();
  j.set("broadcast", op_json(s.broadcast));
  j.set("reduce", op_json(s.reduce));
  j.set("allreduce", op_json(s.allreduce));
  j.set("allgather", op_json(s.allgather));
  j.set("reducescatter", op_json(s.reducescatter));
  j.set("alltoall", op_json(s.alltoall));
  j.set("barrier", op_json(s.barrier));
  obs::Json p2p = obs::Json::object();
  p2p.set("messages", s.p2p_messages);
  p2p.set("bytes", s.p2p_bytes);
  p2p.set("time_s", s.p2p_time);
  j.set("p2p", p2p);
  j.set("total_bytes", s.total_bytes());
  j.set("total_weighted", s.total_weighted());
  j.set("total_time_s", s.total_time());
  return j;
}

obs::Json util_json(const Cluster::RankReport& rr) {
  const UtilBreakdown& u = rr.util;
  obs::Json j = obs::Json::object();
  j.set("compute_s", u.compute);
  j.set("align_wait_s", u.align_wait);
  j.set("transfer_s", u.transfer);
  j.set("idle_s", u.idle);
  const double total = rr.sim_time;
  const auto frac = [&](double v) { return total > 0 ? v / total : 0.0; };
  j.set("compute_frac", frac(u.compute));
  j.set("align_wait_frac", frac(u.align_wait));
  j.set("transfer_frac", frac(u.transfer));
  j.set("idle_frac", frac(u.idle));
  j.set("accounted_s", u.accounted());
  return j;
}

}  // namespace

obs::Json metrics_json(const Cluster::Report& report, const MetricsReportOptions& options) {
  obs::Json doc = obs::Json::object();
  doc.set("world_size", static_cast<std::uint64_t>(report.ranks.size()));

  obs::Json ranks = obs::Json::array();
  CommStats::Op sum[7];
  const char* kind_names[7] = {"broadcast", "reduce",        "allreduce", "allgather",
                               "reducescatter", "alltoall", "barrier"};
  for (std::size_t r = 0; r < report.ranks.size(); ++r) {
    const Cluster::RankReport& rr = report.ranks[r];
    obs::Json j = obs::Json::object();
    j.set("rank", static_cast<std::uint64_t>(r));
    j.set("sim_time_s", rr.sim_time);
    j.set("comm_time_s", rr.comm_time);
    j.set("mults", rr.mults);
    j.set("peak_bytes", rr.peak_bytes);
    j.set("live_bytes", rr.live_bytes);
    j.set("alloc_count", rr.alloc_count);
    j.set("comm", comm_json(rr.stats));
    j.set("utilization", util_json(rr));
    ranks.push_back(std::move(j));
    const CommStats::Op* ops[7] = {&rr.stats.broadcast,     &rr.stats.reduce,
                                   &rr.stats.allreduce,     &rr.stats.allgather,
                                   &rr.stats.reducescatter, &rr.stats.alltoall,
                                   &rr.stats.barrier};
    for (int k = 0; k < 7; ++k) {
      sum[k].calls += ops[k]->calls;
      sum[k].elems += ops[k]->elems;
      sum[k].bytes += ops[k]->bytes;
      sum[k].weighted += ops[k]->weighted;
      sum[k].time += ops[k]->time;
    }
  }
  doc.set("ranks", std::move(ranks));

  obs::Json totals = obs::Json::object();
  obs::Json by_kind = obs::Json::object();
  for (int k = 0; k < 7; ++k) {
    obs::Json j = op_json(sum[k]);
    by_kind.set(kind_names[k], std::move(j));
  }
  totals.set("comm_by_kind", std::move(by_kind));
  totals.set("max_sim_time_s", report.max_sim_time());
  totals.set("max_comm_time_s", report.max_comm_time());
  totals.set("max_peak_bytes", report.max_peak_bytes());
  totals.set("total_mults", report.total_mults());
  totals.set("total_weighted_comm", report.total_weighted_comm());
  doc.set("totals", std::move(totals));

  if (options.include_pool) {
    const kernel::PoolStats pool = kernel::pool_stats();
    obs::Json pj = obs::Json::object();
    pj.set("regions", pool.regions);
    pj.set("inline_regions", pool.inline_regions);
    pj.set("chunks", pool.chunks);
    pj.set("worker_chunks", pool.worker_chunks);
    pj.set("worker_share", pool.worker_share());
    // Submit waits are summed across concurrent device submitters, so the
    // aggregate can legitimately exceed the run's wall time (p devices blocked
    // on the shared pool at once each contribute their own wait). The name says
    // so; avg_region_wait_ms is the per-region mean, comparable to wall time.
    pj.set("aggregate_submit_wait_ms", static_cast<double>(pool.submit_wait_ns) / 1e6);
    pj.set("avg_region_wait_ms", pool.avg_region_wait_ns() / 1e6);
    pj.set("barrier_crossings", pool.barrier_crossings);
    pj.set("parks", pool.parks);
    pj.set("workers_spawned", pool.workers_spawned);
    doc.set("pool", std::move(pj));
  }

  if (options.include_spans && obs::enabled()) doc.set("spans", obs::span_summary_json());
  if (options.include_registry && obs::metrics_enabled()) {
    doc.set("metrics", obs::metrics_snapshot_json());
  }
  return doc;
}

obs::Json metrics_json(const Cluster::Report& report, bool include_spans) {
  MetricsReportOptions options;
  options.include_spans = include_spans;
  return metrics_json(report, options);
}

void write_metrics(const std::string& path, const Cluster::Report& report,
                   bool include_spans) {
  MetricsReportOptions options;
  options.include_spans = include_spans;
  write_metrics(path, report, options);
}

void write_metrics(const std::string& path, const Cluster::Report& report,
                   const MetricsReportOptions& options) {
  std::ofstream out(path);
  OPT_CHECK(out.good(), "cannot open metrics output " << path);
  out << metrics_json(report, options).dump(2) << "\n";
}

}  // namespace optimus::comm
