#include "comm/fabric.hpp"

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <cstring>
#include <sstream>
#include <thread>

#include "obs/flight.hpp"
#include "util/rng.hpp"

namespace optimus::comm {

namespace {

thread_local const char* t_current_op = nullptr;

/// FNV-1a over a byte range; the in-flight integrity check for poison mode.
std::uint64_t fnv1a(const void* data, std::size_t bytes) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= 0x100000001B3ULL;
  }
  return h;
}

/// Maps a 64-bit hash to [0, 1) and compares against a probability.
bool draw_hits(std::uint64_t h, double prob) {
  return prob > 0 && static_cast<double>(h >> 11) * 0x1.0p-53 < prob;
}

}  // namespace

const char* Fabric::current_op() { return t_current_op ? t_current_op : "?"; }

Fabric::OpScope::OpScope(const char* name) : prev_(t_current_op) { t_current_op = name; }
Fabric::OpScope::~OpScope() { t_current_op = prev_; }

Fabric::Fabric(int world_size) : world_size_(world_size) {
  OPT_CHECK(world_size >= 1, "world_size " << world_size);
  mailboxes_.reserve(world_size);
  for (int i = 0; i < world_size; ++i) mailboxes_.push_back(std::make_unique<Mailbox>());
}

void Fabric::set_fault_plan(const FaultPlan& plan) {
  fault_plan_ = plan;
  std::lock_guard<std::mutex> lock(fault_mu_);
  fault_counts_.clear();
}

void Fabric::abort(const std::string& reason) {
  {
    std::lock_guard<std::mutex> lock(fail_mu_);
    if (failed_.load(std::memory_order_acquire)) return;  // first reason wins
    fail_reason_ = reason;
    failed_.store(true, std::memory_order_release);
  }
  // Wake everyone blocked in recv or in a sync rendezvous so they unwind.
  for (auto& box : mailboxes_) {
    std::lock_guard<std::mutex> lock(box->mu);
    box->cv.notify_all();
  }
  {
    std::lock_guard<std::mutex> lock(sync_mu_);
    sync_cv_.notify_all();
  }
}

void Fabric::throw_if_aborted() const {
  if (!failed_.load(std::memory_order_acquire)) return;
  // Record the op THIS rank was inside — deterministic per rank, unlike the
  // first-aborter-wins fail_reason_ below, which depends on scheduling and is
  // therefore kept out of the flight dump.
  obs::flight_note_abort(current_op());
  std::lock_guard<std::mutex> lock(fail_mu_);
  throw FabricAborted("fabric aborted: " + fail_reason_);
}

std::uint64_t Fabric::fault_draw(int src, int dst, std::uint64_t tag, std::uint64_t salt) {
  // Channel identity: (src, dst, salt) mixed with the tag. Per-channel
  // occurrence counters make the n-th message of a channel a stable logical
  // coordinate, so draws are independent of thread interleaving.
  const std::uint64_t channel =
      util::mix3(tag ^ salt, (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src)) << 32) |
                                 static_cast<std::uint32_t>(dst),
                 0x0F);
  std::uint64_t occurrence;
  {
    std::lock_guard<std::mutex> lock(fault_mu_);
    occurrence = fault_counts_[channel]++;
  }
  return util::mix3(fault_plan_.seed, channel, occurrence);
}

void Fabric::send(int src, int dst, std::uint64_t tag, const void* data, std::size_t bytes,
                  double timestamp) {
  OPT_CHECK(dst >= 0 && dst < world_size_, "send to rank " << dst);
  throw_if_aborted();
  Message msg;
  msg.src = src;
  msg.tag = tag;
  msg.timestamp = timestamp;
  msg.payload.resize(bytes);
  if (bytes > 0) std::memcpy(msg.payload.data(), data, bytes);

  if (fault_plan_.active()) {
    const std::uint64_t h = fault_draw(src, dst, tag, /*salt=*/0x5E4D);
    msg.checksum = fnv1a(msg.payload.data(), msg.payload.size());
    if (draw_hits(util::mix3(h, 1, 1), fault_plan_.spike_prob)) {
      std::this_thread::sleep_for(std::chrono::microseconds(fault_plan_.spike_us));
    }
    if (bytes > 0 && draw_hits(util::mix3(h, 2, 2), fault_plan_.poison_prob)) {
      // Flip bits of one deterministic byte after checksumming: the receiver's
      // integrity check must catch it.
      msg.payload[util::mix3(h, 3, 3) % bytes] ^= std::byte{0xFF};
    }
  }

  Mailbox& box = *mailboxes_[dst];
  {
    std::lock_guard<std::mutex> lock(box.mu);
    box.messages.push_back(std::move(msg));
  }
  box.cv.notify_all();
}

void Fabric::maybe_stall(int dst, int src, std::uint64_t tag) {
  if (fault_plan_.active() && dst == fault_plan_.stall_rank) {
    const std::uint64_t h = fault_draw(src, dst, tag, /*salt=*/0x57A1);
    if (draw_hits(util::mix3(h, 4, 4), fault_plan_.stall_prob)) {
      std::this_thread::sleep_for(std::chrono::microseconds(fault_plan_.stall_us));
    }
  }
}

bool Fabric::try_consume_locked(Mailbox& box, std::unique_lock<std::mutex>& lock, int dst,
                                int src, std::uint64_t tag, void* out, std::size_t bytes,
                                double* ts) {
  const auto it = std::find_if(box.messages.begin(), box.messages.end(),
                               [&](const Message& m) { return m.src == src && m.tag == tag; });
  if (it == box.messages.end()) return false;
  OPT_CHECK(it->payload.size() == bytes,
            "recv size mismatch: got " << it->payload.size() << " bytes, want " << bytes
                                       << " (src " << src << " tag " << tag << ")");
  if (fault_plan_.active() && fnv1a(it->payload.data(), it->payload.size()) != it->checksum) {
    std::ostringstream why;
    why << "poisoned payload detected in op '" << current_op() << "' (src " << src << " -> dst "
        << dst << ", tag " << tag << ", " << bytes << " bytes)";
    lock.unlock();
    obs::flight_note_abort(current_op());
    abort(why.str());
    throw FaultError(why.str());
  }
  if (bytes > 0) std::memcpy(out, it->payload.data(), bytes);
  *ts = it->timestamp;
  box.messages.erase(it);
  return true;
}

double Fabric::recv(int dst, int src, std::uint64_t tag, void* out, std::size_t bytes) {
  OPT_CHECK(dst >= 0 && dst < world_size_, "recv at rank " << dst);
  maybe_stall(dst, src, tag);
  Mailbox& box = *mailboxes_[dst];
  std::unique_lock<std::mutex> lock(box.mu);
  for (;;) {
    throw_if_aborted();
    double ts = 0;
    if (try_consume_locked(box, lock, dst, src, tag, out, bytes, &ts)) return ts;
    box.cv.wait(lock);
  }
}

Fabric::RecvHandle Fabric::irecv(int dst, int src, std::uint64_t tag, void* out,
                                 std::size_t bytes) {
  OPT_CHECK(dst >= 0 && dst < world_size_, "irecv at rank " << dst);
  throw_if_aborted();
  RecvHandle h;
  h.dst = dst;
  h.src = src;
  h.tag = tag;
  h.out = out;
  h.bytes = bytes;
  h.done = false;
  return h;
}

bool Fabric::test(RecvHandle& h) {
  if (h.done) return true;
  Mailbox& box = *mailboxes_[h.dst];
  std::unique_lock<std::mutex> lock(box.mu);
  throw_if_aborted();
  if (!try_consume_locked(box, lock, h.dst, h.src, h.tag, h.out, h.bytes, &h.timestamp)) {
    return false;
  }
  h.done = true;
  return true;
}

double Fabric::wait(RecvHandle& h) {
  if (h.done) return h.timestamp;
  h.timestamp = recv(h.dst, h.src, h.tag, h.out, h.bytes);
  h.done = true;
  return h.timestamp;
}

Fabric::SendHandle Fabric::isend(int src, int dst, std::uint64_t tag, const void* data,
                                 std::size_t bytes, double timestamp) {
  // send() copies the payload before returning (buffered semantics), so the
  // async send is complete at the call; faults draw at the same point either
  // way, keeping plans replayable across blocking/async mixes.
  send(src, dst, tag, data, bytes, timestamp);
  return SendHandle{};
}

Fabric::SyncSlot& Fabric::slot_locked(std::uint64_t key, int group_size) {
  SyncSlot& slot = slots_[key];
  if (slot.expected == 0) {
    slot.expected = group_size;
  } else {
    OPT_CHECK(slot.expected == group_size,
              "sync key " << key << " used with group sizes " << slot.expected << " and "
                          << group_size);
  }
  return slot;
}

void Fabric::release_slot_locked(std::uint64_t key, SyncSlot& slot) {
  slot.departed += 1;
  if (slot.departed == slot.expected) slots_.erase(key);
}

double Fabric::sync_max(std::uint64_t key, int group_size, double value) {
  std::unique_lock<std::mutex> lock(sync_mu_);
  throw_if_aborted();
  SyncSlot& slot = slot_locked(key, group_size);
  slot.max_value = slot.arrived == 0 ? value : std::max(slot.max_value, value);
  slot.arrived += 1;
  if (slot.arrived == slot.expected) {
    slot.ready = true;
    sync_cv_.notify_all();
  } else {
    sync_cv_.wait(lock, [&] { return slot.ready || aborted(); });
    throw_if_aborted();
  }
  const double result = slot.max_value;
  release_slot_locked(key, slot);
  return result;
}

Fabric::SplitResult Fabric::split_sync(std::uint64_t key, int group_size, int world_rank,
                                       int color, int order_key) {
  std::unique_lock<std::mutex> lock(sync_mu_);
  throw_if_aborted();
  SyncSlot& slot = slot_locked(key, group_size);
  slot.deposits.push_back({color, order_key, world_rank});
  slot.arrived += 1;
  if (slot.arrived == slot.expected) {
    // Last arriver partitions the deposits into color groups, orders each by
    // (key, world_rank) and assigns fresh communicator ids — one id per color,
    // deterministic by sorting colors.
    std::sort(slot.deposits.begin(), slot.deposits.end());
    std::map<int, std::vector<int>> by_color;
    for (const auto& d : slot.deposits) by_color[d[0]].push_back(d[2]);
    for (const auto& [c, members] : by_color) {
      const std::uint64_t id = next_comm_id();
      for (int member : members) {
        SplitResult r;
        r.new_comm_id = id;
        r.group = members;
        slot.results[member] = std::move(r);
      }
    }
    slot.ready = true;
    sync_cv_.notify_all();
  } else {
    sync_cv_.wait(lock, [&] { return slot.ready || aborted(); });
    throw_if_aborted();
  }
  SplitResult result = slot.results.at(world_rank);
  release_slot_locked(key, slot);
  return result;
}

}  // namespace optimus::comm
