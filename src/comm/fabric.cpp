#include "comm/fabric.hpp"

#include <algorithm>
#include <cstring>

namespace optimus::comm {

Fabric::Fabric(int world_size) : world_size_(world_size) {
  OPT_CHECK(world_size >= 1, "world_size " << world_size);
  mailboxes_.reserve(world_size);
  for (int i = 0; i < world_size; ++i) mailboxes_.push_back(std::make_unique<Mailbox>());
}

void Fabric::send(int src, int dst, std::uint64_t tag, const void* data, std::size_t bytes,
                  double timestamp) {
  OPT_CHECK(dst >= 0 && dst < world_size_, "send to rank " << dst);
  Message msg;
  msg.src = src;
  msg.tag = tag;
  msg.timestamp = timestamp;
  msg.payload.resize(bytes);
  if (bytes > 0) std::memcpy(msg.payload.data(), data, bytes);
  Mailbox& box = *mailboxes_[dst];
  {
    std::lock_guard<std::mutex> lock(box.mu);
    box.messages.push_back(std::move(msg));
  }
  box.cv.notify_all();
}

double Fabric::recv(int dst, int src, std::uint64_t tag, void* out, std::size_t bytes) {
  OPT_CHECK(dst >= 0 && dst < world_size_, "recv at rank " << dst);
  Mailbox& box = *mailboxes_[dst];
  std::unique_lock<std::mutex> lock(box.mu);
  for (;;) {
    const auto it = std::find_if(box.messages.begin(), box.messages.end(),
                                 [&](const Message& m) { return m.src == src && m.tag == tag; });
    if (it != box.messages.end()) {
      OPT_CHECK(it->payload.size() == bytes,
                "recv size mismatch: got " << it->payload.size() << " bytes, want " << bytes
                                           << " (src " << src << " tag " << tag << ")");
      if (bytes > 0) std::memcpy(out, it->payload.data(), bytes);
      const double ts = it->timestamp;
      box.messages.erase(it);
      return ts;
    }
    box.cv.wait(lock);
  }
}

Fabric::SyncSlot& Fabric::slot_locked(std::uint64_t key, int group_size) {
  SyncSlot& slot = slots_[key];
  if (slot.expected == 0) {
    slot.expected = group_size;
  } else {
    OPT_CHECK(slot.expected == group_size,
              "sync key " << key << " used with group sizes " << slot.expected << " and "
                          << group_size);
  }
  return slot;
}

void Fabric::release_slot_locked(std::uint64_t key, SyncSlot& slot) {
  slot.departed += 1;
  if (slot.departed == slot.expected) slots_.erase(key);
}

double Fabric::sync_max(std::uint64_t key, int group_size, double value) {
  std::unique_lock<std::mutex> lock(sync_mu_);
  SyncSlot& slot = slot_locked(key, group_size);
  slot.max_value = slot.arrived == 0 ? value : std::max(slot.max_value, value);
  slot.arrived += 1;
  if (slot.arrived == slot.expected) {
    slot.ready = true;
    sync_cv_.notify_all();
  } else {
    sync_cv_.wait(lock, [&] { return slot.ready; });
  }
  const double result = slot.max_value;
  release_slot_locked(key, slot);
  return result;
}

Fabric::SplitResult Fabric::split_sync(std::uint64_t key, int group_size, int world_rank,
                                       int color, int order_key) {
  std::unique_lock<std::mutex> lock(sync_mu_);
  SyncSlot& slot = slot_locked(key, group_size);
  slot.deposits.push_back({color, order_key, world_rank});
  slot.arrived += 1;
  if (slot.arrived == slot.expected) {
    // Last arriver partitions the deposits into color groups, orders each by
    // (key, world_rank) and assigns fresh communicator ids — one id per color,
    // deterministic by sorting colors.
    std::sort(slot.deposits.begin(), slot.deposits.end());
    std::map<int, std::vector<int>> by_color;
    for (const auto& d : slot.deposits) by_color[d[0]].push_back(d[2]);
    for (const auto& [c, members] : by_color) {
      const std::uint64_t id = next_comm_id();
      for (int member : members) {
        SplitResult r;
        r.new_comm_id = id;
        r.group = members;
        slot.results[member] = std::move(r);
      }
    }
    slot.ready = true;
    sync_cv_.notify_all();
  } else {
    sync_cv_.wait(lock, [&] { return slot.ready; });
  }
  SplitResult result = slot.results.at(world_rank);
  release_slot_locked(key, slot);
  return result;
}

}  // namespace optimus::comm
