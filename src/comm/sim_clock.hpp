#pragma once

// Per-device simulated clock.
//
// The reproduction runs on a single host, so wall-clock time says nothing
// about the 64-GPU behaviour the paper measures. Instead each simulated
// device advances a virtual clock:
//
//   * local compute   — the tensor layer counts scalar multiplications; the
//     clock converts them to seconds via the machine's flop rate. Draining
//     happens lazily at communication boundaries, which is exactly when
//     ordering matters.
//   * collectives     — participants align to the maximum clock in the group
//     (a blocking collective cannot finish before its slowest member) and
//     advance by the CostModel's closed-form time for that collective.
//
// This is the same α-β machine model the paper uses for its analysis; see
// DESIGN.md §2 for the substitution argument.

#include "comm/topology.hpp"
#include "tensor/device_context.hpp"

namespace optimus::comm {

/// Where a rank's simulated time went, bucketed at the clock-mutation sites:
/// compute (drained mults), align_wait (blocking until the slowest collective
/// participant / a message sender catches up), transfer (modelled wire time),
/// idle (external forward jumps, e.g. a serving driver skipping to the next
/// arrival). The buckets partition elapsed time: every clock mutation lands
/// in exactly one, so accounted() == now() up to FP addition error.
struct UtilBreakdown {
  double compute = 0;
  double align_wait = 0;
  double transfer = 0;
  double idle = 0;

  double accounted() const { return compute + align_wait + transfer + idle; }
};

class SimClock {
 public:
  double now() const { return now_; }

  void advance(double seconds) {
    OPT_DCHECK(seconds >= 0, "negative time step " << seconds);
    now_ += seconds;
    util_.idle += seconds;
  }

  /// Jumps forward to `t` (idle time: nothing modelled happened in between).
  /// Jumping backwards is allowed for test harness rewinds and is not
  /// accounted.
  void set(double t) {
    if (t > now_) util_.idle += t - now_;
    now_ = t;
  }

  /// Aligns to another participant's clock — the wait a blocking collective
  /// or receive spends until its slowest peer arrives. Exact assignment
  /// (`now_ = t`, never `now_ += (t - now_)`) so alignment is bitwise
  /// identical to the pre-accounting set() and measured==predicted
  /// assertions keep holding to 0 rel err.
  void align_to(double t) {
    if (t > now_) {
      util_.align_wait += t - now_;
      now_ = t;
    }
  }

  /// Advances over modelled wire time (collective transfer phase, p2p send).
  void advance_transfer(double seconds) {
    OPT_DCHECK(seconds >= 0, "negative transfer time " << seconds);
    now_ += seconds;
    util_.transfer += seconds;
  }

  /// Converts the multiply count accumulated on this thread since the last
  /// drain into simulated seconds.
  void drain_compute(const CostModel& cost) {
    const std::uint64_t mults = tensor::DeviceContext::current().take_mults();
    if (mults > 0) {
      const double dt = cost.compute_time(mults);
      now_ += dt;
      util_.compute += dt;
    }
  }

  const UtilBreakdown& util() const { return util_; }

  void reset() {
    now_ = 0;
    util_ = UtilBreakdown{};
  }

 private:
  double now_ = 0;
  UtilBreakdown util_;
};

/// Per-rank communication statistics, in both raw and paper units.
///
/// `weighted` accumulates the Table-1 cost unit: elements × the collective's
/// β-multiplier (log₂g for tree ops, 2(g−1)/g for all-reduce, (g−1)/g for
/// all-gather / reduce-scatter). With β=1/scalar this equals modelled time,
/// which is how bench_table1_costs validates the paper's formulas.
struct CommStats {
  struct Op {
    std::uint64_t calls = 0;
    std::uint64_t elems = 0;
    std::uint64_t bytes = 0;  // elems × element size (payload volume)
    double weighted = 0;
    double time = 0;

    void record(std::uint64_t n, std::uint64_t b, double w, double t) {
      calls += 1;
      elems += n;
      bytes += b;
      weighted += w;
      time += t;
    }
  };

  Op broadcast;
  Op reduce;
  Op allreduce;
  Op allgather;
  Op reducescatter;
  Op alltoall;
  Op barrier;
  // User-level point-to-point traffic only (collective-internal transfers are
  // accounted under their collective's Op).
  std::uint64_t p2p_messages = 0;
  std::uint64_t p2p_bytes = 0;
  double p2p_time = 0;

  double total_weighted() const {
    return broadcast.weighted + reduce.weighted + allreduce.weighted + allgather.weighted +
           reducescatter.weighted + alltoall.weighted + barrier.weighted;
  }
  double total_time() const {
    return broadcast.time + reduce.time + allreduce.time + allgather.time +
           reducescatter.time + alltoall.time + barrier.time + p2p_time;
  }
  std::uint64_t total_elems() const {
    return broadcast.elems + reduce.elems + allreduce.elems + allgather.elems +
           reducescatter.elems + alltoall.elems;
  }
  std::uint64_t total_bytes() const {
    return broadcast.bytes + reduce.bytes + allreduce.bytes + allgather.bytes +
           reducescatter.bytes + alltoall.bytes + p2p_bytes;
  }

  void reset() { *this = CommStats{}; }
};

}  // namespace optimus::comm
