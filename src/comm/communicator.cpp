#include "comm/communicator.hpp"

namespace optimus::comm {

Communicator::Communicator(Fabric& fabric, std::uint64_t comm_id, std::vector<int> group,
                           int world_rank, SimClock& clock, const CostModel& cost,
                           CommStats& stats)
    : fabric_(&fabric),
      comm_id_(comm_id),
      group_(std::move(group)),
      rank_(-1),
      clock_(&clock),
      cost_(&cost),
      stats_(&stats) {
  OPT_CHECK(!group_.empty(), "communicator group is empty");
  for (std::size_t i = 0; i < group_.size(); ++i) {
    if (group_[i] == world_rank) {
      rank_ = static_cast<int>(i);
      break;
    }
  }
  OPT_CHECK(rank_ >= 0, "world rank " << world_rank << " not in communicator group");
}

CollectiveTiming Communicator::begin_collective(std::uint64_t seq, double dt) {
  clock_->drain_compute(*cost_);
  CollectiveTiming t;
  t.entry_local = clock_->now();
  t.entry_aligned = fabric_->sync_max(sync_key(seq), size(), t.entry_local);
  t.dt = dt;
  clock_->set(t.entry_aligned + dt);
  return t;
}

Communicator Communicator::split(int color, int key) {
  const std::uint64_t seq = next_seq();
  // The split itself is an out-of-band control operation; it moves no modelled
  // bytes (real backends amortise communicator construction outside the
  // training loop).
  Fabric::SplitResult r =
      fabric_->split_sync(sync_key(seq), size(), world_rank(), color, key);
  return Communicator(*fabric_, r.new_comm_id, std::move(r.group), world_rank(), *clock_,
                      *cost_, *stats_);
}

void Communicator::barrier() {
  const std::uint64_t seq = next_seq();
  if (size() == 1) return;
  const double dt = 2.0 * log2_ceil(size()) * cost_->params().alpha;
  Fabric::OpScope op_scope("barrier");
  obs::Span span("comm", "barrier");
  const CollectiveTiming ct = begin_collective(seq, dt);
  annotate_span(span, 0, ct);
  stats_->barrier.record(0, 0, 0.0, ct.dt);
  // The sync_max rendezvous inside begin_collective already provides the
  // synchronisation semantics; no data movement is needed.
}

}  // namespace optimus::comm
