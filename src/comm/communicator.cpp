#include "comm/communicator.hpp"

#include "obs/flight.hpp"

namespace optimus::comm {

Communicator::Communicator(Fabric& fabric, std::uint64_t comm_id, std::vector<int> group,
                           int world_rank, SimClock& clock, const CostModel& cost,
                           CommStats& stats)
    : fabric_(&fabric),
      comm_id_(comm_id),
      group_(std::move(group)),
      rank_(-1),
      clock_(&clock),
      cost_(&cost),
      stats_(&stats) {
  OPT_CHECK(!group_.empty(), "communicator group is empty");
  for (std::size_t i = 0; i < group_.size(); ++i) {
    if (group_[i] == world_rank) {
      rank_ = static_cast<int>(i);
      break;
    }
  }
  OPT_CHECK(rank_ >= 0, "world rank " << world_rank << " not in communicator group");
}

CollectiveTiming Communicator::begin_collective(std::uint64_t seq, double dt) {
  const CollectiveTiming t = begin_async(seq, dt);
  // Bitwise identical to the previous set(completion()): align_to assigns
  // entry_aligned exactly, then advance_transfer adds the same dt — only the
  // utilization bucketing differs.
  clock_->align_to(t.entry_aligned);
  clock_->advance_transfer(t.dt);
  return t;
}

CollectiveTiming Communicator::begin_async(std::uint64_t seq, double dt) {
  clock_->drain_compute(*cost_);
  CollectiveTiming t;
  t.entry_local = clock_->now();
  // Flight note before the rendezvous: if a peer's fault aborts the fabric
  // while we block in sync_max, the recorder still shows what we entered.
  if (obs::flight_enabled()) {
    obs::flight_note("comm", Fabric::current_op(), t.entry_local,
                     label_.empty() ? "g=" + std::to_string(size())
                                    : label_ + " g=" + std::to_string(size()));
  }
  // Entry waits for the slowest member's clock AND for this communicator's
  // link to free up (earlier issued-but-unwaited transfers occupy it). For
  // blocking flows the clock never lags the link, so this is a pure
  // extension; for pipelined flows it is what serialises back-to-back
  // collectives on one link while row/column links still overlap.
  t.entry_aligned =
      std::max(fabric_->sync_max(sync_key(seq), size(), t.entry_local), link_busy_until_);
  t.dt = dt;
  link_busy_until_ = t.entry_aligned + dt;
  return t;
}

Communicator::TreeTopo Communicator::tree_topo(int root) const {
  TreeTopo t;
  const int g = static_cast<int>(group_.size());
  const int relative = (rank_ - root + g) % g;
  int mask = 1;
  while (mask < g) {
    if (relative & mask) {
      t.parent = ((relative - mask) + root) % g;
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (relative + mask < g) t.children.push_back((relative + mask + root) % g);
    mask >>= 1;
  }
  return t;
}

std::vector<Communicator::Chunk> Communicator::chunk_layout(tensor::index_t n, int chunks) {
  if (chunks < 1) chunks = 1;
  if (static_cast<tensor::index_t>(chunks) > n && n > 0) {
    chunks = static_cast<int>(n);
  }
  std::vector<Chunk> out;
  out.reserve(static_cast<std::size_t>(chunks));
  const tensor::index_t base = n / chunks;
  const tensor::index_t rem = n % chunks;
  tensor::index_t begin = 0;
  for (int c = 0; c < chunks; ++c) {
    const tensor::index_t count = base + (c < rem ? 1 : 0);
    out.push_back({begin, count});
    begin += count;
  }
  return out;
}

void Request::wait() {
  if (!st_) return;
  const std::unique_ptr<State> st = std::move(st_);
  Communicator& comm = *st->comm;
  Fabric::OpScope op_scope(st->wait_op);
  if (st->finish) st->finish();
  comm.clock_->drain_compute(*comm.cost_);
  // The span covers exactly the idle time this rank spends blocked on the
  // in-flight transfer — the part of the modelled dt that compute did NOT
  // hide. The transfer itself was accounted (args + link reservation) at
  // issue, so transfer_s here is 0 and sim_dur == wait_s.
  obs::Span span("comm", st->wait_op);
  const double idle = std::max(0.0, st->completion - comm.clock_->now());
  comm.clock_->align_to(st->completion);
  if (span.armed()) {
    if (!comm.label_.empty()) span.arg("comm", comm.label_);
    span.arg("g", comm.size());
    span.arg("bytes", st->bytes);
    span.arg("wait_s", idle);
    span.arg("transfer_s", 0.0);
  }
}

Communicator Communicator::split(int color, int key) {
  const std::uint64_t seq = next_seq();
  // The split itself is an out-of-band control operation; it moves no modelled
  // bytes (real backends amortise communicator construction outside the
  // training loop).
  Fabric::SplitResult r =
      fabric_->split_sync(sync_key(seq), size(), world_rank(), color, key);
  return Communicator(*fabric_, r.new_comm_id, std::move(r.group), world_rank(), *clock_,
                      *cost_, *stats_);
}

void Communicator::barrier() {
  const std::uint64_t seq = next_seq();
  if (size() == 1) return;
  const double dt = 2.0 * log2_ceil(size()) * cost_->params().alpha;
  Fabric::OpScope op_scope("barrier");
  obs::Span span("comm", "barrier");
  const CollectiveTiming ct = begin_collective(seq, dt);
  annotate_span(span, 0, ct);
  stats_->barrier.record(0, 0, 0.0, ct.dt);
  // The sync_max rendezvous inside begin_collective already provides the
  // synchronisation semantics; no data movement is needed.
}

}  // namespace optimus::comm
