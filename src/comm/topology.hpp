#pragma once

// Cluster topology and the α-β communication cost model.
//
// The paper's testbed is nodes of `gpus_per_node` GPUs joined by InfiniBand;
// communication within a node is cheaper than across nodes, and Figure 8
// shows that *how* the q×q mesh is laid onto nodes changes how many devices
// contend for each node's uplink. We model:
//
//   * node_of(rank)  — either the naive row-major packing (Fig. 8a) or the
//     bunched tile packing (Fig. 8b) that keeps an r×c sub-square of the mesh
//     on one node.
//   * beta_eff(group) — beta_intra for single-node groups; for multi-node
//     groups, beta_inter scaled by the uplink contention factor
//     gpus_per_node / (members of this group per node), because all parallel
//     rows/columns run their collectives simultaneously and share the NIC.
//
// Collective time formulas match the paper's §2.5:
//   tree (broadcast/reduce):    ceil(log2 g) · (α + β·B)
//   ring all-reduce:            2(g−1) · (α + β·B/g)
//   ring all-gather / reduce-scatter: (g−1) · (α + β·B/g)
// with B the payload in bytes.

#include <cstdint>
#include <string>
#include <vector>

#include "util/check.hpp"

namespace optimus::comm {

enum class Arrangement {
  kNaive,    // node = rank / gpus_per_node (Fig. 8a)
  kBunched,  // square mesh tiles per node (Fig. 8b)
};

Arrangement parse_arrangement(const std::string& name);

class Topology {
 public:
  /// `mesh_q` is the mesh side when ranks form a q×q mesh (used by the bunched
  /// packing); pass 0 for a flat 1-D rank space (Megatron), where bunched
  /// degenerates to naive.
  Topology(int world_size, int gpus_per_node, Arrangement arrangement, int mesh_q = 0);

  int world_size() const { return world_size_; }
  int gpus_per_node() const { return gpus_per_node_; }
  int num_nodes() const { return num_nodes_; }
  Arrangement arrangement() const { return arrangement_; }

  int node_of(int rank) const {
    OPT_DCHECK(rank >= 0 && rank < world_size_, "rank " << rank);
    return node_of_[rank];
  }

  /// True if every rank in `group` lives on one node.
  bool single_node(const std::vector<int>& group) const;

  /// Max number of `group` members that share any one node.
  int max_members_per_node(const std::vector<int>& group) const;

 private:
  int world_size_;
  int gpus_per_node_;
  int num_nodes_;
  Arrangement arrangement_;
  std::vector<int> node_of_;
};

/// α-β-γ machine constants. Defaults are calibrated against the paper's
/// Megatron weak-scaling measurements (see perfmodel::calibrate_frontera).
struct MachineParams {
  double alpha = 2.0e-5;        // per-message latency, seconds
  double beta_intra = 1.0e-10;  // seconds per byte within a node (~10 GB/s)
  double beta_inter = 8.0e-10;  // seconds per byte across nodes (~1.25 GB/s effective)
  double flop_rate = 2.0e12;    // scalar multiply-accumulates per second per device

  /// Unit-cost model: time == "weighted scalars" (α=0, β=1/scalar, R=∞ is not
  /// representable; use flop_rate huge). Used to validate Table 1 exactly.
  static MachineParams unit_cost();
};

class CostModel {
 public:
  CostModel(const Topology& topo, const MachineParams& params)
      : topo_(&topo), params_(params) {}

  const MachineParams& params() const { return params_; }
  const Topology& topology() const { return *topo_; }

  /// Effective per-byte cost for a collective over `group`.
  double beta_eff(const std::vector<int>& group) const;

  double tree_time(const std::vector<int>& group, std::uint64_t bytes) const;

  /// Chunked-pipeline plan for a tree collective (broadcast/reduce). Large
  /// payloads on deep trees are split into C chunks streamed down the tree:
  /// with d = ceil(log2 g) rounds the pipelined time is
  /// (C + d − 1)·(α + β·B/C), which beats the plain d·(α + β·B) whenever the
  /// per-chunk latency is small against the serialised transfer. chunks == 1
  /// (time == tree_time) is returned for small payloads, shallow trees or
  /// α == 0 cost models, so the unit-cost validation forms are untouched.
  struct TreePlan {
    int chunks = 1;
    double time = 0;
  };
  TreePlan tree_plan(const std::vector<int>& group, std::uint64_t bytes) const;
  double ring_allreduce_time(const std::vector<int>& group, std::uint64_t bytes) const;
  double ring_allgather_time(const std::vector<int>& group, std::uint64_t total_bytes) const;
  double ring_reducescatter_time(const std::vector<int>& group, std::uint64_t total_bytes) const;
  double p2p_time(int src, int dst, std::uint64_t bytes) const;

  double compute_time(std::uint64_t mults) const {
    return static_cast<double>(mults) / params_.flop_rate;
  }

 private:
  const Topology* topo_;
  MachineParams params_;
};

/// ceil(log2(n)) for n >= 1.
int log2_ceil(int n);

}  // namespace optimus::comm
