#pragma once

// Metrics export: turns a Cluster::Report (plus the process-wide kernel pool
// counters and the tracer's span summary) into one JSON document.
//
// Layout:
//
//   {
//     "world_size": p,
//     "ranks": [ { "rank": r, "sim_time_s": …, "mults": …, "peak_bytes": …,
//                  "alloc_count": …, "comm": { "broadcast": {calls, elems,
//                  bytes, weighted, time_s}, …, "p2p": {…} },
//                  "utilization": { compute_s, align_wait_s, transfer_s,
//                  idle_s, *_frac, accounted_s } }, … ],
//     "totals": { "bytes_by_kind": {…}, "max_sim_time_s": …, … },
//     "pool": { regions, inline_regions, chunks, worker_chunks, worker_share,
//               aggregate_submit_wait_ms, avg_region_wait_ms,
//               barrier_crossings, parks, workers_spawned },
//
// aggregate_submit_wait_ms sums submitter wait across *concurrent* device
// threads, so with p simulated devices it can exceed wall time by up to p×;
// avg_region_wait_ms (aggregate / regions) is the wall-comparable figure. The
// per-rank "utilization" fractions have no such caveat: they partition one
// rank's simulated timeline (compute + align_wait + transfer + idle ≈
// sim_time_s), so each fraction is ≤ 1.
//     "spans": { "cat/name": {count, sim_total_s, sim_max_s, wall_total_ms} },
//     "metrics": { "name": {type, value | count/min/max/p50/p99/p999/buckets} }
//   }
//
// The "spans" section is present only when tracing was enabled for the run;
// "metrics" (the process metrics registry) only when metrics collection was.
// This lives in comm (not obs) because it reads Cluster::Report; obs stays
// dependency-free below util.

#include <string>

#include "comm/cluster.hpp"
#include "obs/json.hpp"

namespace optimus::comm {

/// Section toggles for metrics_json(). The pool section is wall-clock-derived
/// (submit waits, parks) and therefore not byte-reproducible across runs —
/// exclude it when the output will be diffed for determinism.
struct MetricsReportOptions {
  bool include_spans = true;     // tracer span summary (needs tracing enabled)
  bool include_pool = true;      // kernel thread-pool counters (wall-based)
  bool include_registry = true;  // process metrics registry (needs metrics on)
};

/// Builds the metrics document for `report`.
obs::Json metrics_json(const Cluster::Report& report, const MetricsReportOptions& options);

/// Back-compat convenience: all sections, spans gated by `include_spans`.
obs::Json metrics_json(const Cluster::Report& report, bool include_spans = true);

/// Serialises metrics_json() to `path` (pretty-printed).
void write_metrics(const std::string& path, const Cluster::Report& report,
                   bool include_spans = true);

/// Serialises with explicit section toggles.
void write_metrics(const std::string& path, const Cluster::Report& report,
                   const MetricsReportOptions& options);

}  // namespace optimus::comm
