#pragma once

// Metrics export: turns a Cluster::Report (plus the process-wide kernel pool
// counters and the tracer's span summary) into one JSON document.
//
// Layout:
//
//   {
//     "world_size": p,
//     "ranks": [ { "rank": r, "sim_time_s": …, "mults": …, "peak_bytes": …,
//                  "alloc_count": …, "comm": { "broadcast": {calls, elems,
//                  bytes, weighted, time_s}, …, "p2p": {…} } }, … ],
//     "totals": { "bytes_by_kind": {…}, "max_sim_time_s": …, … },
//     "pool": { regions, inline_regions, chunks, worker_chunks, worker_share,
//               aggregate_submit_wait_ms, avg_region_wait_ms,
//               barrier_crossings, parks, workers_spawned },
//
// aggregate_submit_wait_ms sums submitter wait across *concurrent* device
// threads, so with p simulated devices it can exceed wall time by up to p×;
// avg_region_wait_ms (aggregate / regions) is the wall-comparable figure.
//     "spans": { "cat/name": {count, sim_total_s, sim_max_s, wall_total_ms} }
//   }
//
// The "spans" section is present only when tracing was enabled for the run.
// This lives in comm (not obs) because it reads Cluster::Report; obs stays
// dependency-free below util.

#include <string>

#include "comm/cluster.hpp"
#include "obs/json.hpp"

namespace optimus::comm {

/// Builds the metrics document for `report`. `include_spans` additionally
/// embeds the tracer's span summary (meaningful only if tracing was enabled).
obs::Json metrics_json(const Cluster::Report& report, bool include_spans = true);

/// Serialises metrics_json() to `path` (pretty-printed).
void write_metrics(const std::string& path, const Cluster::Report& report,
                   bool include_spans = true);

}  // namespace optimus::comm
