#pragma once

// MPI-style communicator over the simulated fabric.
//
// A Communicator names an ordered group of world ranks. Collectives are
// blocking, must be entered by every member in the same order (standard MPI
// contract), move real bytes through the fabric, and advance the simulated
// clock by the CostModel's closed-form time for the operation:
//
//   broadcast / reduce     — binomial tree  (paper eq. 4: log₂(g)·β·B)
//   all_reduce             — ring reduce-scatter + ring all-gather
//                            (paper eq. 5: 2(g−1)/g·β·B)
//   all_gather / reduce_scatter — ring
//   barrier                — dissemination (latency only)
//
// Reduction order is deterministic for a fixed group, so distributed runs are
// bit-reproducible; they differ from serial execution only by floating-point
// association.

#include <algorithm>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "comm/fabric.hpp"
#include "comm/sim_clock.hpp"
#include "comm/topology.hpp"
#include "obs/flight.hpp"
#include "obs/trace.hpp"
#include "tensor/tensor.hpp"

namespace optimus::comm {

/// Simulated-time breakdown of one collective entry: every participant drains
/// local compute (clock → entry_local), aligns to the slowest member
/// (entry_aligned) and advances by the modelled operation time dt. The
/// align-wait (entry_aligned − entry_local) is this rank's idle time — the
/// tracer exports it separately from the transfer time.
struct CollectiveTiming {
  double entry_local = 0;
  double entry_aligned = 0;
  double dt = 0;

  double wait() const { return entry_aligned - entry_local; }
  double completion() const { return entry_aligned + dt; }
};

class Communicator;

/// Handle for a non-blocking collective (ibroadcast/ireduce). The operation's
/// cost was modelled at issue time; wait() performs any deferred data
/// movement, then advances this rank's clock only if it is still behind the
/// modelled completion — compute done in between overlaps for free, so a
/// pipelined step costs max(comm, compute) instead of their sum.
///
/// Every issued request must be waited exactly once (unless unwinding from a
/// fabric abort). Move-only; default-constructed requests are inert.
class Request {
 public:
  Request() = default;
  Request(Request&&) = default;
  Request& operator=(Request&&) = default;
  Request(const Request&) = delete;
  Request& operator=(const Request&) = delete;

  bool active() const { return st_ != nullptr; }

  /// Completes the collective on this rank; may throw FaultError /
  /// FabricAborted if the fabric died while the payload was in flight.
  void wait();

 private:
  friend class Communicator;
  struct State {
    Communicator* comm = nullptr;
    const char* wait_op = "";  // string literal (obs::Span lifetime contract)
    double completion = 0;
    double issue_local = 0;
    double dt = 0;
    std::uint64_t bytes = 0;
    std::function<void()> finish;  // deferred receives/forwards/accumulates
  };
  explicit Request(std::unique_ptr<State> st) : st_(std::move(st)) {}
  std::unique_ptr<State> st_;
};

class Communicator {
 public:
  Communicator(Fabric& fabric, std::uint64_t comm_id, std::vector<int> group, int world_rank,
               SimClock& clock, const CostModel& cost, CommStats& stats);

  /// Human-readable role of this communicator in traces/metrics ("world",
  /// "row", "col", ...). Split results start unnamed; Mesh2D names its own.
  const std::string& label() const { return label_; }
  void set_label(std::string label) { label_ = std::move(label); }

  int rank() const { return rank_; }
  int size() const { return static_cast<int>(group_.size()); }
  int world_rank() const { return group_[rank_]; }
  int world_rank_of(int r) const { return group_[r]; }
  const std::vector<int>& group() const { return group_; }
  const CostModel& cost() const { return *cost_; }
  SimClock& clock() { return *clock_; }
  CommStats& stats() { return *stats_; }

  /// MPI_Comm_split: members with equal `color` form a new communicator,
  /// ordered by (key, world rank). Collective over this communicator.
  Communicator split(int color, int key);

  // -- point-to-point (user tag space; also advances the clock by α+βB) -----

  template <typename T>
  void send(int dst, int tag, const T* data, tensor::index_t n);

  template <typename T>
  void recv(int src, int tag, T* data, tensor::index_t n);

  // -- collectives ----------------------------------------------------------

  template <typename T>
  void broadcast(T* data, tensor::index_t n, int root);

  /// In-place sum-reduce; the result is valid only at `root` afterwards.
  /// `scratch` (n elements) avoids the per-call receive buffer allocation;
  /// pass nullptr to let the call allocate its own.
  template <typename T>
  void reduce(T* data, tensor::index_t n, int root, T* scratch = nullptr);

  // -- non-blocking collectives ---------------------------------------------
  //
  // Issue now, complete at Request::wait(). The modelled cost, clock
  // alignment and stats are identical to the blocking forms (recorded at
  // issue); only this rank's clock advance is deferred, which is what lets a
  // SUMMA step overlap the next panel's transfer with the current GEMM. Must
  // be issued by every member in the same order, like any collective.

  /// Async broadcast. `data` must stay valid (and, on non-root ranks,
  /// untouched) until wait() returns.
  template <typename T>
  Request ibroadcast(T* data, tensor::index_t n, int root);

  /// Async sum-reduce toward `root`. The local partial in `data` must be
  /// final at issue; the reduced result is valid at root after wait().
  /// `scratch` (n elements, optional) must stay valid until wait().
  template <typename T>
  Request ireduce(T* data, tensor::index_t n, int root, T* scratch = nullptr);

  /// In-place ring all-reduce (sum).
  template <typename T>
  void all_reduce(T* data, tensor::index_t n);

  /// Element-wise max all-reduce (used by the distributed softmax).
  template <typename T>
  void all_reduce_max(T* data, tensor::index_t n);

  /// Sum all-reduce with a payload-size-independent fold order: every element
  /// is accumulated rank 0 → g−1. The ring all_reduce folds each chunk
  /// starting at a rank derived from the chunk *layout*, so two payloads of
  /// different length reassociate differently; incremental decode needs the
  /// single-row reduction to match the full-prefix one bitwise, which this
  /// guarantees. Modelled/recorded with the same ring cost as all_reduce.
  template <typename T>
  void all_reduce_ordered(T* data, tensor::index_t n);

  /// Gathers each rank's `n` elements into `out` (size n·g), rank order.
  template <typename T>
  void all_gather(const T* mine, tensor::index_t n, T* out);

  /// data has n·g elements; rank r's `out` receives the sum-reduced chunk r.
  template <typename T>
  void reduce_scatter(const T* data, tensor::index_t n, T* out);

  /// Personalised exchange (MPI_Alltoall): `send` holds g chunks of n
  /// elements, chunk c destined for rank c; on return `out[c·n..)` holds the
  /// chunk rank c addressed to this rank. Pairwise exchange; modelled as
  /// (g−1) simultaneous chunk transfers: (g−1)·(α + β·chunk_bytes).
  template <typename T>
  void all_to_all(const T* send, tensor::index_t n, T* out);

  /// Gathers each rank's `n` elements at `root` (out size n·g there, ignored
  /// elsewhere). Flat fan-in; modelled like a ring all-gather.
  template <typename T>
  void gather(const T* mine, tensor::index_t n, T* out, int root);

  /// Inverse of gather: root's `data` (n·g elements) is distributed so rank r
  /// receives chunk r into `out` (n elements).
  template <typename T>
  void scatter(const T* data, tensor::index_t n, T* out, int root);

  void barrier();

  // -- tensor conveniences --------------------------------------------------

  template <typename T>
  void broadcast(tensor::TensorT<T>& t, int root) {
    broadcast(t.data(), t.numel(), root);
  }
  template <typename T>
  void reduce(tensor::TensorT<T>& t, int root) {
    reduce(t.data(), t.numel(), root);
  }
  template <typename T>
  void all_reduce(tensor::TensorT<T>& t) {
    all_reduce(t.data(), t.numel());
  }
  template <typename T>
  void all_reduce_max(tensor::TensorT<T>& t) {
    all_reduce_max(t.data(), t.numel());
  }
  template <typename T>
  void all_reduce_ordered(tensor::TensorT<T>& t) {
    all_reduce_ordered(t.data(), t.numel());
  }

 private:
  // Internal tags: [comm_id : 32][seq : 24][phase : 8]. User p2p tags live in
  // a reserved high-seq band so they can never collide with collectives.
  std::uint64_t collective_tag(std::uint64_t seq, int phase) const {
    return (comm_id_ << 32) | (seq << 8) | static_cast<std::uint64_t>(phase);
  }
  std::uint64_t user_tag(int tag) const {
    OPT_CHECK(tag >= 0 && tag < (1 << 24), "user tag " << tag << " out of range");
    return (comm_id_ << 32) | (0xFFull << 24 << 8) | static_cast<std::uint64_t>(tag);
  }
  std::uint64_t next_seq() {
    const std::uint64_t s = seq_++;
    OPT_CHECK(s < (1ull << 24) - (1ull << 16), "collective sequence space exhausted");
    return s;
  }
  std::uint64_t sync_key(std::uint64_t seq) const { return (comm_id_ << 24) | seq; }

  /// Drains local compute into the clock, aligns clocks across the group and
  /// advances by `dt`. Returns the entry timing breakdown.
  CollectiveTiming begin_collective(std::uint64_t seq, double dt);

  /// begin_collective without the final clock advance: models issuing a
  /// non-blocking collective. Entry still aligns on max(slowest member's
  /// clock, this communicator's link availability); the link is then reserved
  /// through the transfer, so back-to-back collectives on one communicator
  /// serialise even when issued without waiting (one link per communicator —
  /// row and column links are distinct and genuinely overlap).
  CollectiveTiming begin_async(std::uint64_t seq, double dt);

  /// This rank's position in the binomial tree rooted at group rank `root`:
  /// parent (or −1 at the root) and children in descending-mask order — the
  /// order the blocking broadcast forwards in; reverse it for the reduce's
  /// ascending-mask accumulation order.
  struct TreeTopo {
    int parent = -1;
    std::vector<int> children;
  };
  TreeTopo tree_topo(int root) const;

  struct Chunk {
    tensor::index_t begin = 0;
    tensor::index_t count = 0;
  };
  /// Splits [0, n) into `chunks` contiguous runs (sizes differ by ≤ 1).
  static std::vector<Chunk> chunk_layout(tensor::index_t n, int chunks);

  /// Attaches the standard collective args (communicator label, group size,
  /// payload bytes, align-wait vs transfer split) to an armed span.
  void annotate_span(obs::Span& span, std::uint64_t bytes, const CollectiveTiming& t) const {
    if (!span.armed()) return;
    if (!label_.empty()) span.arg("comm", label_);
    span.arg("g", size());
    span.arg("bytes", bytes);
    span.arg("wait_s", t.wait());
    span.arg("transfer_s", t.dt);
  }

  template <typename T>
  void send_internal(int dst_group_rank, std::uint64_t tag, const T* data, tensor::index_t n);
  template <typename T>
  void recv_internal(int src_group_rank, std::uint64_t tag, T* data, tensor::index_t n);

  Fabric* fabric_;
  std::uint64_t comm_id_;
  std::vector<int> group_;  // world ranks
  int rank_;                // my index within group_
  SimClock* clock_;
  const CostModel* cost_;
  CommStats* stats_;
  std::uint64_t seq_ = 0;
  std::string label_;
  // Simulated time until which this communicator's link is occupied by
  // already-issued (possibly un-waited) collectives. Identical across ranks
  // by induction: every member issues the same collectives in the same order
  // and entry alignment is a group-wide max.
  double link_busy_until_ = 0;

  friend class Request;
};

// ===========================================================================
// Template implementations
// ===========================================================================

template <typename T>
void Communicator::send_internal(int dst_group_rank, std::uint64_t tag, const T* data,
                                 tensor::index_t n) {
  // Collective-internal transfer: bytes are accounted by the collective's Op
  // record, timing by its closed-form cost; no timestamp is carried.
  fabric_->send(world_rank(), group_[dst_group_rank], tag, data,
                static_cast<std::size_t>(n) * sizeof(T));
}

template <typename T>
void Communicator::recv_internal(int src_group_rank, std::uint64_t tag, T* data,
                                 tensor::index_t n) {
  (void)fabric_->recv(world_rank(), group_[src_group_rank], tag, data,
                      static_cast<std::size_t>(n) * sizeof(T));
}

template <typename T>
void Communicator::send(int dst, int tag, const T* data, tensor::index_t n) {
  Fabric::OpScope op_scope("send");
  obs::Span span("comm", "send");
  clock_->drain_compute(*cost_);
  const std::uint64_t bytes = static_cast<std::uint64_t>(n) * sizeof(T);
  const double dt = cost_->p2p_time(world_rank(), group_[dst], bytes);
  if (obs::flight_enabled()) {
    obs::flight_note("comm", "send", clock_->now(),
                     "dst=" + std::to_string(group_[dst]) + " bytes=" + std::to_string(bytes));
  }
  clock_->advance_transfer(dt);
  stats_->p2p_messages += 1;
  stats_->p2p_bytes += bytes;
  stats_->p2p_time += dt;
  if (span.armed()) {
    if (!label_.empty()) span.arg("comm", label_);
    span.arg("dst", group_[dst]);
    span.arg("bytes", bytes);
    span.arg("transfer_s", dt);
  }
  // The timestamp carries the post-transfer clock so the receiver observes
  // causality (it cannot have the data before the sender finished sending).
  fabric_->send(world_rank(), group_[dst], user_tag(tag), data,
                static_cast<std::size_t>(n) * sizeof(T), clock_->now());
}

template <typename T>
void Communicator::recv(int src, int tag, T* data, tensor::index_t n) {
  Fabric::OpScope op_scope("recv");
  obs::Span span("comm", "recv");
  clock_->drain_compute(*cost_);
  if (obs::flight_enabled()) {
    obs::flight_note("comm", "recv", clock_->now(),
                     "src=" + std::to_string(group_[src]) + " bytes=" +
                         std::to_string(static_cast<std::uint64_t>(n) * sizeof(T)));
  }
  const double sender_ts = fabric_->recv(world_rank(), group_[src], user_tag(tag), data,
                                         static_cast<std::size_t>(n) * sizeof(T));
  clock_->align_to(sender_ts);
  if (span.armed()) {
    if (!label_.empty()) span.arg("comm", label_);
    span.arg("src", group_[src]);
    span.arg("bytes", static_cast<std::uint64_t>(n) * sizeof(T));
  }
}

template <typename T>
void Communicator::broadcast(T* data, tensor::index_t n, int root) {
  const std::uint64_t seq = next_seq();
  if (size() == 1) return;
  const std::uint64_t bytes = static_cast<std::uint64_t>(n) * sizeof(T);
  Fabric::OpScope op_scope("broadcast");
  obs::Span span("comm", "broadcast");
  const CostModel::TreePlan plan = cost_->tree_plan(group_, bytes);
  const CollectiveTiming ct = begin_collective(seq, plan.time);
  annotate_span(span, bytes, ct);
  if (span.armed() && plan.chunks > 1) span.arg("chunks", plan.chunks);
  stats_->broadcast.record(n, bytes, static_cast<double>(n) * log2_ceil(size()), ct.dt);

  // MPICH-style binomial tree rooted at `root`; large payloads stream down
  // the tree in chunks (the plan's pipelined schedule). Chunks move in order
  // on each edge, so FIFO matching per (src, tag) keeps them aligned.
  const TreeTopo topo = tree_topo(root);
  const std::uint64_t tag = collective_tag(seq, 0);
  for (const Chunk& ck : chunk_layout(n, plan.chunks)) {
    if (topo.parent >= 0) recv_internal(topo.parent, tag, data + ck.begin, ck.count);
    for (int child : topo.children) send_internal(child, tag, data + ck.begin, ck.count);
  }
}

template <typename T>
void Communicator::reduce(T* data, tensor::index_t n, int root, T* scratch) {
  const std::uint64_t seq = next_seq();
  if (size() == 1) return;
  const std::uint64_t bytes = static_cast<std::uint64_t>(n) * sizeof(T);
  Fabric::OpScope op_scope("reduce");
  obs::Span span("comm", "reduce");
  const CostModel::TreePlan plan = cost_->tree_plan(group_, bytes);
  const CollectiveTiming ct = begin_collective(seq, plan.time);
  annotate_span(span, bytes, ct);
  if (span.armed() && plan.chunks > 1) span.arg("chunks", plan.chunks);
  stats_->reduce.record(n, bytes, static_cast<double>(n) * log2_ceil(size()), ct.dt);

  // Reverse binomial tree: children send partial sums toward the root,
  // chunk by chunk. Children are accumulated in ascending-mask order per
  // chunk, so every element sees the same addition order regardless of the
  // chunk count — chunked and un-chunked reduces are bitwise identical.
  const TreeTopo topo = tree_topo(root);
  const std::uint64_t tag = collective_tag(seq, 1);
  std::vector<T> owned;
  if (scratch == nullptr) {
    owned.resize(static_cast<std::size_t>(n));
    scratch = owned.data();
  }
  for (const Chunk& ck : chunk_layout(n, plan.chunks)) {
    for (auto it = topo.children.rbegin(); it != topo.children.rend(); ++it) {
      recv_internal(*it, tag, scratch, ck.count);
      T* target = data + ck.begin;
      for (tensor::index_t i = 0; i < ck.count; ++i) target[i] += scratch[i];
    }
    if (topo.parent >= 0) send_internal(topo.parent, tag, data + ck.begin, ck.count);
  }
}

template <typename T>
Request Communicator::ibroadcast(T* data, tensor::index_t n, int root) {
  const std::uint64_t seq = next_seq();
  if (size() == 1) return Request();
  const std::uint64_t bytes = static_cast<std::uint64_t>(n) * sizeof(T);
  Fabric::OpScope op_scope("ibroadcast");
  obs::Span span("comm", "ibroadcast");
  const CostModel::TreePlan plan = cost_->tree_plan(group_, bytes);
  const CollectiveTiming ct = begin_async(seq, plan.time);
  annotate_span(span, bytes, ct);
  stats_->broadcast.record(n, bytes, static_cast<double>(n) * log2_ceil(size()), ct.dt);

  const TreeTopo topo = tree_topo(root);
  const std::uint64_t tag = collective_tag(seq, 0);
  const std::vector<Chunk> chunks = chunk_layout(n, plan.chunks);

  auto st = std::make_unique<Request::State>();
  st->comm = this;
  st->wait_op = "ibroadcast.wait";
  st->completion = ct.completion();
  st->issue_local = ct.entry_local;
  st->dt = ct.dt;
  st->bytes = bytes;

  if (topo.parent < 0) {
    // Root: the payload is ready now; push every chunk eagerly (fabric sends
    // are buffered and never block), leaving nothing deferred.
    for (const Chunk& ck : chunks) {
      for (int child : topo.children) send_internal(child, tag, data + ck.begin, ck.count);
    }
  } else {
    std::vector<Fabric::RecvHandle> pending;
    pending.reserve(chunks.size());
    for (const Chunk& ck : chunks) {
      pending.push_back(fabric_->irecv(world_rank(), group_[topo.parent], tag, data + ck.begin,
                                       static_cast<std::size_t>(ck.count) * sizeof(T)));
    }
    st->finish = [this, topo, tag, data, chunks, pending]() mutable {
      for (std::size_t c = 0; c < chunks.size(); ++c) {
        (void)fabric_->wait(pending[c]);
        for (int child : topo.children) {
          send_internal(child, tag, data + chunks[c].begin, chunks[c].count);
        }
      }
    };
  }
  return Request(std::move(st));
}

template <typename T>
Request Communicator::ireduce(T* data, tensor::index_t n, int root, T* scratch) {
  const std::uint64_t seq = next_seq();
  if (size() == 1) return Request();
  const std::uint64_t bytes = static_cast<std::uint64_t>(n) * sizeof(T);
  Fabric::OpScope op_scope("ireduce");
  obs::Span span("comm", "ireduce");
  const CostModel::TreePlan plan = cost_->tree_plan(group_, bytes);
  const CollectiveTiming ct = begin_async(seq, plan.time);
  annotate_span(span, bytes, ct);
  stats_->reduce.record(n, bytes, static_cast<double>(n) * log2_ceil(size()), ct.dt);

  const TreeTopo topo = tree_topo(root);
  const std::uint64_t tag = collective_tag(seq, 1);
  const std::vector<Chunk> chunks = chunk_layout(n, plan.chunks);

  auto st = std::make_unique<Request::State>();
  st->comm = this;
  st->wait_op = "ireduce.wait";
  st->completion = ct.completion();
  st->issue_local = ct.entry_local;
  st->dt = ct.dt;
  st->bytes = bytes;

  if (topo.children.empty()) {
    // Leaf: the local partial is final at issue; push every chunk now.
    for (const Chunk& ck : chunks) send_internal(topo.parent, tag, data + ck.begin, ck.count);
  } else {
    // Interior/root: children's partials arrive at wait time. All receive
    // handles share one scratch buffer — finish() completes them strictly in
    // order, and the ascending-mask child order per chunk keeps the
    // accumulation bitwise identical to the blocking reduce.
    auto owned_scratch = std::make_shared<std::vector<T>>();
    T* tmp = scratch;
    if (tmp == nullptr) {
      owned_scratch->resize(static_cast<std::size_t>(n));
      tmp = owned_scratch->data();
    }
    const int kids = static_cast<int>(topo.children.size());
    std::vector<Fabric::RecvHandle> pending;
    pending.reserve(chunks.size() * static_cast<std::size_t>(kids));
    for (const Chunk& ck : chunks) {
      for (int k = kids - 1; k >= 0; --k) {
        pending.push_back(fabric_->irecv(world_rank(), group_[topo.children[k]], tag, tmp,
                                         static_cast<std::size_t>(ck.count) * sizeof(T)));
      }
    }
    st->finish = [this, topo, tag, data, chunks, pending, tmp, owned_scratch,
                  kids]() mutable {
      std::size_t idx = 0;
      for (const Chunk& ck : chunks) {
        for (int k = 0; k < kids; ++k) {
          (void)fabric_->wait(pending[idx++]);
          T* target = data + ck.begin;
          for (tensor::index_t i = 0; i < ck.count; ++i) target[i] += tmp[i];
        }
        if (topo.parent >= 0) send_internal(topo.parent, tag, data + ck.begin, ck.count);
      }
    };
  }
  return Request(std::move(st));
}

template <typename T>
void Communicator::all_reduce(T* data, tensor::index_t n) {
  const std::uint64_t seq = next_seq();
  if (size() == 1) return;
  const int g = size();
  const std::uint64_t bytes = static_cast<std::uint64_t>(n) * sizeof(T);
  Fabric::OpScope op_scope("allreduce");
  obs::Span span("comm", "allreduce");
  const CollectiveTiming ct = begin_collective(seq, cost_->ring_allreduce_time(group_, bytes));
  annotate_span(span, bytes, ct);
  stats_->allreduce.record(
      n, bytes, static_cast<double>(n) * 2.0 * (g - 1) / static_cast<double>(g), ct.dt);

  // Ring all-reduce: g−1 reduce-scatter steps then g−1 all-gather steps over
  // contiguous chunks (sizes differ by at most one element).
  const auto chunk_begin = [&](int c) {
    const tensor::index_t base = n / g;
    const tensor::index_t rem = n % g;
    return c * base + std::min<tensor::index_t>(c, rem);
  };
  const auto chunk_size = [&](int c) {
    return n / g + (c < static_cast<tensor::index_t>(n % g) ? 1 : 0);
  };
  const int right = (rank_ + 1) % g;
  const int left = (rank_ - 1 + g) % g;
  std::vector<T> incoming(static_cast<std::size_t>(n / g + 1));

  for (int s = 0; s < g - 1; ++s) {
    const int send_chunk = ((rank_ - s) % g + g) % g;
    const int recv_chunk = ((rank_ - s - 1) % g + g) % g;
    const std::uint64_t tag = collective_tag(seq, 2);
    send_internal(right, tag, data + chunk_begin(send_chunk), chunk_size(send_chunk));
    recv_internal(left, tag, incoming.data(), chunk_size(recv_chunk));
    T* target = data + chunk_begin(recv_chunk);
    const tensor::index_t cs = chunk_size(recv_chunk);
    for (tensor::index_t i = 0; i < cs; ++i) target[i] += incoming[i];
  }
  for (int s = 0; s < g - 1; ++s) {
    const int send_chunk = ((rank_ + 1 - s) % g + g) % g;
    const int recv_chunk = ((rank_ - s) % g + g) % g;
    const std::uint64_t tag = collective_tag(seq, 3);
    send_internal(right, tag, data + chunk_begin(send_chunk), chunk_size(send_chunk));
    recv_internal(left, tag, data + chunk_begin(recv_chunk), chunk_size(recv_chunk));
  }
}

template <typename T>
void Communicator::all_reduce_max(T* data, tensor::index_t n) {
  const std::uint64_t seq = next_seq();
  if (size() == 1) return;
  const int g = size();
  const std::uint64_t bytes = static_cast<std::uint64_t>(n) * sizeof(T);
  Fabric::OpScope op_scope("allreduce_max");
  obs::Span span("comm", "allreduce_max");
  const CollectiveTiming ct = begin_collective(seq, cost_->ring_allreduce_time(group_, bytes));
  annotate_span(span, bytes, ct);
  stats_->allreduce.record(
      n, bytes, static_cast<double>(n) * 2.0 * (g - 1) / static_cast<double>(g), ct.dt);

  // Small payloads only (softmax row maxima): gather-to-0 + broadcast keeps
  // the implementation simple; the modelled time above is still the ring's.
  const std::uint64_t tag = collective_tag(seq, 4);
  std::vector<T> incoming(static_cast<std::size_t>(n));
  if (rank_ == 0) {
    for (int r = 1; r < g; ++r) {
      recv_internal(r, tag, incoming.data(), n);
      for (tensor::index_t i = 0; i < n; ++i) data[i] = std::max(data[i], incoming[i]);
    }
  } else {
    send_internal(0, tag, data, n);
  }
  const std::uint64_t tag2 = collective_tag(seq, 5);
  if (rank_ == 0) {
    for (int r = 1; r < g; ++r) send_internal(r, tag2, data, n);
  } else {
    recv_internal(0, tag2, data, n);
  }
}

template <typename T>
void Communicator::all_reduce_ordered(T* data, tensor::index_t n) {
  const std::uint64_t seq = next_seq();
  if (size() == 1) return;
  const int g = size();
  const std::uint64_t bytes = static_cast<std::uint64_t>(n) * sizeof(T);
  Fabric::OpScope op_scope("allreduce");
  obs::Span span("comm", "allreduce");
  const CollectiveTiming ct = begin_collective(seq, cost_->ring_allreduce_time(group_, bytes));
  annotate_span(span, bytes, ct);
  stats_->allreduce.record(
      n, bytes, static_cast<double>(n) * 2.0 * (g - 1) / static_cast<double>(g), ct.dt);

  // Gather-to-0 with an ascending-rank fold, then broadcast: rank 0's value
  // + rank 1's + … + rank (g−1)'s for every element regardless of n.
  const std::uint64_t tag = collective_tag(seq, 11);
  std::vector<T> incoming(static_cast<std::size_t>(n));
  if (rank_ == 0) {
    for (int r = 1; r < g; ++r) {
      recv_internal(r, tag, incoming.data(), n);
      for (tensor::index_t i = 0; i < n; ++i) data[i] += incoming[i];
    }
  } else {
    send_internal(0, tag, data, n);
  }
  const std::uint64_t tag2 = collective_tag(seq, 12);
  if (rank_ == 0) {
    for (int r = 1; r < g; ++r) send_internal(r, tag2, data, n);
  } else {
    recv_internal(0, tag2, data, n);
  }
}

template <typename T>
void Communicator::all_gather(const T* mine, tensor::index_t n, T* out) {
  const std::uint64_t seq = next_seq();
  const int g = size();
  if (g == 1) {
    std::memcpy(out, mine, static_cast<std::size_t>(n) * sizeof(T));
    return;
  }
  const std::uint64_t total_bytes = static_cast<std::uint64_t>(n) * g * sizeof(T);
  Fabric::OpScope op_scope("allgather");
  obs::Span span("comm", "allgather");
  const CollectiveTiming ct = begin_collective(seq, cost_->ring_allgather_time(group_, total_bytes));
  annotate_span(span, total_bytes, ct);
  stats_->allgather.record(static_cast<std::uint64_t>(n) * g, total_bytes,
                           static_cast<double>(n) * (g - 1), ct.dt);

  std::memcpy(out + static_cast<tensor::index_t>(rank_) * n, mine,
              static_cast<std::size_t>(n) * sizeof(T));
  const int right = (rank_ + 1) % g;
  const int left = (rank_ - 1 + g) % g;
  for (int s = 0; s < g - 1; ++s) {
    const int send_chunk = ((rank_ - s) % g + g) % g;
    const int recv_chunk = ((rank_ - s - 1) % g + g) % g;
    const std::uint64_t tag = collective_tag(seq, 6);
    send_internal(right, tag, out + static_cast<tensor::index_t>(send_chunk) * n, n);
    recv_internal(left, tag, out + static_cast<tensor::index_t>(recv_chunk) * n, n);
  }
}

template <typename T>
void Communicator::gather(const T* mine, tensor::index_t n, T* out, int root) {
  const std::uint64_t seq = next_seq();
  const int g = size();
  if (g == 1) {
    std::memcpy(out, mine, static_cast<std::size_t>(n) * sizeof(T));
    return;
  }
  const std::uint64_t total_bytes = static_cast<std::uint64_t>(n) * g * sizeof(T);
  Fabric::OpScope op_scope("gather");
  obs::Span span("comm", "gather");
  const CollectiveTiming ct = begin_collective(seq, cost_->ring_allgather_time(group_, total_bytes));
  annotate_span(span, total_bytes, ct);
  stats_->allgather.record(static_cast<std::uint64_t>(n) * g, total_bytes,
                           static_cast<double>(n) * (g - 1), ct.dt);
  const std::uint64_t tag = collective_tag(seq, 9);
  if (rank_ == root) {
    std::memcpy(out + static_cast<tensor::index_t>(root) * n, mine,
                static_cast<std::size_t>(n) * sizeof(T));
    for (int r = 0; r < g; ++r) {
      if (r == root) continue;
      recv_internal(r, tag, out + static_cast<tensor::index_t>(r) * n, n);
    }
  } else {
    send_internal(root, tag, mine, n);
  }
}

template <typename T>
void Communicator::scatter(const T* data, tensor::index_t n, T* out, int root) {
  const std::uint64_t seq = next_seq();
  const int g = size();
  if (g == 1) {
    std::memcpy(out, data, static_cast<std::size_t>(n) * sizeof(T));
    return;
  }
  const std::uint64_t total_bytes = static_cast<std::uint64_t>(n) * g * sizeof(T);
  Fabric::OpScope op_scope("scatter");
  obs::Span span("comm", "scatter");
  const CollectiveTiming ct = begin_collective(seq, cost_->ring_allgather_time(group_, total_bytes));
  annotate_span(span, total_bytes, ct);
  stats_->allgather.record(static_cast<std::uint64_t>(n) * g, total_bytes,
                           static_cast<double>(n) * (g - 1), ct.dt);
  const std::uint64_t tag = collective_tag(seq, 10);
  if (rank_ == root) {
    std::memcpy(out, data + static_cast<tensor::index_t>(root) * n,
                static_cast<std::size_t>(n) * sizeof(T));
    for (int r = 0; r < g; ++r) {
      if (r == root) continue;
      send_internal(r, tag, data + static_cast<tensor::index_t>(r) * n, n);
    }
  } else {
    recv_internal(root, tag, out, n);
  }
}

template <typename T>
void Communicator::all_to_all(const T* send, tensor::index_t n, T* out) {
  const std::uint64_t seq = next_seq();
  const int g = size();
  if (g == 1) {
    std::memcpy(out, send, static_cast<std::size_t>(n) * sizeof(T));
    return;
  }
  // Pairwise personalised exchange; every rank sends and receives g−1 chunks
  // concurrently, so the modelled time is (g−1)·(α + β·chunk_bytes).
  const std::uint64_t chunk_bytes = static_cast<std::uint64_t>(n) * sizeof(T);
  Fabric::OpScope op_scope("alltoall");
  obs::Span span("comm", "alltoall");
  const CollectiveTiming ct = begin_collective(
      seq, (g - 1) * (cost_->params().alpha +
                      cost_->beta_eff(group_) * static_cast<double>(chunk_bytes)));
  annotate_span(span, chunk_bytes * static_cast<std::uint64_t>(g - 1), ct);
  stats_->alltoall.record(static_cast<std::uint64_t>(n) * g,
                          chunk_bytes * static_cast<std::uint64_t>(g - 1),
                          static_cast<double>(n) * (g - 1), ct.dt);
  const std::uint64_t tag = collective_tag(seq, 8);
  std::memcpy(out + static_cast<tensor::index_t>(rank_) * n,
              send + static_cast<tensor::index_t>(rank_) * n,
              static_cast<std::size_t>(n) * sizeof(T));
  for (int peer = 0; peer < g; ++peer) {
    if (peer == rank_) continue;
    send_internal(peer, tag, send + static_cast<tensor::index_t>(peer) * n, n);
  }
  for (int peer = 0; peer < g; ++peer) {
    if (peer == rank_) continue;
    recv_internal(peer, tag, out + static_cast<tensor::index_t>(peer) * n, n);
  }
}

template <typename T>
void Communicator::reduce_scatter(const T* data, tensor::index_t n, T* out) {
  const std::uint64_t seq = next_seq();
  const int g = size();
  if (g == 1) {
    std::memcpy(out, data, static_cast<std::size_t>(n) * sizeof(T));
    return;
  }
  const std::uint64_t total_bytes = static_cast<std::uint64_t>(n) * g * sizeof(T);
  Fabric::OpScope op_scope("reducescatter");
  obs::Span span("comm", "reducescatter");
  const CollectiveTiming ct =
      begin_collective(seq, cost_->ring_reducescatter_time(group_, total_bytes));
  annotate_span(span, total_bytes, ct);
  stats_->reducescatter.record(static_cast<std::uint64_t>(n) * g, total_bytes,
                               static_cast<double>(n) * (g - 1), ct.dt);

  // Ring: a running sum for each chunk travels the ring, gaining one host's
  // contribution per hop. Starting the schedule at chunk (rank−1) makes the
  // fully-reduced chunk r land at rank r after g−1 hops.
  std::vector<T> work(static_cast<std::size_t>(n));
  std::vector<T> incoming(static_cast<std::size_t>(n));
  const int right = (rank_ + 1) % g;
  const int left = (rank_ - 1 + g) % g;
  std::memcpy(work.data(), data + static_cast<tensor::index_t>(((rank_ - 1) % g + g) % g) * n,
              static_cast<std::size_t>(n) * sizeof(T));
  for (int s = 0; s < g - 1; ++s) {
    // At step s we forward the running sum of chunk (rank−1−s) and receive the
    // running sum of chunk (rank−2−s), then add our own contribution to it.
    const int recv_chunk = ((rank_ - 2 - s) % g + g) % g;
    const std::uint64_t tag = collective_tag(seq, 7);
    send_internal(right, tag, work.data(), n);
    recv_internal(left, tag, incoming.data(), n);
    const T* own = data + static_cast<tensor::index_t>(recv_chunk) * n;
    for (tensor::index_t i = 0; i < n; ++i) work[i] = incoming[i] + own[i];
  }
  std::memcpy(out, work.data(), static_cast<std::size_t>(n) * sizeof(T));
}

}  // namespace optimus::comm
