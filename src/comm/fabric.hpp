#pragma once

// The shared transport under all simulated devices.
//
// Each rank owns a mailbox; send() deposits a tagged byte payload into the
// destination mailbox, recv() blocks until a message matching (src, tag)
// arrives. Matching is FIFO per (src, tag) pair.
//
// The fabric also provides two *side channels* that model operations a real
// backend performs out-of-band (communicator construction, clock agreement in
// the simulation). These move no modelled bytes:
//
//   * sync_max   — all members of a group deposit a double under a unique key;
//                  everyone receives the maximum. Used to align simulated
//                  clocks at collective entry.
//   * split_sync — MPI_Comm_split-style agreement: members deposit
//                  (color, key); everyone learns its new group and a fresh
//                  communicator id.

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "util/check.hpp"

namespace optimus::comm {

class Fabric {
 public:
  explicit Fabric(int world_size);
  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  int world_size() const { return world_size_; }

  /// Deposits `bytes` bytes for `dst`. Never blocks. `timestamp` carries the
  /// sender's simulated clock so the receiver can observe causality
  /// (Lamport-style); collective-internal traffic passes 0 (collectives
  /// synchronise clocks out-of-band instead).
  void send(int src, int dst, std::uint64_t tag, const void* data, std::size_t bytes,
            double timestamp = 0.0);

  /// Blocks until a message from `src` with `tag` arrives at `dst`; copies the
  /// payload into `out` (size must match exactly). Returns the sender's
  /// timestamp.
  double recv(int dst, int src, std::uint64_t tag, void* out, std::size_t bytes);

  /// Side channel: group-wide max of `value` under `key`. Every member must
  /// call exactly once per key; keys must be globally unique per operation.
  double sync_max(std::uint64_t key, int group_size, double value);

  struct SplitResult {
    std::uint64_t new_comm_id = 0;
    std::vector<int> group;  // world ranks, ordered by (key, world_rank)
  };

  /// Side channel: collective split. Every member of the parent group calls
  /// with its world rank, color and ordering key under the same `key`.
  SplitResult split_sync(std::uint64_t key, int group_size, int world_rank, int color,
                         int order_key);

  /// Allocates a globally unique communicator id.
  std::uint64_t next_comm_id() { return comm_id_counter_++; }

 private:
  struct Message {
    int src;
    std::uint64_t tag;
    double timestamp;
    std::vector<std::byte> payload;
  };

  struct Mailbox {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<Message> messages;
  };

  struct SyncSlot {
    int expected = 0;
    int arrived = 0;
    int departed = 0;
    bool ready = false;
    double max_value = 0;
    // split payload: (color, order_key, world_rank)
    std::vector<std::array<int, 3>> deposits;
    std::map<int, SplitResult> results;  // world_rank -> result
    std::uint64_t assigned_base_id = 0;
  };

  SyncSlot& slot_locked(std::uint64_t key, int group_size);
  void release_slot_locked(std::uint64_t key, SyncSlot& slot);

  int world_size_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;

  std::mutex sync_mu_;
  std::condition_variable sync_cv_;
  std::map<std::uint64_t, SyncSlot> slots_;
  std::atomic<std::uint64_t> comm_id_counter_{1};
};

}  // namespace optimus::comm
