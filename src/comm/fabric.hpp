#pragma once

// The shared transport under all simulated devices.
//
// Each rank owns a mailbox; send() deposits a tagged byte payload into the
// destination mailbox, recv() blocks until a message matching (src, tag)
// arrives. Matching is FIFO per (src, tag) pair.
//
// The fabric also provides two *side channels* that model operations a real
// backend performs out-of-band (communicator construction, clock agreement in
// the simulation). These move no modelled bytes:
//
//   * sync_max   — all members of a group deposit a double under a unique key;
//                  everyone receives the maximum. Used to align simulated
//                  clocks at collective entry.
//   * split_sync — MPI_Comm_split-style agreement: members deposit
//                  (color, key); everyone learns its new group and a fresh
//                  communicator id.
//
// Deterministic fault injection: a FaultPlan arms seeded per-message latency
// spikes (wall-clock sleeps that perturb thread interleavings without touching
// payloads), rank stalls (one designated straggler rank sleeps before its
// receives) and a poison mode (payload bits flipped in flight). Poisoned
// payloads are caught by a per-message checksum at the receiver, which aborts
// the whole fabric: every rank blocked in recv/sync wakes up and throws, so a
// corrupted run fails loudly with a diagnosable error instead of deadlocking
// or silently diverging. All fault decisions hash (seed, channel, occurrence)
// so a given plan replays identically across runs.

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/check.hpp"

namespace optimus::comm {

/// Thrown by the rank that detects an injected fault (e.g. a checksum
/// mismatch on a poisoned payload). The message names the faulted operation,
/// channel and byte count.
class FaultError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Thrown by every *other* rank once the fabric has been aborted: their
/// blocking receives and sync rendezvous wake up and unwind instead of
/// waiting forever on a peer that died.
class FabricAborted : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Seeded fault-injection plan. Probabilities are per message; decisions are
/// pure functions of (seed, src, dst, tag, occurrence), so two runs with the
/// same plan inject the same faults at the same logical points.
struct FaultPlan {
  std::uint64_t seed = 0;
  double spike_prob = 0.0;  // chance a send sleeps spike_us before delivery
  int spike_us = 0;
  int stall_rank = -1;      // rank whose receives stall (straggler model)
  double stall_prob = 0.0;
  int stall_us = 0;
  double poison_prob = 0.0;  // chance a payload is corrupted in flight

  bool active() const { return spike_prob > 0 || stall_prob > 0 || poison_prob > 0; }
};

class Fabric {
 public:
  explicit Fabric(int world_size);
  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  int world_size() const { return world_size_; }

  /// Deposits `bytes` bytes for `dst`. Never blocks. `timestamp` carries the
  /// sender's simulated clock so the receiver can observe causality
  /// (Lamport-style); collective-internal traffic passes 0 (collectives
  /// synchronise clocks out-of-band instead).
  void send(int src, int dst, std::uint64_t tag, const void* data, std::size_t bytes,
            double timestamp = 0.0);

  /// Blocks until a message from `src` with `tag` arrives at `dst`; copies the
  /// payload into `out` (size must match exactly). Returns the sender's
  /// timestamp.
  double recv(int dst, int src, std::uint64_t tag, void* out, std::size_t bytes);

  // -- non-blocking point-to-point ------------------------------------------
  //
  // irecv records the match coordinates; the payload lands in `out` when
  // test()/wait() completes the handle. `out` must stay valid until then.
  // Fault semantics are identical to the blocking path: a poisoned payload
  // aborts the fabric and throws FaultError from whichever call consumed it,
  // and an abort by any rank wakes waiters with FabricAborted.

  struct RecvHandle {
    int dst = -1;
    int src = -1;
    std::uint64_t tag = 0;
    void* out = nullptr;
    std::size_t bytes = 0;
    bool done = true;  // default-constructed handles are no-ops to wait on
    double timestamp = 0;
  };

  /// Sends are buffered (the payload is copied before return), so the async
  /// send completes at the call; the handle exists for API symmetry.
  struct SendHandle {
    bool done = true;
  };

  RecvHandle irecv(int dst, int src, std::uint64_t tag, void* out, std::size_t bytes);

  /// Attempts to complete `h` without blocking; true once the payload has
  /// been delivered (or `h` was already done). Does not draw the straggler
  /// stall fault — stalls model blocked-receive latency, and a poll that
  /// consumed draws would make the fault schedule depend on poll counts.
  bool test(RecvHandle& h);

  /// Blocks until `h` completes; returns the sender's timestamp.
  double wait(RecvHandle& h);

  SendHandle isend(int src, int dst, std::uint64_t tag, const void* data, std::size_t bytes,
                   double timestamp = 0.0);
  void wait(SendHandle&) {}

  /// Side channel: group-wide max of `value` under `key`. Every member must
  /// call exactly once per key; keys must be globally unique per operation.
  double sync_max(std::uint64_t key, int group_size, double value);

  struct SplitResult {
    std::uint64_t new_comm_id = 0;
    std::vector<int> group;  // world ranks, ordered by (key, world_rank)
  };

  /// Side channel: collective split. Every member of the parent group calls
  /// with its world rank, color and ordering key under the same `key`.
  SplitResult split_sync(std::uint64_t key, int group_size, int world_rank, int color,
                         int order_key);

  /// Allocates a globally unique communicator id.
  std::uint64_t next_comm_id() { return comm_id_counter_++; }

  // -- fault injection -------------------------------------------------------

  /// Installs (or clears, with a default-constructed plan) the fault plan.
  /// Must be called before any traffic; not thread-safe against in-flight ops.
  void set_fault_plan(const FaultPlan& plan);
  const FaultPlan& fault_plan() const { return fault_plan_; }

  /// Marks the fabric dead with a reason and wakes every blocked thread; all
  /// subsequent/blocked operations throw FabricAborted. First reason wins.
  void abort(const std::string& reason);
  bool aborted() const { return failed_.load(std::memory_order_acquire); }

  /// Name of the communicator operation the calling thread is currently
  /// executing ("allreduce", "broadcast", ...); "?" outside any op. Used to
  /// label fault diagnostics with the op that hit the fault.
  static const char* current_op();

  /// RAII thread-local op label; Communicator ops hold one for their span.
  class OpScope {
   public:
    explicit OpScope(const char* name);
    ~OpScope();
    OpScope(const OpScope&) = delete;
    OpScope& operator=(const OpScope&) = delete;

   private:
    const char* prev_;
  };

 private:
  struct Message {
    int src;
    std::uint64_t tag;
    double timestamp;
    std::uint64_t checksum = 0;  // FNV-1a of payload; validated when a plan is active
    std::vector<std::byte> payload;
  };

  struct Mailbox {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<Message> messages;
  };

  struct SyncSlot {
    int expected = 0;
    int arrived = 0;
    int departed = 0;
    bool ready = false;
    double max_value = 0;
    // split payload: (color, order_key, world_rank)
    std::vector<std::array<int, 3>> deposits;
    std::map<int, SplitResult> results;  // world_rank -> result
    std::uint64_t assigned_base_id = 0;
  };

  SyncSlot& slot_locked(std::uint64_t key, int group_size);
  void release_slot_locked(std::uint64_t key, SyncSlot& slot);

  /// Draws the straggler stall fault for a receive at `dst` and sleeps if hit.
  void maybe_stall(int dst, int src, std::uint64_t tag);

  /// Tries to match-and-consume a message under `box.mu`; copies the payload,
  /// returns false if nothing matches yet. Throws FaultError on a poisoned
  /// payload (after aborting the fabric).
  bool try_consume_locked(Mailbox& box, std::unique_lock<std::mutex>& lock, int dst, int src,
                          std::uint64_t tag, void* out, std::size_t bytes, double* ts);

  /// Throws FabricAborted if the fabric has been aborted.
  void throw_if_aborted() const;

  /// Deterministic per-message fault draw: the n-th message on the (src, dst,
  /// tag, salt) channel gets a fresh 64-bit hash. Thread-safe.
  std::uint64_t fault_draw(int src, int dst, std::uint64_t tag, std::uint64_t salt);

  int world_size_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;

  std::mutex sync_mu_;
  std::condition_variable sync_cv_;
  std::map<std::uint64_t, SyncSlot> slots_;
  std::atomic<std::uint64_t> comm_id_counter_{1};

  FaultPlan fault_plan_;
  std::mutex fault_mu_;
  std::map<std::uint64_t, std::uint64_t> fault_counts_;  // channel key -> occurrences
  std::atomic<bool> failed_{false};
  mutable std::mutex fail_mu_;
  std::string fail_reason_;
};

}  // namespace optimus::comm
