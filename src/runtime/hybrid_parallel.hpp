#pragma once

// Hybrid data × tensor parallelism.
//
// The paper's model parallelism is orthogonal to data parallelism (§1 lists
// the techniques it composes with); production systems (Megatron-LM,
// Colossal-AI) run dp replicas of a p-device tensor-parallel group. This
// header provides the composition for the simulated cluster:
//
//   world (dp·p ranks)
//     ├── tp group: ranks [r·p, (r+1)·p) — a full Optimus mesh / Megatron
//     │             group for replica r
//     └── dp group: the dp ranks holding the SAME parameter shard across
//                   replicas — gradient averaging runs here, one ring
//                   all-reduce per owned tensor per step
//
// Because every engine shards its parameters identically given the same mesh
// coordinates, rank k of every replica owns the same blocks, so the dp group
// world.split(rank % p, rank) aligns shards exactly.

#include <vector>

#include "comm/communicator.hpp"
#include "tensor/ops.hpp"
#include "tensor/tensor.hpp"

namespace optimus::runtime {

struct HybridGroups {
  comm::Communicator tp;  // tensor-parallel group (size p): build the engine here
  comm::Communicator dp;  // data-parallel group (size world/p): all-reduce grads here
  int replica;            // which data-parallel replica this rank belongs to
  int replicas;           // dp degree
};

/// Splits `world` into replicas of `tp_size` ranks each. Collective.
inline HybridGroups make_hybrid_groups(comm::Communicator& world, int tp_size) {
  OPT_CHECK(tp_size >= 1 && world.size() % tp_size == 0,
            "world " << world.size() << " not divisible by tensor-parallel size " << tp_size);
  const int replica = world.rank() / tp_size;
  return HybridGroups{
      world.split(/*color=*/replica, /*key=*/world.rank()),
      world.split(/*color=*/world.rank() % tp_size, /*key=*/world.rank()),
      replica,
      world.size() / tp_size,
  };
}

/// Ring-all-reduces every owned gradient across the data-parallel group and
/// (by default) divides by the replica count, turning per-replica micro-batch
/// gradients into the full-batch-mean gradient. Call between backward and the
/// optimizer step.
template <typename T>
void allreduce_gradients(comm::Communicator& dp,
                         const std::vector<tensor::TensorT<T>*>& grads,
                         bool average = true) {
  if (dp.size() == 1) return;
  const T inv = T{1} / static_cast<T>(dp.size());
  for (auto* g : grads) {
    dp.all_reduce(*g);
    if (average) tensor::ops::scale_(*g, inv);
  }
}

}  // namespace optimus::runtime
