#include "runtime/optimizer.hpp"

#include <cmath>

namespace optimus::runtime {

namespace {

using tensor::index_t;
using tensor::TensorT;

template <typename T>
void ensure_slots(std::vector<TensorT<T>>& slots,
                  const std::vector<TensorT<T>*>& params) {
  if (!slots.empty()) {
    OPT_CHECK(slots.size() == params.size(),
              "optimizer state holds " << slots.size() << " slots, got " << params.size()
                                       << " parameters");
    return;
  }
  slots.reserve(params.size());
  for (const auto* p : params) slots.push_back(TensorT<T>::zeros(p->shape()));
}

}  // namespace

template <typename T>
void Sgd<T>::step(const std::vector<TensorT<T>*>& params,
                  const std::vector<TensorT<T>*>& grads, double lr) {
  OPT_CHECK(params.size() == grads.size(), "params/grads size mismatch");
  const bool momentum = options_.momentum != 0.0;
  if (momentum) ensure_slots(velocity_, params);
  const T mu = static_cast<T>(options_.momentum);
  const T wd = static_cast<T>(options_.weight_decay);
  const T step_size = static_cast<T>(lr);
  for (std::size_t i = 0; i < params.size(); ++i) {
    TensorT<T>& p = *params[i];
    const TensorT<T>& g = *grads[i];
    OPT_CHECK(p.numel() == g.numel(), "param/grad shape mismatch at index " << i);
    const index_t n = p.numel();
    T* pp = p.data();
    const T* gp = g.data();
    if (momentum) {
      T* vp = velocity_[i].data();
      for (index_t k = 0; k < n; ++k) {
        const T eff = gp[k] + wd * pp[k];
        vp[k] = mu * vp[k] + eff;
        pp[k] -= step_size * vp[k];
      }
    } else if (wd != T{0}) {
      for (index_t k = 0; k < n; ++k) pp[k] -= step_size * (gp[k] + wd * pp[k]);
    } else {
      for (index_t k = 0; k < n; ++k) pp[k] -= step_size * gp[k];
    }
  }
}

template <typename T>
void Adam<T>::step(const std::vector<TensorT<T>*>& params,
                   const std::vector<TensorT<T>*>& grads, double lr) {
  OPT_CHECK(params.size() == grads.size(), "params/grads size mismatch");
  ensure_slots(m_, params);
  ensure_slots(v_, params);
  t_ += 1;
  const double b1 = options_.beta1;
  const double b2 = options_.beta2;
  const double bc1 = 1.0 - std::pow(b1, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(b2, static_cast<double>(t_));
  const T eps = static_cast<T>(options_.eps);
  const T wd = static_cast<T>(options_.weight_decay);
  const T step_size = static_cast<T>(lr);
  for (std::size_t i = 0; i < params.size(); ++i) {
    TensorT<T>& p = *params[i];
    const TensorT<T>& g = *grads[i];
    OPT_CHECK(p.numel() == g.numel(), "param/grad shape mismatch at index " << i);
    const index_t n = p.numel();
    T* pp = p.data();
    const T* gp = g.data();
    T* mp = m_[i].data();
    T* vp = v_[i].data();
    for (index_t k = 0; k < n; ++k) {
      mp[k] = static_cast<T>(b1) * mp[k] + static_cast<T>(1.0 - b1) * gp[k];
      vp[k] = static_cast<T>(b2) * vp[k] + static_cast<T>(1.0 - b2) * gp[k] * gp[k];
      const T mhat = mp[k] / static_cast<T>(bc1);
      const T vhat = vp[k] / static_cast<T>(bc2);
      pp[k] -= step_size * (mhat / (std::sqrt(vhat) + eps) + wd * pp[k]);
    }
  }
}

template <typename T>
T global_grad_norm(const std::vector<TensorT<T>*>& grads, comm::Communicator* world) {
  T sq{0};
  for (const auto* g : grads) {
    const T* gp = g->data();
    const index_t n = g->numel();
    for (index_t k = 0; k < n; ++k) sq += gp[k] * gp[k];
  }
  if (world != nullptr) world->all_reduce(&sq, 1);
  return std::sqrt(sq);
}

template <typename T>
T clip_grad_norm(const std::vector<TensorT<T>*>& grads, T max_norm,
                 comm::Communicator* world) {
  const T norm = global_grad_norm(grads, world);
  if (norm > max_norm && norm > T{0}) {
    const T factor = max_norm / norm;
    for (auto* g : grads) tensor::ops::scale_(*g, factor);
  }
  return norm;
}

#define OPTIMUS_INSTANTIATE_OPT(T)                                                \
  template class Sgd<T>;                                                          \
  template class Adam<T>;                                                         \
  template T global_grad_norm<T>(const std::vector<TensorT<T>*>&,                 \
                                 comm::Communicator*);                            \
  template T clip_grad_norm<T>(const std::vector<TensorT<T>*>&, T,                \
                               comm::Communicator*);

OPTIMUS_INSTANTIATE_OPT(float)
OPTIMUS_INSTANTIATE_OPT(double)

#undef OPTIMUS_INSTANTIATE_OPT

}  // namespace optimus::runtime
