#pragma once

// Learning-rate schedules, evaluated as pure functions of the step index.

#include <cmath>
#include <numbers>

#include "util/check.hpp"

namespace optimus::runtime {

/// Constant learning rate.
class ConstantLr {
 public:
  explicit ConstantLr(double lr) : lr_(lr) {}
  double operator()(long long /*step*/) const { return lr_; }

 private:
  double lr_;
};

/// Linear warmup to `peak` over `warmup_steps`, then cosine decay to
/// `floor_fraction·peak` at `total_steps`, flat afterwards.
class WarmupCosineLr {
 public:
  WarmupCosineLr(double peak, long long warmup_steps, long long total_steps,
                 double floor_fraction = 0.1)
      : peak_(peak),
        warmup_(warmup_steps),
        total_(total_steps),
        floor_(peak * floor_fraction) {
    OPT_CHECK(total_steps > warmup_steps, "total_steps must exceed warmup_steps");
    OPT_CHECK(warmup_steps >= 0, "negative warmup");
  }

  double operator()(long long step) const {
    if (warmup_ > 0 && step < warmup_) {
      return peak_ * static_cast<double>(step + 1) / static_cast<double>(warmup_);
    }
    if (step >= total_) return floor_;
    const double progress =
        static_cast<double>(step - warmup_) / static_cast<double>(total_ - warmup_);
    const double cosine = 0.5 * (1.0 + std::cos(std::numbers::pi * progress));
    return floor_ + (peak_ - floor_) * cosine;
  }

 private:
  double peak_;
  long long warmup_;
  long long total_;
  double floor_;
};

/// Step decay: lr = base · gamma^(step / interval).
class StepDecayLr {
 public:
  StepDecayLr(double base, double gamma, long long interval)
      : base_(base), gamma_(gamma), interval_(interval) {
    OPT_CHECK(interval > 0, "decay interval must be positive");
  }

  double operator()(long long step) const {
    return base_ * std::pow(gamma_, static_cast<double>(step / interval_));
  }

 private:
  double base_;
  double gamma_;
  long long interval_;
};

}  // namespace optimus::runtime
