#pragma once

// Model checkpoint serialization.
//
// Works on the parameters() vector every engine exposes, so the same code
// saves/loads the serial oracle or one *shard* of a distributed engine (each
// rank writes its own file — the natural format for fully-distributed
// parameters; rank 0's file of a q=1 run is a full serial checkpoint).
//
// Format (little-endian, versioned):
//   magic "OPTCKPT1" | elem_size u32 | tensor_count u64 |
//   per tensor: ndim u32, dims i64[ndim], raw data
// Shapes are validated on load against the receiving model.

#include <iosfwd>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"

namespace optimus::runtime {

template <typename T>
void save_tensors(std::ostream& os, const std::vector<tensor::TensorT<T>*>& tensors);

/// Loads into pre-built tensors; shapes must match exactly.
template <typename T>
void load_tensors(std::istream& is, const std::vector<tensor::TensorT<T>*>& tensors);

/// File-path conveniences. For distributed engines pass a per-rank path,
/// e.g. shard_path("model.ckpt", rank).
template <typename T>
void save_checkpoint(const std::string& path, const std::vector<tensor::TensorT<T>*>& tensors);

template <typename T>
void load_checkpoint(const std::string& path, const std::vector<tensor::TensorT<T>*>& tensors);

/// "base" → "base.rankN".
std::string shard_path(const std::string& base, int rank);

}  // namespace optimus::runtime
