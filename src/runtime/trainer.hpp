#pragma once

// Generic training loops.
//
// All three engines (SerialTransformer, MegatronTransformer,
// OptimusTransformer) expose the same step surface — forward / lm_loss /
// backward_lm / zero_grads / parameters / gradients — so one templated loop
// drives any of them. In distributed settings the loop runs identically on
// every rank (collectives inside the engine keep them in lockstep), and each
// rank's optimizer steps only the shards it owns.

#include <functional>
#include <vector>

#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/data.hpp"
#include "util/logging.hpp"

namespace optimus::runtime {

/// One LM training step; returns the loss.
template <typename Engine, typename Optimizer, typename T = float>
double lm_step(Engine& engine, Optimizer& opt, const LmBatch& batch, double lr) {
  obs::Span step_span("runtime", "lm_step");
  // Step-phase telemetry on the lead rank only (every rank executes the
  // same step; emitting per-rank would multiply the histogram by p).
  const bool lead_metrics = obs::metrics_enabled() && obs::current_rank() <= 0;
  const double t0 = lead_metrics ? obs::sim_now() : 0;
  if (obs::flight_enabled()) obs::flight_note("runtime", "lm_step", obs::sim_now(), "");
  {
    obs::Span span("runtime", "forward");
    engine.forward(batch.tokens);
  }
  double loss = 0;
  {
    obs::Span span("runtime", "lm_loss");
    loss = static_cast<double>(engine.lm_loss(batch.labels));
  }
  {
    obs::Span span("runtime", "backward");
    engine.zero_grads();
    engine.backward_lm();
  }
  {
    obs::Span span("runtime", "optimizer");
    opt.step(engine.parameters(), engine.gradients(), lr);
  }
  if (lead_metrics) {
    obs::metrics_observe("runtime.lm_step_s", obs::sim_now() - t0);
    obs::metrics_count("runtime.lm_steps");
  }
  return loss;
}

/// Runs `steps` LM steps pulling batches from `next_batch`; returns the loss
/// trace. `schedule` maps step index → learning rate.
template <typename Engine, typename Optimizer, typename Schedule>
std::vector<double> train_lm(Engine& engine, Optimizer& opt, const Schedule& schedule,
                             const std::function<LmBatch()>& next_batch, int steps,
                             int log_every = 0) {
  std::vector<double> losses;
  losses.reserve(static_cast<std::size_t>(steps));
  for (int step = 0; step < steps; ++step) {
    const LmBatch batch = next_batch();
    const double loss = lm_step(engine, opt, batch, schedule(step));
    losses.push_back(loss);
    if (log_every > 0 && step % log_every == 0) {
      OPT_LOG(Info) << "step " << step << " lm_loss " << loss;
    }
  }
  return losses;
}

/// One classification step; returns the loss.
template <typename Engine, typename Optimizer>
double cls_step(Engine& engine, Optimizer& opt, const ClsBatch& batch, double lr) {
  obs::Span step_span("runtime", "cls_step");
  const bool lead_metrics = obs::metrics_enabled() && obs::current_rank() <= 0;
  const double t0 = lead_metrics ? obs::sim_now() : 0;
  if (obs::flight_enabled()) obs::flight_note("runtime", "cls_step", obs::sim_now(), "");
  {
    obs::Span span("runtime", "forward");
    engine.forward(batch.tokens);
  }
  double loss = 0;
  {
    obs::Span span("runtime", "cls_loss");
    loss = static_cast<double>(engine.cls_loss(batch.labels));
  }
  {
    obs::Span span("runtime", "backward");
    engine.zero_grads();
    engine.backward_cls();
  }
  {
    obs::Span span("runtime", "optimizer");
    opt.step(engine.parameters(), engine.gradients(), lr);
  }
  if (lead_metrics) {
    obs::metrics_observe("runtime.cls_step_s", obs::sim_now() - t0);
    obs::metrics_count("runtime.cls_steps");
  }
  return loss;
}

template <typename Engine, typename Optimizer, typename Schedule>
std::vector<double> train_cls(Engine& engine, Optimizer& opt, const Schedule& schedule,
                              const std::function<ClsBatch()>& next_batch, int steps,
                              int log_every = 0) {
  std::vector<double> losses;
  losses.reserve(static_cast<std::size_t>(steps));
  for (int step = 0; step < steps; ++step) {
    const ClsBatch batch = next_batch();
    const double loss = cls_step(engine, opt, batch, schedule(step));
    losses.push_back(loss);
    if (log_every > 0 && step % log_every == 0) {
      OPT_LOG(Info) << "step " << step << " cls_loss " << loss;
    }
  }
  return losses;
}

/// Gradient accumulation: runs one forward/backward per micro-batch without
/// stepping, then rescales the accumulated gradients by 1/k so they equal the
/// full-batch mean gradient (exact when every micro-batch has the same number
/// of unmasked labels, as the standard next-token masking gives). Returns the
/// mean micro-batch loss; call the optimizer step afterwards.
template <typename Engine>
double accumulate_lm_gradients(Engine& engine, const std::vector<LmBatch>& micro_batches) {
  OPT_CHECK(!micro_batches.empty(), "need at least one micro-batch");
  engine.zero_grads();
  double loss_sum = 0;
  for (const LmBatch& batch : micro_batches) {
    engine.forward(batch.tokens);
    loss_sum += static_cast<double>(engine.lm_loss(batch.labels));
    engine.backward_lm();
  }
  const auto k = micro_batches.size();
  for (auto* g : engine.gradients()) {
    tensor::ops::scale_(*g,
                        static_cast<typename std::remove_reference_t<decltype(*g)>::value_type>(
                            1.0 / static_cast<double>(k)));
  }
  return loss_sum / static_cast<double>(k);
}

/// Mean of the last `k` entries (loss-trace convergence summaries).
inline double tail_mean(const std::vector<double>& xs, std::size_t k) {
  if (xs.empty()) return 0.0;
  k = std::min(k, xs.size());
  double acc = 0;
  for (std::size_t i = xs.size() - k; i < xs.size(); ++i) acc += xs[i];
  return acc / static_cast<double>(k);
}

}  // namespace optimus::runtime
