#include "runtime/checkpoint_io.hpp"

#include <cstring>
#include <fstream>

#include "util/check.hpp"

namespace optimus::runtime {

namespace {

constexpr char kMagic[8] = {'O', 'P', 'T', 'C', 'K', 'P', 'T', '1'};

template <typename V>
void write_pod(std::ostream& os, const V& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(V));
}

template <typename V>
V read_pod(std::istream& is) {
  V v{};
  is.read(reinterpret_cast<char*>(&v), sizeof(V));
  OPT_CHECK(is.good(), "checkpoint stream truncated");
  return v;
}

}  // namespace

template <typename T>
void save_tensors(std::ostream& os, const std::vector<tensor::TensorT<T>*>& tensors) {
  os.write(kMagic, sizeof(kMagic));
  write_pod(os, static_cast<std::uint32_t>(sizeof(T)));
  write_pod(os, static_cast<std::uint64_t>(tensors.size()));
  for (const auto* t : tensors) {
    OPT_CHECK(t != nullptr && t->defined(), "cannot save an undefined tensor");
    write_pod(os, static_cast<std::uint32_t>(t->ndim()));
    for (int d = 0; d < t->ndim(); ++d) {
      write_pod(os, static_cast<std::int64_t>(t->shape()[d]));
    }
    os.write(reinterpret_cast<const char*>(t->data()),
             static_cast<std::streamsize>(t->numel() * sizeof(T)));
  }
  OPT_CHECK(os.good(), "checkpoint write failed");
}

template <typename T>
void load_tensors(std::istream& is, const std::vector<tensor::TensorT<T>*>& tensors) {
  char magic[8];
  is.read(magic, sizeof(magic));
  OPT_CHECK(is.good() && std::memcmp(magic, kMagic, sizeof(kMagic)) == 0,
            "not an Optimus checkpoint (bad magic)");
  const auto elem = read_pod<std::uint32_t>(is);
  OPT_CHECK(elem == sizeof(T),
            "checkpoint element size " << elem << " != model's " << sizeof(T));
  const auto count = read_pod<std::uint64_t>(is);
  OPT_CHECK(count == tensors.size(),
            "checkpoint holds " << count << " tensors, model expects " << tensors.size());
  for (auto* t : tensors) {
    const auto ndim = read_pod<std::uint32_t>(is);
    OPT_CHECK(static_cast<int>(ndim) == t->ndim(),
              "checkpoint tensor ndim " << ndim << " != model's " << t->ndim());
    for (int d = 0; d < t->ndim(); ++d) {
      const auto dim = read_pod<std::int64_t>(is);
      OPT_CHECK(dim == t->shape()[d], "checkpoint dim " << dim << " != model's "
                                                        << t->shape()[d] << " at axis " << d);
    }
    is.read(reinterpret_cast<char*>(t->data()),
            static_cast<std::streamsize>(t->numel() * sizeof(T)));
    OPT_CHECK(is.good(), "checkpoint data truncated");
  }
}

template <typename T>
void save_checkpoint(const std::string& path,
                     const std::vector<tensor::TensorT<T>*>& tensors) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  OPT_CHECK(os.is_open(), "cannot open '" << path << "' for writing");
  save_tensors(os, tensors);
}

template <typename T>
void load_checkpoint(const std::string& path,
                     const std::vector<tensor::TensorT<T>*>& tensors) {
  std::ifstream is(path, std::ios::binary);
  OPT_CHECK(is.is_open(), "cannot open '" << path << "' for reading");
  load_tensors(is, tensors);
}

std::string shard_path(const std::string& base, int rank) {
  return base + ".rank" + std::to_string(rank);
}

#define OPTIMUS_INSTANTIATE_CKPT(T)                                                       \
  template void save_tensors<T>(std::ostream&, const std::vector<tensor::TensorT<T>*>&);  \
  template void load_tensors<T>(std::istream&, const std::vector<tensor::TensorT<T>*>&);  \
  template void save_checkpoint<T>(const std::string&,                                    \
                                   const std::vector<tensor::TensorT<T>*>&);              \
  template void load_checkpoint<T>(const std::string&,                                    \
                                   const std::vector<tensor::TensorT<T>*>&);

OPTIMUS_INSTANTIATE_CKPT(float)
OPTIMUS_INSTANTIATE_CKPT(double)

#undef OPTIMUS_INSTANTIATE_CKPT

}  // namespace optimus::runtime
