#pragma once

// Optimizers over flat parameter/gradient tensor lists.
//
// Both engines expose parameters()/gradients() as parallel vectors of the
// tensors *owned* by the local device, so the same optimizer code serves the
// serial oracle, Megatron and Optimus: each device steps its own shards and
// no optimizer communication is needed (replicated Megatron parameters
// receive bit-identical updates because their gradients are bit-identical in
// this deterministic runtime).

#include <vector>

#include "comm/communicator.hpp"
#include "tensor/ops.hpp"
#include "tensor/tensor.hpp"

namespace optimus::runtime {

/// Plain SGD with optional momentum and decoupled weight decay.
template <typename T>
class Sgd {
 public:
  struct Options {
    double momentum = 0.0;
    double weight_decay = 0.0;
  };

  explicit Sgd(Options options = {}) : options_(options) {}

  /// params[i] -= lr * (grads[i] + wd·params[i]) (with momentum buffering).
  void step(const std::vector<tensor::TensorT<T>*>& params,
            const std::vector<tensor::TensorT<T>*>& grads, double lr);

 private:
  Options options_;
  std::vector<tensor::TensorT<T>> velocity_;  // lazily shaped to params
};

/// Adam (Kingma & Ba) with bias correction and decoupled weight decay
/// (AdamW-style).
template <typename T>
class Adam {
 public:
  struct Options {
    double beta1 = 0.9;
    double beta2 = 0.999;
    double eps = 1e-8;
    double weight_decay = 0.0;
  };

  explicit Adam(Options options = {}) : options_(options) {}

  void step(const std::vector<tensor::TensorT<T>*>& params,
            const std::vector<tensor::TensorT<T>*>& grads, double lr);

  long long steps_taken() const { return t_; }

 private:
  Options options_;
  long long t_ = 0;
  std::vector<tensor::TensorT<T>> m_, v_;
};

/// ‖g‖₂ over a gradient list; with a communicator, the squared partial sums
/// are all-reduced so fully-sharded engines (Optimus) get the global norm.
template <typename T>
T global_grad_norm(const std::vector<tensor::TensorT<T>*>& grads,
                   comm::Communicator* world = nullptr);

/// Scales gradients in place so the global norm is at most `max_norm`.
/// Returns the pre-clip norm.
template <typename T>
T clip_grad_norm(const std::vector<tensor::TensorT<T>*>& grads, T max_norm,
                 comm::Communicator* world = nullptr);

}  // namespace optimus::runtime
