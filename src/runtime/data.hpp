#pragma once

// Synthetic workload generators.
//
// The paper evaluates throughput/memory only (no accuracy), so the shape of
// the data — (b, s, v) — is what matters. These generators provide:
//
//   * RandomLmWorkload    — uniform token streams; the benchmark workload.
//   * PatternLmWorkload   — periodic sequences the model can actually learn,
//                           used by tests/examples to show loss → 0.
//   * SyntheticClsWorkload — linearly separable class-conditional token
//                           distributions for the classification branch.
//   * CharCorpus          — a character-level corpus for the text-generation
//                           example (encode/decode + batch sampling).
//
// All generators are deterministic given their seed.

#include <array>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace optimus::runtime {

struct LmBatch {
  tensor::ITensor tokens;  // [b, s]
  tensor::ITensor labels;  // [b, s] next-token targets, last position masked
};

struct ClsBatch {
  tensor::ITensor tokens;  // [b, s]
  tensor::ITensor labels;  // [b]
};

class RandomLmWorkload {
 public:
  RandomLmWorkload(tensor::index_t batch, tensor::index_t seq_len, tensor::index_t vocab,
                   std::uint64_t seed)
      : batch_(batch), seq_len_(seq_len), vocab_(vocab), rng_(seed) {}

  LmBatch next();

 private:
  tensor::index_t batch_, seq_len_, vocab_;
  util::Rng rng_;
};

/// Sequences of the form x_t = (offset + t) mod period mapped into the vocab;
/// after seeing one period, the next token is exactly predictable.
class PatternLmWorkload {
 public:
  PatternLmWorkload(tensor::index_t batch, tensor::index_t seq_len, tensor::index_t vocab,
                    tensor::index_t period, std::uint64_t seed)
      : batch_(batch), seq_len_(seq_len), vocab_(vocab), period_(period), rng_(seed) {
    OPT_CHECK(period >= 2 && period <= vocab, "period must be in [2, vocab]");
  }

  LmBatch next();

 private:
  tensor::index_t batch_, seq_len_, vocab_, period_;
  util::Rng rng_;
};

/// Class c draws tokens from the vocab band [c·v/C, (c+1)·v/C) with
/// probability `purity` and uniformly otherwise — separable for purity > 1/C.
class SyntheticClsWorkload {
 public:
  SyntheticClsWorkload(tensor::index_t batch, tensor::index_t seq_len, tensor::index_t vocab,
                       tensor::index_t num_classes, double purity, std::uint64_t seed)
      : batch_(batch),
        seq_len_(seq_len),
        vocab_(vocab),
        classes_(num_classes),
        purity_(purity),
        rng_(seed) {
    OPT_CHECK(num_classes >= 2 && vocab >= num_classes, "need v >= C >= 2");
  }

  ClsBatch next();

 private:
  tensor::index_t batch_, seq_len_, vocab_, classes_;
  double purity_;
  util::Rng rng_;
};

/// Wraps a batch source shared by the lock-stepped ranks of a simulated
/// cluster. Every rank thread calls `sampler(rank)` and observes the identical
/// batch sequence, while the source is drawn exactly once per position (the
/// first consumer to reach a position fills the cache; stragglers replay it).
/// Copies of the returned functor share one cache, so it can be captured by
/// value into a cluster body. Replaces the hand-rolled static-cache lambdas
/// the examples used to carry.
template <typename Source>
auto make_cached_sampler(Source source) {
  using Batch = decltype(source());
  struct State {
    explicit State(Source s) : src(std::move(s)) {}
    std::mutex mu;
    Source src;
    std::vector<Batch> cache;
    std::vector<std::size_t> cursor;  // per-rank read position
  };
  auto state = std::make_shared<State>(std::move(source));
  return [state](int rank) -> Batch {
    std::lock_guard<std::mutex> lock(state->mu);
    if (state->cursor.size() <= static_cast<std::size_t>(rank)) {
      state->cursor.resize(static_cast<std::size_t>(rank) + 1, 0);
    }
    const std::size_t i = state->cursor[static_cast<std::size_t>(rank)]++;
    if (i >= state->cache.size()) state->cache.push_back(state->src());
    return state->cache[i];
  };
}

/// Character-level corpus: vocabulary = distinct bytes of the text.
class CharCorpus {
 public:
  explicit CharCorpus(std::string text);

  tensor::index_t vocab_size() const { return static_cast<tensor::index_t>(chars_.size()); }
  tensor::index_t length() const { return static_cast<tensor::index_t>(encoded_.size()); }

  /// Samples b random windows of length s+1; tokens are the first s chars,
  /// labels the last s (standard next-char objective, nothing masked).
  LmBatch sample(tensor::index_t batch, tensor::index_t seq_len, util::Rng& rng) const;

  std::int32_t encode(char c) const;
  char decode(std::int32_t token) const;
  std::string decode(const std::vector<std::int32_t>& tokens) const;

  /// A built-in public-domain-style snippet used by the examples.
  static const char* builtin_text();

 private:
  std::string chars_;                 // index → char
  std::array<std::int32_t, 256> to_index_;
  std::vector<std::int32_t> encoded_;
};

}  // namespace optimus::runtime
