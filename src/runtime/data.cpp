#include "runtime/data.hpp"

#include <algorithm>
#include <set>

namespace optimus::runtime {

namespace {

using tensor::index_t;
using tensor::ITensor;
using tensor::Shape;

}  // namespace

LmBatch RandomLmWorkload::next() {
  LmBatch batch;
  batch.tokens = ITensor(Shape{batch_, seq_len_});
  batch.labels = ITensor(Shape{batch_, seq_len_});
  for (index_t b = 0; b < batch_; ++b) {
    for (index_t t = 0; t < seq_len_; ++t) {
      batch.tokens.at(b, t) = static_cast<std::int32_t>(rng_.uniform_index(vocab_));
    }
  }
  for (index_t b = 0; b < batch_; ++b) {
    for (index_t t = 0; t < seq_len_; ++t) {
      batch.labels.at(b, t) = t + 1 < seq_len_ ? batch.tokens.at(b, t + 1) : -1;
    }
  }
  return batch;
}

LmBatch PatternLmWorkload::next() {
  LmBatch batch;
  batch.tokens = ITensor(Shape{batch_, seq_len_});
  batch.labels = ITensor(Shape{batch_, seq_len_});
  for (index_t b = 0; b < batch_; ++b) {
    const index_t offset = static_cast<index_t>(rng_.uniform_index(period_));
    for (index_t t = 0; t < seq_len_; ++t) {
      batch.tokens.at(b, t) = static_cast<std::int32_t>((offset + t) % period_);
    }
  }
  for (index_t b = 0; b < batch_; ++b) {
    for (index_t t = 0; t < seq_len_; ++t) {
      batch.labels.at(b, t) = t + 1 < seq_len_ ? batch.tokens.at(b, t + 1) : -1;
    }
  }
  return batch;
}

ClsBatch SyntheticClsWorkload::next() {
  ClsBatch batch;
  batch.tokens = ITensor(Shape{batch_, seq_len_});
  batch.labels = ITensor(Shape{batch_});
  const index_t band = vocab_ / classes_;
  for (index_t b = 0; b < batch_; ++b) {
    const index_t cls = static_cast<index_t>(rng_.uniform_index(classes_));
    batch.labels[b] = static_cast<std::int32_t>(cls);
    for (index_t t = 0; t < seq_len_; ++t) {
      if (rng_.uniform() < purity_) {
        batch.tokens.at(b, t) =
            static_cast<std::int32_t>(cls * band + rng_.uniform_index(band));
      } else {
        batch.tokens.at(b, t) = static_cast<std::int32_t>(rng_.uniform_index(vocab_));
      }
    }
  }
  return batch;
}

CharCorpus::CharCorpus(std::string text) {
  OPT_CHECK(text.size() >= 2, "corpus too small");
  to_index_.fill(-1);
  std::set<char> distinct(text.begin(), text.end());
  chars_.assign(distinct.begin(), distinct.end());
  for (std::size_t i = 0; i < chars_.size(); ++i) {
    to_index_[static_cast<unsigned char>(chars_[i])] = static_cast<std::int32_t>(i);
  }
  encoded_.reserve(text.size());
  for (char c : text) encoded_.push_back(to_index_[static_cast<unsigned char>(c)]);
}

LmBatch CharCorpus::sample(index_t batch, index_t seq_len, util::Rng& rng) const {
  OPT_CHECK(length() > seq_len + 1, "corpus shorter than one window");
  LmBatch out;
  out.tokens = ITensor(Shape{batch, seq_len});
  out.labels = ITensor(Shape{batch, seq_len});
  for (index_t b = 0; b < batch; ++b) {
    const index_t start =
        static_cast<index_t>(rng.uniform_index(static_cast<std::uint64_t>(length() - seq_len - 1)));
    for (index_t t = 0; t < seq_len; ++t) {
      out.tokens.at(b, t) = encoded_[static_cast<std::size_t>(start + t)];
      out.labels.at(b, t) = encoded_[static_cast<std::size_t>(start + t + 1)];
    }
  }
  return out;
}

std::int32_t CharCorpus::encode(char c) const {
  const std::int32_t idx = to_index_[static_cast<unsigned char>(c)];
  OPT_CHECK(idx >= 0, "character not in corpus vocabulary");
  return idx;
}

char CharCorpus::decode(std::int32_t token) const {
  OPT_CHECK(token >= 0 && token < static_cast<std::int32_t>(chars_.size()),
            "token " << token << " out of vocab");
  return chars_[static_cast<std::size_t>(token)];
}

std::string CharCorpus::decode(const std::vector<std::int32_t>& tokens) const {
  std::string out;
  out.reserve(tokens.size());
  for (std::int32_t t : tokens) out.push_back(decode(t));
  return out;
}

const char* CharCorpus::builtin_text() {
  // A small rhythmic snippet with heavy repetition: a char-level model learns
  // visible structure within a few hundred steps.
  return "the wheels on the bus go round and round, round and round, round and round. "
         "the wheels on the bus go round and round, all through the town. "
         "the wipers on the bus go swish swish swish, swish swish swish, swish swish swish. "
         "the wipers on the bus go swish swish swish, all through the town. "
         "the horn on the bus goes beep beep beep, beep beep beep, beep beep beep. "
         "the horn on the bus goes beep beep beep, all through the town. "
         "the doors on the bus go open and shut, open and shut, open and shut. "
         "the doors on the bus go open and shut, all through the town. "
         "the driver on the bus says move on back, move on back, move on back. "
         "the driver on the bus says move on back, all through the town. "
         "the people on the bus go up and down, up and down, up and down. "
         "the people on the bus go up and down, all through the town. ";
}

}  // namespace optimus::runtime
