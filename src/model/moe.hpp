#pragma once

// Mixture-of-Experts feed-forward layers — the paper's §6 future-work
// direction ("MoE is prevailing … we suggest future work to streamline the
// communication and reduce memory redundancy in such models").
//
// Two implementations of a Switch-style top-1 gated FFN
// (Fedus, Zoph & Shazeer 2021 — ref. [7] of the paper):
//
//   * SwitchFfn                — single-device reference: per token, a linear
//     gate picks one expert; the token passes through that expert's
//     GELU-MLP and is scaled by its gate probability. Includes the standard
//     differentiable load-balancing auxiliary loss  aux = α·E·Σ_e f_e·P̄_e.
//
//   * ExpertParallelSwitchFfn  — experts partitioned across the p ranks of a
//     communicator (E/p each); tokens are sharded by rank. Routing uses a
//     fixed per-(source, expert) capacity  C = ⌈capacity_factor·T_local/E⌉
//     so the exchange is a regular all_to_all (tokens over capacity are
//     dropped and contribute zero, exactly Switch's behaviour); the gate is
//     replicated and its gradient all-reduced. With enough capacity the
//     output is bitwise-equal to the serial layer on the same tokens.
//
// Both are standalone layers (x [tokens, h] → y [tokens, h]) with explicit
// forward/backward, matching the repository's hand-managed style.

#include <vector>

#include "comm/communicator.hpp"
#include "tensor/ops.hpp"
#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace optimus::model {

struct MoeConfig {
  tensor::index_t hidden = 16;        // h
  tensor::index_t ffn_hidden = 32;    // f (per expert)
  tensor::index_t num_experts = 4;    // E
  double capacity_factor = 2.0;       // expert-parallel slots per source rank
  double aux_loss_coef = 0.01;        // α of the load-balancing loss
  double init_scale = 0.05;
  std::uint64_t seed = 99;

  void validate() const {
    OPT_CHECK(hidden >= 1 && ffn_hidden >= 1 && num_experts >= 2, "bad MoE dims");
    OPT_CHECK(capacity_factor > 0, "capacity factor must be positive");
  }
};

// Counter-RNG streams (shared by both implementations so their parameters
// are identical).
inline constexpr std::uint64_t kMoeGateStream = 1000;
inline std::uint64_t moe_expert_stream(tensor::index_t expert, int which /*0=w1,1=w2*/) {
  return 1024 + 2 * static_cast<std::uint64_t>(expert) + static_cast<std::uint64_t>(which);
}

/// Single-device Switch FFN (the oracle).
template <typename T>
class SwitchFfn {
 public:
  explicit SwitchFfn(const MoeConfig& cfg);

  /// x: [tokens, h] → y: [tokens, h]. Retains state for backward.
  tensor::TensorT<T> forward(const tensor::TensorT<T>& x);

  /// Load-balancing loss of the last forward (already scaled by α).
  T aux_loss() const { return aux_loss_; }

  /// dy → dx; parameter gradients accumulate. Includes the aux-loss gradient.
  tensor::TensorT<T> backward(const tensor::TensorT<T>& dy);

  void zero_grads();
  std::vector<tensor::TensorT<T>*> parameters();
  std::vector<tensor::TensorT<T>*> gradients();

  /// Expert chosen for each token of the last forward.
  const std::vector<tensor::index_t>& assignments() const { return assign_; }
  /// Tokens routed to each expert in the last forward.
  std::vector<tensor::index_t> expert_counts() const;

  tensor::TensorT<T>& gate_w() { return gate_w_; }
  tensor::TensorT<T>& expert_w1(tensor::index_t e) { return experts_[e].w1; }
  tensor::TensorT<T>& expert_w1_grad(tensor::index_t e) { return grads_[e].w1; }
  tensor::TensorT<T>& gate_w_grad() { return d_gate_w_; }

 private:
  struct Expert {
    tensor::TensorT<T> w1, b1, w2, b2;  // [h,f], [f], [f,h], [h]
  };

  MoeConfig cfg_;
  tensor::TensorT<T> gate_w_, d_gate_w_;  // [h, E]
  std::vector<Expert> experts_, grads_;

  // Forward state.
  tensor::TensorT<T> x_, probs_;          // [T, h], [T, E]
  tensor::TensorT<T> u_pre_, gelu_u_, f_out_;  // [T, f], [T, f], [T, h]
  std::vector<tensor::index_t> assign_;   // [T]
  std::vector<T> gate_val_;               // [T]
  T aux_loss_ = 0;
};

/// Expert-parallel Switch FFN over a 1D communicator.
template <typename T>
class ExpertParallelSwitchFfn {
 public:
  /// Collective. num_experts % comm.size() == 0; each rank owns E/p experts
  /// and processes its own token shard.
  ExpertParallelSwitchFfn(const MoeConfig& cfg, comm::Communicator& comm);

  /// x: this rank's [tokens_local, h] shard → y of the same shape. Dropped
  /// tokens (over capacity) produce zero rows, as in Switch.
  tensor::TensorT<T> forward(const tensor::TensorT<T>& x);

  T aux_loss() const { return aux_loss_; }
  /// Tokens dropped on this rank in the last forward.
  tensor::index_t dropped() const { return dropped_; }

  tensor::TensorT<T> backward(const tensor::TensorT<T>& dy);

  void zero_grads();
  /// Owned parameters: the replicated gate (grad all-reduced in backward) and
  /// this rank's E/p experts.
  std::vector<tensor::TensorT<T>*> parameters();
  std::vector<tensor::TensorT<T>*> gradients();

  tensor::index_t experts_local() const { return cfg_.num_experts / comm_->size(); }
  tensor::index_t capacity() const { return capacity_; }
  tensor::TensorT<T>& gate_w_grad() { return d_gate_w_; }
  /// Local expert le's first-layer weight gradient.
  tensor::TensorT<T>& expert_w1_grad(tensor::index_t le) { return grads_[le].w1; }

 private:
  struct Expert {
    tensor::TensorT<T> w1, b1, w2, b2;
  };

  /// Slot index within the dispatch buffer for (destination expert e, i-th
  /// accepted token for e from this rank).
  tensor::index_t slot_of(tensor::index_t e, tensor::index_t i) const {
    return e * capacity_ + i;
  }

  MoeConfig cfg_;
  comm::Communicator* comm_;
  tensor::index_t tokens_local_ = 0;  // fixed at first forward
  tensor::index_t capacity_ = 0;

  tensor::TensorT<T> gate_w_, d_gate_w_;  // replicated [h, E]
  std::vector<Expert> experts_, grads_;   // E/p local experts

  // Forward state.
  tensor::TensorT<T> x_, probs_;
  std::vector<tensor::index_t> assign_;      // expert per token (global id)
  std::vector<tensor::index_t> slot_;        // slot per token, −1 if dropped
  std::vector<T> gate_val_;
  tensor::TensorT<T> f_out_;                 // [T_local, h] expert outputs per token
  tensor::TensorT<T> recv_x_;                // [p·E_loc·C, h] expert-side inputs
  tensor::TensorT<T> u_pre_, gelu_u_;        // expert-side intermediates
  tensor::index_t dropped_ = 0;
  T aux_loss_ = 0;
  T total_tokens_ = 0;                       // all-reduced batch size (aux backward)
  std::vector<T> expert_fraction_;           // global f_e (for aux backward)
};

}  // namespace optimus::model
