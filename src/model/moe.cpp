#include "model/moe.hpp"

#include <algorithm>
#include <cmath>

namespace optimus::model {

namespace {

using tensor::index_t;
using tensor::Shape;
using tensor::TensorT;
namespace ops = tensor::ops;

}  // namespace

// ===========================================================================
// SwitchFfn (serial oracle)
// ===========================================================================

template <typename T>
SwitchFfn<T>::SwitchFfn(const MoeConfig& cfg) : cfg_(cfg) {
  cfg_.validate();
  const index_t h = cfg_.hidden;
  const index_t f = cfg_.ffn_hidden;
  const index_t E = cfg_.num_experts;
  const util::CounterRng rng(cfg_.seed);
  const T scale = static_cast<T>(cfg_.init_scale);

  gate_w_ = TensorT<T>(Shape{h, E});
  ops::fill_counter_uniform(gate_w_, rng, kMoeGateStream, scale, 0, 0, E);
  d_gate_w_ = TensorT<T>::zeros(gate_w_.shape());
  experts_.resize(E);
  grads_.resize(E);
  for (index_t e = 0; e < E; ++e) {
    experts_[e].w1 = TensorT<T>(Shape{h, f});
    ops::fill_counter_uniform(experts_[e].w1, rng, moe_expert_stream(e, 0), scale, 0, 0, f);
    experts_[e].b1 = TensorT<T>::zeros(Shape{f});
    experts_[e].w2 = TensorT<T>(Shape{f, h});
    ops::fill_counter_uniform(experts_[e].w2, rng, moe_expert_stream(e, 1), scale, 0, 0, h);
    experts_[e].b2 = TensorT<T>::zeros(Shape{h});
    grads_[e].w1 = TensorT<T>::zeros(Shape{h, f});
    grads_[e].b1 = TensorT<T>::zeros(Shape{f});
    grads_[e].w2 = TensorT<T>::zeros(Shape{f, h});
    grads_[e].b2 = TensorT<T>::zeros(Shape{h});
  }
}

template <typename T>
TensorT<T> SwitchFfn<T>::forward(const TensorT<T>& x) {
  const index_t h = cfg_.hidden;
  const index_t f = cfg_.ffn_hidden;
  const index_t E = cfg_.num_experts;
  OPT_CHECK(x.ndim() == 2 && x.size(1) == h, "SwitchFfn input must be [tokens, h]");
  const index_t tokens = x.size(0);
  x_ = x.clone();

  // Gate: softmax(x·W_g); top-1 routing.
  TensorT<T> logits = ops::matmul(x_, gate_w_);
  probs_ = TensorT<T>(logits.shape());
  ops::softmax_lastdim(logits, probs_);
  assign_.assign(static_cast<std::size_t>(tokens), 0);
  gate_val_.assign(static_cast<std::size_t>(tokens), T{0});
  for (index_t t = 0; t < tokens; ++t) {
    index_t best = 0;
    for (index_t e = 1; e < E; ++e) {
      if (probs_.at(t, e) > probs_.at(t, best)) best = e;
    }
    assign_[t] = best;
    gate_val_[t] = probs_.at(t, best);
  }

  // Expert FFNs, grouped per expert for dense GEMMs.
  u_pre_ = TensorT<T>(Shape{tokens, f});
  gelu_u_ = TensorT<T>(Shape{tokens, f});
  f_out_ = TensorT<T>(Shape{tokens, h});
  TensorT<T> y(Shape{tokens, h});
  for (index_t e = 0; e < E; ++e) {
    std::vector<index_t> mine;
    for (index_t t = 0; t < tokens; ++t) {
      if (assign_[t] == e) mine.push_back(t);
    }
    if (mine.empty()) continue;
    const index_t n = static_cast<index_t>(mine.size());
    TensorT<T> xe(Shape{n, h});
    for (index_t i = 0; i < n; ++i) {
      std::memcpy(xe.data() + i * h, x_.data() + mine[i] * h, h * sizeof(T));
    }
    TensorT<T> u(Shape{n, f});
    TensorT<T> g(Shape{n, f});
    ops::gemm_bias_gelu(g, u, xe, experts_[e].w1, experts_[e].b1);
    TensorT<T> o(Shape{n, h});
    ops::gemm_bias(o, g, experts_[e].w2, experts_[e].b2);
    for (index_t i = 0; i < n; ++i) {
      const index_t t = mine[i];
      std::memcpy(u_pre_.data() + t * f, u.data() + i * f, f * sizeof(T));
      std::memcpy(gelu_u_.data() + t * f, g.data() + i * f, f * sizeof(T));
      std::memcpy(f_out_.data() + t * h, o.data() + i * h, h * sizeof(T));
      for (index_t j = 0; j < h; ++j) y.at(t, j) = gate_val_[t] * o.at(i, j);
    }
  }

  // Load-balancing auxiliary loss: α·E·Σ_e f_e·P̄_e.
  const auto counts = expert_counts();
  T aux{0};
  for (index_t e = 0; e < E; ++e) {
    T p_mean{0};
    for (index_t t = 0; t < tokens; ++t) p_mean += probs_.at(t, e);
    p_mean /= static_cast<T>(tokens);
    aux += static_cast<T>(counts[e]) / static_cast<T>(tokens) * p_mean;
  }
  aux_loss_ = static_cast<T>(cfg_.aux_loss_coef) * static_cast<T>(E) * aux;
  return y;
}

template <typename T>
TensorT<T> SwitchFfn<T>::backward(const TensorT<T>& dy) {
  const index_t h = cfg_.hidden;
  const index_t f = cfg_.ffn_hidden;
  const index_t E = cfg_.num_experts;
  OPT_CHECK(x_.defined(), "call forward() first");
  const index_t tokens = x_.size(0);
  OPT_CHECK(dy.size(0) == tokens && dy.size(1) == h, "dy shape mismatch");

  TensorT<T> dx = TensorT<T>::zeros(Shape{tokens, h});
  // dp accumulates the gate-probability gradient (routing + aux paths).
  TensorT<T> dp = TensorT<T>::zeros(Shape{tokens, E});
  const auto counts = expert_counts();
  const T aux_term = static_cast<T>(cfg_.aux_loss_coef) * static_cast<T>(E) /
                     static_cast<T>(tokens);
  for (index_t t = 0; t < tokens; ++t) {
    for (index_t e = 0; e < E; ++e) {
      dp.at(t, e) = aux_term * static_cast<T>(counts[e]) / static_cast<T>(tokens);
    }
  }

  // Expert path: y_t = g_t·F_{e_t}(x_t).
  for (index_t e = 0; e < E; ++e) {
    std::vector<index_t> mine;
    for (index_t t = 0; t < tokens; ++t) {
      if (assign_[t] == e) mine.push_back(t);
    }
    if (mine.empty()) continue;
    const index_t n = static_cast<index_t>(mine.size());
    TensorT<T> xe(Shape{n, h}), df(Shape{n, h}), u(Shape{n, f}), g(Shape{n, f});
    for (index_t i = 0; i < n; ++i) {
      const index_t t = mine[i];
      std::memcpy(xe.data() + i * h, x_.data() + t * h, h * sizeof(T));
      std::memcpy(u.data() + i * f, u_pre_.data() + t * f, f * sizeof(T));
      std::memcpy(g.data() + i * f, gelu_u_.data() + t * f, f * sizeof(T));
      // dF = g_t · dy_t; the gate's own gradient is dotted below.
      for (index_t j = 0; j < h; ++j) df.at(i, j) = gate_val_[t] * dy.at(t, j);
      T dg{0};
      for (index_t j = 0; j < h; ++j) dg += dy.at(t, j) * f_out_.at(t, j);
      dp.at(t, e) += dg;
    }
    ops::gemm(grads_[e].w2, g, df, ops::Trans::Yes, ops::Trans::No, T{1}, T{1});
    ops::bias_grad(df, grads_[e].b2, /*accumulate=*/true);
    TensorT<T> dgl(Shape{n, f});
    ops::gemm(dgl, df, experts_[e].w2, ops::Trans::No, ops::Trans::Yes);
    TensorT<T> du(Shape{n, f});
    ops::gelu_backward(u, dgl, du, /*accumulate=*/false);
    ops::gemm(grads_[e].w1, xe, du, ops::Trans::Yes, ops::Trans::No, T{1}, T{1});
    ops::bias_grad(du, grads_[e].b1, true);
    TensorT<T> dxe(Shape{n, h});
    ops::gemm(dxe, du, experts_[e].w1, ops::Trans::No, ops::Trans::Yes);
    for (index_t i = 0; i < n; ++i) {
      const index_t t = mine[i];
      for (index_t j = 0; j < h; ++j) dx.at(t, j) += dxe.at(i, j);
    }
  }

  // Gate path through the softmax Jacobian.
  TensorT<T> dlogits(Shape{tokens, E});
  ops::softmax_backward_lastdim(probs_, dp, dlogits);
  ops::gemm(d_gate_w_, x_, dlogits, ops::Trans::Yes, ops::Trans::No, T{1}, T{1});
  ops::gemm(dx, dlogits, gate_w_, ops::Trans::No, ops::Trans::Yes, T{1}, T{1});
  return dx;
}

template <typename T>
std::vector<index_t> SwitchFfn<T>::expert_counts() const {
  std::vector<index_t> counts(static_cast<std::size_t>(cfg_.num_experts), 0);
  for (index_t e : assign_) counts[static_cast<std::size_t>(e)] += 1;
  return counts;
}

template <typename T>
void SwitchFfn<T>::zero_grads() {
  for (auto* g : gradients()) g->zero();
}

template <typename T>
std::vector<TensorT<T>*> SwitchFfn<T>::parameters() {
  std::vector<TensorT<T>*> out{&gate_w_};
  for (auto& e : experts_) out.insert(out.end(), {&e.w1, &e.b1, &e.w2, &e.b2});
  return out;
}

template <typename T>
std::vector<TensorT<T>*> SwitchFfn<T>::gradients() {
  std::vector<TensorT<T>*> out{&d_gate_w_};
  for (auto& e : grads_) out.insert(out.end(), {&e.w1, &e.b1, &e.w2, &e.b2});
  return out;
}

// ===========================================================================
// ExpertParallelSwitchFfn
// ===========================================================================

template <typename T>
ExpertParallelSwitchFfn<T>::ExpertParallelSwitchFfn(const MoeConfig& cfg,
                                                    comm::Communicator& comm)
    : cfg_(cfg), comm_(&comm) {
  cfg_.validate();
  OPT_CHECK(cfg_.num_experts % comm.size() == 0,
            "experts " << cfg_.num_experts << " not divisible by ranks " << comm.size());
  const index_t h = cfg_.hidden;
  const index_t f = cfg_.ffn_hidden;
  const index_t e_loc = experts_local();
  const util::CounterRng rng(cfg_.seed);
  const T scale = static_cast<T>(cfg_.init_scale);

  gate_w_ = TensorT<T>(Shape{h, cfg_.num_experts});
  ops::fill_counter_uniform(gate_w_, rng, kMoeGateStream, scale, 0, 0, cfg_.num_experts);
  d_gate_w_ = TensorT<T>::zeros(gate_w_.shape());
  experts_.resize(e_loc);
  grads_.resize(e_loc);
  for (index_t le = 0; le < e_loc; ++le) {
    const index_t e = comm.rank() * e_loc + le;  // global expert id
    experts_[le].w1 = TensorT<T>(Shape{h, f});
    ops::fill_counter_uniform(experts_[le].w1, rng, moe_expert_stream(e, 0), scale, 0, 0, f);
    experts_[le].b1 = TensorT<T>::zeros(Shape{f});
    experts_[le].w2 = TensorT<T>(Shape{f, h});
    ops::fill_counter_uniform(experts_[le].w2, rng, moe_expert_stream(e, 1), scale, 0, 0, h);
    experts_[le].b2 = TensorT<T>::zeros(Shape{h});
    grads_[le].w1 = TensorT<T>::zeros(Shape{h, f});
    grads_[le].b1 = TensorT<T>::zeros(Shape{f});
    grads_[le].w2 = TensorT<T>::zeros(Shape{f, h});
    grads_[le].b2 = TensorT<T>::zeros(Shape{h});
  }
}

template <typename T>
TensorT<T> ExpertParallelSwitchFfn<T>::forward(const TensorT<T>& x) {
  const index_t h = cfg_.hidden;
  const index_t f = cfg_.ffn_hidden;
  const index_t E = cfg_.num_experts;
  const int p = comm_->size();
  const index_t e_loc = experts_local();
  OPT_CHECK(x.ndim() == 2 && x.size(1) == h, "input must be [tokens_local, h]");
  const index_t tokens = x.size(0);
  tokens_local_ = tokens;
  capacity_ = static_cast<index_t>(
      std::ceil(cfg_.capacity_factor * static_cast<double>(tokens) / E));
  OPT_CHECK(capacity_ >= 1, "capacity must be at least 1 slot");
  x_ = x.clone();

  // Local gating with the replicated gate.
  TensorT<T> logits = ops::matmul(x_, gate_w_);
  probs_ = TensorT<T>(logits.shape());
  ops::softmax_lastdim(logits, probs_);
  assign_.assign(static_cast<std::size_t>(tokens), 0);
  gate_val_.assign(static_cast<std::size_t>(tokens), T{0});
  slot_.assign(static_cast<std::size_t>(tokens), -1);
  std::vector<index_t> used(static_cast<std::size_t>(E), 0);
  dropped_ = 0;
  for (index_t t = 0; t < tokens; ++t) {
    index_t best = 0;
    for (index_t e = 1; e < E; ++e) {
      if (probs_.at(t, e) > probs_.at(t, best)) best = e;
    }
    assign_[t] = best;
    gate_val_[t] = probs_.at(t, best);
    if (used[best] < capacity_) {
      slot_[t] = slot_of(best, used[best]);
      used[best] += 1;
    } else {
      dropped_ += 1;  // Switch semantics: over-capacity tokens pass through as 0
    }
  }

  // Dispatch: send buffer holds, for each destination rank, its e_loc experts
  // × capacity slots of h-vectors (zero-padded).
  const index_t chunk = e_loc * capacity_ * h;  // per destination rank
  TensorT<T> send_buf = TensorT<T>::zeros(Shape{p * chunk});
  for (index_t t = 0; t < tokens; ++t) {
    if (slot_[t] < 0) continue;
    // slot_of(e, i) = e·C + i with e the GLOBAL expert; rebase to the owner.
    const index_t e = assign_[t];
    const index_t dst = e / e_loc;
    const index_t local_slot = (e % e_loc) * capacity_ + (slot_[t] - e * capacity_);
    std::memcpy(send_buf.data() + dst * chunk + local_slot * h, x_.data() + t * h,
                h * sizeof(T));
  }
  recv_x_ = TensorT<T>(Shape{p * e_loc * capacity_, h});
  comm_->all_to_all(send_buf.data(), chunk, recv_x_.data());

  // Expert computation over every received slot (padded slots are zeros; the
  // wasted flops are the standard price of regular-shaped routing).
  const index_t rows = p * e_loc * capacity_;
  u_pre_ = TensorT<T>(Shape{rows, f});
  gelu_u_ = TensorT<T>(Shape{rows, f});
  TensorT<T> out_rows(Shape{rows, h});
  for (int src = 0; src < p; ++src) {
    for (index_t le = 0; le < e_loc; ++le) {
      const index_t r0 = src * e_loc * capacity_ + le * capacity_;
      TensorT<T> xe = recv_x_.row_range(r0, r0 + capacity_);
      TensorT<T> u = u_pre_.row_range(r0, r0 + capacity_);
      TensorT<T> g = gelu_u_.row_range(r0, r0 + capacity_);
      ops::gemm_bias_gelu(g, u, xe, experts_[le].w1, experts_[le].b1);
      TensorT<T> o = out_rows.row_range(r0, r0 + capacity_);
      ops::gemm_bias(o, g, experts_[le].w2, experts_[le].b2);
    }
  }

  // Return trip and combine.
  TensorT<T> back(Shape{p * chunk});
  comm_->all_to_all(out_rows.data(), chunk, back.data());
  f_out_ = TensorT<T>::zeros(Shape{tokens, h});
  TensorT<T> y = TensorT<T>::zeros(Shape{tokens, h});
  for (index_t t = 0; t < tokens; ++t) {
    if (slot_[t] < 0) continue;
    const index_t e = assign_[t];
    const index_t dst = e / e_loc;
    const index_t local_slot = (e % e_loc) * capacity_ + (slot_[t] - e * capacity_);
    const T* src_row = back.data() + dst * chunk + local_slot * h;
    std::memcpy(f_out_.data() + t * h, src_row, h * sizeof(T));
    for (index_t j = 0; j < h; ++j) y.at(t, j) = gate_val_[t] * src_row[j];
  }

  // Global load-balancing statistics (counts and mean gate probabilities are
  // over the full batch, so both are all-reduced).
  std::vector<T> stats(static_cast<std::size_t>(2 * E), T{0});
  for (index_t t = 0; t < tokens; ++t) stats[static_cast<std::size_t>(assign_[t])] += T{1};
  for (index_t e = 0; e < E; ++e) {
    for (index_t t = 0; t < tokens; ++t) stats[E + e] += probs_.at(t, e);
  }
  T total_tokens = static_cast<T>(tokens);
  comm_->all_reduce(stats.data(), 2 * E);
  comm_->all_reduce(&total_tokens, 1);
  total_tokens_ = total_tokens;
  expert_fraction_.assign(static_cast<std::size_t>(E), T{0});
  T aux{0};
  for (index_t e = 0; e < E; ++e) {
    expert_fraction_[e] = stats[e] / total_tokens;
    aux += expert_fraction_[e] * (stats[E + e] / total_tokens);
  }
  aux_loss_ = static_cast<T>(cfg_.aux_loss_coef) * static_cast<T>(E) * aux;
  return y;
}

template <typename T>
TensorT<T> ExpertParallelSwitchFfn<T>::backward(const TensorT<T>& dy) {
  const index_t h = cfg_.hidden;
  const index_t f = cfg_.ffn_hidden;
  const index_t E = cfg_.num_experts;
  const int p = comm_->size();
  const index_t e_loc = experts_local();
  OPT_CHECK(x_.defined(), "call forward() first");
  const index_t tokens = tokens_local_;
  OPT_CHECK(dy.size(0) == tokens && dy.size(1) == h, "dy shape mismatch");

  // Gate-probability gradient: routing dot products + the aux term. The aux
  // loss is a global mean, so its per-token derivative uses the all-reduced
  // global token count from forward (shards need not be equal).
  TensorT<T> dp = TensorT<T>::zeros(Shape{tokens, E});
  const T aux_term =
      static_cast<T>(cfg_.aux_loss_coef) * static_cast<T>(E) / total_tokens_;
  for (index_t t = 0; t < tokens; ++t) {
    for (index_t e = 0; e < E; ++e) dp.at(t, e) = aux_term * expert_fraction_[e];
    if (slot_[t] >= 0) {
      T dg{0};
      for (index_t j = 0; j < h; ++j) dg += dy.at(t, j) * f_out_.at(t, j);
      dp.at(t, assign_[t]) += dg;
    }
  }

  // Ship dF = g·dy to the experts along the same routes.
  const index_t chunk = e_loc * capacity_ * h;
  TensorT<T> send_buf = TensorT<T>::zeros(Shape{p * chunk});
  for (index_t t = 0; t < tokens; ++t) {
    if (slot_[t] < 0) continue;
    const index_t e = assign_[t];
    const index_t dst = e / e_loc;
    const index_t local_slot = (e % e_loc) * capacity_ + (slot_[t] - e * capacity_);
    T* row = send_buf.data() + dst * chunk + local_slot * h;
    for (index_t j = 0; j < h; ++j) row[j] = gate_val_[t] * dy.at(t, j);
  }
  const index_t rows = p * e_loc * capacity_;
  TensorT<T> df_rows(Shape{rows, h});
  comm_->all_to_all(send_buf.data(), chunk, df_rows.data());

  // Expert backward per (source, local expert) block.
  TensorT<T> dx_rows(Shape{rows, h});
  for (int src = 0; src < p; ++src) {
    for (index_t le = 0; le < e_loc; ++le) {
      const index_t r0 = src * e_loc * capacity_ + le * capacity_;
      TensorT<T> xe = recv_x_.row_range(r0, r0 + capacity_);
      TensorT<T> u = u_pre_.row_range(r0, r0 + capacity_);
      TensorT<T> g = gelu_u_.row_range(r0, r0 + capacity_);
      TensorT<T> df = df_rows.row_range(r0, r0 + capacity_);
      ops::gemm(grads_[le].w2, g, df, ops::Trans::Yes, ops::Trans::No, T{1}, T{1});
      ops::bias_grad(df, grads_[le].b2, true);
      TensorT<T> dgl(Shape{capacity_, f});
      ops::gemm(dgl, df, experts_[le].w2, ops::Trans::No, ops::Trans::Yes);
      TensorT<T> du(Shape{capacity_, f});
      ops::gelu_backward(u, dgl, du, false);
      ops::gemm(grads_[le].w1, xe, du, ops::Trans::Yes, ops::Trans::No, T{1}, T{1});
      ops::bias_grad(du, grads_[le].b1, true);
      TensorT<T> dxe = dx_rows.row_range(r0, r0 + capacity_);
      ops::gemm(dxe, du, experts_[le].w1, ops::Trans::No, ops::Trans::Yes);
    }
  }
  // Padded slots carried zero dF but b1/b2 gradients still saw their bias-only
  // activations' derivative = 0 because dF = 0 ⇒ df, dgl, du are all zero for
  // those rows. dx for them is zero too.

  // Route input gradients back to the token owners.
  TensorT<T> back(Shape{p * chunk});
  comm_->all_to_all(dx_rows.data(), chunk, back.data());
  TensorT<T> dx = TensorT<T>::zeros(Shape{tokens, h});
  for (index_t t = 0; t < tokens; ++t) {
    if (slot_[t] < 0) continue;
    const index_t e = assign_[t];
    const index_t dst = e / e_loc;
    const index_t local_slot = (e % e_loc) * capacity_ + (slot_[t] - e * capacity_);
    std::memcpy(dx.data() + t * h, back.data() + dst * chunk + local_slot * h,
                h * sizeof(T));
  }

  // Gate backward; the gate is replicated, so this step's *delta* is summed
  // across shards before accumulating (accumulation itself must not be
  // re-reduced on later steps).
  TensorT<T> dlogits(Shape{tokens, E});
  ops::softmax_backward_lastdim(probs_, dp, dlogits);
  TensorT<T> dgw(Shape{h, E});
  ops::gemm(dgw, x_, dlogits, ops::Trans::Yes, ops::Trans::No, T{1}, T{0});
  comm_->all_reduce(dgw);
  ops::add_(d_gate_w_, dgw);
  ops::gemm(dx, dlogits, gate_w_, ops::Trans::No, ops::Trans::Yes, T{1}, T{1});
  return dx;
}

template <typename T>
void ExpertParallelSwitchFfn<T>::zero_grads() {
  for (auto* g : gradients()) g->zero();
}

template <typename T>
std::vector<TensorT<T>*> ExpertParallelSwitchFfn<T>::parameters() {
  std::vector<TensorT<T>*> out{&gate_w_};
  for (auto& e : experts_) out.insert(out.end(), {&e.w1, &e.b1, &e.w2, &e.b2});
  return out;
}

template <typename T>
std::vector<TensorT<T>*> ExpertParallelSwitchFfn<T>::gradients() {
  std::vector<TensorT<T>*> out{&d_gate_w_};
  for (auto& e : grads_) out.insert(out.end(), {&e.w1, &e.b1, &e.w2, &e.b2});
  return out;
}

template class SwitchFfn<float>;
template class SwitchFfn<double>;
template class ExpertParallelSwitchFfn<float>;
template class ExpertParallelSwitchFfn<double>;

}  // namespace optimus::model
