#pragma once

// Transformer configuration shared by the serial oracle and both distributed
// engines, following the paper's symbol conventions (§2.1):
//
//   b = batch, s = sequence length, h = hidden size, n = attention heads,
//   v = vocabulary, N = transformer layers, p = devices, q = √p.

#include <cstdint>

#include "tensor/shape.hpp"
#include "util/check.hpp"

namespace optimus::model {

struct TransformerConfig {
  tensor::index_t batch = 4;      // b
  tensor::index_t seq_len = 8;    // s
  tensor::index_t hidden = 16;    // h
  tensor::index_t heads = 4;      // n
  tensor::index_t vocab = 32;     // v
  tensor::index_t layers = 2;     // N
  tensor::index_t mlp_ratio = 4;  // MLP expands h → mlp_ratio·h
  tensor::index_t num_classes = 2;  // classification-branch labels
  bool causal = true;             // causal attention mask (LM convention)
  double layernorm_eps = 1e-5;
  double init_scale = 0.05;       // weights ~ U[−init_scale, init_scale]
  std::uint64_t seed = 1234;      // drives counter-based parameter init

  tensor::index_t head_dim() const { return hidden / heads; }
  tensor::index_t ffn_hidden() const { return mlp_ratio * hidden; }
  tensor::index_t tokens_per_batch() const { return batch * seq_len; }

  /// Total parameter count of the stem + embedding + heads.
  std::uint64_t parameter_count() const;

  /// Validity for serial execution.
  void validate() const {
    OPT_CHECK(batch >= 1 && seq_len >= 1 && hidden >= 1 && heads >= 1 && vocab >= 2 &&
                  layers >= 1 && mlp_ratio >= 1,
              "non-positive transformer dimension");
    OPT_CHECK(hidden % heads == 0, "hidden " << hidden << " not divisible by heads " << heads);
  }

  /// Additional divisibility the q×q Optimus layout needs (§3.2.1): the batch
  /// and hidden axes split q ways, heads stay whole per device column, and
  /// the vocabulary splits q ways for the 2D embedding/lm-head. At depth > 1
  /// (the Tesseract q×q×d mesh) every SUMMA contraction block further splits
  /// d ways into per-depth sub-panels, so each global contraction dimension
  /// the engine multiplies over — hidden (and through it 3h and the FFN
  /// width), vocab, and the token rows b·s/q of the weight-gradient Aᵀ·B
  /// calls — must divide by q·d.
  void validate_for_mesh(int q, int depth = 1) const {
    validate();
    OPT_CHECK(batch % q == 0, "batch " << batch << " not divisible by q " << q);
    OPT_CHECK(hidden % q == 0, "hidden " << hidden << " not divisible by q " << q);
    OPT_CHECK(heads % q == 0, "heads " << heads << " not divisible by q " << q);
    OPT_CHECK(vocab % q == 0, "vocab " << vocab << " not divisible by q " << q);
    OPT_CHECK(num_classes >= 1, "num_classes");
    OPT_CHECK(depth >= 1, "mesh depth " << depth);
    if (depth > 1) {
      OPT_CHECK(hidden % (static_cast<tensor::index_t>(q) * depth) == 0,
                "hidden " << hidden << " not divisible by q*d " << q * depth);
      OPT_CHECK(vocab % (static_cast<tensor::index_t>(q) * depth) == 0,
                "vocab " << vocab << " not divisible by q*d " << q * depth);
      OPT_CHECK((batch / q * seq_len) % depth == 0,
                "token rows " << batch / q * seq_len << " not divisible by depth " << depth);
    }
  }

  /// Divisibility Megatron's 1D layout needs: every device owns n/p whole
  /// heads and 1/p of each weight matrix's split dimension.
  void validate_for_1d(int p) const {
    validate();
    OPT_CHECK(heads % p == 0, "heads " << heads << " not divisible by devices " << p);
    OPT_CHECK(ffn_hidden() % p == 0, "ffn hidden not divisible by devices " << p);
    OPT_CHECK(vocab % p == 0, "vocab " << vocab << " not divisible by devices " << p);
  }
};

}  // namespace optimus::model
