#include "model/attention.hpp"

#include <cmath>
#include <cstring>
#include <vector>

#include "model/kv_cache.hpp"
#include "tensor/ops.hpp"
#include "tensor/parallel.hpp"

namespace optimus::model {

namespace {

using tensor::index_t;
using tensor::Shape;
using tensor::TensorT;
namespace ops = tensor::ops;

template <typename T>
void apply_causal_mask(T* scores, index_t s) {
  // Row t may attend to columns 0..t. Use a large negative value rather than
  // −inf so exp() underflows cleanly to zero.
  const T neg = T{-1e9};
  for (index_t t = 0; t < s; ++t) {
    T* row = scores + t * s;
    for (index_t u = t + 1; u < s; ++u) row[u] = neg;
  }
}

}  // namespace

template <typename T>
void attention_forward(const TensorT<T>& qkv, index_t b, index_t s, index_t heads, index_t d,
                       bool causal, TensorT<T>& ctx, TensorT<T>& probs) {
  const index_t qkv_cols = heads * 3 * d;
  const index_t ctx_cols = heads * d;
  OPT_CHECK(qkv.numel() == b * s * qkv_cols, "qkv shape mismatch: " << qkv.shape().to_string());
  OPT_CHECK(ctx.numel() == b * s * ctx_cols, "ctx shape mismatch");
  OPT_CHECK(probs.numel() == b * heads * s * s, "probs buffer mismatch");
  const T scale = T{1} / static_cast<T>(std::sqrt(static_cast<double>(d)));

  // Heads are fully independent (disjoint P and C slices, no allocation in
  // the body), so the (batch, head) loop is the natural intra-op parallel
  // axis; the per-head GEMMs then run serially on their worker.
  tensor::parallel_for(b * heads, /*grain=*/1, [&](index_t w0, index_t w1) {
    for (index_t w = w0; w < w1; ++w) {
      const index_t bi = w / heads;
      const index_t hi = w % heads;
      const T* base = qkv.data() + bi * s * qkv_cols + hi * 3 * d;
      const T* Q = base;          // [s, d], row stride qkv_cols
      const T* K = base + d;      // [s, d]
      const T* V = base + 2 * d;  // [s, d]
      T* P = probs.data() + (bi * heads + hi) * s * s;  // [s, s]
      T* C = ctx.data() + bi * s * ctx_cols + hi * d;   // [s, d], row stride ctx_cols

      // scores = scale · Q·Kᵀ, then mask + softmax in place (P doubles as the
      // score buffer).
      ops::gemm_raw(P, Q, K, s, s, d, qkv_cols, qkv_cols, s, ops::Trans::No, ops::Trans::Yes,
                    scale, T{0});
      if (causal) apply_causal_mask(P, s);
      // Row-wise softmax over the s columns of P.
      TensorT<T> p_view = TensorT<T>::wrap(P, Shape{s, s}, nullptr);
      ops::softmax_lastdim(p_view, p_view);
      // ctx = P·V.
      ops::gemm_raw(C, P, V, s, d, s, s, qkv_cols, ctx_cols, ops::Trans::No, ops::Trans::No,
                    T{1}, T{0});
    }
  });
}

template <typename T>
void attention_backward(const TensorT<T>& qkv, const TensorT<T>& probs,
                        const TensorT<T>& dctx, index_t b, index_t s, index_t heads, index_t d,
                        TensorT<T>& dqkv) {
  const index_t qkv_cols = heads * 3 * d;
  const index_t ctx_cols = heads * d;
  OPT_CHECK(dqkv.numel() == qkv.numel(), "dqkv shape mismatch");
  OPT_CHECK(dctx.numel() == b * s * ctx_cols, "dctx shape mismatch");
  const T scale = T{1} / static_cast<T>(std::sqrt(static_cast<double>(d)));

  TensorT<T> dscores(Shape{s, s});
  for (index_t bi = 0; bi < b; ++bi) {
    for (index_t hi = 0; hi < heads; ++hi) {
      const T* base = qkv.data() + bi * s * qkv_cols + hi * 3 * d;
      const T* Q = base;
      const T* K = base + d;
      const T* V = base + 2 * d;
      T* dbase = dqkv.data() + bi * s * qkv_cols + hi * 3 * d;
      T* dQ = dbase;
      T* dK = dbase + d;
      T* dV = dbase + 2 * d;
      const T* P = probs.data() + (bi * heads + hi) * s * s;
      const T* dC = dctx.data() + bi * s * ctx_cols + hi * d;

      // dV = Pᵀ·dC   [s, d]
      ops::gemm_raw(dV, P, dC, s, d, s, s, ctx_cols, qkv_cols, ops::Trans::Yes, ops::Trans::No,
                    T{1}, T{0});
      // dP = dC·Vᵀ   [s, s]
      ops::gemm_raw(dscores.data(), dC, V, s, s, d, ctx_cols, qkv_cols, s, ops::Trans::No,
                    ops::Trans::Yes, T{1}, T{0});
      // dscores = softmax backward through P (in place on dscores).
      TensorT<T> p_view = TensorT<T>::wrap(const_cast<T*>(P), Shape{s, s}, nullptr);
      ops::softmax_backward_lastdim(p_view, dscores, dscores);
      // Masked positions have P = 0, which softmax_backward maps to 0 — no
      // explicit re-mask needed.
      // dQ = scale·dscores·K   [s, d]
      ops::gemm_raw(dQ, dscores.data(), K, s, d, s, s, qkv_cols, qkv_cols, ops::Trans::No,
                    ops::Trans::No, scale, T{0});
      // dK = scale·dscoresᵀ·Q  [s, d]
      ops::gemm_raw(dK, dscores.data(), Q, s, d, s, s, qkv_cols, qkv_cols, ops::Trans::Yes,
                    ops::Trans::No, scale, T{0});
    }
  }
}

template <typename T>
void attention_forward_fused(const TensorT<T>& qkv, index_t b, index_t s, index_t heads,
                             index_t d, bool causal, TensorT<T>& ctx, TensorT<T>& scratch) {
  const index_t qkv_cols = heads * 3 * d;
  const index_t ctx_cols = heads * d;
  OPT_CHECK(qkv.numel() == b * s * qkv_cols, "qkv shape mismatch");
  OPT_CHECK(ctx.numel() == b * s * ctx_cols, "ctx shape mismatch");
  OPT_CHECK(scratch.numel() >= s * s, "fused scratch needs >= s*s elements");
  const T scale = T{1} / static_cast<T>(std::sqrt(static_cast<double>(d)));
  T* P = scratch.data();

  for (index_t bi = 0; bi < b; ++bi) {
    for (index_t hi = 0; hi < heads; ++hi) {
      const T* base = qkv.data() + bi * s * qkv_cols + hi * 3 * d;
      const T* Q = base;
      const T* K = base + d;
      const T* V = base + 2 * d;
      T* C = ctx.data() + bi * s * ctx_cols + hi * d;
      ops::gemm_raw(P, Q, K, s, s, d, qkv_cols, qkv_cols, s, ops::Trans::No, ops::Trans::Yes,
                    scale, T{0});
      if (causal) apply_causal_mask(P, s);
      TensorT<T> p_view = TensorT<T>::wrap(P, Shape{s, s}, nullptr);
      ops::softmax_lastdim(p_view, p_view);
      ops::gemm_raw(C, P, V, s, d, s, s, qkv_cols, ctx_cols, ops::Trans::No, ops::Trans::No,
                    T{1}, T{0});
      // P is overwritten by the next head — never materialised globally.
    }
  }
}

template <typename T>
void attention_backward_fused(const TensorT<T>& qkv, const TensorT<T>& dctx, index_t b,
                              index_t s, index_t heads, index_t d, bool causal,
                              TensorT<T>& dqkv, TensorT<T>& scratch) {
  const index_t qkv_cols = heads * 3 * d;
  const index_t ctx_cols = heads * d;
  OPT_CHECK(dqkv.numel() == qkv.numel(), "dqkv shape mismatch");
  OPT_CHECK(scratch.numel() >= 2 * s * s, "fused scratch needs >= 2*s*s elements");
  const T scale = T{1} / static_cast<T>(std::sqrt(static_cast<double>(d)));
  T* P = scratch.data();
  T* dS = scratch.data() + s * s;

  for (index_t bi = 0; bi < b; ++bi) {
    for (index_t hi = 0; hi < heads; ++hi) {
      const T* base = qkv.data() + bi * s * qkv_cols + hi * 3 * d;
      const T* Q = base;
      const T* K = base + d;
      const T* V = base + 2 * d;
      T* dbase = dqkv.data() + bi * s * qkv_cols + hi * 3 * d;
      T* dQ = dbase;
      T* dK = dbase + d;
      T* dV = dbase + 2 * d;
      const T* dC = dctx.data() + bi * s * ctx_cols + hi * d;

      // Recompute this head's probabilities (the fusion trade: bs²h extra
      // multiplies instead of a b·n·s² resident tensor).
      ops::gemm_raw(P, Q, K, s, s, d, qkv_cols, qkv_cols, s, ops::Trans::No, ops::Trans::Yes,
                    scale, T{0});
      if (causal) apply_causal_mask(P, s);
      TensorT<T> p_view = TensorT<T>::wrap(P, Shape{s, s}, nullptr);
      ops::softmax_lastdim(p_view, p_view);

      ops::gemm_raw(dV, P, dC, s, d, s, s, ctx_cols, qkv_cols, ops::Trans::Yes, ops::Trans::No,
                    T{1}, T{0});
      ops::gemm_raw(dS, dC, V, s, s, d, ctx_cols, qkv_cols, s, ops::Trans::No,
                    ops::Trans::Yes, T{1}, T{0});
      TensorT<T> ds_view = TensorT<T>::wrap(dS, Shape{s, s}, nullptr);
      ops::softmax_backward_lastdim(p_view, ds_view, ds_view);
      ops::gemm_raw(dQ, dS, K, s, d, s, s, qkv_cols, qkv_cols, ops::Trans::No, ops::Trans::No,
                    scale, T{0});
      ops::gemm_raw(dK, dS, Q, s, d, s, s, qkv_cols, qkv_cols, ops::Trans::Yes,
                    ops::Trans::No, scale, T{0});
    }
  }
}

template <typename T>
void attention_decode(const TensorT<T>& qkv, index_t slots, index_t heads, index_t d,
                      KvCacheT<T>& cache, index_t layer, TensorT<T>& ctx) {
  const index_t qkv_cols = heads * 3 * d;
  const index_t ctx_cols = heads * d;
  const index_t cap = cache.capacity();
  OPT_CHECK(qkv.numel() == slots * qkv_cols, "decode qkv shape mismatch");
  OPT_CHECK(ctx.numel() == slots * ctx_cols, "decode ctx shape mismatch");
  OPT_CHECK(slots == cache.slots() && heads == cache.heads() && d == cache.head_dim(),
            "cache shard mismatch: [" << cache.slots() << ", " << cache.heads() << "x"
                                      << cache.head_dim() << "] vs [" << slots << ", "
                                      << heads << "x" << d << "]");
  const T scale = T{1} / static_cast<T>(std::sqrt(static_cast<double>(d)));
  T* kc = cache.k_data(layer);
  T* vc = cache.v_data(layer);

  // (slot, head) pairs touch disjoint cache and ctx slices, so they are the
  // intra-op parallel axis exactly as in the prefill path.
  tensor::parallel_for(slots * heads, /*grain=*/1, [&](index_t w0, index_t w1) {
    std::vector<T> probs;
    for (index_t w = w0; w < w1; ++w) {
      const index_t bi = w / heads;
      const index_t hi = w % heads;
      const index_t len = cache.len(bi);
      OPT_CHECK(len < cap, "kv cache slot " << bi << " full");
      const index_t L = len + 1;
      const T* base = qkv.data() + bi * qkv_cols + hi * 3 * d;
      const T* Q = base;  // [1, d]
      // Append this step's K/V at position `len` (head-major inner layout).
      T* k_row = kc + (bi * cap + len) * ctx_cols + hi * d;
      T* v_row = vc + (bi * cap + len) * ctx_cols + hi * d;
      std::memcpy(k_row, base + d, static_cast<std::size_t>(d) * sizeof(T));
      std::memcpy(v_row, base + 2 * d, static_cast<std::size_t>(d) * sizeof(T));
      const T* K = kc + bi * cap * ctx_cols + hi * d;  // [L, d], row stride ctx_cols
      const T* V = vc + bi * cap * ctx_cols + hi * d;

      // scores = scale · q·Kᵀ over the L cached positions, softmax, then
      // ctx = P·V — the same gemm/softmax routines as prefill, restricted to
      // one query row.
      probs.resize(static_cast<std::size_t>(L));
      T* P = probs.data();
      ops::gemm_raw(P, Q, K, 1, L, d, qkv_cols, ctx_cols, L, ops::Trans::No, ops::Trans::Yes,
                    scale, T{0});
      TensorT<T> p_view = TensorT<T>::wrap(P, Shape{1, L}, nullptr);
      ops::softmax_lastdim(p_view, p_view);
      T* C = ctx.data() + bi * ctx_cols + hi * d;  // [1, d]
      ops::gemm_raw(C, P, V, 1, d, L, L, ctx_cols, ctx_cols, ops::Trans::No, ops::Trans::No,
                    T{1}, T{0});
    }
  });
}

#define OPTIMUS_INSTANTIATE_ATTENTION(T)                                                   \
  template void attention_forward<T>(const TensorT<T>&, index_t, index_t, index_t,        \
                                     index_t, bool, TensorT<T>&, TensorT<T>&);             \
  template void attention_backward<T>(const TensorT<T>&, const TensorT<T>&,               \
                                      const TensorT<T>&, index_t, index_t, index_t,       \
                                      index_t, TensorT<T>&);                               \
  template void attention_forward_fused<T>(const TensorT<T>&, index_t, index_t, index_t,  \
                                           index_t, bool, TensorT<T>&, TensorT<T>&);      \
  template void attention_backward_fused<T>(const TensorT<T>&, const TensorT<T>&,         \
                                            index_t, index_t, index_t, index_t, bool,     \
                                            TensorT<T>&, TensorT<T>&);                     \
  template void attention_decode<T>(const TensorT<T>&, index_t, index_t, index_t,         \
                                    KvCacheT<T>&, index_t, TensorT<T>&);

OPTIMUS_INSTANTIATE_ATTENTION(float)
OPTIMUS_INSTANTIATE_ATTENTION(double)

#undef OPTIMUS_INSTANTIATE_ATTENTION

}  // namespace optimus::model
