#pragma once

// Per-layer key/value cache for incremental decode, shared by every engine.
//
// Each engine allocates its *local shard* of the cache, mirroring how it
// shards activations:
//
//   serial    [slots,     capacity, heads·d]      (dense oracle)
//   Megatron  [slots,     capacity, heads/p·d]    (column-sharded heads)
//   Optimus   [slots/q,   capacity, heads/q·d]    (row-split batch slots,
//                                                  col-split heads — §3.2.1)
//
// Layout per layer: K and V tensors of shape [slots, capacity, heads·d] with
// the same head-major inner stride as the fused QKV activations, so a cached
// row is exactly the K (or V) slice of the qkv row that produced it. Slot
// lengths are shared across layers (every layer appends at the same position
// within one decode step) and advanced once per step by the engine.
//
// The tensors are ordinary TensorT allocations, so the cache footprint is
// tracked by the memory accountant (DeviceContext) like any activation.

#include <cstdint>
#include <vector>

#include "tensor/tensor.hpp"
#include "util/check.hpp"

namespace optimus::model {

template <typename T>
class KvCacheT {
 public:
  KvCacheT(tensor::index_t layers, tensor::index_t slots, tensor::index_t capacity,
           tensor::index_t heads, tensor::index_t head_dim)
      : slots_(slots),
        capacity_(capacity),
        heads_(heads),
        head_dim_(head_dim),
        len_(static_cast<std::size_t>(slots), 0) {
    OPT_CHECK(layers >= 1 && slots >= 1 && capacity >= 1 && heads >= 1 && head_dim >= 1,
              "kv cache shape [" << layers << ", " << slots << ", " << capacity << ", "
                                 << heads << "x" << head_dim << "]");
    k_.reserve(static_cast<std::size_t>(layers));
    v_.reserve(static_cast<std::size_t>(layers));
    const tensor::Shape shape{slots, capacity, heads * head_dim};
    for (tensor::index_t l = 0; l < layers; ++l) {
      k_.push_back(tensor::TensorT<T>::zeros(shape));
      v_.push_back(tensor::TensorT<T>::zeros(shape));
    }
  }

  tensor::index_t layers() const { return static_cast<tensor::index_t>(k_.size()); }
  tensor::index_t slots() const { return slots_; }
  tensor::index_t capacity() const { return capacity_; }
  tensor::index_t heads() const { return heads_; }
  tensor::index_t head_dim() const { return head_dim_; }
  /// Inner row stride: heads·d.
  tensor::index_t row_elems() const { return heads_ * head_dim_; }

  tensor::index_t len(tensor::index_t slot) const {
    return len_[static_cast<std::size_t>(slot)];
  }

  /// Frees a slot for reuse (the stale K/V rows are simply overwritten).
  void reset(tensor::index_t slot) { len_[static_cast<std::size_t>(slot)] = 0; }
  void reset_all() { std::fill(len_.begin(), len_.end(), tensor::index_t{0}); }

  /// Advances the write cursor of every active slot by one position (called
  /// once per decode step, after all layers appended). `active` may be null:
  /// every slot advances.
  void advance(const std::vector<std::uint8_t>* active) {
    for (tensor::index_t i = 0; i < slots_; ++i) {
      if (active != nullptr && !(*active)[static_cast<std::size_t>(i)]) continue;
      OPT_CHECK(len_[static_cast<std::size_t>(i)] < capacity_,
                "kv cache slot " << i << " overflow (capacity " << capacity_ << ")");
      ++len_[static_cast<std::size_t>(i)];
    }
  }

  /// Base pointer of layer l's K (or V) shard.
  T* k_data(tensor::index_t l) { return k_[static_cast<std::size_t>(l)].data(); }
  T* v_data(tensor::index_t l) { return v_[static_cast<std::size_t>(l)].data(); }

  std::uint64_t footprint_bytes() const {
    return static_cast<std::uint64_t>(k_.size()) * 2u *
           static_cast<std::uint64_t>(slots_ * capacity_ * row_elems()) * sizeof(T);
  }

 private:
  tensor::index_t slots_, capacity_, heads_, head_dim_;
  std::vector<tensor::TensorT<T>> k_, v_;
  std::vector<tensor::index_t> len_;  // per slot, shared by all layers
};

}  // namespace optimus::model
