#pragma once

// Parameter initialisation conventions shared by every engine.
//
// All weights of the *global* (unpartitioned) model are defined as pure
// functions of (seed, stream, flat index) via util::CounterRng. A device
// holding only a block of a matrix fills it with ops::fill_counter_uniform
// using the block's global offsets, and is guaranteed bit-identical values to
// the serial oracle — no initialisation broadcast is ever needed.
//
// Stream assignment (must never change once tests encode it):
//   1              — embedding table [v, h] (tied with the lm-head)
//   2              — classification head weight [h, num_classes]
//   16 + 4·layer + k — layer weights, k: 0 = W_qkv, 1 = W_proj, 2 = W_fc1,
//                                       3 = W_fc2
//
// Biases start at zero and layernorm gains at one, so they need no streams.
//
// Global QKV layout: W_qkv is [h, 3h] with output columns ordered
// head-major — column (head·3·d + which·d + i) with which ∈ {0=Q, 1=K, 2=V}.
// This keeps each head's Q, K and V contiguous, so any contiguous column
// range covering whole heads (Megatron's 1/p slice, Optimus's 1/q slice)
// contains complete heads.

#include <cstdint>

#include "tensor/shape.hpp"

namespace optimus::model {

inline constexpr std::uint64_t kEmbeddingStream = 1;
inline constexpr std::uint64_t kClsHeadStream = 2;
inline constexpr std::uint64_t kPosEmbeddingStream = 3;

enum class LayerWeight : int { kQkv = 0, kProj = 1, kFc1 = 2, kFc2 = 3 };

inline std::uint64_t layer_weight_stream(tensor::index_t layer, LayerWeight which) {
  return 16 + 4 * static_cast<std::uint64_t>(layer) + static_cast<std::uint64_t>(which);
}

}  // namespace optimus::model
