#pragma once

// Device-local multi-head attention core, shared by every engine.
//
// The fused QKV activations are laid out [b_local, s, heads_local·3·d]
// head-major (see param_init.hpp), with the full sequence present — exactly
// the Optimus layout (§3.2.1: "a whole s is partitioned to one device", each
// device owning b/q sequences and n/q heads), of which the serial model
// (b, n) and Megatron (b, n/p) are special cases.
//
// Nonlinear(Q·Kᵀ)·V is computed entirely locally — no communication. The
// attention probabilities are saved for backward; under activation
// checkpointing, callers recompute the forward so probs only live during a
// single layer's backward pass (the paper's §6 fusion discussion).

#include <vector>

#include "tensor/tensor.hpp"

namespace optimus::model {

/// scores = softmax(mask(Q·Kᵀ/√d)); ctx = scores·V.
/// qkv: [b·s, heads·3·d] (head-major), ctx out: [b·s, heads·d],
/// probs out: [b·heads·s·s] (saved for backward).
template <typename T>
void attention_forward(const tensor::TensorT<T>& qkv, tensor::index_t b, tensor::index_t s,
                       tensor::index_t heads, tensor::index_t d, bool causal,
                       tensor::TensorT<T>& ctx, tensor::TensorT<T>& probs);

/// Backward of attention_forward. dqkv is written (not accumulated).
template <typename T>
void attention_backward(const tensor::TensorT<T>& qkv, const tensor::TensorT<T>& probs,
                        const tensor::TensorT<T>& dctx, tensor::index_t b, tensor::index_t s,
                        tensor::index_t heads, tensor::index_t d, tensor::TensorT<T>& dqkv);

/// Elements the probs buffer needs: b·heads·s·s.
inline tensor::index_t attention_probs_elems(tensor::index_t b, tensor::index_t s,
                                             tensor::index_t heads) {
  return b * heads * s * s;
}

// ---------------------------------------------------------------------------
// Incremental (KV-cached) decode
// ---------------------------------------------------------------------------

template <typename T>
class KvCacheT;

/// One decode step against the cache: qkv holds ONE new position per slot
/// ([slots, heads·3·d], head-major). For each (slot, head) the K/V slices are
/// appended to layer `layer` of the cache at position len(slot), and the new
/// query attends over the len(slot)+1 cached positions — O(len·d) instead of
/// the O(s²·d) full-prefix recompute. Causality is inherent (the cache only
/// holds the prefix), and the result row is bitwise identical to the matching
/// row of attention_forward on the full prefix: the masked prefill columns
/// are exact +0 probabilities appended *after* the prefix in every fold.
/// Slot lengths are NOT advanced here — the engine advances the cache once
/// all layers appended.
template <typename T>
void attention_decode(const tensor::TensorT<T>& qkv, tensor::index_t slots,
                      tensor::index_t heads, tensor::index_t d, KvCacheT<T>& cache,
                      tensor::index_t layer, tensor::TensorT<T>& ctx);

/// Multiply-accumulates attention_decode charges: 2·(len+1)·d per (slot, head).
inline std::uint64_t attention_decode_mults(const std::vector<tensor::index_t>& lens,
                                            tensor::index_t heads, tensor::index_t d) {
  std::uint64_t total = 0;
  for (const tensor::index_t len : lens) {
    total += static_cast<std::uint64_t>(heads) * 2u * static_cast<std::uint64_t>(len + 1) * d;
  }
  return total;
}

// ---------------------------------------------------------------------------
// Fused attention (paper §6, "operation fusion")
// ---------------------------------------------------------------------------
//
// The paper observes that the attention scores occupy a [b, n, s, s] tensor —
// up to 8× the activation footprint at its Table-3 scaling — while their
// computation is cheap (bs²h multiplies vs. the MLP's 8bsh²), so fusing the
// score computation into the surrounding products removes the allocation
// entirely. The fused variants below stream one (batch, head) pair at a time
// through a single [s, s] scratch: forward saves nothing, backward recomputes
// the probabilities per head (extra bs²h multiplies, exactly the paper's
// "computationally cheap intermediate" trade).

/// Forward without saving probabilities. `scratch` must hold ≥ s·s elements.
template <typename T>
void attention_forward_fused(const tensor::TensorT<T>& qkv, tensor::index_t b,
                             tensor::index_t s, tensor::index_t heads, tensor::index_t d,
                             bool causal, tensor::TensorT<T>& ctx,
                             tensor::TensorT<T>& scratch);

/// Backward that recomputes the probabilities per head. `scratch` must hold
/// ≥ 2·s·s elements (probs + dscores).
template <typename T>
void attention_backward_fused(const tensor::TensorT<T>& qkv, const tensor::TensorT<T>& dctx,
                              tensor::index_t b, tensor::index_t s, tensor::index_t heads,
                              tensor::index_t d, bool causal, tensor::TensorT<T>& dqkv,
                              tensor::TensorT<T>& scratch);

/// Scratch elements the fused paths need (forward s², backward 2s²).
inline tensor::index_t attention_fused_scratch_elems(tensor::index_t s) { return 2 * s * s; }

}  // namespace optimus::model
