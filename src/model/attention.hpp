#pragma once

// Device-local multi-head attention core, shared by every engine.
//
// The fused QKV activations are laid out [b_local, s, heads_local·3·d]
// head-major (see param_init.hpp), with the full sequence present — exactly
// the Optimus layout (§3.2.1: "a whole s is partitioned to one device", each
// device owning b/q sequences and n/q heads), of which the serial model
// (b, n) and Megatron (b, n/p) are special cases.
//
// Nonlinear(Q·Kᵀ)·V is computed entirely locally — no communication. The
// attention probabilities are saved for backward; under activation
// checkpointing, callers recompute the forward so probs only live during a
// single layer's backward pass (the paper's §6 fusion discussion).

#include "tensor/tensor.hpp"

namespace optimus::model {

/// scores = softmax(mask(Q·Kᵀ/√d)); ctx = scores·V.
/// qkv: [b·s, heads·3·d] (head-major), ctx out: [b·s, heads·d],
/// probs out: [b·heads·s·s] (saved for backward).
template <typename T>
void attention_forward(const tensor::TensorT<T>& qkv, tensor::index_t b, tensor::index_t s,
                       tensor::index_t heads, tensor::index_t d, bool causal,
                       tensor::TensorT<T>& ctx, tensor::TensorT<T>& probs);

/// Backward of attention_forward. dqkv is written (not accumulated).
template <typename T>
void attention_backward(const tensor::TensorT<T>& qkv, const tensor::TensorT<T>& probs,
                        const tensor::TensorT<T>& dctx, tensor::index_t b, tensor::index_t s,
                        tensor::index_t heads, tensor::index_t d, tensor::TensorT<T>& dqkv);

/// Elements the probs buffer needs: b·heads·s·s.
inline tensor::index_t attention_probs_elems(tensor::index_t b, tensor::index_t s,
                                             tensor::index_t heads) {
  return b * heads * s * s;
}

// ---------------------------------------------------------------------------
// Fused attention (paper §6, "operation fusion")
// ---------------------------------------------------------------------------
//
// The paper observes that the attention scores occupy a [b, n, s, s] tensor —
// up to 8× the activation footprint at its Table-3 scaling — while their
// computation is cheap (bs²h multiplies vs. the MLP's 8bsh²), so fusing the
// score computation into the surrounding products removes the allocation
// entirely. The fused variants below stream one (batch, head) pair at a time
// through a single [s, s] scratch: forward saves nothing, backward recomputes
// the probabilities per head (extra bs²h multiplies, exactly the paper's
// "computationally cheap intermediate" trade).

/// Forward without saving probabilities. `scratch` must hold ≥ s·s elements.
template <typename T>
void attention_forward_fused(const tensor::TensorT<T>& qkv, tensor::index_t b,
                             tensor::index_t s, tensor::index_t heads, tensor::index_t d,
                             bool causal, tensor::TensorT<T>& ctx,
                             tensor::TensorT<T>& scratch);

/// Backward that recomputes the probabilities per head. `scratch` must hold
/// ≥ 2·s·s elements (probs + dscores).
template <typename T>
void attention_backward_fused(const tensor::TensorT<T>& qkv, const tensor::TensorT<T>& dctx,
                              tensor::index_t b, tensor::index_t s, tensor::index_t heads,
                              tensor::index_t d, bool causal, tensor::TensorT<T>& dqkv,
                              tensor::TensorT<T>& scratch);

/// Scratch elements the fused paths need (forward s², backward 2s²).
inline tensor::index_t attention_fused_scratch_elems(tensor::index_t s) { return 2 * s * s; }

}  // namespace optimus::model
