#include "model/serial_model.hpp"

#include "model/attention.hpp"
#include "model/param_init.hpp"
#include "util/rng.hpp"

namespace optimus::model {

namespace {

using tensor::index_t;
using tensor::ITensor;
using tensor::Shape;
using tensor::TensorT;
namespace ops = tensor::ops;

}  // namespace

template <typename T>
SerialTransformer<T>::SerialTransformer(const TransformerConfig& cfg) : cfg_(cfg) {
  cfg_.validate();
  init_parameters();
}

template <typename T>
void SerialTransformer<T>::init_parameters() {
  const index_t h = cfg_.hidden;
  const index_t f = cfg_.ffn_hidden();
  const index_t v = cfg_.vocab;
  const index_t s = cfg_.seq_len;
  const index_t c = cfg_.num_classes;
  const util::CounterRng rng(cfg_.seed);
  const T scale = static_cast<T>(cfg_.init_scale);

  embedding_ = TensorT<T>(Shape{v, h});
  ops::fill_counter_uniform(embedding_, rng, kEmbeddingStream, scale, 0, 0, h);
  d_embedding_ = TensorT<T>::zeros(Shape{v, h});
  pos_embedding_ = TensorT<T>(Shape{s, h});
  ops::fill_counter_uniform(pos_embedding_, rng, kPosEmbeddingStream, scale, 0, 0, h);
  d_pos_embedding_ = TensorT<T>::zeros(Shape{s, h});

  layers_.resize(cfg_.layers);
  grads_.resize(cfg_.layers);
  for (index_t l = 0; l < cfg_.layers; ++l) {
    LayerParams<T>& p = layers_[l];
    p.ln1_g = TensorT<T>::full(Shape{h}, T{1});
    p.ln1_b = TensorT<T>::zeros(Shape{h});
    p.qkv_w = TensorT<T>(Shape{h, 3 * h});
    ops::fill_counter_uniform(p.qkv_w, rng, layer_weight_stream(l, LayerWeight::kQkv), scale,
                              0, 0, 3 * h);
    p.qkv_b = TensorT<T>::zeros(Shape{3 * h});
    p.proj_w = TensorT<T>(Shape{h, h});
    ops::fill_counter_uniform(p.proj_w, rng, layer_weight_stream(l, LayerWeight::kProj), scale,
                              0, 0, h);
    p.proj_b = TensorT<T>::zeros(Shape{h});
    p.ln2_g = TensorT<T>::full(Shape{h}, T{1});
    p.ln2_b = TensorT<T>::zeros(Shape{h});
    p.fc1_w = TensorT<T>(Shape{h, f});
    ops::fill_counter_uniform(p.fc1_w, rng, layer_weight_stream(l, LayerWeight::kFc1), scale,
                              0, 0, f);
    p.fc1_b = TensorT<T>::zeros(Shape{f});
    p.fc2_w = TensorT<T>(Shape{f, h});
    ops::fill_counter_uniform(p.fc2_w, rng, layer_weight_stream(l, LayerWeight::kFc2), scale,
                              0, 0, h);
    p.fc2_b = TensorT<T>::zeros(Shape{h});

    LayerParams<T>& g = grads_[l];
    g.ln1_g = TensorT<T>::zeros(Shape{h});
    g.ln1_b = TensorT<T>::zeros(Shape{h});
    g.qkv_w = TensorT<T>::zeros(Shape{h, 3 * h});
    g.qkv_b = TensorT<T>::zeros(Shape{3 * h});
    g.proj_w = TensorT<T>::zeros(Shape{h, h});
    g.proj_b = TensorT<T>::zeros(Shape{h});
    g.ln2_g = TensorT<T>::zeros(Shape{h});
    g.ln2_b = TensorT<T>::zeros(Shape{h});
    g.fc1_w = TensorT<T>::zeros(Shape{h, f});
    g.fc1_b = TensorT<T>::zeros(Shape{f});
    g.fc2_w = TensorT<T>::zeros(Shape{f, h});
    g.fc2_b = TensorT<T>::zeros(Shape{h});
  }

  final_ln_g_ = TensorT<T>::full(Shape{h}, T{1});
  final_ln_b_ = TensorT<T>::zeros(Shape{h});
  d_final_ln_g_ = TensorT<T>::zeros(Shape{h});
  d_final_ln_b_ = TensorT<T>::zeros(Shape{h});

  cls_w_ = TensorT<T>(Shape{h, c});
  ops::fill_counter_uniform(cls_w_, rng, kClsHeadStream, scale, 0, 0, c);
  cls_b_ = TensorT<T>::zeros(Shape{c});
  d_cls_w_ = TensorT<T>::zeros(Shape{h, c});
  d_cls_b_ = TensorT<T>::zeros(Shape{c});
}

template <typename T>
const TensorT<T>& SerialTransformer<T>::forward(const ITensor& tokens) {
  const index_t b = cfg_.batch;
  const index_t s = cfg_.seq_len;
  const index_t h = cfg_.hidden;
  const index_t f = cfg_.ffn_hidden();
  const index_t bs = b * s;
  const T eps = static_cast<T>(cfg_.layernorm_eps);
  OPT_CHECK(tokens.numel() == bs, "tokens must be [b, s] = " << bs << " entries");
  tokens_ = tokens.clone();

  // Token + positional embedding.
  x0_ = TensorT<T>(Shape{bs, h});
  ops::embedding_forward(embedding_, tokens_, x0_);
  for (index_t bi = 0; bi < b; ++bi) {
    for (index_t t = 0; t < s; ++t) {
      T* row = x0_.data() + (bi * s + t) * h;
      const T* pos = pos_embedding_.data() + t * h;
      for (index_t j = 0; j < h; ++j) row[j] += pos[j];
    }
  }

  acts_.clear();
  acts_.resize(cfg_.layers);
  TensorT<T> x = x0_;
  for (index_t l = 0; l < cfg_.layers; ++l) {
    LayerParams<T>& p = layers_[l];
    LayerActs& a = acts_[l];
    a.input = x.clone();

    // LN1
    a.ln1_out = TensorT<T>(Shape{bs, h});
    a.ln1_xhat = TensorT<T>(Shape{bs, h});
    a.ln1_istd = TensorT<T>(Shape{bs});
    ops::layernorm_forward(a.input, p.ln1_g, p.ln1_b, eps, a.ln1_out, a.ln1_xhat, a.ln1_istd);

    // Fused QKV projection (bias applied in the GEMM epilogue).
    a.qkv = TensorT<T>(Shape{bs, 3 * h});
    ops::gemm_bias(a.qkv, a.ln1_out, p.qkv_w, p.qkv_b);

    // Local attention.
    a.ctx = TensorT<T>(Shape{bs, h});
    a.probs = TensorT<T>(Shape{b * cfg_.heads, s, s});
    attention_forward(a.qkv, b, s, cfg_.heads, cfg_.head_dim(), cfg_.causal, a.ctx, a.probs);

    // Output projection + bias + residual, one fused GEMM.
    a.x1 = TensorT<T>(Shape{bs, h});
    ops::gemm_bias_residual(a.x1, a.ctx, p.proj_w, p.proj_b, a.input);

    // LN2 + MLP + residual.
    a.ln2_out = TensorT<T>(Shape{bs, h});
    a.ln2_xhat = TensorT<T>(Shape{bs, h});
    a.ln2_istd = TensorT<T>(Shape{bs});
    ops::layernorm_forward(a.x1, p.ln2_g, p.ln2_b, eps, a.ln2_out, a.ln2_xhat, a.ln2_istd);
    // h→4h with bias+GELU fused into the GEMM epilogue (fc1_out keeps the
    // biased pre-activation for backward), then 4h→h with bias+residual.
    a.fc1_out = TensorT<T>(Shape{bs, f});
    a.gelu_out = TensorT<T>(Shape{bs, f});
    ops::gemm_bias_gelu(a.gelu_out, a.fc1_out, a.ln2_out, p.fc1_w, p.fc1_b);
    TensorT<T> x2(Shape{bs, h});
    ops::gemm_bias_residual(x2, a.gelu_out, p.fc2_w, p.fc2_b, a.x1);
    x = x2;
  }
  stem_out_ = x;

  // Final layernorm.
  hidden_ = TensorT<T>(Shape{bs, h});
  final_xhat_ = TensorT<T>(Shape{bs, h});
  final_istd_ = TensorT<T>(Shape{bs});
  ops::layernorm_forward(stem_out_, final_ln_g_, final_ln_b_, eps, hidden_, final_xhat_,
                         final_istd_);
  return hidden_;
}

template <typename T>
tensor::TensorT<T> SerialTransformer<T>::lm_logits() {
  OPT_CHECK(hidden_.defined(), "call forward() first");
  // Tied weights: logits = X·Eᵀ.
  return ops::matmul(hidden_, embedding_, ops::Trans::No, ops::Trans::Yes);
}

template <typename T>
const TensorT<T>& SerialTransformer<T>::forward_decode(const ITensor& tokens,
                                                       KvCacheT<T>& cache,
                                                       const std::vector<std::uint8_t>* active) {
  const index_t n = tokens.numel();  // cache slots
  const index_t h = cfg_.hidden;
  const index_t f = cfg_.ffn_hidden();
  const T eps = static_cast<T>(cfg_.layernorm_eps);
  OPT_CHECK(n == cache.slots(), "decode tokens must be one per cache slot");
  OPT_CHECK(cache.layers() == cfg_.layers && cache.heads() == cfg_.heads &&
                cache.head_dim() == cfg_.head_dim(),
            "kv cache does not match model config");

  // Token + positional embedding at each slot's next position.
  TensorT<T> x(Shape{n, h});
  ops::embedding_forward(embedding_, tokens, x);
  for (index_t i = 0; i < n; ++i) {
    const index_t t = cache.len(i);
    OPT_CHECK(t < cfg_.seq_len, "decode position " << t << " past seq_len " << cfg_.seq_len);
    T* row = x.data() + i * h;
    const T* pos = pos_embedding_.data() + t * h;
    for (index_t j = 0; j < h; ++j) row[j] += pos[j];
  }

  // Same op sequence as forward(), restricted to one row per slot. Every op
  // in the chain is row-decomposable (LN is per-row, the GEMMs accumulate k
  // in a fixed order per output element, attention is per (slot, head)), so
  // the result matches the full-prefix rows bitwise. Buffers are reused
  // across layers; decode never feeds backward.
  TensorT<T> ln_out(Shape{n, h}), xhat(Shape{n, h}), istd(Shape{n});
  TensorT<T> qkv(Shape{n, 3 * h}), ctx(Shape{n, h}), x1(Shape{n, h});
  TensorT<T> fc1_out(Shape{n, f}), gelu_out(Shape{n, f});
  for (index_t l = 0; l < cfg_.layers; ++l) {
    LayerParams<T>& p = layers_[l];
    ops::layernorm_forward(x, p.ln1_g, p.ln1_b, eps, ln_out, xhat, istd);
    ops::gemm_bias(qkv, ln_out, p.qkv_w, p.qkv_b);
    attention_decode(qkv, n, cfg_.heads, cfg_.head_dim(), cache, l, ctx);
    ops::gemm_bias_residual(x1, ctx, p.proj_w, p.proj_b, x);
    ops::layernorm_forward(x1, p.ln2_g, p.ln2_b, eps, ln_out, xhat, istd);
    ops::gemm_bias_gelu(gelu_out, fc1_out, ln_out, p.fc1_w, p.fc1_b);
    ops::gemm_bias_residual(x, gelu_out, p.fc2_w, p.fc2_b, x1);
  }
  decode_hidden_ = TensorT<T>(Shape{n, h});
  ops::layernorm_forward(x, final_ln_g_, final_ln_b_, eps, decode_hidden_, xhat, istd);
  cache.advance(active);
  return decode_hidden_;
}

template <typename T>
tensor::TensorT<T> SerialTransformer<T>::lm_logits_decode() {
  OPT_CHECK(decode_hidden_.defined(), "call forward_decode() first");
  return ops::matmul(decode_hidden_, embedding_, ops::Trans::No, ops::Trans::Yes);
}

template <typename T>
T SerialTransformer<T>::lm_loss(const ITensor& labels) {
  OPT_CHECK(labels.numel() == cfg_.tokens_per_batch(), "labels must be [b, s]");
  lm_labels_ = labels.clone();
  TensorT<T> logits = lm_logits();
  lm_probs_ = TensorT<T>(logits.shape());
  lm_active_ = 0;
  for (index_t i = 0; i < labels.numel(); ++i) lm_active_ += labels[i] >= 0 ? 1 : 0;
  return ops::cross_entropy_forward(logits, lm_labels_, lm_probs_);
}

template <typename T>
void SerialTransformer<T>::backward_lm() {
  OPT_CHECK(lm_probs_.defined(), "call lm_loss() first");
  const index_t bs = cfg_.tokens_per_batch();
  const T scale = lm_active_ > 0 ? T{1} / static_cast<T>(lm_active_) : T{0};
  TensorT<T> dlogits(lm_probs_.shape());
  ops::cross_entropy_backward(lm_probs_, lm_labels_, scale, dlogits);
  // logits = X·Eᵀ  ⇒  dX = dlogits·E, dE += dlogitsᵀ·X.
  TensorT<T> d_hidden(Shape{bs, cfg_.hidden});
  ops::gemm(d_hidden, dlogits, embedding_);
  ops::gemm(d_embedding_, dlogits, hidden_, ops::Trans::Yes, ops::Trans::No, T{1}, T{1});
  backward_stem(std::move(d_hidden));
}

template <typename T>
tensor::TensorT<T> SerialTransformer<T>::cls_logits() {
  OPT_CHECK(hidden_.defined(), "call forward() first");
  const index_t b = cfg_.batch;
  const index_t h = cfg_.hidden;
  // Pool the first token of every sequence.
  cls_pooled_ = TensorT<T>(Shape{b, h});
  for (index_t bi = 0; bi < b; ++bi) {
    std::memcpy(cls_pooled_.data() + bi * h, hidden_.data() + bi * cfg_.seq_len * h,
                static_cast<std::size_t>(h) * sizeof(T));
  }
  TensorT<T> logits(Shape{b, cfg_.num_classes});
  ops::gemm_bias(logits, cls_pooled_, cls_w_, cls_b_);
  return logits;
}

template <typename T>
T SerialTransformer<T>::cls_loss(const ITensor& labels) {
  OPT_CHECK(labels.numel() == cfg_.batch, "cls labels must be [b]");
  cls_labels_ = labels.clone();
  TensorT<T> logits = cls_logits();
  cls_probs_ = TensorT<T>(logits.shape());
  return ops::cross_entropy_forward(logits, cls_labels_, cls_probs_);
}

template <typename T>
void SerialTransformer<T>::backward_cls() {
  OPT_CHECK(cls_probs_.defined(), "call cls_loss() first");
  const index_t b = cfg_.batch;
  const index_t h = cfg_.hidden;
  TensorT<T> dlogits(cls_probs_.shape());
  ops::cross_entropy_backward(cls_probs_, cls_labels_, T{1} / static_cast<T>(b), dlogits);
  // logits = pooled·W + b.
  ops::gemm(d_cls_w_, cls_pooled_, dlogits, ops::Trans::Yes, ops::Trans::No, T{1}, T{1});
  ops::bias_grad(dlogits, d_cls_b_, /*accumulate=*/true);
  TensorT<T> d_pooled(Shape{b, h});
  ops::gemm(d_pooled, dlogits, cls_w_, ops::Trans::No, ops::Trans::Yes);
  // Scatter back to the first token positions.
  TensorT<T> d_hidden = TensorT<T>::zeros(Shape{cfg_.tokens_per_batch(), h});
  for (index_t bi = 0; bi < b; ++bi) {
    std::memcpy(d_hidden.data() + bi * cfg_.seq_len * h, d_pooled.data() + bi * h,
                static_cast<std::size_t>(h) * sizeof(T));
  }
  backward_stem(std::move(d_hidden));
}

template <typename T>
void SerialTransformer<T>::backward_stem(TensorT<T> d_hidden) {
  const index_t b = cfg_.batch;
  const index_t s = cfg_.seq_len;
  const index_t h = cfg_.hidden;
  const index_t f = cfg_.ffn_hidden();
  const index_t bs = b * s;

  // Final layernorm.
  TensorT<T> dx(Shape{bs, h});
  ops::layernorm_backward(final_xhat_, final_istd_, final_ln_g_, d_hidden, dx, d_final_ln_g_,
                          d_final_ln_b_, /*accumulate_params=*/true);

  for (index_t l = cfg_.layers - 1; l >= 0; --l) {
    LayerParams<T>& p = layers_[l];
    LayerParams<T>& g = grads_[l];
    LayerActs& a = acts_[l];

    // MLP: x2 = x1 + fc2(gelu(fc1(ln2(x1)))).
    TensorT<T> dg(Shape{bs, f});
    ops::gemm(dg, dx, p.fc2_w, ops::Trans::No, ops::Trans::Yes);
    ops::gemm(g.fc2_w, a.gelu_out, dx, ops::Trans::Yes, ops::Trans::No, T{1}, T{1});
    ops::bias_grad(dx, g.fc2_b, /*accumulate=*/true);
    TensorT<T> dm1(Shape{bs, f});
    ops::gelu_backward(a.fc1_out, dg, dm1, /*accumulate=*/false);
    TensorT<T> dln2(Shape{bs, h});
    ops::gemm(dln2, dm1, p.fc1_w, ops::Trans::No, ops::Trans::Yes);
    ops::gemm(g.fc1_w, a.ln2_out, dm1, ops::Trans::Yes, ops::Trans::No, T{1}, T{1});
    ops::bias_grad(dm1, g.fc1_b, /*accumulate=*/true);
    TensorT<T> dx1(Shape{bs, h});
    ops::layernorm_backward(a.ln2_xhat, a.ln2_istd, p.ln2_g, dln2, dx1, g.ln2_g, g.ln2_b,
                            /*accumulate_params=*/true);
    ops::add_(dx1, dx);  // residual path

    // Attention: x1 = x0 + proj(attn(qkv(ln1(x0)))).
    TensorT<T> dctx(Shape{bs, h});
    ops::gemm(dctx, dx1, p.proj_w, ops::Trans::No, ops::Trans::Yes);
    ops::gemm(g.proj_w, a.ctx, dx1, ops::Trans::Yes, ops::Trans::No, T{1}, T{1});
    ops::bias_grad(dx1, g.proj_b, /*accumulate=*/true);
    TensorT<T> dqkv(Shape{bs, 3 * h});
    attention_backward(a.qkv, a.probs, dctx, b, s, cfg_.heads, cfg_.head_dim(), dqkv);
    TensorT<T> dln1(Shape{bs, h});
    ops::gemm(dln1, dqkv, p.qkv_w, ops::Trans::No, ops::Trans::Yes);
    ops::gemm(g.qkv_w, a.ln1_out, dqkv, ops::Trans::Yes, ops::Trans::No, T{1}, T{1});
    ops::bias_grad(dqkv, g.qkv_b, /*accumulate=*/true);
    TensorT<T> dx0(Shape{bs, h});
    ops::layernorm_backward(a.ln1_xhat, a.ln1_istd, p.ln1_g, dln1, dx0, g.ln1_g, g.ln1_b,
                            /*accumulate_params=*/true);
    ops::add_(dx0, dx1);  // residual path
    dx = dx0;
  }

  d_x0_ = dx;
  // Embedding gradients: scatter token grads, sum positional grads over batch.
  ops::embedding_backward(tokens_, d_x0_, d_embedding_);
  for (index_t bi = 0; bi < b; ++bi) {
    for (index_t t = 0; t < s; ++t) {
      const T* src = d_x0_.data() + (bi * s + t) * h;
      T* dst = d_pos_embedding_.data() + t * h;
      for (index_t j = 0; j < h; ++j) dst[j] += src[j];
    }
  }
}

template <typename T>
void SerialTransformer<T>::zero_grads() {
  for (auto* g : gradients()) g->zero();
}

template <typename T>
std::vector<TensorT<T>*> SerialTransformer<T>::parameters() {
  std::vector<TensorT<T>*> out{&embedding_, &pos_embedding_};
  for (auto& p : layers_) {
    out.insert(out.end(), {&p.ln1_g, &p.ln1_b, &p.qkv_w, &p.qkv_b, &p.proj_w, &p.proj_b,
                           &p.ln2_g, &p.ln2_b, &p.fc1_w, &p.fc1_b, &p.fc2_w, &p.fc2_b});
  }
  out.insert(out.end(), {&final_ln_g_, &final_ln_b_, &cls_w_, &cls_b_});
  return out;
}

template <typename T>
std::vector<TensorT<T>*> SerialTransformer<T>::gradients() {
  std::vector<TensorT<T>*> out{&d_embedding_, &d_pos_embedding_};
  for (auto& g : grads_) {
    out.insert(out.end(), {&g.ln1_g, &g.ln1_b, &g.qkv_w, &g.qkv_b, &g.proj_w, &g.proj_b,
                           &g.ln2_g, &g.ln2_b, &g.fc1_w, &g.fc1_b, &g.fc2_w, &g.fc2_b});
  }
  out.insert(out.end(), {&d_final_ln_g_, &d_final_ln_b_, &d_cls_w_, &d_cls_b_});
  return out;
}

template <typename T>
std::vector<std::string> SerialTransformer<T>::parameter_names() const {
  std::vector<std::string> out{"embedding", "pos_embedding"};
  for (index_t l = 0; l < cfg_.layers; ++l) {
    const std::string prefix = "layer" + std::to_string(l) + ".";
    for (const char* n : {"ln1_g", "ln1_b", "qkv_w", "qkv_b", "proj_w", "proj_b", "ln2_g",
                          "ln2_b", "fc1_w", "fc1_b", "fc2_w", "fc2_b"}) {
      out.push_back(prefix + n);
    }
  }
  out.insert(out.end(), {"final_ln_g", "final_ln_b", "cls_w", "cls_b"});
  return out;
}

std::uint64_t TransformerConfig::parameter_count() const {
  const std::uint64_t h = hidden;
  const std::uint64_t f = ffn_hidden();
  const std::uint64_t per_layer = 2 * h          // ln1
                                  + h * 3 * h + 3 * h  // qkv
                                  + h * h + h          // proj
                                  + 2 * h              // ln2
                                  + h * f + f          // fc1
                                  + f * h + h;         // fc2
  return static_cast<std::uint64_t>(vocab) * h + static_cast<std::uint64_t>(seq_len) * h +
         static_cast<std::uint64_t>(layers) * per_layer + 2 * h +
         h * static_cast<std::uint64_t>(num_classes) + num_classes;
}

template class SerialTransformer<float>;
template class SerialTransformer<double>;

}  // namespace optimus::model
