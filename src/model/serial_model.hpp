#pragma once

// Single-device reference Transformer (the correctness oracle).
//
// Structure per Figure 1 of the paper, with the common pre-LN residual
// arrangement:
//
//   tokens → embedding (+ learned positional embedding)
//          → N × [ LN → attention → +residual → LN → MLP(GELU) → +residual ]
//          → final LN
//          → either lm-head (logits = X·Eᵀ, weight-tied) + token-wise
//            cross-entropy, or a classification head over the first token.
//
// Forward/backward are hand-written (no autograd), matching the paper's
// manually-managed execution, and every parameter is initialised from
// util::CounterRng streams (param_init.hpp) so the distributed engines can
// materialise bit-identical blocks independently.
//
// Instantiated for float and double; the double instantiation is what the
// finite-difference tests drive.

#include <string>
#include <vector>

#include "model/config.hpp"
#include "model/kv_cache.hpp"
#include "tensor/ops.hpp"
#include "tensor/tensor.hpp"

namespace optimus::model {

/// Parameters of one transformer layer (global shapes).
template <typename T>
struct LayerParams {
  tensor::TensorT<T> ln1_g, ln1_b;          // [h]
  tensor::TensorT<T> qkv_w;                 // [h, 3h] head-major (param_init.hpp)
  tensor::TensorT<T> qkv_b;                 // [3h]
  tensor::TensorT<T> proj_w;                // [h, h]
  tensor::TensorT<T> proj_b;                // [h]
  tensor::TensorT<T> ln2_g, ln2_b;          // [h]
  tensor::TensorT<T> fc1_w;                 // [h, 4h]
  tensor::TensorT<T> fc1_b;                 // [4h]
  tensor::TensorT<T> fc2_w;                 // [4h, h]
  tensor::TensorT<T> fc2_b;                 // [h]
};

template <typename T>
class SerialTransformer {
 public:
  explicit SerialTransformer(const TransformerConfig& cfg);

  const TransformerConfig& config() const { return cfg_; }

  /// Runs the stem on tokens [b, s]; returns final hidden states [b·s, h]
  /// (after the final layernorm). Activations are retained for backward.
  const tensor::TensorT<T>& forward(const tensor::ITensor& tokens);

  /// Language-model branch: mean token cross-entropy of the tied-weight
  /// lm-head against labels [b, s] (label < 0 masks a position). Must follow
  /// forward() on the same tokens.
  T lm_loss(const tensor::ITensor& labels);

  /// Backward of lm_loss through the whole model; gradients accumulate.
  void backward_lm();

  /// Classification branch: mean cross-entropy of the first-token pooled
  /// classifier against labels [b].
  T cls_loss(const tensor::ITensor& labels);
  void backward_cls();

  /// Classifier logits [b, num_classes] from the last forward().
  tensor::TensorT<T> cls_logits();

  /// lm-head logits [b·s, v] from the last forward() (allocates).
  tensor::TensorT<T> lm_logits();

  // -- incremental decode ----------------------------------------------------

  /// Allocates a dense KV cache sized for this model: one slot per requested
  /// batch lane, `seq_len` capacity.
  KvCacheT<T> make_kv_cache(tensor::index_t slots) const {
    return KvCacheT<T>(cfg_.layers, slots, cfg_.seq_len, cfg_.heads, cfg_.head_dim());
  }

  /// One decode step: tokens [slots], one new token per cache slot, entering
  /// at position cache.len(slot). Attends against the cache (O(len) per
  /// token instead of the O(s²) full-prefix recompute), appends this step's
  /// K/V, advances every active slot (null = all), and returns the hidden
  /// states [slots, h] after the final layernorm — bitwise identical to the
  /// matching rows of forward() on the full prefix. No activations are
  /// retained; decode never feeds backward.
  const tensor::TensorT<T>& forward_decode(const tensor::ITensor& tokens, KvCacheT<T>& cache,
                                           const std::vector<std::uint8_t>* active = nullptr);

  /// lm-head logits [slots, v] from the last forward_decode() (allocates).
  tensor::TensorT<T> lm_logits_decode();

  void zero_grads();

  // -- parameter access ------------------------------------------------------

  /// Flat views over all parameters / their gradients, in a fixed order
  /// shared with parameter_names(). Pointers remain valid for the model's
  /// lifetime.
  std::vector<tensor::TensorT<T>*> parameters();
  std::vector<tensor::TensorT<T>*> gradients();
  std::vector<std::string> parameter_names() const;

  tensor::TensorT<T>& embedding() { return embedding_; }
  tensor::TensorT<T>& embedding_grad() { return d_embedding_; }
  LayerParams<T>& layer(tensor::index_t i) { return layers_[i]; }
  LayerParams<T>& layer_grad(tensor::index_t i) { return grads_[i]; }

  /// Input gradient [b·s, h] w.r.t. the embedding output — used by tests to
  /// compare against the distributed engines.
  const tensor::TensorT<T>& input_grad() const { return d_x0_; }

 private:
  struct LayerActs {
    tensor::TensorT<T> input;                    // [bs, h]
    tensor::TensorT<T> ln1_xhat, ln1_istd, ln1_out;
    tensor::TensorT<T> qkv;                      // [bs, 3h]
    tensor::TensorT<T> probs;                    // [b·n, s, s]
    tensor::TensorT<T> ctx;                      // [bs, h]
    tensor::TensorT<T> x1;                       // [bs, h]
    tensor::TensorT<T> ln2_xhat, ln2_istd, ln2_out;
    tensor::TensorT<T> fc1_out;                  // [bs, 4h] pre-GELU
    tensor::TensorT<T> gelu_out;                 // [bs, 4h]
  };

  void init_parameters();
  /// Stem backward from d(final hidden) [bs, h]; accumulates all gradients
  /// and leaves d_x0_ (grad at embedding output), then scatters into the
  /// embedding tables.
  void backward_stem(tensor::TensorT<T> d_hidden);

  TransformerConfig cfg_;

  // Parameters and gradients.
  tensor::TensorT<T> embedding_, d_embedding_;      // [v, h]
  tensor::TensorT<T> pos_embedding_, d_pos_embedding_;  // [s, h]
  std::vector<LayerParams<T>> layers_;
  std::vector<LayerParams<T>> grads_;
  tensor::TensorT<T> final_ln_g_, final_ln_b_, d_final_ln_g_, d_final_ln_b_;  // [h]
  tensor::TensorT<T> cls_w_, cls_b_, d_cls_w_, d_cls_b_;  // [h, c], [c]

  // Activations of the last forward().
  tensor::ITensor tokens_;
  tensor::TensorT<T> x0_;  // embedding output [bs, h]
  std::vector<LayerActs> acts_;
  tensor::TensorT<T> stem_out_;  // last layer output (pre final LN)
  tensor::TensorT<T> final_xhat_, final_istd_, hidden_;  // final LN state
  tensor::TensorT<T> d_x0_;
  tensor::TensorT<T> decode_hidden_;  // [slots, h], last forward_decode()

  // Branch state for backward.
  tensor::TensorT<T> lm_probs_;   // [bs, v]
  tensor::ITensor lm_labels_;
  tensor::index_t lm_active_ = 0;
  tensor::TensorT<T> cls_probs_;  // [b, c]
  tensor::ITensor cls_labels_;
  tensor::TensorT<T> cls_pooled_;  // [b, h]
};

}  // namespace optimus::model
