#include "testing/fuzz_config.hpp"

#include <numeric>
#include <sstream>

#include "util/check.hpp"

namespace optimus::testing {

namespace {

/// Uniform pick from a list (uses the engine directly so the draw sequence is
/// stable across standard-library implementations of the distributions).
template <typename T>
T pick(std::mt19937& gen, std::initializer_list<T> options) {
  const auto n = options.size();
  return *(options.begin() + gen() % n);
}

int pick_int(std::mt19937& gen, int lo, int hi) {  // inclusive
  return lo + static_cast<int>(gen() % static_cast<unsigned>(hi - lo + 1));
}

}  // namespace

model::TransformerConfig FuzzConfig::to_transformer_config() const {
  model::TransformerConfig cfg;
  cfg.batch = batch;
  cfg.seq_len = seq;
  cfg.hidden = hidden();
  cfg.heads = heads;
  cfg.vocab = vocab;
  cfg.layers = layers;
  cfg.mlp_ratio = mlp_ratio;
  cfg.num_classes = 2;
  cfg.seed = param_seed;
  return cfg;
}

void FuzzConfig::validate() const {
  OPT_CHECK(q >= 1 && q <= 8, "mesh side q " << q);
  OPT_CHECK(depth >= 1 && depth <= 4, "mesh depth " << depth);
  OPT_CHECK(mp >= 1, "megatron devices " << mp);
  OPT_CHECK(threads >= 1, "threads " << threads);
  OPT_CHECK(lr > 0, "lr " << lr);
  // Engine precondition: the pooled forward arena is recycled per layer,
  // which is only sound when activations are checkpointed.
  OPT_CHECK(ckpt_2d || !pooled_buffers, "pooled buffers require 2d checkpointing");
  const model::TransformerConfig cfg = to_transformer_config();
  cfg.validate_for_mesh(q, depth);
  cfg.validate_for_1d(mp);
}

std::string FuzzConfig::to_string() const {
  std::ostringstream os;
  os << "q=" << q << ",d=" << depth << ",mp=" << mp << ",b=" << batch << ",s=" << seq << ",heads=" << heads
     << ",hd=" << head_dim << ",v=" << vocab << ",layers=" << layers << ",mlp=" << mlp_ratio
     << ",dtype=" << (dtype == Dtype::kF64 ? "f64" : "f32") << ",threads=" << threads
     << ",ckpt2d=" << (ckpt_2d ? 1 : 0) << ",ckpt1d=" << (ckpt_1d ? 1 : 0)
     << ",buf=" << (pooled_buffers ? "pool" : "heap") << ",pipe=" << (pipeline_2d ? 1 : 0)
     << ",lr=" << lr
     << ",pseed=" << param_seed << ",dseed=" << data_seed;
  return os.str();
}

FuzzConfig FuzzConfig::parse(const std::string& text) {
  FuzzConfig fc;
  std::istringstream is(text);
  std::string item;
  while (std::getline(is, item, ',')) {
    const auto eq = item.find('=');
    OPT_CHECK(eq != std::string::npos, "malformed config item '" << item << "'");
    const std::string key = item.substr(0, eq);
    const std::string val = item.substr(eq + 1);
    if (key == "q") fc.q = std::stoi(val);
    else if (key == "d") fc.depth = std::stoi(val);
    else if (key == "mp") fc.mp = std::stoi(val);
    else if (key == "b") fc.batch = std::stoll(val);
    else if (key == "s") fc.seq = std::stoll(val);
    else if (key == "heads") fc.heads = std::stoll(val);
    else if (key == "hd") fc.head_dim = std::stoll(val);
    else if (key == "v") fc.vocab = std::stoll(val);
    else if (key == "layers") fc.layers = std::stoll(val);
    else if (key == "mlp") fc.mlp_ratio = std::stoll(val);
    else if (key == "dtype") fc.dtype = val == "f64" ? Dtype::kF64 : Dtype::kF32;
    else if (key == "threads") fc.threads = std::stoi(val);
    else if (key == "ckpt2d") fc.ckpt_2d = val != "0";
    else if (key == "ckpt1d") fc.ckpt_1d = val != "0";
    else if (key == "buf") fc.pooled_buffers = val != "heap";
    else if (key == "pipe") fc.pipeline_2d = val != "0";
    else if (key == "lr") fc.lr = std::stod(val);
    else if (key == "pseed") fc.param_seed = std::stoull(val);
    else if (key == "dseed") fc.data_seed = std::stoull(val);
    else OPT_CHECK(false, "unknown config key '" << key << "'");
  }
  fc.validate();
  return fc;
}

FuzzConfig FuzzConfig::sample(std::mt19937& gen) {
  FuzzConfig fc;
  fc.q = pick_int(gen, 1, 4);
  // q | heads keeps hidden/heads/batch divisibility automatic; odd factors
  // keep the shapes away from powers of two.
  fc.heads = fc.q * pick<std::int64_t>(gen, {1, 2, 3});
  fc.head_dim = pick<std::int64_t>(gen, {1, 2, 3, 4, 5});
  fc.mlp_ratio = pick<std::int64_t>(gen, {1, 2, 3, 4});
  // 12 = lcm(1..4): every candidate Megatron p divides the vocab.
  fc.vocab = 12 * pick<std::int64_t>(gen, {1, 2, 3});
  fc.batch = fc.q * pick<std::int64_t>(gen, {1, 2});
  fc.seq = pick<std::int64_t>(gen, {2, 3, 4, 5, 7, 9});  // odd-biased
  fc.layers = pick<std::int64_t>(gen, {1, 2, 3});
  fc.dtype = gen() % 2 == 0 ? Dtype::kF64 : Dtype::kF32;
  fc.threads = pick_int(gen, 1, 4);
  fc.ckpt_2d = gen() % 2 == 0;
  fc.ckpt_1d = gen() % 2 == 0;
  // Pooled arenas require checkpointing (recycled per layer); keep the draw
  // unconditionally so the sample sequence stays aligned either way.
  fc.pooled_buffers = gen() % 2 == 0 && fc.ckpt_2d;
  fc.lr = pick(gen, {0.01, 0.05, 0.1});
  fc.param_seed = gen();
  fc.data_seed = gen();
  // Derived, not drawn: consuming an engine draw here would shift every later
  // field and every subsequent config relative to the pre-pipeline sampler,
  // silently replacing the whole corpus of known-passing sampled configs.
  // The seed parity is uniform and independent across configs, so both SUMMA
  // schedules still get ~half the sweep each.
  fc.pipeline_2d = ((fc.param_seed ^ fc.data_seed) & 1u) == 0;
  // Megatron devices: any of {1..4} whose divisibility the sampled shape
  // satisfies (heads, ffn hidden and vocab all split p ways).
  std::vector<int> ok;
  for (int p : {1, 2, 3, 4}) {
    if (fc.heads % p == 0 && (fc.mlp_ratio * fc.hidden()) % p == 0 && fc.vocab % p == 0) {
      ok.push_back(p);
    }
  }
  fc.mp = ok[gen() % ok.size()];
  // Derived, not drawn, for the same sequence-stability reason as
  // pipeline_2d: bit 1 of the seed mix (bit 0 drives the schedule) asks for a
  // depth-2 Tesseract mesh, granted only when the sampled shape supports it —
  // every contraction block must further split d ways (hidden and vocab
  // divisible by q·d, token rows b·s/q divisible by d). Configs that derive
  // d = 1 are exactly the pre-depth corpus.
  const bool want_depth = (((fc.param_seed ^ fc.data_seed) >> 1) & 1u) == 0;
  if (want_depth && fc.hidden() % (fc.q * 2) == 0 && fc.vocab % (fc.q * 2) == 0 &&
      (fc.batch / fc.q * fc.seq) % 2 == 0) {
    fc.depth = 2;
  }
  fc.validate();
  return fc;
}

std::vector<FuzzConfig> FuzzConfig::shrink_candidates() const {
  std::vector<FuzzConfig> out;
  const auto push_if_valid = [&out](FuzzConfig c) {
    try {
      c.validate();
      out.push_back(c);
    } catch (const util::CheckError&) {
      // candidate violated a divisibility constraint; drop it
    }
  };
  if (layers > 1) {
    FuzzConfig c = *this;
    c.layers = 1;
    push_if_valid(c);
  }
  if (q > 1) {
    FuzzConfig c = *this;
    // Halving the mesh needs the shape re-based on the smaller q; keep heads
    // and batch as small multiples of the new q.
    c.q = 1;
    c.heads = std::max<std::int64_t>(1, heads / q);
    c.batch = std::max<std::int64_t>(1, batch / q);
    push_if_valid(c);
  }
  if (depth > 1) {
    // A 2D mesh is strictly simpler than a 2.5D one at the same q.
    FuzzConfig c = *this;
    c.depth = 1;
    push_if_valid(c);
  }
  if (mp > 1) {
    FuzzConfig c = *this;
    c.mp = 1;
    push_if_valid(c);
  }
  if (batch > q) {
    FuzzConfig c = *this;
    c.batch = q;
    push_if_valid(c);
  }
  if (seq > 2) {
    FuzzConfig c = *this;
    c.seq = 2;
    push_if_valid(c);
  }
  if (head_dim > 1) {
    FuzzConfig c = *this;
    c.head_dim = 1;
    push_if_valid(c);
  }
  if (heads > q) {
    FuzzConfig c = *this;
    c.heads = q;
    push_if_valid(c);
  }
  if (mlp_ratio > 1) {
    FuzzConfig c = *this;
    c.mlp_ratio = 1;
    push_if_valid(c);
  }
  if (vocab > 12) {
    FuzzConfig c = *this;
    c.vocab = 12;
    push_if_valid(c);
  }
  if (threads > 1) {
    FuzzConfig c = *this;
    c.threads = 1;
    push_if_valid(c);
  }
  if (ckpt_2d || ckpt_1d) {
    FuzzConfig c = *this;
    c.ckpt_2d = c.ckpt_1d = false;
    c.pooled_buffers = false;  // pooled arenas require checkpointing
    push_if_valid(c);
  }
  if (!pooled_buffers) {
    FuzzConfig c = *this;
    c.pooled_buffers = true;
    push_if_valid(c);
  }
  if (!pipeline_2d) {
    // Pipelined is the default schedule; shrinking toward it isolates
    // failures that genuinely need the blocking path.
    FuzzConfig c = *this;
    c.pipeline_2d = true;
    push_if_valid(c);
  }
  return out;
}

}  // namespace optimus::testing
