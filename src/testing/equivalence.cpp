#include "testing/equivalence.hpp"

#include <cstring>
#include <iomanip>
#include <map>
#include <mutex>
#include <sstream>
#include <string>
#include <vector>

#include "comm/cluster.hpp"
#include "comm/fabric.hpp"
#include "core/optimus_model.hpp"
#include "kernel/thread_pool.hpp"
#include "megatron/megatron_model.hpp"
#include "mesh/mesh.hpp"
#include "model/serial_model.hpp"
#include "runtime/checkpoint_io.hpp"
#include "summa/summa.hpp"
#include "runtime/optimizer.hpp"
#include "tensor/distribution.hpp"
#include "testing/gradcheck.hpp"
#include "util/rng.hpp"

namespace optimus::testing {

namespace {

using tensor::index_t;
using tensor::ITensor;
using tensor::Shape;
template <typename T>
using Tensor = tensor::TensorT<T>;

ITensor make_tokens(const model::TransformerConfig& cfg, std::uint64_t seed) {
  util::Rng rng(seed);
  ITensor t(Shape{cfg.batch, cfg.seq_len});
  for (index_t i = 0; i < t.numel(); ++i) {
    t[i] = static_cast<std::int32_t>(rng.uniform_index(cfg.vocab));
  }
  return t;
}

ITensor next_token_labels(const ITensor& tokens, const model::TransformerConfig& cfg) {
  ITensor labels(tokens.shape());
  for (index_t b = 0; b < cfg.batch; ++b) {
    for (index_t t = 0; t < cfg.seq_len; ++t) {
      labels.at(b, t) = t + 1 < cfg.seq_len ? tokens.at(b, t + 1) : -1;
    }
  }
  return labels;
}

template <typename T>
Tensor<T> slice_1d(const Tensor<T>& v, index_t c0, index_t c1) {
  Tensor<T> out(Shape{c1 - c0});
  for (index_t i = c0; i < c1; ++i) out[i - c0] = v[i];
  return out;
}

template <typename T>
Tensor<T> col_slice(const Tensor<T>& m, index_t c0, index_t c1) {
  Tensor<T> out(Shape{m.size(0), c1 - c0});
  for (index_t r = 0; r < m.size(0); ++r) {
    for (index_t c = c0; c < c1; ++c) out.at(r, c - c0) = m.at(r, c);
  }
  return out;
}

template <typename T>
Tensor<T> row_slice(const Tensor<T>& m, index_t r0, index_t r1) {
  Tensor<T> out(Shape{r1 - r0, m.size(1)});
  for (index_t r = r0; r < r1; ++r) {
    for (index_t c = 0; c < m.size(1); ++c) out.at(r - r0, c) = m.at(r, c);
  }
  return out;
}

template <typename T>
bool bitwise_equal(const Tensor<T>& a, const Tensor<T>& b) {
  return a.numel() == b.numel() &&
         std::memcmp(a.data(), b.data(), sizeof(T) * static_cast<std::size_t>(a.numel())) == 0;
}

/// save → load → bitwise-equal round trip of an engine's parameter set.
template <typename T>
bool roundtrip_bitwise(const std::vector<Tensor<T>*>& params) {
  std::stringstream buf;
  runtime::save_tensors(buf, params);
  std::vector<Tensor<T>> fresh;
  fresh.reserve(params.size());
  for (const auto* p : params) fresh.push_back(Tensor<T>::zeros(p->shape()));
  std::vector<Tensor<T>*> ptrs;
  ptrs.reserve(fresh.size());
  for (auto& t : fresh) ptrs.push_back(&t);
  runtime::load_tensors(buf, ptrs);
  for (std::size_t k = 0; k < params.size(); ++k) {
    if (!bitwise_equal(*params[k], fresh[k])) return false;
  }
  return true;
}

/// Restores the default kernel thread budget on scope exit.
struct ThreadGuard {
  explicit ThreadGuard(int n) { kernel::set_threads(n); }
  ~ThreadGuard() { kernel::set_threads(0); }
};

/// Accumulates deviations and records bounded, human-replayable failure lines.
/// Callers hold the comparison mutex while using it from cluster bodies.
template <typename T>
struct Comparer {
  Tolerance tol;
  EquivalenceResult& res;
  int max_failures;

  void tensor(const Tensor<T>& got, const Tensor<T>& want, Deviation& dev,
              const std::string& what) {
    Deviation d;
    compare_tensors(got, want, tol, d);
    if (d.violations > 0 && static_cast<int>(res.failures.size()) < max_failures) {
      std::ostringstream os;
      os << what << ": " << d.violations << "/" << d.compared << " elements out of tolerance, max "
         << d.max_ulps << " ulps (" << d.worst_a << " vs " << d.worst_b << ")";
      res.failures.push_back(os.str());
    }
    dev.merge(d);
  }

  void scalar(T got, T want, Deviation& dev, const std::string& what) {
    Tensor<T> a(Shape{1});
    Tensor<T> b(Shape{1});
    a[0] = got;
    b[0] = want;
    tensor(a, b, dev, what);
  }
};

template <typename T>
void run_impl(const FuzzConfig& fc, const EquivalenceOptions& opts, EquivalenceResult& res) {
  const model::TransformerConfig cfg = fc.to_transformer_config();
  const index_t h = cfg.hidden;
  const index_t f = cfg.ffn_hidden();
  const ITensor tokens = make_tokens(cfg, fc.data_seed);
  const ITensor labels = next_token_labels(tokens, cfg);

  ThreadGuard threads(fc.threads);
  summa::PipelineGuard pipeline(fc.pipeline_2d);
  Comparer<T> cmp{tolerance_for(fc), res, opts.max_recorded_failures};

  // ---- Serial oracle: one full training step. ----
  model::SerialTransformer<T> oracle(cfg);
  const Tensor<T> hidden_ref = oracle.forward(tokens).clone();
  const T loss_ref = oracle.lm_loss(labels);
  oracle.zero_grads();
  oracle.backward_lm();
  const Tensor<T> dx0_ref = oracle.input_grad().clone();

  if (!roundtrip_bitwise<T>(oracle.parameters())) {
    res.ckpt_roundtrip_ok = false;
    res.failures.push_back("serial checkpoint round-trip not bitwise-identical");
  }

  // ---- KV-cached decode replay: feed the same tokens one position at a
  // time and compare each step's hidden rows against the prefill forward.
  // Runs before the SGD step (same parameters as hidden_ref) and after the
  // backward pass (decode touches neither gradients nor stashed activations).
  {
    auto cache = oracle.make_kv_cache(cfg.batch);
    ITensor step(Shape{cfg.batch});
    Tensor<T> want(Shape{cfg.batch, h});
    for (index_t t = 0; t < cfg.seq_len; ++t) {
      for (index_t b = 0; b < cfg.batch; ++b) step[b] = tokens.at(b, t);
      const Tensor<T>& dh = oracle.forward_decode(step, cache);
      for (index_t b = 0; b < cfg.batch; ++b) {
        for (index_t c = 0; c < h; ++c) want.at(b, c) = hidden_ref.at(b * cfg.seq_len + t, c);
      }
      cmp.tensor(dh, want, res.serial_decode, "serial decode t=" + std::to_string(t));
    }
  }

  // Sgd::step(momentum=0, wd=0) reads but never writes the gradient tensors,
  // so post-step `oracle` holds *both* oracles: structured gradients from the
  // backward pass and updated parameters from the step.
  runtime::Sgd<T> sgd;
  sgd.step(oracle.parameters(), oracle.gradients(), fc.lr);

  // Name → tensor maps for the reference tensors without structured
  // accessors (positional embedding, final layernorm gain).
  std::map<std::string, Tensor<T>*> pref, gref;
  {
    const auto names = oracle.parameter_names();
    const auto ps = oracle.parameters();
    const auto gs = oracle.gradients();
    for (std::size_t k = 0; k < names.size(); ++k) {
      pref[names[k]] = ps[k];
      gref[names[k]] = gs[k];
    }
  }

  std::mutex mu;

  // ---- Optimus 2D / 2.5D vs serial. ----
  // At depth > 1 every depth layer holds full block replicas, so each of the
  // d·q² ranks compares its (row, col) block against the same serial
  // reference — the comparison code is depth-agnostic.
  const int q = fc.q;
  const int world_2d = q * q * fc.depth;
  const index_t hq = h / q;
  const index_t fq = f / q;

  // Per-rank baseline captures for the fault-replay determinism check.
  std::vector<Tensor<T>> base_hidden(world_2d), base_grad(world_2d);
  std::vector<T> base_loss(world_2d);

  const auto optimus_body = [&](comm::Context& ctx, bool baseline) {
    mesh::Mesh2D mesh(ctx.world, fc.depth);
    core::OptimusOptions oopts;
    oopts.checkpoint = fc.ckpt_2d;
    oopts.buffers = fc.pooled_buffers ? core::BufferMode::kPooled : core::BufferMode::kHeap;
    core::OptimusTransformer<T> engine(cfg, mesh, oopts);

    const Tensor<T>& hidden = engine.forward(tokens);
    const T loss = engine.lm_loss(labels);
    engine.zero_grads();
    engine.backward_lm();

    const int i = mesh.row();
    const int j = mesh.col();
    std::ostringstream tag_os;
    tag_os << "2d(" << i << "," << j << ") ";
    const std::string tag = tag_os.str();

    if (!baseline) {
      // Replay under injected latency faults: delivery order, not timing,
      // must determine the math — require bitwise-identical results.
      std::lock_guard<std::mutex> lock(mu);
      const bool same = bitwise_equal(hidden, base_hidden[ctx.rank]) &&
                        loss == base_loss[ctx.rank] &&
                        bitwise_equal(engine.layer_grad(0).qkv_w, base_grad[ctx.rank]);
      if (!same) {
        res.fault_replay_ok = false;
        if (static_cast<int>(res.failures.size()) < opts.max_recorded_failures) {
          res.failures.push_back(tag + "diverged bitwise under fault-plan replay");
        }
      }
      return;
    }

    {
      std::lock_guard<std::mutex> lock(mu);
      base_hidden[ctx.rank] = hidden.clone();
      base_loss[ctx.rank] = loss;
      base_grad[ctx.rank] = engine.layer_grad(0).qkv_w.clone();

      cmp.tensor(hidden, tensor::matrix_block(hidden_ref, q, i, j), res.optimus.hidden,
                 tag + "hidden");
      cmp.scalar(loss, loss_ref, res.optimus.loss, tag + "loss");
      cmp.tensor(engine.input_grad(), tensor::matrix_block(dx0_ref, q, i, j),
                 res.optimus.input_grad, tag + "input_grad");

      for (index_t l = 0; l < cfg.layers; ++l) {
        auto& ref = oracle.layer_grad(l);
        auto& got = engine.layer_grad(l);
        const std::string lp = tag + "layer" + std::to_string(l) + ".";
        cmp.tensor(got.qkv_w, tensor::matrix_block(ref.qkv_w, q, i, j), res.optimus.grad,
                   lp + "qkv_w.grad");
        cmp.tensor(got.proj_w, tensor::matrix_block(ref.proj_w, q, i, j), res.optimus.grad,
                   lp + "proj_w.grad");
        cmp.tensor(got.fc1_w, tensor::matrix_block(ref.fc1_w, q, i, j), res.optimus.grad,
                   lp + "fc1_w.grad");
        cmp.tensor(got.fc2_w, tensor::matrix_block(ref.fc2_w, q, i, j), res.optimus.grad,
                   lp + "fc2_w.grad");
        if (i == 0) {
          cmp.tensor(got.ln1_g, slice_1d(ref.ln1_g, j * hq, (j + 1) * hq), res.optimus.grad,
                     lp + "ln1_g.grad");
          cmp.tensor(got.ln1_b, slice_1d(ref.ln1_b, j * hq, (j + 1) * hq), res.optimus.grad,
                     lp + "ln1_b.grad");
          cmp.tensor(got.ln2_g, slice_1d(ref.ln2_g, j * hq, (j + 1) * hq), res.optimus.grad,
                     lp + "ln2_g.grad");
          cmp.tensor(got.ln2_b, slice_1d(ref.ln2_b, j * hq, (j + 1) * hq), res.optimus.grad,
                     lp + "ln2_b.grad");
          cmp.tensor(got.qkv_b, slice_1d(ref.qkv_b, j * 3 * hq, (j + 1) * 3 * hq),
                     res.optimus.grad, lp + "qkv_b.grad");
          cmp.tensor(got.proj_b, slice_1d(ref.proj_b, j * hq, (j + 1) * hq), res.optimus.grad,
                     lp + "proj_b.grad");
          cmp.tensor(got.fc1_b, slice_1d(ref.fc1_b, j * fq, (j + 1) * fq), res.optimus.grad,
                     lp + "fc1_b.grad");
          cmp.tensor(got.fc2_b, slice_1d(ref.fc2_b, j * hq, (j + 1) * hq), res.optimus.grad,
                     lp + "fc2_b.grad");
        }
      }
      cmp.tensor(engine.embedding_block_grad(),
                 tensor::matrix_block(oracle.embedding_grad(), q, i, j), res.optimus.grad,
                 tag + "embedding.grad");
      if (i == 0) {
        cmp.tensor(engine.pos_embedding_slice_grad(),
                   col_slice(*gref.at("pos_embedding"), j * hq, (j + 1) * hq), res.optimus.grad,
                   tag + "pos_embedding.grad");
        cmp.tensor(engine.final_ln_g_grad(),
                   slice_1d(*gref.at("final_ln_g"), j * hq, (j + 1) * hq), res.optimus.grad,
                   tag + "final_ln_g.grad");
      }
    }

    // ---- KV-cached decode replay against this rank's block of the serial
    // prefill reference (the comparison mutex is released across the decode
    // collectives — holding it there would serialize ranks into a deadlock).
    {
      auto cache = engine.make_kv_cache(cfg.batch);
      const Tensor<T> href = tensor::matrix_block(hidden_ref, q, i, j);
      const index_t nl = cfg.batch / q;
      ITensor step(Shape{cfg.batch});
      Tensor<T> want(Shape{nl, hq});
      for (index_t t = 0; t < cfg.seq_len; ++t) {
        for (index_t b = 0; b < cfg.batch; ++b) step[b] = tokens.at(b, t);
        const Tensor<T>& dh = engine.forward_decode(step, cache, nullptr);
        for (index_t r = 0; r < nl; ++r) {
          for (index_t c = 0; c < hq; ++c) want.at(r, c) = href.at(r * cfg.seq_len + t, c);
        }
        std::lock_guard<std::mutex> lock(mu);
        cmp.tensor(dh, want, res.optimus.decode, tag + "decode t=" + std::to_string(t));
      }
    }

    const bool ckpt_ok = roundtrip_bitwise<T>(engine.parameters());

    // One SGD step on this rank's shards, then compare the updated
    // parameters against the (already-stepped) oracle.
    runtime::Sgd<T> local_sgd;
    local_sgd.step(engine.parameters(), engine.gradients(), fc.lr);

    std::lock_guard<std::mutex> lock(mu);
    if (!ckpt_ok) {
      res.ckpt_roundtrip_ok = false;
      if (static_cast<int>(res.failures.size()) < opts.max_recorded_failures) {
        res.failures.push_back(tag + "checkpoint round-trip not bitwise-identical");
      }
    }
    for (index_t l = 0; l < cfg.layers; ++l) {
      auto& ref = oracle.layer(l);
      auto& got = engine.layer(l);
      const std::string lp = tag + "layer" + std::to_string(l) + ".";
      cmp.tensor(got.qkv_w, tensor::matrix_block(ref.qkv_w, q, i, j), res.optimus.param,
                 lp + "qkv_w.step");
      cmp.tensor(got.proj_w, tensor::matrix_block(ref.proj_w, q, i, j), res.optimus.param,
                 lp + "proj_w.step");
      cmp.tensor(got.fc1_w, tensor::matrix_block(ref.fc1_w, q, i, j), res.optimus.param,
                 lp + "fc1_w.step");
      cmp.tensor(got.fc2_w, tensor::matrix_block(ref.fc2_w, q, i, j), res.optimus.param,
                 lp + "fc2_w.step");
      if (i == 0) {
        cmp.tensor(got.ln1_g, slice_1d(ref.ln1_g, j * hq, (j + 1) * hq), res.optimus.param,
                   lp + "ln1_g.step");
        cmp.tensor(got.qkv_b, slice_1d(ref.qkv_b, j * 3 * hq, (j + 1) * 3 * hq),
                   res.optimus.param, lp + "qkv_b.step");
        cmp.tensor(got.fc1_b, slice_1d(ref.fc1_b, j * fq, (j + 1) * fq), res.optimus.param,
                   lp + "fc1_b.step");
      }
    }
    cmp.tensor(engine.embedding_block(), tensor::matrix_block(oracle.embedding(), q, i, j),
               res.optimus.param, tag + "embedding.step");
    if (i == 0) {
      cmp.tensor(engine.pos_embedding_slice(),
                 col_slice(*pref.at("pos_embedding"), j * hq, (j + 1) * hq), res.optimus.param,
                 tag + "pos_embedding.step");
      cmp.tensor(engine.final_ln_g(), slice_1d(*pref.at("final_ln_g"), j * hq, (j + 1) * hq),
                 res.optimus.param, tag + "final_ln_g.step");
    }
  };

  try {
    comm::run_cluster(world_2d, [&](comm::Context& ctx) { optimus_body(ctx, true); });
  } catch (const std::exception& e) {
    res.failures.push_back(std::string("optimus run threw: ") + e.what());
  }

  // ---- Fault replay: same math under latency spikes and a straggler. ----
  if (opts.fault_replay && world_2d > 1 && res.failures.empty()) {
    comm::FaultPlan plan;
    plan.seed = fc.data_seed ^ 0xFA17FA17ull;
    plan.spike_prob = 0.2;
    plan.spike_us = 100;
    plan.stall_rank = 1;
    plan.stall_prob = 0.25;
    plan.stall_us = 150;
    res.fault_replay_ran = true;
    try {
      comm::run_cluster(world_2d, plan, [&](comm::Context& ctx) { optimus_body(ctx, false); });
    } catch (const std::exception& e) {
      res.fault_replay_ok = false;
      res.failures.push_back(std::string("fault replay threw: ") + e.what());
    }
  }

  // ---- Megatron 1D vs serial. ----
  if (opts.run_megatron) {
    const int p = fc.mp;
    const auto megatron_body = [&](comm::Context& ctx) {
      megatron::MegatronTransformer<T> engine(cfg, ctx.world, fc.ckpt_1d);
      const Tensor<T>& hidden = engine.forward(tokens);
      const T loss = engine.lm_loss(labels);
      engine.zero_grads();
      engine.backward_lm();

      const int d = ctx.rank;
      const std::string tag = "1d[" + std::to_string(d) + "] ";
      {
        std::lock_guard<std::mutex> lock(mu);
        cmp.tensor(hidden, hidden_ref, res.megatron.hidden, tag + "hidden");
        cmp.scalar(loss, loss_ref, res.megatron.loss, tag + "loss");
        cmp.tensor(engine.input_grad(), dx0_ref, res.megatron.input_grad, tag + "input_grad");
        cmp.tensor(engine.embedding_grad(),
                   row_slice(oracle.embedding_grad(), d * cfg.vocab / p, (d + 1) * cfg.vocab / p),
                   res.megatron.grad, tag + "embedding.grad");
        for (index_t l = 0; l < cfg.layers; ++l) {
          auto& ref = oracle.layer_grad(l);
          auto& got = engine.layer_grad(l);
          const std::string lp = tag + "layer" + std::to_string(l) + ".";
          cmp.tensor(got.ln1_g, ref.ln1_g, res.megatron.grad, lp + "ln1_g.grad");
          cmp.tensor(got.ln1_b, ref.ln1_b, res.megatron.grad, lp + "ln1_b.grad");
          cmp.tensor(got.ln2_g, ref.ln2_g, res.megatron.grad, lp + "ln2_g.grad");
          cmp.tensor(got.ln2_b, ref.ln2_b, res.megatron.grad, lp + "ln2_b.grad");
          cmp.tensor(got.qkv_w, col_slice(ref.qkv_w, d * 3 * h / p, (d + 1) * 3 * h / p),
                     res.megatron.grad, lp + "qkv_w.grad");
          cmp.tensor(got.qkv_b, slice_1d(ref.qkv_b, d * 3 * h / p, (d + 1) * 3 * h / p),
                     res.megatron.grad, lp + "qkv_b.grad");
          cmp.tensor(got.fc1_w, col_slice(ref.fc1_w, d * f / p, (d + 1) * f / p),
                     res.megatron.grad, lp + "fc1_w.grad");
          cmp.tensor(got.fc1_b, slice_1d(ref.fc1_b, d * f / p, (d + 1) * f / p),
                     res.megatron.grad, lp + "fc1_b.grad");
          cmp.tensor(got.proj_w, row_slice(ref.proj_w, d * h / p, (d + 1) * h / p),
                     res.megatron.grad, lp + "proj_w.grad");
          cmp.tensor(got.fc2_w, row_slice(ref.fc2_w, d * f / p, (d + 1) * f / p),
                     res.megatron.grad, lp + "fc2_w.grad");
          cmp.tensor(got.proj_b, ref.proj_b, res.megatron.grad, lp + "proj_b.grad");
          cmp.tensor(got.fc2_b, ref.fc2_b, res.megatron.grad, lp + "fc2_b.grad");
        }
      }

      // ---- KV-cached decode replay vs the replicated prefill reference.
      {
        auto cache = engine.make_kv_cache(cfg.batch);
        ITensor step(Shape{cfg.batch});
        Tensor<T> want(Shape{cfg.batch, h});
        for (index_t t = 0; t < cfg.seq_len; ++t) {
          for (index_t b = 0; b < cfg.batch; ++b) step[b] = tokens.at(b, t);
          const Tensor<T>& dh = engine.forward_decode(step, cache, nullptr);
          for (index_t b = 0; b < cfg.batch; ++b) {
            for (index_t c = 0; c < h; ++c) {
              want.at(b, c) = hidden_ref.at(b * cfg.seq_len + t, c);
            }
          }
          std::lock_guard<std::mutex> lock(mu);
          cmp.tensor(dh, want, res.megatron.decode, tag + "decode t=" + std::to_string(t));
        }
      }

      const bool ckpt_ok = roundtrip_bitwise<T>(engine.parameters());
      runtime::Sgd<T> local_sgd;
      local_sgd.step(engine.parameters(), engine.gradients(), fc.lr);

      std::lock_guard<std::mutex> lock(mu);
      if (!ckpt_ok) {
        res.ckpt_roundtrip_ok = false;
        if (static_cast<int>(res.failures.size()) < opts.max_recorded_failures) {
          res.failures.push_back(tag + "checkpoint round-trip not bitwise-identical");
        }
      }
      cmp.tensor(engine.embedding(),
                 row_slice(oracle.embedding(), d * cfg.vocab / p, (d + 1) * cfg.vocab / p),
                 res.megatron.param, tag + "embedding.step");
      for (index_t l = 0; l < cfg.layers; ++l) {
        auto& ref = oracle.layer(l);
        auto& got = engine.layer(l);
        const std::string lp = tag + "layer" + std::to_string(l) + ".";
        cmp.tensor(got.ln1_g, ref.ln1_g, res.megatron.param, lp + "ln1_g.step");
        cmp.tensor(got.qkv_w, col_slice(ref.qkv_w, d * 3 * h / p, (d + 1) * 3 * h / p),
                   res.megatron.param, lp + "qkv_w.step");
        cmp.tensor(got.proj_w, row_slice(ref.proj_w, d * h / p, (d + 1) * h / p),
                   res.megatron.param, lp + "proj_w.step");
        cmp.tensor(got.fc2_b, ref.fc2_b, res.megatron.param, lp + "fc2_b.step");
      }
    };
    try {
      comm::run_cluster(p, megatron_body);
    } catch (const std::exception& e) {
      res.failures.push_back(std::string("megatron run threw: ") + e.what());
    }
  }

  // ---- Finite-difference gradient check of the oracle itself (f64 only:
  // central differences in f32 are noise at our tolerances). ----
  if (opts.gradcheck_coords > 0 && fc.dtype == Dtype::kF64) {
    const GradCheckResult gc = finite_difference_check(
        cfg, tokens, labels, fc.data_seed ^ 0x9E3779B97F4A7C15ull, opts.gradcheck_coords);
    res.gradcheck_coords = gc.coords_checked;
    res.gradcheck_max_rel = gc.max_rel_err;
    if (!gc.pass) res.failures.push_back(gc.detail);
  }
}

}  // namespace

Tolerance tolerance_for(const FuzzConfig& fc) {
  // Measured: across 300 sampled configs (seed 3, d ∈ {1, 2}) every f64
  // category deviates 0 ULPs — the engines are *bitwise* identical to the
  // serial oracle, because the GEMM microkernel accumulates into C in
  // k-order, so blocked SUMMA / column-split accumulation reassociates
  // nothing. (The 2.5D depth fold does reassociate — each depth layer's
  // k-subrange partial is summed in ascending-depth order — but in f64 the
  // differences sit at the round-off scale the comparison's atol floor
  // classifies as 0 ULPs, same as the reduce forms' existing tree
  // reassociation.) A handful of f32 configs measure tens-to-hundreds of
  // ULPs (worst observed 166 at d = 1, 29 at d = 2) from the same
  // round-off crossing the coarser f32 atol floor — well inside the
  // per-layer budget below, which also covers future kernels that
  // legitimately reassociate (k-tiled registers, threaded k-splits): ~2^10
  // ULPs per layer of depth. Real math bugs (wrong block, missing reduce)
  // measure in the 2^40+ range — far outside either budget. See DESIGN.md
  // §Testing.
  const std::uint64_t depth = static_cast<std::uint64_t>(fc.layers);
  if (fc.dtype == Dtype::kF64) {
    return Tolerance{(std::uint64_t{1} << 10) * depth, 1e-13};
  }
  return Tolerance{(std::uint64_t{1} << 10) * depth, 1e-6};
}

EquivalenceResult run_equivalence(const FuzzConfig& fc, const EquivalenceOptions& opts) {
  EquivalenceResult res;
  res.config = fc;
  try {
    fc.validate();
    if (fc.dtype == Dtype::kF64) {
      run_impl<double>(fc, opts, res);
    } else {
      run_impl<float>(fc, opts, res);
    }
  } catch (const std::exception& e) {
    res.failures.push_back(std::string("unhandled exception: ") + e.what());
  }
  return res;
}

std::string summarize(const EquivalenceResult& res) {
  std::ostringstream os;
  os << (res.pass() ? "PASS " : "FAIL ") << res.config.to_string();
  const auto engine = [&os](const char* name, const EngineDeviation& d) {
    os << " | " << name << " ulps: hidden=" << d.hidden.max_ulps << " loss=" << d.loss.max_ulps
       << " dx0=" << d.input_grad.max_ulps << " grad=" << d.grad.max_ulps
       << " param=" << d.param.max_ulps << " decode=" << d.decode.max_ulps;
  };
  engine("2d", res.optimus);
  engine("1d", res.megatron);
  os << " | serial decode=" << res.serial_decode.max_ulps;
  os << " | ckpt=" << (res.ckpt_roundtrip_ok ? "ok" : "FAIL");
  if (res.fault_replay_ran) os << " replay=" << (res.fault_replay_ok ? "ok" : "FAIL");
  if (res.gradcheck_coords > 0) {
    os << " fd=" << std::scientific << std::setprecision(2) << res.gradcheck_max_rel
       << std::defaultfloat << "/" << res.gradcheck_coords;
  }
  if (!res.pass()) os << " | failures=" << res.failures.size();
  return os.str();
}

}  // namespace optimus::testing
