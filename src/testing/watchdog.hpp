#pragma once

// Deadlock watchdog for fault-injection and fuzzing runs.
//
// A hung collective cannot be unwound from within the process (the blocked
// threads hold no cancellation points), so the only honest "no deadlock"
// assertion is a hard deadline: if the guarded scope does not complete in
// time, print a diagnosis and abort the process — CTest then reports the
// failure instead of hanging the whole suite.

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>
#include <thread>

namespace optimus::testing {

class Watchdog {
 public:
  Watchdog(std::string what, std::chrono::seconds deadline)
      : what_(std::move(what)), thread_([this, deadline] {
          std::unique_lock<std::mutex> lock(mu_);
          if (!cv_.wait_for(lock, deadline, [this] { return done_; })) {
            std::fprintf(stderr, "[watchdog] '%s' exceeded %llds — presumed deadlock, aborting\n",
                         what_.c_str(), static_cast<long long>(deadline.count()));
            std::fflush(stderr);
            std::abort();
          }
        }) {}

  ~Watchdog() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      done_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

 private:
  std::string what_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool done_ = false;
  std::thread thread_;
};

}  // namespace optimus::testing
