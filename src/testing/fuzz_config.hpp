#pragma once

// Randomized model/mesh configuration sampling for the differential
// correctness harness.
//
// A FuzzConfig names one complete experiment: transformer shape, Optimus mesh
// side q and Tesseract depth d, Megatron device count, dtype, kernel thread
// budget, activation
// checkpointing and buffer modes, optimizer step size, and the two RNG seeds
// (parameter init, data synthesis). Sampling draws from a caller-owned
// std::mt19937 so a (seed, index) pair always reproduces the same config, and
// every sampled config satisfies the engines' divisibility constraints *by
// construction* (hidden = heads·head_dim with q | heads, vocab a multiple of
// lcm(1..4), batch a multiple of q) while still hitting awkward shapes: odd
// sequence lengths, odd head dims, non-power-of-two hidden sizes.
//
// to_string()/parse() round-trip a config through a "k=v,k=v" repro string —
// the failure currency of the fuzzer: every reported failure is replayable
// from one such string plus nothing else.

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "core/optimus_model.hpp"
#include "model/config.hpp"

namespace optimus::testing {

enum class Dtype { kF32, kF64 };

struct FuzzConfig {
  // Mesh / device shape.
  int q = 1;        // Optimus mesh side
  int depth = 1;    // Tesseract mesh depth d (Optimus world = d·q²)
  int mp = 1;       // Megatron 1D device count
  // Model shape (hidden = heads · head_dim).
  std::int64_t batch = 2;
  std::int64_t seq = 3;
  std::int64_t heads = 2;
  std::int64_t head_dim = 3;
  std::int64_t vocab = 12;
  std::int64_t layers = 1;
  std::int64_t mlp_ratio = 2;
  // Execution knobs.
  Dtype dtype = Dtype::kF64;
  int threads = 1;           // kernel::set_threads budget during the run
  bool ckpt_2d = true;       // Optimus activation checkpointing
  bool ckpt_1d = true;       // Megatron activation checkpointing
  bool pooled_buffers = true;  // Optimus §3.2.3 arenas vs heap
  bool pipeline_2d = true;     // pipelined (async, overlapped) SUMMA schedule
  // Training step.
  double lr = 0.05;
  // Seeds.
  std::uint64_t param_seed = 1234;
  std::uint64_t data_seed = 1;

  std::int64_t hidden() const { return heads * head_dim; }

  /// Materialises the shared TransformerConfig.
  model::TransformerConfig to_transformer_config() const;

  /// Checks every engine constraint (serial validate + mesh q + megatron mp);
  /// throws util::CheckError on violation.
  void validate() const;

  /// Canonical repro string, parse()-compatible.
  std::string to_string() const;

  /// Parses a to_string() repro string; throws util::CheckError on malformed
  /// input or constraint violations.
  static FuzzConfig parse(const std::string& text);

  /// Samples a valid config from `gen`.
  static FuzzConfig sample(std::mt19937& gen);

  /// Strictly "smaller" variants of this config for failure shrinking, most
  /// aggressive first. Every candidate is valid; the shrink loop keeps a
  /// candidate only if it still fails.
  std::vector<FuzzConfig> shrink_candidates() const;
};

}  // namespace optimus::testing
