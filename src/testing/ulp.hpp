#pragma once

// ULP-aware floating-point comparison.
//
// The correctness oracle for this repo is *re-blocked exactness*: the 2D and
// 1D engines compute the same math as the serial model up to floating-point
// association (DESIGN §6). Absolute tolerances conflate "different rounding"
// with "different math" as magnitudes vary, so the differential harness
// measures error in ULPs — the distance between two values in units of
// representable numbers at their magnitude — and accepts a difference when it
// is within a documented ULP budget *or* below a small absolute floor (for
// results that cancel toward zero, where ULP distance is meaningless).

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>

#include "tensor/tensor.hpp"

namespace optimus::testing {

/// Bit pattern of a value remapped so that the unsigned key ordering matches
/// the value ordering and adjacent representable values differ by 1 (the
/// IEEE-754 total-order fold: flip all bits of negatives, set the sign bit of
/// non-negatives). ±0.0 map to adjacent keys.
inline std::uint64_t ordered_bits(float x) {
  std::uint32_t u;
  std::memcpy(&u, &x, sizeof(u));
  return (u & 0x80000000u) ? static_cast<std::uint64_t>(~u)
                           : static_cast<std::uint64_t>(u | 0x80000000u);
}

inline std::uint64_t ordered_bits(double x) {
  std::uint64_t u;
  std::memcpy(&u, &x, sizeof(u));
  return (u & (std::uint64_t{1} << 63)) ? ~u : u | (std::uint64_t{1} << 63);
}

/// ULP distance between two finite values of the same type; saturates to
/// uint64 max when either is NaN/inf (never "close").
template <typename T>
std::uint64_t ulp_distance(T a, T b) {
  if (std::isnan(a) || std::isnan(b) || std::isinf(a) || std::isinf(b)) {
    return a == b ? 0 : std::numeric_limits<std::uint64_t>::max();
  }
  const std::uint64_t ka = ordered_bits(a);
  const std::uint64_t kb = ordered_bits(b);
  return ka > kb ? ka - kb : kb - ka;
}

/// Accept when the ULP distance is within budget, or the absolute difference
/// is below `atol` (near-zero results of catastrophic cancellation).
struct Tolerance {
  std::uint64_t max_ulps = 0;
  double atol = 0;

  template <typename T>
  bool within(T a, T b) const {
    if (std::abs(static_cast<double>(a) - static_cast<double>(b)) <= atol) return true;
    return ulp_distance(a, b) <= max_ulps;
  }
};

/// Worst observed deviation over a comparison set; `worst_*` keep the value
/// pair behind the max-ULP element for diagnostics.
struct Deviation {
  std::uint64_t max_ulps = 0;   // among elements not under the atol floor
  double max_abs = 0;
  double worst_a = 0, worst_b = 0;
  std::uint64_t compared = 0;
  std::uint64_t violations = 0;  // elements outside the tolerance

  void note(double a, double b, std::uint64_t ulps, bool ok) {
    compared += 1;
    max_abs = std::max(max_abs, std::abs(a - b));
    if (ulps != std::numeric_limits<std::uint64_t>::max() && ulps > max_ulps) {
      max_ulps = ulps;
      worst_a = a;
      worst_b = b;
    }
    if (!ok) violations += 1;
  }

  void merge(const Deviation& o) {
    if (o.max_ulps > max_ulps) {
      max_ulps = o.max_ulps;
      worst_a = o.worst_a;
      worst_b = o.worst_b;
    }
    max_abs = std::max(max_abs, o.max_abs);
    compared += o.compared;
    violations += o.violations;
  }
};

/// Element-wise comparison of two equal-shaped tensors under `tol`,
/// accumulated into `dev`.
template <typename T>
void compare_tensors(const tensor::TensorT<T>& a, const tensor::TensorT<T>& b,
                     const Tolerance& tol, Deviation& dev) {
  OPT_CHECK(a.numel() == b.numel(), "compare_tensors shape mismatch: " << a.numel() << " vs "
                                                                       << b.numel());
  for (tensor::index_t i = 0; i < a.numel(); ++i) {
    const std::uint64_t ulps =
        std::abs(static_cast<double>(a[i]) - static_cast<double>(b[i])) <= tol.atol
            ? 0
            : ulp_distance(a[i], b[i]);
    dev.note(static_cast<double>(a[i]), static_cast<double>(b[i]), ulps, tol.within(a[i], b[i]));
  }
}

}  // namespace optimus::testing
