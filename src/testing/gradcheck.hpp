#pragma once

// Finite-difference gradient check of the serial oracle.
//
// The differential harness proves "2D == 1D == serial", which is only a
// correctness statement if serial's hand-written backward is itself the
// gradient of its forward. This closes that loop: central differences of the
// LM loss at randomly sampled parameter coordinates, compared against the
// analytic gradients from backward_lm(). Always runs in double (the f32
// engines share the same backward code paths via the template).

#include <cstdint>
#include <string>

#include "model/config.hpp"
#include "tensor/tensor.hpp"

namespace optimus::testing {

struct GradCheckResult {
  int coords_checked = 0;
  double max_rel_err = 0;
  bool pass = true;
  std::string detail;  // first failing coordinate, empty when pass
};

/// Samples `coords` parameter coordinates of a fresh SerialTransformer<double>
/// (seeded by `cfg.seed`) uniformly across tensors, and compares the central
/// difference (step `eps`) of the LM loss against the analytic gradient.
/// A coordinate fails when |numeric − analytic| > tol · max(1, |numeric|,
/// |analytic|).
GradCheckResult finite_difference_check(const model::TransformerConfig& cfg,
                                        const tensor::ITensor& tokens,
                                        const tensor::ITensor& labels, std::uint64_t sample_seed,
                                        int coords, double eps = 1e-5, double tol = 1e-5);

}  // namespace optimus::testing
