#pragma once

// Differential equivalence runner: serial oracle vs Optimus 2D vs Megatron 1D.
//
// For one FuzzConfig this runs the same LM training step — forward, loss,
// backward, one SGD step — through all three engines and compares, with
// ULP-aware tolerances (ulp.hpp):
//
//   * the final hidden states (per-device block / replica),
//   * the scalar LM loss on every rank,
//   * the input gradient and every structurally-exposed parameter gradient
//     (weight blocks, hosted bias/layernorm slices, embedding shards),
//   * the post-step parameters of the same tensors,
//   * a KV-cached incremental decode replay of the whole token batch against
//     the prefill hidden state, per engine (ULP budget, not bitwise: decode
//     GEMMs have m = b instead of b·s, so the two paths can land on different
//     sides of the kernel-dispatch cutoff; serving_test pins the bitwise claim
//     at dispatch-parity shapes).
//
// It also round-trips every engine's parameters through checkpoint_io
// (save → load → bitwise-equal) and, when requested, replays the Optimus run
// under a deterministic fault plan (latency spikes + a straggler rank) and
// requires bitwise-identical results — the fabric's delivery semantics, not
// timing, must determine the math.
//
// The documented tolerance budgets live in equivalence.cpp (tolerance_for)
// and DESIGN.md §Testing; the fuzzer reports observed worst-case ULPs so the
// budgets stay honest.

#include <string>
#include <vector>

#include "testing/fuzz_config.hpp"
#include "testing/ulp.hpp"

namespace optimus::testing {

struct EngineDeviation {
  Deviation hidden, loss, input_grad, grad, param, decode;
};

struct EquivalenceOptions {
  bool run_megatron = true;
  bool fault_replay = false;   // re-run Optimus under a seeded fault plan
  int gradcheck_coords = 0;    // finite-difference coords (f64 configs only)
  int max_recorded_failures = 8;
};

struct EquivalenceResult {
  FuzzConfig config;
  EngineDeviation optimus;   // vs serial
  EngineDeviation megatron;  // vs serial
  Deviation serial_decode;   // KV-cached decode replay vs the oracle's prefill
  bool ckpt_roundtrip_ok = true;
  bool fault_replay_ok = true;
  bool fault_replay_ran = false;
  double gradcheck_max_rel = 0;
  int gradcheck_coords = 0;
  std::vector<std::string> failures;  // empty == pass

  bool pass() const { return failures.empty(); }
};

/// Documented ULP budgets for a config (grown with depth: see DESIGN.md).
Tolerance tolerance_for(const FuzzConfig& fc);

/// Runs the full differential comparison for one config. Leaves the global
/// kernel thread budget as it found it.
EquivalenceResult run_equivalence(const FuzzConfig& fc, const EquivalenceOptions& opts = {});

/// One-line deterministic summary (no timing, no pointers) — the fuzzer's
/// report currency; byte-identical for identical seeds.
std::string summarize(const EquivalenceResult& res);

}  // namespace optimus::testing
