#include "testing/gradcheck.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <vector>

#include "model/serial_model.hpp"
#include "util/rng.hpp"

namespace optimus::testing {

GradCheckResult finite_difference_check(const model::TransformerConfig& cfg,
                                        const tensor::ITensor& tokens,
                                        const tensor::ITensor& labels, std::uint64_t sample_seed,
                                        int coords, double eps, double tol) {
  model::SerialTransformer<double> model(cfg);
  const auto names = model.parameter_names();

  // Analytic gradients at the unperturbed point.
  model.forward(tokens);
  (void)model.lm_loss(labels);
  model.zero_grads();
  model.backward_lm();
  std::vector<tensor::DTensor> analytic;
  for (const auto* g : model.gradients()) analytic.push_back(g->clone());

  const auto loss_at = [&] {
    model.forward(tokens);
    return static_cast<double>(model.lm_loss(labels));
  };

  auto params = model.parameters();
  util::Rng rng(sample_seed);
  GradCheckResult res;
  for (int c = 0; c < coords; ++c) {
    const std::size_t t = rng.uniform_index(params.size());
    if (params[t]->numel() == 0) continue;
    const tensor::index_t i =
        static_cast<tensor::index_t>(rng.uniform_index(static_cast<std::uint64_t>(params[t]->numel())));
    double& x = (*params[t])[i];
    const double saved = x;
    x = saved + eps;
    const double up = loss_at();
    x = saved - eps;
    const double down = loss_at();
    x = saved;
    const double numeric = (up - down) / (2 * eps);
    const double ana = analytic[t][i];
    const double scale = std::max({1.0, std::abs(numeric), std::abs(ana)});
    const double rel = std::abs(numeric - ana) / scale;
    res.coords_checked += 1;
    res.max_rel_err = std::max(res.max_rel_err, rel);
    if (rel > tol && res.pass) {
      res.pass = false;
      std::ostringstream os;
      os << "finite-difference mismatch at " << names[t] << "[" << i << "]: numeric " << numeric
         << " vs analytic " << ana << " (rel " << rel << ")";
      res.detail = os.str();
    }
  }
  return res;
}

}  // namespace optimus::testing
