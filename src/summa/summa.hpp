#pragma once

// SUMMA: Scalable Universal Matrix Multiplication Algorithm over a q×q mesh
// (van de Geijn & Watts 1997), in the three product forms the paper uses,
// which form a closed set under differentiation (paper eqs. 1–3):
//
//   summa_ab  :  C = A·B    (Algorithm 1 — forward products)
//   summa_abt :  C = A·Bᵀ   (Algorithm 2 — dA = dC·Bᵀ, lm-head logits)
//   summa_atb :  C = Aᵀ·B   (Algorithm 3 — dB = Aᵀ·dC)
//
// Every global operand is split into q×q blocks; each device passes only its
// own block. Global shapes (with per-device blocks 1/q of each dimension):
//
//   summa_ab  : A [M, K] · B [K, N] → C [M, N]
//   summa_abt : A [M, N] · Bᵀ, B [K, N] → C [M, K]
//   summa_atb : Aᵀ, A [M, N] · B [M, K] → C [N, K]
//
// Communication per device per call (the Table-1 terms):
//   summa_ab  : q row-broadcasts of A blocks + q column-broadcasts of B blocks
//   summa_abt : q column-broadcasts of B blocks + q row-reduces of C blocks
//   summa_atb : q row-broadcasts of A blocks + q column-reduces of C blocks
//
// On a depth-d mesh (Tesseract-style 2.5D, arXiv:2105.14500) operands are
// replicated across the d depth layers and every contraction block splits
// into d sub-panels of extent k_b/d: layer z broadcasts and multiplies only
// sub-range z (broadcast volume and per-step GEMM work both /d), then a
// depth-d tree reduction of the C partials to layer 0, the accumulate
// epilogue, and a replica broadcast finish the call with all depth replicas
// bitwise identical. d = 1 runs exactly the 2D schedules above.
//
// If `workspace` is non-null the broadcast/reduce temporaries are carved from
// it (and released on return), implementing the paper's §3.2.3 pre-allocated
// workspace buffer; otherwise plain allocations are used.

#include "mesh/mesh.hpp"
#include "tensor/arena.hpp"
#include "tensor/tensor.hpp"

namespace optimus::summa {

// -- pipelining switch -------------------------------------------------------
//
// When enabled (the default), the SUMMA k-loop double-buffers its panels and
// issues the broadcasts/reduces for step l+1 asynchronously while the GEMM
// for step l runs, so a steady-state step costs max(comm, compute) instead of
// comm + compute. Results are bitwise identical to the blocking schedule
// (identical payloads, identical reduction order). The process-wide default
// comes from OPTIMUS_SUMMA_PIPELINE (unset or any value but "0" → on), read
// once on first use; set_pipeline_enabled()/PipelineGuard override it.

bool pipeline_enabled();
void set_pipeline_enabled(bool enabled);

/// RAII override of the pipeline mode (tests, benches, fuzz configs).
class PipelineGuard {
 public:
  explicit PipelineGuard(bool enabled) : prev_(pipeline_enabled()) {
    set_pipeline_enabled(enabled);
  }
  ~PipelineGuard() { set_pipeline_enabled(prev_); }
  PipelineGuard(const PipelineGuard&) = delete;
  PipelineGuard& operator=(const PipelineGuard&) = delete;

 private:
  bool prev_;
};

/// C (+)= A·B. Blocks: A [m_b, k_b], B [k_b, n_b], C [m_b, n_b].
template <typename T>
void summa_ab(mesh::Mesh2D& mesh, const tensor::TensorT<T>& A, const tensor::TensorT<T>& B,
              tensor::TensorT<T>& C, bool accumulate = false,
              tensor::Arena* workspace = nullptr);

/// C (+)= A·Bᵀ. Blocks: A [m_b, n_b], B [k_b, n_b], C [m_b, k_b].
template <typename T>
void summa_abt(mesh::Mesh2D& mesh, const tensor::TensorT<T>& A, const tensor::TensorT<T>& B,
               tensor::TensorT<T>& C, bool accumulate = false,
               tensor::Arena* workspace = nullptr);

/// C (+)= Aᵀ·B. Blocks: A [m_b, n_b], B [m_b, k_b], C [n_b, k_b].
template <typename T>
void summa_atb(mesh::Mesh2D& mesh, const tensor::TensorT<T>& A, const tensor::TensorT<T>& B,
               tensor::TensorT<T>& C, bool accumulate = false,
               tensor::Arena* workspace = nullptr);

/// Cannon's algorithm (1969) for C (+)= A·B — the other classic 2D matmul the
/// paper cites (§1, §2.4). After an initial alignment (A's blocks shift left
/// by their row index, B's shift up by their column index), q rounds of
/// local-multiply + single-step shifts complete the product using only
/// point-to-point transfers — no broadcasts at all. Per device it moves
/// 2(q−1)·(|A_block| + |B_block|) scalars (alignment + shifts), versus
/// SUMMA's q·log₂(q)-weighted broadcast volume; bench_summa compares them.
/// Blocks as in summa_ab: A [m_b, k_b], B [k_b, n_b], C [m_b, n_b].
template <typename T>
void cannon_ab(mesh::Mesh2D& mesh, const tensor::TensorT<T>& A, const tensor::TensorT<T>& B,
               tensor::TensorT<T>& C, bool accumulate = false,
               tensor::Arena* workspace = nullptr);

/// Bytes of workspace one summa_* call needs for blocks of the given sizes
/// (64-byte-aligned temporaries), sized for the pipelined schedule's worst
/// case across the three forms on these roles: double-buffered panels plus,
/// for the reduce forms, two in-flight C partials and a persistent reduce
/// scratch. Engines size their workspace arenas as the max over the calls
/// they make — matmuls run sequentially, so one workspace serves all of them
/// (paper §3.2.3). On a depth-d mesh pass `depth` so the envelope covers the
/// 2.5D schedule instead: /d sub-panels plus the captured C partial and the
/// depth-fold scratch. depth = 1 reproduces the 2D envelope exactly.
std::uint64_t workspace_bytes(std::uint64_t a_block_elems, std::uint64_t b_block_elems,
                              std::uint64_t c_block_elems, std::size_t elem_size,
                              int depth = 1);

}  // namespace optimus::summa
