#include "summa/summa.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <optional>

#include "comm/communicator.hpp"
#include "obs/trace.hpp"
#include "tensor/ops.hpp"

namespace optimus::summa {

namespace {

using tensor::Arena;
using tensor::ArenaScope;
using tensor::Shape;
using tensor::TensorT;
namespace ops = tensor::ops;

// −1 = unresolved (read OPTIMUS_SUMMA_PIPELINE on first use), 0 = off, 1 = on.
std::atomic<int> g_pipeline_mode{-1};

/// Allocates a temporary either from the workspace arena or the heap.
template <typename T>
TensorT<T> make_temp(Arena* workspace, Shape shape) {
  if (workspace != nullptr) return workspace->alloc<T>(shape);
  return TensorT<T>(shape);
}

}  // namespace

bool pipeline_enabled() {
  int mode = g_pipeline_mode.load(std::memory_order_acquire);
  if (mode < 0) {
    const char* env = std::getenv("OPTIMUS_SUMMA_PIPELINE");
    const int from_env = (env != nullptr && std::strcmp(env, "0") == 0) ? 0 : 1;
    int expected = -1;
    if (g_pipeline_mode.compare_exchange_strong(expected, from_env)) {
      mode = from_env;
    } else {
      mode = expected;  // another thread resolved it first
    }
  }
  return mode != 0;
}

void set_pipeline_enabled(bool enabled) {
  g_pipeline_mode.store(enabled ? 1 : 0, std::memory_order_release);
}

namespace {

// -- pipelined schedules -----------------------------------------------------
//
// Double-buffered panels: while the GEMM for step l runs, the broadcasts
// (and, in the reduce forms, the reduce) for the adjacent step are already in
// flight on the row/column links. Payloads, roots and reduction order are
// identical to the blocking schedule, so results are bitwise identical; only
// the clock arithmetic changes (Request::wait advances to max(clock,
// completion) instead of summing).

template <typename T>
void summa_ab_pipelined(mesh::Mesh2D& mesh, const TensorT<T>& A, const TensorT<T>& B,
                        TensorT<T>& C, bool accumulate, Arena* workspace) {
  const int q = mesh.q();
  TensorT<T> a_buf[2] = {make_temp<T>(workspace, A.shape()),
                         make_temp<T>(workspace, A.shape())};
  TensorT<T> b_buf[2] = {make_temp<T>(workspace, B.shape()),
                         make_temp<T>(workspace, B.shape())};
  comm::Request a_req[2], b_req[2];
  const auto prefetch = [&](int l, int slot) {
    if (mesh.col() == l) a_buf[slot].copy_from(A);
    a_req[slot] = mesh.row_comm().ibroadcast(a_buf[slot].data(), a_buf[slot].numel(), l);
    if (mesh.row() == l) b_buf[slot].copy_from(B);
    b_req[slot] = mesh.col_comm().ibroadcast(b_buf[slot].data(), b_buf[slot].numel(), l);
  };
  prefetch(0, 0);
  for (int l = 0; l < q; ++l) {
    obs::Span step_span("summa", "k_step");
    if (step_span.armed()) {
      step_span.arg("l", l);
      step_span.arg("pipelined", 1);
    }
    const int cur = l & 1;
    if (l + 1 < q) prefetch(l + 1, cur ^ 1);
    a_req[cur].wait();
    b_req[cur].wait();
    const T beta = (l == 0 && !accumulate) ? T{0} : T{1};
    ops::gemm(C, a_buf[cur], b_buf[cur], ops::Trans::No, ops::Trans::No, T{1}, beta);
  }
}

template <typename T>
void summa_abt_pipelined(mesh::Mesh2D& mesh, const TensorT<T>& A, const TensorT<T>& B,
                         TensorT<T>& C, bool accumulate, Arena* workspace) {
  const int q = mesh.q();
  TensorT<T> b_buf[2] = {make_temp<T>(workspace, B.shape()),
                         make_temp<T>(workspace, B.shape())};
  TensorT<T> c_tmp[2] = {make_temp<T>(workspace, C.shape()),
                         make_temp<T>(workspace, C.shape())};
  TensorT<T> r_scratch = make_temp<T>(workspace, C.shape());
  comm::Request b_req[2], r_req;
  int r_root = -1, r_slot = -1;
  const auto prefetch_b = [&](int l, int slot) {
    if (mesh.row() == l) b_buf[slot].copy_from(B);
    b_req[slot] = mesh.col_comm().ibroadcast(b_buf[slot].data(), b_buf[slot].numel(), l);
  };
  // At most one reduce is in flight, so one shared scratch serves them all;
  // a slot's partial is never overwritten before its reduce retires.
  const auto retire_reduce = [&] {
    if (!r_req.active()) return;
    r_req.wait();
    if (mesh.col() == r_root) {
      if (accumulate) {
        ops::add_(C, c_tmp[r_slot]);
      } else {
        C.copy_from(c_tmp[r_slot]);
      }
    }
  };
  prefetch_b(0, 0);
  for (int l = 0; l < q; ++l) {
    obs::Span step_span("summa", "k_step");
    if (step_span.armed()) {
      step_span.arg("l", l);
      step_span.arg("pipelined", 1);
    }
    const int cur = l & 1;
    if (l + 1 < q) prefetch_b(l + 1, cur ^ 1);
    b_req[cur].wait();
    ops::gemm(c_tmp[cur], A, b_buf[cur], ops::Trans::No, ops::Trans::Yes, T{1}, T{0});
    retire_reduce();
    r_req = mesh.row_comm().ireduce(c_tmp[cur].data(), c_tmp[cur].numel(), l,
                                    r_scratch.data());
    r_root = l;
    r_slot = cur;
  }
  retire_reduce();
}

template <typename T>
void summa_atb_pipelined(mesh::Mesh2D& mesh, const TensorT<T>& A, const TensorT<T>& B,
                         TensorT<T>& C, bool accumulate, Arena* workspace) {
  const int q = mesh.q();
  TensorT<T> a_buf[2] = {make_temp<T>(workspace, A.shape()),
                         make_temp<T>(workspace, A.shape())};
  TensorT<T> c_tmp[2] = {make_temp<T>(workspace, C.shape()),
                         make_temp<T>(workspace, C.shape())};
  TensorT<T> r_scratch = make_temp<T>(workspace, C.shape());
  comm::Request a_req[2], r_req;
  int r_root = -1, r_slot = -1;
  const auto prefetch_a = [&](int l, int slot) {
    if (mesh.col() == l) a_buf[slot].copy_from(A);
    a_req[slot] = mesh.row_comm().ibroadcast(a_buf[slot].data(), a_buf[slot].numel(), l);
  };
  const auto retire_reduce = [&] {
    if (!r_req.active()) return;
    r_req.wait();
    if (mesh.row() == r_root) {
      if (accumulate) {
        ops::add_(C, c_tmp[r_slot]);
      } else {
        C.copy_from(c_tmp[r_slot]);
      }
    }
  };
  prefetch_a(0, 0);
  for (int l = 0; l < q; ++l) {
    obs::Span step_span("summa", "k_step");
    if (step_span.armed()) {
      step_span.arg("l", l);
      step_span.arg("pipelined", 1);
    }
    const int cur = l & 1;
    if (l + 1 < q) prefetch_a(l + 1, cur ^ 1);
    a_req[cur].wait();
    ops::gemm(c_tmp[cur], a_buf[cur], B, ops::Trans::Yes, ops::Trans::No, T{1}, T{0});
    retire_reduce();
    r_req = mesh.col_comm().ireduce(c_tmp[cur].data(), c_tmp[cur].numel(), l,
                                    r_scratch.data());
    r_root = l;
    r_slot = cur;
  }
  retire_reduce();
}

// -- 2.5D (Tesseract) schedules ----------------------------------------------
//
// At depth d > 1 every SUMMA contraction block splits into d sub-panels of
// extent k_b/d; depth layer z broadcasts and multiplies only sub-range z, so
// per-step broadcast volume and GEMM work both drop by d (arXiv:2105.14500).
// After the q-step loop each layer holds a pure partial of its C block
// restricted to its sub-range; a depth-d tree reduction to layer 0
// (ascending-depth fold — the same ascending-k order a serial sweep of the
// sub-ranges would use), the accumulate epilogue at layer 0, and a replica
// broadcast of the finished block complete the product with every depth
// replica bitwise identical.

/// Copies the `dst.size(1)`-wide column range starting at `c0` out of `src`.
template <typename T>
void pack_col_range(TensorT<T>& dst, const TensorT<T>& src, tensor::index_t c0) {
  const tensor::index_t rows = src.size(0);
  const tensor::index_t cols = src.size(1);
  const tensor::index_t w = dst.size(1);
  for (tensor::index_t i = 0; i < rows; ++i) {
    std::memcpy(dst.data() + i * w, src.data() + i * cols + c0,
                static_cast<std::size_t>(w) * sizeof(T));
  }
}

/// Copies the `dst.size(0)`-tall row range starting at `r0` out of `src`.
template <typename T>
void pack_row_range(TensorT<T>& dst, const TensorT<T>& src, tensor::index_t r0) {
  std::memcpy(dst.data(), src.data() + r0 * src.size(1),
              static_cast<std::size_t>(dst.numel()) * sizeof(T));
}

/// Tree-reduces the per-depth C partials to depth layer 0, applies the
/// accumulate semantics there, and broadcasts the finished block back down the
/// depth group so every replica ends bitwise identical. Reuses the chunked
/// non-blocking collectives (issue + immediate wait ≡ the blocking forms).
template <typename T>
void depth_fold(mesh::Mesh2D& mesh, TensorT<T>& partial, TensorT<T>& C, TensorT<T>& scratch,
                bool accumulate) {
  comm::Communicator& dc = mesh.depth_comm();
  comm::Request red = dc.ireduce(partial.data(), partial.numel(), /*root=*/0, scratch.data());
  red.wait();
  if (mesh.depth_idx() == 0) {
    if (accumulate) {
      ops::add_(C, partial);
    } else {
      C.copy_from(partial);
    }
  }
  comm::Request bc = dc.ibroadcast(C.data(), C.numel(), /*root=*/0);
  bc.wait();
}

template <typename T>
void summa_ab_25d(mesh::Mesh2D& mesh, const TensorT<T>& A, const TensorT<T>& B,
                  TensorT<T>& C, bool accumulate, bool pipelined, Arena* workspace) {
  const int q = mesh.q();
  const tensor::index_t ks = A.size(1) / mesh.depth();
  const tensor::index_t z0 = static_cast<tensor::index_t>(mesh.depth_idx()) * ks;
  const Shape a_shape{A.size(0), ks};
  const Shape b_shape{ks, B.size(1)};
  TensorT<T> c_part = make_temp<T>(workspace, C.shape());
  TensorT<T> d_scratch = make_temp<T>(workspace, C.shape());
  if (pipelined) {
    TensorT<T> a_sub[2] = {make_temp<T>(workspace, a_shape),
                           make_temp<T>(workspace, a_shape)};
    TensorT<T> b_sub[2] = {make_temp<T>(workspace, b_shape),
                           make_temp<T>(workspace, b_shape)};
    comm::Request a_req[2], b_req[2];
    const auto prefetch = [&](int l, int slot) {
      if (mesh.col() == l) pack_col_range(a_sub[slot], A, z0);
      a_req[slot] = mesh.row_comm().ibroadcast(a_sub[slot].data(), a_sub[slot].numel(), l);
      if (mesh.row() == l) pack_row_range(b_sub[slot], B, z0);
      b_req[slot] = mesh.col_comm().ibroadcast(b_sub[slot].data(), b_sub[slot].numel(), l);
    };
    prefetch(0, 0);
    for (int l = 0; l < q; ++l) {
      obs::Span step_span("summa", "k_step");
      if (step_span.armed()) {
        step_span.arg("l", l);
        step_span.arg("pipelined", 1);
      }
      const int cur = l & 1;
      if (l + 1 < q) prefetch(l + 1, cur ^ 1);
      a_req[cur].wait();
      b_req[cur].wait();
      ops::gemm(c_part, a_sub[cur], b_sub[cur], ops::Trans::No, ops::Trans::No, T{1},
                l == 0 ? T{0} : T{1});
    }
  } else {
    TensorT<T> a_sub = make_temp<T>(workspace, a_shape);
    TensorT<T> b_sub = make_temp<T>(workspace, b_shape);
    for (int l = 0; l < q; ++l) {
      obs::Span step_span("summa", "k_step");
      if (step_span.armed()) step_span.arg("l", l);
      if (mesh.col() == l) pack_col_range(a_sub, A, z0);
      mesh.row_comm().broadcast(a_sub, /*root=*/l);
      if (mesh.row() == l) pack_row_range(b_sub, B, z0);
      mesh.col_comm().broadcast(b_sub, /*root=*/l);
      ops::gemm(c_part, a_sub, b_sub, ops::Trans::No, ops::Trans::No, T{1},
                l == 0 ? T{0} : T{1});
    }
  }
  depth_fold(mesh, c_part, C, d_scratch, accumulate);
}

template <typename T>
void summa_abt_25d(mesh::Mesh2D& mesh, const TensorT<T>& A, const TensorT<T>& B,
                   TensorT<T>& C, bool accumulate, bool pipelined, Arena* workspace) {
  const int q = mesh.q();
  const tensor::index_t ns = A.size(1) / mesh.depth();
  const tensor::index_t z0 = static_cast<tensor::index_t>(mesh.depth_idx()) * ns;
  const Shape a_shape{A.size(0), ns};
  const Shape b_shape{B.size(0), ns};
  // The local A sub-panel is the same in every step: pack it once.
  TensorT<T> a_sub = make_temp<T>(workspace, a_shape);
  pack_col_range(a_sub, A, z0);
  TensorT<T> c_part = make_temp<T>(workspace, C.shape());
  // Serves the in-loop row reduces and the final depth fold.
  TensorT<T> r_scratch = make_temp<T>(workspace, C.shape());
  if (pipelined) {
    TensorT<T> b_sub[2] = {make_temp<T>(workspace, b_shape),
                           make_temp<T>(workspace, b_shape)};
    TensorT<T> c_tmp[2] = {make_temp<T>(workspace, C.shape()),
                           make_temp<T>(workspace, C.shape())};
    comm::Request b_req[2], r_req;
    int r_root = -1, r_slot = -1;
    const auto prefetch_b = [&](int l, int slot) {
      if (mesh.row() == l) pack_col_range(b_sub[slot], B, z0);
      b_req[slot] = mesh.col_comm().ibroadcast(b_sub[slot].data(), b_sub[slot].numel(), l);
    };
    const auto retire_reduce = [&] {
      if (!r_req.active()) return;
      r_req.wait();
      if (mesh.col() == r_root) c_part.copy_from(c_tmp[r_slot]);
    };
    prefetch_b(0, 0);
    for (int l = 0; l < q; ++l) {
      obs::Span step_span("summa", "k_step");
      if (step_span.armed()) {
        step_span.arg("l", l);
        step_span.arg("pipelined", 1);
      }
      const int cur = l & 1;
      if (l + 1 < q) prefetch_b(l + 1, cur ^ 1);
      b_req[cur].wait();
      ops::gemm(c_tmp[cur], a_sub, b_sub[cur], ops::Trans::No, ops::Trans::Yes, T{1}, T{0});
      retire_reduce();
      r_req = mesh.row_comm().ireduce(c_tmp[cur].data(), c_tmp[cur].numel(), l,
                                      r_scratch.data());
      r_root = l;
      r_slot = cur;
    }
    retire_reduce();
  } else {
    TensorT<T> b_sub = make_temp<T>(workspace, b_shape);
    TensorT<T> c_tmp = make_temp<T>(workspace, C.shape());
    for (int l = 0; l < q; ++l) {
      obs::Span step_span("summa", "k_step");
      if (step_span.armed()) step_span.arg("l", l);
      if (mesh.row() == l) pack_col_range(b_sub, B, z0);
      mesh.col_comm().broadcast(b_sub, /*root=*/l);
      ops::gemm(c_tmp, a_sub, b_sub, ops::Trans::No, ops::Trans::Yes, T{1}, T{0});
      mesh.row_comm().reduce(c_tmp.data(), c_tmp.numel(), /*root=*/l, r_scratch.data());
      if (mesh.col() == l) c_part.copy_from(c_tmp);
    }
  }
  depth_fold(mesh, c_part, C, r_scratch, accumulate);
}

template <typename T>
void summa_atb_25d(mesh::Mesh2D& mesh, const TensorT<T>& A, const TensorT<T>& B,
                   TensorT<T>& C, bool accumulate, bool pipelined, Arena* workspace) {
  const int q = mesh.q();
  const tensor::index_t ms = A.size(0) / mesh.depth();
  const tensor::index_t z0 = static_cast<tensor::index_t>(mesh.depth_idx()) * ms;
  const Shape a_shape{ms, A.size(1)};
  const Shape b_shape{ms, B.size(1)};
  // The local B sub-panel is the same in every step: pack it once.
  TensorT<T> b_sub = make_temp<T>(workspace, b_shape);
  pack_row_range(b_sub, B, z0);
  TensorT<T> c_part = make_temp<T>(workspace, C.shape());
  // Serves the in-loop column reduces and the final depth fold.
  TensorT<T> r_scratch = make_temp<T>(workspace, C.shape());
  if (pipelined) {
    TensorT<T> a_sub[2] = {make_temp<T>(workspace, a_shape),
                           make_temp<T>(workspace, a_shape)};
    TensorT<T> c_tmp[2] = {make_temp<T>(workspace, C.shape()),
                           make_temp<T>(workspace, C.shape())};
    comm::Request a_req[2], r_req;
    int r_root = -1, r_slot = -1;
    const auto prefetch_a = [&](int l, int slot) {
      if (mesh.col() == l) pack_row_range(a_sub[slot], A, z0);
      a_req[slot] = mesh.row_comm().ibroadcast(a_sub[slot].data(), a_sub[slot].numel(), l);
    };
    const auto retire_reduce = [&] {
      if (!r_req.active()) return;
      r_req.wait();
      if (mesh.row() == r_root) c_part.copy_from(c_tmp[r_slot]);
    };
    prefetch_a(0, 0);
    for (int l = 0; l < q; ++l) {
      obs::Span step_span("summa", "k_step");
      if (step_span.armed()) {
        step_span.arg("l", l);
        step_span.arg("pipelined", 1);
      }
      const int cur = l & 1;
      if (l + 1 < q) prefetch_a(l + 1, cur ^ 1);
      a_req[cur].wait();
      ops::gemm(c_tmp[cur], a_sub[cur], b_sub, ops::Trans::Yes, ops::Trans::No, T{1}, T{0});
      retire_reduce();
      r_req = mesh.col_comm().ireduce(c_tmp[cur].data(), c_tmp[cur].numel(), l,
                                      r_scratch.data());
      r_root = l;
      r_slot = cur;
    }
    retire_reduce();
  } else {
    TensorT<T> a_sub = make_temp<T>(workspace, a_shape);
    TensorT<T> c_tmp = make_temp<T>(workspace, C.shape());
    for (int l = 0; l < q; ++l) {
      obs::Span step_span("summa", "k_step");
      if (step_span.armed()) step_span.arg("l", l);
      if (mesh.col() == l) pack_row_range(a_sub, A, z0);
      mesh.row_comm().broadcast(a_sub, /*root=*/l);
      ops::gemm(c_tmp, a_sub, b_sub, ops::Trans::Yes, ops::Trans::No, T{1}, T{0});
      mesh.col_comm().reduce(c_tmp.data(), c_tmp.numel(), /*root=*/l, r_scratch.data());
      if (mesh.row() == l) c_part.copy_from(c_tmp);
    }
  }
  depth_fold(mesh, c_part, C, r_scratch, accumulate);
}

}  // namespace

template <typename T>
void summa_ab(mesh::Mesh2D& mesh, const TensorT<T>& A, const TensorT<T>& B, TensorT<T>& C,
              bool accumulate, Arena* workspace) {
  const int q = mesh.q();
  OPT_CHECK(A.ndim() == 2 && B.ndim() == 2 && C.ndim() == 2, "summa_ab needs 2-D blocks");
  OPT_CHECK(A.size(0) == C.size(0) && B.size(1) == C.size(1) && A.size(1) == B.size(0),
            "summa_ab block shapes: A " << A.shape().to_string() << " B "
                                        << B.shape().to_string() << " C "
                                        << C.shape().to_string());
  obs::Span op_span("summa", "summa_ab");
  if (op_span.armed()) op_span.arg("q", q);
  std::optional<ArenaScope> scope;
  if (workspace != nullptr) scope.emplace(*workspace);
  if (mesh.depth() > 1) {
    OPT_CHECK(A.size(1) % mesh.depth() == 0, "summa_ab contraction block "
                                                 << A.size(1)
                                                 << " not divisible by mesh depth "
                                                 << mesh.depth());
    const bool pipelined = q > 1 && pipeline_enabled();
    if (op_span.armed()) {
      op_span.arg("d", mesh.depth());
      if (pipelined) op_span.arg("pipelined", 1);
    }
    summa_ab_25d(mesh, A, B, C, accumulate, pipelined, workspace);
    return;
  }
  if (q > 1 && pipeline_enabled()) {
    if (op_span.armed()) op_span.arg("pipelined", 1);
    summa_ab_pipelined(mesh, A, B, C, accumulate, workspace);
    return;
  }
  TensorT<T> a_buf = make_temp<T>(workspace, A.shape());
  TensorT<T> b_buf = make_temp<T>(workspace, B.shape());

  for (int l = 0; l < q; ++l) {
    obs::Span step_span("summa", "k_step");
    if (step_span.armed()) step_span.arg("l", l);
    // Column l of the mesh owns the A blocks for this outer-product step;
    // row l owns the B blocks (paper Fig. 3).
    if (mesh.col() == l) a_buf.copy_from(A);
    mesh.row_comm().broadcast(a_buf, /*root=*/l);
    if (mesh.row() == l) b_buf.copy_from(B);
    mesh.col_comm().broadcast(b_buf, /*root=*/l);
    const T beta = (l == 0 && !accumulate) ? T{0} : T{1};
    ops::gemm(C, a_buf, b_buf, ops::Trans::No, ops::Trans::No, T{1}, beta);
  }
}

template <typename T>
void summa_abt(mesh::Mesh2D& mesh, const TensorT<T>& A, const TensorT<T>& B, TensorT<T>& C,
               bool accumulate, Arena* workspace) {
  const int q = mesh.q();
  OPT_CHECK(A.ndim() == 2 && B.ndim() == 2 && C.ndim() == 2, "summa_abt needs 2-D blocks");
  OPT_CHECK(A.size(0) == C.size(0) && A.size(1) == B.size(1) && B.size(0) == C.size(1),
            "summa_abt block shapes: A " << A.shape().to_string() << " B "
                                         << B.shape().to_string() << " C "
                                         << C.shape().to_string());
  obs::Span op_span("summa", "summa_abt");
  if (op_span.armed()) op_span.arg("q", q);
  std::optional<ArenaScope> scope;
  if (workspace != nullptr) scope.emplace(*workspace);
  if (mesh.depth() > 1) {
    OPT_CHECK(A.size(1) % mesh.depth() == 0, "summa_abt contraction block "
                                                 << A.size(1)
                                                 << " not divisible by mesh depth "
                                                 << mesh.depth());
    const bool pipelined = q > 1 && pipeline_enabled();
    if (op_span.armed()) {
      op_span.arg("d", mesh.depth());
      if (pipelined) op_span.arg("pipelined", 1);
    }
    summa_abt_25d(mesh, A, B, C, accumulate, pipelined, workspace);
    return;
  }
  if (q > 1 && pipeline_enabled()) {
    if (op_span.armed()) op_span.arg("pipelined", 1);
    summa_abt_pipelined(mesh, A, B, C, accumulate, workspace);
    return;
  }
  TensorT<T> b_buf = make_temp<T>(workspace, B.shape());
  TensorT<T> c_tmp = make_temp<T>(workspace, C.shape());
  // Persistent reduce receive buffer, reused across all q steps.
  TensorT<T> r_scratch = make_temp<T>(workspace, C.shape());

  for (int l = 0; l < q; ++l) {
    obs::Span step_span("summa", "k_step");
    if (step_span.armed()) step_span.arg("l", l);
    // Step l computes column-block l of C: broadcast B_l· down columns,
    // multiply locally, reduce partial C blocks across the row to column l.
    if (mesh.row() == l) b_buf.copy_from(B);
    mesh.col_comm().broadcast(b_buf, /*root=*/l);
    ops::gemm(c_tmp, A, b_buf, ops::Trans::No, ops::Trans::Yes, T{1}, T{0});
    mesh.row_comm().reduce(c_tmp.data(), c_tmp.numel(), /*root=*/l, r_scratch.data());
    if (mesh.col() == l) {
      if (accumulate) {
        ops::add_(C, c_tmp);
      } else {
        C.copy_from(c_tmp);
      }
    }
  }
}

template <typename T>
void summa_atb(mesh::Mesh2D& mesh, const TensorT<T>& A, const TensorT<T>& B, TensorT<T>& C,
               bool accumulate, Arena* workspace) {
  const int q = mesh.q();
  OPT_CHECK(A.ndim() == 2 && B.ndim() == 2 && C.ndim() == 2, "summa_atb needs 2-D blocks");
  OPT_CHECK(A.size(1) == C.size(0) && B.size(1) == C.size(1) && A.size(0) == B.size(0),
            "summa_atb block shapes: A " << A.shape().to_string() << " B "
                                         << B.shape().to_string() << " C "
                                         << C.shape().to_string());
  obs::Span op_span("summa", "summa_atb");
  if (op_span.armed()) op_span.arg("q", q);
  std::optional<ArenaScope> scope;
  if (workspace != nullptr) scope.emplace(*workspace);
  if (mesh.depth() > 1) {
    OPT_CHECK(A.size(0) % mesh.depth() == 0, "summa_atb contraction block "
                                                 << A.size(0)
                                                 << " not divisible by mesh depth "
                                                 << mesh.depth());
    const bool pipelined = q > 1 && pipeline_enabled();
    if (op_span.armed()) {
      op_span.arg("d", mesh.depth());
      if (pipelined) op_span.arg("pipelined", 1);
    }
    summa_atb_25d(mesh, A, B, C, accumulate, pipelined, workspace);
    return;
  }
  if (q > 1 && pipeline_enabled()) {
    if (op_span.armed()) op_span.arg("pipelined", 1);
    summa_atb_pipelined(mesh, A, B, C, accumulate, workspace);
    return;
  }
  TensorT<T> a_buf = make_temp<T>(workspace, A.shape());
  TensorT<T> c_tmp = make_temp<T>(workspace, C.shape());
  // Persistent reduce receive buffer, reused across all q steps.
  TensorT<T> r_scratch = make_temp<T>(workspace, C.shape());

  for (int l = 0; l < q; ++l) {
    obs::Span step_span("summa", "k_step");
    if (step_span.armed()) step_span.arg("l", l);
    // Step l computes row-block l of C: broadcast A_·l across rows, multiply
    // locally, reduce partial C blocks down the column to row l.
    if (mesh.col() == l) a_buf.copy_from(A);
    mesh.row_comm().broadcast(a_buf, /*root=*/l);
    ops::gemm(c_tmp, a_buf, B, ops::Trans::Yes, ops::Trans::No, T{1}, T{0});
    mesh.col_comm().reduce(c_tmp.data(), c_tmp.numel(), /*root=*/l, r_scratch.data());
    if (mesh.row() == l) {
      if (accumulate) {
        ops::add_(C, c_tmp);
      } else {
        C.copy_from(c_tmp);
      }
    }
  }
}

template <typename T>
void cannon_ab(mesh::Mesh2D& mesh, const TensorT<T>& A, const TensorT<T>& B, TensorT<T>& C,
               bool accumulate, Arena* workspace) {
  const int q = mesh.q();
  OPT_CHECK(mesh.depth() == 1, "cannon_ab supports depth-1 meshes only");
  OPT_CHECK(A.ndim() == 2 && B.ndim() == 2 && C.ndim() == 2, "cannon_ab needs 2-D blocks");
  OPT_CHECK(A.size(0) == C.size(0) && B.size(1) == C.size(1) && A.size(1) == B.size(0),
            "cannon_ab block shapes: A " << A.shape().to_string() << " B "
                                         << B.shape().to_string() << " C "
                                         << C.shape().to_string());
  if (q == 1) {
    ops::gemm(C, A, B, ops::Trans::No, ops::Trans::No, T{1},
              accumulate ? T{1} : T{0});
    return;
  }
  obs::Span op_span("summa", "cannon_ab");
  if (op_span.armed()) op_span.arg("q", q);
  std::optional<ArenaScope> scope;
  if (workspace != nullptr) scope.emplace(*workspace);
  TensorT<T> a_buf = make_temp<T>(workspace, A.shape());
  TensorT<T> b_buf = make_temp<T>(workspace, B.shape());
  a_buf.copy_from(A);
  b_buf.copy_from(B);

  const int i = mesh.row();
  const int j = mesh.col();
  comm::Communicator& row = mesh.row_comm();
  comm::Communicator& col = mesh.col_comm();
  // Tags: 0/1 alignment, 2/3 shifting rounds. FIFO matching per (src, tag)
  // makes reuse across calls and rounds safe.
  const auto shift_left = [&](TensorT<T>& buf, int steps, int tag) {
    if (steps % q == 0) return;
    const int dst = ((j - steps) % q + q) % q;
    const int src = (j + steps) % q;
    row.send(dst, tag, buf.data(), buf.numel());   // payload copied at send
    row.recv(src, tag, buf.data(), buf.numel());
  };
  const auto shift_up = [&](TensorT<T>& buf, int steps, int tag) {
    if (steps % q == 0) return;
    const int dst = ((i - steps) % q + q) % q;
    const int src = (i + steps) % q;
    col.send(dst, tag, buf.data(), buf.numel());
    col.recv(src, tag, buf.data(), buf.numel());
  };

  // Initial alignment: A_ij moves i steps left, B_ij moves j steps up, so
  // device (i, j) starts with A_{i,(i+j) mod q} · B_{(i+j) mod q, j}.
  shift_left(a_buf, i, /*tag=*/0);
  shift_up(b_buf, j, /*tag=*/1);

  for (int l = 0; l < q; ++l) {
    obs::Span step_span("summa", "k_step");
    if (step_span.armed()) step_span.arg("l", l);
    const T beta = (l == 0 && !accumulate) ? T{0} : T{1};
    ops::gemm(C, a_buf, b_buf, ops::Trans::No, ops::Trans::No, T{1}, beta);
    if (l + 1 < q) {
      shift_left(a_buf, 1, /*tag=*/2);
      shift_up(b_buf, 1, /*tag=*/3);
    }
  }
}

std::uint64_t workspace_bytes(std::uint64_t a_block_elems, std::uint64_t b_block_elems,
                              std::uint64_t c_block_elems, std::size_t elem_size,
                              int depth) {
  const auto align = [](std::uint64_t n) { return (n + 63) & ~std::uint64_t{63}; };
  const std::uint64_t c = align(c_block_elems * elem_size);
  if (depth > 1) {
    // 2.5D schedules broadcast /d sub-panels but add a captured C partial and
    // a depth-fold scratch (the reduce forms reuse their row/column reduce
    // scratch for the fold). Pipelined worst case per form:
    //   summa_ab  : 2·A/d + 2·B/d sub-panels + C partial + depth scratch
    //   summa_abt : A/d + 2·B/d sub-panels + 2 in-flight partials + scratch
    //               + captured partial
    //   summa_atb : 2·A/d + B/d sub-panels + 2 in-flight partials + scratch
    //               + captured partial
    const std::uint64_t d = static_cast<std::uint64_t>(depth);
    const std::uint64_t as = align(a_block_elems / d * elem_size);
    const std::uint64_t bs = align(b_block_elems / d * elem_size);
    const std::uint64_t ab = 2 * as + 2 * bs + 2 * c;
    const std::uint64_t bc = as + 2 * bs + 4 * c;
    const std::uint64_t ac = 2 * as + bs + 4 * c;
    return std::max({ab, bc, ac});
  }
  const std::uint64_t a = align(a_block_elems * elem_size);
  const std::uint64_t b = align(b_block_elems * elem_size);
  // Pipelined worst case across the three forms on these roles: summa_ab
  // double-buffers both panels; the reduce forms double-buffer one panel and
  // the C partial and keep a persistent reduce scratch. The blocking paths
  // fit inside the same envelope.
  const std::uint64_t ab = 2 * a + 2 * b;
  const std::uint64_t bc = 2 * b + 3 * c;
  const std::uint64_t ac = 2 * a + 3 * c;
  return std::max({ab, bc, ac});
}

#define OPTIMUS_INSTANTIATE_SUMMA(T)                                                     \
  template void summa_ab<T>(mesh::Mesh2D&, const TensorT<T>&, const TensorT<T>&,         \
                            TensorT<T>&, bool, Arena*);                                  \
  template void summa_abt<T>(mesh::Mesh2D&, const TensorT<T>&, const TensorT<T>&,        \
                             TensorT<T>&, bool, Arena*);                                 \
  template void summa_atb<T>(mesh::Mesh2D&, const TensorT<T>&, const TensorT<T>&,        \
                             TensorT<T>&, bool, Arena*);                                 \
  template void cannon_ab<T>(mesh::Mesh2D&, const TensorT<T>&, const TensorT<T>&,        \
                             TensorT<T>&, bool, Arena*);

OPTIMUS_INSTANTIATE_SUMMA(float)
OPTIMUS_INSTANTIATE_SUMMA(double)

#undef OPTIMUS_INSTANTIATE_SUMMA

}  // namespace optimus::summa
