#include "tensor/device_context.hpp"

namespace optimus::tensor {

DeviceContext*& DeviceContext::current_slot() {
  thread_local DeviceContext* slot = nullptr;
  return slot;
}

DeviceContext& DeviceContext::current() {
  DeviceContext* ctx = current_slot();
  if (ctx != nullptr) return *ctx;
  // Fallback context for threads that never installed one (host-side code).
  thread_local DeviceContext fallback;
  return fallback;
}

}  // namespace optimus::tensor
