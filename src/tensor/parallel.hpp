#pragma once

// Accounting-aware bridge from the tensor layer onto the kernel thread pool.
//
// Pool workers have no ScopedDevice installed, so anything they run that
// allocates tensors or charges mults would be billed to the process-default
// DeviceContext — invisible to the simulated clock and the memory accountant.
// These wrappers capture the submitting thread's context and install it
// around every chunk, so ops parallelised under a simulated device keep
// charging that device (the counters are atomics; concurrent charging from
// several workers is safe).
//
// Determinism contract (DESIGN.md §5): bodies must write disjoint outputs
// per chunk and keep any reduction's accumulation order a function of the
// problem size only — never of the chunking or thread count.

#include <functional>

#include "kernel/thread_pool.hpp"
#include "tensor/device_context.hpp"
#include "tensor/shape.hpp"

namespace optimus::tensor {

/// Runs body(begin, end) over [0, n) in fixed `grain`-sized chunks on the
/// kernel pool, with the caller's DeviceContext installed on every worker.
inline void parallel_for(index_t n, index_t grain,
                         const std::function<void(index_t, index_t)>& body) {
  DeviceContext& dev = DeviceContext::current();
  kernel::ThreadPool::global().parallel_for(
      n, grain, [&dev, &body](kernel::index_t begin, kernel::index_t end) {
        ScopedDevice scoped(dev);
        body(begin, end);
      });
}

/// parallel_for with the grain chosen so one chunk covers roughly
/// `target_elems` scalars of `row_width`-wide rows — keeps per-chunk work
/// large enough to amortise dispatch for both skinny and wide rows.
inline void parallel_rows(index_t rows, index_t row_width,
                          const std::function<void(index_t, index_t)>& body,
                          index_t target_elems = 1 << 14) {
  const index_t grain = std::max<index_t>(1, target_elems / std::max<index_t>(1, row_width));
  parallel_for(rows, grain, body);
}

}  // namespace optimus::tensor
