#pragma once

// Per-simulated-device accounting.
//
// Every simulated device (one thread in comm::Cluster) installs a
// DeviceContext for its lifetime via ScopedDevice. All tensor allocations and
// matmul flops on that thread are charged to it:
//
//   * bytes_live / bytes_peak — drives the Figure-9 memory-limit experiments
//     and validates the analytic memory model.
//   * mults — scalar multiply-accumulate count, in the paper's Table-1 units;
//     the comm layer drains this at collective boundaries to advance the
//     device's simulated clock.
//
// The counters live in a shared block: a tensor's deleter keeps the block
// alive, so tensors that escape the device's lifetime (e.g. results copied
// out of a Cluster::run body) still balance their accounting safely after the
// context itself is gone. Counter fields are relaxed atomics because that
// late free may run on another thread.
//
// Threads without an installed context (plain host code, tests building
// oracles) fall back to a process-wide default context so accounting never
// crashes; its numbers are simply not used for experiments.

#include <atomic>
#include <cstdint>
#include <memory>

namespace optimus::tensor {

class DeviceContext {
 public:
  /// The shared accounting block tensors pin via their deleters.
  struct Counters {
    std::atomic<std::uint64_t> bytes_live{0};
    std::atomic<std::uint64_t> bytes_peak{0};
    std::atomic<std::uint64_t> alloc_count{0};
    std::atomic<std::uint64_t> mults{0};
    std::uint64_t mults_taken = 0;  // owner-thread only (take_mults)

    void on_alloc(std::uint64_t bytes) {
      alloc_count.fetch_add(1, std::memory_order_relaxed);
      const std::uint64_t live =
          bytes_live.fetch_add(bytes, std::memory_order_relaxed) + bytes;
      std::uint64_t peak = bytes_peak.load(std::memory_order_relaxed);
      while (live > peak &&
             !bytes_peak.compare_exchange_weak(peak, live, std::memory_order_relaxed)) {
      }
    }
    void on_free(std::uint64_t bytes) {
      bytes_live.fetch_sub(bytes, std::memory_order_relaxed);
    }
    void on_mults(std::uint64_t n) { mults.fetch_add(n, std::memory_order_relaxed); }
  };

  DeviceContext() : counters_(std::make_shared<Counters>()) {}
  DeviceContext(const DeviceContext&) = delete;
  DeviceContext& operator=(const DeviceContext&) = delete;

  void on_alloc(std::uint64_t bytes) { counters_->on_alloc(bytes); }
  void on_free(std::uint64_t bytes) { counters_->on_free(bytes); }
  void on_mults(std::uint64_t mults) { counters_->on_mults(mults); }

  std::uint64_t bytes_live() const {
    return counters_->bytes_live.load(std::memory_order_relaxed);
  }
  std::uint64_t bytes_peak() const {
    return counters_->bytes_peak.load(std::memory_order_relaxed);
  }
  std::uint64_t alloc_count() const {
    return counters_->alloc_count.load(std::memory_order_relaxed);
  }
  std::uint64_t mults_total() const {
    return counters_->mults.load(std::memory_order_relaxed);
  }

  /// Returns the multiply count accumulated since the last take and zeroes it.
  /// Owner-thread only (used by the comm layer to advance the simulated clock).
  std::uint64_t take_mults() {
    const std::uint64_t m = counters_->mults.load(std::memory_order_relaxed);
    const std::uint64_t delta = m - counters_->mults_taken;
    counters_->mults_taken = m;
    return delta;
  }

  /// Multiplies counted since the last take_mults(), without consuming them.
  /// Owner-thread only; the tracer uses this to extend simulated timestamps
  /// continuously across the lazy compute drain at collective boundaries.
  std::uint64_t pending_mults() const {
    return counters_->mults.load(std::memory_order_relaxed) - counters_->mults_taken;
  }

  /// Resets the peak to the current live level (used between bench phases).
  void reset_peak() {
    counters_->bytes_peak.store(bytes_live(), std::memory_order_relaxed);
  }
  void reset_alloc_count() { counters_->alloc_count.store(0, std::memory_order_relaxed); }

  /// Shared handle for deleters that may outlive this context.
  std::shared_ptr<Counters> counters() const { return counters_; }

  /// The context charged on the calling thread (never null).
  static DeviceContext& current();

 private:
  friend class ScopedDevice;
  static DeviceContext*& current_slot();

  std::shared_ptr<Counters> counters_;
};

/// RAII installer: charges this thread's tensor activity to `ctx` while alive.
class ScopedDevice {
 public:
  explicit ScopedDevice(DeviceContext& ctx) : previous_(DeviceContext::current_slot()) {
    DeviceContext::current_slot() = &ctx;
  }
  ~ScopedDevice() { DeviceContext::current_slot() = previous_; }
  ScopedDevice(const ScopedDevice&) = delete;
  ScopedDevice& operator=(const ScopedDevice&) = delete;

 private:
  DeviceContext* previous_;
};

}  // namespace optimus::tensor
