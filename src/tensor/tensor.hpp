#pragma once
#include <cstdint>

// Dense, contiguous, row-major tensor.
//
// TensorT<T> is a reference-counted view over a flat buffer plus a Shape.
// Copying a TensorT copies the handle, not the data (clone() deep-copies).
// Storage is either
//   * owned:  heap allocation charged to the current DeviceContext, or
//   * arena:  a slice of a pre-allocated Arena slab (the paper's §3.2.3
//             buffering scheme) — no per-tensor allocation at all.
//
// Only contiguous tensors exist; reshape() is free, and row_range() gives a
// contiguous sub-view along the outermost dimension.

#include <cstring>
#include <memory>
#include <vector>

#include "tensor/device_context.hpp"
#include "tensor/shape.hpp"
#include "util/check.hpp"

namespace optimus::tensor {

template <typename T>
class TensorT {
 public:
  using value_type = T;

  /// Empty handle; data() must not be called until assigned.
  TensorT() = default;

  /// Allocates an uninitialised tensor, charging the current DeviceContext.
  explicit TensorT(Shape shape) : shape_(shape) {
    const index_t n = shape.numel();
    const std::uint64_t bytes = static_cast<std::uint64_t>(n) * sizeof(T);
    // The deleter holds a shared handle to the accounting block, so it
    // balances correctly even if the tensor outlives the DeviceContext (e.g.
    // results copied out of a Cluster::run body) or dies on another thread.
    auto counters = DeviceContext::current().counters();
    counters->on_alloc(bytes);
    data_ = std::shared_ptr<T[]>(new T[static_cast<std::size_t>(n)],
                                 [counters, bytes](T* p) {
                                   counters->on_free(bytes);
                                   delete[] p;
                                 });
  }

  /// Wraps caller-owned memory (used by Arena). `keepalive` pins the slab.
  static TensorT wrap(T* data, Shape shape, std::shared_ptr<void> keepalive) {
    TensorT t;
    t.shape_ = shape;
    t.data_ = std::shared_ptr<T[]>(std::move(keepalive), data);
    return t;
  }

  static TensorT zeros(Shape shape) {
    TensorT t(shape);
    std::memset(t.data(), 0, static_cast<std::size_t>(t.numel()) * sizeof(T));
    return t;
  }

  static TensorT full(Shape shape, T value) {
    TensorT t(shape);
    t.fill(value);
    return t;
  }

  static TensorT from_vector(Shape shape, const std::vector<T>& values) {
    OPT_CHECK(static_cast<index_t>(values.size()) == shape.numel(),
              "vector size " << values.size() << " != shape numel " << shape.numel());
    TensorT t(shape);
    std::memcpy(t.data(), values.data(), values.size() * sizeof(T));
    return t;
  }

  const Shape& shape() const { return shape_; }
  int ndim() const { return shape_.ndim(); }
  index_t size(int dim) const { return shape_[dim]; }
  index_t numel() const { return shape_.numel(); }
  bool defined() const { return data_ != nullptr; }

  T* data() {
    OPT_DCHECK(defined(), "tensor has no storage");
    return data_.get();
  }
  const T* data() const {
    OPT_DCHECK(defined(), "tensor has no storage");
    return data_.get();
  }

  T& operator[](index_t i) {
    OPT_DCHECK(i >= 0 && i < numel(), "flat index " << i << " out of " << numel());
    return data()[i];
  }
  T operator[](index_t i) const {
    OPT_DCHECK(i >= 0 && i < numel(), "flat index " << i << " out of " << numel());
    return data()[i];
  }

  T& at(index_t i, index_t j) {
    OPT_DCHECK(ndim() == 2, "at(i,j) on " << shape_.to_string());
    return data()[i * shape_[1] + j];
  }
  T at(index_t i, index_t j) const {
    OPT_DCHECK(ndim() == 2, "at(i,j) on " << shape_.to_string());
    return data()[i * shape_[1] + j];
  }
  T& at(index_t i, index_t j, index_t k) {
    OPT_DCHECK(ndim() == 3, "at(i,j,k) on " << shape_.to_string());
    return data()[(i * shape_[1] + j) * shape_[2] + k];
  }
  T at(index_t i, index_t j, index_t k) const {
    OPT_DCHECK(ndim() == 3, "at(i,j,k) on " << shape_.to_string());
    return data()[(i * shape_[1] + j) * shape_[2] + k];
  }

  void fill(T value) {
    T* p = data();
    const index_t n = numel();
    for (index_t i = 0; i < n; ++i) p[i] = value;
  }

  void zero() { std::memset(data(), 0, static_cast<std::size_t>(numel()) * sizeof(T)); }

  /// Same storage, new shape (numel must match).
  TensorT reshape(Shape new_shape) const {
    OPT_CHECK(new_shape.numel() == numel(),
              "reshape " << shape_.to_string() << " -> " << new_shape.to_string());
    TensorT t = *this;
    t.shape_ = new_shape;
    return t;
  }

  /// Contiguous sub-view of rows [begin, end) along the outermost dimension.
  TensorT row_range(index_t begin, index_t end) const {
    OPT_CHECK(ndim() >= 1, "row_range on scalar");
    OPT_CHECK(0 <= begin && begin <= end && end <= shape_[0],
              "row_range [" << begin << ", " << end << ") of " << shape_.to_string());
    const index_t row_stride = numel() / (shape_[0] == 0 ? 1 : shape_[0]);
    Shape s = shape_;
    // Rebuild shape with the first dim replaced.
    Shape out = make_shape_with_first(s, end - begin);
    TensorT t;
    t.shape_ = out;
    t.data_ = std::shared_ptr<T[]>(data_, data_.get() + begin * row_stride);
    return t;
  }

  /// Deep copy into freshly allocated storage.
  TensorT clone() const {
    TensorT t(shape_);
    std::memcpy(t.data(), data(), static_cast<std::size_t>(numel()) * sizeof(T));
    return t;
  }

  /// Copies `src`'s contents into this tensor (shapes must match).
  void copy_from(const TensorT& src) {
    OPT_CHECK(shape_ == src.shape_,
              "copy_from shape mismatch " << shape_.to_string() << " vs "
                                          << src.shape_.to_string());
    std::memcpy(data(), src.data(), static_cast<std::size_t>(numel()) * sizeof(T));
  }

  std::vector<T> to_vector() const {
    return std::vector<T>(data(), data() + numel());
  }

 private:
  static Shape make_shape_with_first(const Shape& s, index_t first) {
    switch (s.ndim()) {
      case 1: return Shape{first};
      case 2: return Shape{first, s[1]};
      case 3: return Shape{first, s[1], s[2]};
      case 4: return Shape{first, s[1], s[2], s[3]};
      default: OPT_CHECK(false, "row_range on 0-dim tensor");
    }
  }

  Shape shape_;
  std::shared_ptr<T[]> data_;
};

using Tensor = TensorT<float>;
using DTensor = TensorT<double>;
using ITensor = TensorT<std::int32_t>;

}  // namespace optimus::tensor
