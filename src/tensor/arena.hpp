#pragma once

// Bump allocator over a pre-allocated slab.
//
// This implements the paper's §3.2.3 memory pre-allocation: the workspace,
// forward, backward, parameter-gradient and conjunction buffers are each one
// Arena. Tensors carved from an arena cost no allocation, and reset() makes
// the whole slab reusable for the next layer — eliminating the fragmentation
// the paper attributes to naive per-op allocation.
//
// Ownership: tensors pin the slab via shared_ptr, so the memory stays valid
// even if the Arena object dies; but after reset() the *contents* of earlier
// tensors are free to be overwritten. Engines must sequence resets exactly as
// Figure 6 prescribes. OPT_DCHECKs catch over-allocation.

#include <cstdint>
#include <memory>
#include <string>

#include "tensor/tensor.hpp"

namespace optimus::tensor {

class Arena {
 public:
  /// Pre-allocates `capacity_bytes`, charged to the current DeviceContext once.
  Arena(std::string name, std::uint64_t capacity_bytes)
      : name_(std::move(name)), capacity_(capacity_bytes) {
    auto counters = DeviceContext::current().counters();
    counters->on_alloc(capacity_bytes);
    slab_ = std::shared_ptr<std::byte[]>(
        new std::byte[capacity_bytes],
        [counters, capacity = capacity_bytes](std::byte* p) {
          counters->on_free(capacity);
          delete[] p;
        });
  }

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Carves a tensor out of the slab. Contents are uninitialised (or stale).
  template <typename T>
  TensorT<T> alloc(Shape shape) {
    const std::uint64_t bytes = align_up(static_cast<std::uint64_t>(shape.numel()) * sizeof(T));
    OPT_CHECK(offset_ + bytes <= capacity_,
              "arena '" << name_ << "' exhausted: want " << bytes << " more at offset "
                        << offset_ << " of " << capacity_);
    T* ptr = reinterpret_cast<T*>(slab_.get() + offset_);
    offset_ += bytes;
    if (offset_ > high_water_) high_water_ = offset_;
    return TensorT<T>::wrap(ptr, shape, std::shared_ptr<void>(slab_));
  }

  /// Zero-filled variant.
  template <typename T>
  TensorT<T> alloc_zeros(Shape shape) {
    TensorT<T> t = alloc<T>(shape);
    t.zero();
    return t;
  }

  /// Makes the whole slab reusable. Previously carved tensors become stale.
  void reset() { offset_ = 0; }

  /// Current bump position, restorable with reset_to (stack discipline).
  std::uint64_t mark() const { return offset_; }
  void reset_to(std::uint64_t m) {
    OPT_CHECK(m <= offset_, "arena '" << name_ << "' reset_to(" << m << ") above offset "
                                      << offset_);
    offset_ = m;
  }

  std::uint64_t used() const { return offset_; }
  std::uint64_t capacity() const { return capacity_; }
  std::uint64_t high_water() const { return high_water_; }
  const std::string& name() const { return name_; }

 private:
  static std::uint64_t align_up(std::uint64_t n) { return (n + 63) & ~std::uint64_t{63}; }

  std::string name_;
  std::uint64_t capacity_;
  std::uint64_t offset_ = 0;
  std::uint64_t high_water_ = 0;
  std::shared_ptr<std::byte[]> slab_;
};

/// RAII stack frame over an arena: everything allocated while the scope is
/// alive is released when it dies.
class ArenaScope {
 public:
  explicit ArenaScope(Arena& arena) : arena_(&arena), mark_(arena.mark()) {}
  ~ArenaScope() { arena_->reset_to(mark_); }
  ArenaScope(const ArenaScope&) = delete;
  ArenaScope& operator=(const ArenaScope&) = delete;

 private:
  Arena* arena_;
  std::uint64_t mark_;
};

}  // namespace optimus::tensor
