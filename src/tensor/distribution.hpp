#pragma once

// Block distribution helpers for the q×q mesh layout.
//
// These are pure local routines (no communication): tests and oracles use
// them to scatter a global tensor into the block each simulated device owns,
// and to gather device blocks back into a global tensor for comparison.
//
// Layouts used by the engines:
//   * matrix_block      — a [R, C] matrix split into q×q equal blocks; device
//                         (i, j) owns rows [i·R/q, (i+1)·R/q) and columns
//                         [j·C/q, (j+1)·C/q). Used for parameters, and for
//                         activations viewed as [b·s, h] (the b split is the
//                         mesh row, the h split the mesh column).
//   * activation_block  — a [b, s, h] tensor; device (i, j) owns batch rows
//                         [i·b/q, ...) and hidden slice [j·h/q, ...), with s
//                         whole (the Optimus attention layout).
//   * row_block         — a [b, s] integer tensor split along b only; every
//                         device in mesh row i holds the same [b/q, s] block.

#include "tensor/tensor.hpp"

namespace optimus::tensor {

/// Extracts the (bi, bj) block of a [R, C] matrix split q×q.
template <typename T>
TensorT<T> matrix_block(const TensorT<T>& global, index_t q, index_t bi, index_t bj);

/// Writes `block` into the (bi, bj) position of the q×q-split `global`.
template <typename T>
void set_matrix_block(TensorT<T>& global, index_t q, index_t bi, index_t bj,
                      const TensorT<T>& block);

/// Extracts device (bi, bj)'s [b/q, s, h/q] slice of a [b, s, h] activation.
template <typename T>
TensorT<T> activation_block(const TensorT<T>& global, index_t q, index_t bi, index_t bj);

/// Writes an activation block back into its global position.
template <typename T>
void set_activation_block(TensorT<T>& global, index_t q, index_t bi, index_t bj,
                          const TensorT<T>& block);

/// Extracts row-block bi of a [b, s] tensor split along b into q blocks.
template <typename T>
TensorT<T> row_block(const TensorT<T>& global, index_t q, index_t bi);

}  // namespace optimus::tensor
