#include "tensor/distribution.hpp"

#include <cstring>

namespace optimus::tensor {

namespace {

void check_divisible(index_t value, index_t q, const char* what) {
  OPT_CHECK(value % q == 0, what << " = " << value << " not divisible by q = " << q);
}

}  // namespace

template <typename T>
TensorT<T> matrix_block(const TensorT<T>& global, index_t q, index_t bi, index_t bj) {
  OPT_CHECK(global.ndim() == 2, "matrix_block needs 2-D, got " << global.shape().to_string());
  OPT_CHECK(0 <= bi && bi < q && 0 <= bj && bj < q, "block (" << bi << ", " << bj << ") of q=" << q);
  const index_t R = global.size(0);
  const index_t C = global.size(1);
  check_divisible(R, q, "rows");
  check_divisible(C, q, "cols");
  const index_t br = R / q;
  const index_t bc = C / q;
  TensorT<T> block(Shape{br, bc});
  for (index_t r = 0; r < br; ++r) {
    std::memcpy(block.data() + r * bc, global.data() + (bi * br + r) * C + bj * bc,
                static_cast<std::size_t>(bc) * sizeof(T));
  }
  return block;
}

template <typename T>
void set_matrix_block(TensorT<T>& global, index_t q, index_t bi, index_t bj,
                      const TensorT<T>& block) {
  OPT_CHECK(global.ndim() == 2 && block.ndim() == 2, "set_matrix_block needs 2-D tensors");
  const index_t R = global.size(0);
  const index_t C = global.size(1);
  check_divisible(R, q, "rows");
  check_divisible(C, q, "cols");
  const index_t br = R / q;
  const index_t bc = C / q;
  OPT_CHECK(block.size(0) == br && block.size(1) == bc,
            "block shape " << block.shape().to_string() << ", expected [" << br << ", " << bc
                           << "]");
  for (index_t r = 0; r < br; ++r) {
    std::memcpy(global.data() + (bi * br + r) * C + bj * bc, block.data() + r * bc,
                static_cast<std::size_t>(bc) * sizeof(T));
  }
}

template <typename T>
TensorT<T> activation_block(const TensorT<T>& global, index_t q, index_t bi, index_t bj) {
  OPT_CHECK(global.ndim() == 3, "activation_block needs [b, s, h], got "
                                    << global.shape().to_string());
  const index_t b = global.size(0);
  const index_t s = global.size(1);
  const index_t h = global.size(2);
  check_divisible(b, q, "batch");
  check_divisible(h, q, "hidden");
  const index_t bb = b / q;
  const index_t bh = h / q;
  TensorT<T> block(Shape{bb, s, bh});
  for (index_t r = 0; r < bb; ++r) {
    for (index_t t = 0; t < s; ++t) {
      std::memcpy(block.data() + (r * s + t) * bh,
                  global.data() + ((bi * bb + r) * s + t) * h + bj * bh,
                  static_cast<std::size_t>(bh) * sizeof(T));
    }
  }
  return block;
}

template <typename T>
void set_activation_block(TensorT<T>& global, index_t q, index_t bi, index_t bj,
                          const TensorT<T>& block) {
  OPT_CHECK(global.ndim() == 3 && block.ndim() == 3, "set_activation_block needs 3-D tensors");
  const index_t b = global.size(0);
  const index_t s = global.size(1);
  const index_t h = global.size(2);
  check_divisible(b, q, "batch");
  check_divisible(h, q, "hidden");
  const index_t bb = b / q;
  const index_t bh = h / q;
  OPT_CHECK(block.size(0) == bb && block.size(1) == s && block.size(2) == bh,
            "activation block shape " << block.shape().to_string());
  for (index_t r = 0; r < bb; ++r) {
    for (index_t t = 0; t < s; ++t) {
      std::memcpy(global.data() + ((bi * bb + r) * s + t) * h + bj * bh,
                  block.data() + (r * s + t) * bh, static_cast<std::size_t>(bh) * sizeof(T));
    }
  }
}

template <typename T>
TensorT<T> row_block(const TensorT<T>& global, index_t q, index_t bi) {
  OPT_CHECK(global.ndim() >= 1, "row_block needs at least 1-D");
  const index_t b = global.size(0);
  check_divisible(b, q, "rows");
  const index_t bb = b / q;
  return global.row_range(bi * bb, (bi + 1) * bb).clone();
}

#define OPTIMUS_INSTANTIATE_DIST(T)                                                       \
  template TensorT<T> matrix_block<T>(const TensorT<T>&, index_t, index_t, index_t);      \
  template void set_matrix_block<T>(TensorT<T>&, index_t, index_t, index_t,               \
                                    const TensorT<T>&);                                   \
  template TensorT<T> activation_block<T>(const TensorT<T>&, index_t, index_t, index_t);  \
  template void set_activation_block<T>(TensorT<T>&, index_t, index_t, index_t,           \
                                        const TensorT<T>&);                               \
  template TensorT<T> row_block<T>(const TensorT<T>&, index_t, index_t);

OPTIMUS_INSTANTIATE_DIST(float)
OPTIMUS_INSTANTIATE_DIST(double)
OPTIMUS_INSTANTIATE_DIST(std::int32_t)

#undef OPTIMUS_INSTANTIATE_DIST

}  // namespace optimus::tensor
