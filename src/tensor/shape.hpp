#pragma once

// Shape of a dense, row-major tensor. Up to kMaxDims dimensions.

#include <array>
#include <cstdint>
#include <initializer_list>
#include <string>

#include "util/check.hpp"

namespace optimus::tensor {

using index_t = std::int64_t;

class Shape {
 public:
  static constexpr int kMaxDims = 4;

  Shape() = default;

  Shape(std::initializer_list<index_t> dims) {
    OPT_CHECK(static_cast<int>(dims.size()) <= kMaxDims,
              "at most " << kMaxDims << " dims supported, got " << dims.size());
    for (index_t d : dims) {
      OPT_CHECK(d >= 0, "negative dimension " << d);
      dims_[ndim_++] = d;
    }
  }

  int ndim() const { return ndim_; }

  index_t operator[](int i) const {
    OPT_DCHECK(i >= 0 && i < ndim_, "dim index " << i << " out of range for ndim " << ndim_);
    return dims_[i];
  }

  index_t numel() const {
    index_t n = 1;
    for (int i = 0; i < ndim_; ++i) n *= dims_[i];
    return n;
  }

  /// Size of the trailing dimension (1 for scalars/empty shapes).
  index_t last() const { return ndim_ == 0 ? 1 : dims_[ndim_ - 1]; }

  bool operator==(const Shape& other) const {
    if (ndim_ != other.ndim_) return false;
    for (int i = 0; i < ndim_; ++i) {
      if (dims_[i] != other.dims_[i]) return false;
    }
    return true;
  }
  bool operator!=(const Shape& other) const { return !(*this == other); }

  std::string to_string() const {
    std::string s = "[";
    for (int i = 0; i < ndim_; ++i) {
      if (i) s += ", ";
      s += std::to_string(dims_[i]);
    }
    return s + "]";
  }

 private:
  std::array<index_t, kMaxDims> dims_{};
  int ndim_ = 0;
};

}  // namespace optimus::tensor
