#pragma once

// Dense kernels and their hand-derived backward passes.
//
// Everything operates on contiguous row-major TensorT<T>. Matmul flops (in the
// paper's unit, scalar multiplications) are charged to the current
// DeviceContext; elementwise work is not counted, matching the paper's
// Table-1 accounting which only tracks matrix-product terms.
//
// All templates are instantiated for float and double in ops.cpp.

#include <cstdint>

#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace optimus::tensor {
namespace ops {

enum class Trans { No, Yes };

// ---------------------------------------------------------------------------
// GEMM
// ---------------------------------------------------------------------------

/// C = alpha * op(A) * op(B) + beta * C on raw row-major buffers.
/// op(A) is m×k, op(B) is k×n, C is m×n. ld* are the row strides of the
/// *stored* matrices (pre-transpose). Charges m·n·k mults to the current
/// DeviceContext, then dispatches into the high-performance kernel layer
/// (src/kernel/: packed panels, register tiling, intra-op threading); tiny
/// problems fall back to the naive blocked loop. beta == 0 *stores* into C —
/// uninitialised (NaN/Inf) output buffers are safe.
template <typename T>
void gemm_raw(T* C, const T* A, const T* B, index_t m, index_t n, index_t k, index_t lda,
              index_t ldb, index_t ldc, Trans trans_a, Trans trans_b, T alpha, T beta);

/// The seed scalar/blocked reference implementation (single thread, no
/// packing, no flop accounting). Kept as the correctness oracle for the
/// kernel tests and as the bench_kernels baseline.
template <typename T>
void gemm_naive_raw(T* C, const T* A, const T* B, index_t m, index_t n, index_t k, index_t lda,
                    index_t ldb, index_t ldc, Trans trans_a, Trans trans_b, T alpha, T beta);

/// C = alpha * op(A) * op(B) + beta * C. A, B, C must be 2-D; shapes checked.
template <typename T>
void gemm(TensorT<T>& C, const TensorT<T>& A, const TensorT<T>& B, Trans trans_a = Trans::No,
          Trans trans_b = Trans::No, T alpha = T{1}, T beta = T{0});

/// Returns op(A)*op(B) as a new tensor.
template <typename T>
TensorT<T> matmul(const TensorT<T>& A, const TensorT<T>& B, Trans trans_a = Trans::No,
                  Trans trans_b = Trans::No);

// ---------------------------------------------------------------------------
// Fused GEMM epilogues
// ---------------------------------------------------------------------------
//
// These route through kernel::gemm_ex, which applies the elementwise tail to
// each C tile right after its last K panel is accumulated — while the tile
// is register/L1-hot — instead of in a separate full-tensor pass. The fused
// results are bitwise identical to the unfused sequences they replace: the
// kernel applies the same scalar operations in the same order, so engines
// can mix fused and unfused paths and still agree to 0 ULPs (the fuzz
// harness relies on this). Flop accounting is unchanged — the epilogue is
// elementwise and the paper's Table-1 unit only counts matrix products.
// Tiny problems fall back to the naive GEMM followed by the same reference
// tail, keeping dispatch shape-deterministic.

/// C = op(A)·op(B) + bias (bias[j] broadcast over rows).
/// Bitwise identical to { gemm(C, A, B); add_bias_(C, bias); }.
template <typename T>
void gemm_bias(TensorT<T>& C, const TensorT<T>& A, const TensorT<T>& B, const TensorT<T>& bias,
               Trans trans_a = Trans::No, Trans trans_b = Trans::No);

/// pre = op(A)·op(B) + bias; gelu_out = gelu(pre). `pre` keeps the biased
/// pre-activation the backward pass needs. Bitwise identical to
/// { gemm(pre, A, B); add_bias_(pre, bias); gelu_forward(pre, gelu_out); }.
template <typename T>
void gemm_bias_gelu(TensorT<T>& gelu_out, TensorT<T>& pre, const TensorT<T>& A,
                    const TensorT<T>& B, const TensorT<T>& bias, Trans trans_a = Trans::No,
                    Trans trans_b = Trans::No);

/// C = (op(A)·op(B) + bias) + residual.
/// Bitwise identical to { gemm(C, A, B); add_bias_(C, bias); add_(C, residual); }.
template <typename T>
void gemm_bias_residual(TensorT<T>& C, const TensorT<T>& A, const TensorT<T>& B,
                        const TensorT<T>& bias, const TensorT<T>& residual,
                        Trans trans_a = Trans::No, Trans trans_b = Trans::No);

/// Views a tensor of ndim >= 2 as a 2-D matrix [prod(leading dims), last dim].
template <typename T>
TensorT<T> as_matrix(const TensorT<T>& t);

// ---------------------------------------------------------------------------
// Elementwise and broadcasting
// ---------------------------------------------------------------------------

template <typename T>
void add_(TensorT<T>& y, const TensorT<T>& x);  // y += x

template <typename T>
void sub_(TensorT<T>& y, const TensorT<T>& x);  // y -= x

template <typename T>
void axpy_(TensorT<T>& y, T alpha, const TensorT<T>& x);  // y += alpha * x

template <typename T>
void scale_(TensorT<T>& y, T alpha);  // y *= alpha

template <typename T>
TensorT<T> add(const TensorT<T>& a, const TensorT<T>& b);

/// y[..., j] += bias[j] — bias broadcast over the last dimension.
template <typename T>
void add_bias_(TensorT<T>& y, const TensorT<T>& bias);

/// dbias[j] (+)= sum over leading dims of dy[..., j].
template <typename T>
void bias_grad(const TensorT<T>& dy, TensorT<T>& dbias, bool accumulate);

/// y[r, j] = (y[r, j] + bias[j]) + residual[r, j] in one pass — for
/// projections whose bias must apply *after* a distributed reduce (SUMMA /
/// row-parallel outputs), where it cannot fuse into the local GEMM. Bitwise
/// identical to { add_bias_(y, bias); add_(y, residual); }.
template <typename T>
void bias_residual_(TensorT<T>& y, const TensorT<T>& bias, const TensorT<T>& residual);

/// x[r, j] += bias[j]; y[r, j] = gelu(x[r, j]) in one pass (x keeps the
/// biased pre-activation for backward). Bitwise identical to
/// { add_bias_(x, bias); gelu_forward(x, y); }.
template <typename T>
void bias_gelu_(TensorT<T>& x, const TensorT<T>& bias, TensorT<T>& y);

// ---------------------------------------------------------------------------
// GELU (tanh approximation, as in GPT/Megatron)
// ---------------------------------------------------------------------------

template <typename T>
void gelu_forward(const TensorT<T>& x, TensorT<T>& y);

/// dx (+)= gelu'(x) * dy.
template <typename T>
void gelu_backward(const TensorT<T>& x, const TensorT<T>& dy, TensorT<T>& dx, bool accumulate);

// ---------------------------------------------------------------------------
// Softmax over the last dimension
// ---------------------------------------------------------------------------

template <typename T>
void softmax_lastdim(const TensorT<T>& x, TensorT<T>& y);

/// dx = y ⊙ (dy − Σ_last(dy ⊙ y)) given y = softmax(x).
template <typename T>
void softmax_backward_lastdim(const TensorT<T>& y, const TensorT<T>& dy, TensorT<T>& dx);

// ---------------------------------------------------------------------------
// LayerNorm over the last dimension (serial, full-width form; the 2D-parallel
// variant in core/ composes the same math from partial sums)
// ---------------------------------------------------------------------------

/// y = gamma ⊙ xhat + beta with xhat = (x − E[x]) / sqrt(Var[x] + eps).
/// Saves xhat and 1/sqrt(Var+eps) for backward, as §3.2.2 of the paper does.
template <typename T>
void layernorm_forward(const TensorT<T>& x, const TensorT<T>& gamma, const TensorT<T>& beta,
                       T eps, TensorT<T>& y, TensorT<T>& xhat, TensorT<T>& inv_std);

template <typename T>
void layernorm_backward(const TensorT<T>& xhat, const TensorT<T>& inv_std,
                        const TensorT<T>& gamma, const TensorT<T>& dy, TensorT<T>& dx,
                        TensorT<T>& dgamma, TensorT<T>& dbeta, bool accumulate_params);

// ---------------------------------------------------------------------------
// Cross entropy with integer labels over the last dimension
// ---------------------------------------------------------------------------

/// Returns mean over rows of −log softmax(logits)[label]; fills probs
/// (softmax of logits) for the backward pass. A label < 0 masks that row out.
template <typename T>
T cross_entropy_forward(const TensorT<T>& logits, const ITensor& labels, TensorT<T>& probs);

/// dlogits = scale * (probs − onehot(labels)); masked rows get zero gradient.
/// scale is typically 1/#unmasked rows to match the mean reduction.
template <typename T>
void cross_entropy_backward(const TensorT<T>& probs, const ITensor& labels, T scale,
                            TensorT<T>& dlogits);

// ---------------------------------------------------------------------------
// Embedding lookup
// ---------------------------------------------------------------------------

/// y[r, :] = table[tokens[r], :].
template <typename T>
void embedding_forward(const TensorT<T>& table, const ITensor& tokens, TensorT<T>& y);

/// dtable[tokens[r], :] += dy[r, :]  (dtable must be pre-initialised).
template <typename T>
void embedding_backward(const ITensor& tokens, const TensorT<T>& dy, TensorT<T>& dtable);

// ---------------------------------------------------------------------------
// Reductions / diagnostics
// ---------------------------------------------------------------------------

template <typename T>
T sum_all(const TensorT<T>& x);

template <typename T>
T max_abs(const TensorT<T>& x);

template <typename T>
T max_abs_diff(const TensorT<T>& a, const TensorT<T>& b);

template <typename T>
T l2_norm(const TensorT<T>& x);

template <typename T>
TensorT<T> transpose2d(const TensorT<T>& x);

// ---------------------------------------------------------------------------
// Counter-based initialisation (identical across serial and distributed
// engines — see util::CounterRng)
// ---------------------------------------------------------------------------

/// Fills a [rows, cols] block whose global top-left corner is (row0, col0) in
/// a global matrix with `global_cols` columns, with values uniform in
/// [−scale, scale] drawn from `rng` stream `stream`.
template <typename T>
void fill_counter_uniform(TensorT<T>& block, const util::CounterRng& rng, std::uint64_t stream,
                          T scale, index_t row0, index_t col0, index_t global_cols);

/// Casts every element of `src` into a tensor of U (float↔double bridges).
template <typename T, typename U>
TensorT<U> cast(const TensorT<T>& src);

}  // namespace ops
}  // namespace optimus::tensor
