#include "tensor/ops.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "kernel/gemm.hpp"
#include "obs/trace.hpp"
#include "tensor/parallel.hpp"

namespace optimus::tensor::ops {

namespace {

// Blocked micro-kernel sizes for the naive reference path. The production
// path lives in src/kernel/ (packed panels + register tiling + intra-op
// threading); this blocked loop is kept as the bench baseline and the
// correctness oracle for the kernel tests.
constexpr index_t kBlockM = 32;
constexpr index_t kBlockN = 64;
constexpr index_t kBlockK = 64;

// Below this many multiplications the kernel layer's packing overhead is not
// worth it; the naive blocked loop wins. Shape-only rule, so dispatch is
// deterministic.
constexpr index_t kKernelDispatchCutoff = 16 * 16 * 16;

template <typename T>
inline T element(const T* M, index_t ld, Trans trans, index_t r, index_t c) {
  return trans == Trans::No ? M[r * ld + c] : M[c * ld + r];
}

}  // namespace

template <typename T>
void gemm_raw(T* C, const T* A, const T* B, index_t m, index_t n, index_t k, index_t lda,
              index_t ldb, index_t ldc, Trans trans_a, Trans trans_b, T alpha, T beta) {
  // Span opens before the mult charge, so its simulated duration is exactly
  // compute_time(m·n·k) via the tracer's pending-mults clock extension.
  obs::Span span("kernel", "gemm");
  if (span.armed()) span.arg("m", m).arg("n", n).arg("k", k);
  DeviceContext::current().on_mults(static_cast<std::uint64_t>(m) * n * k);
  if (m * n * k >= kKernelDispatchCutoff) {
    kernel::gemm(C, A, B, m, n, k, lda, ldb, ldc,
                 trans_a == Trans::No ? kernel::Trans::No : kernel::Trans::Yes,
                 trans_b == Trans::No ? kernel::Trans::No : kernel::Trans::Yes, alpha, beta);
    return;
  }
  gemm_naive_raw(C, A, B, m, n, k, lda, ldb, ldc, trans_a, trans_b, alpha, beta);
}

template <typename T>
void gemm_naive_raw(T* C, const T* A, const T* B, index_t m, index_t n, index_t k, index_t lda,
                    index_t ldb, index_t ldc, Trans trans_a, Trans trans_b, T alpha, T beta) {
  // Apply beta first so the accumulation loops can always +=. beta == 0
  // stores (never scales): C may legitimately hold NaN/Inf garbage, e.g. an
  // uninitialised Arena slab handed out by summa::make_temp.
  for (index_t i = 0; i < m; ++i) {
    T* c_row = C + i * ldc;
    if (beta == T{0}) {
      std::fill(c_row, c_row + n, T{0});
    } else if (beta != T{1}) {
      for (index_t j = 0; j < n; ++j) c_row[j] *= beta;
    }
  }

  if (trans_a == Trans::No && trans_b == Trans::No) {
    // Blocked i-k-j with the innermost loop streaming rows of B: cache friendly
    // and auto-vectorisable.
    for (index_t i0 = 0; i0 < m; i0 += kBlockM) {
      const index_t i1 = std::min(i0 + kBlockM, m);
      for (index_t k0 = 0; k0 < k; k0 += kBlockK) {
        const index_t k1 = std::min(k0 + kBlockK, k);
        for (index_t j0 = 0; j0 < n; j0 += kBlockN) {
          const index_t j1 = std::min(j0 + kBlockN, n);
          for (index_t i = i0; i < i1; ++i) {
            T* c_row = C + i * ldc;
            for (index_t kk = k0; kk < k1; ++kk) {
              const T a = alpha * A[i * lda + kk];
              const T* b_row = B + kk * ldb;
              for (index_t j = j0; j < j1; ++j) c_row[j] += a * b_row[j];
            }
          }
        }
      }
    }
    return;
  }

  if (trans_a == Trans::No && trans_b == Trans::Yes) {
    // C[i,j] += alpha * dot(A[i,:], B[j,:]) — both operands row-streamed.
    for (index_t i = 0; i < m; ++i) {
      const T* a_row = A + i * lda;
      T* c_row = C + i * ldc;
      for (index_t j = 0; j < n; ++j) {
        const T* b_row = B + j * ldb;
        T acc{0};
        for (index_t kk = 0; kk < k; ++kk) acc += a_row[kk] * b_row[kk];
        c_row[j] += alpha * acc;
      }
    }
    return;
  }

  if (trans_a == Trans::Yes && trans_b == Trans::No) {
    // C[i,j] += alpha * sum_k A[k,i] * B[k,j] — k-outer keeps both row-major.
    for (index_t kk = 0; kk < k; ++kk) {
      const T* a_row = A + kk * lda;
      const T* b_row = B + kk * ldb;
      for (index_t i = 0; i < m; ++i) {
        const T a = alpha * a_row[i];
        T* c_row = C + i * ldc;
        for (index_t j = 0; j < n; ++j) c_row[j] += a * b_row[j];
      }
    }
    return;
  }

  // Trans::Yes / Trans::Yes — rare; simple triple loop.
  for (index_t i = 0; i < m; ++i) {
    T* c_row = C + i * ldc;
    for (index_t j = 0; j < n; ++j) {
      T acc{0};
      for (index_t kk = 0; kk < k; ++kk) {
        acc += element(A, lda, Trans::Yes, i, kk) * element(B, ldb, Trans::Yes, kk, j);
      }
      c_row[j] += alpha * acc;
    }
  }
}

template <typename T>
TensorT<T> as_matrix(const TensorT<T>& t) {
  OPT_CHECK(t.ndim() >= 2, "as_matrix needs ndim >= 2, got " << t.shape().to_string());
  return t.reshape(Shape{t.numel() / t.shape().last(), t.shape().last()});
}

template <typename T>
void gemm(TensorT<T>& C, const TensorT<T>& A, const TensorT<T>& B, Trans trans_a, Trans trans_b,
          T alpha, T beta) {
  OPT_CHECK(A.ndim() == 2 && B.ndim() == 2 && C.ndim() == 2,
            "gemm operands must be 2-D: " << A.shape().to_string() << " x "
                                          << B.shape().to_string() << " -> "
                                          << C.shape().to_string());
  const index_t m = trans_a == Trans::No ? A.size(0) : A.size(1);
  const index_t k = trans_a == Trans::No ? A.size(1) : A.size(0);
  const index_t kb = trans_b == Trans::No ? B.size(0) : B.size(1);
  const index_t n = trans_b == Trans::No ? B.size(1) : B.size(0);
  OPT_CHECK(k == kb, "gemm inner-dim mismatch: " << k << " vs " << kb);
  OPT_CHECK(C.size(0) == m && C.size(1) == n,
            "gemm output shape " << C.shape().to_string() << ", expected [" << m << ", " << n
                                 << "]");
  gemm_raw(C.data(), A.data(), B.data(), m, n, k, A.size(1), B.size(1), C.size(1), trans_a,
           trans_b, alpha, beta);
}

template <typename T>
TensorT<T> matmul(const TensorT<T>& A, const TensorT<T>& B, Trans trans_a, Trans trans_b) {
  const index_t m = trans_a == Trans::No ? A.size(0) : A.size(1);
  const index_t n = trans_b == Trans::No ? B.size(1) : B.size(0);
  TensorT<T> C(Shape{m, n});
  gemm(C, A, B, trans_a, trans_b, T{1}, T{0});
  return C;
}

// ---------------------------------------------------------------------------
// Fused GEMM epilogues
// ---------------------------------------------------------------------------

namespace {

// The unfused reference tail, used on the naive (below-cutoff) path so fused
// wrappers stay bitwise identical to the kernel's in-tile epilogue there too.
template <typename T>
void epilogue_reference(const kernel::EpilogueArgs<T>& ep, T* C, index_t ldc, index_t m,
                        index_t n) {
  switch (ep.op) {
    case kernel::Epilogue::None:
      return;
    case kernel::Epilogue::BiasAdd:
      for (index_t i = 0; i < m; ++i) {
        T* c = C + i * ldc;
        for (index_t j = 0; j < n; ++j) c[j] += ep.bias[j];
      }
      return;
    case kernel::Epilogue::BiasGelu:
      for (index_t i = 0; i < m; ++i) {
        T* c = C + i * ldc;
        T* pre = ep.pre + i * ep.ldp;
        for (index_t j = 0; j < n; ++j) {
          const T v = c[j] + ep.bias[j];
          pre[j] = v;
          c[j] = kernel::gelu_scalar(v);
        }
      }
      return;
    case kernel::Epilogue::ResidualAdd:
      for (index_t i = 0; i < m; ++i) {
        T* c = C + i * ldc;
        const T* res = ep.residual + i * ep.ldr;
        for (index_t j = 0; j < n; ++j) c[j] = (c[j] + ep.bias[j]) + res[j];
      }
      return;
  }
}

template <typename T>
void gemm_fused_raw(T* C, const T* A, const T* B, index_t m, index_t n, index_t k, index_t lda,
                    index_t ldb, index_t ldc, Trans trans_a, Trans trans_b,
                    const kernel::EpilogueArgs<T>& ep) {
  obs::Span span("kernel", "gemm");
  if (span.armed()) span.arg("m", m).arg("n", n).arg("k", k);
  DeviceContext::current().on_mults(static_cast<std::uint64_t>(m) * n * k);
  if (m * n * k >= kKernelDispatchCutoff) {
    kernel::gemm_ex(C, A, B, m, n, k, lda, ldb, ldc,
                    trans_a == Trans::No ? kernel::Trans::No : kernel::Trans::Yes,
                    trans_b == Trans::No ? kernel::Trans::No : kernel::Trans::Yes, T{1}, T{0},
                    ep);
    return;
  }
  gemm_naive_raw(C, A, B, m, n, k, lda, ldb, ldc, trans_a, trans_b, T{1}, T{0});
  epilogue_reference(ep, C, ldc, m, n);
}

// Shape resolution shared by the fused wrappers (mirrors gemm's checks).
template <typename T>
void resolve_gemm_shapes(const TensorT<T>& C, const TensorT<T>& A, const TensorT<T>& B,
                         Trans trans_a, Trans trans_b, index_t* m, index_t* n, index_t* k) {
  OPT_CHECK(A.ndim() == 2 && B.ndim() == 2 && C.ndim() == 2,
            "fused gemm operands must be 2-D: " << A.shape().to_string() << " x "
                                                << B.shape().to_string() << " -> "
                                                << C.shape().to_string());
  *m = trans_a == Trans::No ? A.size(0) : A.size(1);
  *k = trans_a == Trans::No ? A.size(1) : A.size(0);
  const index_t kb = trans_b == Trans::No ? B.size(0) : B.size(1);
  *n = trans_b == Trans::No ? B.size(1) : B.size(0);
  OPT_CHECK(*k == kb, "fused gemm inner-dim mismatch: " << *k << " vs " << kb);
  OPT_CHECK(C.size(0) == *m && C.size(1) == *n,
            "fused gemm output shape " << C.shape().to_string() << ", expected [" << *m << ", "
                                       << *n << "]");
}

}  // namespace

template <typename T>
void gemm_bias(TensorT<T>& C, const TensorT<T>& A, const TensorT<T>& B, const TensorT<T>& bias,
               Trans trans_a, Trans trans_b) {
  index_t m = 0, n = 0, k = 0;
  resolve_gemm_shapes(C, A, B, trans_a, trans_b, &m, &n, &k);
  OPT_CHECK(bias.numel() == n, "gemm_bias bias size " << bias.numel() << " != n " << n);
  kernel::EpilogueArgs<T> ep;
  ep.op = kernel::Epilogue::BiasAdd;
  ep.bias = bias.data();
  gemm_fused_raw(C.data(), A.data(), B.data(), m, n, k, A.size(1), B.size(1), C.size(1),
                 trans_a, trans_b, ep);
}

template <typename T>
void gemm_bias_gelu(TensorT<T>& gelu_out, TensorT<T>& pre, const TensorT<T>& A,
                    const TensorT<T>& B, const TensorT<T>& bias, Trans trans_a, Trans trans_b) {
  index_t m = 0, n = 0, k = 0;
  resolve_gemm_shapes(gelu_out, A, B, trans_a, trans_b, &m, &n, &k);
  OPT_CHECK(bias.numel() == n, "gemm_bias_gelu bias size " << bias.numel() << " != n " << n);
  OPT_CHECK(pre.numel() == gelu_out.numel(), "gemm_bias_gelu pre-activation buffer mismatch");
  kernel::EpilogueArgs<T> ep;
  ep.op = kernel::Epilogue::BiasGelu;
  ep.bias = bias.data();
  ep.pre = pre.data();
  ep.ldp = n;
  gemm_fused_raw(gelu_out.data(), A.data(), B.data(), m, n, k, A.size(1), B.size(1),
                 gelu_out.size(1), trans_a, trans_b, ep);
}

template <typename T>
void gemm_bias_residual(TensorT<T>& C, const TensorT<T>& A, const TensorT<T>& B,
                        const TensorT<T>& bias, const TensorT<T>& residual, Trans trans_a,
                        Trans trans_b) {
  index_t m = 0, n = 0, k = 0;
  resolve_gemm_shapes(C, A, B, trans_a, trans_b, &m, &n, &k);
  OPT_CHECK(bias.numel() == n, "gemm_bias_residual bias size " << bias.numel() << " != n " << n);
  OPT_CHECK(residual.numel() == C.numel(), "gemm_bias_residual residual shape mismatch");
  kernel::EpilogueArgs<T> ep;
  ep.op = kernel::Epilogue::ResidualAdd;
  ep.bias = bias.data();
  ep.residual = residual.data();
  ep.ldr = n;
  gemm_fused_raw(C.data(), A.data(), B.data(), m, n, k, A.size(1), B.size(1), C.size(1),
                 trans_a, trans_b, ep);
}

namespace {

// Flat elementwise chunking: big enough to amortise pool dispatch, small
// enough to spread medium tensors across workers.
constexpr index_t kElemGrain = 1 << 14;

}  // namespace

template <typename T>
void add_(TensorT<T>& y, const TensorT<T>& x) {
  OPT_CHECK(y.numel() == x.numel(), "add_ size mismatch");
  T* yp = y.data();
  const T* xp = x.data();
  parallel_for(y.numel(), kElemGrain, [&](index_t i0, index_t i1) {
    for (index_t i = i0; i < i1; ++i) yp[i] += xp[i];
  });
}

template <typename T>
void sub_(TensorT<T>& y, const TensorT<T>& x) {
  OPT_CHECK(y.numel() == x.numel(), "sub_ size mismatch");
  T* yp = y.data();
  const T* xp = x.data();
  parallel_for(y.numel(), kElemGrain, [&](index_t i0, index_t i1) {
    for (index_t i = i0; i < i1; ++i) yp[i] -= xp[i];
  });
}

template <typename T>
void axpy_(TensorT<T>& y, T alpha, const TensorT<T>& x) {
  OPT_CHECK(y.numel() == x.numel(), "axpy_ size mismatch");
  T* yp = y.data();
  const T* xp = x.data();
  parallel_for(y.numel(), kElemGrain, [&](index_t i0, index_t i1) {
    for (index_t i = i0; i < i1; ++i) yp[i] += alpha * xp[i];
  });
}

template <typename T>
void scale_(TensorT<T>& y, T alpha) {
  T* yp = y.data();
  parallel_for(y.numel(), kElemGrain, [&](index_t i0, index_t i1) {
    for (index_t i = i0; i < i1; ++i) yp[i] *= alpha;
  });
}

template <typename T>
TensorT<T> add(const TensorT<T>& a, const TensorT<T>& b) {
  OPT_CHECK(a.shape() == b.shape(), "add shape mismatch");
  TensorT<T> y = a.clone();
  add_(y, b);
  return y;
}

template <typename T>
void add_bias_(TensorT<T>& y, const TensorT<T>& bias) {
  const index_t cols = y.shape().last();
  OPT_CHECK(bias.numel() == cols,
            "bias size " << bias.numel() << " != last dim " << cols);
  const index_t rows = y.numel() / cols;
  T* yp = y.data();
  const T* bp = bias.data();
  parallel_rows(rows, cols, [&](index_t r0, index_t r1) {
    for (index_t r = r0; r < r1; ++r) {
      T* row = yp + r * cols;
      for (index_t j = 0; j < cols; ++j) row[j] += bp[j];
    }
  });
}

template <typename T>
void bias_grad(const TensorT<T>& dy, TensorT<T>& dbias, bool accumulate) {
  const index_t cols = dy.shape().last();
  OPT_CHECK(dbias.numel() == cols, "bias_grad size mismatch");
  const index_t rows = dy.numel() / cols;
  if (!accumulate) dbias.zero();
  const T* dp = dy.data();
  T* bp = dbias.data();
  // Parallel over column blocks, rows accumulated in order inside each —
  // bitwise identical to the serial loop for any thread count.
  parallel_for(cols, /*grain=*/64, [&](index_t j0, index_t j1) {
    for (index_t r = 0; r < rows; ++r) {
      const T* row = dp + r * cols;
      for (index_t j = j0; j < j1; ++j) bp[j] += row[j];
    }
  });
}

template <typename T>
void bias_residual_(TensorT<T>& y, const TensorT<T>& bias, const TensorT<T>& residual) {
  const index_t cols = y.shape().last();
  OPT_CHECK(bias.numel() == cols,
            "bias_residual_ bias size " << bias.numel() << " != last dim " << cols);
  OPT_CHECK(residual.numel() == y.numel(), "bias_residual_ residual size mismatch");
  const index_t rows = y.numel() / cols;
  T* yp = y.data();
  const T* bp = bias.data();
  const T* rp = residual.data();
  parallel_rows(rows, cols, [&](index_t r0, index_t r1) {
    for (index_t r = r0; r < r1; ++r) {
      T* row = yp + r * cols;
      const T* res = rp + r * cols;
      for (index_t j = 0; j < cols; ++j) row[j] = (row[j] + bp[j]) + res[j];
    }
  });
}

template <typename T>
void bias_gelu_(TensorT<T>& x, const TensorT<T>& bias, TensorT<T>& y) {
  const index_t cols = x.shape().last();
  OPT_CHECK(bias.numel() == cols,
            "bias_gelu_ bias size " << bias.numel() << " != last dim " << cols);
  OPT_CHECK(y.numel() == x.numel(), "bias_gelu_ output size mismatch");
  const index_t rows = x.numel() / cols;
  T* xp = x.data();
  const T* bp = bias.data();
  T* yp = y.data();
  parallel_rows(rows, cols, [&](index_t r0, index_t r1) {
    for (index_t r = r0; r < r1; ++r) {
      T* xrow = xp + r * cols;
      T* yrow = yp + r * cols;
      for (index_t j = 0; j < cols; ++j) {
        const T v = xrow[j] + bp[j];
        xrow[j] = v;
        yrow[j] = kernel::gelu_scalar(v);
      }
    }
  });
}

namespace {

// Forward GELU lives in kernel/gemm.hpp (kernel::gelu_scalar) so the fused
// GEMM epilogue and this layer are the same scalar function; only the
// derivative is local.
using kernel::gelu_scalar;

template <typename T>
inline T gelu_grad_scalar(T x) {
  const T c = T{0.7978845608028654};
  const T x3 = x * x * x;
  const T inner = c * (x + T{0.044715} * x3);
  const T t = std::tanh(inner);
  const T dinner = c * (T{1} + T{3} * T{0.044715} * x * x);
  return T{0.5} * (T{1} + t) + T{0.5} * x * (T{1} - t * t) * dinner;
}

}  // namespace

template <typename T>
void gelu_forward(const TensorT<T>& x, TensorT<T>& y) {
  OPT_CHECK(x.numel() == y.numel(), "gelu size mismatch");
  const T* xp = x.data();
  T* yp = y.data();
  parallel_for(x.numel(), kElemGrain, [&](index_t i0, index_t i1) {
    for (index_t i = i0; i < i1; ++i) yp[i] = gelu_scalar(xp[i]);
  });
}

template <typename T>
void gelu_backward(const TensorT<T>& x, const TensorT<T>& dy, TensorT<T>& dx, bool accumulate) {
  OPT_CHECK(x.numel() == dy.numel() && x.numel() == dx.numel(), "gelu size mismatch");
  const T* xp = x.data();
  const T* dyp = dy.data();
  T* dxp = dx.data();
  parallel_for(x.numel(), kElemGrain, [&](index_t i0, index_t i1) {
    if (accumulate) {
      for (index_t i = i0; i < i1; ++i) dxp[i] += gelu_grad_scalar(xp[i]) * dyp[i];
    } else {
      for (index_t i = i0; i < i1; ++i) dxp[i] = gelu_grad_scalar(xp[i]) * dyp[i];
    }
  });
}

template <typename T>
void softmax_lastdim(const TensorT<T>& x, TensorT<T>& y) {
  OPT_CHECK(x.numel() == y.numel(), "softmax size mismatch");
  const index_t cols = x.shape().last();
  const index_t rows = x.numel() / cols;
  const T* xp = x.data();
  T* yp = y.data();
  parallel_rows(rows, cols, [&](index_t r0, index_t r1) {
    for (index_t r = r0; r < r1; ++r) {
      const T* in = xp + r * cols;
      T* out = yp + r * cols;
      T mx = in[0];
      for (index_t j = 1; j < cols; ++j) mx = std::max(mx, in[j]);
      T sum{0};
      for (index_t j = 0; j < cols; ++j) {
        out[j] = std::exp(in[j] - mx);
        sum += out[j];
      }
      const T inv = T{1} / sum;
      for (index_t j = 0; j < cols; ++j) out[j] *= inv;
    }
  });
}

template <typename T>
void softmax_backward_lastdim(const TensorT<T>& y, const TensorT<T>& dy, TensorT<T>& dx) {
  OPT_CHECK(y.numel() == dy.numel() && y.numel() == dx.numel(), "softmax size mismatch");
  const index_t cols = y.shape().last();
  const index_t rows = y.numel() / cols;
  const T* yp = y.data();
  const T* dyp = dy.data();
  T* dxp = dx.data();
  parallel_rows(rows, cols, [&](index_t r0, index_t r1) {
    for (index_t r = r0; r < r1; ++r) {
      const T* yr = yp + r * cols;
      const T* dyr = dyp + r * cols;
      T* dxr = dxp + r * cols;
      T dot{0};
      for (index_t j = 0; j < cols; ++j) dot += yr[j] * dyr[j];
      for (index_t j = 0; j < cols; ++j) dxr[j] = yr[j] * (dyr[j] - dot);
    }
  });
}

template <typename T>
void layernorm_forward(const TensorT<T>& x, const TensorT<T>& gamma, const TensorT<T>& beta,
                       T eps, TensorT<T>& y, TensorT<T>& xhat, TensorT<T>& inv_std) {
  const index_t h = x.shape().last();
  const index_t rows = x.numel() / h;
  OPT_CHECK(gamma.numel() == h && beta.numel() == h, "layernorm param size mismatch");
  OPT_CHECK(y.numel() == x.numel() && xhat.numel() == x.numel(), "layernorm buffer mismatch");
  OPT_CHECK(inv_std.numel() == rows, "inv_std must have one entry per row");
  const T* xp = x.data();
  const T* gp = gamma.data();
  const T* bp = beta.data();
  T* yp = y.data();
  T* hp = xhat.data();
  T* sp = inv_std.data();
  parallel_rows(rows, h, [&](index_t r0, index_t r1) {
    for (index_t r = r0; r < r1; ++r) {
      const T* in = xp + r * h;
      T sum{0}, sum_sq{0};
      for (index_t j = 0; j < h; ++j) {
        sum += in[j];
        sum_sq += in[j] * in[j];
      }
      const T mean = sum / static_cast<T>(h);
      const T var = sum_sq / static_cast<T>(h) - mean * mean;
      const T istd = T{1} / std::sqrt(var + eps);
      sp[r] = istd;
      T* hr = hp + r * h;
      T* yr = yp + r * h;
      for (index_t j = 0; j < h; ++j) {
        hr[j] = (in[j] - mean) * istd;
        yr[j] = gp[j] * hr[j] + bp[j];
      }
    }
  });
}

template <typename T>
void layernorm_backward(const TensorT<T>& xhat, const TensorT<T>& inv_std,
                        const TensorT<T>& gamma, const TensorT<T>& dy, TensorT<T>& dx,
                        TensorT<T>& dgamma, TensorT<T>& dbeta, bool accumulate_params) {
  const index_t h = xhat.shape().last();
  const index_t rows = xhat.numel() / h;
  OPT_CHECK(dy.numel() == xhat.numel() && dx.numel() == xhat.numel(), "layernorm grad mismatch");
  OPT_CHECK(dgamma.numel() == h && dbeta.numel() == h, "layernorm param grad mismatch");
  if (!accumulate_params) {
    dgamma.zero();
    dbeta.zero();
  }
  const T* hp = xhat.data();
  const T* sp = inv_std.data();
  const T* gp = gamma.data();
  const T* dyp = dy.data();
  T* dxp = dx.data();
  T* dgp = dgamma.data();
  T* dbp = dbeta.data();
  // Pass 1 — dx, row-parallel: dxhat = dy * gamma, two row statistics, then
  // the closed form from §3.2.2.
  parallel_rows(rows, h, [&](index_t r0, index_t r1) {
    for (index_t r = r0; r < r1; ++r) {
      const T* hr = hp + r * h;
      const T* dyr = dyp + r * h;
      T* dxr = dxp + r * h;
      T sum_dxhat{0}, sum_dxhat_xhat{0};
      for (index_t j = 0; j < h; ++j) {
        const T dxh = dyr[j] * gp[j];
        sum_dxhat += dxh;
        sum_dxhat_xhat += dxh * hr[j];
      }
      const T inv_h = T{1} / static_cast<T>(h);
      for (index_t j = 0; j < h; ++j) {
        const T dxh = dyr[j] * gp[j];
        dxr[j] = sp[r] * (dxh - inv_h * sum_dxhat - inv_h * sum_dxhat_xhat * hr[j]);
      }
    }
  });
  // Pass 2 — parameter grads, column-parallel with rows accumulated in order:
  // bitwise identical to the serial loop for any thread count.
  parallel_for(h, /*grain=*/64, [&](index_t j0, index_t j1) {
    for (index_t r = 0; r < rows; ++r) {
      const T* hr = hp + r * h;
      const T* dyr = dyp + r * h;
      for (index_t j = j0; j < j1; ++j) {
        dgp[j] += dyr[j] * hr[j];
        dbp[j] += dyr[j];
      }
    }
  });
}

template <typename T>
T cross_entropy_forward(const TensorT<T>& logits, const ITensor& labels, TensorT<T>& probs) {
  const index_t v = logits.shape().last();
  const index_t rows = logits.numel() / v;
  OPT_CHECK(labels.numel() == rows, "labels size " << labels.numel() << " != rows " << rows);
  OPT_CHECK(probs.numel() == logits.numel(), "probs buffer mismatch");
  softmax_lastdim(logits, probs);
  const T* pp = probs.data();
  const std::int32_t* lp = labels.data();
  T loss{0};
  index_t active = 0;
  for (index_t r = 0; r < rows; ++r) {
    const std::int32_t label = lp[r];
    if (label < 0) continue;  // masked
    OPT_DCHECK(label < v, "label " << label << " out of vocab " << v);
    const T q = std::max(pp[r * v + label], std::numeric_limits<T>::min());
    loss -= std::log(q);
    ++active;
  }
  return active == 0 ? T{0} : loss / static_cast<T>(active);
}

template <typename T>
void cross_entropy_backward(const TensorT<T>& probs, const ITensor& labels, T scale,
                            TensorT<T>& dlogits) {
  const index_t v = probs.shape().last();
  const index_t rows = probs.numel() / v;
  OPT_CHECK(dlogits.numel() == probs.numel(), "dlogits buffer mismatch");
  const T* pp = probs.data();
  const std::int32_t* lp = labels.data();
  T* dp = dlogits.data();
  parallel_rows(rows, v, [&](index_t r0, index_t r1) {
    for (index_t r = r0; r < r1; ++r) {
      const std::int32_t label = lp[r];
      T* drow = dp + r * v;
      if (label < 0) {
        std::fill(drow, drow + v, T{0});
        continue;
      }
      const T* prow = pp + r * v;
      for (index_t j = 0; j < v; ++j) drow[j] = scale * prow[j];
      drow[label] -= scale;
    }
  });
}

template <typename T>
void embedding_forward(const TensorT<T>& table, const ITensor& tokens, TensorT<T>& y) {
  OPT_CHECK(table.ndim() == 2, "embedding table must be 2-D");
  [[maybe_unused]] const index_t v = table.size(0);
  const index_t h = table.size(1);
  const index_t rows = tokens.numel();
  OPT_CHECK(y.numel() == rows * h, "embedding output mismatch");
  const std::int32_t* tp = tokens.data();
  parallel_rows(rows, h, [&](index_t r0, index_t r1) {
    for (index_t r = r0; r < r1; ++r) {
      const std::int32_t tok = tp[r];
      OPT_DCHECK(tok >= 0 && tok < v, "token " << tok << " out of vocab " << v);
      std::memcpy(y.data() + r * h, table.data() + static_cast<index_t>(tok) * h,
                  static_cast<std::size_t>(h) * sizeof(T));
    }
  });
}

template <typename T>
void embedding_backward(const ITensor& tokens, const TensorT<T>& dy, TensorT<T>& dtable) {
  OPT_CHECK(dtable.ndim() == 2, "embedding table grad must be 2-D");
  const index_t h = dtable.size(1);
  const index_t rows = tokens.numel();
  OPT_CHECK(dy.numel() == rows * h, "embedding grad mismatch");
  const std::int32_t* tp = tokens.data();
  const T* dp = dy.data();
  for (index_t r = 0; r < rows; ++r) {
    T* target = dtable.data() + static_cast<index_t>(tp[r]) * h;
    const T* src = dp + r * h;
    for (index_t j = 0; j < h; ++j) target[j] += src[j];
  }
}

template <typename T>
T sum_all(const TensorT<T>& x) {
  const T* p = x.data();
  T acc{0};
  const index_t n = x.numel();
  for (index_t i = 0; i < n; ++i) acc += p[i];
  return acc;
}

template <typename T>
T max_abs(const TensorT<T>& x) {
  const T* p = x.data();
  T acc{0};
  const index_t n = x.numel();
  for (index_t i = 0; i < n; ++i) acc = std::max(acc, std::abs(p[i]));
  return acc;
}

template <typename T>
T max_abs_diff(const TensorT<T>& a, const TensorT<T>& b) {
  OPT_CHECK(a.numel() == b.numel(), "max_abs_diff size mismatch");
  const T* ap = a.data();
  const T* bp = b.data();
  T acc{0};
  const index_t n = a.numel();
  for (index_t i = 0; i < n; ++i) acc = std::max(acc, std::abs(ap[i] - bp[i]));
  return acc;
}

template <typename T>
T l2_norm(const TensorT<T>& x) {
  const T* p = x.data();
  T acc{0};
  const index_t n = x.numel();
  for (index_t i = 0; i < n; ++i) acc += p[i] * p[i];
  return std::sqrt(acc);
}

template <typename T>
TensorT<T> transpose2d(const TensorT<T>& x) {
  OPT_CHECK(x.ndim() == 2, "transpose2d needs 2-D");
  TensorT<T> y(Shape{x.size(1), x.size(0)});
  for (index_t i = 0; i < x.size(0); ++i) {
    for (index_t j = 0; j < x.size(1); ++j) y.at(j, i) = x.at(i, j);
  }
  return y;
}

template <typename T>
void fill_counter_uniform(TensorT<T>& block, const util::CounterRng& rng, std::uint64_t stream,
                          T scale, index_t row0, index_t col0, index_t global_cols) {
  OPT_CHECK(block.ndim() == 2, "fill_counter_uniform needs a 2-D block");
  const index_t rows = block.size(0);
  const index_t cols = block.size(1);
  OPT_CHECK(col0 + cols <= global_cols, "block exceeds global matrix width");
  // Counter-based RNG is a pure function of the global index, so rows can be
  // filled in parallel without changing a single value.
  parallel_rows(rows, cols, [&](index_t rb, index_t re) {
    for (index_t r = rb; r < re; ++r) {
      for (index_t c = 0; c < cols; ++c) {
        const std::uint64_t idx =
            static_cast<std::uint64_t>(row0 + r) * global_cols + (col0 + c);
        block.at(r, c) = static_cast<T>(rng.symmetric_at(stream, idx, scale));
      }
    }
  });
}

template <typename T, typename U>
TensorT<U> cast(const TensorT<T>& src) {
  TensorT<U> dst(src.shape());
  const T* sp = src.data();
  U* dp = dst.data();
  parallel_for(src.numel(), kElemGrain, [&](index_t i0, index_t i1) {
    for (index_t i = i0; i < i1; ++i) dp[i] = static_cast<U>(sp[i]);
  });
  return dst;
}

// ---------------------------------------------------------------------------
// Explicit instantiations
// ---------------------------------------------------------------------------

#define OPTIMUS_INSTANTIATE_OPS(T)                                                             \
  template void gemm_raw<T>(T*, const T*, const T*, index_t, index_t, index_t, index_t,       \
                            index_t, index_t, Trans, Trans, T, T);                             \
  template void gemm_naive_raw<T>(T*, const T*, const T*, index_t, index_t, index_t,          \
                                  index_t, index_t, index_t, Trans, Trans, T, T);              \
  template void gemm<T>(TensorT<T>&, const TensorT<T>&, const TensorT<T>&, Trans, Trans, T,   \
                        T);                                                                    \
  template TensorT<T> matmul<T>(const TensorT<T>&, const TensorT<T>&, Trans, Trans);          \
  template TensorT<T> as_matrix<T>(const TensorT<T>&);                                        \
  template void add_<T>(TensorT<T>&, const TensorT<T>&);                                      \
  template void sub_<T>(TensorT<T>&, const TensorT<T>&);                                      \
  template void axpy_<T>(TensorT<T>&, T, const TensorT<T>&);                                  \
  template void scale_<T>(TensorT<T>&, T);                                                    \
  template TensorT<T> add<T>(const TensorT<T>&, const TensorT<T>&);                           \
  template void add_bias_<T>(TensorT<T>&, const TensorT<T>&);                                 \
  template void bias_grad<T>(const TensorT<T>&, TensorT<T>&, bool);                           \
  template void bias_residual_<T>(TensorT<T>&, const TensorT<T>&, const TensorT<T>&);         \
  template void bias_gelu_<T>(TensorT<T>&, const TensorT<T>&, TensorT<T>&);                   \
  template void gemm_bias<T>(TensorT<T>&, const TensorT<T>&, const TensorT<T>&,               \
                             const TensorT<T>&, Trans, Trans);                                \
  template void gemm_bias_gelu<T>(TensorT<T>&, TensorT<T>&, const TensorT<T>&,                \
                                  const TensorT<T>&, const TensorT<T>&, Trans, Trans);        \
  template void gemm_bias_residual<T>(TensorT<T>&, const TensorT<T>&, const TensorT<T>&,      \
                                      const TensorT<T>&, const TensorT<T>&, Trans, Trans);    \
  template void gelu_forward<T>(const TensorT<T>&, TensorT<T>&);                              \
  template void gelu_backward<T>(const TensorT<T>&, const TensorT<T>&, TensorT<T>&, bool);    \
  template void softmax_lastdim<T>(const TensorT<T>&, TensorT<T>&);                           \
  template void softmax_backward_lastdim<T>(const TensorT<T>&, const TensorT<T>&,             \
                                            TensorT<T>&);                                     \
  template void layernorm_forward<T>(const TensorT<T>&, const TensorT<T>&, const TensorT<T>&, \
                                     T, TensorT<T>&, TensorT<T>&, TensorT<T>&);               \
  template void layernorm_backward<T>(const TensorT<T>&, const TensorT<T>&, const TensorT<T>&,\
                                      const TensorT<T>&, TensorT<T>&, TensorT<T>&,            \
                                      TensorT<T>&, bool);                                     \
  template T cross_entropy_forward<T>(const TensorT<T>&, const ITensor&, TensorT<T>&);        \
  template void cross_entropy_backward<T>(const TensorT<T>&, const ITensor&, T, TensorT<T>&); \
  template void embedding_forward<T>(const TensorT<T>&, const ITensor&, TensorT<T>&);         \
  template void embedding_backward<T>(const ITensor&, const TensorT<T>&, TensorT<T>&);        \
  template T sum_all<T>(const TensorT<T>&);                                                   \
  template T max_abs<T>(const TensorT<T>&);                                                   \
  template T max_abs_diff<T>(const TensorT<T>&, const TensorT<T>&);                           \
  template T l2_norm<T>(const TensorT<T>&);                                                   \
  template TensorT<T> transpose2d<T>(const TensorT<T>&);                                      \
  template void fill_counter_uniform<T>(TensorT<T>&, const util::CounterRng&, std::uint64_t,  \
                                        T, index_t, index_t, index_t);

OPTIMUS_INSTANTIATE_OPS(float)
OPTIMUS_INSTANTIATE_OPS(double)

template TensorT<double> cast<float, double>(const TensorT<float>&);
template TensorT<float> cast<double, float>(const TensorT<double>&);

#undef OPTIMUS_INSTANTIATE_OPS

}  // namespace optimus::tensor::ops
