#include "mesh/mesh.hpp"

namespace optimus::mesh {

int Mesh2D::mesh_side(int p) {
  OPT_CHECK(p >= 1, "mesh needs at least one device");
  int q = 1;
  while (q * q < p) ++q;
  OPT_CHECK(q * q == p, "world size " << p << " is not a perfect square");
  return q;
}

int Mesh2D::mesh_side(int p, int depth) {
  OPT_CHECK(depth >= 1, "mesh depth " << depth << " must be positive");
  OPT_CHECK(p % depth == 0,
            "world size " << p << " is not divisible by mesh depth " << depth);
  return mesh_side(p / depth);
}

Mesh2D::Mesh2D(comm::Communicator& world, int depth)
    : world_(&world),
      depth_(depth),
      q_(mesh_side(world.size(), depth)),
      depth_idx_(world.rank() / (q_ * q_)),
      row_((world.rank() % (q_ * q_)) / q_),
      col_(world.rank() % q_),
      // Colors are unique per (depth, row) / (depth, col); at depth == 1 they
      // collapse to the original row_/col_ colors, so a d = 1 mesh issues the
      // exact split sequence of the 2D mesh and gets bitwise-identical group
      // tables.
      row_comm_(world.split(/*color=*/depth_idx_ * q_ + row_, /*key=*/col_)),
      col_comm_(world.split(/*color=*/depth_idx_ * q_ + col_, /*key=*/row_)) {
  OPT_CHECK(row_comm_.size() == q_ && col_comm_.size() == q_, "mesh split inconsistent");
  OPT_CHECK(row_comm_.rank() == col_ && col_comm_.rank() == row_, "mesh rank mapping broken");
  row_comm_.set_label("mesh_row");
  col_comm_.set_label("mesh_col");
  if (depth_ > 1) {
    depth_comm_.emplace(world.split(/*color=*/row_ * q_ + col_, /*key=*/depth_idx_));
    OPT_CHECK(depth_comm_->size() == depth_, "mesh depth split inconsistent");
    OPT_CHECK(depth_comm_->rank() == depth_idx_, "mesh depth rank mapping broken");
    depth_comm_->set_label("mesh_depth");
  }
}

}  // namespace optimus::mesh
