#include "mesh/mesh.hpp"

namespace optimus::mesh {

int Mesh2D::mesh_side(int p) {
  OPT_CHECK(p >= 1, "mesh needs at least one device");
  int q = 1;
  while (q * q < p) ++q;
  OPT_CHECK(q * q == p, "world size " << p << " is not a perfect square");
  return q;
}

Mesh2D::Mesh2D(comm::Communicator& world)
    : world_(&world),
      q_(mesh_side(world.size())),
      row_(world.rank() / q_),
      col_(world.rank() % q_),
      row_comm_(world.split(/*color=*/row_, /*key=*/col_)),
      col_comm_(world.split(/*color=*/col_, /*key=*/row_)) {
  OPT_CHECK(row_comm_.size() == q_ && col_comm_.size() == q_, "mesh split inconsistent");
  OPT_CHECK(row_comm_.rank() == col_ && col_comm_.rank() == row_, "mesh rank mapping broken");
  row_comm_.set_label("mesh_row");
  col_comm_.set_label("mesh_col");
}

}  // namespace optimus::mesh
