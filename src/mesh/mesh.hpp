#pragma once

// 2D / 2.5D device mesh for SUMMA-style algorithms.
//
// A world of p = q×q×d ranks is arranged depth-major, row-major within a
// depth layer: rank = depth·q² + row·q + col (d = 1 recovers the original 2D
// layout exactly). The mesh owns one communicator per direction:
//
//   * row_comm   — the q devices sharing this device's mesh row (varying col)
//                  within its depth layer; used for broadcasts of A blocks and
//                  the row reductions / all-reduces of layernorm, softmax and
//                  cross-entropy.
//   * col_comm   — the q devices sharing this device's mesh column within its
//                  depth layer; used for broadcasts of B blocks and the Fig.-5
//                  parameter broadcasts from row 0.
//   * depth_comm — the d devices sharing this device's (row, col) coordinate
//                  across depth layers (Tesseract, arXiv:2105.14500); used for
//                  the 2.5D depth reduction + replica broadcast of C. Only
//                  constructed when d > 1, so a d = 1 mesh performs exactly
//                  the same split sequence as the original 2D mesh (the group
//                  tables are bitwise identical).
//
// How mesh coordinates map onto physical nodes is the Topology's concern
// (Fig. 8 naive vs bunched); the mesh is purely logical.

#include <optional>

#include "comm/cluster.hpp"
#include "comm/communicator.hpp"

namespace optimus::mesh {

class Mesh2D {
 public:
  /// Splits `world` (size must be depth·q² for a perfect square q²) into
  /// row/column (and, for depth > 1, depth) communicators. Collective: all
  /// ranks must construct the mesh together.
  explicit Mesh2D(comm::Communicator& world, int depth = 1);

  int q() const { return q_; }
  /// Devices per depth layer (the SUMMA mesh area, q²) — not the world size,
  /// which is p()·depth().
  int p() const { return q_ * q_; }
  int depth() const { return depth_; }
  int row() const { return row_; }
  int col() const { return col_; }
  /// This device's depth-layer index in [0, depth()).
  int depth_idx() const { return depth_idx_; }

  comm::Communicator& world() { return *world_; }
  comm::Communicator& row_comm() { return row_comm_; }
  comm::Communicator& col_comm() { return col_comm_; }
  /// The depth group over this (row, col) coordinate; only exists at d > 1.
  comm::Communicator& depth_comm() {
    OPT_CHECK(depth_comm_.has_value(), "depth_comm requires a mesh with depth > 1");
    return *depth_comm_;
  }

  /// Rank (in world order) of mesh coordinate (r, c) in this device's depth
  /// layer.
  int rank_of(int r, int c) const { return depth_idx_ * q_ * q_ + r * q_ + c; }
  /// Rank (in world order) of mesh coordinate (r, c) in depth layer z.
  int rank_of(int r, int c, int z) const { return z * q_ * q_ + r * q_ + c; }

  /// Returns the exact integer square root of p; throws if p is not square.
  static int mesh_side(int p);
  /// Returns q for a world of `p` ranks at the given depth; throws unless
  /// p = depth·q² exactly.
  static int mesh_side(int p, int depth);

 private:
  comm::Communicator* world_;
  int depth_;
  int q_;
  int depth_idx_;
  int row_;
  int col_;
  comm::Communicator row_comm_;
  comm::Communicator col_comm_;
  std::optional<comm::Communicator> depth_comm_;
};

}  // namespace optimus::mesh
