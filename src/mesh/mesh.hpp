#pragma once

// 2D device mesh for SUMMA-style algorithms.
//
// A world of p = q×q ranks is arranged row-major: rank = row·q + col. The
// mesh owns one communicator per direction:
//
//   * row_comm — the q devices sharing this device's mesh row (varying col);
//                used for broadcasts of A blocks and the row reductions /
//                all-reduces of layernorm, softmax and cross-entropy.
//   * col_comm — the q devices sharing this device's mesh column; used for
//                broadcasts of B blocks and the Fig.-5 parameter broadcasts
//                from row 0.
//
// How mesh coordinates map onto physical nodes is the Topology's concern
// (Fig. 8 naive vs bunched); the mesh is purely logical.

#include "comm/cluster.hpp"
#include "comm/communicator.hpp"

namespace optimus::mesh {

class Mesh2D {
 public:
  /// Splits `world` (size must be a perfect square) into row/column
  /// communicators. Collective: all ranks must construct the mesh together.
  explicit Mesh2D(comm::Communicator& world);

  int q() const { return q_; }
  int p() const { return q_ * q_; }
  int row() const { return row_; }
  int col() const { return col_; }

  comm::Communicator& world() { return *world_; }
  comm::Communicator& row_comm() { return row_comm_; }
  comm::Communicator& col_comm() { return col_comm_; }

  /// Rank (in world order) of mesh coordinate (r, c).
  int rank_of(int r, int c) const { return r * q_ + c; }

  /// Returns the exact integer square root of p; throws if p is not square.
  static int mesh_side(int p);

 private:
  comm::Communicator* world_;
  int q_;
  int row_;
  int col_;
  comm::Communicator row_comm_;
  comm::Communicator col_comm_;
};

}  // namespace optimus::mesh
