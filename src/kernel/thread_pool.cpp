#include "kernel/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace optimus::kernel {

namespace {

constexpr int kMaxWorkers = 256;

std::atomic<int> g_override{0};        // 0 = no programmatic override
std::atomic<int> g_active_devices{0};  // simulated devices currently running
thread_local bool tl_on_worker = false;

// Global pool counters (see PoolStats). Relaxed: these are observability
// counters, not synchronisation.
struct StatCells {
  std::atomic<std::uint64_t> regions{0};
  std::atomic<std::uint64_t> inline_regions{0};
  std::atomic<std::uint64_t> chunks{0};
  std::atomic<std::uint64_t> worker_chunks{0};
  std::atomic<std::uint64_t> submit_wait_ns{0};
  std::atomic<std::uint64_t> workers_spawned{0};
};
StatCells g_stats;

std::uint64_t steady_ns() {
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                        std::chrono::steady_clock::now().time_since_epoch())
                                        .count());
}

int env_threads() {
  static const int value = [] {
    const char* s = std::getenv("OPTIMUS_KERNEL_THREADS");
    if (s == nullptr || *s == '\0') return 0;
    const long v = std::strtol(s, nullptr, 10);
    if (v <= 0) return 0;
    return static_cast<int>(std::min<long>(v, kMaxWorkers));
  }();
  return value;
}

}  // namespace

int hardware_threads() {
  static const int value =
      std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
  return value;
}

void set_threads(int n) {
  g_override.store(std::clamp(n, 0, kMaxWorkers), std::memory_order_relaxed);
}

int configured_threads() {
  const int o = g_override.load(std::memory_order_relaxed);
  if (o > 0) return o;
  const int e = env_threads();
  return e > 0 ? e : hardware_threads();
}

int active_devices() { return g_active_devices.load(std::memory_order_relaxed); }

PoolStats pool_stats() {
  PoolStats s;
  s.regions = g_stats.regions.load(std::memory_order_relaxed);
  s.inline_regions = g_stats.inline_regions.load(std::memory_order_relaxed);
  s.chunks = g_stats.chunks.load(std::memory_order_relaxed);
  s.worker_chunks = g_stats.worker_chunks.load(std::memory_order_relaxed);
  s.submit_wait_ns = g_stats.submit_wait_ns.load(std::memory_order_relaxed);
  s.workers_spawned = g_stats.workers_spawned.load(std::memory_order_relaxed);
  return s;
}

void reset_pool_stats() {
  g_stats.regions.store(0, std::memory_order_relaxed);
  g_stats.inline_regions.store(0, std::memory_order_relaxed);
  g_stats.chunks.store(0, std::memory_order_relaxed);
  g_stats.worker_chunks.store(0, std::memory_order_relaxed);
  g_stats.submit_wait_ns.store(0, std::memory_order_relaxed);
  g_stats.workers_spawned.store(0, std::memory_order_relaxed);
}

int effective_threads() {
  return std::max(1, configured_threads() / std::max(1, active_devices()));
}

ActiveDevicesGuard::ActiveDevicesGuard(int n) : n_(std::max(0, n)) {
  g_active_devices.fetch_add(n_, std::memory_order_relaxed);
}

ActiveDevicesGuard::~ActiveDevicesGuard() {
  g_active_devices.fetch_sub(n_, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// ThreadPool
// ---------------------------------------------------------------------------

struct ThreadPool::Impl {
  // One parallel region. Chunks are claimed from `next` by workers and the
  // submitting thread alike; completion is tracked under `m`.
  struct Call {
    std::function<void(index_t, index_t)> body;
    index_t n = 0;
    index_t num_chunks = 0;
    index_t grain = 0;       // fixed-grain mode when > 0
    index_t base = 0;        // near-equal split mode otherwise
    index_t rem = 0;
    std::atomic<index_t> next{0};
    index_t done = 0;        // guarded by m
    std::exception_ptr error;  // first failure, guarded by m
    std::mutex m;
    std::condition_variable cv;

    void range_of(index_t c, index_t* begin, index_t* end) const {
      if (grain > 0) {
        *begin = c * grain;
        *end = std::min(n, *begin + grain);
      } else {
        *begin = c * base + std::min(c, rem);
        *end = *begin + base + (c < rem ? 1 : 0);
      }
    }
  };

  std::mutex queue_mutex;
  std::condition_variable queue_cv;
  std::deque<std::shared_ptr<Call>> queue;
  std::vector<std::thread> workers;
  bool stop = false;

  static void execute_chunk(Call& call, index_t c) {
    index_t begin = 0, end = 0;
    call.range_of(c, &begin, &end);
    try {
      call.body(begin, end);
    } catch (...) {
      std::lock_guard<std::mutex> lock(call.m);
      if (!call.error) call.error = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(call.m);
      if (++call.done == call.num_chunks) call.cv.notify_all();
    }
  }

  void worker_loop() {
    tl_on_worker = true;
    std::unique_lock<std::mutex> lock(queue_mutex);
    for (;;) {
      queue_cv.wait(lock, [&] { return stop || !queue.empty(); });
      if (stop) return;
      std::shared_ptr<Call> call = queue.front();
      if (call->next.load(std::memory_order_relaxed) >= call->num_chunks) {
        // Exhausted: retire it (the submitter may already have erased it).
        if (!queue.empty() && queue.front() == call) queue.pop_front();
        continue;
      }
      lock.unlock();
      for (;;) {
        const index_t c = call->next.fetch_add(1, std::memory_order_relaxed);
        if (c >= call->num_chunks) break;
        g_stats.chunks.fetch_add(1, std::memory_order_relaxed);
        g_stats.worker_chunks.fetch_add(1, std::memory_order_relaxed);
        execute_chunk(*call, c);
      }
      lock.lock();
    }
  }
};

ThreadPool& ThreadPool::global() {
  // Leaked on purpose: joining workers during static destruction is a classic
  // shutdown hazard, and the pool must outlive every user.
  static ThreadPool* pool = new ThreadPool();
  return *pool;
}

bool ThreadPool::on_worker_thread() { return tl_on_worker; }

ThreadPool::~ThreadPool() {
  if (impl_ == nullptr) return;
  {
    std::lock_guard<std::mutex> lock(impl_->queue_mutex);
    impl_->stop = true;
  }
  impl_->queue_cv.notify_all();
  for (auto& t : impl_->workers) t.join();
  delete impl_;
}

void ThreadPool::ensure_workers(int count) {
  if (impl_ == nullptr) impl_ = new Impl();
  count = std::min(count, kMaxWorkers);
  std::lock_guard<std::mutex> lock(impl_->queue_mutex);
  while (static_cast<int>(impl_->workers.size()) < count) {
    impl_->workers.emplace_back([this] { impl_->worker_loop(); });
    g_stats.workers_spawned.fetch_add(1, std::memory_order_relaxed);
  }
}

void ThreadPool::run_call(const std::function<void(index_t, index_t)>& body,
                          index_t num_chunks, index_t grain, index_t n, int max_threads) {
  auto call = std::make_shared<Impl::Call>();
  call->body = body;
  call->n = n;
  call->num_chunks = num_chunks;
  call->grain = grain;
  if (grain <= 0) {
    call->base = n / num_chunks;
    call->rem = n % num_chunks;
  }

  ensure_workers(max_threads - 1);
  {
    std::lock_guard<std::mutex> lock(impl_->queue_mutex);
    impl_->queue.push_back(call);
  }
  impl_->queue_cv.notify_all();

  g_stats.regions.fetch_add(1, std::memory_order_relaxed);
  // The submitting thread works too.
  for (;;) {
    const index_t c = call->next.fetch_add(1, std::memory_order_relaxed);
    if (c >= num_chunks) break;
    g_stats.chunks.fetch_add(1, std::memory_order_relaxed);
    Impl::execute_chunk(*call, c);
  }
  {
    const std::uint64_t t0 = steady_ns();
    std::unique_lock<std::mutex> lock(call->m);
    call->cv.wait(lock, [&] { return call->done == num_chunks; });
    g_stats.submit_wait_ns.fetch_add(steady_ns() - t0, std::memory_order_relaxed);
  }
  {
    std::lock_guard<std::mutex> lock(impl_->queue_mutex);
    auto it = std::find(impl_->queue.begin(), impl_->queue.end(), call);
    if (it != impl_->queue.end()) impl_->queue.erase(it);
  }
  if (call->error) std::rethrow_exception(call->error);
}

void ThreadPool::parallel_for(index_t n, index_t grain,
                              const std::function<void(index_t, index_t)>& body) {
  if (n <= 0) return;
  grain = std::max<index_t>(1, grain);
  const index_t chunks = (n + grain - 1) / grain;
  const int threads =
      static_cast<int>(std::min<index_t>(effective_threads(), chunks));
  if (threads <= 1 || tl_on_worker) {
    g_stats.inline_regions.fetch_add(1, std::memory_order_relaxed);
    body(0, n);
    return;
  }
  run_call(body, chunks, grain, n, threads);
}

void ThreadPool::parallel_ranges(index_t n, int parts,
                                 const std::function<void(index_t, index_t)>& body) {
  if (n <= 0) return;
  const int threads = static_cast<int>(
      std::min<index_t>(std::min(parts, effective_threads()), n));
  if (threads <= 1 || tl_on_worker) {
    g_stats.inline_regions.fetch_add(1, std::memory_order_relaxed);
    body(0, n);
    return;
  }
  run_call(body, threads, /*grain=*/0, n, threads);
}

}  // namespace optimus::kernel
