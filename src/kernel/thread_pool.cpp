#include "kernel/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace optimus::kernel {

namespace {

constexpr int kMaxWorkers = 256;

std::atomic<int> g_override{0};        // 0 = no programmatic override
std::atomic<int> g_active_devices{0};  // simulated devices currently running
thread_local bool tl_on_worker = false;
thread_local bool tl_in_region = false;  // tid 0 of an active region

// Global pool counters (see PoolStats). Relaxed: these are observability
// counters, not synchronisation.
struct StatCells {
  std::atomic<std::uint64_t> regions{0};
  std::atomic<std::uint64_t> inline_regions{0};
  std::atomic<std::uint64_t> chunks{0};
  std::atomic<std::uint64_t> worker_chunks{0};
  std::atomic<std::uint64_t> submit_wait_ns{0};
  std::atomic<std::uint64_t> workers_spawned{0};
  std::atomic<std::uint64_t> barrier_crossings{0};
  std::atomic<std::uint64_t> parks{0};
};
StatCells g_stats;

std::uint64_t steady_ns() {
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                        std::chrono::steady_clock::now().time_since_epoch())
                                        .count());
}

int env_threads() {
  static const int value = [] {
    const char* s = std::getenv("OPTIMUS_KERNEL_THREADS");
    if (s == nullptr || *s == '\0') return 0;
    const long v = std::strtol(s, nullptr, 10);
    if (v <= 0) return 0;
    return static_cast<int>(std::min<long>(v, kMaxWorkers));
  }();
  return value;
}

inline void cpu_pause() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

// Spin budget before parking. On a single-core host spinning can never help —
// the thread we are waiting for needs our core to make progress — so we park
// immediately; with real parallelism a short spin absorbs the sub-microsecond
// gaps between back-to-back regions/barriers without a futex round-trip.
int spin_iters() {
  static const int value = hardware_threads() > 1 ? (1 << 14) : 0;
  return value;
}

}  // namespace

int hardware_threads() {
  static const int value =
      std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
  return value;
}

void set_threads(int n) {
  g_override.store(std::clamp(n, 0, kMaxWorkers), std::memory_order_relaxed);
}

int configured_threads() {
  const int o = g_override.load(std::memory_order_relaxed);
  if (o > 0) return o;
  const int e = env_threads();
  return e > 0 ? e : hardware_threads();
}

int active_devices() { return g_active_devices.load(std::memory_order_relaxed); }

PoolStats pool_stats() {
  PoolStats s;
  s.regions = g_stats.regions.load(std::memory_order_relaxed);
  s.inline_regions = g_stats.inline_regions.load(std::memory_order_relaxed);
  s.chunks = g_stats.chunks.load(std::memory_order_relaxed);
  s.worker_chunks = g_stats.worker_chunks.load(std::memory_order_relaxed);
  s.submit_wait_ns = g_stats.submit_wait_ns.load(std::memory_order_relaxed);
  s.workers_spawned = g_stats.workers_spawned.load(std::memory_order_relaxed);
  s.barrier_crossings = g_stats.barrier_crossings.load(std::memory_order_relaxed);
  s.parks = g_stats.parks.load(std::memory_order_relaxed);
  return s;
}

void reset_pool_stats() {
  g_stats.regions.store(0, std::memory_order_relaxed);
  g_stats.inline_regions.store(0, std::memory_order_relaxed);
  g_stats.chunks.store(0, std::memory_order_relaxed);
  g_stats.worker_chunks.store(0, std::memory_order_relaxed);
  g_stats.submit_wait_ns.store(0, std::memory_order_relaxed);
  g_stats.workers_spawned.store(0, std::memory_order_relaxed);
  g_stats.barrier_crossings.store(0, std::memory_order_relaxed);
  g_stats.parks.store(0, std::memory_order_relaxed);
}

int effective_threads() {
  return std::max(1, configured_threads() / std::max(1, active_devices()));
}

ActiveDevicesGuard::ActiveDevicesGuard(int n) : n_(std::max(0, n)) {
  g_active_devices.fetch_add(n_, std::memory_order_relaxed);
}

ActiveDevicesGuard::~ActiveDevicesGuard() {
  g_active_devices.fetch_sub(n_, std::memory_order_relaxed);
}

struct RegionAccess {
  static Region make(int tid, int nthreads, void* team) { return Region(tid, nthreads, team); }
};

// ---------------------------------------------------------------------------
// ThreadPool — persistent parallel regions
// ---------------------------------------------------------------------------
//
// One region runs at a time (region_mutex). Launch protocol:
//
//   owner: write {fn, bar_expected, counters} -> store region_word =
//          pack(nthreads, gen+1) (seq_cst) -> lock+unlock park_m -> notify
//   worker i: wait region_word != seen (spin, then park on park_cv) ->
//             participate iff i+1 < unpack_nthreads(word) ->
//             run fn(Region{i+1}) -> done_count.fetch_add(release) ->
//             lock+unlock done_m -> notify
//   owner: run fn(Region{0}) -> wait done_count == nthreads-1 (spin/park on
//          done_cv) -> read error -> unlock region_mutex
//
// nthreads rides *inside* the generation word (top 16 bits) rather than in a
// plain field: the owner only waits for participants, so a straggling
// NON-participant (i+1 >= nthreads) may still be inspecting the region slot
// when the next region is being set up, and a separate nthreads field would
// race — worst case it misreads the new team size, runs a region it doesn't
// belong to, and double-acks done_count. One atomic word makes the
// (generation, team size) pair indivisible; the other region fields (fn,
// bar_expected, done/bar counters) are touched only by participants, whose
// reads the owner *does* synchronize with via the done_count handshake.
//
// The region_word store publishes the region fields (happens-before via the
// acquire load in the worker); done_count release/acquire publishes worker
// writes back to the owner. Parked threads get the same guarantees through
// the mutexes. The empty lock/unlock before each notify closes the classic
// missed-wakeup window: a thread blocks only while holding the mutex having
// observed a stale generation, and the notifier takes that mutex *after*
// writing the new generation, so either the sleeper re-checks and sees it or
// the notify reaches it in the wait queue.

// (generation, nthreads) packing for the region word. 48 bits of generation
// wrap after 2^48 regions; nthreads is capped at kMaxWorkers+1 << 2^16.
constexpr std::uint64_t kGenMask = (std::uint64_t{1} << 48) - 1;
inline std::uint64_t pack_region_word(int nthreads, std::uint64_t gen) {
  return (static_cast<std::uint64_t>(nthreads) << 48) | (gen & kGenMask);
}
inline int unpack_nthreads(std::uint64_t word) { return static_cast<int>(word >> 48); }

struct ThreadPool::Impl {
  // Region slot (one active region at a time). region_word packs
  // (nthreads << 48) | generation — see the launch-protocol comment above.
  std::mutex region_mutex;
  std::atomic<std::uint64_t> region_word{0};
  const std::function<void(Region&)>* fn = nullptr;  // valid while a region runs

  // Worker wake/park.
  std::mutex park_m;
  std::condition_variable park_cv;
  std::atomic<bool> stop{false};

  // Region completion (workers -> owner).
  std::atomic<int> done_count{0};
  std::mutex done_m;
  std::condition_variable done_cv;

  // Reusable arrival barrier for the active region.
  int bar_expected = 0;
  std::atomic<index_t> bar_count{0};
  std::atomic<std::uint64_t> bar_gen{0};
  std::mutex bar_m;
  std::condition_variable bar_cv;

  // First exception thrown by any region thread.
  std::mutex err_m;
  std::exception_ptr error;

  std::vector<std::thread> workers;  // guarded by region_mutex

  void record_error() {
    std::lock_guard<std::mutex> lock(err_m);
    if (!error) error = std::current_exception();
  }

  void barrier_wait() {
    const int expected = bar_expected;
    if (expected <= 1) return;
    g_stats.barrier_crossings.fetch_add(1, std::memory_order_relaxed);
    const std::uint64_t gen = bar_gen.load(std::memory_order_acquire);
    if (bar_count.fetch_add(1, std::memory_order_acq_rel) + 1 == expected) {
      // Last arrival: reset the count for the next crossing, then release the
      // generation. The reset is published by the release store below.
      bar_count.store(0, std::memory_order_relaxed);
      bar_gen.store(gen + 1, std::memory_order_release);
      { std::lock_guard<std::mutex> lock(bar_m); }
      bar_cv.notify_all();
      return;
    }
    for (int i = 0; i < spin_iters(); ++i) {
      if (bar_gen.load(std::memory_order_acquire) != gen) return;
      cpu_pause();
    }
    g_stats.parks.fetch_add(1, std::memory_order_relaxed);
    std::unique_lock<std::mutex> lock(bar_m);
    bar_cv.wait(lock, [&] { return bar_gen.load(std::memory_order_acquire) != gen; });
  }

  void worker_loop(int widx, std::uint64_t seen) {
    tl_on_worker = true;
    for (;;) {
      std::uint64_t g = region_word.load(std::memory_order_acquire);
      for (int i = 0; i < spin_iters() && g == seen; ++i) {
        cpu_pause();
        g = region_word.load(std::memory_order_acquire);
      }
      if (g == seen) {
        g_stats.parks.fetch_add(1, std::memory_order_relaxed);
        std::unique_lock<std::mutex> lock(park_m);
        park_cv.wait(lock, [&] {
          return region_word.load(std::memory_order_acquire) != seen ||
                 stop.load(std::memory_order_acquire);
        });
        g = region_word.load(std::memory_order_acquire);
      }
      if (stop.load(std::memory_order_acquire)) return;
      if (g == seen) continue;
      seen = g;
      const int nthreads = unpack_nthreads(g);
      if (widx + 1 < nthreads) {
        Region r = RegionAccess::make(widx + 1, nthreads, this);
        try {
          (*fn)(r);
        } catch (...) {
          record_error();
        }
        done_count.fetch_add(1, std::memory_order_release);
        { std::lock_guard<std::mutex> lock(done_m); }
        done_cv.notify_all();
      }
    }
  }
};

void Region::barrier() {
  if (nthreads_ <= 1 || team_ == nullptr) return;
  static_cast<ThreadPool::Impl*>(team_)->barrier_wait();
}

ThreadPool& ThreadPool::global() {
  // Leaked on purpose: joining workers during static destruction is a classic
  // shutdown hazard, and the pool must outlive every user.
  static ThreadPool* pool = [] {
    auto* p = new ThreadPool();
    p->impl_ = new Impl();
    return p;
  }();
  return *pool;
}

bool ThreadPool::on_worker_thread() { return tl_on_worker; }

ThreadPool::~ThreadPool() {
  if (impl_ == nullptr) return;
  impl_->stop.store(true, std::memory_order_release);
  { std::lock_guard<std::mutex> lock(impl_->park_m); }
  impl_->park_cv.notify_all();
  for (auto& t : impl_->workers) t.join();
  delete impl_;
}

// Requires impl_->region_mutex held (only the region owner spawns, so the
// worker vector and the generation it snapshots are stable).
void ThreadPool::ensure_workers(int count) {
  Impl& im = *impl_;
  count = std::min(count, kMaxWorkers);
  const std::uint64_t seen = im.region_word.load(std::memory_order_relaxed);
  while (static_cast<int>(im.workers.size()) < count) {
    const int widx = static_cast<int>(im.workers.size());
    im.workers.emplace_back([this, widx, seen] { impl_->worker_loop(widx, seen); });
    g_stats.workers_spawned.fetch_add(1, std::memory_order_relaxed);
  }
}

int ThreadPool::parallel_region(int nthreads, const std::function<void(Region&)>& fn) {
  nthreads = std::min(nthreads, kMaxWorkers + 1);
  const bool degrade = nthreads <= 1 || tl_on_worker || tl_in_region;
  if (degrade || !impl_->region_mutex.try_lock()) {
    // Serial degradation: nested call, or another device thread owns the
    // region slot right now. SPMD bodies see nthreads()==1 and a no-op
    // barrier, so they reduce to their serial schedule.
    g_stats.inline_regions.fetch_add(1, std::memory_order_relaxed);
    Region r = Region::serial();
    fn(r);
    return 1;
  }

  Impl& im = *impl_;
  ensure_workers(nthreads - 1);
  {
    std::lock_guard<std::mutex> lock(im.err_m);
    im.error = nullptr;
  }
  im.fn = &fn;
  im.bar_expected = nthreads;
  im.bar_count.store(0, std::memory_order_relaxed);
  im.done_count.store(0, std::memory_order_relaxed);
  const std::uint64_t cur = im.region_word.load(std::memory_order_relaxed);
  im.region_word.store(pack_region_word(nthreads, (cur & kGenMask) + 1),
                       std::memory_order_seq_cst);
  { std::lock_guard<std::mutex> lock(im.park_m); }
  im.park_cv.notify_all();
  g_stats.regions.fetch_add(1, std::memory_order_relaxed);

  tl_in_region = true;
  {
    Region r(0, nthreads, &im);
    try {
      fn(r);
    } catch (...) {
      im.record_error();
    }
  }
  tl_in_region = false;

  const int expect = nthreads - 1;
  const std::uint64_t t0 = steady_ns();
  if (im.done_count.load(std::memory_order_acquire) != expect) {
    for (int i = 0; i < spin_iters(); ++i) {
      if (im.done_count.load(std::memory_order_acquire) == expect) break;
      cpu_pause();
    }
    if (im.done_count.load(std::memory_order_acquire) != expect) {
      g_stats.parks.fetch_add(1, std::memory_order_relaxed);
      std::unique_lock<std::mutex> lock(im.done_m);
      im.done_cv.wait(lock, [&] {
        return im.done_count.load(std::memory_order_acquire) == expect;
      });
    }
  }
  g_stats.submit_wait_ns.fetch_add(steady_ns() - t0, std::memory_order_relaxed);

  std::exception_ptr err;
  {
    std::lock_guard<std::mutex> lock(im.err_m);
    err = im.error;
    im.error = nullptr;
  }
  im.fn = nullptr;
  im.region_mutex.unlock();
  if (err) std::rethrow_exception(err);
  return nthreads;
}

namespace {

// Claim loop shared by parallel_for / parallel_ranges: chunk c covers
// [begin(c), end(c)); every chunk is executed exactly once, the first body
// exception is recorded and rethrown by the wrapper after the region ends.
struct ClaimState {
  std::atomic<index_t> next{0};
  std::mutex err_m;
  std::exception_ptr error;
};

}  // namespace

void ThreadPool::parallel_for(index_t n, index_t grain,
                              const std::function<void(index_t, index_t)>& body) {
  if (n <= 0) return;
  grain = std::max<index_t>(1, grain);
  const index_t chunks = (n + grain - 1) / grain;
  const int threads =
      static_cast<int>(std::min<index_t>(effective_threads(), chunks));
  if (threads <= 1 || tl_on_worker || tl_in_region) {
    g_stats.inline_regions.fetch_add(1, std::memory_order_relaxed);
    body(0, n);
    return;
  }
  ClaimState st;
  parallel_region(threads, [&](Region& r) {
    for (;;) {
      const index_t c = st.next.fetch_add(1, std::memory_order_relaxed);
      if (c >= chunks) break;
      g_stats.chunks.fetch_add(1, std::memory_order_relaxed);
      if (r.tid() != 0) g_stats.worker_chunks.fetch_add(1, std::memory_order_relaxed);
      const index_t begin = c * grain;
      const index_t end = std::min(n, begin + grain);
      try {
        body(begin, end);
      } catch (...) {
        std::lock_guard<std::mutex> lock(st.err_m);
        if (!st.error) st.error = std::current_exception();
      }
    }
  });
  if (st.error) std::rethrow_exception(st.error);
}

void ThreadPool::parallel_ranges(index_t n, int parts,
                                 const std::function<void(index_t, index_t)>& body) {
  if (n <= 0) return;
  const int threads = static_cast<int>(
      std::min<index_t>(std::min(parts, effective_threads()), n));
  if (threads <= 1 || tl_on_worker || tl_in_region) {
    g_stats.inline_regions.fetch_add(1, std::memory_order_relaxed);
    body(0, n);
    return;
  }
  const index_t num_ranges = threads;
  const index_t base = n / num_ranges;
  const index_t rem = n % num_ranges;
  ClaimState st;
  parallel_region(threads, [&](Region& r) {
    for (;;) {
      const index_t c = st.next.fetch_add(1, std::memory_order_relaxed);
      if (c >= num_ranges) break;
      g_stats.chunks.fetch_add(1, std::memory_order_relaxed);
      if (r.tid() != 0) g_stats.worker_chunks.fetch_add(1, std::memory_order_relaxed);
      const index_t begin = c * base + std::min(c, rem);
      const index_t end = begin + base + (c < rem ? 1 : 0);
      try {
        body(begin, end);
      } catch (...) {
        std::lock_guard<std::mutex> lock(st.err_m);
        if (!st.error) st.error = std::current_exception();
      }
    }
  });
  if (st.error) std::rethrow_exception(st.error);
}

}  // namespace optimus::kernel
