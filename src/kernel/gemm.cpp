#include "kernel/gemm.hpp"

#include <algorithm>
#include <atomic>
#include <memory>
#include <vector>

#include "kernel/thread_pool.hpp"

namespace optimus::kernel {

namespace {

// Register tile: MR×NR accumulators. NR spans one 64-byte cache line so the
// inner loop is a whole-line FMA; 4×NR accumulators fit the vector register
// file for both AVX2 and AVX-512 without spilling.
template <typename T>
struct Tile;
template <>
struct Tile<float> {
  static constexpr index_t MR = 4;
  static constexpr index_t NR = 16;
};
template <>
struct Tile<double> {
  static constexpr index_t MR = 4;
  static constexpr index_t NR = 8;
};

// Cache blocking: the packed A panel (MC×KC) targets L2, the packed B panel
// (KC×NC) L3, and one B strip (KC×NR) stays L1-resident across an MC sweep.
constexpr index_t kMC = 64;
constexpr index_t kKC = 256;
constexpr index_t kNC = 1024;

// Cap on the M extent packed per cooperative stage, so the shared packed-A
// buffer stays bounded (kMOuter×KC elements) for arbitrarily tall inputs.
// Must be a multiple of kMC.
constexpr index_t kMOuter = 2048;
static_assert(kMOuter % kMC == 0);

template <typename T>
inline T load_a(const T* A, index_t lda, Trans ta, index_t i, index_t kk) {
  return ta == Trans::No ? A[i * lda + kk] : A[kk * lda + i];
}

template <typename T>
inline T load_b(const T* B, index_t ldb, Trans tb, index_t kk, index_t j) {
  return tb == Trans::No ? B[kk * ldb + j] : B[j * ldb + kk];
}

// Packs op(A)[i0:i0+mc, k0:k0+kc], scaled by alpha, into MR-row strips:
// strip s holds columns k in order, MR consecutive rows per column, rows past
// mc zero-padded so the microkernel never branches on the edge.
template <typename T>
void pack_a(const T* A, index_t lda, Trans ta, index_t i0, index_t k0, index_t mc, index_t kc,
            T alpha, T* Ap) {
  constexpr index_t MR = Tile<T>::MR;
  for (index_t is = 0; is < mc; is += MR) {
    const index_t mr = std::min(MR, mc - is);
    if (ta == Trans::Yes) {
      // op(A)(i, k) = A[k, i]: rows of the stored matrix are contiguous in i.
      for (index_t l = 0; l < kc; ++l) {
        const T* src = A + (k0 + l) * lda + i0 + is;
        for (index_t i = 0; i < mr; ++i) Ap[i] = alpha * src[i];
        for (index_t i = mr; i < MR; ++i) Ap[i] = T{0};
        Ap += MR;
      }
    } else {
      for (index_t l = 0; l < kc; ++l) {
        const T* src = A + (i0 + is) * lda + k0 + l;
        for (index_t i = 0; i < mr; ++i) Ap[i] = src[i * lda];
        for (index_t i = 0; i < mr; ++i) Ap[i] *= alpha;
        for (index_t i = mr; i < MR; ++i) Ap[i] = T{0};
        Ap += MR;
      }
    }
  }
}

// Packs op(B)[k0:k0+kc, j0:j0+nc] into NR-column strips: strip s holds rows k
// in order, NR consecutive columns per row, columns past nc zero-padded.
template <typename T>
void pack_b(const T* B, index_t ldb, Trans tb, index_t k0, index_t j0, index_t kc, index_t nc,
            T* Bp) {
  constexpr index_t NR = Tile<T>::NR;
  for (index_t js = 0; js < nc; js += NR) {
    const index_t nr = std::min(NR, nc - js);
    if (tb == Trans::No) {
      for (index_t l = 0; l < kc; ++l) {
        const T* src = B + (k0 + l) * ldb + j0 + js;
        for (index_t j = 0; j < nr; ++j) Bp[j] = src[j];
        for (index_t j = nr; j < NR; ++j) Bp[j] = T{0};
        Bp += NR;
      }
    } else {
      // op(B)(k, j) = B[j, k]: gather one stored row per packed column.
      for (index_t l = 0; l < kc; ++l) {
        const T* src = B + (j0 + js) * ldb + k0 + l;
        for (index_t j = 0; j < nr; ++j) Bp[j] = src[j * ldb];
        for (index_t j = nr; j < NR; ++j) Bp[j] = T{0};
        Bp += NR;
      }
    }
  }
}

// The register-tiled core: acc[MR][NR] += sum_l Ap[l][·] ⊗ Bp[l][·].
//
// Written with GNU vector extensions (GCC/Clang): one NR-wide accumulator row
// is exactly 64 bytes for both element types, so each row is a single vector
// the compiler maps onto whatever the target has (1 zmm, 2 ymm, 4 xmm, or
// plain scalars elsewhere). Auto-vectorization of the equivalent scalar loop
// is not reliable across types — GCC 12 vectorizes the f64 instantiation but
// leaves f32 scalar — so the vector form is spelled out, with a scalar
// fallback for other compilers.
#if defined(__GNUC__) || defined(__clang__)
#define OPTIMUS_KERNEL_VECTOR_EXT 1
#endif

#ifdef OPTIMUS_KERNEL_VECTOR_EXT
// aligned(alignof(T)): the packed buffers are only element-aligned; may_alias
// because these lvalues access plain T arrays.
typedef float vec_f32 __attribute__((vector_size(64), aligned(4), may_alias));
typedef double vec_f64 __attribute__((vector_size(64), aligned(8), may_alias));
template <typename T>
struct VecOf;
template <>
struct VecOf<float> {
  using type = vec_f32;
};
template <>
struct VecOf<double> {
  using type = vec_f64;
};

template <typename T>
inline void micro_kernel(index_t kc, const T* __restrict Ap, const T* __restrict Bp,
                         T* __restrict acc) {
  constexpr index_t MR = Tile<T>::MR;
  constexpr index_t NR = Tile<T>::NR;
  using vec = typename VecOf<T>::type;
  static_assert(sizeof(vec) == NR * sizeof(T));
  vec vacc[MR];
  for (index_t i = 0; i < MR; ++i) vacc[i] = vec{};
  for (index_t l = 0; l < kc; ++l) {
    const vec b = *reinterpret_cast<const vec*>(Bp + l * NR);
    const T* a = Ap + l * MR;
    for (index_t i = 0; i < MR; ++i) vacc[i] += a[i] * b;
  }
  for (index_t i = 0; i < MR; ++i) *reinterpret_cast<vec*>(acc + i * NR) = vacc[i];
}
#else
template <typename T>
inline void micro_kernel(index_t kc, const T* __restrict Ap, const T* __restrict Bp,
                         T* __restrict acc) {
  constexpr index_t MR = Tile<T>::MR;
  constexpr index_t NR = Tile<T>::NR;
  for (index_t i = 0; i < MR * NR; ++i) acc[i] = T{0};
  for (index_t l = 0; l < kc; ++l) {
    const T* a = Ap + l * MR;
    const T* b = Bp + l * NR;
    for (index_t i = 0; i < MR; ++i) {
      const T ai = a[i];
      for (index_t j = 0; j < NR; ++j) acc[i * NR + j] += ai * b[j];
    }
  }
}
#endif

// Writes an mr×nr corner of the accumulator tile back into C. The first K
// panel applies beta (beta == 0 stores, never scales — NaN/Inf in C must not
// survive); later panels accumulate.
template <typename T>
void write_tile(T* C, index_t ldc, const T* acc, index_t mr, index_t nr, T beta,
                bool first_panel) {
  constexpr index_t NR = Tile<T>::NR;
  for (index_t i = 0; i < mr; ++i) {
    T* c = C + i * ldc;
    const T* a = acc + i * NR;
    if (!first_panel || beta == T{1}) {
      for (index_t j = 0; j < nr; ++j) c[j] += a[j];
    } else if (beta == T{0}) {
      for (index_t j = 0; j < nr; ++j) c[j] = a[j];
    } else {
      for (index_t j = 0; j < nr; ++j) c[j] = beta * c[j] + a[j];
    }
  }
}

// C = beta·C (beta == 0 stores zeros) — the k == 0 / alpha == 0 degenerate.
template <typename T>
void scale_c(T* C, index_t ldc, index_t m, index_t n, T beta) {
  for (index_t i = 0; i < m; ++i) {
    T* c = C + i * ldc;
    if (beta == T{0}) {
      std::fill(c, c + n, T{0});
    } else if (beta != T{1}) {
      for (index_t j = 0; j < n; ++j) c[j] *= beta;
    }
  }
}

// Applies a fused epilogue to the mr×nr block of C whose top-left element is
// C(gi, gj) globally. Each case performs the same scalar operations in the
// same order as the unfused two-pass reference (gemm, then the elementwise
// pass over C) — that is the bitwise-identity contract.
template <typename T>
void apply_epilogue_block(const EpilogueArgs<T>& ep, T* C, index_t ldc, index_t gi, index_t gj,
                          index_t mr, index_t nr) {
  switch (ep.op) {
    case Epilogue::None:
      return;
    case Epilogue::BiasAdd: {
      const T* bias = ep.bias + gj;
      for (index_t i = 0; i < mr; ++i) {
        T* c = C + i * ldc;
        for (index_t j = 0; j < nr; ++j) c[j] += bias[j];
      }
      return;
    }
    case Epilogue::BiasGelu: {
      const T* bias = ep.bias + gj;
      for (index_t i = 0; i < mr; ++i) {
        T* c = C + i * ldc;
        T* pre = ep.pre != nullptr ? ep.pre + (gi + i) * ep.ldp + gj : nullptr;
        for (index_t j = 0; j < nr; ++j) {
          const T v = c[j] + bias[j];
          if (pre != nullptr) pre[j] = v;
          c[j] = gelu_scalar(v);
        }
      }
      return;
    }
    case Epilogue::ResidualAdd: {
      for (index_t i = 0; i < mr; ++i) {
        T* c = C + i * ldc;
        const T* res = ep.residual + (gi + i) * ep.ldr + gj;
        if (ep.bias != nullptr) {
          const T* bias = ep.bias + gj;
          for (index_t j = 0; j < nr; ++j) c[j] = (c[j] + bias[j]) + res[j];
        } else {
          for (index_t j = 0; j < nr; ++j) c[j] += res[j];
        }
      }
      return;
    }
  }
}

template <typename T>
std::vector<T>& pack_buffer_a() {
  thread_local std::vector<T> buf;
  return buf;
}

template <typename T>
std::vector<T>& pack_buffer_b() {
  thread_local std::vector<T> buf;
  return buf;
}

// One cache line per claim counter so concurrent fetch_adds on different
// stages never false-share.
struct alignas(64) ClaimCell {
  std::atomic<index_t> v{0};
};

struct ClaimCells {
  std::unique_ptr<ClaimCell[]> cells;
  index_t cap = 0;
  ClaimCell* get(index_t n) {
    if (n > cap) {
      cells = std::make_unique<ClaimCell[]>(static_cast<std::size_t>(n));
      cap = n;
    } else {
      for (index_t i = 0; i < n; ++i) cells[i].v.store(0, std::memory_order_relaxed);
    }
    return cells.get();
  }
};

ClaimCells& claim_cells() {
  thread_local ClaimCells cells;
  return cells;
}

// Everything a cooperative GEMM region needs, owned by the submitting thread.
// `apack`/`bpack` are shared across the whole team; `counters` holds two
// fresh claim counters per (jc, pc, mo) stage (pack tasks, then C tiles), so
// no counter is ever reset mid-flight.
template <typename T>
struct CoopCtx {
  T* C;
  const T* A;
  const T* B;
  index_t m, n, k, lda, ldb, ldc;
  Trans ta, tb;
  T alpha, beta;
  EpilogueArgs<T> ep;
  T* apack;
  T* bpack;
  ClaimCell* counters;
};

// The cooperative schedule, executed SPMD by every thread of a region (a
// serial Region reduces it to the classic single-thread packed loop nest).
//
// Per (jc, pc) panel, per M chunk `mo`:
//   1. pack stage — tasks [0, a_blocks) pack one MC×KC block of A each;
//      on the first M chunk, tasks [a_blocks, a_blocks+n_strips) pack one
//      KC×NR strip of B each. Claimed dynamically from the stage counter.
//   2. barrier — publishes the shared panels.
//   3. tile stage — units of one MC×NR block of C (an MC sweep over one B
//      strip), claimed dynamically; each unit runs the fixed serial
//      microkernel loop, and applies the fused epilogue after the final K
//      panel while the block is register/L1-hot.
//   4. barrier — the next stage may repack the shared buffers.
//
// Every C element is produced by exactly one claimed unit and the K order is
// the serial one, so the result is bitwise identical for any thread count.
template <typename T>
void coop_body(Region& r, const CoopCtx<T>& cx) {
  constexpr index_t MR = Tile<T>::MR;
  constexpr index_t NR = Tile<T>::NR;
  const index_t m = cx.m, n = cx.n, k = cx.k;
  index_t stage = 0;
  for (index_t jc = 0; jc < n; jc += kNC) {
    const index_t nc = std::min(kNC, n - jc);
    const index_t n_strips = (nc + NR - 1) / NR;
    for (index_t pc = 0; pc < k; pc += kKC) {
      const index_t kc = std::min(kKC, k - pc);
      const bool first_panel = pc == 0;
      const bool last_panel = pc + kc >= k;
      for (index_t mo = 0; mo < m; mo += kMOuter, ++stage) {
        const index_t mlen = std::min(kMOuter, m - mo);
        const index_t a_blocks = (mlen + kMC - 1) / kMC;
        // B belongs to the whole (jc, pc) panel: packed on the first M chunk.
        const index_t pack_tasks = a_blocks + (mo == 0 ? n_strips : 0);
        std::atomic<index_t>& pack_ctr = cx.counters[2 * stage].v;
        std::atomic<index_t>& tile_ctr = cx.counters[2 * stage + 1].v;

        for (;;) {
          const index_t t = pack_ctr.fetch_add(1, std::memory_order_relaxed);
          if (t >= pack_tasks) break;
          if (t < a_blocks) {
            const index_t ic = mo + t * kMC;
            const index_t mc = std::min(kMC, m - ic);
            pack_a(cx.A, cx.lda, cx.ta, ic, pc, mc, kc, cx.alpha,
                   cx.apack + (t * kMC / MR) * kc * MR);
          } else {
            const index_t js = t - a_blocks;
            const index_t jr = js * NR;
            pack_b(cx.B, cx.ldb, cx.tb, pc, jc + jr, kc, std::min(NR, nc - jr),
                   cx.bpack + js * kc * NR);
          }
        }
        r.barrier();

        const index_t units = a_blocks * n_strips;
        for (;;) {
          const index_t t = tile_ctr.fetch_add(1, std::memory_order_relaxed);
          if (t >= units) break;
          const index_t ic = mo + (t / n_strips) * kMC;
          const index_t mc = std::min(kMC, m - ic);
          const index_t js = t % n_strips;
          const index_t jr = js * NR;
          const index_t nr = std::min(NR, nc - jr);
          const T* bp = cx.bpack + js * kc * NR;
          const T* ablock = cx.apack + ((t / n_strips) * kMC / MR) * kc * MR;
          for (index_t ir = 0; ir < mc; ir += MR) {
            const index_t mr = std::min(MR, mc - ir);
            const T* ap = ablock + (ir / MR) * kc * MR;
            // micro_kernel fully writes acc (it owns the zero-init).
            alignas(64) T acc[Tile<T>::MR * Tile<T>::NR];
            micro_kernel<T>(kc, ap, bp, acc);
            T* ct = cx.C + (ic + ir) * cx.ldc + jc + jr;
            write_tile(ct, cx.ldc, acc, mr, nr, cx.beta, first_panel);
            if (last_panel) apply_epilogue_block(cx.ep, ct, cx.ldc, ic + ir, jc + jr, mr, nr);
          }
        }
        // The next stage overwrites the shared packed buffers; nobody may
        // still be reading them.
        r.barrier();
      }
    }
  }
}

// Builds the shared workspace + per-stage counters and runs the body with
// `threads` cooperating threads. The buffers live in the submitting thread's
// thread_locals (workers only see raw pointers), so concurrent device
// threads never share workspace.
template <typename T>
void gemm_ex_impl(T* C, const T* A, const T* B, index_t m, index_t n, index_t k, index_t lda,
                  index_t ldb, index_t ldc, Trans ta, Trans tb, T alpha, T beta,
                  const EpilogueArgs<T>& ep, int threads) {
  constexpr index_t MR = Tile<T>::MR;
  if (m <= 0 || n <= 0) return;
  if (k <= 0 || alpha == T{0}) {
    scale_c(C, ldc, m, n, beta);
    apply_epilogue_block(ep, C, ldc, 0, 0, m, n);
    return;
  }

  const index_t n_jc = (n + kNC - 1) / kNC;
  const index_t n_pc = (k + kKC - 1) / kKC;
  const index_t n_mo = (m + kMOuter - 1) / kMOuter;
  const index_t n_stages = n_jc * n_pc * n_mo;

  const index_t a_rows = ((std::min(m, kMOuter) + MR - 1) / MR) * MR;
  std::vector<T>& abuf = pack_buffer_a<T>();
  std::vector<T>& bbuf = pack_buffer_b<T>();
  abuf.resize(static_cast<std::size_t>(a_rows * kKC));
  bbuf.resize(static_cast<std::size_t>(kKC * kNC));

  CoopCtx<T> cx{C,  A,  B,     m,     n,  k,           lda,         ldb, ldc, ta, tb,
                alpha, beta, ep, abuf.data(), bbuf.data(), claim_cells().get(2 * n_stages)};

  if (threads <= 1 || ThreadPool::on_worker_thread()) {
    Region r = Region::serial();
    coop_body(r, cx);
    return;
  }
  ThreadPool::global().parallel_region(threads, [&](Region& r) { coop_body(r, cx); });
}

}  // namespace

template <typename T>
void gemm_packed(T* C, const T* A, const T* B, index_t m, index_t n, index_t k, index_t lda,
                 index_t ldb, index_t ldc, Trans trans_a, Trans trans_b, T alpha, T beta) {
  gemm_ex_impl(C, A, B, m, n, k, lda, ldb, ldc, trans_a, trans_b, alpha, beta,
               EpilogueArgs<T>{}, /*threads=*/1);
}

template <typename T>
void gemm_ex(T* C, const T* A, const T* B, index_t m, index_t n, index_t k, index_t lda,
             index_t ldb, index_t ldc, Trans trans_a, Trans trans_b, T alpha, T beta,
             const EpilogueArgs<T>& epilogue) {
  // Below ~two MC sweeps of work per thread the region overhead dominates.
  constexpr double kMinWorkPerThread = 64.0 * 64.0 * 64.0;
  const double work = static_cast<double>(m) * static_cast<double>(n) * static_cast<double>(k);
  int threads = effective_threads();
  if (threads > 1) {
    threads = static_cast<int>(
        std::min<double>(threads, std::max(1.0, work / kMinWorkPerThread)));
  }
  gemm_ex_impl(C, A, B, m, n, k, lda, ldb, ldc, trans_a, trans_b, alpha, beta, epilogue,
               threads);
}

template <typename T>
void gemm(T* C, const T* A, const T* B, index_t m, index_t n, index_t k, index_t lda,
          index_t ldb, index_t ldc, Trans trans_a, Trans trans_b, T alpha, T beta) {
  gemm_ex(C, A, B, m, n, k, lda, ldb, ldc, trans_a, trans_b, alpha, beta, EpilogueArgs<T>{});
}

// Single non-inlinable definition of the GELU scalar (see gemm.hpp): keeps
// every caller — this TU's fused epilogue included — on one bit pattern even
// though this TU is built with -march=native FP contraction.
namespace {
template <typename T>
#if defined(__GNUC__) || defined(__clang__)
__attribute__((noinline))
#endif
T gelu_scalar_impl(T x) {
  const T c = T{0.7978845608028654};  // sqrt(2/pi)
  const T inner = c * (x + T{0.044715} * x * x * x);
  return T{0.5} * x * (T{1} + std::tanh(inner));
}
}  // namespace

float gelu_scalar(float x) { return gelu_scalar_impl(x); }
double gelu_scalar(double x) { return gelu_scalar_impl(x); }

#define OPTIMUS_INSTANTIATE_KERNEL_GEMM(T)                                                   \
  template void gemm<T>(T*, const T*, const T*, index_t, index_t, index_t, index_t, index_t, \
                        index_t, Trans, Trans, T, T);                                        \
  template void gemm_ex<T>(T*, const T*, const T*, index_t, index_t, index_t, index_t,       \
                           index_t, index_t, Trans, Trans, T, T, const EpilogueArgs<T>&);    \
  template void gemm_packed<T>(T*, const T*, const T*, index_t, index_t, index_t, index_t,   \
                               index_t, index_t, Trans, Trans, T, T);

OPTIMUS_INSTANTIATE_KERNEL_GEMM(float)
OPTIMUS_INSTANTIATE_KERNEL_GEMM(double)

#undef OPTIMUS_INSTANTIATE_KERNEL_GEMM

}  // namespace optimus::kernel
