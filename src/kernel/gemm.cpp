#include "kernel/gemm.hpp"

#include <algorithm>
#include <vector>

#include "kernel/thread_pool.hpp"

namespace optimus::kernel {

namespace {

// Register tile: MR×NR accumulators. NR spans one 64-byte cache line so the
// inner loop is a whole-line FMA; 4×NR accumulators fit the vector register
// file for both AVX2 and AVX-512 without spilling.
template <typename T>
struct Tile;
template <>
struct Tile<float> {
  static constexpr index_t MR = 4;
  static constexpr index_t NR = 16;
};
template <>
struct Tile<double> {
  static constexpr index_t MR = 4;
  static constexpr index_t NR = 8;
};

// Cache blocking: the packed A panel (MC×KC) targets L2, the packed B panel
// (KC×NC) L3, and one B strip (KC×NR) stays L1-resident across an MC sweep.
constexpr index_t kMC = 64;
constexpr index_t kKC = 256;
constexpr index_t kNC = 1024;

template <typename T>
inline T load_a(const T* A, index_t lda, Trans ta, index_t i, index_t kk) {
  return ta == Trans::No ? A[i * lda + kk] : A[kk * lda + i];
}

template <typename T>
inline T load_b(const T* B, index_t ldb, Trans tb, index_t kk, index_t j) {
  return tb == Trans::No ? B[kk * ldb + j] : B[j * ldb + kk];
}

// Packs op(A)[i0:i0+mc, k0:k0+kc], scaled by alpha, into MR-row strips:
// strip s holds columns k in order, MR consecutive rows per column, rows past
// mc zero-padded so the microkernel never branches on the edge.
template <typename T>
void pack_a(const T* A, index_t lda, Trans ta, index_t i0, index_t k0, index_t mc, index_t kc,
            T alpha, T* Ap) {
  constexpr index_t MR = Tile<T>::MR;
  for (index_t is = 0; is < mc; is += MR) {
    const index_t mr = std::min(MR, mc - is);
    if (ta == Trans::Yes) {
      // op(A)(i, k) = A[k, i]: rows of the stored matrix are contiguous in i.
      for (index_t l = 0; l < kc; ++l) {
        const T* src = A + (k0 + l) * lda + i0 + is;
        for (index_t i = 0; i < mr; ++i) Ap[i] = alpha * src[i];
        for (index_t i = mr; i < MR; ++i) Ap[i] = T{0};
        Ap += MR;
      }
    } else {
      for (index_t l = 0; l < kc; ++l) {
        const T* src = A + (i0 + is) * lda + k0 + l;
        for (index_t i = 0; i < mr; ++i) Ap[i] = src[i * lda];
        for (index_t i = 0; i < mr; ++i) Ap[i] *= alpha;
        for (index_t i = mr; i < MR; ++i) Ap[i] = T{0};
        Ap += MR;
      }
    }
  }
}

// Packs op(B)[k0:k0+kc, j0:j0+nc] into NR-column strips: strip s holds rows k
// in order, NR consecutive columns per row, columns past nc zero-padded.
template <typename T>
void pack_b(const T* B, index_t ldb, Trans tb, index_t k0, index_t j0, index_t kc, index_t nc,
            T* Bp) {
  constexpr index_t NR = Tile<T>::NR;
  for (index_t js = 0; js < nc; js += NR) {
    const index_t nr = std::min(NR, nc - js);
    if (tb == Trans::No) {
      for (index_t l = 0; l < kc; ++l) {
        const T* src = B + (k0 + l) * ldb + j0 + js;
        for (index_t j = 0; j < nr; ++j) Bp[j] = src[j];
        for (index_t j = nr; j < NR; ++j) Bp[j] = T{0};
        Bp += NR;
      }
    } else {
      // op(B)(k, j) = B[j, k]: gather one stored row per packed column.
      for (index_t l = 0; l < kc; ++l) {
        const T* src = B + (j0 + js) * ldb + k0 + l;
        for (index_t j = 0; j < nr; ++j) Bp[j] = src[j * ldb];
        for (index_t j = nr; j < NR; ++j) Bp[j] = T{0};
        Bp += NR;
      }
    }
  }
}

// The register-tiled core: acc[MR][NR] += sum_l Ap[l][·] ⊗ Bp[l][·].
//
// Written with GNU vector extensions (GCC/Clang): one NR-wide accumulator row
// is exactly 64 bytes for both element types, so each row is a single vector
// the compiler maps onto whatever the target has (1 zmm, 2 ymm, 4 xmm, or
// plain scalars elsewhere). Auto-vectorization of the equivalent scalar loop
// is not reliable across types — GCC 12 vectorizes the f64 instantiation but
// leaves f32 scalar — so the vector form is spelled out, with a scalar
// fallback for other compilers.
#if defined(__GNUC__) || defined(__clang__)
#define OPTIMUS_KERNEL_VECTOR_EXT 1
#endif

#ifdef OPTIMUS_KERNEL_VECTOR_EXT
// aligned(alignof(T)): the packed buffers are only element-aligned; may_alias
// because these lvalues access plain T arrays.
typedef float vec_f32 __attribute__((vector_size(64), aligned(4), may_alias));
typedef double vec_f64 __attribute__((vector_size(64), aligned(8), may_alias));
template <typename T>
struct VecOf;
template <>
struct VecOf<float> {
  using type = vec_f32;
};
template <>
struct VecOf<double> {
  using type = vec_f64;
};

template <typename T>
inline void micro_kernel(index_t kc, const T* __restrict Ap, const T* __restrict Bp,
                         T* __restrict acc) {
  constexpr index_t MR = Tile<T>::MR;
  constexpr index_t NR = Tile<T>::NR;
  using vec = typename VecOf<T>::type;
  static_assert(sizeof(vec) == NR * sizeof(T));
  vec vacc[MR];
  for (index_t i = 0; i < MR; ++i) vacc[i] = vec{};
  for (index_t l = 0; l < kc; ++l) {
    const vec b = *reinterpret_cast<const vec*>(Bp + l * NR);
    const T* a = Ap + l * MR;
    for (index_t i = 0; i < MR; ++i) vacc[i] += a[i] * b;
  }
  for (index_t i = 0; i < MR; ++i) *reinterpret_cast<vec*>(acc + i * NR) = vacc[i];
}
#else
template <typename T>
inline void micro_kernel(index_t kc, const T* __restrict Ap, const T* __restrict Bp,
                         T* __restrict acc) {
  constexpr index_t MR = Tile<T>::MR;
  constexpr index_t NR = Tile<T>::NR;
  for (index_t i = 0; i < MR * NR; ++i) acc[i] = T{0};
  for (index_t l = 0; l < kc; ++l) {
    const T* a = Ap + l * MR;
    const T* b = Bp + l * NR;
    for (index_t i = 0; i < MR; ++i) {
      const T ai = a[i];
      for (index_t j = 0; j < NR; ++j) acc[i * NR + j] += ai * b[j];
    }
  }
}
#endif

// Writes an mr×nr corner of the accumulator tile back into C. The first K
// panel applies beta (beta == 0 stores, never scales — NaN/Inf in C must not
// survive); later panels accumulate.
template <typename T>
void write_tile(T* C, index_t ldc, const T* acc, index_t mr, index_t nr, T beta,
                bool first_panel) {
  constexpr index_t NR = Tile<T>::NR;
  for (index_t i = 0; i < mr; ++i) {
    T* c = C + i * ldc;
    const T* a = acc + i * NR;
    if (!first_panel || beta == T{1}) {
      for (index_t j = 0; j < nr; ++j) c[j] += a[j];
    } else if (beta == T{0}) {
      for (index_t j = 0; j < nr; ++j) c[j] = a[j];
    } else {
      for (index_t j = 0; j < nr; ++j) c[j] = beta * c[j] + a[j];
    }
  }
}

// C = beta·C (beta == 0 stores zeros) — the k == 0 / alpha == 0 degenerate.
template <typename T>
void scale_c(T* C, index_t ldc, index_t m, index_t n, T beta) {
  for (index_t i = 0; i < m; ++i) {
    T* c = C + i * ldc;
    if (beta == T{0}) {
      std::fill(c, c + n, T{0});
    } else if (beta != T{1}) {
      for (index_t j = 0; j < n; ++j) c[j] *= beta;
    }
  }
}

template <typename T>
std::vector<T>& pack_buffer_a() {
  thread_local std::vector<T> buf;
  return buf;
}

template <typename T>
std::vector<T>& pack_buffer_b() {
  thread_local std::vector<T> buf;
  return buf;
}

}  // namespace

template <typename T>
void gemm_packed(T* C, const T* A, const T* B, index_t m, index_t n, index_t k, index_t lda,
                 index_t ldb, index_t ldc, Trans trans_a, Trans trans_b, T alpha, T beta) {
  constexpr index_t MR = Tile<T>::MR;
  constexpr index_t NR = Tile<T>::NR;
  if (m <= 0 || n <= 0) return;
  if (k <= 0 || alpha == T{0}) {
    scale_c(C, ldc, m, n, beta);
    return;
  }

  std::vector<T>& abuf = pack_buffer_a<T>();
  std::vector<T>& bbuf = pack_buffer_b<T>();
  abuf.resize(static_cast<std::size_t>(kMC * kKC));
  bbuf.resize(static_cast<std::size_t>(kKC * kNC));

  for (index_t jc = 0; jc < n; jc += kNC) {
    const index_t nc = std::min(kNC, n - jc);
    const index_t nc_strips = (nc + NR - 1) / NR;
    for (index_t pc = 0; pc < k; pc += kKC) {
      const index_t kc = std::min(kKC, k - pc);
      const bool first_panel = pc == 0;
      pack_b(B, ldb, trans_b, pc, jc, kc, nc, bbuf.data());
      for (index_t ic = 0; ic < m; ic += kMC) {
        const index_t mc = std::min(kMC, m - ic);
        pack_a(A, lda, trans_a, ic, pc, mc, kc, alpha, abuf.data());
        for (index_t js = 0; js < nc_strips; ++js) {
          const index_t jr = js * NR;
          const index_t nr = std::min(NR, nc - jr);
          const T* bp = bbuf.data() + js * kc * NR;
          for (index_t ir = 0; ir < mc; ir += MR) {
            const index_t mr = std::min(MR, mc - ir);
            const T* ap = abuf.data() + (ir / MR) * kc * MR;
            // micro_kernel fully writes acc (it owns the zero-init).
            alignas(64) T acc[Tile<T>::MR * Tile<T>::NR];
            micro_kernel<T>(kc, ap, bp, acc);
            write_tile(C + (ic + ir) * ldc + jc + jr, ldc, acc, mr, nr, beta, first_panel);
          }
        }
      }
    }
  }
}

template <typename T>
void gemm(T* C, const T* A, const T* B, index_t m, index_t n, index_t k, index_t lda,
          index_t ldb, index_t ldc, Trans trans_a, Trans trans_b, T alpha, T beta) {
  constexpr index_t MR = Tile<T>::MR;
  constexpr index_t NR = Tile<T>::NR;
  // Below ~two slabs of work per thread the fork/join overhead dominates.
  constexpr double kMinWorkPerThread = 64.0 * 64.0 * 64.0;

  const double work = static_cast<double>(m) * static_cast<double>(n) * static_cast<double>(k);
  int threads = effective_threads();
  if (threads > 1) {
    threads = static_cast<int>(
        std::min<double>(threads, std::max(1.0, work / kMinWorkPerThread)));
  }
  if (threads <= 1 || ThreadPool::on_worker_thread()) {
    gemm_packed(C, A, B, m, n, k, lda, ldb, ldc, trans_a, trans_b, alpha, beta);
    return;
  }

  if (m >= n) {
    // Slab the M dimension: each worker owns a contiguous band of C rows.
    const index_t tiles = (m + MR - 1) / MR;
    ThreadPool::global().parallel_ranges(tiles, threads, [&](index_t t0, index_t t1) {
      const index_t i0 = t0 * MR;
      const index_t i1 = std::min(m, t1 * MR);
      if (i0 >= i1) return;
      const T* a_sub = trans_a == Trans::No ? A + i0 * lda : A + i0;
      gemm_packed(C + i0 * ldc, a_sub, B, i1 - i0, n, k, lda, ldb, ldc, trans_a, trans_b,
                  alpha, beta);
    });
  } else {
    // Skinny-tall case (e.g. vocab-sized logits): slab the N dimension.
    const index_t tiles = (n + NR - 1) / NR;
    ThreadPool::global().parallel_ranges(tiles, threads, [&](index_t t0, index_t t1) {
      const index_t j0 = t0 * NR;
      const index_t j1 = std::min(n, t1 * NR);
      if (j0 >= j1) return;
      const T* b_sub = trans_b == Trans::No ? B + j0 : B + j0 * ldb;
      gemm_packed(C + j0, A, b_sub, m, j1 - j0, k, lda, ldb, ldc, trans_a, trans_b, alpha,
                  beta);
    });
  }
}

#define OPTIMUS_INSTANTIATE_KERNEL_GEMM(T)                                                   \
  template void gemm<T>(T*, const T*, const T*, index_t, index_t, index_t, index_t, index_t, \
                        index_t, Trans, Trans, T, T);                                        \
  template void gemm_packed<T>(T*, const T*, const T*, index_t, index_t, index_t, index_t,   \
                               index_t, index_t, Trans, Trans, T, T);

OPTIMUS_INSTANTIATE_KERNEL_GEMM(float)
OPTIMUS_INSTANTIATE_KERNEL_GEMM(double)

#undef OPTIMUS_INSTANTIATE_KERNEL_GEMM

}  // namespace optimus::kernel
