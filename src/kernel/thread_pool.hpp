#pragma once

// Intra-op thread pool and the process-wide kernel thread budget.
//
// The simulated cluster already runs one std::thread per device; the kernel
// layer adds *intra-op* workers underneath each device. To keep p devices ×
// intra-op workers from oversubscribing the host, both layers share one
// budget:
//
//   * `OPTIMUS_KERNEL_THREADS` (env) or set_threads(n) fixes the *global*
//     intra-op worker budget for the whole process;
//   * unset, the budget defaults to std::thread::hardware_concurrency();
//   * each kernel invocation may use at most
//       effective_threads() = max(1, budget / max(1, active_devices()))
//     workers, where active_devices() counts simulated devices currently
//     running (comm::Cluster registers them via ActiveDevicesGuard).
//
// Determinism: the pool never changes *what* is computed, only *where*.
// Kernels partition work so every output element is produced by exactly one
// task with a serial inner loop, and reductions use partitions that are a
// function of the problem size only — results are bitwise identical for any
// thread count (DESIGN.md §5).
//
// Nesting: a task submitted to the pool that itself calls parallel_* runs the
// nested region inline on the worker thread (no recursive fan-out, no
// deadlock).

#include <cstdint>
#include <functional>

namespace optimus::kernel {

using index_t = std::int64_t;

/// Cached std::thread::hardware_concurrency() (floor 1).
int hardware_threads();

/// Overrides the global intra-op worker budget. 0 restores the default
/// (env OPTIMUS_KERNEL_THREADS if set, else hardware_concurrency).
void set_threads(int n);

/// The global budget currently in force (after env/override resolution).
int configured_threads();

/// Number of simulated devices currently registered (see ActiveDevicesGuard).
int active_devices();

/// Per-invocation parallelism: max(1, configured_threads() / active devices).
int effective_threads();

/// Cumulative process-wide pool statistics (relaxed counters; cheap enough to
/// keep always-on). `regions` counts parallel_for/parallel_ranges calls that
/// actually fanned out; `inline_regions` the calls that ran serially (one
/// thread, nested region, or single chunk). `worker_chunks` is the subset of
/// `chunks` claimed by pool workers rather than the submitting thread — the
/// "stolen" share — and `submit_wait_ns` is wall time submitters spent blocked
/// waiting for workers to finish their last chunks (queue-drain tail).
struct PoolStats {
  std::uint64_t regions = 0;
  std::uint64_t inline_regions = 0;
  std::uint64_t chunks = 0;
  std::uint64_t worker_chunks = 0;
  std::uint64_t submit_wait_ns = 0;
  std::uint64_t workers_spawned = 0;

  /// Fraction of chunk work offloaded to workers (0 when nothing ran).
  double worker_share() const {
    return chunks == 0 ? 0.0
                       : static_cast<double>(worker_chunks) / static_cast<double>(chunks);
  }
};

/// Snapshot / reset of the global pool counters.
PoolStats pool_stats();
void reset_pool_stats();

/// RAII registration of `n` simulated devices against the shared budget.
/// comm::Cluster::run holds one for its whole world.
class ActiveDevicesGuard {
 public:
  explicit ActiveDevicesGuard(int n);
  ~ActiveDevicesGuard();
  ActiveDevicesGuard(const ActiveDevicesGuard&) = delete;
  ActiveDevicesGuard& operator=(const ActiveDevicesGuard&) = delete;

 private:
  int n_;
};

class ThreadPool {
 public:
  /// The process-wide pool. Workers are spawned lazily, up to the budget.
  static ThreadPool& global();

  /// True on a pool worker thread (used to run nested regions inline).
  static bool on_worker_thread();

  /// Splits [0, n) into ceil(n / grain) fixed-size chunks and runs
  /// body(begin, end) for each, using up to effective_threads() threads
  /// (the caller participates). Runs inline when parallelism is 1, the work
  /// is a single chunk, or we are already on a worker thread.
  void parallel_for(index_t n, index_t grain,
                    const std::function<void(index_t, index_t)>& body);

  /// Splits [0, n) into at most `parts` contiguous ranges of near-equal size
  /// and runs body(begin, end) for each. Used by GEMM to hand each thread one
  /// tile-aligned slab.
  void parallel_ranges(index_t n, int parts,
                       const std::function<void(index_t, index_t)>& body);

  ~ThreadPool();

 private:
  ThreadPool() = default;
  void run_call(const std::function<void(index_t, index_t)>& body, index_t num_chunks,
                index_t grain, index_t n, int max_threads);
  void ensure_workers(int count);

  struct Impl;
  Impl* impl_ = nullptr;
};

}  // namespace optimus::kernel
