#pragma once

// Intra-op thread pool and the process-wide kernel thread budget.
//
// The simulated cluster already runs one std::thread per device; the kernel
// layer adds *intra-op* workers underneath each device. To keep p devices ×
// intra-op workers from oversubscribing the host, both layers share one
// budget:
//
//   * `OPTIMUS_KERNEL_THREADS` (env) or set_threads(n) fixes the *global*
//     intra-op worker budget for the whole process;
//   * unset, the budget defaults to std::thread::hardware_concurrency();
//   * each kernel invocation may use at most
//       effective_threads() = max(1, budget / max(1, active_devices()))
//     workers, where active_devices() counts simulated devices currently
//     running (comm::Cluster registers them via ActiveDevicesGuard).
//
// Execution model: the primitive is a *persistent parallel region*.
// parallel_region(n, fn) wakes n-1 resident workers and runs fn(Region&) on
// all n threads; inside the region, threads coordinate through Region::barrier
// (a reusable arrival barrier) and through caller-owned atomic claim counters.
// Workers spin briefly and then park between regions, so back-to-back GEMMs
// inside a SUMMA k-loop do not pay thread wake/sleep latency on every call.
// parallel_for / parallel_ranges are thin wrappers that run a claim loop
// inside one region, so existing callers are unchanged.
//
// Determinism: the pool never changes *what* is computed, only *where*.
// Kernels partition work so every output element is produced by exactly one
// task with a serial inner loop, and reductions use partitions that are a
// function of the problem size only — results are bitwise identical for any
// thread count (DESIGN.md §5).
//
// Nesting: a thread that is already inside a region (worker or submitter) and
// calls parallel_* again runs the nested region inline on the calling thread
// (no recursive fan-out, no deadlock). The same serial degradation applies
// when another thread currently owns the pool's region slot — concurrent
// device threads never block each other on the intra-op pool.

#include <cstdint>
#include <functional>

namespace optimus::kernel {

using index_t = std::int64_t;

/// Cached std::thread::hardware_concurrency() (floor 1).
int hardware_threads();

/// Overrides the global intra-op worker budget. 0 restores the default
/// (env OPTIMUS_KERNEL_THREADS if set, else hardware_concurrency).
void set_threads(int n);

/// The global budget currently in force (after env/override resolution).
int configured_threads();

/// Number of simulated devices currently registered (see ActiveDevicesGuard).
int active_devices();

/// Per-invocation parallelism: max(1, configured_threads() / active devices).
int effective_threads();

/// Cumulative process-wide pool statistics (relaxed counters; cheap enough to
/// keep always-on). `regions` counts parallel regions that actually fanned
/// out (parallel_region, and parallel_for/parallel_ranges when they go wide);
/// `inline_regions` the calls that ran serially (one thread, nested region,
/// contended pool, or single chunk). `worker_chunks` is the subset of
/// `chunks` claimed by pool workers rather than the submitting thread — the
/// "stolen" share. `barrier_crossings` counts per-thread arrivals at
/// Region::barrier and `parks` counts spin-timeout transitions to a
/// futex/condvar sleep (both measure how well spin-then-park is working).
///
/// `submit_wait_ns` is wall time submitters spent blocked at the end of a
/// region waiting for workers to finish their last chunks. It is an
/// *aggregate across concurrent submitters*: with several device threads
/// driving the pool at once their waits overlap in wall time, so the sum can
/// legitimately exceed the wall time of the enclosing run. Consumers report
/// it as `aggregate_submit_wait_ms`, alongside the per-region average
/// (`avg_region_wait_ms` = aggregate / regions), which is the interpretable
/// per-call figure.
struct PoolStats {
  std::uint64_t regions = 0;
  std::uint64_t inline_regions = 0;
  std::uint64_t chunks = 0;
  std::uint64_t worker_chunks = 0;
  std::uint64_t submit_wait_ns = 0;
  std::uint64_t workers_spawned = 0;
  std::uint64_t barrier_crossings = 0;
  std::uint64_t parks = 0;

  /// Fraction of chunk work offloaded to workers (0 when nothing ran).
  double worker_share() const {
    return chunks == 0 ? 0.0
                       : static_cast<double>(worker_chunks) / static_cast<double>(chunks);
  }

  /// Mean end-of-region wait per fanned-out region, in ns (0 when none ran).
  double avg_region_wait_ns() const {
    return regions == 0 ? 0.0
                        : static_cast<double>(submit_wait_ns) / static_cast<double>(regions);
  }
};

/// Snapshot / reset of the global pool counters.
PoolStats pool_stats();
void reset_pool_stats();

/// RAII registration of `n` simulated devices against the shared budget.
/// comm::Cluster::run holds one for its whole world.
class ActiveDevicesGuard {
 public:
  explicit ActiveDevicesGuard(int n);
  ~ActiveDevicesGuard();
  ActiveDevicesGuard(const ActiveDevicesGuard&) = delete;
  ActiveDevicesGuard& operator=(const ActiveDevicesGuard&) = delete;

 private:
  int n_;
};

class ThreadPool;
struct RegionAccess;  // internal: lets the pool's Impl mint Region handles

/// Handle passed to a parallel_region body: identifies the calling thread
/// within the region and exposes the region's reusable arrival barrier.
///
/// barrier() may be crossed any number of times; every participating thread
/// must reach every barrier the body executes (the usual SPMD contract), so
/// a body that uses barrier() must not throw past one. With nthreads() == 1
/// (inline / degraded regions) barrier() is a no-op, which keeps SPMD bodies
/// correct without special-casing the serial path.
class Region {
 public:
  int tid() const { return tid_; }
  int nthreads() const { return nthreads_; }
  void barrier();

  /// A trivial single-thread region (tid 0 of 1, barrier is a no-op). Lets
  /// SPMD bodies be executed serially outside the pool, e.g. by the packed
  /// GEMM reference path.
  static Region serial() { return Region(0, 1, nullptr); }

 private:
  friend class ThreadPool;
  friend struct RegionAccess;
  Region(int tid, int nthreads, void* team) : tid_(tid), nthreads_(nthreads), team_(team) {}
  int tid_;
  int nthreads_;
  void* team_;  // ThreadPool::Impl of the owning pool; null for serial regions
};

class ThreadPool {
 public:
  /// The process-wide pool. Workers are spawned lazily, up to the budget.
  static ThreadPool& global();

  /// True on a pool worker thread (used to run nested regions inline).
  static bool on_worker_thread();

  /// Runs fn(Region&) on min(nthreads, budget) threads: the caller is tid 0,
  /// resident workers take tids 1..n-1. Returns the number of threads that
  /// actually ran the body. Degrades to a serial inline call (return 1) when
  /// nthreads <= 1, the caller is already inside a region, or another thread
  /// currently owns the region slot — so fn must be written SPMD-style
  /// against r.nthreads(), never against the requested count.
  ///
  /// fn may throw only outside barrier-synchronised sections (a throw skips
  /// later barriers and would deadlock the team); parallel_for bodies are
  /// exception-safe because the wrapper catches per chunk.
  int parallel_region(int nthreads, const std::function<void(Region&)>& fn);

  /// Splits [0, n) into ceil(n / grain) fixed-size chunks and runs
  /// body(begin, end) for each, using up to effective_threads() threads
  /// (the caller participates; chunks are claimed dynamically). Runs inline
  /// when parallelism is 1, the work is a single chunk, or we are already on
  /// a worker thread. Exceptions from body are rethrown (first one wins)
  /// after every chunk has executed.
  void parallel_for(index_t n, index_t grain,
                    const std::function<void(index_t, index_t)>& body);

  /// Splits [0, n) into at most `parts` contiguous ranges of near-equal size
  /// and runs body(begin, end) for each.
  void parallel_ranges(index_t n, int parts,
                       const std::function<void(index_t, index_t)>& body);

  ~ThreadPool();

 private:
  friend class Region;
  ThreadPool() = default;
  void ensure_workers(int count);

  struct Impl;
  Impl* impl_ = nullptr;
};

}  // namespace optimus::kernel
