#pragma once

// Cache-blocked, panel-packed GEMM with a register-tiled microkernel.
//
// This is the dense-compute floor under every engine in the repo: the BLIS
// decomposition (NC → KC → MC panels, packed A/B, an MR×NR register tile)
// written in portable C++ so the compiler auto-vectorizes the microkernel.
// All four transpose forms are handled in the packing routines, so one
// microkernel serves NN/NT/TN/TT.
//
// Threading (gemm / gemm_ex): one GEMM is computed *cooperatively* by a
// single parallel region. For each (jc, pc) panel the packed A blocks and
// packed B strips are produced once into shared buffers (packing itself is
// claimed in parallel), a barrier publishes them, and then workers claim
// MC×NR tile blocks of C dynamically from an atomic counter. Tile ownership
// is dynamic but every output element is produced by exactly one claim with
// the serial loop structure inside, and the K accumulation order is fixed by
// the blocking constants — results are bitwise identical to the serial
// packed path for every thread count.
//
// Semantics: C = alpha·op(A)·op(B) + beta·C on row-major buffers with row
// strides lda/ldb/ldc (of the *stored* matrices, pre-transpose). beta == 0
// *stores* — C may hold NaN/Inf garbage (e.g. an uninitialised Arena slab)
// and must still come out clean.
//
// Epilogues (gemm_ex): an optional fused elementwise tail applied to each
// C tile right after its last K panel is accumulated, while the tile is
// register/L1-hot, instead of a separate full-tensor pass. The contract is
// *bitwise identity with the unfused reference*: each epilogue applies the
// same scalar operations in the same order as the two-pass formulation
// (gemm, then the elementwise op over C), so fused and unfused paths — and
// any thread count — agree to 0 ULPs.

#include <cmath>
#include <cstdint>

namespace optimus::kernel {

using index_t = std::int64_t;

enum class Trans : std::uint8_t { No, Yes };

/// GELU, tanh approximation: 0.5·x·(1 + tanh(√(2/π)·(x + 0.044715·x³))).
/// Deliberately out-of-line with exactly one definition (gemm.cpp, marked
/// non-inlinable): the kernel TU is built with -march=native where FP
/// contraction may fuse the polynomial differently than portable TUs, so an
/// inline template would give each caller its own bit pattern. One shared
/// symbol keeps tensor ops, the fused GEMM epilogue, and tests bitwise
/// identical.
float gelu_scalar(float x);
double gelu_scalar(double x);

/// Fused elementwise tails applied per C tile after its final K panel.
enum class Epilogue : std::uint8_t {
  None,         ///< plain GEMM
  BiasAdd,      ///< C[i,j] += bias[j]
  BiasGelu,     ///< v = C[i,j] + bias[j]; pre[i,j] = v (if given); C[i,j] = gelu(v)
  ResidualAdd,  ///< C[i,j] = (C[i,j] + bias[j]) + residual[i,j]  (bias optional)
};

/// Operands for the fused epilogue. `bias` is a length-n row vector
/// broadcast over rows; `residual` is an m×n matrix with row stride ldr;
/// `pre` (BiasGelu only) receives the biased pre-activation A·B+bias with row
/// stride ldp — the backward pass needs it, and writing it here replaces the
/// separate bias pass over the pre-activation tensor.
template <typename T>
struct EpilogueArgs {
  Epilogue op = Epilogue::None;
  const T* bias = nullptr;
  const T* residual = nullptr;
  index_t ldr = 0;
  T* pre = nullptr;
  index_t ldp = 0;
};

/// Threaded entry point: cooperative packed GEMM over up to
/// effective_threads() workers. Bitwise identical to gemm_packed.
template <typename T>
void gemm(T* C, const T* A, const T* B, index_t m, index_t n, index_t k, index_t lda,
          index_t ldb, index_t ldc, Trans trans_a, Trans trans_b, T alpha, T beta);

/// gemm plus a fused epilogue (see Epilogue). The epilogue is applied to each
/// C tile immediately after its last K panel, in unfused reference order.
template <typename T>
void gemm_ex(T* C, const T* A, const T* B, index_t m, index_t n, index_t k, index_t lda,
             index_t ldb, index_t ldc, Trans trans_a, Trans trans_b, T alpha, T beta,
             const EpilogueArgs<T>& epilogue);

/// Single-thread packed path (the serial reference schedule). Exposed for the
/// bench harness and the kernel tests.
template <typename T>
void gemm_packed(T* C, const T* A, const T* B, index_t m, index_t n, index_t k, index_t lda,
                 index_t ldb, index_t ldc, Trans trans_a, Trans trans_b, T alpha, T beta);

}  // namespace optimus::kernel
