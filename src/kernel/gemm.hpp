#pragma once

// Cache-blocked, panel-packed GEMM with a register-tiled microkernel.
//
// This is the dense-compute floor under every engine in the repo: the BLIS
// decomposition (NC → KC → MC panels, packed A/B, an MR×NR register tile)
// written in portable C++ so the compiler auto-vectorizes the microkernel.
// All four transpose forms are handled in the packing routines, so one
// microkernel serves NN/NT/TN/TT.
//
// Threading (gemm): the M or N dimension — whichever is larger — is split
// into tile-aligned slabs, one per worker, each running the full packed
// serial algorithm on its slab. No worker ever shares an output element and
// the K reduction order is fixed by the blocking constants, so results are
// bitwise identical for every thread count.
//
// Semantics: C = alpha·op(A)·op(B) + beta·C on row-major buffers with row
// strides lda/ldb/ldc (of the *stored* matrices, pre-transpose). beta == 0
// *stores* — C may hold NaN/Inf garbage (e.g. an uninitialised Arena slab)
// and must still come out clean.

#include <cstdint>

namespace optimus::kernel {

using index_t = std::int64_t;

enum class Trans : std::uint8_t { No, Yes };

/// Threaded entry point: packed GEMM over up to effective_threads() workers.
template <typename T>
void gemm(T* C, const T* A, const T* B, index_t m, index_t n, index_t k, index_t lda,
          index_t ldb, index_t ldc, Trans trans_a, Trans trans_b, T alpha, T beta);

/// Single-thread packed path (what each worker slab runs). Exposed for the
/// bench harness and the kernel tests.
template <typename T>
void gemm_packed(T* C, const T* A, const T* B, index_t m, index_t n, index_t k, index_t lda,
                 index_t ldb, index_t ldc, Trans trans_a, Trans trans_b, T alpha, T beta);

}  // namespace optimus::kernel
