#include "serving/traffic.hpp"

#include <algorithm>
#include <cmath>

#include "util/rng.hpp"

namespace optimus::serving {

using tensor::index_t;

std::vector<Request> poisson_open_loop(const TrafficConfig& cfg) {
  OPT_CHECK(cfg.rate > 0 && cfg.vocab >= 1 && cfg.capacity >= 2, "traffic config");
  OPT_CHECK(cfg.prompt_min >= 1 && cfg.prompt_max >= cfg.prompt_min &&
                cfg.output_min >= 1 && cfg.output_max >= cfg.output_min,
            "traffic length ranges");
  OPT_CHECK(cfg.prompt_min + cfg.output_min <= cfg.capacity,
            "minimum request does not fit capacity " << cfg.capacity);
  util::Rng rng(cfg.seed);
  std::vector<Request> out;
  out.reserve(cfg.count);
  double t = 0;
  for (std::size_t i = 0; i < cfg.count; ++i) {
    t += -std::log(1.0 - rng.uniform()) / cfg.rate;
    Request r;
    r.id = static_cast<int>(i);
    r.arrival = t;
    index_t plen = cfg.prompt_min +
                   static_cast<index_t>(rng.uniform_index(
                       static_cast<std::size_t>(cfg.prompt_max - cfg.prompt_min + 1)));
    plen = std::min(plen, cfg.capacity - cfg.output_min);
    index_t olen = cfg.output_min +
                   static_cast<index_t>(rng.uniform_index(
                       static_cast<std::size_t>(cfg.output_max - cfg.output_min + 1)));
    olen = std::min(olen, cfg.capacity - plen);
    r.prompt.resize(static_cast<std::size_t>(plen));
    for (auto& tok : r.prompt) {
      tok = static_cast<std::int32_t>(rng.uniform_index(static_cast<std::size_t>(cfg.vocab)));
    }
    r.max_new_tokens = static_cast<std::size_t>(olen);
    out.push_back(std::move(r));
  }
  return out;
}

}  // namespace optimus::serving
