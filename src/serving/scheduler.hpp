#pragma once

// Continuous-batching request scheduler.
//
// The engine decodes a fixed arena of `slots` cache slots in lock-step; the
// scheduler keeps those slots busy by admitting queued requests the moment a
// slot frees — between decode steps, never mid-step (the batch shape is part
// of the collective schedule, so membership can only change at step
// boundaries). Slots are recycled through a freelist; a freed slot's stale
// K/V rows are simply overwritten by its next occupant.
//
// The scheduler is engine-agnostic: it plans a token vector per step and
// consumes the engine's argmax outputs. All policy is deterministic — FIFO by
// (arrival, id) — so every rank of a distributed engine runs the identical
// schedule without coordination.

#include <cstdint>
#include <limits>
#include <vector>

#include "serving/request.hpp"
#include "tensor/tensor.hpp"

namespace optimus::serving {

class ContinuousBatchScheduler {
 public:
  ContinuousBatchScheduler(tensor::index_t slots, tensor::index_t capacity);

  /// Enqueues a request. prompt + max_new_tokens must fit in `capacity`, and
  /// both must be nonzero. Requests may carry progress (generated/evictions)
  /// from a previous session — replay resumes transparently.
  void submit(Request r);

  /// All submitted requests completed.
  bool finished() const;
  /// Arrival time of the earliest queued request; +inf when none queued.
  double next_arrival() const;

  /// Admits arrived requests (arrival ≤ now) into free slots, FIFO. Returns
  /// true if at least one slot is active afterwards.
  bool admit(double now);

  /// Plans the next decode step: per-slot input token (idle slots feed 0 and
  /// are marked inactive).
  void plan_step(std::vector<std::int32_t>& tokens,
                 std::vector<std::uint8_t>& active) const;

  /// Consumes the engine's argmax outputs for the step just executed; `now`
  /// is the simulated time after the step. Returns the slots whose requests
  /// completed (the caller must reset those cache slots).
  std::vector<tensor::index_t> commit_step(const std::vector<std::int32_t>& outputs,
                                           double now);

  /// Evicts the request occupying `slot` back to the queue: its cache cursor
  /// rewinds to zero, generated tokens are preserved, and the slot frees. The
  /// caller must reset the engine's cache slot.
  void evict_slot(tensor::index_t slot);
  /// Evicts every active request (fault recovery).
  void evict_all();

  tensor::index_t slots() const { return static_cast<tensor::index_t>(slot_of_.size()); }
  tensor::index_t active_count() const;
  std::size_t queued() const { return queue_.size(); }
  /// Queued requests that have arrived by `now` but found no free slot — the
  /// backlog a queue-depth metric should report (future arrivals excluded).
  std::size_t arrived_queued(double now) const;
  const std::vector<Request>& completed() const { return completed_; }
  /// Requests not yet complete (queued + active), progress preserved — for
  /// resuming a run in a fresh session after an abort.
  std::vector<Request> drain_unfinished();
  /// Request currently occupying `slot`, or nullptr.
  const Request* request_in_slot(tensor::index_t slot) const;

 private:
  tensor::index_t capacity_;
  std::vector<Request> pool_;            // all live (non-completed) requests
  std::vector<std::size_t> queue_;       // indices into pool_, FIFO by (arrival, id)
  std::vector<int> slot_of_;             // per slot: index into pool_, or -1
  std::vector<Request> completed_;
  // Last driver-provided clock reading (admit/commit). Eviction has no time
  // argument, so its telemetry timestamps events here — never from
  // obs::sim_now(), which is 0 on host threads driving a serial engine.
  double last_now_ = 0;
};

}  // namespace optimus::serving
