#pragma once

// The serving loop: continuous batching over a DecodeEngine.
//
// ServingSession wires the scheduler to an engine step by step;
// run_serving() is the convenience loop that also handles idle time (the
// open-loop clock jumps to the next arrival when no request is in flight)
// and fault capture. On an injected fabric fault the whole simulated cluster
// aborts — every rank unwinds with FaultError (the detector) or
// FabricAborted (its peers). The driver converts that into a recoverable
// outcome: committed progress survives in the returned request states, the
// in-flight requests are evicted (cache cursors rewound), and a fresh
// engine/cluster can resume via the `resume` argument. Determinism of decode
// guarantees the resumed run reproduces the identical tokens.

#include <algorithm>
#include <cmath>
#include <functional>
#include <string>
#include <vector>

#include "comm/fabric.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serving/engines.hpp"
#include "serving/scheduler.hpp"

namespace optimus::serving {

template <typename T>
class ServingSession {
 public:
  enum class Step { kStepped, kIdle, kDone };

  ServingSession(DecodeEngine<T>& engine, std::vector<Request> requests)
      : engine_(&engine), sched_(engine.slots(), engine.capacity()) {
    for (auto& r : requests) sched_.submit(std::move(r));
  }

  /// One admit+decode cycle. `now` reads the simulated clock (called before
  /// and after the engine step). kIdle means no request had arrived by now()
  /// — the caller should advance its clock to scheduler().next_arrival().
  Step step(const std::function<double()>& now) {
    if (sched_.finished()) return Step::kDone;
    const double t = now();
    if (!sched_.admit(t)) return Step::kIdle;
    const std::size_t backlog = sched_.arrived_queued(t);
    queue_depth_sum_ += static_cast<double>(backlog);
    max_queue_depth_ = std::max(max_queue_depth_, backlog);
    sched_.plan_step(tokens_, active_);
    // Lane membership must be captured before the step: commit_step advances
    // each request's cursor (and may retire it), losing which phase this
    // step was for it. Only the lead rank emits lane spans (the schedule is
    // identical on every rank).
    const bool lead = obs::current_rank() <= 0;
    step_lanes_.clear();
    if (obs::enabled() && lead) {
      for (tensor::index_t s = 0; s < sched_.slots(); ++s) {
        if (!active_[static_cast<std::size_t>(s)]) continue;
        const Request* r = sched_.request_in_slot(s);
        const char* phase = r->fed < r->prompt.size()          ? "prefill_step"
                            : r->fed < r->forced_size()        ? "replay_step"
                                                               : "decode_step";
        step_lanes_.emplace_back(r->id, phase);
      }
    }
    if (obs::flight_enabled()) {
      obs::flight_note("serving", "decode_step", t,
                       "batch=" + std::to_string(sched_.active_count()));
    }
    std::vector<std::int32_t> out;
    {
      obs::Span dspan("serving", "decode_step");
      if (dspan.armed()) dspan.arg("batch", static_cast<std::uint64_t>(sched_.active_count()));
      out = engine_->step(tokens_, active_);
    }
    ++decode_steps_;
    const double t1 = now();
    if (lead) {
      for (const auto& [lane, phase] : step_lanes_) {
        obs::record_lane_span("request", phase, lane, /*depth=*/1, t, t1);
      }
      obs::metrics_observe("serving.decode_step_s", t1 - t);
      obs::metrics_count("serving.decode_steps");
      obs::metrics_gauge_max("serving.max_batch", static_cast<double>(sched_.active_count()));
    }
    for (const tensor::index_t slot : sched_.commit_step(out, t1)) {
      engine_->reset_slot(slot);
    }
    return sched_.finished() ? Step::kDone : Step::kStepped;
  }

  ContinuousBatchScheduler& scheduler() { return sched_; }
  DecodeEngine<T>& engine() { return *engine_; }
  std::uint64_t decode_steps() const { return decode_steps_; }

  ServingMetrics metrics() const {
    ServingMetrics m;
    m.decode_steps = decode_steps_;
    const std::vector<Request>& done = sched_.completed();
    m.completed = done.size();
    if (done.empty()) return m;
    std::vector<double> lat, ftl;
    double t0 = done.front().arrival, t1 = 0;
    for (const Request& r : done) {
      m.generated_tokens += r.generated.size();
      lat.push_back(r.finish - r.arrival);
      ftl.push_back(r.first_token - r.arrival);
      t0 = std::min(t0, r.arrival);
      t1 = std::max(t1, r.finish);
    }
    m.span = t1 - t0;
    m.tokens_per_s = m.span > 0 ? static_cast<double>(m.generated_tokens) / m.span : 0;
    m.p50_latency = percentile(lat, 0.50);
    m.p99_latency = percentile(lat, 0.99);
    m.p999_latency = percentile(lat, 0.999);
    m.p50_first_token = percentile(ftl, 0.50);
    m.p99_first_token = percentile(ftl, 0.99);
    m.mean_queue_depth =
        decode_steps_ > 0 ? queue_depth_sum_ / static_cast<double>(decode_steps_) : 0;
    m.max_queue_depth = max_queue_depth_;
    return m;
  }

  static double percentile(std::vector<double> v, double p) {
    if (v.empty()) return 0;
    std::sort(v.begin(), v.end());
    const std::size_t idx = std::min(
        v.size() - 1, static_cast<std::size_t>(std::ceil(p * static_cast<double>(v.size()))) -
                          (p > 0 ? 1 : 0));
    return v[idx];
  }

 private:
  DecodeEngine<T>* engine_;
  ContinuousBatchScheduler sched_;
  std::vector<std::int32_t> tokens_;
  std::vector<std::uint8_t> active_;
  std::vector<std::pair<int, const char*>> step_lanes_;  // (request id, phase)
  std::uint64_t decode_steps_ = 0;
  double queue_depth_sum_ = 0;
  std::size_t max_queue_depth_ = 0;
};

struct ServingOutcome {
  bool aborted = false;
  std::string fault_what;  // FaultError message (detecting rank only)
  std::vector<Request> completed;
  std::vector<Request> unfinished;  // progress preserved; resubmit to resume
  ServingMetrics metrics;
  std::uint64_t cache_bytes = 0;
};

/// Runs the loop to completion (or abort). `clock_now` reads this rank's
/// simulated clock; `advance_to` jumps it forward during idle gaps (open-loop
/// arrivals). Pass `resume` = a previous outcome's `unfinished` to continue
/// an aborted run on a fresh engine.
template <typename T>
ServingOutcome run_serving(DecodeEngine<T>& engine, std::vector<Request> requests,
                           const std::function<double()>& clock_now,
                           const std::function<void(double)>& advance_to) {
  ServingOutcome oc;
  oc.cache_bytes = engine.cache_bytes();
  ServingSession<T> session(engine, std::move(requests));
  try {
    for (;;) {
      const auto s = session.step(clock_now);
      if (s == ServingSession<T>::Step::kDone) break;
      if (s == ServingSession<T>::Step::kIdle) {
        const double next = session.scheduler().next_arrival();
        OPT_CHECK(std::isfinite(next), "idle with nothing queued");
        advance_to(next);
      }
    }
  } catch (const comm::FaultError& e) {
    obs::flight_write_postmortem();
    oc.aborted = true;
    oc.fault_what = e.what();
  } catch (const comm::FabricAborted&) {
    obs::flight_write_postmortem();
    oc.aborted = true;  // peer of the detecting rank; fabric is gone
  }
  oc.metrics = session.metrics();
  oc.completed = session.scheduler().completed();
  oc.unfinished = session.scheduler().drain_unfinished();
  return oc;
}

}  // namespace optimus::serving
