#pragma once

// The serving loop: continuous batching over a DecodeEngine.
//
// ServingSession wires the scheduler to an engine step by step;
// run_serving() is the convenience loop that also handles idle time (the
// open-loop clock jumps to the next arrival when no request is in flight)
// and fault capture. On an injected fabric fault the whole simulated cluster
// aborts — every rank unwinds with FaultError (the detector) or
// FabricAborted (its peers). The driver converts that into a recoverable
// outcome: committed progress survives in the returned request states, the
// in-flight requests are evicted (cache cursors rewound), and a fresh
// engine/cluster can resume via the `resume` argument. Determinism of decode
// guarantees the resumed run reproduces the identical tokens.

#include <algorithm>
#include <cmath>
#include <functional>
#include <string>
#include <vector>

#include "comm/fabric.hpp"
#include "serving/engines.hpp"
#include "serving/scheduler.hpp"

namespace optimus::serving {

template <typename T>
class ServingSession {
 public:
  enum class Step { kStepped, kIdle, kDone };

  ServingSession(DecodeEngine<T>& engine, std::vector<Request> requests)
      : engine_(&engine), sched_(engine.slots(), engine.capacity()) {
    for (auto& r : requests) sched_.submit(std::move(r));
  }

  /// One admit+decode cycle. `now` reads the simulated clock (called before
  /// and after the engine step). kIdle means no request had arrived by now()
  /// — the caller should advance its clock to scheduler().next_arrival().
  Step step(const std::function<double()>& now) {
    if (sched_.finished()) return Step::kDone;
    const double t = now();
    if (!sched_.admit(t)) return Step::kIdle;
    const std::size_t backlog = sched_.arrived_queued(t);
    queue_depth_sum_ += static_cast<double>(backlog);
    max_queue_depth_ = std::max(max_queue_depth_, backlog);
    sched_.plan_step(tokens_, active_);
    const std::vector<std::int32_t> out = engine_->step(tokens_, active_);
    ++decode_steps_;
    for (const tensor::index_t slot : sched_.commit_step(out, now())) {
      engine_->reset_slot(slot);
    }
    return sched_.finished() ? Step::kDone : Step::kStepped;
  }

  ContinuousBatchScheduler& scheduler() { return sched_; }
  DecodeEngine<T>& engine() { return *engine_; }
  std::uint64_t decode_steps() const { return decode_steps_; }

  ServingMetrics metrics() const {
    ServingMetrics m;
    m.decode_steps = decode_steps_;
    const std::vector<Request>& done = sched_.completed();
    m.completed = done.size();
    if (done.empty()) return m;
    std::vector<double> lat, ftl;
    double t0 = done.front().arrival, t1 = 0;
    for (const Request& r : done) {
      m.generated_tokens += r.generated.size();
      lat.push_back(r.finish - r.arrival);
      ftl.push_back(r.first_token - r.arrival);
      t0 = std::min(t0, r.arrival);
      t1 = std::max(t1, r.finish);
    }
    m.span = t1 - t0;
    m.tokens_per_s = m.span > 0 ? static_cast<double>(m.generated_tokens) / m.span : 0;
    m.p50_latency = percentile(lat, 0.50);
    m.p99_latency = percentile(lat, 0.99);
    m.p50_first_token = percentile(ftl, 0.50);
    m.p99_first_token = percentile(ftl, 0.99);
    m.mean_queue_depth =
        decode_steps_ > 0 ? queue_depth_sum_ / static_cast<double>(decode_steps_) : 0;
    m.max_queue_depth = max_queue_depth_;
    return m;
  }

  static double percentile(std::vector<double> v, double p) {
    if (v.empty()) return 0;
    std::sort(v.begin(), v.end());
    const std::size_t idx = std::min(
        v.size() - 1, static_cast<std::size_t>(std::ceil(p * static_cast<double>(v.size()))) -
                          (p > 0 ? 1 : 0));
    return v[idx];
  }

 private:
  DecodeEngine<T>* engine_;
  ContinuousBatchScheduler sched_;
  std::vector<std::int32_t> tokens_;
  std::vector<std::uint8_t> active_;
  std::uint64_t decode_steps_ = 0;
  double queue_depth_sum_ = 0;
  std::size_t max_queue_depth_ = 0;
};

struct ServingOutcome {
  bool aborted = false;
  std::string fault_what;  // FaultError message (detecting rank only)
  std::vector<Request> completed;
  std::vector<Request> unfinished;  // progress preserved; resubmit to resume
  ServingMetrics metrics;
  std::uint64_t cache_bytes = 0;
};

/// Runs the loop to completion (or abort). `clock_now` reads this rank's
/// simulated clock; `advance_to` jumps it forward during idle gaps (open-loop
/// arrivals). Pass `resume` = a previous outcome's `unfinished` to continue
/// an aborted run on a fresh engine.
template <typename T>
ServingOutcome run_serving(DecodeEngine<T>& engine, std::vector<Request> requests,
                           const std::function<double()>& clock_now,
                           const std::function<void(double)>& advance_to) {
  ServingOutcome oc;
  oc.cache_bytes = engine.cache_bytes();
  ServingSession<T> session(engine, std::move(requests));
  try {
    for (;;) {
      const auto s = session.step(clock_now);
      if (s == ServingSession<T>::Step::kDone) break;
      if (s == ServingSession<T>::Step::kIdle) {
        const double next = session.scheduler().next_arrival();
        OPT_CHECK(std::isfinite(next), "idle with nothing queued");
        advance_to(next);
      }
    }
  } catch (const comm::FaultError& e) {
    oc.aborted = true;
    oc.fault_what = e.what();
  } catch (const comm::FabricAborted&) {
    oc.aborted = true;  // peer of the detecting rank; fabric is gone
  }
  oc.metrics = session.metrics();
  oc.completed = session.scheduler().completed();
  oc.unfinished = session.scheduler().drain_unfinished();
  return oc;
}

}  // namespace optimus::serving
