#pragma once

// Synthetic open-loop traffic: Poisson arrivals with mixed prompt/output
// lengths, fully determined by the seed — every rank of a distributed engine
// generates the identical trace locally, so no request distribution step is
// needed (mirroring how the training side replicates the token stream).

#include <cstdint>
#include <vector>

#include "serving/request.hpp"
#include "tensor/tensor.hpp"

namespace optimus::serving {

struct TrafficConfig {
  double rate = 1.0;          // mean arrivals per simulated second
  std::size_t count = 16;     // number of requests
  tensor::index_t prompt_min = 1, prompt_max = 8;   // uniform inclusive
  tensor::index_t output_min = 1, output_max = 8;   // uniform inclusive
  tensor::index_t vocab = 0;     // token ids drawn uniformly from [0, vocab)
  tensor::index_t capacity = 0;  // seq_len; prompt+output is clamped to fit
  std::uint64_t seed = 0;
};

/// Generates `count` requests with exponential inter-arrival gaps
/// (t += −ln(1−u)/rate), ids 0..count−1 in arrival order.
std::vector<Request> poisson_open_loop(const TrafficConfig& cfg);

}  // namespace optimus::serving
