#pragma once

// Serving-side request model.
//
// A request is a prompt plus an output budget. Progress is tracked as a
// *forced sequence* — prompt ++ generated — and a cursor `fed` of how many
// forced tokens have entered the KV cache. Prefill is chunked one token per
// decode step (every step feeds forced[fed] and advances the cursor); once
// the cursor reaches the end of the forced sequence, the engine's argmax for
// that step is a genuinely new token and is appended to `generated`.
//
// This representation makes eviction trivially correct: requeue with fed=0
// and `generated` intact. Replay re-feeds the same forced tokens through the
// same deterministic engine, reproducing the identical cache state — so a
// served sequence is bitwise independent of how often it was evicted.

#include <cstdint>
#include <vector>

#include "util/check.hpp"

namespace optimus::serving {

struct Request {
  int id = -1;
  std::vector<std::int32_t> prompt;
  std::size_t max_new_tokens = 0;
  double arrival = 0;  // simulated seconds

  // Progress — preserved across evictions for deterministic replay.
  std::vector<std::int32_t> generated;
  std::size_t fed = 0;  // forced tokens already appended to the cache
  int evictions = 0;
  double first_token = -1;  // sim time the first generated token appeared
  double finish = -1;       // sim time the request completed
  // Telemetry only (never read by scheduling decisions): when the current
  // stint of queueing began — arrival at submit, the eviction time after an
  // eviction. Feeds the queue_wait lane span and histogram.
  double wait_from = -1;

  std::size_t forced_size() const { return prompt.size() + generated.size(); }
  std::int32_t forced_at(std::size_t i) const {
    return i < prompt.size() ? prompt[i]
                             : generated[i - prompt.size()];
  }
  bool complete() const { return generated.size() >= max_new_tokens; }
};

/// Aggregate serving statistics over one run.
struct ServingMetrics {
  std::size_t completed = 0;
  std::uint64_t generated_tokens = 0;
  std::uint64_t decode_steps = 0;
  double span = 0;  // first arrival → last completion, simulated seconds
  double tokens_per_s = 0;
  double p50_latency = 0, p99_latency = 0, p999_latency = 0;  // submit → finish
  double p50_first_token = 0, p99_first_token = 0;  // submit → first new token
  double mean_queue_depth = 0;
  std::size_t max_queue_depth = 0;
};

}  // namespace optimus::serving
