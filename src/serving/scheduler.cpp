#include "serving/scheduler.hpp"

#include <algorithm>

#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace optimus::serving {

using tensor::index_t;

namespace {

/// Every rank of a distributed engine runs the identical schedule, so only
/// one may emit per-request telemetry or it would be duplicated p times.
/// Rank 0 carries the flag; a serial engine driven from the host thread
/// (track rank −1) also qualifies.
bool lead_rank() { return obs::current_rank() <= 0; }

}  // namespace

ContinuousBatchScheduler::ContinuousBatchScheduler(index_t slots, index_t capacity)
    : capacity_(capacity), slot_of_(static_cast<std::size_t>(slots), -1) {
  OPT_CHECK(slots >= 1 && capacity >= 1, "scheduler needs slots and capacity");
}

void ContinuousBatchScheduler::submit(Request r) {
  OPT_CHECK(!r.prompt.empty() && r.max_new_tokens >= 1, "empty request " << r.id);
  OPT_CHECK(static_cast<index_t>(r.prompt.size() + r.max_new_tokens) <= capacity_,
            "request " << r.id << " needs " << r.prompt.size() + r.max_new_tokens
                       << " positions, capacity " << capacity_);
  r.fed = 0;  // cache cursor always starts cold in this scheduler's arena
  if (r.wait_from < 0) r.wait_from = r.arrival;
  pool_.push_back(std::move(r));
  queue_.push_back(pool_.size() - 1);
  std::stable_sort(queue_.begin(), queue_.end(), [&](std::size_t a, std::size_t b) {
    if (pool_[a].arrival != pool_[b].arrival) return pool_[a].arrival < pool_[b].arrival;
    return pool_[a].id < pool_[b].id;
  });
}

bool ContinuousBatchScheduler::finished() const {
  return queue_.empty() && active_count() == 0;
}

double ContinuousBatchScheduler::next_arrival() const {
  double t = std::numeric_limits<double>::infinity();
  for (const std::size_t i : queue_) t = std::min(t, pool_[i].arrival);
  return t;
}

bool ContinuousBatchScheduler::admit(double now) {
  last_now_ = now;
  for (std::size_t q = 0; q < queue_.size();) {
    const std::size_t ri = queue_[q];
    if (pool_[ri].arrival > now) break;  // queue is arrival-sorted
    auto free_it = std::find(slot_of_.begin(), slot_of_.end(), -1);
    if (free_it == slot_of_.end()) break;
    *free_it = static_cast<int>(ri);
    queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(q));
    Request& r = pool_[ri];
    if (lead_rank()) {
      const double waited = r.wait_from >= 0 ? now - r.wait_from : 0.0;
      if (obs::enabled()) {
        obs::record_lane_span("request", "queue_wait", r.id, /*depth=*/1,
                              r.wait_from >= 0 ? r.wait_from : now, now);
      }
      if (obs::metrics_enabled()) {
        obs::metrics_observe("serving.queue_wait_s", waited);
        obs::metrics_count("serving.admissions");
      }
      if (obs::flight_enabled()) {
        obs::flight_note("serving", "admit", now, "request=" + std::to_string(r.id));
      }
    }
    r.wait_from = -1;
  }
  return active_count() > 0;
}

void ContinuousBatchScheduler::plan_step(std::vector<std::int32_t>& tokens,
                                         std::vector<std::uint8_t>& active) const {
  tokens.assign(slot_of_.size(), 0);
  active.assign(slot_of_.size(), 0);
  for (std::size_t s = 0; s < slot_of_.size(); ++s) {
    if (slot_of_[s] < 0) continue;
    const Request& r = pool_[static_cast<std::size_t>(slot_of_[s])];
    tokens[s] = r.forced_at(r.fed);
    active[s] = 1;
  }
}

std::vector<index_t> ContinuousBatchScheduler::commit_step(
    const std::vector<std::int32_t>& outputs, double now) {
  OPT_CHECK(outputs.size() == slot_of_.size(), "one output per slot");
  last_now_ = now;
  std::vector<index_t> freed;
  for (std::size_t s = 0; s < slot_of_.size(); ++s) {
    if (slot_of_[s] < 0) continue;
    Request& r = pool_[static_cast<std::size_t>(slot_of_[s])];
    ++r.fed;
    if (r.fed < r.forced_size()) continue;  // still replaying known tokens
    r.generated.push_back(outputs[s]);
    if (r.first_token < 0) r.first_token = now;
    if (r.complete()) {
      r.finish = now;
      if (lead_rank()) {
        if (obs::enabled()) {
          obs::record_lane_span(
              "request", "lifecycle", r.id, /*depth=*/0, r.arrival, now,
              {{"prompt_tokens", obs::Json(static_cast<std::uint64_t>(r.prompt.size()))},
               {"new_tokens", obs::Json(static_cast<std::uint64_t>(r.generated.size()))},
               {"evictions", obs::Json(r.evictions)}});
        }
        if (obs::metrics_enabled()) {
          obs::metrics_observe("serving.request_latency_s", now - r.arrival);
          obs::metrics_observe("serving.first_token_s", r.first_token - r.arrival);
          obs::metrics_count("serving.completed");
          obs::metrics_count("serving.generated_tokens", r.generated.size());
        }
        if (obs::flight_enabled()) {
          obs::flight_note("serving", "complete", now, "request=" + std::to_string(r.id));
        }
      }
      completed_.push_back(r);
      slot_of_[s] = -2;  // tombstone: pool entry consumed
      freed.push_back(static_cast<index_t>(s));
    }
  }
  for (auto& v : slot_of_) {
    if (v == -2) v = -1;
  }
  return freed;
}

void ContinuousBatchScheduler::evict_slot(index_t slot) {
  const int ri = slot_of_[static_cast<std::size_t>(slot)];
  OPT_CHECK(ri >= 0, "slot " << slot << " is not occupied");
  Request& r = pool_[static_cast<std::size_t>(ri)];
  r.fed = 0;
  ++r.evictions;
  // Evictions happen between steps; the step boundary clock is the best
  // available timestamp (clamped so a request evicted before it ever ran
  // doesn't wait "since before it arrived").
  const double t = std::max(last_now_, r.arrival);
  r.wait_from = t;
  if (lead_rank()) {
    if (obs::enabled()) {
      obs::record_lane_span("request", "evict", r.id, /*depth=*/1, t, t,
                            {{"evictions", obs::Json(r.evictions)}});
    }
    if (obs::metrics_enabled()) obs::metrics_count("serving.evictions");
    if (obs::flight_enabled()) {
      obs::flight_note("serving", "evict", t, "request=" + std::to_string(r.id));
    }
  }
  slot_of_[static_cast<std::size_t>(slot)] = -1;
  queue_.push_back(static_cast<std::size_t>(ri));
  std::stable_sort(queue_.begin(), queue_.end(), [&](std::size_t a, std::size_t b) {
    if (pool_[a].arrival != pool_[b].arrival) return pool_[a].arrival < pool_[b].arrival;
    return pool_[a].id < pool_[b].id;
  });
}

void ContinuousBatchScheduler::evict_all() {
  for (std::size_t s = 0; s < slot_of_.size(); ++s) {
    if (slot_of_[s] >= 0) evict_slot(static_cast<index_t>(s));
  }
}

std::size_t ContinuousBatchScheduler::arrived_queued(double now) const {
  std::size_t n = 0;
  for (const std::size_t i : queue_) n += pool_[i].arrival <= now ? 1 : 0;
  return n;
}

index_t ContinuousBatchScheduler::active_count() const {
  index_t n = 0;
  for (const int v : slot_of_) n += v >= 0 ? 1 : 0;
  return n;
}

std::vector<Request> ContinuousBatchScheduler::drain_unfinished() {
  evict_all();
  std::vector<Request> out;
  for (const std::size_t i : queue_) out.push_back(pool_[i]);
  queue_.clear();
  pool_.clear();
  return out;
}

const Request* ContinuousBatchScheduler::request_in_slot(index_t slot) const {
  const int ri = slot_of_[static_cast<std::size_t>(slot)];
  return ri >= 0 ? &pool_[static_cast<std::size_t>(ri)] : nullptr;
}

}  // namespace optimus::serving
