#pragma once

// DecodeEngine: the uniform step interface the serving loop drives, with one
// adapter per execution engine. A step feeds one (global) token per cache
// slot, runs the KV-cached incremental forward, and returns the greedy
// (argmax) next token per slot — replicated on every rank, since the
// scheduler runs identically everywhere and must observe identical outputs.
//
// Argmax assembly per engine:
//   serial    logits are already dense [slots, v]
//   Megatron  local [slots, v/p] vocab slice → all_gather → scan in global
//             vocab order (rank-major = column order, ties break low)
//   Optimus   [slots/q, v/q] block → row all_gather (vocab) → column
//             all_gather (slot blocks) → scan in global vocab order
//
// The scans charge no multiplies and run after the final collective, so a
// decode step's simulated cost is exactly its collectives plus its GEMM
// compute — the closed form perfmodel::predict_decode_step_time models.

#include <cstdint>
#include <vector>

#include "comm/sim_clock.hpp"
#include "core/optimus_model.hpp"
#include "megatron/megatron_model.hpp"
#include "model/kv_cache.hpp"
#include "model/serial_model.hpp"
#include "serving/request.hpp"

namespace optimus::serving {

template <typename T>
class DecodeEngine {
 public:
  virtual ~DecodeEngine() = default;
  virtual tensor::index_t slots() const = 0;
  virtual tensor::index_t capacity() const = 0;
  virtual tensor::index_t vocab() const = 0;
  /// This rank's KV-cache shard footprint (tracked by the memory accountant).
  virtual std::uint64_t cache_bytes() const = 0;
  /// One decode step: tokens/active are the global per-slot vectors (every
  /// rank passes the same). Returns the argmax next token per slot.
  virtual std::vector<std::int32_t> step(const std::vector<std::int32_t>& tokens,
                                         const std::vector<std::uint8_t>& active) = 0;
  /// Frees a cache slot for reuse.
  virtual void reset_slot(tensor::index_t slot) = 0;
  /// Sequence length currently cached in a slot.
  virtual tensor::index_t slot_len(tensor::index_t slot) const = 0;
};

namespace detail {

inline tensor::ITensor to_itensor(const std::vector<std::int32_t>& v) {
  tensor::ITensor t(tensor::Shape{static_cast<tensor::index_t>(v.size())});
  for (std::size_t i = 0; i < v.size(); ++i) t[static_cast<tensor::index_t>(i)] = v[i];
  return t;
}

}  // namespace detail

/// Dense single-device oracle. No communicator drains the compute counter, so
/// the adapter drains it into the supplied clock (when given) after each step
/// — keeping the simulated timeline comparable with the distributed engines.
template <typename T>
class SerialDecodeEngine final : public DecodeEngine<T> {
 public:
  SerialDecodeEngine(model::SerialTransformer<T>& m, tensor::index_t slots,
                     comm::SimClock* clock = nullptr, const comm::CostModel* cost = nullptr)
      : model_(&m), cache_(m.make_kv_cache(slots)), clock_(clock), cost_(cost) {}

  tensor::index_t slots() const override { return cache_.slots(); }
  tensor::index_t capacity() const override { return cache_.capacity(); }
  tensor::index_t vocab() const override { return model_->config().vocab; }
  std::uint64_t cache_bytes() const override { return cache_.footprint_bytes(); }
  void reset_slot(tensor::index_t slot) override { cache_.reset(slot); }
  tensor::index_t slot_len(tensor::index_t slot) const override { return cache_.len(slot); }

  std::vector<std::int32_t> step(const std::vector<std::int32_t>& tokens,
                                 const std::vector<std::uint8_t>& active) override {
    const tensor::ITensor toks = detail::to_itensor(tokens);
    model_->forward_decode(toks, cache_, &active);
    tensor::TensorT<T> logits = model_->lm_logits_decode();  // [slots, v]
    const tensor::index_t n = slots();
    const tensor::index_t v = vocab();
    std::vector<std::int32_t> out(static_cast<std::size_t>(n), 0);
    for (tensor::index_t r = 0; r < n; ++r) {
      const T* row = logits.data() + r * v;
      tensor::index_t best = 0;
      for (tensor::index_t j = 1; j < v; ++j) {
        if (row[j] > row[best]) best = j;
      }
      out[static_cast<std::size_t>(r)] = static_cast<std::int32_t>(best);
    }
    if (clock_ != nullptr && cost_ != nullptr) clock_->drain_compute(*cost_);
    return out;
  }

 private:
  model::SerialTransformer<T>* model_;
  model::KvCacheT<T> cache_;
  comm::SimClock* clock_;
  const comm::CostModel* cost_;
};

/// Megatron 1D: cache is column-sharded over heads, logits over vocab.
template <typename T>
class MegatronDecodeEngine final : public DecodeEngine<T> {
 public:
  MegatronDecodeEngine(megatron::MegatronTransformer<T>& m, comm::Communicator& comm,
                       tensor::index_t slots)
      : model_(&m), comm_(&comm), cache_(m.make_kv_cache(slots)) {}

  tensor::index_t slots() const override { return cache_.slots(); }
  tensor::index_t capacity() const override { return cache_.capacity(); }
  tensor::index_t vocab() const override { return model_->config().vocab; }
  std::uint64_t cache_bytes() const override { return cache_.footprint_bytes(); }
  void reset_slot(tensor::index_t slot) override { cache_.reset(slot); }
  tensor::index_t slot_len(tensor::index_t slot) const override { return cache_.len(slot); }

  std::vector<std::int32_t> step(const std::vector<std::int32_t>& tokens,
                                 const std::vector<std::uint8_t>& active) override {
    const tensor::ITensor toks = detail::to_itensor(tokens);
    model_->forward_decode(toks, cache_, &active);
    tensor::TensorT<T> local = model_->lm_logits_decode_local();  // [slots, v/p]
    const tensor::index_t n = slots();
    const tensor::index_t vl = model_->vocab_per_rank();
    const int p = comm_->size();
    std::vector<T> all(static_cast<std::size_t>(p) * static_cast<std::size_t>(n * vl));
    comm_->all_gather(local.data(), n * vl, all.data());
    std::vector<std::int32_t> out(static_cast<std::size_t>(n), 0);
    for (tensor::index_t r = 0; r < n; ++r) {
      T best_v{};
      tensor::index_t best = -1;
      for (int k = 0; k < p; ++k) {
        const T* blk = all.data() + (static_cast<std::size_t>(k) * n + r) * vl;
        for (tensor::index_t j = 0; j < vl; ++j) {
          if (best < 0 || blk[j] > best_v) {
            best_v = blk[j];
            best = static_cast<tensor::index_t>(k) * vl + j;
          }
        }
      }
      out[static_cast<std::size_t>(r)] = static_cast<std::int32_t>(best);
    }
    return out;
  }

 private:
  megatron::MegatronTransformer<T>* model_;
  comm::Communicator* comm_;
  model::KvCacheT<T> cache_;
};

/// Optimus 2D: cache is row-split over slots and column-split over heads;
/// logits come back as q×q blocks and are assembled with one all-gather per
/// mesh dimension.
template <typename T>
class OptimusDecodeEngine final : public DecodeEngine<T> {
 public:
  OptimusDecodeEngine(core::OptimusTransformer<T>& m, tensor::index_t slots_global)
      : model_(&m), cache_(m.make_kv_cache(slots_global)), slots_global_(slots_global) {}

  tensor::index_t slots() const override { return slots_global_; }
  tensor::index_t capacity() const override { return cache_.capacity(); }
  tensor::index_t vocab() const override { return model_->config().vocab; }
  std::uint64_t cache_bytes() const override { return cache_.footprint_bytes(); }
  void reset_slot(tensor::index_t slot) override {
    // Global slot → this row's local shard (other rows' shards hold other
    // slot blocks; each rank resets only what it owns).
    const tensor::index_t nl = cache_.slots();
    const tensor::index_t row = static_cast<tensor::index_t>(model_->mesh().row());
    if (slot / nl == row) cache_.reset(slot % nl);
  }
  tensor::index_t slot_len(tensor::index_t slot) const override {
    const tensor::index_t nl = cache_.slots();
    const tensor::index_t row = static_cast<tensor::index_t>(model_->mesh().row());
    OPT_CHECK(slot / nl == row, "slot " << slot << " not hosted by mesh row " << row);
    return cache_.len(slot % nl);
  }

  std::vector<std::int32_t> step(const std::vector<std::int32_t>& tokens,
                                 const std::vector<std::uint8_t>& active) override {
    const tensor::ITensor toks = detail::to_itensor(tokens);
    model_->forward_decode(toks, cache_, &active);
    tensor::TensorT<T> block = model_->lm_logits_decode_block();  // [slots/q, v/q]
    const tensor::index_t q = model_->q();
    const tensor::index_t nl = cache_.slots();
    const tensor::index_t vq = model_->vocab_local();
    // Vocab direction (mesh row), then slot-block direction (mesh column).
    std::vector<T> row_all(static_cast<std::size_t>(q * nl * vq));
    model_->mesh().row_comm().all_gather(block.data(), nl * vq, row_all.data());
    std::vector<T> all(static_cast<std::size_t>(q * q * nl * vq));
    model_->mesh().col_comm().all_gather(row_all.data(), q * nl * vq, all.data());
    std::vector<std::int32_t> out(static_cast<std::size_t>(slots_global_), 0);
    for (tensor::index_t g = 0; g < slots_global_; ++g) {
      const tensor::index_t i = g / nl;   // slot block (mesh row)
      const tensor::index_t r = g % nl;
      T best_v{};
      tensor::index_t best = -1;
      for (tensor::index_t j = 0; j < q; ++j) {  // vocab block (mesh col)
        const T* blk = all.data() + ((i * q + j) * nl + r) * vq;
        for (tensor::index_t jj = 0; jj < vq; ++jj) {
          if (best < 0 || blk[jj] > best_v) {
            best_v = blk[jj];
            best = j * vq + jj;
          }
        }
      }
      out[static_cast<std::size_t>(g)] = static_cast<std::int32_t>(best);
    }
    return out;
  }

 private:
  core::OptimusTransformer<T>* model_;
  model::KvCacheT<T> cache_;
  tensor::index_t slots_global_;
};

}  // namespace optimus::serving
