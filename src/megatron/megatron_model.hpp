#pragma once

// Megatron-style 1D tensor-parallel Transformer (the paper's baseline, §2.2).
//
// Every one of the p devices holds the *full* activations [b·s, h]; weight
// matrices are split one-dimensionally:
//
//   W_qkv [h, 3h]   column-split → each device computes its n/p heads locally
//   W_proj [h, h]   row-split    → partial outputs, summed by all-reduce
//   W_fc1 [h, 4h]   column-split
//   W_fc2 [4h, h]   row-split    → partial outputs, summed by all-reduce
//   embedding [v,h] vocab-split (rows) with an all-reduce to assemble
//   layernorms, biases after all-reduce, positional embedding, classifier —
//   replicated (their gradients are computed from replicated activations and
//   stay bit-identical across devices in this deterministic runtime).
//
// Communication per layer: 2 all-reduces of b·s·h in forward (one per block
// output) and 2 in backward (one per block input), exactly the Table-1
// 4(p−1)/p·bsh and 8(p−1)/p·bsh terms once checkpoint recomputation is
// counted. Activation checkpointing (store layer inputs, recompute in
// backward) is on by default to match the paper's setting.
//
// The lm-head is weight-tied to the vocab-parallel embedding; the token-wise
// loss is a vocab-parallel cross-entropy (max / sum-exp / label-term
// all-reduces), mirroring Megatron-LM's implementation.

#include <vector>

#include "comm/communicator.hpp"
#include "model/config.hpp"
#include "model/kv_cache.hpp"
#include "tensor/ops.hpp"
#include "tensor/tensor.hpp"

namespace optimus::megatron {

template <typename T>
class MegatronTransformer {
 public:
  /// Collective: all ranks of `comm` construct together. `checkpoint` selects
  /// activation checkpointing (recompute in backward).
  MegatronTransformer(const model::TransformerConfig& cfg, comm::Communicator& comm,
                      bool checkpoint = true);

  const model::TransformerConfig& config() const { return cfg_; }
  int p() const { return comm_->size(); }

  /// Stem forward on tokens [b, s]; returns the (replicated) final hidden
  /// states [b·s, h] after the final layernorm.
  const tensor::TensorT<T>& forward(const tensor::ITensor& tokens);

  /// Vocab-parallel LM loss (identical on every rank). Labels [b, s].
  T lm_loss(const tensor::ITensor& labels);
  void backward_lm();

  /// Classification branch (replicated head over the first token).
  T cls_loss(const tensor::ITensor& labels);
  void backward_cls();

  void zero_grads();

  /// Local parameter / gradient tensors, fixed order (same as names()).
  std::vector<tensor::TensorT<T>*> parameters();
  std::vector<tensor::TensorT<T>*> gradients();

  /// Gradient w.r.t. the embedding output [b·s, h] (replicated).
  const tensor::TensorT<T>& input_grad() const { return d_x0_; }

  /// This rank's slice bounds of the vocab dimension.
  tensor::index_t vocab_begin() const { return comm_->rank() * cfg_.vocab / p(); }
  tensor::index_t vocab_per_rank() const { return cfg_.vocab / p(); }
  tensor::index_t heads_local() const { return heads_local_; }

  // -- incremental decode ----------------------------------------------------

  /// This rank's KV-cache shard: column-sharded heads (n/p per rank), all
  /// slots present, `seq_len` capacity.
  model::KvCacheT<T> make_kv_cache(tensor::index_t slots) const {
    return model::KvCacheT<T>(cfg_.layers, slots, cfg_.seq_len, heads_local_, cfg_.head_dim());
  }

  /// One decode step (collective): tokens [slots] replicated across ranks,
  /// one new token per cache slot at position cache.len(slot). Reuses the
  /// layer all-reduces (ordered fold, so the result is bitwise identical to
  /// the matching rows of forward() on the full prefix), appends this step's
  /// K/V, advances active slots (null = all), and returns the replicated
  /// hidden states [slots, h].
  const tensor::TensorT<T>& forward_decode(const tensor::ITensor& tokens,
                                           model::KvCacheT<T>& cache,
                                           const std::vector<std::uint8_t>* active = nullptr);

  /// This rank's vocab slice of the lm-head logits [slots, v/p] from the last
  /// forward_decode() (allocates). Column j is global vocab vocab_begin()+j.
  tensor::TensorT<T> lm_logits_decode_local();

  // Local parameter access for equivalence tests.
  struct Layer {
    tensor::TensorT<T> ln1_g, ln1_b, ln2_g, ln2_b;  // [h] replicated
    tensor::TensorT<T> qkv_w, qkv_b;                // [h, 3h/p], [3h/p]
    tensor::TensorT<T> proj_w;                      // [h/p, h]
    tensor::TensorT<T> proj_b;                      // [h] replicated
    tensor::TensorT<T> fc1_w, fc1_b;                // [h, 4h/p], [4h/p]
    tensor::TensorT<T> fc2_w;                       // [4h/p, h]
    tensor::TensorT<T> fc2_b;                       // [h] replicated
  };
  Layer& layer(tensor::index_t i) { return layers_[i]; }
  Layer& layer_grad(tensor::index_t i) { return grads_[i]; }
  tensor::TensorT<T>& embedding() { return embedding_; }          // [v/p, h]
  tensor::TensorT<T>& embedding_grad() { return d_embedding_; }

 private:
  struct LayerActs {
    tensor::TensorT<T> input;  // [bs, h] — always kept (checkpoint)
    // The rest is populated in forward (no checkpointing) or recomputed.
    tensor::TensorT<T> ln1_xhat, ln1_istd, ln1_out;
    tensor::TensorT<T> qkv;    // [bs, 3h/p]
    tensor::TensorT<T> probs;  // [b·n/p, s, s]
    tensor::TensorT<T> ctx;    // [bs, h/p]
    tensor::TensorT<T> x1;     // [bs, h]
    tensor::TensorT<T> ln2_xhat, ln2_istd, ln2_out;
    tensor::TensorT<T> fc1_out, gelu_out;  // [bs, 4h/p]
    bool full = false;  // whether the non-checkpoint fields are valid
  };

  void init_parameters();
  /// Computes everything after `input` for layer l into `a` and returns the
  /// layer output.
  tensor::TensorT<T> layer_forward(tensor::index_t l, LayerActs& a);
  /// Backward through layer l; returns grad w.r.t. the layer input.
  tensor::TensorT<T> layer_backward(tensor::index_t l, LayerActs& a,
                                    const tensor::TensorT<T>& dout);
  void backward_stem(tensor::TensorT<T> d_hidden);
  tensor::TensorT<T> embed(const tensor::ITensor& tokens);

  model::TransformerConfig cfg_;
  comm::Communicator* comm_;
  bool checkpoint_;
  tensor::index_t heads_local_;
  tensor::index_t qkv_cols_;  // 3h/p
  tensor::index_t ffn_local_;

  // Parameters and grads.
  tensor::TensorT<T> embedding_, d_embedding_;           // [v/p, h]
  tensor::TensorT<T> pos_embedding_, d_pos_embedding_;   // [s, h] replicated
  std::vector<Layer> layers_, grads_;
  tensor::TensorT<T> final_ln_g_, final_ln_b_, d_final_ln_g_, d_final_ln_b_;
  tensor::TensorT<T> cls_w_, cls_b_, d_cls_w_, d_cls_b_;  // replicated

  // Forward state.
  tensor::ITensor tokens_;
  tensor::TensorT<T> x0_;
  std::vector<LayerActs> acts_;
  tensor::TensorT<T> stem_out_, final_xhat_, final_istd_, hidden_;
  tensor::TensorT<T> d_x0_;
  tensor::TensorT<T> decode_hidden_;  // [slots, h], last forward_decode()

  // Loss state.
  tensor::TensorT<T> lm_exp_;      // [bs, v/p] exp(logits − m)
  tensor::TensorT<T> lm_inv_z_;    // [bs]
  tensor::ITensor lm_labels_;
  tensor::index_t lm_active_ = 0;
  tensor::TensorT<T> cls_probs_, cls_pooled_;
  tensor::ITensor cls_labels_;
};

}  // namespace optimus::megatron
