#include "megatron/megatron_model.hpp"

#include <cmath>

#include "model/attention.hpp"
#include "model/param_init.hpp"
#include "tensor/parallel.hpp"

namespace optimus::megatron {

namespace {

using tensor::index_t;
using tensor::ITensor;
using tensor::Shape;
using tensor::TensorT;
namespace ops = tensor::ops;
using model::LayerWeight;

}  // namespace

template <typename T>
MegatronTransformer<T>::MegatronTransformer(const model::TransformerConfig& cfg,
                                            comm::Communicator& comm, bool checkpoint)
    : cfg_(cfg), comm_(&comm), checkpoint_(checkpoint) {
  cfg_.validate_for_1d(comm.size());
  heads_local_ = cfg_.heads / p();
  qkv_cols_ = 3 * cfg_.hidden / p();
  ffn_local_ = cfg_.ffn_hidden() / p();
  init_parameters();
}

template <typename T>
void MegatronTransformer<T>::init_parameters() {
  const index_t h = cfg_.hidden;
  const index_t f = cfg_.ffn_hidden();
  const index_t v = cfg_.vocab;
  const index_t s = cfg_.seq_len;
  const index_t c = cfg_.num_classes;
  const int rank = comm_->rank();
  const util::CounterRng rng(cfg_.seed);
  const T scale = static_cast<T>(cfg_.init_scale);

  // Vocab-parallel embedding: rows [rank·v/p, (rank+1)·v/p).
  embedding_ = TensorT<T>(Shape{v / p(), h});
  ops::fill_counter_uniform(embedding_, rng, model::kEmbeddingStream, scale,
                            rank * (v / p()), 0, h);
  d_embedding_ = TensorT<T>::zeros(embedding_.shape());
  pos_embedding_ = TensorT<T>(Shape{s, h});
  ops::fill_counter_uniform(pos_embedding_, rng, model::kPosEmbeddingStream, scale, 0, 0, h);
  d_pos_embedding_ = TensorT<T>::zeros(pos_embedding_.shape());

  layers_.resize(cfg_.layers);
  grads_.resize(cfg_.layers);
  for (index_t l = 0; l < cfg_.layers; ++l) {
    Layer& lp = layers_[l];
    lp.ln1_g = TensorT<T>::full(Shape{h}, T{1});
    lp.ln1_b = TensorT<T>::zeros(Shape{h});
    lp.ln2_g = TensorT<T>::full(Shape{h}, T{1});
    lp.ln2_b = TensorT<T>::zeros(Shape{h});
    // Column-split QKV: global columns [rank·3h/p, (rank+1)·3h/p) — whole
    // heads thanks to the head-major layout.
    lp.qkv_w = TensorT<T>(Shape{h, qkv_cols_});
    ops::fill_counter_uniform(lp.qkv_w, rng, model::layer_weight_stream(l, LayerWeight::kQkv),
                              scale, 0, rank * qkv_cols_, 3 * h);
    lp.qkv_b = TensorT<T>::zeros(Shape{qkv_cols_});
    // Row-split projection: global rows [rank·h/p, ...).
    lp.proj_w = TensorT<T>(Shape{h / p(), h});
    ops::fill_counter_uniform(lp.proj_w, rng,
                              model::layer_weight_stream(l, LayerWeight::kProj), scale,
                              rank * (h / p()), 0, h);
    lp.proj_b = TensorT<T>::zeros(Shape{h});
    lp.fc1_w = TensorT<T>(Shape{h, ffn_local_});
    ops::fill_counter_uniform(lp.fc1_w, rng, model::layer_weight_stream(l, LayerWeight::kFc1),
                              scale, 0, rank * ffn_local_, f);
    lp.fc1_b = TensorT<T>::zeros(Shape{ffn_local_});
    lp.fc2_w = TensorT<T>(Shape{ffn_local_, h});
    ops::fill_counter_uniform(lp.fc2_w, rng, model::layer_weight_stream(l, LayerWeight::kFc2),
                              scale, rank * ffn_local_, 0, h);
    lp.fc2_b = TensorT<T>::zeros(Shape{h});

    Layer& lg = grads_[l];
    lg.ln1_g = TensorT<T>::zeros(Shape{h});
    lg.ln1_b = TensorT<T>::zeros(Shape{h});
    lg.ln2_g = TensorT<T>::zeros(Shape{h});
    lg.ln2_b = TensorT<T>::zeros(Shape{h});
    lg.qkv_w = TensorT<T>::zeros(lp.qkv_w.shape());
    lg.qkv_b = TensorT<T>::zeros(lp.qkv_b.shape());
    lg.proj_w = TensorT<T>::zeros(lp.proj_w.shape());
    lg.proj_b = TensorT<T>::zeros(lp.proj_b.shape());
    lg.fc1_w = TensorT<T>::zeros(lp.fc1_w.shape());
    lg.fc1_b = TensorT<T>::zeros(lp.fc1_b.shape());
    lg.fc2_w = TensorT<T>::zeros(lp.fc2_w.shape());
    lg.fc2_b = TensorT<T>::zeros(lp.fc2_b.shape());
  }

  final_ln_g_ = TensorT<T>::full(Shape{h}, T{1});
  final_ln_b_ = TensorT<T>::zeros(Shape{h});
  d_final_ln_g_ = TensorT<T>::zeros(Shape{h});
  d_final_ln_b_ = TensorT<T>::zeros(Shape{h});
  cls_w_ = TensorT<T>(Shape{h, c});
  ops::fill_counter_uniform(cls_w_, rng, model::kClsHeadStream, scale, 0, 0, c);
  cls_b_ = TensorT<T>::zeros(Shape{c});
  d_cls_w_ = TensorT<T>::zeros(Shape{h, c});
  d_cls_b_ = TensorT<T>::zeros(Shape{c});
}

template <typename T>
TensorT<T> MegatronTransformer<T>::embed(const ITensor& tokens) {
  const index_t h = cfg_.hidden;
  const index_t bs = cfg_.tokens_per_batch();
  const index_t v_begin = vocab_begin();
  const index_t v_local = vocab_per_rank();
  // Each rank contributes rows for tokens in its vocab slice; the all-reduce
  // assembles the full embedding (Megatron's VocabParallelEmbedding).
  TensorT<T> x = TensorT<T>::zeros(Shape{bs, h});
  for (index_t r = 0; r < bs; ++r) {
    const index_t tok = tokens[r];
    if (tok >= v_begin && tok < v_begin + v_local) {
      std::memcpy(x.data() + r * h, embedding_.data() + (tok - v_begin) * h,
                  static_cast<std::size_t>(h) * sizeof(T));
    }
  }
  comm_->all_reduce(x);
  // Positional embedding is replicated.
  for (index_t bi = 0; bi < cfg_.batch; ++bi) {
    for (index_t t = 0; t < cfg_.seq_len; ++t) {
      T* row = x.data() + (bi * cfg_.seq_len + t) * h;
      const T* pos = pos_embedding_.data() + t * h;
      for (index_t j = 0; j < h; ++j) row[j] += pos[j];
    }
  }
  return x;
}

template <typename T>
TensorT<T> MegatronTransformer<T>::layer_forward(index_t l, LayerActs& a) {
  const index_t h = cfg_.hidden;
  const index_t bs = cfg_.tokens_per_batch();
  const T eps = static_cast<T>(cfg_.layernorm_eps);
  Layer& p = layers_[l];

  a.ln1_out = TensorT<T>(Shape{bs, h});
  a.ln1_xhat = TensorT<T>(Shape{bs, h});
  a.ln1_istd = TensorT<T>(Shape{bs});
  ops::layernorm_forward(a.input, p.ln1_g, p.ln1_b, eps, a.ln1_out, a.ln1_xhat, a.ln1_istd);

  // Column-parallel QKV: no reduce between the GEMM and its bias, so the
  // bias fuses into the GEMM epilogue.
  a.qkv = TensorT<T>(Shape{bs, qkv_cols_});
  ops::gemm_bias(a.qkv, a.ln1_out, p.qkv_w, p.qkv_b);

  a.ctx = TensorT<T>(Shape{bs, h / this->p()});
  a.probs = TensorT<T>(Shape{cfg_.batch * heads_local_, cfg_.seq_len, cfg_.seq_len});
  model::attention_forward(a.qkv, cfg_.batch, cfg_.seq_len, heads_local_, cfg_.head_dim(),
                           cfg_.causal, a.ctx, a.probs);

  // Row-parallel projection: partial result then all-reduce (the paper's
  // forward g-operator). The bias must apply once, *after* the reduce, so it
  // cannot fuse into the local GEMM — bias+residual fuse into one pass.
  a.x1 = TensorT<T>(Shape{bs, h});
  ops::gemm(a.x1, a.ctx, p.proj_w);
  comm_->all_reduce_ordered(a.x1);  // ordered fold: decode must match prefill
  ops::bias_residual_(a.x1, p.proj_b, a.input);

  a.ln2_out = TensorT<T>(Shape{bs, h});
  a.ln2_xhat = TensorT<T>(Shape{bs, h});
  a.ln2_istd = TensorT<T>(Shape{bs});
  ops::layernorm_forward(a.x1, p.ln2_g, p.ln2_b, eps, a.ln2_out, a.ln2_xhat, a.ln2_istd);

  // Column-parallel fc1: bias+GELU fused into the GEMM epilogue (fc1_out
  // keeps the biased pre-activation for backward).
  a.fc1_out = TensorT<T>(Shape{bs, ffn_local_});
  a.gelu_out = TensorT<T>(Shape{bs, ffn_local_});
  ops::gemm_bias_gelu(a.gelu_out, a.fc1_out, a.ln2_out, p.fc1_w, p.fc1_b);

  // Row-parallel fc2: reduce first, then fused bias+residual.
  TensorT<T> out(Shape{bs, h});
  ops::gemm(out, a.gelu_out, p.fc2_w);
  comm_->all_reduce_ordered(out);  // ordered fold: decode must match prefill
  ops::bias_residual_(out, p.fc2_b, a.x1);
  a.full = true;
  return out;
}

template <typename T>
TensorT<T> MegatronTransformer<T>::layer_backward(index_t l, LayerActs& a,
                                                  const TensorT<T>& dout) {
  const index_t h = cfg_.hidden;
  const index_t bs = cfg_.tokens_per_batch();
  Layer& p = layers_[l];
  Layer& g = grads_[l];

  // MLP block.
  TensorT<T> dg(Shape{bs, ffn_local_});
  ops::gemm(dg, dout, p.fc2_w, ops::Trans::No, ops::Trans::Yes);
  ops::gemm(g.fc2_w, a.gelu_out, dout, ops::Trans::Yes, ops::Trans::No, T{1}, T{1});
  ops::bias_grad(dout, g.fc2_b, /*accumulate=*/true);
  TensorT<T> dm1(Shape{bs, ffn_local_});
  ops::gelu_backward(a.fc1_out, dg, dm1, /*accumulate=*/false);
  TensorT<T> dln2(Shape{bs, h});
  ops::gemm(dln2, dm1, p.fc1_w, ops::Trans::No, ops::Trans::Yes);
  comm_->all_reduce(dln2);  // backward f-operator of the column-parallel fc1
  ops::gemm(g.fc1_w, a.ln2_out, dm1, ops::Trans::Yes, ops::Trans::No, T{1}, T{1});
  ops::bias_grad(dm1, g.fc1_b, /*accumulate=*/true);
  TensorT<T> dx1(Shape{bs, h});
  ops::layernorm_backward(a.ln2_xhat, a.ln2_istd, p.ln2_g, dln2, dx1, g.ln2_g, g.ln2_b, true);
  ops::add_(dx1, dout);

  // Attention block.
  TensorT<T> dctx(Shape{bs, h / this->p()});
  ops::gemm(dctx, dx1, p.proj_w, ops::Trans::No, ops::Trans::Yes);
  ops::gemm(g.proj_w, a.ctx, dx1, ops::Trans::Yes, ops::Trans::No, T{1}, T{1});
  ops::bias_grad(dx1, g.proj_b, /*accumulate=*/true);
  TensorT<T> dqkv(Shape{bs, qkv_cols_});
  model::attention_backward(a.qkv, a.probs, dctx, cfg_.batch, cfg_.seq_len, heads_local_,
                            cfg_.head_dim(), dqkv);
  TensorT<T> dln1(Shape{bs, h});
  ops::gemm(dln1, dqkv, p.qkv_w, ops::Trans::No, ops::Trans::Yes);
  comm_->all_reduce(dln1);  // backward f-operator of the column-parallel qkv
  ops::gemm(g.qkv_w, a.ln1_out, dqkv, ops::Trans::Yes, ops::Trans::No, T{1}, T{1});
  ops::bias_grad(dqkv, g.qkv_b, /*accumulate=*/true);
  TensorT<T> din(Shape{bs, h});
  ops::layernorm_backward(a.ln1_xhat, a.ln1_istd, p.ln1_g, dln1, din, g.ln1_g, g.ln1_b, true);
  ops::add_(din, dx1);
  return din;
}

template <typename T>
const TensorT<T>& MegatronTransformer<T>::forward(const ITensor& tokens) {
  OPT_CHECK(tokens.numel() == cfg_.tokens_per_batch(), "tokens must be [b, s]");
  tokens_ = tokens.clone();
  x0_ = embed(tokens_);

  acts_.clear();
  acts_.resize(cfg_.layers);
  TensorT<T> x = x0_;
  for (index_t l = 0; l < cfg_.layers; ++l) {
    acts_[l].input = x.clone();
    x = layer_forward(l, acts_[l]);
    if (checkpoint_) {
      // Keep only the checkpointed input; drop intermediate activations.
      LayerActs fresh;
      fresh.input = acts_[l].input;
      acts_[l] = std::move(fresh);
    }
  }
  stem_out_ = x;

  const index_t bs = cfg_.tokens_per_batch();
  hidden_ = TensorT<T>(Shape{bs, cfg_.hidden});
  final_xhat_ = TensorT<T>(Shape{bs, cfg_.hidden});
  final_istd_ = TensorT<T>(Shape{bs});
  ops::layernorm_forward(stem_out_, final_ln_g_, final_ln_b_,
                         static_cast<T>(cfg_.layernorm_eps), hidden_, final_xhat_,
                         final_istd_);
  return hidden_;
}

template <typename T>
const TensorT<T>& MegatronTransformer<T>::forward_decode(
    const ITensor& tokens, model::KvCacheT<T>& cache,
    const std::vector<std::uint8_t>* active) {
  const index_t n = tokens.numel();  // cache slots
  const index_t h = cfg_.hidden;
  const T eps = static_cast<T>(cfg_.layernorm_eps);
  const index_t v_begin = vocab_begin();
  const index_t v_local = vocab_per_rank();
  OPT_CHECK(n == cache.slots(), "decode tokens must be one per cache slot");
  OPT_CHECK(cache.layers() == cfg_.layers && cache.heads() == heads_local_ &&
                cache.head_dim() == cfg_.head_dim(),
            "kv cache does not match this rank's shard");

  // Vocab-parallel embedding of the single new position per slot. The ring
  // all-reduce is fine here: contributions are disjoint (one rank's row plus
  // zeros), so any fold order yields the same bits — exactly as in prefill.
  TensorT<T> x = TensorT<T>::zeros(Shape{n, h});
  for (index_t r = 0; r < n; ++r) {
    const index_t tok = tokens[r];
    if (tok >= v_begin && tok < v_begin + v_local) {
      std::memcpy(x.data() + r * h, embedding_.data() + (tok - v_begin) * h,
                  static_cast<std::size_t>(h) * sizeof(T));
    }
  }
  comm_->all_reduce(x);
  for (index_t r = 0; r < n; ++r) {
    const index_t t = cache.len(r);
    OPT_CHECK(t < cfg_.seq_len, "decode position " << t << " past seq_len " << cfg_.seq_len);
    T* row = x.data() + r * h;
    const T* pos = pos_embedding_.data() + t * h;
    for (index_t j = 0; j < h; ++j) row[j] += pos[j];
  }

  // Same per-layer sequence as layer_forward(), one row per slot; the two
  // row-parallel all-reduces use the ordered fold so decode rows match the
  // prefill rows bitwise. Buffers reused across layers; nothing retained.
  TensorT<T> ln_out(Shape{n, h}), xhat(Shape{n, h}), istd(Shape{n});
  TensorT<T> qkv(Shape{n, qkv_cols_}), ctx(Shape{n, h / p()}), x1(Shape{n, h});
  TensorT<T> fc1_out(Shape{n, ffn_local_}), gelu_out(Shape{n, ffn_local_});
  for (index_t l = 0; l < cfg_.layers; ++l) {
    Layer& p = layers_[l];
    ops::layernorm_forward(x, p.ln1_g, p.ln1_b, eps, ln_out, xhat, istd);
    ops::gemm_bias(qkv, ln_out, p.qkv_w, p.qkv_b);
    model::attention_decode(qkv, n, heads_local_, cfg_.head_dim(), cache, l, ctx);
    ops::gemm(x1, ctx, p.proj_w);
    comm_->all_reduce_ordered(x1);
    ops::bias_residual_(x1, p.proj_b, x);
    ops::layernorm_forward(x1, p.ln2_g, p.ln2_b, eps, ln_out, xhat, istd);
    ops::gemm_bias_gelu(gelu_out, fc1_out, ln_out, p.fc1_w, p.fc1_b);
    ops::gemm(x, gelu_out, p.fc2_w);
    comm_->all_reduce_ordered(x);
    ops::bias_residual_(x, p.fc2_b, x1);
  }
  decode_hidden_ = TensorT<T>(Shape{n, h});
  ops::layernorm_forward(x, final_ln_g_, final_ln_b_, eps, decode_hidden_, xhat, istd);
  cache.advance(active);
  return decode_hidden_;
}

template <typename T>
TensorT<T> MegatronTransformer<T>::lm_logits_decode_local() {
  OPT_CHECK(decode_hidden_.defined(), "call forward_decode() first");
  return ops::matmul(decode_hidden_, embedding_, ops::Trans::No, ops::Trans::Yes);
}

template <typename T>
T MegatronTransformer<T>::lm_loss(const ITensor& labels) {
  OPT_CHECK(hidden_.defined(), "call forward() first");
  OPT_CHECK(labels.numel() == cfg_.tokens_per_batch(), "labels must be [b, s]");
  lm_labels_ = labels.clone();
  const index_t bs = cfg_.tokens_per_batch();
  const index_t v_local = vocab_per_rank();
  const index_t v_begin = vocab_begin();

  // Local logits against this rank's vocab slice (tied weights).
  TensorT<T> logits = ops::matmul(hidden_, embedding_, ops::Trans::No, ops::Trans::Yes);

  // Vocab-parallel softmax statistics.
  TensorT<T> m(Shape{bs});
  tensor::parallel_rows(bs, v_local, [&](index_t r0, index_t r1) {
    for (index_t r = r0; r < r1; ++r) {
      T mx = logits[r * v_local];
      for (index_t j = 1; j < v_local; ++j) mx = std::max(mx, logits[r * v_local + j]);
      m[r] = mx;
    }
  });
  comm_->all_reduce_max(m);
  lm_exp_ = TensorT<T>(logits.shape());
  TensorT<T> z(Shape{bs});
  tensor::parallel_rows(bs, v_local, [&](index_t r0, index_t r1) {
    for (index_t r = r0; r < r1; ++r) {
      T sum{0};
      for (index_t j = 0; j < v_local; ++j) {
        const T e = std::exp(logits[r * v_local + j] - m[r]);
        lm_exp_[r * v_local + j] = e;
        sum += e;
      }
      z[r] = sum;
    }
  });
  comm_->all_reduce(z);
  // Label term: exactly one rank owns each label column.
  TensorT<T> xl = TensorT<T>::zeros(Shape{bs});
  lm_active_ = 0;
  for (index_t r = 0; r < bs; ++r) {
    const index_t label = lm_labels_[r];
    if (label < 0) continue;
    ++lm_active_;
    if (label >= v_begin && label < v_begin + v_local) {
      xl[r] = logits[r * v_local + (label - v_begin)];
    }
  }
  comm_->all_reduce(xl);

  lm_inv_z_ = TensorT<T>(Shape{bs});
  T loss{0};
  for (index_t r = 0; r < bs; ++r) {
    lm_inv_z_[r] = T{1} / z[r];
    if (lm_labels_[r] >= 0) loss += std::log(z[r]) + m[r] - xl[r];
  }
  return lm_active_ > 0 ? loss / static_cast<T>(lm_active_) : T{0};
}

template <typename T>
void MegatronTransformer<T>::backward_lm() {
  OPT_CHECK(lm_exp_.defined(), "call lm_loss() first");
  const index_t bs = cfg_.tokens_per_batch();
  const index_t v_local = vocab_per_rank();
  const index_t v_begin = vocab_begin();
  const T scale = lm_active_ > 0 ? T{1} / static_cast<T>(lm_active_) : T{0};

  TensorT<T> dlogits(Shape{bs, v_local});
  tensor::parallel_rows(bs, v_local, [&](index_t r0, index_t r1) {
    for (index_t r = r0; r < r1; ++r) {
      const index_t label = lm_labels_[r];
      T* row = dlogits.data() + r * v_local;
      if (label < 0) {
        std::fill(row, row + v_local, T{0});
        continue;
      }
      const T* erow = lm_exp_.data() + r * v_local;
      for (index_t j = 0; j < v_local; ++j) row[j] = scale * erow[j] * lm_inv_z_[r];
      if (label >= v_begin && label < v_begin + v_local) row[label - v_begin] -= scale;
    }
  });
  // dX partial from this vocab slice, then all-reduce.
  TensorT<T> d_hidden(Shape{bs, cfg_.hidden});
  ops::gemm(d_hidden, dlogits, embedding_);
  comm_->all_reduce(d_hidden);
  // Tied-weight gradient into the local embedding slice.
  ops::gemm(d_embedding_, dlogits, hidden_, ops::Trans::Yes, ops::Trans::No, T{1}, T{1});
  backward_stem(std::move(d_hidden));
}

template <typename T>
T MegatronTransformer<T>::cls_loss(const ITensor& labels) {
  OPT_CHECK(hidden_.defined(), "call forward() first");
  OPT_CHECK(labels.numel() == cfg_.batch, "cls labels must be [b]");
  cls_labels_ = labels.clone();
  const index_t b = cfg_.batch;
  const index_t h = cfg_.hidden;
  cls_pooled_ = TensorT<T>(Shape{b, h});
  for (index_t bi = 0; bi < b; ++bi) {
    std::memcpy(cls_pooled_.data() + bi * h, hidden_.data() + bi * cfg_.seq_len * h,
                static_cast<std::size_t>(h) * sizeof(T));
  }
  TensorT<T> logits(Shape{b, cfg_.num_classes});
  ops::gemm_bias(logits, cls_pooled_, cls_w_, cls_b_);
  cls_probs_ = TensorT<T>(logits.shape());
  return ops::cross_entropy_forward(logits, cls_labels_, cls_probs_);
}

template <typename T>
void MegatronTransformer<T>::backward_cls() {
  OPT_CHECK(cls_probs_.defined(), "call cls_loss() first");
  const index_t b = cfg_.batch;
  const index_t h = cfg_.hidden;
  TensorT<T> dlogits(cls_probs_.shape());
  ops::cross_entropy_backward(cls_probs_, cls_labels_, T{1} / static_cast<T>(b), dlogits);
  ops::gemm(d_cls_w_, cls_pooled_, dlogits, ops::Trans::Yes, ops::Trans::No, T{1}, T{1});
  ops::bias_grad(dlogits, d_cls_b_, true);
  TensorT<T> d_pooled(Shape{b, h});
  ops::gemm(d_pooled, dlogits, cls_w_, ops::Trans::No, ops::Trans::Yes);
  TensorT<T> d_hidden = TensorT<T>::zeros(Shape{cfg_.tokens_per_batch(), h});
  for (index_t bi = 0; bi < b; ++bi) {
    std::memcpy(d_hidden.data() + bi * cfg_.seq_len * h, d_pooled.data() + bi * h,
                static_cast<std::size_t>(h) * sizeof(T));
  }
  backward_stem(std::move(d_hidden));
}

template <typename T>
void MegatronTransformer<T>::backward_stem(TensorT<T> d_hidden) {
  const index_t bs = cfg_.tokens_per_batch();
  const index_t h = cfg_.hidden;

  TensorT<T> dx(Shape{bs, h});
  ops::layernorm_backward(final_xhat_, final_istd_, final_ln_g_, d_hidden, dx, d_final_ln_g_,
                          d_final_ln_b_, true);

  for (index_t l = cfg_.layers - 1; l >= 0; --l) {
    if (!acts_[l].full) {
      // Activation checkpointing: recompute this layer's forward (including
      // its two all-reduces — the paper's 21bsh backward term).
      (void)layer_forward(l, acts_[l]);
    }
    dx = layer_backward(l, acts_[l], dx);
    if (checkpoint_) {
      LayerActs fresh;
      fresh.input = acts_[l].input;
      acts_[l] = std::move(fresh);  // free recomputed activations immediately
    }
  }
  d_x0_ = dx;

  // Embedding gradients: only this rank's vocab rows.
  const index_t v_begin = vocab_begin();
  const index_t v_local = vocab_per_rank();
  for (index_t r = 0; r < bs; ++r) {
    const index_t tok = tokens_[r];
    if (tok >= v_begin && tok < v_begin + v_local) {
      T* dst = d_embedding_.data() + (tok - v_begin) * h;
      const T* src = d_x0_.data() + r * h;
      for (index_t j = 0; j < h; ++j) dst[j] += src[j];
    }
  }
  for (index_t bi = 0; bi < cfg_.batch; ++bi) {
    for (index_t t = 0; t < cfg_.seq_len; ++t) {
      const T* src = d_x0_.data() + (bi * cfg_.seq_len + t) * h;
      T* dst = d_pos_embedding_.data() + t * h;
      for (index_t j = 0; j < h; ++j) dst[j] += src[j];
    }
  }
}

template <typename T>
void MegatronTransformer<T>::zero_grads() {
  for (auto* g : gradients()) g->zero();
}

template <typename T>
std::vector<TensorT<T>*> MegatronTransformer<T>::parameters() {
  std::vector<TensorT<T>*> out{&embedding_, &pos_embedding_};
  for (auto& lp : layers_) {
    out.insert(out.end(), {&lp.ln1_g, &lp.ln1_b, &lp.qkv_w, &lp.qkv_b, &lp.proj_w, &lp.proj_b,
                           &lp.ln2_g, &lp.ln2_b, &lp.fc1_w, &lp.fc1_b, &lp.fc2_w, &lp.fc2_b});
  }
  out.insert(out.end(), {&final_ln_g_, &final_ln_b_, &cls_w_, &cls_b_});
  return out;
}

template <typename T>
std::vector<TensorT<T>*> MegatronTransformer<T>::gradients() {
  std::vector<TensorT<T>*> out{&d_embedding_, &d_pos_embedding_};
  for (auto& lg : grads_) {
    out.insert(out.end(), {&lg.ln1_g, &lg.ln1_b, &lg.qkv_w, &lg.qkv_b, &lg.proj_w, &lg.proj_b,
                           &lg.ln2_g, &lg.ln2_b, &lg.fc1_w, &lg.fc1_b, &lg.fc2_w, &lg.fc2_b});
  }
  out.insert(out.end(), {&d_final_ln_g_, &d_final_ln_b_, &d_cls_w_, &d_cls_b_});
  return out;
}

template class MegatronTransformer<float>;
template class MegatronTransformer<double>;

}  // namespace optimus::megatron
