#pragma once

// Scaling analysis: weak/strong scaling efficiency (Fig. 7), the
// isoefficiency functions of §3.1.2, and calibration of the machine model
// against the paper's own Megatron measurements (Table 2).

#include <vector>

#include "perfmodel/costs.hpp"
#include "perfmodel/memory.hpp"

namespace optimus::perfmodel {

// -- Paper reference data (Tables 2 and 3) -----------------------------------

struct PaperRow {
  int gpus;
  index_t batch, hidden, heads;
  double fwd_per_seq_s;   // "forward time / batch size"
  double bwd_per_seq_s;   // "backward time / batch size"
  double throughput;      // sequences per second (train)
  double inference;       // sequences per second (forward only)
};

/// Table 2 (weak scaling), s = 512, N = 24.
const std::vector<PaperRow>& paper_weak_megatron();
const std::vector<PaperRow>& paper_weak_optimus();
/// Table 3 (strong scaling), s = 512, N = 24.
const std::vector<PaperRow>& paper_strong_megatron();
const std::vector<PaperRow>& paper_strong_optimus();

/// The Table-2 workload at a given device count (h ∝ q, n ∝ p, b per table).
Workload weak_scaling_workload(int gpus, Scheme scheme);
/// The Table-3 workload (fixed size; b = 24 Optimus / 12 Megatron).
Workload strong_scaling_workload(int gpus, Scheme scheme);

// -- Efficiency ---------------------------------------------------------------

/// Parallel efficiency E = T_serial / (p · T_parallel) for a whole step.
double efficiency(Scheme scheme, const Workload& w, int p, const Machine& m,
                  comm::Arrangement arrangement = comm::Arrangement::kBunched);

/// Speedup T_serial / T_parallel.
double speedup(Scheme scheme, const Workload& w, int p, const Machine& m,
               comm::Arrangement arrangement = comm::Arrangement::kBunched);

// -- Isoefficiency (§3.1.2) ---------------------------------------------------

/// Smallest hidden size h (multiple of `step`, with b = n = h scaling as the
/// paper assumes) at which the scheme reaches efficiency ≥ target at scale p.
/// Returns 0 if not reached below `h_cap`.
index_t isoefficiency_hidden(Scheme scheme, int p, const Machine& m, double target_e,
                             index_t step = 64, index_t h_cap = 1 << 22);

/// The paper's asymptotic isoefficiency W(p): p³ for Megatron,
/// (√p·log₂ p)³ for Optimus — used to check measured growth exponents.
double isoefficiency_reference(Scheme scheme, int p);

// -- Calibration ---------------------------------------------------------------

/// Fits (flop_rate, beta_intra, beta_inter) by least squares to the paper's
/// Megatron weak-scaling forward times (Table 2). Optimus is *never* fitted —
/// all its predictions are out-of-sample. alpha/gpus_per_node keep defaults.
Machine calibrate_from_paper();

}  // namespace optimus::perfmodel
