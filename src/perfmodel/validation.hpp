#pragma once

// Measured-vs-analytic communication validation.
//
// The engines measure per-device collective traffic (comm::CommStats, in the
// paper's β-weighted scalar units); the perfmodel predicts it (Table 1 plus
// the exact non-SUMMA extras the paper calls "negligible"). This module holds
// the closed forms for one full LM training pass — forward + loss + backward —
// through either engine, and a comparator that turns a measured CommStats into
// a per-collective-family scoreboard. tests/trace_test.cpp asserts the match
// exactly; the benches and scaling_explorer attach it to their reports so the
// oracle is re-checked on every run, not just under ctest.

#include <string>
#include <vector>

#include "comm/sim_clock.hpp"
#include "perfmodel/costs.hpp"
#include "perfmodel/memory.hpp"

namespace optimus::perfmodel {

/// Predicted β-weighted all-reduce units for one fwd+loss+bwd LM pass of the
/// Megatron engine at scale p: the Table-1 stem (N layers, backward includes
/// the checkpoint recompute) plus embedding assembly (bsh), d_hidden (bsh)
/// and the vocab-parallel cross-entropy statistics (3·bs), all carried by the
/// p-wide ring all-reduce weight 2(p−1)/p.
double megatron_lm_allreduce_weighted(const Workload& w, int p);

/// Predicted broadcast+reduce weighted units for one fwd+loss+bwd LM pass of
/// the Optimus engine on a q×q mesh: the SUMMA stem plus the exact lm-head
/// (Alg 1–3), hosted-slice broadcast/reduction, final-layernorm and embedding
/// terms, all carried by the binomial-tree weight log₂ q.
double optimus_lm_bcast_reduce_weighted(const Workload& w, int q);

/// One measured-vs-predicted comparison line.
struct CommValidationRow {
  std::string name;       // collective family, e.g. "allreduce"
  double measured = 0;    // β-weighted units from CommStats
  double predicted = 0;   // closed form

  double abs_err() const { return measured > predicted ? measured - predicted
                                                       : predicted - measured; }
  double rel_err() const {
    const double scale = predicted > 0 ? predicted : 1.0;
    return abs_err() / scale;
  }
};

struct CommValidation {
  Scheme scheme;
  int p = 0;
  std::vector<CommValidationRow> rows;

  /// True when every row matches within `rtol` relative error.
  bool ok(double rtol = 1e-9) const;
};

/// Compares one rank's measured collective traffic for a single LM step
/// against the closed forms above. Every rank moves the same volume, so any
/// rank's stats may be passed. For Megatron the scoreboard row is the ring
/// all-reduce; for Optimus it is the tree broadcast+reduce total.
CommValidation validate_lm_step_comm(Scheme scheme, const Workload& w, int p,
                                     const comm::CommStats& measured);

}  // namespace optimus::perfmodel
