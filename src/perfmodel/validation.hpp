#pragma once

// Measured-vs-analytic communication validation.
//
// The engines measure per-device collective traffic (comm::CommStats, in the
// paper's β-weighted scalar units); the perfmodel predicts it (Table 1 plus
// the exact non-SUMMA extras the paper calls "negligible"). This module holds
// the closed forms for one full LM training pass — forward + loss + backward —
// through either engine, and a comparator that turns a measured CommStats into
// a per-collective-family scoreboard. tests/trace_test.cpp asserts the match
// exactly; the benches and scaling_explorer attach it to their reports so the
// oracle is re-checked on every run, not just under ctest.

#include <cstdint>
#include <string>
#include <vector>

#include "comm/sim_clock.hpp"
#include "perfmodel/costs.hpp"
#include "perfmodel/memory.hpp"

namespace optimus::perfmodel {

/// Predicted β-weighted all-reduce units for one fwd+loss+bwd LM pass of the
/// Megatron engine at scale p: the Table-1 stem (N layers, backward includes
/// the checkpoint recompute) plus embedding assembly (bsh), d_hidden (bsh)
/// and the vocab-parallel cross-entropy statistics (3·bs), all carried by the
/// p-wide ring all-reduce weight 2(p−1)/p.
double megatron_lm_allreduce_weighted(const Workload& w, int p);

/// Predicted broadcast+reduce weighted units for one fwd+loss+bwd LM pass of
/// the Optimus engine on a q×q mesh: the SUMMA stem plus the exact lm-head
/// (Alg 1–3), hosted-slice broadcast/reduction, final-layernorm and embedding
/// terms, all carried by the binomial-tree weight log₂ q.
double optimus_lm_bcast_reduce_weighted(const Workload& w, int q);

/// Predicted per-rank simulated time for one summa_ab call (global M=m, K=k,
/// N=n, element size `elem_size`) on a q×q bunched mesh, under both SUMMA
/// schedules. Mirrors the SimClock arithmetic exactly:
///
///   blocking:   every k-step pays its row broadcast, its column broadcast and
///               (lazily, at the next collective entry) its GEMM in sequence —
///               q·(t_row + t_col + t_gemm).
///   pipelined:  broadcasts for step l+1 are issued before the step-l panels
///               are consumed; each issue reserves its link (row and column
///               links are independent) and the wait advances the clock to
///               max(clock, completion), so a steady-state step costs
///               max(comm, compute) with an un-overlappable prologue (the
///               step-0 broadcasts) and epilogue (the final GEMM).
///
/// scaling_explorer --validate checks the simulator reproduces both to within
/// floating-point round-off.
struct SummaAbTimes {
  double blocking_s = 0;
  double pipelined_s = 0;

  /// Fraction of the blocking time hidden by overlap, in [0, 1).
  double overlap_efficiency() const {
    return blocking_s > 0 ? (blocking_s - pipelined_s) / blocking_s : 0.0;
  }
};

SummaAbTimes predict_summa_ab_times(const comm::CostModel& cost, int q, std::int64_t m,
                                    std::int64_t k, std::int64_t n, std::size_t elem_size);

/// Per-rank simulated time for one summa_ab call on a q×q×d bunched mesh
/// (Tesseract-style 2.5D, world p = d·q², depth-major ranks). The Table-1
/// terms shrink by d — each k-step row/column-broadcasts k_b/d sub-panels and
/// multiplies m_b·n_b·k_b/d — and the call ends with the depth-reduction term:
/// a d-deep tree reduce of the C partial to depth layer 0 plus the replica
/// broadcast back, neither overlapped with anything. Exact when the bunched
/// layout makes all depth layers symmetric (q² divisible by gpus_per_node, or
/// the mesh fitting in one node per layer); d = 1 falls back to
/// predict_summa_ab_times. summa_test and scaling_explorer --validate assert
/// measured == predicted to round-off for both schedules.
SummaAbTimes predict_summa25_ab_times(const comm::CostModel& cost, int q, int d,
                                      std::int64_t m, std::int64_t k, std::int64_t n,
                                      std::size_t elem_size);

// -- KV-cached decode step ---------------------------------------------------
//
// One incremental decode step feeds one token per cache slot and runs the
// whole stem at sequence length 1, so its simulated cost is a short exact sum:
// every collective the engine issues plus every GEMM it charges (LN, softmax,
// bias and argmax scans charge nothing). The step ends in the argmax
// all-gather(s), so no compute is left pending — measured per-step SimClock
// deltas match these forms to round-off. serving_test and
// scaling_explorer --validate assert the match.
//
// `w.b` is the number of cache slots fed (the global decode batch), `w.n` the
// head count, `lens[i]` slot i's cached length *before* the step. Valid for
// the distributed engines at p ≥ 2 / q ≥ 2: a 1-wide communicator returns
// before the clock drains, so a degenerate 1×1 mesh never advances its clock —
// measure the serial adapter (which drains explicitly) instead.
//
// The forms sum one representative rank's collective-group costs, which is
// exact only when every parallel group has the same cost (a mesh that fits in
// one node, or q dividing gpus_per_node). On topologies where sibling columns
// straddle node boundaries differently, ranks drift apart by the group-cost
// deltas and re-align at the next crossing collective; those alignment waits
// are not modelled, so the closed form is then a (tight) lower bound.

/// Serial oracle: pure compute (the adapter drains the counter each step).
double predict_serial_decode_step_time(const comm::CostModel& cost, const Workload& w,
                                       const std::vector<tensor::index_t>& lens,
                                       std::size_t elem_size);

/// Megatron 1D: embed assembly all-reduce + 2 ring all-reduces per layer +
/// the argmax logits all-gather, plus this rank's (symmetric) GEMM charges.
double predict_megatron_decode_step_time(const comm::CostModel& cost, const Workload& w, int p,
                                         const std::vector<tensor::index_t>& lens,
                                         std::size_t elem_size);

/// Optimus 2D on a bunched q×q mesh: packed-embed column broadcasts, per-layer
/// layernorm stat all-reduces + four blocking SUMMA calls, the lm-head
/// summa_abt, and the two argmax all-gathers. Attention load differs by mesh
/// row (each row hosts a different slot block); the row clocks re-align at the
/// next column collective, so the step pays the *slowest* row's attention —
/// max over rows, per layer.
double predict_optimus_decode_step_time(const comm::CostModel& cost, const Workload& w, int q,
                                        const std::vector<tensor::index_t>& lens,
                                        std::size_t elem_size);

/// One measured-vs-predicted comparison line.
struct CommValidationRow {
  std::string name;       // collective family, e.g. "allreduce"
  double measured = 0;    // β-weighted units from CommStats
  double predicted = 0;   // closed form

  double abs_err() const { return measured > predicted ? measured - predicted
                                                       : predicted - measured; }
  double rel_err() const {
    const double scale = predicted > 0 ? predicted : 1.0;
    return abs_err() / scale;
  }
};

struct CommValidation {
  Scheme scheme;
  int p = 0;
  std::vector<CommValidationRow> rows;

  /// True when every row matches within `rtol` relative error.
  bool ok(double rtol = 1e-9) const;
};

/// Compares one rank's measured collective traffic for a single LM step
/// against the closed forms above. Every rank moves the same volume, so any
/// rank's stats may be passed. For Megatron the scoreboard row is the ring
/// all-reduce; for Optimus it is the tree broadcast+reduce total.
CommValidation validate_lm_step_comm(Scheme scheme, const Workload& w, int p,
                                     const comm::CommStats& measured);

}  // namespace optimus::perfmodel
