#include "perfmodel/scaling.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "perfmodel/memory.hpp"
#include "util/check.hpp"

namespace optimus::perfmodel {

// ---------------------------------------------------------------------------
// Paper data (Tables 2 and 3, transcribed verbatim)
// ---------------------------------------------------------------------------

const std::vector<PaperRow>& paper_weak_megatron() {
  static const std::vector<PaperRow> rows{
      {4, 60, 2048, 32, 0.0793, 0.2613, 2.9363, 13.1047},
      {16, 60, 4096, 64, 0.2081, 0.5149, 1.3831, 4.8046},
      {36, 40, 6120, 72, 0.3379, 0.7955, 0.8823, 2.9596},
      {64, 30, 8192, 128, 0.4638, 1.0963, 0.6410, 2.1560},
  };
  return rows;
}

const std::vector<PaperRow>& paper_weak_optimus() {
  static const std::vector<PaperRow> rows{
      {4, 96, 2048, 32, 0.0985, 0.2979, 2.5229, 10.1502},
      {16, 192, 4096, 64, 0.1764, 0.5312, 1.4134, 5.6704},
      {36, 288, 6120, 72, 0.1901, 0.5759, 1.3055, 5.2593},
      {64, 384, 8192, 128, 0.2589, 0.7935, 0.9502, 3.8625},
  };
  return rows;
}

const std::vector<PaperRow>& paper_strong_megatron() {
  static const std::vector<PaperRow> rows{
      {4, 12, 3072, 64, 0.1225, 0.4749, 1.6737, 8.1616},
      {16, 12, 3072, 64, 0.1143, 0.4293, 1.8397, 8.7521},
      {36, 12, 3096, 72, 0.1212, 0.4512, 1.7470, 8.2503},
      {64, 12, 3072, 64, 0.1195, 0.5306, 1.8180, 8.3711},
  };
  return rows;
}

const std::vector<PaperRow>& paper_strong_optimus() {
  static const std::vector<PaperRow> rows{
      // The paper prints 0.4415 seq/s inference at 4 GPUs — inconsistent with
      // its own forward time (1/0.1888 ≈ 5.3 per sequence would give ~4.4);
      // we keep the printed value and note the likely typo in EXPERIMENTS.md.
      {4, 24, 3072, 24, 0.1888, 0.5691, 1.3195, 0.4415},
      {16, 24, 3072, 24, 0.1950, 0.5704, 1.4095, 5.1285},
      {36, 24, 3072, 24, 0.1625, 0.4764, 1.5653, 6.1542},
      {64, 24, 3072, 24, 0.1253, 0.3716, 2.0123, 7.9808},
  };
  return rows;
}

namespace {

const PaperRow& find_row(const std::vector<PaperRow>& rows, int gpus) {
  for (const auto& r : rows) {
    if (r.gpus == gpus) return r;
  }
  OPT_CHECK(false, "no paper row for " << gpus << " GPUs");
}

}  // namespace

Workload weak_scaling_workload(int gpus, Scheme scheme) {
  const auto& rows = scheme == Scheme::kMegatron ? paper_weak_megatron() : paper_weak_optimus();
  const PaperRow& r = find_row(rows, gpus);
  Workload w;
  w.b = r.batch;
  w.s = 512;
  w.h = r.hidden;
  w.n = r.heads;
  w.layers = 24;
  return w;
}

Workload strong_scaling_workload(int gpus, Scheme scheme) {
  const auto& rows =
      scheme == Scheme::kMegatron ? paper_strong_megatron() : paper_strong_optimus();
  const PaperRow& r = find_row(rows, gpus);
  Workload w;
  w.b = r.batch;
  w.s = 512;
  w.h = r.hidden;
  w.n = r.heads;
  w.layers = 24;
  return w;
}

// ---------------------------------------------------------------------------
// Efficiency
// ---------------------------------------------------------------------------

namespace {

StepTime parallel_step(Scheme scheme, const Workload& w, int p, const Machine& m,
                       comm::Arrangement arrangement) {
  return scheme == Scheme::kMegatron ? megatron_step_time(w, p, m)
                                     : optimus_step_time(w, p, m, arrangement);
}

}  // namespace

double efficiency(Scheme scheme, const Workload& w, int p, const Machine& m,
                  comm::Arrangement arrangement) {
  const double serial = serial_step_time(w, m).total();
  const double parallel = parallel_step(scheme, w, p, m, arrangement).total();
  return serial / (p * parallel);
}

double speedup(Scheme scheme, const Workload& w, int p, const Machine& m,
               comm::Arrangement arrangement) {
  const double serial = serial_step_time(w, m).total();
  const double parallel = parallel_step(scheme, w, p, m, arrangement).total();
  return serial / parallel;
}

// ---------------------------------------------------------------------------
// Isoefficiency
// ---------------------------------------------------------------------------

index_t isoefficiency_hidden(Scheme scheme, int p, const Machine& m, double target_e,
                             index_t step, index_t h_cap) {
  // The paper's scaling assumption: b and n grow with h, s and N fixed. The
  // efficiency ratio is independent of b for Megatron and nearly so for
  // Optimus once b ∝ h, so we tie b = max(1, h/512).
  for (index_t h = step; h <= h_cap; h *= 2) {
    Workload w;
    w.h = h;
    w.b = std::max<index_t>(1, h / 512);
    w.s = 512;
    w.layers = 24;
    if (efficiency(scheme, w, p, m) >= target_e) {
      // Binary refine between h/2 and h.
      index_t lo = h / 2, hi = h;
      while (lo + step < hi) {
        const index_t mid = (lo + hi) / 2 / step * step;
        Workload wm = w;
        wm.h = mid;
        wm.b = std::max<index_t>(1, mid / 512);
        if (efficiency(scheme, wm, p, m) >= target_e) {
          hi = mid;
        } else {
          lo = mid;
        }
      }
      return hi;
    }
  }
  return 0;
}

double isoefficiency_reference(Scheme scheme, int p) {
  if (scheme == Scheme::kMegatron) return std::pow(static_cast<double>(p), 3.0);
  const double root = std::sqrt(static_cast<double>(p));
  return std::pow(root * std::log2(static_cast<double>(p)), 3.0);
}

// ---------------------------------------------------------------------------
// Calibration: least squares over the paper's Megatron rows
// ---------------------------------------------------------------------------

namespace {

/// Solves the 2×2 normal equations (AᵀA)x = Aᵀy.
std::array<double, 2> solve_least_squares_2(const std::vector<std::array<double, 2>>& A,
                                            const std::vector<double>& y) {
  double a00 = 0, a01 = 0, a11 = 0, b0 = 0, b1 = 0;
  for (std::size_t r = 0; r < A.size(); ++r) {
    a00 += A[r][0] * A[r][0];
    a01 += A[r][0] * A[r][1];
    a11 += A[r][1] * A[r][1];
    b0 += A[r][0] * y[r];
    b1 += A[r][1] * y[r];
  }
  const double det = a00 * a11 - a01 * a01;
  OPT_CHECK(std::abs(det) > 1e-300, "degenerate calibration system");
  return {(b0 * a11 - b1 * a01) / det, (a00 * b1 - a01 * b0) / det};
}

}  // namespace

Machine calibrate_from_paper() {
  // Staged fit on the paper's Megatron weak-scaling rows (Table 2) only; all
  // Optimus predictions stay out-of-sample.
  //
  // Stage 1 — flop rate and inter-node β from the multi-node *forward* rows
  // (p = 16, 36, 64). Their per-device compute varies ~2× while the per-device
  // all-reduce volume is nearly constant, so the 2-parameter system
  //   T_fwd(p) = N·[C(p)/R + V(p)·β_inter]
  // is well conditioned (a joint fit over all rows and both phases is
  // rank-deficient: compute and volume are collinear there).
  Machine m;  // defaults for alpha / gpus_per_node
  std::vector<std::array<double, 2>> A;
  std::vector<double> y;
  for (const PaperRow& r : paper_weak_megatron()) {
    if (r.gpus <= m.gpus_per_node) continue;
    Workload w = weak_scaling_workload(r.gpus, Scheme::kMegatron);
    const double N = static_cast<double>(w.layers);
    A.push_back({N * fwd_compute(w, r.gpus), N * megatron_fwd_comm(w, r.gpus)});
    y.push_back(r.fwd_per_seq_s * static_cast<double>(r.batch));
  }
  // Physical bound: a Quadro RTX 5000 peaks at ~11.2 fp32 TFLOP/s, i.e.
  // ~5.6e12 multiply-accumulates/s. The unconstrained fit can push compute to
  // zero (the rows are nearly comm-dominated); cap the rate and re-solve β
  // under the cap in that case.
  constexpr double kMaxFlopRate = 5.6e12;
  const auto x = solve_least_squares_2(A, y);
  if (x[0] > 1.0 / kMaxFlopRate) {
    m.flop_rate = 1.0 / x[0];
    m.beta_inter = std::max(x[1], 1e-13);
  } else {
    m.flop_rate = kMaxFlopRate;
    double num = 0, den = 0;
    for (std::size_t r = 0; r < A.size(); ++r) {
      num += A[r][1] * (y[r] - A[r][0] / kMaxFlopRate);
      den += A[r][1] * A[r][1];
    }
    m.beta_inter = std::max(num / den, 1e-13);
  }

  // Stage 2 — intra-node β as the residual of the single-node (p = 4) forward
  // row after compute is removed.
  {
    const PaperRow& r = paper_weak_megatron().front();
    Workload w = weak_scaling_workload(r.gpus, Scheme::kMegatron);
    const double N = static_cast<double>(w.layers);
    const double t_fwd = r.fwd_per_seq_s * static_cast<double>(r.batch);
    const double residual = t_fwd - N * fwd_compute(w, r.gpus) / m.flop_rate;
    const double volume = N * megatron_fwd_comm(w, r.gpus);
    m.beta_intra =
        std::clamp(residual / volume, 1e-13, m.beta_inter);  // intra ≤ inter
  }

  // Stage 3 — backward overhead: the paper's backward/forward ratios exceed
  // the ideal 3×-compute + 2×-comm model (backward kernels are slower
  // flop-for-flop); absorb the mean multiplicative gap.
  {
    double ratio_sum = 0;
    int count = 0;
    for (const PaperRow& r : paper_weak_megatron()) {
      Workload w = weak_scaling_workload(r.gpus, Scheme::kMegatron);
      const double N = static_cast<double>(w.layers);
      const double beta = beta_eff_megatron(m, r.gpus);
      const double raw =
          N * (bwd_compute(w, r.gpus) / m.flop_rate + megatron_bwd_comm(w, r.gpus) * beta);
      ratio_sum += r.bwd_per_seq_s * static_cast<double>(r.batch) / raw;
      ++count;
    }
    m.bwd_overhead = std::max(1.0, ratio_sum / count);
  }
  return m;
}

}  // namespace optimus::perfmodel
