#pragma once

// Analytic cost model: the paper's Table 1 in code, plus an α-β-γ machine
// model that converts the counts into per-step times for both schemes.
//
// Units follow the paper: computation in scalar multiplications, communication
// in "β-weighted scalars" (volume × the collective's β multiplier — log₂g for
// tree ops, 2(g−1)/g for ring all-reduce). The log in the paper's Optimus
// column is log₂: at p = 64, log(p)/2 = 3 = log₂ q.

#include <cstdint>

#include "comm/topology.hpp"
#include "tensor/shape.hpp"

namespace optimus::perfmodel {

using tensor::index_t;

/// Workload in the paper's symbols (per-layer costs scale with N outside).
struct Workload {
  index_t b = 1;     // batch
  index_t s = 512;   // sequence length
  index_t h = 1024;  // hidden
  index_t n = 16;    // attention heads (does not enter the costs)
  index_t v = 51200; // vocabulary (embedding / lm-head, outside Table 1)
  index_t layers = 24;
};

// -- Table 1: per-layer counts ----------------------------------------------

/// Megatron forward communication per layer: 4(p−1)/p · bsh.
double megatron_fwd_comm(const Workload& w, int p);
/// Megatron backward (with checkpoint recompute): 8(p−1)/p · bsh.
double megatron_bwd_comm(const Workload& w, int p);

/// Optimus forward communication per layer: log₂(p)/(2√p) · (7bsh + 12h²).
double optimus_fwd_comm(const Workload& w, int p);
/// Optimus backward: log₂(p)/(2√p) · (21bsh + 36h²).
double optimus_bwd_comm(const Workload& w, int p);

/// Forward computation per layer per device: (12bsh² + 2bs²h)/p.
double fwd_compute(const Workload& w, int p);
/// Backward computation per layer per device (with recompute): 3× forward.
double bwd_compute(const Workload& w, int p);

/// Total multiplications of the whole stem (the paper's "amount of total
/// computation", 28bsh² + 8bs²h per layer · N).
double total_compute(const Workload& w);

// -- Machine model -----------------------------------------------------------

struct Machine {
  double flop_rate = 2.0e12;    // scalar multiplications per second per device
  double alpha = 2.0e-5;        // per-message latency (s)
  double beta_intra = 2.5e-10;  // s per *scalar* (fp16/fp32-ish) within a node
  double beta_inter = 2.0e-9;   // s per scalar across nodes
  double bwd_overhead = 1.0;    // backward kernels are slower than 3× forward
                                // flop-for-flop; calibrated from the paper
  int gpus_per_node = 4;
  // Large-message broadcasts in real backends (NCCL) are pipelined
  // (scatter + all-gather), costing ≈ 2(g−1)/g·β·B instead of the paper's
  // eq-4 log₂(g)·β·B tree. The paper's own measurements beat its own formula
  // by exactly this factor at q = 8; default to the pipelined model and keep
  // eq 4 available for comparison (the engine-level simulation always uses
  // the tree the binomial implementation really executes).
  bool pipelined_collectives = true;

  comm::MachineParams to_comm_params(std::size_t elem_size = 4) const {
    comm::MachineParams mp;
    mp.alpha = alpha;
    mp.beta_intra = beta_intra / static_cast<double>(elem_size);
    mp.beta_inter = beta_inter / static_cast<double>(elem_size);
    mp.flop_rate = flop_rate;
    return mp;
  }
};

/// Effective β (s/scalar) of Megatron's p-wide ring all-reduce: intra-node for
/// p ≤ gpus_per_node, otherwise inter-node (every node contributes all its
/// GPUs to the single group — no extra contention).
double beta_eff_megatron(const Machine& m, int p);

/// Effective β of Optimus's q-wide row/column collectives under the given GPU
/// arrangement (Fig. 8): bunched tiles put t members of each group on a node,
/// naive puts rows intra-node but columns one-per-node with gpn-way uplink
/// contention. Returns the average of the row-group and column-group βs,
/// since SUMMA volume is symmetric between them.
double beta_eff_optimus(const Machine& m, int p, comm::Arrangement arrangement);

// -- Per-step times ----------------------------------------------------------

struct StepTime {
  double fwd_s = 0;
  double bwd_s = 0;
  double total() const { return fwd_s + bwd_s; }
};

/// Full-stem (N layers) per-step time for Megatron at scale p.
StepTime megatron_step_time(const Workload& w, int p, const Machine& m);

/// Full-stem per-step time for Optimus at scale p = q².
StepTime optimus_step_time(const Workload& w, int p, const Machine& m,
                           comm::Arrangement arrangement = comm::Arrangement::kBunched);

/// Serial (single device) per-step time: pure compute.
StepTime serial_step_time(const Workload& w, const Machine& m);

}  // namespace optimus::perfmodel
