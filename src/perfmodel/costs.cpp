#include "perfmodel/costs.hpp"

#include <cmath>

#include "util/check.hpp"

namespace optimus::perfmodel {

namespace {

double log2d(double x) { return std::log2(x); }

double bsh(const Workload& w) {
  return static_cast<double>(w.b) * static_cast<double>(w.s) * static_cast<double>(w.h);
}

double h2(const Workload& w) {
  return static_cast<double>(w.h) * static_cast<double>(w.h);
}

}  // namespace

double megatron_fwd_comm(const Workload& w, int p) {
  OPT_CHECK(p >= 1, "p must be positive");
  if (p == 1) return 0;
  return 4.0 * (p - 1) / p * bsh(w);
}

double megatron_bwd_comm(const Workload& w, int p) { return 2.0 * megatron_fwd_comm(w, p); }

double optimus_fwd_comm(const Workload& w, int p) {
  OPT_CHECK(p >= 1, "p must be positive");
  if (p == 1) return 0;
  const double factor = log2d(p) / (2.0 * std::sqrt(static_cast<double>(p)));
  return factor * (7.0 * bsh(w) + 12.0 * h2(w));
}

double optimus_bwd_comm(const Workload& w, int p) {
  if (p == 1) return 0;
  const double factor = log2d(p) / (2.0 * std::sqrt(static_cast<double>(p)));
  return factor * (21.0 * bsh(w) + 36.0 * h2(w));
}

double fwd_compute(const Workload& w, int p) {
  const double b = w.b, s = w.s, h = w.h;
  return (12.0 * b * s * h * h + 2.0 * b * s * s * h) / p;
}

double bwd_compute(const Workload& w, int p) { return 3.0 * fwd_compute(w, p); }

double total_compute(const Workload& w) {
  const double b = w.b, s = w.s, h = w.h;
  return static_cast<double>(w.layers) * (28.0 * b * s * h * h + 8.0 * b * s * s * h);
}

double beta_eff_megatron(const Machine& m, int p) {
  return p <= m.gpus_per_node ? m.beta_intra : m.beta_inter;
}

double beta_eff_optimus(const Machine& m, int p, comm::Arrangement arrangement) {
  const int q = static_cast<int>(std::lround(std::sqrt(static_cast<double>(p))));
  OPT_CHECK(q * q == p, "optimus needs a square p, got " << p);
  if (q <= 1) return 0.0;
  if (p <= m.gpus_per_node) return m.beta_intra;  // whole mesh on one node

  // Build the actual topology and average the row-group and column-group
  // effective βs — SUMMA moves symmetric volume along both directions.
  comm::Topology topo(p, m.gpus_per_node, arrangement, q);
  comm::MachineParams mp;
  mp.beta_intra = m.beta_intra;
  mp.beta_inter = m.beta_inter;
  comm::CostModel cost(topo, mp);
  std::vector<int> row(q), col(q);
  for (int i = 0; i < q; ++i) {
    row[i] = i;          // mesh row 0
    col[i] = i * q;      // mesh column 0
  }
  return 0.5 * (cost.beta_eff(row) + cost.beta_eff(col));
}

StepTime megatron_step_time(const Workload& w, int p, const Machine& m) {
  const double beta = beta_eff_megatron(m, p);
  const double N = static_cast<double>(w.layers);
  StepTime t;
  t.fwd_s = N * (fwd_compute(w, p) / m.flop_rate + megatron_fwd_comm(w, p) * beta +
                 /*2 all-reduces*/ (p > 1 ? 2.0 * 2.0 * (p - 1) * m.alpha : 0.0));
  t.bwd_s = m.bwd_overhead *
            N * (bwd_compute(w, p) / m.flop_rate + megatron_bwd_comm(w, p) * beta +
                 (p > 1 ? 4.0 * 2.0 * (p - 1) * m.alpha : 0.0));
  return t;
}

StepTime optimus_step_time(const Workload& w, int p, const Machine& m,
                           comm::Arrangement arrangement) {
  double beta = beta_eff_optimus(m, p, arrangement);
  const int q = static_cast<int>(std::lround(std::sqrt(static_cast<double>(p))));
  const double N = static_cast<double>(w.layers);
  // Pipelined broadcast/reduce: the per-byte factor drops from log₂q (eq. 4,
  // baked into optimus_*_comm) to 2(q−1)/q.
  if (m.pipelined_collectives && q > 1) {
    const double lg = std::log2(static_cast<double>(q));
    const double pipe = 2.0 * (q - 1) / q;
    if (pipe < lg) beta *= pipe / lg;
  }
  // Latency: 8q broadcasts/reduces per layer forward (4 SUMMA calls × 2q
  // collectives each ≈ 8q), each a log₂q-round tree.
  const double lat_fwd = q > 1 ? 8.0 * q * std::log2(static_cast<double>(q)) * m.alpha : 0.0;
  StepTime t;
  t.fwd_s = N * (fwd_compute(w, p) / m.flop_rate + optimus_fwd_comm(w, p) * beta + lat_fwd);
  t.bwd_s = m.bwd_overhead *
            N * (bwd_compute(w, p) / m.flop_rate + optimus_bwd_comm(w, p) * beta +
                 3.0 * lat_fwd);
  return t;
}

StepTime serial_step_time(const Workload& w, const Machine& m) {
  StepTime t;
  t.fwd_s = static_cast<double>(w.layers) * fwd_compute(w, 1) / m.flop_rate;
  t.bwd_s = m.bwd_overhead * 3.0 * t.fwd_s;
  return t;
}

}  // namespace optimus::perfmodel
