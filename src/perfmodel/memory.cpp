#include "perfmodel/memory.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace optimus::perfmodel {

namespace {

using tensor::index_t;

std::uint64_t to_bytes(double elems, std::size_t elem_size) {
  return static_cast<std::uint64_t>(elems * static_cast<double>(elem_size));
}

}  // namespace

MemoryBreakdown megatron_memory(const Workload& w, int p, std::size_t elem_size) {
  const double b = w.b, s = w.s, h = w.h, n = w.n, v = w.v, N = w.layers;
  const double c = 2;  // classifier classes — negligible either way
  MemoryBreakdown mem;

  // Parameters: 1/p weight shards + replicated layernorms/biases/pos table.
  const double param_elems = N * (12.0 * h * h + 7.0 * h) / p + v * h / p + s * h +
                             N * 6.0 * h + 2.0 * h + h * c + c;
  mem.params = to_bytes(param_elems, elem_size);
  mem.grads = mem.params;

  // Replicated activations: N checkpointed layer inputs + stem output, final
  // layernorm state and hidden states — the §3.1.1 bottleneck.
  mem.checkpoints = to_bytes((N + 3.0) * b * s * h + b * s, elem_size);

  // One layer's transient working set during backward-with-recompute.
  const double working_elems =
      10.0 * b * s * h + 24.0 * b * s * h / p + b * n * s * s / p + 2.0 * b * s;
  mem.working = to_bytes(working_elems, elem_size);

  // Vocab-parallel lm-head state (exp buffer + dlogits) and the d_hidden.
  mem.loss_head = to_bytes(2.0 * b * s * v / p + b * s * h + 4.0 * b * s, elem_size);
  mem.workspace = 0;
  return mem;
}

MemoryBreakdown optimus_memory(const Workload& w, int p, std::size_t elem_size, int depth) {
  OPT_CHECK(depth >= 1 && p % depth == 0, "optimus needs p divisible by depth");
  const int area = p / depth;
  const int q = static_cast<int>(std::lround(std::sqrt(static_cast<double>(area))));
  OPT_CHECK(q * q == area, "optimus needs square p (per depth layer)");
  const double b = w.b, s = w.s, h = w.h, n = w.n, v = w.v, N = w.layers;
  const double c = 2;
  MemoryBreakdown mem;
  // Every depth layer holds the same q×q blocks (the d-fold replication is
  // 2.5D's memory price): per-device state divides by the layer area q², not
  // by the world size q²·d. Only the SUMMA workspace shrinks with d.
  p = area;

  // Everything is a q×q block; row-0 devices additionally host the bias/LN
  // slices (worst case modelled).
  const double param_elems = N * 12.0 * h * h / p + v * h / p + s * h / q +
                             N * 13.0 * h / q + 2.0 * h / q + h * c / q + c;
  mem.params = to_bytes(param_elems, elem_size);
  mem.grads = mem.params;

  // Checkpointed inputs and final-layernorm state — all 1/p.
  mem.checkpoints = to_bytes((N + 3.0) * b * s * h / p + b * s / q, elem_size);

  // One layer's arenas (§3.2.3): 17 forward + 16 backward bsh/p-sized blocks,
  // the local attention probabilities, plus the transient recompute output.
  const double working_elems = (17.0 + 16.0 + 1.0) * b * s * h / p +
                               b * n * s * s / p + 4.0 * b * s / q + 30.0 * h / q;
  mem.working = to_bytes(working_elems, elem_size);

  // SUMMA workspace: worst single call under the pipelined schedule —
  // double-buffered panels plus, for the reduce forms, two C partials and a
  // persistent reduce scratch (max of 2A+2B, 2B+3C, 2A+3C per call). At
  // depth > 1 the panels shrink to /d sub-panels but each form adds a
  // captured C partial and a depth-fold scratch (mirrors
  // summa::workspace_bytes).
  const auto ws3 = [depth](double a, double bb, double cc) {
    if (depth > 1) {
      const double dd = static_cast<double>(depth);
      return std::max({2.0 * a / dd + 2.0 * bb / dd + 2.0 * cc,
                       a / dd + 2.0 * bb / dd + 4.0 * cc,
                       2.0 * a / dd + bb / dd + 4.0 * cc});
    }
    return std::max({2.0 * a + 2.0 * bb, 2.0 * bb + 3.0 * cc, 2.0 * a + 3.0 * cc});
  };
  const double ws_elems = std::max({
      ws3(b * s * h / p, 3.0 * h * h / p, 3.0 * b * s * h / p),  // qkv
      ws3(4.0 * b * s * h / p, 4.0 * h * h / p, b * s * h / p),  // fc family
      ws3(b * s * h / p, v * h / p, b * s * v / p),              // lm-head
      ws3(b * s * v / p, b * s * h / p, v * h / p),              // d_embedding
      v * h / p + s * h / q,                                     // embedding scope
  });
  mem.workspace = to_bytes(ws_elems, elem_size);

  mem.loss_head = to_bytes(2.0 * b * s * v / p + b * s * h / p + 4.0 * b * s / q, elem_size);
  return mem;
}

index_t max_batch(Scheme scheme, Workload w, int p, std::uint64_t budget_bytes,
                  index_t granularity) {
  OPT_CHECK(granularity >= 1, "granularity");
  const auto fits = [&](index_t b) {
    if (b <= 0) return true;
    w.b = b;
    const MemoryBreakdown mem =
        scheme == Scheme::kMegatron ? megatron_memory(w, p) : optimus_memory(w, p);
    return mem.total() <= budget_bytes;
  };
  if (!fits(granularity)) return 0;
  // Exponential probe then binary search on multiples of `granularity`.
  index_t lo = 1, hi = 1;
  while (fits(hi * granularity)) {
    lo = hi;
    hi *= 2;
    if (hi > (index_t{1} << 40)) break;  // absurd guard
  }
  while (lo + 1 < hi) {
    const index_t mid = lo + (hi - lo) / 2;
    if (fits(mid * granularity)) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo * granularity;
}

}  // namespace optimus::perfmodel
