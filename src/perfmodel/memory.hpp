#pragma once

// Per-device memory model for both schemes (drives the Figure-9 experiment).
//
// The formulas mirror the actual engines in this repository (validated
// against the allocator's measured peaks by tests/perfmodel_test.cpp):
//
//   Megatron — parameters and gradients are 1/p except the replicated
//     layernorms/biases/positional table; activations are FULL on every
//     device: the N checkpointed layer inputs plus one layer's working set.
//     (Note: Megatron-LM can shard the checkpoints p ways; the paper assumes
//     that — §3.1.1's Nbsh/p — but the ≥3bsh per-layer working set dominates
//     either way, so the Figure-9 trend is unchanged. We model our engine.)
//
//   Optimus — everything is 1/p: parameters, gradients, the N checkpointed
//     inputs, and the single-layer forward/backward arenas plus the SUMMA
//     workspace (§3.2.3).
//
// All sizes in bytes, fp32 elements.

#include <cstdint>

#include "perfmodel/costs.hpp"

namespace optimus::perfmodel {

struct MemoryBreakdown {
  std::uint64_t params = 0;
  std::uint64_t grads = 0;
  std::uint64_t checkpoints = 0;  // persistent layer inputs (+ stem/final state)
  std::uint64_t working = 0;      // one layer's transient activations + grads
  std::uint64_t workspace = 0;    // SUMMA/communication scratch
  std::uint64_t loss_head = 0;    // logits / softmax state of the lm-head

  std::uint64_t total() const {
    return params + grads + checkpoints + working + workspace + loss_head;
  }
};

/// Per-device footprint of the Megatron engine at scale p.
MemoryBreakdown megatron_memory(const Workload& w, int p,
                                std::size_t elem_size = sizeof(float));

/// Per-device footprint of the Optimus engine at scale p = d·q² (depth = d;
/// the default d = 1 is the paper's 2D mesh). At depth > 1 every depth layer
/// replicates the q×q block state — per-device params/grads/activations
/// divide by the layer area q², not by p — and only the SUMMA workspace
/// shrinks (/d sub-panels, plus the depth-fold partial and scratch).
MemoryBreakdown optimus_memory(const Workload& w, int p,
                               std::size_t elem_size = sizeof(float), int depth = 1);

enum class Scheme { kMegatron, kOptimus };

/// Largest global batch b (multiple of `granularity`) whose footprint fits in
/// `budget_bytes` per device; 0 if none fits. Binary search over b.
tensor::index_t max_batch(Scheme scheme, Workload w, int p, std::uint64_t budget_bytes,
                          tensor::index_t granularity = 1);

}  // namespace optimus::perfmodel
