#include "perfmodel/validation.hpp"

#include <algorithm>
#include <cmath>

namespace optimus::perfmodel {

SummaAbTimes predict_summa_ab_times(const comm::CostModel& cost, int q, std::int64_t m,
                                    std::int64_t k, std::int64_t n, std::size_t elem_size) {
  // Rank (0,0)'s communicators on a bunched q×q mesh: row group is the first
  // q world ranks, column group strides by q. Every rank's schedule is
  // symmetric, so one rank's clock is the call's sim time.
  std::vector<int> row_group(static_cast<std::size_t>(q));
  std::vector<int> col_group(static_cast<std::size_t>(q));
  for (int i = 0; i < q; ++i) {
    row_group[static_cast<std::size_t>(i)] = i;
    col_group[static_cast<std::size_t>(i)] = i * q;
  }
  const auto u64 = [](std::int64_t v) { return static_cast<std::uint64_t>(v); };
  const std::uint64_t a_bytes = u64(m / q) * u64(k / q) * elem_size;
  const std::uint64_t b_bytes = u64(k / q) * u64(n / q) * elem_size;
  const double t_row = q > 1 ? cost.tree_plan(row_group, a_bytes).time : 0.0;
  const double t_col = q > 1 ? cost.tree_plan(col_group, b_bytes).time : 0.0;
  const double t_gemm = cost.compute_time(u64(m / q) * u64(n / q) * u64(k / q));

  SummaAbTimes out;
  // Blocking: each collective entry first drains the pending GEMM, then the
  // clock advances by the tree time; the final GEMM drains after the loop.
  out.blocking_s = static_cast<double>(q) * (t_row + t_col + t_gemm);

  // Pipelined: issue reserves the link at max(clock, link_busy) without
  // advancing the clock; wait drains pending compute then jumps to
  // max(clock, completion). Step l>0 drains step l-1's GEMM at its first
  // issue (or, on the last step, at its first wait) — same sum either way.
  double t = 0, row_link = 0, col_link = 0;
  double a_done[2] = {0, 0}, b_done[2] = {0, 0};
  const auto issue = [&](int slot) {
    a_done[slot] = std::max(t, row_link) + t_row;
    row_link = a_done[slot];
    b_done[slot] = std::max(t, col_link) + t_col;
    col_link = b_done[slot];
  };
  issue(0);
  for (int l = 0; l < q; ++l) {
    const int cur = l & 1;
    if (l > 0) t += t_gemm;
    if (l + 1 < q) issue(cur ^ 1);
    t = std::max(t, a_done[cur]);
    t = std::max(t, b_done[cur]);
  }
  t += t_gemm;
  out.pipelined_s = q > 1 ? t : out.blocking_s;
  return out;
}

double megatron_lm_allreduce_weighted(const Workload& w, int p) {
  const double stem =
      static_cast<double>(w.layers) * (megatron_fwd_comm(w, p) + megatron_bwd_comm(w, p));
  const double ar = 2.0 * (p - 1) / static_cast<double>(p);
  const double bsh = static_cast<double>(w.b) * w.s * w.h;
  const double bs = static_cast<double>(w.b) * w.s;
  // Embedding assembly (bsh) + d_hidden (bsh) + vocab-CE statistics (3·bs;
  // the max is recorded with the same ring weight as the sums).
  return stem + ar * (2.0 * bsh + 3.0 * bs);
}

double optimus_lm_bcast_reduce_weighted(const Workload& w, int q) {
  const int p = q * q;
  const double lg = std::log2(static_cast<double>(q));
  const double hq = static_cast<double>(w.h) / q;
  const double fq = 4.0 * hq;
  const double tq = 3.0 * hq;
  const double vq = static_cast<double>(w.v) / q;
  const double s = static_cast<double>(w.s);
  const double N = static_cast<double>(w.layers);

  // SUMMA stem (Table 1; backward includes the checkpoint recompute).
  const double stem = N * (optimus_fwd_comm(w, p) + optimus_bwd_comm(w, p));
  // lm-head: Alg-2 logits forward, Alg-1 dX and Alg-3 dE backward. Each SUMMA
  // call moves q·(broadcast block + reduce block) at tree weight log₂ q.
  const double rows = static_cast<double>(w.b) / q * s;
  const double lm_fwd = lg * q * (vq * hq + rows * vq);
  const double lm_bwd = lg * q * (rows * vq + vq * hq)    // ab: dlogits + E
                        + lg * q * (rows * vq + vq * hq); // atb: dlogits + dE
  // Hosted-slice broadcasts per layer forward (and again in the recompute):
  // 4 LN slices (hq each) + biases (tq + 2·hq + fq); gradients reduce the
  // same volumes backward.
  const double hosted_fwd = lg * (4 * hq + tq + 2 * hq + fq);
  const double hosted_bwd = hosted_fwd;
  const double hosted = N * (2 * hosted_fwd + hosted_bwd);
  // Final layernorm: 2 slice broadcasts forward, 2 partial reductions back.
  const double final_ln = lg * (2 * hq) + lg * (2 * hq);
  // Embedding: q table-block broadcasts + position slice forward; mirrored
  // reductions backward.
  const double embed = 2.0 * lg * (q * vq * hq + s * hq);
  return stem + lm_fwd + lm_bwd + hosted + final_ln + embed;
}

bool CommValidation::ok(double rtol) const {
  for (const auto& row : rows) {
    if (row.rel_err() > rtol) return false;
  }
  return true;
}

CommValidation validate_lm_step_comm(Scheme scheme, const Workload& w, int p,
                                     const comm::CommStats& measured) {
  CommValidation v;
  v.scheme = scheme;
  v.p = p;
  if (scheme == Scheme::kMegatron) {
    v.rows.push_back({"allreduce", measured.allreduce.weighted,
                      megatron_lm_allreduce_weighted(w, p)});
  } else {
    int q = 1;
    while (q * q < p) ++q;
    v.rows.push_back({"broadcast+reduce",
                      measured.broadcast.weighted + measured.reduce.weighted,
                      optimus_lm_bcast_reduce_weighted(w, q)});
  }
  return v;
}

}  // namespace optimus::perfmodel
