#include "perfmodel/validation.hpp"

#include <cmath>

namespace optimus::perfmodel {

double megatron_lm_allreduce_weighted(const Workload& w, int p) {
  const double stem =
      static_cast<double>(w.layers) * (megatron_fwd_comm(w, p) + megatron_bwd_comm(w, p));
  const double ar = 2.0 * (p - 1) / static_cast<double>(p);
  const double bsh = static_cast<double>(w.b) * w.s * w.h;
  const double bs = static_cast<double>(w.b) * w.s;
  // Embedding assembly (bsh) + d_hidden (bsh) + vocab-CE statistics (3·bs;
  // the max is recorded with the same ring weight as the sums).
  return stem + ar * (2.0 * bsh + 3.0 * bs);
}

double optimus_lm_bcast_reduce_weighted(const Workload& w, int q) {
  const int p = q * q;
  const double lg = std::log2(static_cast<double>(q));
  const double hq = static_cast<double>(w.h) / q;
  const double fq = 4.0 * hq;
  const double tq = 3.0 * hq;
  const double vq = static_cast<double>(w.v) / q;
  const double s = static_cast<double>(w.s);
  const double N = static_cast<double>(w.layers);

  // SUMMA stem (Table 1; backward includes the checkpoint recompute).
  const double stem = N * (optimus_fwd_comm(w, p) + optimus_bwd_comm(w, p));
  // lm-head: Alg-2 logits forward, Alg-1 dX and Alg-3 dE backward. Each SUMMA
  // call moves q·(broadcast block + reduce block) at tree weight log₂ q.
  const double rows = static_cast<double>(w.b) / q * s;
  const double lm_fwd = lg * q * (vq * hq + rows * vq);
  const double lm_bwd = lg * q * (rows * vq + vq * hq)    // ab: dlogits + E
                        + lg * q * (rows * vq + vq * hq); // atb: dlogits + dE
  // Hosted-slice broadcasts per layer forward (and again in the recompute):
  // 4 LN slices (hq each) + biases (tq + 2·hq + fq); gradients reduce the
  // same volumes backward.
  const double hosted_fwd = lg * (4 * hq + tq + 2 * hq + fq);
  const double hosted_bwd = hosted_fwd;
  const double hosted = N * (2 * hosted_fwd + hosted_bwd);
  // Final layernorm: 2 slice broadcasts forward, 2 partial reductions back.
  const double final_ln = lg * (2 * hq) + lg * (2 * hq);
  // Embedding: q table-block broadcasts + position slice forward; mirrored
  // reductions backward.
  const double embed = 2.0 * lg * (q * vq * hq + s * hq);
  return stem + lm_fwd + lm_bwd + hosted + final_ln + embed;
}

bool CommValidation::ok(double rtol) const {
  for (const auto& row : rows) {
    if (row.rel_err() > rtol) return false;
  }
  return true;
}

CommValidation validate_lm_step_comm(Scheme scheme, const Workload& w, int p,
                                     const comm::CommStats& measured) {
  CommValidation v;
  v.scheme = scheme;
  v.p = p;
  if (scheme == Scheme::kMegatron) {
    v.rows.push_back({"allreduce", measured.allreduce.weighted,
                      megatron_lm_allreduce_weighted(w, p)});
  } else {
    int q = 1;
    while (q * q < p) ++q;
    v.rows.push_back({"broadcast+reduce",
                      measured.broadcast.weighted + measured.reduce.weighted,
                      optimus_lm_bcast_reduce_weighted(w, q)});
  }
  return v;
}

}  // namespace optimus::perfmodel
