#include "perfmodel/validation.hpp"

#include <algorithm>
#include <cmath>

namespace optimus::perfmodel {

SummaAbTimes predict_summa_ab_times(const comm::CostModel& cost, int q, std::int64_t m,
                                    std::int64_t k, std::int64_t n, std::size_t elem_size) {
  // Rank (0,0)'s communicators on a bunched q×q mesh: row group is the first
  // q world ranks, column group strides by q. Every rank's schedule is
  // symmetric, so one rank's clock is the call's sim time.
  std::vector<int> row_group(static_cast<std::size_t>(q));
  std::vector<int> col_group(static_cast<std::size_t>(q));
  for (int i = 0; i < q; ++i) {
    row_group[static_cast<std::size_t>(i)] = i;
    col_group[static_cast<std::size_t>(i)] = i * q;
  }
  const auto u64 = [](std::int64_t v) { return static_cast<std::uint64_t>(v); };
  const std::uint64_t a_bytes = u64(m / q) * u64(k / q) * elem_size;
  const std::uint64_t b_bytes = u64(k / q) * u64(n / q) * elem_size;
  const double t_row = q > 1 ? cost.tree_plan(row_group, a_bytes).time : 0.0;
  const double t_col = q > 1 ? cost.tree_plan(col_group, b_bytes).time : 0.0;
  const double t_gemm = cost.compute_time(u64(m / q) * u64(n / q) * u64(k / q));

  SummaAbTimes out;
  // Blocking: each collective entry first drains the pending GEMM, then the
  // clock advances by the tree time; the final GEMM drains after the loop.
  out.blocking_s = static_cast<double>(q) * (t_row + t_col + t_gemm);

  // Pipelined: issue reserves the link at max(clock, link_busy) without
  // advancing the clock; wait drains pending compute then jumps to
  // max(clock, completion). Step l>0 drains step l-1's GEMM at its first
  // issue (or, on the last step, at its first wait) — same sum either way.
  double t = 0, row_link = 0, col_link = 0;
  double a_done[2] = {0, 0}, b_done[2] = {0, 0};
  const auto issue = [&](int slot) {
    a_done[slot] = std::max(t, row_link) + t_row;
    row_link = a_done[slot];
    b_done[slot] = std::max(t, col_link) + t_col;
    col_link = b_done[slot];
  };
  issue(0);
  for (int l = 0; l < q; ++l) {
    const int cur = l & 1;
    if (l > 0) t += t_gemm;
    if (l + 1 < q) issue(cur ^ 1);
    t = std::max(t, a_done[cur]);
    t = std::max(t, b_done[cur]);
  }
  t += t_gemm;
  out.pipelined_s = q > 1 ? t : out.blocking_s;
  return out;
}

SummaAbTimes predict_summa25_ab_times(const comm::CostModel& cost, int q, int d,
                                      std::int64_t m, std::int64_t k, std::int64_t n,
                                      std::size_t elem_size) {
  if (d <= 1) return predict_summa_ab_times(cost, q, m, k, n, elem_size);
  // Rank (0,0,0)'s groups on the depth-major bunched mesh: row group is the
  // first q world ranks, column group strides by q, depth group strides by q².
  // Depth layers are symmetric, so one rank's clock is the call's sim time.
  std::vector<int> row_group(static_cast<std::size_t>(q));
  std::vector<int> col_group(static_cast<std::size_t>(q));
  std::vector<int> depth_group(static_cast<std::size_t>(d));
  for (int i = 0; i < q; ++i) {
    row_group[static_cast<std::size_t>(i)] = i;
    col_group[static_cast<std::size_t>(i)] = i * q;
  }
  for (int z = 0; z < d; ++z) depth_group[static_cast<std::size_t>(z)] = z * q * q;
  const auto u64 = [](std::int64_t v) { return static_cast<std::uint64_t>(v); };
  // Sub-panel volumes: the contraction block k/q further splits d ways.
  const std::uint64_t a_bytes = u64(m / q) * u64(k / q / d) * elem_size;
  const std::uint64_t b_bytes = u64(k / q / d) * u64(n / q) * elem_size;
  const std::uint64_t c_bytes = u64(m / q) * u64(n / q) * elem_size;
  const double t_row = q > 1 ? cost.tree_plan(row_group, a_bytes).time : 0.0;
  const double t_col = q > 1 ? cost.tree_plan(col_group, b_bytes).time : 0.0;
  const double t_gemm = cost.compute_time(u64(m / q) * u64(n / q) * u64(k / q / d));
  // Depth-reduction term: tree reduce of the C partial to depth 0, then the
  // replica broadcast back — same tree, paid twice, never overlapped.
  const double t_depth = 2.0 * cost.tree_plan(depth_group, c_bytes).time;

  SummaAbTimes out;
  out.blocking_s = static_cast<double>(q) * (t_row + t_col + t_gemm) + t_depth;

  // Pipelined k-loop: identical clock arithmetic to the 2D predictor on the
  // /d sub-panel quantities, followed by the sequential depth fold.
  double t = 0, row_link = 0, col_link = 0;
  double a_done[2] = {0, 0}, b_done[2] = {0, 0};
  const auto issue = [&](int slot) {
    a_done[slot] = std::max(t, row_link) + t_row;
    row_link = a_done[slot];
    b_done[slot] = std::max(t, col_link) + t_col;
    col_link = b_done[slot];
  };
  issue(0);
  for (int l = 0; l < q; ++l) {
    const int cur = l & 1;
    if (l > 0) t += t_gemm;
    if (l + 1 < q) issue(cur ^ 1);
    t = std::max(t, a_done[cur]);
    t = std::max(t, b_done[cur]);
  }
  t += t_gemm;
  out.pipelined_s = q > 1 ? t + t_depth : out.blocking_s;
  return out;
}

namespace {

// Rank 0's groups on the bunched mesh (mirrors predict_summa_ab_times): every
// rank's decode schedule is symmetric apart from the attention term, which is
// handled explicitly, so rank 0's clock is the step time.
std::vector<int> world_group(int p) {
  std::vector<int> g(static_cast<std::size_t>(p));
  for (int i = 0; i < p; ++i) g[static_cast<std::size_t>(i)] = i;
  return g;
}

std::uint64_t decode_attention_mults(const std::vector<tensor::index_t>& lens,
                                     tensor::index_t heads, tensor::index_t d) {
  // Σ_slot heads · 2·(len+1)·d — matches model::attention_decode_mults; the
  // perfmodel stays link-free of the model layer by restating the two GEMVs.
  std::uint64_t total = 0;
  for (const tensor::index_t len : lens) {
    total += static_cast<std::uint64_t>(heads) * 2u *
             static_cast<std::uint64_t>(len + 1) * static_cast<std::uint64_t>(d);
  }
  return total;
}

}  // namespace

double predict_serial_decode_step_time(const comm::CostModel& cost, const Workload& w,
                                       const std::vector<tensor::index_t>& lens,
                                       std::size_t elem_size) {
  (void)elem_size;
  const std::uint64_t n = static_cast<std::uint64_t>(w.b);
  const std::uint64_t h = static_cast<std::uint64_t>(w.h);
  const std::uint64_t d = static_cast<std::uint64_t>(w.h / w.n);
  // qkv (3h) + proj (h) + fc1 (4h) + fc2 (4h) GEMMs per layer, then lm logits.
  std::uint64_t mults = static_cast<std::uint64_t>(w.layers) *
                        (n * 12u * h * h + decode_attention_mults(lens, w.n, d));
  mults += n * static_cast<std::uint64_t>(w.v) * h;
  return cost.compute_time(mults);
}

double predict_megatron_decode_step_time(const comm::CostModel& cost, const Workload& w, int p,
                                         const std::vector<tensor::index_t>& lens,
                                         std::size_t elem_size) {
  const std::vector<int> world = world_group(p);
  const std::uint64_t n = static_cast<std::uint64_t>(w.b);
  const std::uint64_t h = static_cast<std::uint64_t>(w.h);
  const std::uint64_t up = static_cast<std::uint64_t>(p);
  const std::uint64_t nh_bytes = n * h * elem_size;
  // Embed assembly + 2 per-layer all-reduces (attention proj and fc2), all
  // n·h; the argmax gathers every rank's [n, v/p] logits slice.
  double t = cost.ring_allreduce_time(world, nh_bytes);
  t += 2.0 * static_cast<double>(w.layers) * cost.ring_allreduce_time(world, nh_bytes);
  t += cost.ring_allgather_time(world, n * static_cast<std::uint64_t>(w.v) * elem_size);
  // Per-rank GEMMs: column-sharded qkv/fc1, row-sharded proj/fc2, vocab-sliced
  // logits; attention runs on heads/p heads of every slot — symmetric.
  std::uint64_t mults =
      static_cast<std::uint64_t>(w.layers) *
      (n * 12u * h * h / up +
       decode_attention_mults(lens, w.n / p, w.h / w.n));
  mults += n * (static_cast<std::uint64_t>(w.v) / up) * h;
  return t + cost.compute_time(mults);
}

double predict_optimus_decode_step_time(const comm::CostModel& cost, const Workload& w, int q,
                                        const std::vector<tensor::index_t>& lens,
                                        std::size_t elem_size) {
  std::vector<int> row_group(static_cast<std::size_t>(q));
  std::vector<int> col_group(static_cast<std::size_t>(q));
  for (int i = 0; i < q; ++i) {
    row_group[static_cast<std::size_t>(i)] = i;
    col_group[static_cast<std::size_t>(i)] = i * q;
  }
  const std::uint64_t n = static_cast<std::uint64_t>(w.b);
  const std::uint64_t nl = n / static_cast<std::uint64_t>(q);
  const std::uint64_t hq = static_cast<std::uint64_t>(w.h) / static_cast<std::uint64_t>(q);
  const std::uint64_t vq = static_cast<std::uint64_t>(w.v) / static_cast<std::uint64_t>(q);
  const double N = static_cast<double>(w.layers);
  const auto tree = [&](const std::vector<int>& g, std::uint64_t bytes) {
    return q > 1 ? cost.tree_plan(g, bytes).time : 0.0;
  };

  // Packed embed: q rounds, root row l broadcasting its [n, h/q] packed rows
  // down the columns.
  double t = static_cast<double>(q) * tree(col_group, n * hq * elem_size);
  // Per layer: 2 layernorm stat all-reduces (2 scalars per local row, along
  // the mesh row) + the four blocking SUMMA calls, plus the final layernorm.
  const double t_ln =
      q > 1 ? cost.ring_allreduce_time(row_group, 2u * nl * elem_size) : 0.0;
  t += (2.0 * N + 1.0) * t_ln;
  const std::int64_t m = w.b, h = w.h;
  t += N * (predict_summa_ab_times(cost, q, m, h, 3 * h, elem_size).blocking_s +
            predict_summa_ab_times(cost, q, m, h, h, elem_size).blocking_s +
            predict_summa_ab_times(cost, q, m, h, 4 * h, elem_size).blocking_s +
            predict_summa_ab_times(cost, q, m, 4 * h, h, elem_size).blocking_s);
  // lm-head summa_abt: q steps of column-broadcast E block [v/q, h/q], local
  // GEMM [n/q, v/q], row-reduce of the partial.
  t += static_cast<double>(q) *
       (tree(col_group, vq * hq * elem_size) + cost.compute_time(nl * vq * hq) +
        tree(row_group, nl * vq * elem_size));
  // Argmax assembly: vocab direction along the row, slot blocks down the
  // column (the column payload carries the full row-gathered [q·n/q, v/q]).
  if (q > 1) {
    t += cost.ring_allgather_time(row_group, static_cast<std::uint64_t>(q) * nl * vq * elem_size);
    t += cost.ring_allgather_time(
        col_group, static_cast<std::uint64_t>(q) * q * nl * vq * elem_size);
  }
  // Attention: mesh row i hosts slots [i·n/q, (i+1)·n/q) on heads/q heads; the
  // row clocks re-align at the next column collective, so each layer pays the
  // slowest row.
  std::uint64_t worst = 0;
  for (int i = 0; i < q; ++i) {
    const std::vector<tensor::index_t> slice(
        lens.begin() + static_cast<std::ptrdiff_t>(i) * static_cast<std::ptrdiff_t>(nl),
        lens.begin() + static_cast<std::ptrdiff_t>(i + 1) * static_cast<std::ptrdiff_t>(nl));
    worst = std::max(worst, decode_attention_mults(slice, w.n / q, w.h / w.n));
  }
  t += N * cost.compute_time(worst);
  return t;
}

double megatron_lm_allreduce_weighted(const Workload& w, int p) {
  const double stem =
      static_cast<double>(w.layers) * (megatron_fwd_comm(w, p) + megatron_bwd_comm(w, p));
  const double ar = 2.0 * (p - 1) / static_cast<double>(p);
  const double bsh = static_cast<double>(w.b) * w.s * w.h;
  const double bs = static_cast<double>(w.b) * w.s;
  // Embedding assembly (bsh) + d_hidden (bsh) + vocab-CE statistics (3·bs;
  // the max is recorded with the same ring weight as the sums).
  return stem + ar * (2.0 * bsh + 3.0 * bs);
}

double optimus_lm_bcast_reduce_weighted(const Workload& w, int q) {
  const int p = q * q;
  const double lg = std::log2(static_cast<double>(q));
  const double hq = static_cast<double>(w.h) / q;
  const double fq = 4.0 * hq;
  const double tq = 3.0 * hq;
  const double vq = static_cast<double>(w.v) / q;
  const double s = static_cast<double>(w.s);
  const double N = static_cast<double>(w.layers);

  // SUMMA stem (Table 1; backward includes the checkpoint recompute).
  const double stem = N * (optimus_fwd_comm(w, p) + optimus_bwd_comm(w, p));
  // lm-head: Alg-2 logits forward, Alg-1 dX and Alg-3 dE backward. Each SUMMA
  // call moves q·(broadcast block + reduce block) at tree weight log₂ q.
  const double rows = static_cast<double>(w.b) / q * s;
  const double lm_fwd = lg * q * (vq * hq + rows * vq);
  const double lm_bwd = lg * q * (rows * vq + vq * hq)    // ab: dlogits + E
                        + lg * q * (rows * vq + vq * hq); // atb: dlogits + dE
  // Hosted-slice broadcasts per layer forward (and again in the recompute):
  // 4 LN slices (hq each) + biases (tq + 2·hq + fq); gradients reduce the
  // same volumes backward.
  const double hosted_fwd = lg * (4 * hq + tq + 2 * hq + fq);
  const double hosted_bwd = hosted_fwd;
  const double hosted = N * (2 * hosted_fwd + hosted_bwd);
  // Final layernorm: 2 slice broadcasts forward, 2 partial reductions back.
  const double final_ln = lg * (2 * hq) + lg * (2 * hq);
  // Embedding: q table-block broadcasts + position slice forward; mirrored
  // reductions backward.
  const double embed = 2.0 * lg * (q * vq * hq + s * hq);
  return stem + lm_fwd + lm_bwd + hosted + final_ln + embed;
}

bool CommValidation::ok(double rtol) const {
  for (const auto& row : rows) {
    if (row.rel_err() > rtol) return false;
  }
  return true;
}

CommValidation validate_lm_step_comm(Scheme scheme, const Workload& w, int p,
                                     const comm::CommStats& measured) {
  CommValidation v;
  v.scheme = scheme;
  v.p = p;
  if (scheme == Scheme::kMegatron) {
    v.rows.push_back({"allreduce", measured.allreduce.weighted,
                      megatron_lm_allreduce_weighted(w, p)});
  } else {
    int q = 1;
    while (q * q < p) ++q;
    v.rows.push_back({"broadcast+reduce",
                      measured.broadcast.weighted + measured.reduce.weighted,
                      optimus_lm_bcast_reduce_weighted(w, q)});
  }
  return v;
}

}  // namespace optimus::perfmodel
