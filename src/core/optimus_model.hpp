#pragma once

// Optimus: the paper's 2D tensor-parallel Transformer (§3.2).
//
// The p = q×q devices form a mesh; *both* parameters and activations are
// partitioned into q×q blocks — nothing is replicated:
//
//   activations [b·s, h]  → device (i, j) holds batch block i, hidden slice j
//                           with the whole sequence present ([b/q, s, h/q])
//   weights     [h, h']   → q×q SUMMA blocks
//   embedding   [v, h]    → q×q blocks; lm-head is Algorithm 2 on the same
//                           blocks (tied weights)
//   biases, layernorm γ/β, positional embedding, classifier — h/q (or full
//     small) slices hosted by mesh row 0, broadcast down columns in forward,
//     gradients reduced back to row 0 (Fig. 5)
//
// Every big matmul is a SUMMA call: Algorithm 1 (C=AB) in forward,
// Algorithm 2 (dX = dC·Wᵀ) and Algorithm 3 (dW = Xᵀ·dC) in backward — the
// closed differentiation set of eqs. 1–3. Attention itself is entirely local:
// device (i, j) owns b/q sequences and n/q heads (§3.2.1).
//
// Memory management implements §3.2.3: a `workspace` arena for SUMMA
// broadcast/reduce temporaries, a `forward` arena for intra-layer
// activations, a `backward` arena for intra-layer gradients, persistent
// parameter-gradient tensors, and persistent per-layer checkpoint inputs
// (the conjunction buffer is the dx tensor handed between layers). With
// activation checkpointing (default), forward keeps only each layer's input
// block and recomputes the rest during backward, so both arenas are sized for
// a single layer regardless of N.

#include <memory>
#include <vector>

#include "mesh/mesh.hpp"
#include "model/config.hpp"
#include "model/kv_cache.hpp"
#include "tensor/arena.hpp"
#include "tensor/ops.hpp"
#include "tensor/tensor.hpp"

namespace optimus::core {

enum class BufferMode {
  kPooled,  // §3.2.3 pre-allocated arenas (default)
  kHeap,    // plain per-op allocation — the E8 ablation baseline
};

struct OptimusOptions {
  bool checkpoint = true;
  BufferMode buffers = BufferMode::kPooled;
  // Paper §6 "operation fusion": stream attention one (batch, head) at a
  // time through a 2s² scratch instead of materialising the [b/q, n/q, s, s]
  // probabilities (recomputed per head in backward).
  bool fuse_attention = false;
  // Paper §3.2.3 method (2): "update the parameters immediately after the
  // backward pass of a Transformer layer, then reset the parameter gradient
  // buffer". All layers share ONE set of weight-gradient tensors; training
  // must go through backward_lm_fused_update (plain SGD), and gradients()
  // is unavailable. Parameter-gradient memory becomes one layer deep.
  bool fused_update = false;
};

template <typename T>
class OptimusTransformer {
 public:
  /// Collective: all p ranks construct together over an existing mesh.
  OptimusTransformer(const model::TransformerConfig& cfg, mesh::Mesh2D& mesh,
                     OptimusOptions options = {});

  const model::TransformerConfig& config() const { return cfg_; }
  mesh::Mesh2D& mesh() { return *mesh_; }
  int q() const { return mesh_->q(); }
  bool on_row0() const { return mesh_->row() == 0; }

  /// Local rows of the activation matrix: (b/q)·s.
  tensor::index_t rows_local() const { return cfg_.batch / q() * cfg_.seq_len; }
  /// Local hidden columns: h/q.
  tensor::index_t h_local() const { return cfg_.hidden / q(); }
  tensor::index_t vocab_local() const { return cfg_.vocab / q(); }
  tensor::index_t heads_local() const { return cfg_.heads / q(); }
  tensor::index_t batch_local() const { return cfg_.batch / q(); }

  /// Stem forward. `tokens` is the *global* [b, s] tensor (every rank passes
  /// the same; each slices its own batch block — input distribution is out of
  /// scope, as in the paper). Returns this device's final hidden block
  /// [rows_local, h/q].
  const tensor::TensorT<T>& forward(const tensor::ITensor& tokens);

  /// Distributed LM loss (identical on every rank). Labels are global [b, s].
  T lm_loss(const tensor::ITensor& labels);
  void backward_lm();

  /// §3.2.3 method (2): backward through the LM branch, applying an SGD step
  /// (param -= lr·grad) to each layer's parameters immediately after that
  /// layer's backward and resetting the shared gradient buffer. The
  /// embedding, positional and final-layernorm parameters are updated at the
  /// end (their gradients accumulate across the whole pass). Requires
  /// options.fused_update.
  void backward_lm_fused_update(double lr);

  /// Classification branch; labels global [b].
  T cls_loss(const tensor::ITensor& labels);
  void backward_cls();

  /// This device's block of the lm-head logits [rows_local, v/q] from the
  /// last forward() (runs Algorithm 2; allocates).
  tensor::TensorT<T> lm_logits_block();

  // -- incremental decode ----------------------------------------------------

  /// Local cache slots when `slots_global` sequences are in flight: the slot
  /// (= batch) dimension is row-split like activations.
  tensor::index_t slots_local(tensor::index_t slots_global) const {
    return slots_global / q();
  }

  /// This device's KV-cache shard for `slots_global` in-flight sequences:
  /// 2D-sharded exactly like activations — row-split slots, column-split
  /// heads — with `seq_len` capacity. slots_global must divide by q.
  model::KvCacheT<T> make_kv_cache(tensor::index_t slots_global) const {
    OPT_CHECK(slots_global >= q() && slots_global % q() == 0,
              "decode slots " << slots_global << " must be a positive multiple of q=" << q());
    return model::KvCacheT<T>(cfg_.layers, slots_local(slots_global), cfg_.seq_len,
                              heads_local(), cfg_.head_dim());
  }

  /// One decode step (collective): `tokens` is the *global* [slots] vector
  /// (every rank passes the same); this device processes its row block of
  /// slots against its cache shard. Reuses the SUMMA collectives and the
  /// ordered-fold layernorm reduction, so each returned row is bitwise
  /// identical to the matching row of forward() on the full prefix. Appends
  /// this step's K/V, advances active slots (`active` is the global mask;
  /// null = all), and returns this device's hidden block [slots/q, h/q].
  /// Hosted slices (biases, LN γ/β, positional rows) are broadcast down
  /// columns once and cached across steps — call invalidate_decode_params()
  /// if parameters change between a training step and decode.
  const tensor::TensorT<T>& forward_decode(const tensor::ITensor& tokens,
                                           model::KvCacheT<T>& cache,
                                           const std::vector<std::uint8_t>* active = nullptr);

  /// This device's block of the lm-head logits [slots/q, v/q] from the last
  /// forward_decode() (Algorithm 2; allocates).
  tensor::TensorT<T> lm_logits_decode_block();

  void invalidate_decode_params() { decode_params_ready_ = false; }

  /// Classifier logits for this device's batch block [b/q, num_classes]
  /// (replicated across the mesh row). Collective; must follow forward().
  tensor::TensorT<T> cls_logits_block();

  void zero_grads();

  /// Parameters *owned* by this device (row-0 devices own the hosted slices
  /// in addition to their weight blocks), paired with gradients().
  std::vector<tensor::TensorT<T>*> parameters();
  std::vector<tensor::TensorT<T>*> gradients();

  /// Gradient w.r.t. this device's block of the embedding output.
  const tensor::TensorT<T>& input_grad() const { return d_x0_; }

  // Structured access for equivalence tests.
  struct Layer {
    // q×q weight blocks (every device).
    tensor::TensorT<T> qkv_w;   // [h/q, 3h/q]
    tensor::TensorT<T> proj_w;  // [h/q, h/q]
    tensor::TensorT<T> fc1_w;   // [h/q, 4h/q]
    tensor::TensorT<T> fc2_w;   // [4h/q, h/q]
    // Row-0-hosted slices (defined only where mesh row == 0).
    tensor::TensorT<T> ln1_g, ln1_b, ln2_g, ln2_b;  // [h/q]
    tensor::TensorT<T> qkv_b;                       // [3h/q]
    tensor::TensorT<T> proj_b;                      // [h/q]
    tensor::TensorT<T> fc1_b;                       // [4h/q]
    tensor::TensorT<T> fc2_b;                       // [h/q]
  };
  Layer& layer(tensor::index_t i) { return layers_[i]; }
  Layer& layer_grad(tensor::index_t i) { return grads_[i]; }
  tensor::TensorT<T>& embedding_block() { return embedding_; }
  tensor::TensorT<T>& embedding_block_grad() { return d_embedding_; }
  tensor::TensorT<T>& pos_embedding_slice() { return pos_embedding_; }
  tensor::TensorT<T>& pos_embedding_slice_grad() { return d_pos_embedding_; }
  tensor::TensorT<T>& final_ln_g() { return final_ln_g_; }
  tensor::TensorT<T>& final_ln_g_grad() { return d_final_ln_g_; }
  tensor::TensorT<T>& cls_w_slice_grad() { return d_cls_w_; }
  const tensor::TensorT<T>& hidden_block() const { return hidden_; }

  /// High-water marks of the three arenas (pooled mode), for the E8 ablation.
  std::uint64_t workspace_high_water() const { return ws_ ? ws_->high_water() : 0; }
  std::uint64_t forward_high_water() const { return fwd_ ? fwd_->high_water() : 0; }
  std::uint64_t backward_high_water() const { return bwd_ ? bwd_->high_water() : 0; }

 private:
  struct LayerActs {
    tensor::TensorT<T> input;  // [rows, h/q] — the checkpoint
    // Arena-backed (or heap) intra-layer activations.
    tensor::TensorT<T> ln1_out, ln1_xhat, ln1_istd;
    tensor::TensorT<T> ln1_g_bcast, ln1_b_bcast, ln2_g_bcast, ln2_b_bcast;
    tensor::TensorT<T> qkv, probs, ctx, x1;
    tensor::TensorT<T> ln2_out, ln2_xhat, ln2_istd;
    tensor::TensorT<T> fc1_out, gelu_out;
    bool full = false;
  };

  tensor::TensorT<T> alloc_fwd(tensor::Shape s) {
    return fwd_ ? fwd_->template alloc<T>(s) : tensor::TensorT<T>(s);
  }
  tensor::TensorT<T> alloc_bwd(tensor::Shape s) {
    return bwd_ ? bwd_->template alloc<T>(s) : tensor::TensorT<T>(s);
  }
  tensor::Arena* ws() { return ws_.get(); }

  void init_parameters();
  void init_arenas();

  /// Broadcasts a row-0-hosted slice down this device's column. The result
  /// lives in the forward arena (valid for the layer's lifetime).
  tensor::TensorT<T> bcast_from_row0(const tensor::TensorT<T>& hosted, tensor::Shape shape);
  /// Reduces a local partial gradient down the column; row 0 accumulates it
  /// into `grad_slot`.
  void reduce_to_row0(tensor::TensorT<T>& partial, tensor::TensorT<T>& grad_slot);

  tensor::TensorT<T> embed(const tensor::ITensor& tokens);
  /// Broadcasts the row-0/col-hosted slices decode needs (biases, LN γ/β,
  /// positional table) down the columns once; cached until invalidated.
  void ensure_decode_params();
  tensor::TensorT<T> layer_forward(tensor::index_t l, LayerActs& a);
  tensor::TensorT<T> layer_backward(tensor::index_t l, LayerActs& a,
                                    const tensor::TensorT<T>& dout);
  void backward_stem(tensor::TensorT<T> d_hidden);
  void release_layer(LayerActs& a);
  /// Applies param -= lr·grad to layer l's owned tensors and zeroes the
  /// (shared) gradient slots. Only used in fused_update mode.
  void apply_layer_update(tensor::index_t l, double lr);

  model::TransformerConfig cfg_;
  mesh::Mesh2D* mesh_;
  OptimusOptions options_;

  std::unique_ptr<tensor::Arena> ws_, fwd_, bwd_;

  // Parameters / gradients.
  tensor::TensorT<T> embedding_, d_embedding_;          // [v/q, h/q]
  tensor::TensorT<T> pos_embedding_, d_pos_embedding_;  // [s, h/q] (row 0)
  std::vector<Layer> layers_, grads_;
  tensor::TensorT<T> final_ln_g_, final_ln_b_, d_final_ln_g_, d_final_ln_b_;  // [h/q] (row 0)
  tensor::TensorT<T> cls_w_, cls_b_, d_cls_w_, d_cls_b_;  // [h/q, c], [c] (row 0)

  // Forward state.
  tensor::ITensor tokens_local_;  // [b/q, s]
  tensor::TensorT<T> x0_;        // [rows, h/q]
  std::vector<LayerActs> acts_;
  tensor::TensorT<T> stem_out_;
  tensor::TensorT<T> final_xhat_, final_istd_, hidden_;
  tensor::TensorT<T> final_g_bcast_, final_b_bcast_;
  tensor::TensorT<T> d_x0_;

  // Decode state: column-broadcast copies of the hosted slices (persistent
  // across steps) and the last step's hidden block.
  struct DecodeParams {
    tensor::TensorT<T> ln1_g, ln1_b, ln2_g, ln2_b;  // [h/q]
    tensor::TensorT<T> qkv_b;                       // [3h/q]
    tensor::TensorT<T> proj_b, fc2_b;               // [h/q]
    tensor::TensorT<T> fc1_b;                       // [4h/q]
  };
  std::vector<DecodeParams> decode_params_;
  tensor::TensorT<T> decode_pos_;                      // [s, h/q]
  tensor::TensorT<T> decode_final_g_, decode_final_b_;  // [h/q]
  bool decode_params_ready_ = false;
  tensor::TensorT<T> decode_hidden_;  // [slots/q, h/q], last forward_decode()

  // Fused-update state: lr applied per layer during backward_stem (< 0 when
  // not in a fused-update pass).
  double fused_lr_ = -1.0;

  // Loss state.
  tensor::TensorT<T> lm_exp_, lm_inv_z_;
  tensor::ITensor lm_labels_local_;  // [b/q, s]
  tensor::index_t lm_active_ = 0;
  tensor::TensorT<T> cls_probs_, cls_pooled_, cls_w_bcast_;
  tensor::ITensor cls_labels_local_;
};

}  // namespace optimus::core
