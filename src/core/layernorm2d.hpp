#pragma once

// Row-parallel layernorm for the 2D layout (paper §3.2.2).
//
// Each device holds a [rows_local, h/q] block of the activations, with the
// hidden dimension split across its mesh row. The per-token mean and variance
// need the full hidden width, so Σx and Σx² are computed locally and
// all-reduced along the mesh row (one collective, both sums packed into a
// single buffer). γ and β are h/q slices (hosted on mesh row 0 and broadcast
// down columns by the caller, Fig. 5).
//
// Backward needs two more row statistics — Σ_j dxhat and Σ_j dxhat·xhat —
// obtained the same way. Parameter gradients are returned as *local partial*
// slices; the caller reduces them down the column to row 0.

#include "comm/communicator.hpp"
#include "tensor/tensor.hpp"

namespace optimus::core {

/// y = γ ⊙ xhat + β over the full (distributed) hidden width h_global.
/// Saves xhat and 1/σ for backward.
template <typename T>
void layernorm2d_forward(comm::Communicator& row_comm, const tensor::TensorT<T>& x,
                         const tensor::TensorT<T>& gamma_slice,
                         const tensor::TensorT<T>& beta_slice, T eps,
                         tensor::index_t h_global, tensor::TensorT<T>& y,
                         tensor::TensorT<T>& xhat, tensor::TensorT<T>& inv_std);

/// dx from dy; dgamma/dbeta accumulate *local* partial sums (reduce to row 0
/// is the caller's job).
template <typename T>
void layernorm2d_backward(comm::Communicator& row_comm, const tensor::TensorT<T>& xhat,
                          const tensor::TensorT<T>& inv_std,
                          const tensor::TensorT<T>& gamma_slice, const tensor::TensorT<T>& dy,
                          tensor::index_t h_global, tensor::TensorT<T>& dx,
                          tensor::TensorT<T>& dgamma_partial,
                          tensor::TensorT<T>& dbeta_partial);

}  // namespace optimus::core
