#include "core/optimus_model.hpp"

#include <cmath>
#include <optional>
#include <utility>

#include "core/layernorm2d.hpp"
#include "model/attention.hpp"
#include "model/param_init.hpp"
#include "summa/summa.hpp"
#include "tensor/distribution.hpp"

namespace optimus::core {

namespace {

using tensor::Arena;
using tensor::ArenaScope;
using tensor::index_t;
using tensor::ITensor;
using tensor::Shape;
using tensor::TensorT;
namespace ops = tensor::ops;
using model::LayerWeight;

std::uint64_t align64(std::uint64_t bytes) { return (bytes + 63) & ~std::uint64_t{63}; }

}  // namespace

template <typename T>
OptimusTransformer<T>::OptimusTransformer(const model::TransformerConfig& cfg,
                                          mesh::Mesh2D& mesh, OptimusOptions options)
    : cfg_(cfg), mesh_(&mesh), options_(options) {
  cfg_.validate_for_mesh(mesh.q(), mesh.depth());
  OPT_CHECK(options_.buffers == BufferMode::kHeap || options_.checkpoint,
            "pooled buffers require activation checkpointing (the forward arena is "
            "recycled per layer)");
  init_parameters();
  if (options_.buffers == BufferMode::kPooled) init_arenas();
}

template <typename T>
void OptimusTransformer<T>::init_parameters() {
  const int q = mesh_->q();
  const int row = mesh_->row();
  const int col = mesh_->col();
  const index_t h = cfg_.hidden;
  const index_t hq = h_local();
  const index_t f = cfg_.ffn_hidden();
  const index_t fq = f / q;
  const index_t tq = 3 * hq;
  const index_t vq = vocab_local();
  const index_t c = cfg_.num_classes;
  const util::CounterRng rng(cfg_.seed);
  const T scale = static_cast<T>(cfg_.init_scale);

  // Embedding block (v/q × h/q): global offsets (row·v/q, col·h/q).
  embedding_ = TensorT<T>(Shape{vq, hq});
  ops::fill_counter_uniform(embedding_, rng, model::kEmbeddingStream, scale, row * vq,
                            col * hq, h);
  d_embedding_ = TensorT<T>::zeros(embedding_.shape());

  if (row == 0) {
    pos_embedding_ = TensorT<T>(Shape{cfg_.seq_len, hq});
    ops::fill_counter_uniform(pos_embedding_, rng, model::kPosEmbeddingStream, scale, 0,
                              col * hq, h);
    d_pos_embedding_ = TensorT<T>::zeros(pos_embedding_.shape());
  }

  layers_.resize(cfg_.layers);
  grads_.resize(cfg_.layers);
  for (index_t l = 0; l < cfg_.layers; ++l) {
    Layer& lp = layers_[l];
    lp.qkv_w = TensorT<T>(Shape{hq, tq});
    ops::fill_counter_uniform(lp.qkv_w, rng, model::layer_weight_stream(l, LayerWeight::kQkv),
                              scale, row * hq, col * tq, 3 * h);
    lp.proj_w = TensorT<T>(Shape{hq, hq});
    ops::fill_counter_uniform(lp.proj_w, rng,
                              model::layer_weight_stream(l, LayerWeight::kProj), scale,
                              row * hq, col * hq, h);
    lp.fc1_w = TensorT<T>(Shape{hq, fq});
    ops::fill_counter_uniform(lp.fc1_w, rng, model::layer_weight_stream(l, LayerWeight::kFc1),
                              scale, row * hq, col * fq, f);
    lp.fc2_w = TensorT<T>(Shape{fq, hq});
    ops::fill_counter_uniform(lp.fc2_w, rng, model::layer_weight_stream(l, LayerWeight::kFc2),
                              scale, row * fq, col * hq, h);

    Layer& lg = grads_[l];
    if (options_.fused_update && l > 0) {
      // §3.2.3 method (2): one shared gradient buffer for every layer —
      // handles alias layer 0's tensors.
      lg.qkv_w = grads_[0].qkv_w;
      lg.proj_w = grads_[0].proj_w;
      lg.fc1_w = grads_[0].fc1_w;
      lg.fc2_w = grads_[0].fc2_w;
    } else {
      lg.qkv_w = TensorT<T>::zeros(lp.qkv_w.shape());
      lg.proj_w = TensorT<T>::zeros(lp.proj_w.shape());
      lg.fc1_w = TensorT<T>::zeros(lp.fc1_w.shape());
      lg.fc2_w = TensorT<T>::zeros(lp.fc2_w.shape());
    }

    if (row == 0) {
      // Hosted slices for this mesh column (Fig. 5).
      lp.ln1_g = TensorT<T>::full(Shape{hq}, T{1});
      lp.ln1_b = TensorT<T>::zeros(Shape{hq});
      lp.ln2_g = TensorT<T>::full(Shape{hq}, T{1});
      lp.ln2_b = TensorT<T>::zeros(Shape{hq});
      lp.qkv_b = TensorT<T>::zeros(Shape{tq});
      lp.proj_b = TensorT<T>::zeros(Shape{hq});
      lp.fc1_b = TensorT<T>::zeros(Shape{fq});
      lp.fc2_b = TensorT<T>::zeros(Shape{hq});
      if (options_.fused_update && l > 0) {
        lg.ln1_g = grads_[0].ln1_g;
        lg.ln1_b = grads_[0].ln1_b;
        lg.ln2_g = grads_[0].ln2_g;
        lg.ln2_b = grads_[0].ln2_b;
        lg.qkv_b = grads_[0].qkv_b;
        lg.proj_b = grads_[0].proj_b;
        lg.fc1_b = grads_[0].fc1_b;
        lg.fc2_b = grads_[0].fc2_b;
      } else {
        lg.ln1_g = TensorT<T>::zeros(Shape{hq});
        lg.ln1_b = TensorT<T>::zeros(Shape{hq});
        lg.ln2_g = TensorT<T>::zeros(Shape{hq});
        lg.ln2_b = TensorT<T>::zeros(Shape{hq});
        lg.qkv_b = TensorT<T>::zeros(Shape{tq});
        lg.proj_b = TensorT<T>::zeros(Shape{hq});
        lg.fc1_b = TensorT<T>::zeros(Shape{fq});
        lg.fc2_b = TensorT<T>::zeros(Shape{hq});
      }
    }
  }

  if (row == 0) {
    final_ln_g_ = TensorT<T>::full(Shape{hq}, T{1});
    final_ln_b_ = TensorT<T>::zeros(Shape{hq});
    d_final_ln_g_ = TensorT<T>::zeros(Shape{hq});
    d_final_ln_b_ = TensorT<T>::zeros(Shape{hq});
    // Classifier: row-slice of [h, c] for this column, plus a replicated
    // bias (one copy per column, updated identically).
    cls_w_ = TensorT<T>(Shape{hq, c});
    ops::fill_counter_uniform(cls_w_, rng, model::kClsHeadStream, scale, col * hq, 0, c);
    cls_b_ = TensorT<T>::zeros(Shape{c});
    d_cls_w_ = TensorT<T>::zeros(Shape{hq, c});
    d_cls_b_ = TensorT<T>::zeros(Shape{c});
  }
}

template <typename T>
void OptimusTransformer<T>::init_arenas() {
  const int q = mesh_->q();
  const index_t rows = rows_local();
  const index_t hq = h_local();
  const index_t fq = cfg_.ffn_hidden() / q;
  const index_t tq = 3 * hq;
  const index_t vq = vocab_local();
  const index_t s = cfg_.seq_len;
  const index_t probs_elems =
      model::attention_probs_elems(batch_local(), s, heads_local());
  const index_t attn_fwd_elems =
      options_.fuse_attention ? model::attention_fused_scratch_elems(s) : probs_elems;
  const auto bytes = [](index_t elems) {
    return align64(static_cast<std::uint64_t>(elems) * sizeof(T));
  };
  // Workspace: max footprint of any single SUMMA call (they run one at a
  // time, §3.2.3) or of the embedding scatter/gather scope. Each call is
  // sized by workspace_bytes on its exact (A, B, C) block roles, which
  // covers the pipelined schedule's double-buffered panels and reduce
  // scratch.
  const int depth = mesh_->depth();
  const auto ws3 = [depth](index_t a, index_t b, index_t c) {
    return summa::workspace_bytes(static_cast<std::uint64_t>(a), static_cast<std::uint64_t>(b),
                                  static_cast<std::uint64_t>(c), sizeof(T), depth);
  };
  std::uint64_t ws = 0;
  const auto take = [&ws](std::uint64_t v) { ws = std::max(ws, v); };
  take(ws3(rows * hq, hq * tq, rows * tq));  // qkv forward (Alg 1)
  take(ws3(rows * tq, hq * tq, rows * hq));  // qkv dX (Alg 2)
  take(ws3(rows * hq, rows * tq, hq * tq));  // qkv dW (Alg 3)
  take(ws3(rows * hq, hq * hq, rows * hq));  // proj forward + dX
  take(ws3(rows * hq, rows * hq, hq * hq));  // proj dW
  take(ws3(rows * hq, hq * fq, rows * fq));  // fc1 forward
  take(ws3(rows * fq, hq * fq, rows * hq));  // fc1 dX
  take(ws3(rows * hq, rows * fq, hq * fq));  // fc1 dW
  take(ws3(rows * fq, fq * hq, rows * hq));  // fc2 forward
  take(ws3(rows * hq, fq * hq, rows * fq));  // fc2 dX
  take(ws3(rows * fq, rows * hq, fq * hq));  // fc2 dW
  take(ws3(rows * hq, vq * hq, rows * vq));  // lm-head logits (Alg 2)
  take(ws3(rows * vq, vq * hq, rows * hq));  // lm-head d_hidden (Alg 1)
  take(ws3(rows * vq, rows * hq, vq * hq));  // lm-head d_embedding (Alg 3)
  take(bytes(vq * hq) + bytes(s * hq));  // embedding forward/backward scope
  ws_ = std::make_unique<Arena>("workspace", ws);

  // Forward arena: one layer's intra-layer activations (checkpointing keeps
  // only the layer inputs outside).
  std::uint64_t fwd = 0;
  fwd += 2 * bytes(hq);            // ln1 γ/β broadcast
  fwd += 2 * bytes(rows * hq);     // ln1_out, ln1_xhat
  fwd += bytes(rows);              // ln1_istd
  fwd += bytes(rows * tq);         // qkv
  fwd += bytes(tq);                // qkv bias broadcast
  fwd += bytes(attn_fwd_elems);    // attention probabilities (or fused scratch)
  fwd += bytes(rows * hq);         // ctx
  fwd += bytes(rows * hq);         // x1
  fwd += bytes(hq);                // proj bias broadcast
  fwd += 2 * bytes(hq);            // ln2 γ/β broadcast
  fwd += 2 * bytes(rows * hq);     // ln2_out, ln2_xhat
  fwd += bytes(rows);              // ln2_istd
  fwd += bytes(rows * fq);         // fc1_out
  fwd += bytes(fq);                // fc1 bias broadcast
  fwd += bytes(rows * fq);         // gelu_out
  fwd += bytes(hq);                // fc2 bias broadcast
  fwd_ = std::make_unique<Arena>("forward", fwd);

  // Backward arena: one layer's intra-layer gradients.
  std::uint64_t bwd = 0;
  bwd += bytes(rows * fq);  // dgelu
  bwd += bytes(hq);         // fc2 bias partial
  bwd += bytes(rows * fq);  // dm1
  bwd += bytes(fq);         // fc1 bias partial
  bwd += bytes(rows * hq);  // dln2
  bwd += bytes(rows * hq);  // dx1
  bwd += 2 * bytes(hq);     // ln2 γ/β partials
  bwd += bytes(rows * hq);  // dctx
  bwd += bytes(hq);         // proj bias partial
  bwd += bytes(rows * tq);  // dqkv
  bwd += bytes(tq);         // qkv bias partial
  bwd += bytes(rows * hq);  // dln1
  bwd += bytes(rows * hq);  // din
  bwd += 2 * bytes(hq);     // ln1 γ/β partials
  if (options_.fuse_attention) {
    bwd += bytes(model::attention_fused_scratch_elems(s));  // recompute scratch
  }
  bwd_ = std::make_unique<Arena>("backward", bwd);
}

template <typename T>
TensorT<T> OptimusTransformer<T>::bcast_from_row0(const TensorT<T>& hosted, Shape shape) {
  TensorT<T> buf = alloc_fwd(shape);
  if (on_row0()) {
    OPT_CHECK(hosted.defined() && hosted.numel() == buf.numel(), "hosted slice mismatch");
    buf.copy_from(hosted.reshape(shape));
  }
  mesh_->col_comm().broadcast(buf, /*root=*/0);
  return buf;
}

template <typename T>
void OptimusTransformer<T>::reduce_to_row0(TensorT<T>& partial, TensorT<T>& grad_slot) {
  mesh_->col_comm().reduce(partial, /*root=*/0);
  if (on_row0()) {
    OPT_CHECK(grad_slot.defined(), "row-0 gradient slot missing");
    ops::add_(grad_slot, partial.reshape(grad_slot.shape()));
  }
}

template <typename T>
TensorT<T> OptimusTransformer<T>::embed(const ITensor& tokens) {
  const int q = mesh_->q();
  const index_t rows = rows_local();
  const index_t hq = h_local();
  const index_t vq = vocab_local();
  const index_t s = cfg_.seq_len;
  tokens_local_ = tensor::row_block(tokens.reshape(Shape{cfg_.batch, s}), q, mesh_->row());

  TensorT<T> x0 = TensorT<T>::zeros(Shape{rows, hq});
  {
    // One-hot × table via Algorithm 1: the one-hot blocks are constructible
    // locally (tokens are replicated across the mesh row), so only the table
    // blocks are broadcast — down columns, q rounds.
    std::optional<ArenaScope> scope;
    if (ws_) scope.emplace(*ws_);
    TensorT<T> buf = ws_ ? ws_->template alloc<T>(Shape{vq, hq}) : TensorT<T>(Shape{vq, hq});
    for (int l = 0; l < q; ++l) {
      if (mesh_->row() == l) buf.copy_from(embedding_);
      mesh_->col_comm().broadcast(buf, /*root=*/l);
      const index_t v_begin = l * vq;
      for (index_t r = 0; r < rows; ++r) {
        const index_t tok = tokens_local_[r];
        if (tok >= v_begin && tok < v_begin + vq) {
          const T* src = buf.data() + (tok - v_begin) * hq;
          T* dst = x0.data() + r * hq;
          for (index_t j = 0; j < hq; ++j) dst[j] += src[j];
        }
      }
    }
    // Positional slice, hosted on row 0.
    TensorT<T> pos = ws_ ? ws_->template alloc<T>(Shape{s, hq}) : TensorT<T>(Shape{s, hq});
    if (on_row0()) pos.copy_from(pos_embedding_);
    mesh_->col_comm().broadcast(pos, /*root=*/0);
    for (index_t bi = 0; bi < batch_local(); ++bi) {
      for (index_t t = 0; t < s; ++t) {
        T* dst = x0.data() + (bi * s + t) * hq;
        const T* src = pos.data() + t * hq;
        for (index_t j = 0; j < hq; ++j) dst[j] += src[j];
      }
    }
  }
  return x0;
}

template <typename T>
TensorT<T> OptimusTransformer<T>::layer_forward(index_t l, LayerActs& a) {
  const int q = mesh_->q();
  const index_t rows = rows_local();
  const index_t hq = h_local();
  const index_t fq = cfg_.ffn_hidden() / q;
  const index_t tq = 3 * hq;
  const index_t s = cfg_.seq_len;
  const T eps = static_cast<T>(cfg_.layernorm_eps);
  Layer& p = layers_[l];
  comm::Communicator& row = mesh_->row_comm();

  a.ln1_g_bcast = bcast_from_row0(p.ln1_g, Shape{hq});
  a.ln1_b_bcast = bcast_from_row0(p.ln1_b, Shape{hq});
  a.ln1_out = alloc_fwd(Shape{rows, hq});
  a.ln1_xhat = alloc_fwd(Shape{rows, hq});
  a.ln1_istd = alloc_fwd(Shape{rows});
  layernorm2d_forward(row, a.input, a.ln1_g_bcast, a.ln1_b_bcast, eps, cfg_.hidden, a.ln1_out,
                      a.ln1_xhat, a.ln1_istd);

  a.qkv = alloc_fwd(Shape{rows, tq});
  summa::summa_ab(*mesh_, a.ln1_out, p.qkv_w, a.qkv, false, ws());
  {
    TensorT<T> bias = bcast_from_row0(p.qkv_b, Shape{tq});
    ops::add_bias_(a.qkv, bias);
  }

  a.ctx = alloc_fwd(Shape{rows, hq});
  if (options_.fuse_attention) {
    TensorT<T> scratch = alloc_fwd(Shape{model::attention_fused_scratch_elems(s)});
    model::attention_forward_fused(a.qkv, batch_local(), s, heads_local(), cfg_.head_dim(),
                                   cfg_.causal, a.ctx, scratch);
  } else {
    a.probs = alloc_fwd(Shape{model::attention_probs_elems(batch_local(), s, heads_local())});
    model::attention_forward(a.qkv, batch_local(), s, heads_local(), cfg_.head_dim(),
                             cfg_.causal, a.ctx, a.probs);
  }

  // SUMMA reduces over the mesh before the bias may apply, so the bias
  // cannot fuse into the local GEMMs — bias+residual fuse into one pass.
  a.x1 = alloc_fwd(Shape{rows, hq});
  summa::summa_ab(*mesh_, a.ctx, p.proj_w, a.x1, false, ws());
  {
    TensorT<T> bias = bcast_from_row0(p.proj_b, Shape{hq});
    ops::bias_residual_(a.x1, bias, a.input);
  }

  a.ln2_g_bcast = bcast_from_row0(p.ln2_g, Shape{hq});
  a.ln2_b_bcast = bcast_from_row0(p.ln2_b, Shape{hq});
  a.ln2_out = alloc_fwd(Shape{rows, hq});
  a.ln2_xhat = alloc_fwd(Shape{rows, hq});
  a.ln2_istd = alloc_fwd(Shape{rows});
  layernorm2d_forward(row, a.x1, a.ln2_g_bcast, a.ln2_b_bcast, eps, cfg_.hidden, a.ln2_out,
                      a.ln2_xhat, a.ln2_istd);

  // fc1 bias+GELU in one fused pass (fc1_out keeps the biased
  // pre-activation for backward).
  a.fc1_out = alloc_fwd(Shape{rows, fq});
  summa::summa_ab(*mesh_, a.ln2_out, p.fc1_w, a.fc1_out, false, ws());
  a.gelu_out = alloc_fwd(Shape{rows, fq});
  {
    TensorT<T> bias = bcast_from_row0(p.fc1_b, Shape{fq});
    ops::bias_gelu_(a.fc1_out, bias, a.gelu_out);
  }

  // The layer output is the next layer's checkpointed input: persistent.
  TensorT<T> out(Shape{rows, hq});
  summa::summa_ab(*mesh_, a.gelu_out, p.fc2_w, out, false, ws());
  {
    TensorT<T> bias = bcast_from_row0(p.fc2_b, Shape{hq});
    ops::bias_residual_(out, bias, a.x1);
  }
  a.full = true;
  return out;
}

template <typename T>
TensorT<T> OptimusTransformer<T>::layer_backward(index_t l, LayerActs& a,
                                                 const TensorT<T>& dout) {
  const int q = mesh_->q();
  const index_t rows = rows_local();
  const index_t hq = h_local();
  const index_t fq = cfg_.ffn_hidden() / q;
  const index_t tq = 3 * hq;
  Layer& p = layers_[l];
  Layer& g = grads_[l];
  comm::Communicator& row = mesh_->row_comm();

  // MLP block: out = x1 + fc2(gelu(fc1(ln2(x1)))).
  TensorT<T> dgelu = alloc_bwd(Shape{rows, fq});
  summa::summa_abt(*mesh_, dout, p.fc2_w, dgelu, false, ws());     // eq. 1: dA = dC·Bᵀ
  summa::summa_atb(*mesh_, a.gelu_out, dout, g.fc2_w, true, ws()); // eq. 1: dB = Aᵀ·dC
  {
    TensorT<T> part = alloc_bwd(Shape{hq});
    ops::bias_grad(dout, part, /*accumulate=*/false);
    reduce_to_row0(part, g.fc2_b);
  }
  TensorT<T> dm1 = alloc_bwd(Shape{rows, fq});
  ops::gelu_backward(a.fc1_out, dgelu, dm1, /*accumulate=*/false);
  {
    TensorT<T> part = alloc_bwd(Shape{fq});
    ops::bias_grad(dm1, part, false);
    reduce_to_row0(part, g.fc1_b);
  }
  TensorT<T> dln2 = alloc_bwd(Shape{rows, hq});
  summa::summa_abt(*mesh_, dm1, p.fc1_w, dln2, false, ws());
  summa::summa_atb(*mesh_, a.ln2_out, dm1, g.fc1_w, true, ws());
  TensorT<T> dx1 = alloc_bwd(Shape{rows, hq});
  {
    TensorT<T> dgp = alloc_bwd(Shape{hq});
    TensorT<T> dbp = alloc_bwd(Shape{hq});
    dgp.zero();
    dbp.zero();
    layernorm2d_backward(row, a.ln2_xhat, a.ln2_istd, a.ln2_g_bcast, dln2, cfg_.hidden, dx1,
                         dgp, dbp);
    reduce_to_row0(dgp, g.ln2_g);
    reduce_to_row0(dbp, g.ln2_b);
  }
  ops::add_(dx1, dout);  // residual

  // Attention block: x1 = x0 + proj(attn(qkv(ln1(x0)))).
  TensorT<T> dctx = alloc_bwd(Shape{rows, hq});
  summa::summa_abt(*mesh_, dx1, p.proj_w, dctx, false, ws());
  summa::summa_atb(*mesh_, a.ctx, dx1, g.proj_w, true, ws());
  {
    TensorT<T> part = alloc_bwd(Shape{hq});
    ops::bias_grad(dx1, part, false);
    reduce_to_row0(part, g.proj_b);
  }
  TensorT<T> dqkv = alloc_bwd(Shape{rows, tq});
  if (options_.fuse_attention) {
    TensorT<T> scratch =
        alloc_bwd(Shape{model::attention_fused_scratch_elems(cfg_.seq_len)});
    model::attention_backward_fused(a.qkv, dctx, batch_local(), cfg_.seq_len, heads_local(),
                                    cfg_.head_dim(), cfg_.causal, dqkv, scratch);
  } else {
    model::attention_backward(a.qkv, a.probs, dctx, batch_local(), cfg_.seq_len,
                              heads_local(), cfg_.head_dim(), dqkv);
  }
  {
    TensorT<T> part = alloc_bwd(Shape{tq});
    ops::bias_grad(dqkv, part, false);
    reduce_to_row0(part, g.qkv_b);
  }
  TensorT<T> dln1 = alloc_bwd(Shape{rows, hq});
  summa::summa_abt(*mesh_, dqkv, p.qkv_w, dln1, false, ws());
  summa::summa_atb(*mesh_, a.ln1_out, dqkv, g.qkv_w, true, ws());
  TensorT<T> din = alloc_bwd(Shape{rows, hq});
  {
    TensorT<T> dgp = alloc_bwd(Shape{hq});
    TensorT<T> dbp = alloc_bwd(Shape{hq});
    dgp.zero();
    dbp.zero();
    layernorm2d_backward(row, a.ln1_xhat, a.ln1_istd, a.ln1_g_bcast, dln1, cfg_.hidden, din,
                         dgp, dbp);
    reduce_to_row0(dgp, g.ln1_g);
    reduce_to_row0(dbp, g.ln1_b);
  }
  ops::add_(din, dx1);  // residual
  return din;
}

template <typename T>
void OptimusTransformer<T>::release_layer(LayerActs& a) {
  TensorT<T> input = a.input;
  a = LayerActs{};
  a.input = input;
}

template <typename T>
const TensorT<T>& OptimusTransformer<T>::forward(const ITensor& tokens) {
  OPT_CHECK(tokens.numel() == cfg_.tokens_per_batch(), "tokens must be the global [b, s]");
  const index_t rows = rows_local();
  const index_t hq = h_local();
  const T eps = static_cast<T>(cfg_.layernorm_eps);

  x0_ = embed(tokens);

  acts_.clear();
  acts_.resize(cfg_.layers);
  TensorT<T> x = x0_;
  for (index_t l = 0; l < cfg_.layers; ++l) {
    acts_[l].input = x;
    if (fwd_) fwd_->reset();
    x = layer_forward(l, acts_[l]);
    if (options_.checkpoint) release_layer(acts_[l]);
  }
  stem_out_ = x;

  final_g_bcast_ = TensorT<T>(Shape{hq});
  final_b_bcast_ = TensorT<T>(Shape{hq});
  if (on_row0()) {
    final_g_bcast_.copy_from(final_ln_g_);
    final_b_bcast_.copy_from(final_ln_b_);
  }
  mesh_->col_comm().broadcast(final_g_bcast_, 0);
  mesh_->col_comm().broadcast(final_b_bcast_, 0);
  hidden_ = TensorT<T>(Shape{rows, hq});
  final_xhat_ = TensorT<T>(Shape{rows, hq});
  final_istd_ = TensorT<T>(Shape{rows});
  layernorm2d_forward(mesh_->row_comm(), stem_out_, final_g_bcast_, final_b_bcast_, eps,
                      cfg_.hidden, hidden_, final_xhat_, final_istd_);
  return hidden_;
}

template <typename T>
TensorT<T> OptimusTransformer<T>::lm_logits_block() {
  OPT_CHECK(hidden_.defined(), "call forward() first");
  TensorT<T> logits(Shape{rows_local(), vocab_local()});
  summa::summa_abt(*mesh_, hidden_, embedding_, logits, false, ws());  // Algorithm 2
  return logits;
}

template <typename T>
void OptimusTransformer<T>::ensure_decode_params() {
  if (decode_params_ready_) return;
  const index_t hq = h_local();
  const index_t fq = cfg_.ffn_hidden() / q();
  const index_t tq = 3 * hq;
  // Same copy-then-broadcast as bcast_from_row0, but into persistent tensors
  // (the forward arena is per-layer scratch; these live across decode steps).
  auto fetch = [&](const TensorT<T>& hosted, Shape shape) {
    TensorT<T> buf(shape);
    if (on_row0()) {
      OPT_CHECK(hosted.defined() && hosted.numel() == buf.numel(), "hosted slice mismatch");
      buf.copy_from(hosted.reshape(shape));
    }
    mesh_->col_comm().broadcast(buf, /*root=*/0);
    return buf;
  };
  decode_params_.clear();
  decode_params_.resize(static_cast<std::size_t>(cfg_.layers));
  for (index_t l = 0; l < cfg_.layers; ++l) {
    Layer& p = layers_[l];
    DecodeParams& dp = decode_params_[static_cast<std::size_t>(l)];
    dp.ln1_g = fetch(p.ln1_g, Shape{hq});
    dp.ln1_b = fetch(p.ln1_b, Shape{hq});
    dp.qkv_b = fetch(p.qkv_b, Shape{tq});
    dp.proj_b = fetch(p.proj_b, Shape{hq});
    dp.ln2_g = fetch(p.ln2_g, Shape{hq});
    dp.ln2_b = fetch(p.ln2_b, Shape{hq});
    dp.fc1_b = fetch(p.fc1_b, Shape{fq});
    dp.fc2_b = fetch(p.fc2_b, Shape{hq});
  }
  decode_pos_ = fetch(pos_embedding_, Shape{cfg_.seq_len, hq});
  decode_final_g_ = fetch(final_ln_g_, Shape{hq});
  decode_final_b_ = fetch(final_ln_b_, Shape{hq});
  decode_params_ready_ = true;
}

template <typename T>
const TensorT<T>& OptimusTransformer<T>::forward_decode(
    const ITensor& tokens, model::KvCacheT<T>& cache,
    const std::vector<std::uint8_t>* active) {
  const int q = mesh_->q();
  const index_t n_global = tokens.numel();
  const index_t nl = cache.slots();  // this row's slot block
  const index_t hq = h_local();
  const index_t fq = cfg_.ffn_hidden() / q;
  const index_t tq = 3 * hq;
  const index_t vq = vocab_local();
  const T eps = static_cast<T>(cfg_.layernorm_eps);
  OPT_CHECK(n_global == nl * q, "decode tokens must be the global slot vector");
  OPT_CHECK(active == nullptr || static_cast<index_t>(active->size()) == n_global,
            "active mask must be the global slot vector");
  OPT_CHECK(cache.layers() == cfg_.layers && cache.heads() == heads_local() &&
                cache.head_dim() == cfg_.head_dim(),
            "kv cache does not match this device's shard");
  ensure_decode_params();
  const index_t slot0 = static_cast<index_t>(mesh_->row()) * nl;
  // Decode blocks are strictly smaller than training blocks whenever the
  // in-flight slot count stays within one training batch, so the SUMMA
  // workspace arena fits; fall back to heap beyond that.
  tensor::Arena* wsd = nl <= rows_local() ? ws() : nullptr;

  // Embedding lookup, Algorithm-1 style but packed: instead of shipping the
  // [v/q, h/q] table block each round, mesh row l packs the rows the current
  // tokens actually need — one [slots, h/q] buffer — and broadcasts that down
  // the column. Each device accumulates only its own slot block, adding
  // exactly one contribution per slot like the prefill embed.
  TensorT<T> x = TensorT<T>::zeros(Shape{nl, hq});
  {
    TensorT<T> buf(Shape{n_global, hq});
    for (int l = 0; l < q; ++l) {
      const index_t v_begin = static_cast<index_t>(l) * vq;
      if (mesh_->row() == l) {
        buf.zero();
        for (index_t r = 0; r < n_global; ++r) {
          const index_t tok = tokens[r];
          if (tok >= v_begin && tok < v_begin + vq) {
            std::memcpy(buf.data() + r * hq, embedding_.data() + (tok - v_begin) * hq,
                        static_cast<std::size_t>(hq) * sizeof(T));
          }
        }
      }
      mesh_->col_comm().broadcast(buf, /*root=*/l);
      for (index_t r = 0; r < nl; ++r) {
        const index_t tok = tokens[slot0 + r];
        if (tok >= v_begin && tok < v_begin + vq) {
          const T* src = buf.data() + (slot0 + r) * hq;
          T* dst = x.data() + r * hq;
          for (index_t j = 0; j < hq; ++j) dst[j] += src[j];
        }
      }
    }
    for (index_t r = 0; r < nl; ++r) {
      const index_t t = cache.len(r);
      OPT_CHECK(t < cfg_.seq_len, "decode position " << t << " past seq_len " << cfg_.seq_len);
      T* dst = x.data() + r * hq;
      const T* src = decode_pos_.data() + t * hq;
      for (index_t j = 0; j < hq; ++j) dst[j] += src[j];
    }
  }

  // Same per-layer sequence as layer_forward(), one row per slot. The SUMMA
  // calls and the ordered-fold layernorm reduction are row-decomposable, so
  // these rows match the full-prefix rows bitwise. Heap buffers, reused
  // across layers; decode never feeds backward.
  comm::Communicator& row = mesh_->row_comm();
  TensorT<T> ln_out(Shape{nl, hq}), xhat(Shape{nl, hq}), istd(Shape{nl});
  TensorT<T> qkv(Shape{nl, tq}), ctx(Shape{nl, hq}), x1(Shape{nl, hq});
  TensorT<T> fc1_out(Shape{nl, fq}), gelu_out(Shape{nl, fq});
  for (index_t l = 0; l < cfg_.layers; ++l) {
    Layer& p = layers_[l];
    DecodeParams& dp = decode_params_[static_cast<std::size_t>(l)];
    layernorm2d_forward(row, x, dp.ln1_g, dp.ln1_b, eps, cfg_.hidden, ln_out, xhat, istd);
    summa::summa_ab(*mesh_, ln_out, p.qkv_w, qkv, false, wsd);
    ops::add_bias_(qkv, dp.qkv_b);
    model::attention_decode(qkv, nl, heads_local(), cfg_.head_dim(), cache, l, ctx);
    summa::summa_ab(*mesh_, ctx, p.proj_w, x1, false, wsd);
    ops::bias_residual_(x1, dp.proj_b, x);
    layernorm2d_forward(row, x1, dp.ln2_g, dp.ln2_b, eps, cfg_.hidden, ln_out, xhat, istd);
    summa::summa_ab(*mesh_, ln_out, p.fc1_w, fc1_out, false, wsd);
    ops::bias_gelu_(fc1_out, dp.fc1_b, gelu_out);
    summa::summa_ab(*mesh_, gelu_out, p.fc2_w, x, false, wsd);
    ops::bias_residual_(x, dp.fc2_b, x1);
  }
  decode_hidden_ = TensorT<T>(Shape{nl, hq});
  layernorm2d_forward(row, x, decode_final_g_, decode_final_b_, eps, cfg_.hidden,
                      decode_hidden_, xhat, istd);

  if (active == nullptr) {
    cache.advance(nullptr);
  } else {
    std::vector<std::uint8_t> local(active->begin() + slot0, active->begin() + slot0 + nl);
    cache.advance(&local);
  }
  return decode_hidden_;
}

template <typename T>
TensorT<T> OptimusTransformer<T>::lm_logits_decode_block() {
  OPT_CHECK(decode_hidden_.defined(), "call forward_decode() first");
  const index_t nl = decode_hidden_.shape()[0];
  TensorT<T> logits(Shape{nl, vocab_local()});
  tensor::Arena* wsd = nl <= rows_local() ? ws() : nullptr;
  summa::summa_abt(*mesh_, decode_hidden_, embedding_, logits, false, wsd);  // Algorithm 2
  return logits;
}

template <typename T>
T OptimusTransformer<T>::lm_loss(const ITensor& labels) {
  OPT_CHECK(labels.numel() == cfg_.tokens_per_batch(), "labels must be the global [b, s]");
  const index_t rows = rows_local();
  const index_t vq = vocab_local();
  lm_labels_local_ =
      tensor::row_block(labels.reshape(Shape{cfg_.batch, cfg_.seq_len}), mesh_->q(),
                        mesh_->row());
  lm_active_ = 0;
  for (index_t i = 0; i < labels.numel(); ++i) lm_active_ += labels[i] >= 0 ? 1 : 0;

  TensorT<T> logits = lm_logits_block();

  // Distributed softmax + cross-entropy (§3.2.2): the vocab axis spans a
  // mesh row, the batch axis spans a mesh column.
  comm::Communicator& row = mesh_->row_comm();
  TensorT<T> m(Shape{rows});
  for (index_t r = 0; r < rows; ++r) {
    T mx = logits[r * vq];
    for (index_t j = 1; j < vq; ++j) mx = std::max(mx, logits[r * vq + j]);
    m[r] = mx;
  }
  row.all_reduce_max(m);
  lm_exp_ = TensorT<T>(logits.shape());
  TensorT<T> z(Shape{rows});
  for (index_t r = 0; r < rows; ++r) {
    T sum{0};
    for (index_t j = 0; j < vq; ++j) {
      const T e = std::exp(logits[r * vq + j] - m[r]);
      lm_exp_[r * vq + j] = e;
      sum += e;
    }
    z[r] = sum;
  }
  row.all_reduce(z);
  const index_t v_begin = mesh_->col() * vq;
  TensorT<T> xl = TensorT<T>::zeros(Shape{rows});
  for (index_t r = 0; r < rows; ++r) {
    const index_t label = lm_labels_local_[r];
    if (label >= v_begin && label < v_begin + vq) xl[r] = logits[r * vq + (label - v_begin)];
  }
  row.all_reduce(xl);

  lm_inv_z_ = TensorT<T>(Shape{rows});
  T partial{0};
  for (index_t r = 0; r < rows; ++r) {
    lm_inv_z_[r] = T{1} / z[r];
    if (lm_labels_local_[r] >= 0) partial += std::log(z[r]) + m[r] - xl[r];
  }
  // Sum the per-batch-block partials down the column (every device in a mesh
  // row already agrees on its row's partial).
  mesh_->col_comm().all_reduce(&partial, 1);
  return lm_active_ > 0 ? partial / static_cast<T>(lm_active_) : T{0};
}

template <typename T>
void OptimusTransformer<T>::backward_lm_fused_update(double lr) {
  OPT_CHECK(options_.fused_update, "engine was not built with options.fused_update");
  OPT_CHECK(lr > 0, "learning rate must be positive");
  fused_lr_ = lr;
  zero_grads();
  backward_lm();
  // Layer weights were updated inside backward_stem; apply the accumulated
  // embedding / hosted-global gradients now.
  const T step = static_cast<T>(lr);
  ops::axpy_(embedding_, -step, d_embedding_);
  d_embedding_.zero();
  if (on_row0()) {
    ops::axpy_(pos_embedding_, -step, d_pos_embedding_);
    d_pos_embedding_.zero();
    ops::axpy_(final_ln_g_, -step, d_final_ln_g_);
    ops::axpy_(final_ln_b_, -step, d_final_ln_b_);
    d_final_ln_g_.zero();
    d_final_ln_b_.zero();
  }
  fused_lr_ = -1.0;
}

template <typename T>
void OptimusTransformer<T>::apply_layer_update(index_t l, double lr) {
  const T step = static_cast<T>(lr);
  Layer& p = layers_[l];
  Layer& g = grads_[l];
  ops::axpy_(p.qkv_w, -step, g.qkv_w);
  ops::axpy_(p.proj_w, -step, g.proj_w);
  ops::axpy_(p.fc1_w, -step, g.fc1_w);
  ops::axpy_(p.fc2_w, -step, g.fc2_w);
  g.qkv_w.zero();
  g.proj_w.zero();
  g.fc1_w.zero();
  g.fc2_w.zero();
  if (on_row0()) {
    const std::initializer_list<std::pair<TensorT<T>*, TensorT<T>*>> hosted = {
        {&p.ln1_g, &g.ln1_g}, {&p.ln1_b, &g.ln1_b}, {&p.ln2_g, &g.ln2_g},
        {&p.ln2_b, &g.ln2_b}, {&p.qkv_b, &g.qkv_b}, {&p.proj_b, &g.proj_b},
        {&p.fc1_b, &g.fc1_b}, {&p.fc2_b, &g.fc2_b}};
    for (const auto& [param, grad] : hosted) {
      ops::axpy_(*param, -step, *grad);
      grad->zero();
    }
  }
}

template <typename T>
void OptimusTransformer<T>::backward_lm() {
  OPT_CHECK(lm_exp_.defined(), "call lm_loss() first");
  OPT_CHECK(!options_.fused_update || fused_lr_ > 0,
            "fused_update engines must train via backward_lm_fused_update()");
  const index_t rows = rows_local();
  const index_t vq = vocab_local();
  const index_t v_begin = mesh_->col() * vq;
  const T scale = lm_active_ > 0 ? T{1} / static_cast<T>(lm_active_) : T{0};

  TensorT<T> dlogits(Shape{rows, vq});
  for (index_t r = 0; r < rows; ++r) {
    const index_t label = lm_labels_local_[r];
    T* drow = dlogits.data() + r * vq;
    if (label < 0) {
      std::fill(drow, drow + vq, T{0});
      continue;
    }
    const T* erow = lm_exp_.data() + r * vq;
    for (index_t j = 0; j < vq; ++j) drow[j] = scale * erow[j] * lm_inv_z_[r];
    if (label >= v_begin && label < v_begin + vq) drow[label - v_begin] -= scale;
  }
  TensorT<T> d_hidden(Shape{rows, h_local()});
  summa::summa_ab(*mesh_, dlogits, embedding_, d_hidden, false, ws());      // Algorithm 1
  summa::summa_atb(*mesh_, dlogits, hidden_, d_embedding_, true, ws());     // Algorithm 3
  backward_stem(std::move(d_hidden));
}

template <typename T>
TensorT<T> OptimusTransformer<T>::cls_logits_block() {
  OPT_CHECK(hidden_.defined(), "call forward() first");
  const index_t bq = batch_local();
  const index_t hq = h_local();
  const index_t c = cfg_.num_classes;
  cls_pooled_ = TensorT<T>(Shape{bq, hq});
  for (index_t bi = 0; bi < bq; ++bi) {
    std::memcpy(cls_pooled_.data() + bi * hq, hidden_.data() + bi * cfg_.seq_len * hq,
                static_cast<std::size_t>(hq) * sizeof(T));
  }
  cls_w_bcast_ = TensorT<T>(Shape{hq, c});
  if (on_row0()) cls_w_bcast_.copy_from(cls_w_);
  mesh_->col_comm().broadcast(cls_w_bcast_, 0);
  TensorT<T> logits(Shape{bq, c});
  ops::gemm(logits, cls_pooled_, cls_w_bcast_);
  mesh_->row_comm().all_reduce(logits);  // sum the h/q partial products
  TensorT<T> bias(Shape{c});
  if (on_row0()) bias.copy_from(cls_b_);
  mesh_->col_comm().broadcast(bias, 0);
  ops::add_bias_(logits, bias);
  return logits;
}

template <typename T>
T OptimusTransformer<T>::cls_loss(const ITensor& labels) {
  OPT_CHECK(labels.numel() == cfg_.batch, "cls labels must be the global [b]");
  const index_t bq = batch_local();
  cls_labels_local_ = tensor::row_block(labels, mesh_->q(), mesh_->row());
  TensorT<T> logits = cls_logits_block();
  cls_probs_ = TensorT<T>(logits.shape());
  T partial{0};
  {
    // Sum (not mean) over the local batch block, then sum blocks down the
    // column and normalise by the global batch.
    TensorT<T> probs(logits.shape());
    partial = ops::cross_entropy_forward(logits, cls_labels_local_, probs) *
              static_cast<T>(bq);
    cls_probs_ = probs;
  }
  mesh_->col_comm().all_reduce(&partial, 1);
  return partial / static_cast<T>(cfg_.batch);
}

template <typename T>
void OptimusTransformer<T>::backward_cls() {
  OPT_CHECK(cls_probs_.defined(), "call cls_loss() first");
  OPT_CHECK(!options_.fused_update,
            "fused-update mode supports the LM branch only (backward_lm_fused_update)");
  const index_t bq = batch_local();
  const index_t hq = h_local();
  const index_t c = cfg_.num_classes;
  TensorT<T> dlogits(cls_probs_.shape());
  ops::cross_entropy_backward(cls_probs_, cls_labels_local_,
                              T{1} / static_cast<T>(cfg_.batch), dlogits);
  // Weight slice gradient: sum over all batch blocks → column reduce.
  TensorT<T> dw_part(Shape{hq, c});
  ops::gemm(dw_part, cls_pooled_, dlogits, ops::Trans::Yes, ops::Trans::No, T{1}, T{0});
  reduce_to_row0(dw_part, d_cls_w_);
  TensorT<T> db_part(Shape{c});
  ops::bias_grad(dlogits, db_part, false);
  reduce_to_row0(db_part, d_cls_b_);

  TensorT<T> d_pooled(Shape{bq, hq});
  ops::gemm(d_pooled, dlogits, cls_w_bcast_, ops::Trans::No, ops::Trans::Yes);
  TensorT<T> d_hidden = TensorT<T>::zeros(Shape{rows_local(), hq});
  for (index_t bi = 0; bi < bq; ++bi) {
    std::memcpy(d_hidden.data() + bi * cfg_.seq_len * hq, d_pooled.data() + bi * hq,
                static_cast<std::size_t>(hq) * sizeof(T));
  }
  backward_stem(std::move(d_hidden));
}

template <typename T>
void OptimusTransformer<T>::backward_stem(TensorT<T> d_hidden) {
  const index_t rows = rows_local();
  const index_t hq = h_local();

  // Final layernorm backward (conjunction buffer holds dx between layers).
  TensorT<T> conjunction(Shape{rows, hq});
  {
    TensorT<T> dgp = TensorT<T>::zeros(Shape{hq});
    TensorT<T> dbp = TensorT<T>::zeros(Shape{hq});
    layernorm2d_backward(mesh_->row_comm(), final_xhat_, final_istd_, final_g_bcast_,
                         d_hidden, cfg_.hidden, conjunction, dgp, dbp);
    reduce_to_row0(dgp, d_final_ln_g_);
    reduce_to_row0(dbp, d_final_ln_b_);
  }

  for (index_t l = cfg_.layers - 1; l >= 0; --l) {
    if (fwd_) fwd_->reset();
    if (bwd_) bwd_->reset();
    if (!acts_[l].full) {
      // Activation checkpointing: recompute this layer's forward, including
      // its SUMMA communication (the paper's 3× backward/forward comm ratio).
      (void)layer_forward(l, acts_[l]);
    }
    TensorT<T> din = layer_backward(l, acts_[l], conjunction);
    conjunction.copy_from(din);  // §3.2.3: copy out before the buffers reset
    if (fused_lr_ > 0) apply_layer_update(l, fused_lr_);  // §3.2.3 method (2)
    if (options_.checkpoint) release_layer(acts_[l]);
  }
  if (fwd_) fwd_->reset();
  if (bwd_) bwd_->reset();
  d_x0_ = conjunction;

  // Embedding backward: one-hotᵀ × dX0 via Algorithm 3, with the one-hot
  // blocks applied as local scatters and partial tables reduced down columns.
  const int q = mesh_->q();
  const index_t vq = vocab_local();
  {
    std::optional<ArenaScope> scope;
    if (ws_) scope.emplace(*ws_);
    TensorT<T> temp = ws_ ? ws_->template alloc<T>(Shape{vq, hq}) : TensorT<T>(Shape{vq, hq});
    for (int l = 0; l < q; ++l) {
      temp.zero();
      const index_t v_begin = l * vq;
      for (index_t r = 0; r < rows; ++r) {
        const index_t tok = tokens_local_[r];
        if (tok >= v_begin && tok < v_begin + vq) {
          T* dst = temp.data() + (tok - v_begin) * hq;
          const T* src = d_x0_.data() + r * hq;
          for (index_t j = 0; j < hq; ++j) dst[j] += src[j];
        }
      }
      mesh_->col_comm().reduce(temp, /*root=*/l);
      if (mesh_->row() == l) ops::add_(d_embedding_, temp);
    }
    // Positional embedding gradient: batch-sum locally, reduce to row 0.
    TensorT<T> pos_part =
        ws_ ? ws_->template alloc<T>(Shape{cfg_.seq_len, hq}) : TensorT<T>(Shape{cfg_.seq_len, hq});
    pos_part.zero();
    for (index_t bi = 0; bi < batch_local(); ++bi) {
      for (index_t t = 0; t < cfg_.seq_len; ++t) {
        const T* src = d_x0_.data() + (bi * cfg_.seq_len + t) * hq;
        T* dst = pos_part.data() + t * hq;
        for (index_t j = 0; j < hq; ++j) dst[j] += src[j];
      }
    }
    reduce_to_row0(pos_part, d_pos_embedding_);
  }
}

template <typename T>
void OptimusTransformer<T>::zero_grads() {
  if (options_.fused_update) {
    // Layer gradients alias one shared buffer; zero the distinct tensors.
    d_embedding_.zero();
    Layer& g = grads_[0];
    g.qkv_w.zero();
    g.proj_w.zero();
    g.fc1_w.zero();
    g.fc2_w.zero();
    if (on_row0()) {
      for (auto* t : {&g.ln1_g, &g.ln1_b, &g.ln2_g, &g.ln2_b, &g.qkv_b, &g.proj_b, &g.fc1_b,
                      &g.fc2_b, &d_pos_embedding_, &d_final_ln_g_, &d_final_ln_b_, &d_cls_w_,
                      &d_cls_b_}) {
        t->zero();
      }
    }
    return;
  }
  for (auto* g : gradients()) g->zero();
}

template <typename T>
std::vector<TensorT<T>*> OptimusTransformer<T>::parameters() {
  std::vector<TensorT<T>*> out{&embedding_};
  if (on_row0()) out.push_back(&pos_embedding_);
  for (auto& lp : layers_) {
    out.insert(out.end(), {&lp.qkv_w, &lp.proj_w, &lp.fc1_w, &lp.fc2_w});
    if (on_row0()) {
      out.insert(out.end(), {&lp.ln1_g, &lp.ln1_b, &lp.ln2_g, &lp.ln2_b, &lp.qkv_b, &lp.proj_b,
                             &lp.fc1_b, &lp.fc2_b});
    }
  }
  if (on_row0()) out.insert(out.end(), {&final_ln_g_, &final_ln_b_, &cls_w_, &cls_b_});
  return out;
}

template <typename T>
std::vector<TensorT<T>*> OptimusTransformer<T>::gradients() {
  OPT_CHECK(!options_.fused_update,
            "gradients() is unavailable in fused-update mode: layer gradients share one "
            "buffer and are consumed inside backward_lm_fused_update()");
  std::vector<TensorT<T>*> out{&d_embedding_};
  if (on_row0()) out.push_back(&d_pos_embedding_);
  for (auto& lg : grads_) {
    out.insert(out.end(), {&lg.qkv_w, &lg.proj_w, &lg.fc1_w, &lg.fc2_w});
    if (on_row0()) {
      out.insert(out.end(), {&lg.ln1_g, &lg.ln1_b, &lg.ln2_g, &lg.ln2_b, &lg.qkv_b, &lg.proj_b,
                             &lg.fc1_b, &lg.fc2_b});
    }
  }
  if (on_row0()) out.insert(out.end(), {&d_final_ln_g_, &d_final_ln_b_, &d_cls_w_, &d_cls_b_});
  return out;
}

template class OptimusTransformer<float>;
template class OptimusTransformer<double>;

}  // namespace optimus::core
