#include "core/layernorm2d.hpp"

#include <cmath>
#include <vector>

#include "tensor/parallel.hpp"

namespace optimus::core {

namespace {

using tensor::index_t;
using tensor::TensorT;

}  // namespace

template <typename T>
void layernorm2d_forward(comm::Communicator& row_comm, const TensorT<T>& x,
                         const TensorT<T>& gamma_slice, const TensorT<T>& beta_slice, T eps,
                         index_t h_global, TensorT<T>& y, TensorT<T>& xhat,
                         TensorT<T>& inv_std) {
  const index_t hq = x.shape().last();
  const index_t rows = x.numel() / hq;
  OPT_CHECK(gamma_slice.numel() == hq && beta_slice.numel() == hq, "ln2d param slice mismatch");
  OPT_CHECK(y.numel() == x.numel() && xhat.numel() == x.numel(), "ln2d buffer mismatch");
  OPT_CHECK(inv_std.numel() == rows, "ln2d inv_std mismatch");

  // Pack Σx and Σx² into one buffer: a single row all-reduce per call.
  std::vector<T> sums(static_cast<std::size_t>(2 * rows), T{0});
  const T* xp = x.data();
  tensor::parallel_rows(rows, hq, [&](index_t r0, index_t r1) {
    for (index_t r = r0; r < r1; ++r) {
      const T* row = xp + r * hq;
      T s{0}, ss{0};
      for (index_t j = 0; j < hq; ++j) {
        s += row[j];
        ss += row[j] * row[j];
      }
      sums[r] = s;
      sums[rows + r] = ss;
    }
  });
  // Ordered fold: decode (rows = b/q) and prefill (rows = b·s/q) reductions
  // must associate identically for the KV-cache path to be bitwise exact.
  row_comm.all_reduce_ordered(sums.data(), 2 * rows);

  const T* gp = gamma_slice.data();
  const T* bp = beta_slice.data();
  T* yp = y.data();
  T* hp = xhat.data();
  T* sp = inv_std.data();
  const T inv_h = T{1} / static_cast<T>(h_global);
  tensor::parallel_rows(rows, hq, [&](index_t r0, index_t r1) {
    for (index_t r = r0; r < r1; ++r) {
      const T mean = sums[r] * inv_h;
      const T var = sums[rows + r] * inv_h - mean * mean;
      const T istd = T{1} / std::sqrt(var + eps);
      sp[r] = istd;
      const T* row = xp + r * hq;
      T* hr = hp + r * hq;
      T* yr = yp + r * hq;
      for (index_t j = 0; j < hq; ++j) {
        hr[j] = (row[j] - mean) * istd;
        yr[j] = gp[j] * hr[j] + bp[j];
      }
    }
  });
}

template <typename T>
void layernorm2d_backward(comm::Communicator& row_comm, const TensorT<T>& xhat,
                          const TensorT<T>& inv_std, const TensorT<T>& gamma_slice,
                          const TensorT<T>& dy, index_t h_global, TensorT<T>& dx,
                          TensorT<T>& dgamma_partial, TensorT<T>& dbeta_partial) {
  const index_t hq = xhat.shape().last();
  const index_t rows = xhat.numel() / hq;
  OPT_CHECK(dy.numel() == xhat.numel() && dx.numel() == xhat.numel(), "ln2d grad mismatch");
  OPT_CHECK(dgamma_partial.numel() == hq && dbeta_partial.numel() == hq,
            "ln2d param grad mismatch");

  std::vector<T> sums(static_cast<std::size_t>(2 * rows), T{0});
  const T* hp = xhat.data();
  const T* dyp = dy.data();
  const T* gp = gamma_slice.data();
  T* dgp = dgamma_partial.data();
  T* dbp = dbeta_partial.data();
  // Pass 1a: per-row reductions (disjoint writes to sums → row-parallel).
  tensor::parallel_rows(rows, hq, [&](index_t r0, index_t r1) {
    for (index_t r = r0; r < r1; ++r) {
      const T* hr = hp + r * hq;
      const T* dyr = dyp + r * hq;
      T s_dxhat{0}, s_dxhat_xhat{0};
      for (index_t j = 0; j < hq; ++j) {
        const T dxh = dyr[j] * gp[j];
        s_dxhat += dxh;
        s_dxhat_xhat += dxh * hr[j];
      }
      sums[r] = s_dxhat;
      sums[rows + r] = s_dxhat_xhat;
    }
  });
  // Pass 1b: cross-row param grads. Parallel over column chunks; each chunk
  // walks rows in order, so the per-column accumulation order — and hence the
  // floating-point result — matches the serial loop exactly.
  tensor::parallel_for(hq, /*grain=*/64, [&](index_t j0, index_t j1) {
    for (index_t r = 0; r < rows; ++r) {
      const T* hr = hp + r * hq;
      const T* dyr = dyp + r * hq;
      for (index_t j = j0; j < j1; ++j) {
        dgp[j] += dyr[j] * hr[j];
        dbp[j] += dyr[j];
      }
    }
  });
  row_comm.all_reduce(sums.data(), 2 * rows);

  const T* sp = inv_std.data();
  T* dxp = dx.data();
  const T inv_h = T{1} / static_cast<T>(h_global);
  tensor::parallel_rows(rows, hq, [&](index_t r0, index_t r1) {
    for (index_t r = r0; r < r1; ++r) {
      const T* hr = hp + r * hq;
      const T* dyr = dyp + r * hq;
      T* dxr = dxp + r * hq;
      for (index_t j = 0; j < hq; ++j) {
        const T dxh = dyr[j] * gp[j];
        dxr[j] = sp[r] * (dxh - inv_h * sums[r] - inv_h * sums[rows + r] * hr[j]);
      }
    }
  });
}

#define OPTIMUS_INSTANTIATE_LN2D(T)                                                        \
  template void layernorm2d_forward<T>(comm::Communicator&, const TensorT<T>&,             \
                                       const TensorT<T>&, const TensorT<T>&, T, index_t,   \
                                       TensorT<T>&, TensorT<T>&, TensorT<T>&);             \
  template void layernorm2d_backward<T>(comm::Communicator&, const TensorT<T>&,            \
                                        const TensorT<T>&, const TensorT<T>&,              \
                                        const TensorT<T>&, index_t, TensorT<T>&,           \
                                        TensorT<T>&, TensorT<T>&);

OPTIMUS_INSTANTIATE_LN2D(float)
OPTIMUS_INSTANTIATE_LN2D(double)

#undef OPTIMUS_INSTANTIATE_LN2D

}  // namespace optimus::core
