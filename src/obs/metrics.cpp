#include "obs/metrics.hpp"

#include <cmath>
#include <cstring>
#include <memory>

namespace optimus::obs {

namespace detail {
std::atomic<bool> g_metrics_enabled{false};
}

void set_metrics_enabled(bool on) {
  detail::g_metrics_enabled.store(on, std::memory_order_relaxed);
}

void metrics_reset() { MetricsRegistry::instance().reset(); }

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

namespace {
// Sentinel bucket for values <= 0 or non-finite; std::map orders it below
// every real bucket so quantile scans see it first.
constexpr std::int64_t kUnderflowBucket = INT64_MIN;
}  // namespace

std::int64_t Histogram::bucket_index(double v) {
  if (!(v > 0) || !std::isfinite(v)) return kUnderflowBucket;
  int exp = 0;
  // frexp: v = m * 2^exp with m in [0.5, 1) for normal and subnormal inputs
  // alike, so the index is exact integer arithmetic on (exp, sub-bucket).
  const double m = std::frexp(v, &exp);
  // Map mantissa [0.5, 1) onto sub-buckets [0, kSubBuckets).
  const int sub = static_cast<int>((m - 0.5) * 2 * kSubBuckets);
  const int clamped = sub >= kSubBuckets ? kSubBuckets - 1 : sub;
  return static_cast<std::int64_t>(exp) * kSubBuckets + clamped;
}

double Histogram::bucket_lower_bound(std::int64_t index) {
  if (index == kUnderflowBucket) return 0.0;
  const std::int64_t exp = index >= 0 ? index / kSubBuckets
                                      : (index - (kSubBuckets - 1)) / kSubBuckets;
  const std::int64_t sub = index - exp * kSubBuckets;
  const double m = 0.5 + 0.5 * static_cast<double>(sub) / kSubBuckets;
  return std::ldexp(m, static_cast<int>(exp));
}

void Histogram::record(double v) {
  std::lock_guard<std::mutex> lock(m_);
  if (count_ == 0) {
    min_ = v;
    max_ = v;
  } else {
    if (v < min_) min_ = v;
    if (v > max_) max_ = v;
  }
  ++count_;
  ++buckets_[bucket_index(v)];
}

void Histogram::merge(const Histogram& other) {
  // Snapshot 'other' first so self-merge and lock ordering are non-issues.
  std::map<std::int64_t, std::uint64_t> ob;
  std::uint64_t oc;
  double omin, omax;
  {
    std::lock_guard<std::mutex> lock(other.m_);
    ob = other.buckets_;
    oc = other.count_;
    omin = other.min_;
    omax = other.max_;
  }
  if (oc == 0) return;
  std::lock_guard<std::mutex> lock(m_);
  if (count_ == 0) {
    min_ = omin;
    max_ = omax;
  } else {
    if (omin < min_) min_ = omin;
    if (omax > max_) max_ = omax;
  }
  count_ += oc;
  for (const auto& [idx, n] : ob) buckets_[idx] += n;
}

std::uint64_t Histogram::count() const {
  std::lock_guard<std::mutex> lock(m_);
  return count_;
}

double Histogram::min() const {
  std::lock_guard<std::mutex> lock(m_);
  return min_;
}

double Histogram::max() const {
  std::lock_guard<std::mutex> lock(m_);
  return max_;
}

double Histogram::quantile(double p) const {
  std::lock_guard<std::mutex> lock(m_);
  return quantile_locked(p);
}

double Histogram::quantile_locked(double p) const {
  if (count_ == 0) return 0.0;
  if (p < 0) p = 0;
  if (p > 1) p = 1;
  // Rank of the p-quantile sample, 1-based, matching the sorted-vector
  // convention sorted[ceil(p*n) - 1] used elsewhere in serving metrics.
  std::uint64_t rank = static_cast<std::uint64_t>(std::ceil(p * static_cast<double>(count_)));
  if (rank < 1) rank = 1;
  if (rank > count_) rank = count_;
  std::uint64_t seen = 0;
  for (const auto& [idx, n] : buckets_) {
    seen += n;
    if (seen >= rank) {
      double rep = bucket_lower_bound(idx);
      if (rep < min_) rep = min_;
      if (rep > max_) rep = max_;
      return rep;
    }
  }
  return max_;
}

void Histogram::reset() {
  std::lock_guard<std::mutex> lock(m_);
  buckets_.clear();
  count_ = 0;
  min_ = 0;
  max_ = 0;
}

Json Histogram::to_json() const {
  std::lock_guard<std::mutex> lock(m_);
  Json j = Json::object();
  j.set("type", Json("histogram"));
  j.set("count", Json(static_cast<double>(count_)));
  j.set("min", Json(min_));
  j.set("max", Json(max_));
  j.set("p50", Json(quantile_locked(0.50)));
  j.set("p99", Json(quantile_locked(0.99)));
  j.set("p999", Json(quantile_locked(0.999)));
  Json buckets = Json::array();
  for (const auto& [idx, n] : buckets_) {
    Json b = Json::array();
    b.push_back(Json(bucket_lower_bound(idx)));
    b.push_back(Json(static_cast<double>(n)));
    buckets.push_back(std::move(b));
  }
  j.set("buckets", std::move(buckets));
  return j;
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

MetricsRegistry& MetricsRegistry::instance() {
  // Leaked on purpose: instrumentation sites may fire during static
  // destruction of other objects (same pattern as the tracer registry).
  static MetricsRegistry* g = new MetricsRegistry();
  return *g;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(m_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(m_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(m_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

Json MetricsRegistry::snapshot_json() const {
  std::lock_guard<std::mutex> lock(m_);
  Json j = Json::object();
  // std::map iteration is already name-sorted; interleave the three kinds
  // into one object so the output order is the merged sorted order.
  auto ci = counters_.begin();
  auto gi = gauges_.begin();
  auto hi = histograms_.begin();
  auto next_name = [&]() -> const std::string* {
    const std::string* best = nullptr;
    if (ci != counters_.end()) best = &ci->first;
    if (gi != gauges_.end() && (!best || gi->first < *best)) best = &gi->first;
    if (hi != histograms_.end() && (!best || hi->first < *best)) best = &hi->first;
    return best;
  };
  while (const std::string* name = next_name()) {
    if (ci != counters_.end() && ci->first == *name) {
      Json c = Json::object();
      c.set("type", Json("counter"));
      c.set("value", Json(static_cast<double>(ci->second->value())));
      j.set(*name, std::move(c));
      ++ci;
    } else if (gi != gauges_.end() && gi->first == *name) {
      Json g = Json::object();
      g.set("type", Json("gauge"));
      g.set("value", Json(gi->second->value()));
      j.set(*name, std::move(g));
      ++gi;
    } else {
      j.set(*name, hi->second->to_json());
      ++hi;
    }
  }
  return j;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(m_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

Json metrics_snapshot_json() { return MetricsRegistry::instance().snapshot_json(); }

}  // namespace optimus::obs
