#include "obs/flight.hpp"

#include <atomic>
#include <deque>
#include <fstream>
#include <iostream>
#include <map>
#include <mutex>

#include "obs/trace.hpp"

namespace optimus::obs {

namespace {

std::atomic<bool> g_flight_enabled{false};

struct FlightEvent {
  std::uint64_t seq = 0;
  double t_s = 0;
  std::string cat;
  std::string name;
  std::string detail;
};

struct RankRing {
  std::deque<FlightEvent> events;
  std::uint64_t events_seen = 0;
  std::string abort_op;  // first-wins
};

struct FlightState {
  std::mutex m;
  std::map<int, RankRing> rings;
  std::size_t capacity = 128;
  std::string prefix;
};

// Leaked: fault paths may fire during teardown of other statics.
FlightState& state() {
  static FlightState* g = new FlightState();
  return *g;
}

}  // namespace

bool flight_enabled() { return g_flight_enabled.load(std::memory_order_relaxed); }

void set_flight_enabled(bool on) {
  g_flight_enabled.store(on, std::memory_order_relaxed);
}

void flight_reset() {
  FlightState& s = state();
  std::lock_guard<std::mutex> lock(s.m);
  s.rings.clear();
}

void flight_configure(std::size_t ring_capacity) {
  FlightState& s = state();
  std::lock_guard<std::mutex> lock(s.m);
  s.capacity = ring_capacity == 0 ? 1 : ring_capacity;
}

void flight_set_postmortem_prefix(const std::string& prefix) {
  FlightState& s = state();
  std::lock_guard<std::mutex> lock(s.m);
  s.prefix = prefix;
}

void flight_note(const char* cat, const std::string& name, double sim_t,
                 const std::string& detail) {
  if (!flight_enabled()) return;
  FlightState& s = state();
  std::lock_guard<std::mutex> lock(s.m);
  RankRing& ring = s.rings[current_rank()];
  FlightEvent ev;
  ev.seq = ring.events_seen++;
  ev.t_s = sim_t;
  ev.cat = cat;
  ev.name = name;
  ev.detail = detail;
  ring.events.push_back(std::move(ev));
  while (ring.events.size() > s.capacity) ring.events.pop_front();
}

void flight_note_abort(const std::string& op) {
  if (!flight_enabled()) return;
  FlightState& s = state();
  std::lock_guard<std::mutex> lock(s.m);
  RankRing& ring = s.rings[current_rank()];
  if (ring.abort_op.empty()) ring.abort_op = op;
}

Json flight_rank_json() {
  const int rank = current_rank();
  FlightState& s = state();
  std::lock_guard<std::mutex> lock(s.m);
  const RankRing& ring = s.rings[rank];
  Json j = Json::object();
  j.set("rank", Json(rank));
  j.set("abort_op", Json(ring.abort_op));
  j.set("events_seen", Json(static_cast<double>(ring.events_seen)));
  Json events = Json::array();
  for (const FlightEvent& ev : ring.events) {
    Json e = Json::object();
    e.set("seq", Json(static_cast<double>(ev.seq)));
    e.set("t_s", Json(ev.t_s));
    e.set("cat", Json(ev.cat));
    e.set("name", Json(ev.name));
    e.set("detail", Json(ev.detail));
    events.push_back(std::move(e));
  }
  j.set("events", std::move(events));
  return j;
}

std::string flight_write_postmortem() {
  if (!flight_enabled()) return "";
  std::string prefix;
  {
    FlightState& s = state();
    std::lock_guard<std::mutex> lock(s.m);
    prefix = s.prefix;
  }
  if (prefix.empty()) return "";
  const int rank = current_rank();
  const std::string path =
      prefix + ".rank" + std::to_string(rank) + ".json";
  const Json doc = flight_rank_json();
  std::ofstream out(path);
  if (!out) {
    std::cerr << "warning: cannot write flight-recorder dump " << path << "\n";
    return "";
  }
  out << doc.dump(1) << "\n";
  if (!out) {
    std::cerr << "warning: failed writing flight-recorder dump " << path << "\n";
    return "";
  }
  return path;
}

}  // namespace optimus::obs
