#pragma once

// Minimal JSON value tree: enough to build the observability exports (metrics
// report, Chrome trace) and to parse them back for validation. Object keys
// preserve insertion order so emitted files are stable across runs and diffs
// stay readable. Not a general-purpose JSON library: numbers are doubles (the
// exports never need 64-bit-exact integers above 2^53), strings are UTF-8
// passed through verbatim with control/quote escaping only.

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "util/check.hpp"

namespace optimus::obs {

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() : type_(Type::kNull) {}
  Json(bool b) : type_(Type::kBool), bool_(b) {}               // NOLINT(google-explicit-constructor)
  Json(double v) : type_(Type::kNumber), num_(v) {}            // NOLINT
  Json(int v) : type_(Type::kNumber), num_(v) {}               // NOLINT
  Json(std::int64_t v) : type_(Type::kNumber), num_(static_cast<double>(v)) {}  // NOLINT
  Json(std::uint64_t v) : type_(Type::kNumber), num_(static_cast<double>(v)) {} // NOLINT
  Json(std::string s) : type_(Type::kString), str_(std::move(s)) {}             // NOLINT
  Json(const char* s) : type_(Type::kString), str_(s) {}       // NOLINT

  static Json array() {
    Json j;
    j.type_ = Type::kArray;
    return j;
  }
  static Json object() {
    Json j;
    j.type_ = Type::kObject;
    return j;
  }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool as_bool() const {
    OPT_CHECK(type_ == Type::kBool, "json value is not a bool");
    return bool_;
  }
  double as_number() const {
    OPT_CHECK(type_ == Type::kNumber, "json value is not a number");
    return num_;
  }
  const std::string& as_string() const {
    OPT_CHECK(type_ == Type::kString, "json value is not a string");
    return str_;
  }

  // -- array ----------------------------------------------------------------
  void push_back(Json v) {
    OPT_CHECK(type_ == Type::kArray, "push_back on non-array json");
    items_.push_back(std::move(v));
  }
  const std::vector<Json>& items() const {
    OPT_CHECK(type_ == Type::kArray, "items() on non-array json");
    return items_;
  }
  std::size_t size() const { return type_ == Type::kArray ? items_.size() : fields_.size(); }

  // -- object ---------------------------------------------------------------
  /// Sets (or overwrites) a field, keeping first-insertion order.
  void set(const std::string& key, Json v);
  /// Null reference if absent (shared static null).
  const Json& get(const std::string& key) const;
  bool has(const std::string& key) const;
  const std::vector<std::pair<std::string, Json>>& fields() const {
    OPT_CHECK(type_ == Type::kObject, "fields() on non-object json");
    return fields_;
  }

  // -- serialisation --------------------------------------------------------
  /// Compact when indent < 0, pretty otherwise.
  std::string dump(int indent = -1) const;

  /// Strict parser; throws util::CheckError with position info on bad input.
  static Json parse(const std::string& text);

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  double num_ = 0;
  std::string str_;
  std::vector<Json> items_;
  std::vector<std::pair<std::string, Json>> fields_;
};

}  // namespace optimus::obs
