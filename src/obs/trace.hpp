#pragma once

// Span-based tracer for the simulated cluster.
//
// Every span carries **dual clocks**:
//
//   * simulated seconds — the per-device SimClock *including* compute that has
//     been counted (DeviceContext mults) but not yet drained into the clock,
//     so timestamps are continuous across the lazy drain at collective
//     boundaries;
//   * wall nanoseconds  — host steady-clock, for profiling the simulator
//     itself.
//
// Threads register a track (device rank + simulated-time source) with
// ScopedTrack; comm::Cluster installs one per device thread. Spans recorded
// on a thread without a track land on the host track and only their wall
// clock is meaningful.
//
// Cost contract: when tracing is disabled (the default) constructing a Span
// is a single relaxed atomic load and nothing else — no allocation, no clock
// read, no locking. Tracing never touches numerics: it only *reads* the sim
// clock and counters, so program output is byte-identical with tracing on or
// off.
//
// Thread safety: each thread appends to its own buffer; buffers are
// registered globally and merged (per device rank) at export time.
//
// Export: Chrome trace-event JSON ("traceEvents" complete events, ts/dur in
// microseconds of *simulated* time, one pid/tid track per device rank; host
// spans on a separate wall-clock pid). Load the file in Perfetto /
// chrome://tracing to see per-device compute/comm/idle gaps.

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "obs/json.hpp"

namespace optimus::obs {

/// Rank used for spans recorded on threads without an installed track.
inline constexpr int kHostRank = -1;

namespace detail {
extern std::atomic<bool> g_enabled;
}

/// True when span recording is on. The disabled fast path is this one load.
inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

/// Turns recording on/off process-wide. Turning it on does not clear
/// previously recorded spans; call reset() for a fresh trace.
void set_enabled(bool on);

/// Drops every recorded span (all threads) and retired thread buffers.
void reset();

// ---------------------------------------------------------------------------
// Thread tracks
// ---------------------------------------------------------------------------

/// Installs "this thread is simulated device `rank`" plus a simulated-time
/// source for the thread's lifetime (RAII; restores the previous track).
/// Also tags OPT_LOG lines on this thread with the rank.
class ScopedTrack {
 public:
  ScopedTrack(int rank, std::function<double()> sim_now);
  ~ScopedTrack();
  ScopedTrack(const ScopedTrack&) = delete;
  ScopedTrack& operator=(const ScopedTrack&) = delete;

 private:
  int prev_rank_;
  std::function<double()> prev_sim_now_;
  int prev_log_rank_;
};

/// Rank of the calling thread's track (kHostRank if none).
int current_rank();

/// Simulated seconds on the calling thread (0 without a track). Includes
/// compute counted but not yet drained into the SimClock.
double sim_now();

/// Host wall nanoseconds since the process trace epoch.
std::uint64_t wall_now_ns();

// ---------------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------------

/// One completed span, as stored in the thread buffers and returned by
/// snapshot(). sim_* are seconds, wall_* nanoseconds.
struct SpanRecord {
  std::string cat;
  std::string name;
  int rank = kHostRank;
  /// Request lane (>= 0) for per-request serving spans; such spans are
  /// exported on the dedicated "requests" pid with tid = lane instead of the
  /// recording thread's device track. -1 for ordinary spans.
  int lane = -1;
  int depth = 0;
  double sim_begin = 0;
  double sim_end = 0;
  std::uint64_t wall_begin_ns = 0;
  std::uint64_t wall_end_ns = 0;
  std::vector<std::pair<std::string, Json>> args;

  double sim_dur() const { return sim_end - sim_begin; }
};

/// RAII span. `cat` and `name` must outlive the span (string literals).
class Span {
 public:
  Span(const char* cat, const char* name);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// True when this span is actually recording (tracing was enabled at
  /// construction) — guard any expensive arg computation with it.
  bool armed() const { return armed_; }

  Span& arg(const char* key, Json value) {
    if (armed_) args_.emplace_back(key, std::move(value));
    return *this;
  }

 private:
  bool armed_;
  const char* cat_;
  const char* name_;
  double sim_begin_ = 0;
  std::uint64_t wall_begin_ns_ = 0;
  std::vector<std::pair<std::string, Json>> args_;
};

/// Records a completed span on a request lane. The serving scheduler uses
/// this instead of RAII Span because request lifetimes are known from the
/// driver's simulated clock (begin and end are supplied, not scoped), and
/// the span belongs to a request lane rather than the recording thread's
/// device track. `depth` orders same-timestamp spans (lifecycle = 0,
/// children = 1). No-op when tracing is disabled.
void record_lane_span(const char* cat, const std::string& name, int lane,
                      int depth, double sim_begin, double sim_end,
                      std::vector<std::pair<std::string, Json>> args = {});

// ---------------------------------------------------------------------------
// Export
// ---------------------------------------------------------------------------

/// All recorded spans, merged across threads, sorted per track by simulated
/// begin time (parents before children).
std::vector<SpanRecord> snapshot();

/// The full Chrome trace-event document for the current buffers.
Json chrome_trace_json();

/// Writes chrome_trace_json() to `path` (pretty-printed). Returns false and
/// warns on stderr if the file cannot be written.
bool write_chrome_trace(const std::string& path);

/// Per-(cat, name) aggregate over the recorded spans: count and total/max
/// simulated + wall duration. Feeds the metrics export's histogram section.
Json span_summary_json();

/// Structural validation of a Chrome trace document (ours or any conforming
/// producer): traceEvents present, required fields typed correctly, per-track
/// timestamps monotonically non-decreasing in file order, and complete-event
/// spans properly nested per track (children inside parents, no overlapping
/// siblings). Spans with cat "request" additionally obey the lane contract:
/// on each track exactly one top-level span named "lifecycle" per nesting
/// tree, and every other request span (queue_wait / decode_step / ...) lies
/// inside a lifecycle span — an orphan request span fails validation.
struct TraceCheck {
  bool ok = true;
  std::string error;       // first violation, empty when ok
  int events = 0;          // "X" span events checked
  int tracks = 0;          // distinct (pid, tid) with at least one span
  int request_lanes = 0;   // distinct tracks carrying cat=="request" spans
};
TraceCheck validate_chrome_trace(const Json& doc);

}  // namespace optimus::obs
