#pragma once

// Fault flight recorder: a fixed-size ring buffer of recent events per rank,
// dumped to a post-mortem JSON file when a rank dies on FaultError /
// FabricAborted. The goal is that every fault-injection run leaves an
// inspectable artifact naming the op the cluster was executing when it went
// down — without any cost on the happy path (the disabled fast path is one
// relaxed atomic load, same contract as the tracer and metrics registry).
//
// Determinism: the ring holds only simulated-clock timestamps and
// deterministic event descriptions recorded by the owning rank's own thread,
// so for a fixed seed the dump of each rank is byte-identical across runs.
// Racy facts are deliberately excluded: which exception type a rank died with
// (FaultError on the detecting rank vs FabricAborted on woken peers) and the
// fabric's first-aborter-wins fail reason both depend on thread scheduling.
// What *is* deterministic is the op each rank was inside when it threw —
// captured by flight_note_abort() at the throw site — and that is what the
// dump's "abort_op" records.
//
// Threading: events are keyed by obs::current_rank() and guarded by one
// mutex (fault paths are cold; contention is irrelevant). Ranks never write
// to each other's rings.

#include <cstdint>
#include <string>

#include "obs/json.hpp"

namespace optimus::obs {

/// True when the flight recorder is armed. One relaxed load.
bool flight_enabled();

/// Arms/disarms the recorder process-wide. Arming does not clear old events.
void set_flight_enabled(bool on);

/// Drops all recorded events, abort notes, and per-rank sequence counters.
void flight_reset();

/// Ring capacity per rank (events kept). Applies to subsequently recorded
/// events; default 128.
void flight_configure(std::size_t ring_capacity);

/// Path prefix for post-mortem dumps; rank R writes "<prefix>.rank<R>.json".
/// Empty (the default) disables dumping while still recording.
void flight_set_postmortem_prefix(const std::string& prefix);

/// Records one event on the calling thread's rank ring. `sim_t` is the
/// caller's simulated clock; `detail` is a free-form deterministic string.
void flight_note(const char* cat, const std::string& name, double sim_t,
                 const std::string& detail);

/// Records the op a rank is aborting inside. First call per rank wins (the
/// first throw is the interesting one); later calls are ignored until reset.
void flight_note_abort(const std::string& op);

/// The calling rank's ring as JSON:
///   {rank, abort_op, events_seen, events: [{seq, t_s, cat, name, detail}]}
/// seq is the per-rank event ordinal (monotone even after wrap), events_seen
/// the total recorded, so truncation by the ring is visible.
Json flight_rank_json();

/// Writes flight_rank_json() for the calling rank to
/// "<prefix>.rank<R>.json". Returns the path written, or "" when disabled,
/// no prefix is set, or the write fails (a warning is logged on failure).
std::string flight_write_postmortem();

}  // namespace optimus::obs
