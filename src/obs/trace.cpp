#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <mutex>

#include "util/logging.hpp"

namespace optimus::obs {

namespace detail {
std::atomic<bool> g_enabled{false};
}

namespace {

// Spans are appended to per-thread buffers; the global registry keeps every
// buffer alive (threads may exit before export) and hands out stable ids used
// as host-track tids.
struct ThreadBuffer {
  int id = 0;
  std::mutex m;
  std::vector<SpanRecord> spans;
};

struct Registry {
  std::mutex m;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
};

Registry& registry() {
  static Registry* r = new Registry();  // leaked: buffers may outlive main
  return *r;
}

struct TrackState {
  int rank = kHostRank;
  std::function<double()> sim_now;
  int depth = 0;
  std::shared_ptr<ThreadBuffer> buffer;
};

thread_local TrackState tl_track;

ThreadBuffer& thread_buffer() {
  if (!tl_track.buffer) {
    auto buf = std::make_shared<ThreadBuffer>();
    Registry& reg = registry();
    std::lock_guard<std::mutex> lock(reg.m);
    buf->id = static_cast<int>(reg.buffers.size());
    reg.buffers.push_back(buf);
    tl_track.buffer = std::move(buf);
  }
  return *tl_track.buffer;
}

std::chrono::steady_clock::time_point trace_epoch() {
  static const auto epoch = std::chrono::steady_clock::now();
  return epoch;
}

/// Sorts one track's spans so parents precede children and timestamps are
/// monotone: by begin time, ties broken by nesting depth.
void sort_track(std::vector<SpanRecord>& spans, bool use_sim) {
  std::stable_sort(spans.begin(), spans.end(),
                   [use_sim](const SpanRecord& a, const SpanRecord& b) {
                     if (use_sim) {
                       if (a.sim_begin != b.sim_begin) return a.sim_begin < b.sim_begin;
                     } else if (a.wall_begin_ns != b.wall_begin_ns) {
                       return a.wall_begin_ns < b.wall_begin_ns;
                     }
                     return a.depth < b.depth;
                   });
}

}  // namespace

void set_enabled(bool on) {
  (void)trace_epoch();  // pin the wall epoch before the first span
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

void reset() {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.m);
  for (auto& buf : reg.buffers) {
    std::lock_guard<std::mutex> bl(buf->m);
    buf->spans.clear();
  }
}

// ---------------------------------------------------------------------------
// Thread tracks
// ---------------------------------------------------------------------------

ScopedTrack::ScopedTrack(int rank, std::function<double()> sim_now)
    : prev_rank_(tl_track.rank),
      prev_sim_now_(std::move(tl_track.sim_now)),
      prev_log_rank_(util::thread_log_rank()) {
  tl_track.rank = rank;
  tl_track.sim_now = std::move(sim_now);
  util::set_thread_log_rank(rank);
}

ScopedTrack::~ScopedTrack() {
  tl_track.rank = prev_rank_;
  tl_track.sim_now = std::move(prev_sim_now_);
  util::set_thread_log_rank(prev_log_rank_);
}

int current_rank() { return tl_track.rank; }

double sim_now() { return tl_track.sim_now ? tl_track.sim_now() : 0.0; }

std::uint64_t wall_now_ns() {
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                        std::chrono::steady_clock::now() - trace_epoch())
                                        .count());
}

// ---------------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------------

Span::Span(const char* cat, const char* name)
    : armed_(enabled()), cat_(cat), name_(name) {
  if (!armed_) return;
  sim_begin_ = sim_now();
  wall_begin_ns_ = wall_now_ns();
  ++tl_track.depth;
}

Span::~Span() {
  if (!armed_) return;
  --tl_track.depth;
  SpanRecord rec;
  rec.cat = cat_;
  rec.name = name_;
  rec.rank = tl_track.rank;
  rec.depth = tl_track.depth;
  rec.sim_begin = sim_begin_;
  rec.sim_end = sim_now();
  rec.wall_begin_ns = wall_begin_ns_;
  rec.wall_end_ns = wall_now_ns();
  rec.args = std::move(args_);
  ThreadBuffer& buf = thread_buffer();
  std::lock_guard<std::mutex> lock(buf.m);
  buf.spans.push_back(std::move(rec));
}

void record_lane_span(const char* cat, const std::string& name, int lane,
                      int depth, double sim_begin, double sim_end,
                      std::vector<std::pair<std::string, Json>> args) {
  if (!enabled()) return;
  SpanRecord rec;
  rec.cat = cat;
  rec.name = name;
  rec.rank = tl_track.rank;
  rec.lane = lane;
  rec.depth = depth;
  rec.sim_begin = sim_begin;
  rec.sim_end = sim_end;
  // Lane spans live purely in simulated time; pin both wall stamps to "now"
  // so the exported wall_ms is 0 rather than a misleading recording latency.
  rec.wall_begin_ns = wall_now_ns();
  rec.wall_end_ns = rec.wall_begin_ns;
  rec.args = std::move(args);
  ThreadBuffer& buf = thread_buffer();
  std::lock_guard<std::mutex> lock(buf.m);
  buf.spans.push_back(std::move(rec));
}

// ---------------------------------------------------------------------------
// Export
// ---------------------------------------------------------------------------

namespace {

/// Copies every buffer's spans grouped by device rank (host spans keyed by
/// buffer id instead, offset so they never collide with ranks).
struct MergedSpans {
  std::map<int, std::vector<SpanRecord>> device;  // rank → spans
  std::map<int, std::vector<SpanRecord>> host;    // buffer id → spans
  std::map<int, std::vector<SpanRecord>> lanes;   // request lane → spans
};

MergedSpans merge_buffers() {
  MergedSpans out;
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.m);
  for (auto& buf : reg.buffers) {
    std::lock_guard<std::mutex> bl(buf->m);
    for (const SpanRecord& s : buf->spans) {
      if (s.lane >= 0) {
        out.lanes[s.lane].push_back(s);
      } else if (s.rank >= 0) {
        out.device[s.rank].push_back(s);
      } else {
        out.host[buf->id].push_back(s);
      }
    }
  }
  for (auto& [rank, spans] : out.device) sort_track(spans, /*use_sim=*/true);
  for (auto& [id, spans] : out.host) sort_track(spans, /*use_sim=*/false);
  for (auto& [lane, spans] : out.lanes) sort_track(spans, /*use_sim=*/true);
  return out;
}

}  // namespace

std::vector<SpanRecord> snapshot() {
  MergedSpans merged = merge_buffers();
  std::vector<SpanRecord> all;
  for (auto& [rank, spans] : merged.device) {
    all.insert(all.end(), spans.begin(), spans.end());
  }
  for (auto& [id, spans] : merged.host) {
    all.insert(all.end(), spans.begin(), spans.end());
  }
  for (auto& [lane, spans] : merged.lanes) {
    all.insert(all.end(), spans.begin(), spans.end());
  }
  return all;
}

Json chrome_trace_json() {
  constexpr int kSimPid = 0;
  constexpr int kHostPid = 1;
  constexpr int kRequestPid = 2;
  MergedSpans merged = merge_buffers();
  Json events = Json::array();

  const auto meta = [&](const char* what, int pid, int tid, const std::string& value) {
    Json e = Json::object();
    e.set("name", what);
    e.set("ph", "M");
    e.set("pid", pid);
    if (tid >= 0) e.set("tid", tid);
    Json args = Json::object();
    args.set("name", value);
    e.set("args", std::move(args));
    events.push_back(std::move(e));
  };
  meta("process_name", kSimPid, -1, "simulated devices (simulated time)");
  if (!merged.host.empty()) meta("process_name", kHostPid, -1, "host (wall time)");
  if (!merged.lanes.empty()) {
    meta("process_name", kRequestPid, -1, "requests (simulated time)");
  }
  for (const auto& [rank, spans] : merged.device) {
    meta("thread_name", kSimPid, rank, "device " + std::to_string(rank));
  }
  for (const auto& [id, spans] : merged.host) {
    meta("thread_name", kHostPid, id, "host thread " + std::to_string(id));
  }
  for (const auto& [lane, spans] : merged.lanes) {
    meta("thread_name", kRequestPid, lane, "request " + std::to_string(lane));
  }

  const auto emit = [&](const SpanRecord& s, int pid, int tid, double ts_us, double dur_us) {
    Json e = Json::object();
    e.set("name", s.name);
    e.set("cat", s.cat);
    e.set("ph", "X");
    e.set("pid", pid);
    e.set("tid", tid);
    e.set("ts", ts_us);
    e.set("dur", dur_us);
    Json args = Json::object();
    for (const auto& [k, v] : s.args) args.set(k, v);
    args.set("wall_ms",
             static_cast<double>(s.wall_end_ns - s.wall_begin_ns) / 1e6);
    e.set("args", std::move(args));
    events.push_back(std::move(e));
  };
  for (const auto& [rank, spans] : merged.device) {
    for (const SpanRecord& s : spans) {
      emit(s, kSimPid, rank, s.sim_begin * 1e6, s.sim_dur() * 1e6);
    }
  }
  for (const auto& [id, spans] : merged.host) {
    for (const SpanRecord& s : spans) {
      emit(s, kHostPid, id, static_cast<double>(s.wall_begin_ns) / 1e3,
           static_cast<double>(s.wall_end_ns - s.wall_begin_ns) / 1e3);
    }
  }
  for (const auto& [lane, spans] : merged.lanes) {
    for (const SpanRecord& s : spans) {
      emit(s, kRequestPid, lane, s.sim_begin * 1e6, s.sim_dur() * 1e6);
    }
  }

  Json doc = Json::object();
  doc.set("displayTimeUnit", "ms");
  doc.set("traceEvents", std::move(events));
  return doc;
}

bool write_chrome_trace(const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "warning: cannot write trace file " << path << "\n";
    return false;
  }
  out << chrome_trace_json().dump(1) << "\n";
  return static_cast<bool>(out);
}

Json span_summary_json() {
  struct Agg {
    std::uint64_t count = 0;
    double sim_total = 0, sim_max = 0;
    double wall_total_ms = 0;
  };
  std::map<std::string, Agg> by_name;
  for (const SpanRecord& s : snapshot()) {
    Agg& a = by_name[s.cat + "/" + s.name];
    a.count += 1;
    a.sim_total += s.sim_dur();
    a.sim_max = std::max(a.sim_max, s.sim_dur());
    a.wall_total_ms += static_cast<double>(s.wall_end_ns - s.wall_begin_ns) / 1e6;
  }
  Json out = Json::object();
  for (const auto& [key, a] : by_name) {
    Json o = Json::object();
    o.set("count", a.count);
    o.set("sim_total_s", a.sim_total);
    o.set("sim_max_s", a.sim_max);
    o.set("wall_total_ms", a.wall_total_ms);
    out.set(key, std::move(o));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Validation
// ---------------------------------------------------------------------------

namespace {

double nest_eps(double v) { return 1e-9 + 1e-9 * std::abs(v); }

}  // namespace

TraceCheck validate_chrome_trace(const Json& doc) {
  TraceCheck res;
  const auto fail = [&](const std::string& why) {
    res.ok = false;
    if (res.error.empty()) res.error = why;
  };
  if (!doc.is_object() || !doc.get("traceEvents").is_array()) {
    fail("document is not an object with a traceEvents array");
    return res;
  }

  struct Open {
    double ts, end;
    bool lifecycle;  // cat=="request" && name=="lifecycle"
  };
  struct TrackState {
    double last_ts = -1e300;
    std::vector<Open> stack;
    int index = 0;  // event count on this track, for error messages
    bool has_request = false;
  };
  std::map<std::pair<int, int>, TrackState> tracks;

  for (const Json& e : doc.get("traceEvents").items()) {
    if (!e.is_object() || !e.get("name").is_string() || !e.get("ph").is_string()) {
      fail("event missing string name/ph");
      return res;
    }
    const std::string& ph = e.get("ph").as_string();
    if (ph == "M") continue;  // metadata
    if (ph != "X") {
      fail("unsupported event phase '" + ph + "'");
      return res;
    }
    if (!e.get("pid").is_number() || !e.get("tid").is_number() ||
        !e.get("ts").is_number() || !e.get("dur").is_number()) {
      fail("span event missing numeric pid/tid/ts/dur");
      return res;
    }
    const double ts = e.get("ts").as_number();
    const double dur = e.get("dur").as_number();
    if (dur < 0) {
      fail("negative duration on '" + e.get("name").as_string() + "'");
      return res;
    }
    const auto key = std::make_pair(static_cast<int>(e.get("pid").as_number()),
                                    static_cast<int>(e.get("tid").as_number()));
    TrackState& track = tracks[key];
    ++res.events;
    ++track.index;

    if (ts < track.last_ts - nest_eps(ts)) {
      fail("non-monotone timestamps on track pid " + std::to_string(key.first) + " tid " +
           std::to_string(key.second) + " at event " + std::to_string(track.index));
      return res;
    }
    track.last_ts = ts;

    const double end = ts + dur;
    // Close finished spans, then the new span must either nest inside the
    // innermost still-open span or start after it ended (sibling).
    while (!track.stack.empty() && ts >= track.stack.back().end - nest_eps(ts)) {
      track.stack.pop_back();
    }
    if (!track.stack.empty() && end > track.stack.back().end + nest_eps(end)) {
      fail("overlapping sibling spans on track pid " + std::to_string(key.first) + " tid " +
           std::to_string(key.second) + ": '" + e.get("name").as_string() + "' at ts " +
           std::to_string(ts));
      return res;
    }

    // Request-lane contract: a "lifecycle" span is the root of its request
    // tree (never nested in another request span); every other request span
    // is an orphan unless a lifecycle span encloses it.
    const std::string cat = e.get("cat").is_string() ? e.get("cat").as_string() : "";
    const std::string& name = e.get("name").as_string();
    const bool is_request = cat == "request";
    const bool is_lifecycle = is_request && name == "lifecycle";
    if (is_request) {
      track.has_request = true;
      if (is_lifecycle) {
        if (!track.stack.empty()) {
          fail("lifecycle span nested inside another span on track pid " +
               std::to_string(key.first) + " tid " + std::to_string(key.second) +
               " at ts " + std::to_string(ts));
          return res;
        }
      } else {
        bool inside_lifecycle = false;
        for (const Open& o : track.stack) inside_lifecycle |= o.lifecycle;
        if (!inside_lifecycle) {
          fail("orphan request span '" + name + "' outside any lifecycle on track pid " +
               std::to_string(key.first) + " tid " + std::to_string(key.second) +
               " at ts " + std::to_string(ts));
          return res;
        }
      }
    }
    track.stack.push_back({ts, end, is_lifecycle});
  }
  res.tracks = static_cast<int>(tracks.size());
  for (const auto& [key, track] : tracks) res.request_lanes += track.has_request ? 1 : 0;
  return res;
}

}  // namespace optimus::obs
