#pragma once

// Process-wide metrics registry: counters, gauges, and mergeable log-bucketed
// histograms with p50/p99/p999 queries, sampled on the *simulated* clock.
//
// Cost contract (same as the tracer): when metrics collection is disabled
// (the default) an instrumentation site costs exactly one relaxed atomic load
// — call metrics_enabled() first and do nothing else. Recording never touches
// numerics; values fed in are sim-clock readings and counters, so program
// output is byte-identical with metrics on or off.
//
// Histograms are log-bucketed: a value lands in the bucket
//   [2^e·(1 + s/16), 2^e·(1 + (s+1)/16))   for integer e and s ∈ [0, 16),
// i.e. 16 sub-buckets per octave, giving a worst-case quantile resolution of
// 2^(1/16) − 1 ≈ 4.4 % relative. Bucketing uses only frexp-style bit
// arithmetic (no libm), so the bucket index of a value is exact and
// platform-stable. Bucket state is a sparse ordered map of integer counts
// plus exact min/max — merging adds counts and folds min/max, both
// order-independent operations, so any merge order yields bitwise-identical
// state (tested in metrics_test).
//
// Quantile queries do exact rank selection over the bucket counts: the
// returned value is the lower bound of the bucket that provably contains the
// rank-⌈p·n⌉ sample, clamped to [min, max] (which makes the single-sample
// case exact). Thread safety: each metric guards its state with a mutex;
// recording happens only when enabled, on whichever thread owns the sample
// (the serving scheduler records on the lead rank only).

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "obs/json.hpp"

namespace optimus::obs {

namespace detail {
extern std::atomic<bool> g_metrics_enabled;
}

/// True when metrics collection is on. The disabled fast path is this load.
inline bool metrics_enabled() {
  return detail::g_metrics_enabled.load(std::memory_order_relaxed);
}

/// Turns metrics collection on/off process-wide. Turning it on does not clear
/// previously recorded values; call metrics_reset() for a fresh run.
void set_metrics_enabled(bool on);

/// Zeroes every registered metric in place. Handles returned by the registry
/// stay valid (entries are never erased, only reset).
void metrics_reset();

// ---------------------------------------------------------------------------
// Metric types
// ---------------------------------------------------------------------------

/// Monotone event counter.
class Counter {
 public:
  void add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void set(double v) {
    std::lock_guard<std::mutex> lock(m_);
    v_ = v;
    set_ = true;
  }
  void max(double v) {
    std::lock_guard<std::mutex> lock(m_);
    v_ = set_ ? (v > v_ ? v : v_) : v;
    set_ = true;
  }
  double value() const {
    std::lock_guard<std::mutex> lock(m_);
    return v_;
  }
  void reset() {
    std::lock_guard<std::mutex> lock(m_);
    v_ = 0;
    set_ = false;
  }

 private:
  mutable std::mutex m_;
  double v_ = 0;
  bool set_ = false;
};

/// Mergeable log-bucketed histogram (see file comment for the bucket layout).
class Histogram {
 public:
  /// Sub-buckets per octave as a power of two; 16 → ≤ 4.4 % quantile error.
  static constexpr int kSubBits = 4;
  static constexpr int kSubBuckets = 1 << kSubBits;

  /// Bucket index of a value. Values ≤ 0 (or non-finite) share a dedicated
  /// underflow bucket below every positive one.
  static std::int64_t bucket_index(double v);
  /// Lower bound of a bucket (the quantile representative). The underflow
  /// bucket's bound is 0.
  static double bucket_lower_bound(std::int64_t index);

  void record(double v);
  void merge(const Histogram& other);

  std::uint64_t count() const;
  double min() const;
  double max() const;
  /// Rank-⌈p·count⌉ selection over the buckets, clamped to [min, max].
  /// Returns 0 on an empty histogram.
  double quantile(double p) const;

  void reset();

  /// Full state (count/min/max/buckets) plus the three standard quantiles.
  /// Byte-stable for a given state, independent of record/merge order.
  Json to_json() const;

 private:
  mutable std::mutex m_;
  std::map<std::int64_t, std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  double min_ = 0;
  double max_ = 0;

  double quantile_locked(double p) const;
};

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

/// Name → metric. Handles are stable for the process lifetime (reset zeroes
/// in place, never erases). Lookup takes a mutex — cache the reference in hot
/// paths, or rely on the metrics_enabled() gate making lookups rare.
class MetricsRegistry {
 public:
  static MetricsRegistry& instance();

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// {"name": {"type": ..., ...}} sorted by name.
  Json snapshot_json() const;
  void reset();

 private:
  MetricsRegistry() = default;
  mutable std::mutex m_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

// Convenience instrumentation helpers: one relaxed load when disabled, then a
// registry lookup + record when enabled.
inline void metrics_count(const std::string& name, std::uint64_t n = 1) {
  if (!metrics_enabled()) return;
  MetricsRegistry::instance().counter(name).add(n);
}
inline void metrics_gauge_set(const std::string& name, double v) {
  if (!metrics_enabled()) return;
  MetricsRegistry::instance().gauge(name).set(v);
}
inline void metrics_gauge_max(const std::string& name, double v) {
  if (!metrics_enabled()) return;
  MetricsRegistry::instance().gauge(name).max(v);
}
inline void metrics_observe(const std::string& name, double v) {
  if (!metrics_enabled()) return;
  MetricsRegistry::instance().histogram(name).record(v);
}

/// snapshot_json() of the process registry.
Json metrics_snapshot_json();

}  // namespace optimus::obs
