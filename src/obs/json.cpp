#include "obs/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace optimus::obs {

namespace {

const Json& null_json() {
  static const Json j;
  return j;
}

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_number(std::string& out, double v) {
  if (!std::isfinite(v)) {
    // JSON has no inf/nan; the exports clamp to null which every viewer takes.
    out += "null";
    return;
  }
  if (v == std::floor(v) && std::abs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    out += buf;
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  out += buf;
}

struct Parser {
  const std::string& text;
  std::size_t pos = 0;

  [[noreturn]] void fail(const std::string& what) const {
    OPT_CHECK(false, "json parse error at offset " << pos << ": " << what);
    std::abort();  // unreachable; OPT_CHECK throws
  }

  void skip_ws() {
    while (pos < text.size() && std::isspace(static_cast<unsigned char>(text[pos]))) ++pos;
  }

  char peek() {
    skip_ws();
    if (pos >= text.size()) fail("unexpected end of input");
    return text[pos];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "', got '" + text[pos] + "'");
    ++pos;
  }

  bool consume_literal(const char* lit) {
    const std::size_t n = std::char_traits<char>::length(lit);
    if (text.compare(pos, n, lit) == 0) {
      pos += n;
      return true;
    }
    return false;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos >= text.size()) fail("unterminated string");
      const char c = text[pos++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos >= text.size()) fail("unterminated escape");
      const char e = text[pos++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'r': out += '\r'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (pos + 4 > text.size()) fail("truncated \\u escape");
          const unsigned long code = std::strtoul(text.substr(pos, 4).c_str(), nullptr, 16);
          pos += 4;
          // Exports only escape control characters; decode the BMP subset we
          // emit (ASCII) and pass anything else through as '?' rather than
          // implementing full UTF-16 surrogate handling.
          out += code < 0x80 ? static_cast<char>(code) : '?';
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  Json parse_value() {
    const char c = peek();
    if (c == '{') {
      ++pos;
      Json obj = Json::object();
      if (peek() == '}') {
        ++pos;
        return obj;
      }
      while (true) {
        std::string key = parse_string();
        expect(':');
        obj.set(key, parse_value());
        const char d = peek();
        ++pos;
        if (d == '}') return obj;
        if (d != ',') fail("expected ',' or '}' in object");
      }
    }
    if (c == '[') {
      ++pos;
      Json arr = Json::array();
      if (peek() == ']') {
        ++pos;
        return arr;
      }
      while (true) {
        arr.push_back(parse_value());
        const char d = peek();
        ++pos;
        if (d == ']') return arr;
        if (d != ',') fail("expected ',' or ']' in array");
      }
    }
    if (c == '"') return Json(parse_string());
    if (consume_literal("true")) return Json(true);
    if (consume_literal("false")) return Json(false);
    if (consume_literal("null")) return Json();
    // number
    const std::size_t start = pos;
    if (text[pos] == '-') ++pos;
    while (pos < text.size() &&
           (std::isdigit(static_cast<unsigned char>(text[pos])) || text[pos] == '.' ||
            text[pos] == 'e' || text[pos] == 'E' || text[pos] == '+' || text[pos] == '-')) {
      ++pos;
    }
    if (pos == start) fail("invalid value");
    char* end = nullptr;
    const double v = std::strtod(text.c_str() + start, &end);
    if (end != text.c_str() + pos) fail("invalid number");
    return Json(v);
  }
};

}  // namespace

void Json::set(const std::string& key, Json v) {
  OPT_CHECK(type_ == Type::kObject, "set() on non-object json");
  for (auto& [k, old] : fields_) {
    if (k == key) {
      old = std::move(v);
      return;
    }
  }
  fields_.emplace_back(key, std::move(v));
}

const Json& Json::get(const std::string& key) const {
  OPT_CHECK(type_ == Type::kObject, "get() on non-object json");
  for (const auto& [k, v] : fields_) {
    if (k == key) return v;
  }
  return null_json();
}

bool Json::has(const std::string& key) const { return !get(key).is_null(); }

void Json::dump_to(std::string& out, int indent, int depth) const {
  const bool pretty = indent >= 0;
  const auto newline_pad = [&](int d) {
    if (!pretty) return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent) * d, ' ');
  };
  switch (type_) {
    case Type::kNull: out += "null"; break;
    case Type::kBool: out += bool_ ? "true" : "false"; break;
    case Type::kNumber: append_number(out, num_); break;
    case Type::kString: append_escaped(out, str_); break;
    case Type::kArray: {
      out += '[';
      for (std::size_t i = 0; i < items_.size(); ++i) {
        if (i > 0) out += ',';
        newline_pad(depth + 1);
        items_[i].dump_to(out, indent, depth + 1);
      }
      if (!items_.empty()) newline_pad(depth);
      out += ']';
      break;
    }
    case Type::kObject: {
      out += '{';
      for (std::size_t i = 0; i < fields_.size(); ++i) {
        if (i > 0) out += ',';
        newline_pad(depth + 1);
        append_escaped(out, fields_[i].first);
        out += pretty ? ": " : ":";
        fields_[i].second.dump_to(out, indent, depth + 1);
      }
      if (!fields_.empty()) newline_pad(depth);
      out += '}';
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

Json Json::parse(const std::string& text) {
  Parser p{text};
  Json v = p.parse_value();
  p.skip_ws();
  OPT_CHECK(p.pos == text.size(), "json parse error: trailing data at offset " << p.pos);
  return v;
}

}  // namespace optimus::obs
