#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/check.hpp"

namespace optimus::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  OPT_CHECK(!headers_.empty(), "a table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  OPT_CHECK(cells.size() == headers_.size(),
            "row has " << cells.size() << " cells, expected " << headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::fmt(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::fmt(long long v) { return std::to_string(v); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << " " << std::setw(static_cast<int>(widths[c])) << std::left << row[c] << " |";
    }
    os << "\n";
  };
  print_row(headers_);
  os << "|";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << "|";
  }
  os << "\n";
  for (const auto& row : rows_) print_row(row);
}

std::string Table::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

}  // namespace optimus::util
