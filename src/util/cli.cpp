#include "util/cli.hpp"

#include <cstdlib>

#include "util/check.hpp"

namespace optimus::util {

Cli::Cli(int argc, char** argv) {
  OPT_CHECK(argc >= 1, "argc must include the program name");
  program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    OPT_CHECK(arg.rfind("--", 0) == 0, "expected --flag, got '" << arg << "'");
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";  // bare boolean flag
    }
  }
}

std::optional<std::string> Cli::raw(const std::string& name) {
  consumed_.insert(name);
  const auto it = values_.find(name);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

int Cli::get_int(const std::string& name, int default_value) {
  const auto v = raw(name);
  if (!v) return default_value;
  return std::stoi(*v);
}

long long Cli::get_i64(const std::string& name, long long default_value) {
  const auto v = raw(name);
  if (!v) return default_value;
  return std::stoll(*v);
}

double Cli::get_double(const std::string& name, double default_value) {
  const auto v = raw(name);
  if (!v) return default_value;
  return std::stod(*v);
}

std::string Cli::get_string(const std::string& name, const std::string& default_value) {
  const auto v = raw(name);
  return v ? *v : default_value;
}

bool Cli::get_bool(const std::string& name, bool default_value) {
  const auto v = raw(name);
  if (!v) return default_value;
  return *v == "true" || *v == "1" || *v == "yes";
}

bool Cli::has(const std::string& name) const { return values_.count(name) > 0; }

void Cli::finish() const {
  for (const auto& [name, value] : values_) {
    OPT_CHECK(consumed_.count(name) > 0,
              "unknown flag --" << name << "=" << value << " for " << program_);
  }
}

}  // namespace optimus::util
