#include "util/rng.hpp"

#include <cmath>
#include <numbers>

namespace optimus::util {

double Rng::normal() {
  // Box–Muller; guard against log(0).
  double u1 = uniform();
  if (u1 < 1e-300) u1 = 1e-300;
  const double u2 = uniform();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * std::numbers::pi * u2);
}

double CounterRng::normal_at(std::uint64_t stream, std::uint64_t index) const {
  double u1 = uniform_at(stream, 2 * index);
  if (u1 < 1e-300) u1 = 1e-300;
  const double u2 = uniform_at(stream, 2 * index + 1);
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * std::numbers::pi * u2);
}

}  // namespace optimus::util
