#pragma once

// Minimal leveled logger.
//
// Usage:  OPT_LOG(Info) << "trained step " << step;
//
// Output goes to stderr, one line per statement, prefixed with level, a
// monotonic timestamp and the simulated-device rank of the emitting thread
// (`r3`; `r-` for host code — comm::Cluster installs the rank for device
// threads via obs::ScopedTrack), so interleaved multi-device logs stay
// attributable. Thread-safe at line granularity (each statement's text is
// assembled privately and written with a single flush). The global level is
// settable at runtime (examples expose a --log-level flag).

#include <iostream>
#include <sstream>
#include <string>

namespace optimus::util {

enum class LogLevel : int { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Global minimum level; messages below it are discarded.
LogLevel log_level();
void set_log_level(LogLevel level);
/// Parse "debug"/"info"/"warn"/"error"/"off"; throws CheckError on anything else.
LogLevel parse_log_level(const std::string& name);

/// Simulated-device rank tag for log lines emitted by this thread: -1 (the
/// default) prints as `r-` (host code), ranks >= 0 as `rN`. Installed for
/// device threads by obs::ScopedTrack / comm::Cluster.
int thread_log_rank();
void set_thread_log_rank(int rank);

namespace detail {

class LogLine {
 public:
  LogLine(LogLevel level, const char* file, int line);
  ~LogLine();
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    if (enabled_) os_ << v;
    return *this;
  }

 private:
  bool enabled_;
  std::ostringstream os_;
};

}  // namespace detail
}  // namespace optimus::util

#define OPT_LOG(level) \
  ::optimus::util::detail::LogLine(::optimus::util::LogLevel::level, __FILE__, __LINE__)
