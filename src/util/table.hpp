#pragma once

// Column-aligned plain-text table printer, used by the bench harness to emit
// the same rows the paper's tables report.

#include <iosfwd>
#include <string>
#include <vector>

namespace optimus::util {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Append one row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string fmt(double v, int precision = 4);
  static std::string fmt(long long v);

  void print(std::ostream& os) const;
  std::string to_string() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace optimus::util
