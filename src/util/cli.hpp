#pragma once

// Tiny command-line flag parser for the example binaries and benches.
//
//   util::Cli cli(argc, argv);
//   const int steps = cli.get_int("steps", 100);
//   const std::string mode = cli.get_string("engine", "optimus");
//   cli.finish();  // rejects unknown flags
//
// Flags are written --name=value or --name value. Boolean flags accept bare
// --name as true.

#include <map>
#include <optional>
#include <set>
#include <string>

namespace optimus::util {

class Cli {
 public:
  Cli(int argc, char** argv);

  int get_int(const std::string& name, int default_value);
  long long get_i64(const std::string& name, long long default_value);
  double get_double(const std::string& name, double default_value);
  std::string get_string(const std::string& name, const std::string& default_value);
  bool get_bool(const std::string& name, bool default_value);

  /// True if the flag appeared on the command line at all.
  bool has(const std::string& name) const;

  /// Throws if any supplied flag was never consumed (catches typos).
  void finish() const;

 private:
  std::optional<std::string> raw(const std::string& name);

  std::map<std::string, std::string> values_;
  std::set<std::string> consumed_;
  std::string program_;
};

}  // namespace optimus::util
