#include "util/logging.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <iomanip>

#include "util/check.hpp"

namespace optimus::util {

namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::Info)};
thread_local int tl_log_rank = -1;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO ";
    case LogLevel::Warn: return "WARN ";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF  ";
  }
  return "?????";
}

double seconds_since_start() {
  using clock = std::chrono::steady_clock;
  static const clock::time_point start = clock::now();
  return std::chrono::duration<double>(clock::now() - start).count();
}

}  // namespace

LogLevel log_level() { return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed)); }

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

int thread_log_rank() { return tl_log_rank; }

void set_thread_log_rank(int rank) { tl_log_rank = rank; }

LogLevel parse_log_level(const std::string& name) {
  if (name == "debug") return LogLevel::Debug;
  if (name == "info") return LogLevel::Info;
  if (name == "warn") return LogLevel::Warn;
  if (name == "error") return LogLevel::Error;
  if (name == "off") return LogLevel::Off;
  OPT_CHECK(false, "unknown log level '" << name << "'");
}

namespace detail {

LogLine::LogLine(LogLevel level, const char* file, int line)
    : enabled_(static_cast<int>(level) >= g_level.load(std::memory_order_relaxed)) {
  if (!enabled_) return;
  const char* base = file;
  for (const char* c = file; *c; ++c) {
    if (*c == '/') base = c + 1;
  }
  os_ << "[" << level_name(level) << " " << std::fixed << std::setprecision(3)
      << seconds_since_start() << "s r";
  if (tl_log_rank >= 0) {
    os_ << tl_log_rank;
  } else {
    os_ << "-";
  }
  os_ << " " << base << ":" << line << "] ";
}

LogLine::~LogLine() {
  if (!enabled_) return;
  os_ << "\n";
  // One fwrite keeps concurrent lines from interleaving mid-line.
  const std::string text = os_.str();
  std::fwrite(text.data(), 1, text.size(), stderr);
  std::fflush(stderr);
}

}  // namespace detail
}  // namespace optimus::util
