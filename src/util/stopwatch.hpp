#pragma once

// Wall-clock stopwatch for host-side measurements (build/bench bookkeeping).
// Simulated-device time lives in comm::SimClock, not here.

#include <chrono>

namespace optimus::util {

class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double elapsed_s() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace optimus::util
