#pragma once

// Runtime checking macros used across the library.
//
// OPT_CHECK(cond, msg...)   — always-on invariant check; throws optimus::util::CheckError.
// OPT_DCHECK(cond, msg...)  — compiled out in NDEBUG builds (hot paths only).
//
// We throw instead of aborting so that tests can assert on failure paths and
// so a simulated device thread failing surfaces as a catchable error on the
// launcher instead of tearing the whole process down.

#include <sstream>
#include <stdexcept>
#include <string>

namespace optimus::util {

/// Error thrown by OPT_CHECK failures. Carries file:line plus the streamed message.
class CheckError : public std::runtime_error {
 public:
  explicit CheckError(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {

[[noreturn]] inline void check_failed(const char* cond, const char* file, int line,
                                      const std::string& msg) {
  std::ostringstream os;
  os << "check failed: " << cond << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}

// Builds the message lazily: the stream work only happens on failure.
class MessageBuilder {
 public:
  template <typename T>
  MessageBuilder& operator<<(const T& v) {
    os_ << v;
    return *this;
  }
  std::string str() const { return os_.str(); }

 private:
  std::ostringstream os_;
};

}  // namespace detail
}  // namespace optimus::util

#define OPT_CHECK(cond, ...)                                                        \
  do {                                                                              \
    if (!(cond)) {                                                                  \
      ::optimus::util::detail::check_failed(                                        \
          #cond, __FILE__, __LINE__,                                                \
          (::optimus::util::detail::MessageBuilder{} __VA_OPT__(<< __VA_ARGS__)).str()); \
    }                                                                               \
  } while (0)

#ifdef NDEBUG
#define OPT_DCHECK(cond, ...) \
  do {                        \
  } while (0)
#else
#define OPT_DCHECK(cond, ...) OPT_CHECK(cond, __VA_ARGS__)
#endif
