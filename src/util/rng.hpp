#pragma once

// Deterministic random number generation.
//
// Two generators are provided:
//
//  * Rng         — a sequential SplitMix64 stream, used for workload synthesis
//                  (token streams, labels) where only per-rank determinism matters.
//  * CounterRng  — a counter-based ("stateless") generator: the value at logical
//                  coordinate (stream, index) is a pure hash of (seed, stream, index).
//
// CounterRng is what makes distributed/serial equivalence testable without any
// communication at initialisation time: every engine materialises parameter
// matrix `m` entry (r, c) as counter_normal(seed, m, r * cols + c), so a device
// holding only a sub-block produces bit-identical values to the serial oracle.

#include <cstdint>

namespace optimus::util {

/// SplitMix64 step: advances the state and returns a 64-bit pseudo-random value.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// Stateless mix of three 64-bit words into one; the core of CounterRng.
inline std::uint64_t mix3(std::uint64_t a, std::uint64_t b, std::uint64_t c) {
  std::uint64_t s = a;
  s ^= splitmix64(b);
  std::uint64_t t = s + 0x632BE59BD9B4E019ULL + (c * 0x9E3779B97F4A7C15ULL);
  return splitmix64(t);
}

/// Sequential pseudo-random stream (SplitMix64).
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed ^ 0xD1B54A32D192ED03ULL) {}

  std::uint64_t next_u64() { return splitmix64(state_); }

  /// Uniform in [0, 1).
  double uniform() { return static_cast<double>(next_u64() >> 11) * 0x1.0p-53; }

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t uniform_index(std::uint64_t n) { return next_u64() % n; }

  /// Standard normal via Box–Muller (one value per call; the pair's twin is dropped
  /// to keep the stream position independent of call parity).
  double normal();

 private:
  std::uint64_t state_;
};

/// Counter-based generator: values are pure functions of (seed, stream, index).
class CounterRng {
 public:
  explicit CounterRng(std::uint64_t seed) : seed_(seed) {}

  std::uint64_t u64_at(std::uint64_t stream, std::uint64_t index) const {
    return mix3(seed_, stream, index);
  }

  /// Uniform in [0, 1) at logical coordinate (stream, index).
  double uniform_at(std::uint64_t stream, std::uint64_t index) const {
    return static_cast<double>(u64_at(stream, index) >> 11) * 0x1.0p-53;
  }

  /// Uniform in [-scale, scale) — the initialisation distribution used for
  /// parameter matrices throughout the library.
  double symmetric_at(std::uint64_t stream, std::uint64_t index, double scale) const {
    return scale * (2.0 * uniform_at(stream, index) - 1.0);
  }

  /// Standard normal at (stream, index): Box–Muller over two derived uniforms.
  double normal_at(std::uint64_t stream, std::uint64_t index) const;

  std::uint64_t seed() const { return seed_; }

 private:
  std::uint64_t seed_;
};

}  // namespace optimus::util
