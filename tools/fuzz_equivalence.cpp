// Differential correctness fuzzer: serial oracle vs Optimus 2D vs Megatron 1D.
//
//   ./fuzz_equivalence --configs 100 --seed 1
//   ./fuzz_equivalence --config "q=2,mp=2,b=2,s=7,..."   # replay one repro
//
// Samples random model/mesh configurations (testing/fuzz_config.hpp) and runs
// each through one full training step — forward, LM loss, backward, SGD — on
// all three engines, comparing per-device blocks/slices with ULP-aware
// tolerances, round-tripping parameters through checkpoint_io, replaying the
// 2D run under a deterministic latency-fault plan (bitwise-identical results
// required), and finite-difference-checking the serial oracle's gradients on
// f64 configs.
//
// Output is deterministic for a given (seed, flags) pair — one summary line
// per config, no timing, no pointers — so two identical invocations must be
// byte-identical (scripts/check.sh diffs them). On failure the tool greedily
// shrinks the config toward the smallest one that still fails and prints a
// self-contained repro command. Exit code: 0 all pass, 1 failures, 2 usage.
//
// Flags:
//   --configs N           number of sampled configs (default 25)
//   --seed S              base sampling seed (default 1)
//   --config "k=v,..."    run exactly this config instead of sampling
//   --report PATH         also write the report lines to PATH
//   --gradcheck N         finite-difference coords per f64 config (default 4)
//   --no-megatron         skip the 1D engine
//   --no-fault-replay     skip the fault-plan replay stage
//   --no-shrink           report failures without shrinking
//   --verbose             echo every failure detail line

#include <fstream>
#include <iostream>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "testing/equivalence.hpp"
#include "testing/fuzz_config.hpp"
#include "testing/watchdog.hpp"

namespace ots = optimus::testing;

namespace {

struct Args {
  int configs = 25;
  std::uint64_t seed = 1;
  std::string config;
  std::string report;
  int gradcheck = 4;
  bool megatron = true;
  bool fault_replay = true;
  bool shrink = true;
  bool verbose = false;
};

int usage() {
  std::cerr << "usage: fuzz_equivalence [--configs N] [--seed S] [--config STR] [--report PATH]\n"
               "                        [--gradcheck N] [--no-megatron] [--no-fault-replay]\n"
               "                        [--no-shrink] [--verbose]\n";
  return 2;
}

bool parse_args(int argc, char** argv, Args& a) {
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (flag == "--configs") {
      const char* v = next();
      if (!v) return false;
      a.configs = std::stoi(v);
    } else if (flag == "--seed") {
      const char* v = next();
      if (!v) return false;
      a.seed = std::stoull(v);
    } else if (flag == "--config") {
      const char* v = next();
      if (!v) return false;
      a.config = v;
    } else if (flag == "--report") {
      const char* v = next();
      if (!v) return false;
      a.report = v;
    } else if (flag == "--gradcheck") {
      const char* v = next();
      if (!v) return false;
      a.gradcheck = std::stoi(v);
    } else if (flag == "--no-megatron") {
      a.megatron = false;
    } else if (flag == "--no-fault-replay") {
      a.fault_replay = false;
    } else if (flag == "--no-shrink") {
      a.shrink = false;
    } else if (flag == "--verbose") {
      a.verbose = true;
    } else {
      std::cerr << "unknown flag '" << flag << "'\n";
      return false;
    }
  }
  return a.configs >= 0;
}

ots::EquivalenceResult run_one(const ots::FuzzConfig& fc, const Args& a) {
  ots::EquivalenceOptions opts;
  opts.run_megatron = a.megatron;
  opts.fault_replay = a.fault_replay;
  opts.gradcheck_coords = a.gradcheck;
  // A hung collective must fail the fuzzer loudly, not wedge CI.
  ots::Watchdog wd("fuzz config " + fc.to_string(), std::chrono::seconds(180));
  return ots::run_equivalence(fc, opts);
}

/// Greedy shrink: repeatedly replace the failing config with its first
/// still-failing reduction until no reduction fails.
ots::FuzzConfig shrink(ots::FuzzConfig failing, const Args& a, std::ostream& out) {
  const int kMaxSteps = 40;
  for (int step = 0; step < kMaxSteps; ++step) {
    bool reduced = false;
    for (const ots::FuzzConfig& cand : failing.shrink_candidates()) {
      if (!run_one(cand, a).pass()) {
        out << "shrink: " << cand.to_string() << " still fails\n";
        failing = cand;
        reduced = true;
        break;
      }
    }
    if (!reduced) break;
  }
  return failing;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!parse_args(argc, argv, args)) return usage();

  std::ostringstream report;
  std::vector<ots::FuzzConfig> todo;
  if (!args.config.empty()) {
    try {
      todo.push_back(ots::FuzzConfig::parse(args.config));
    } catch (const std::exception& e) {
      std::cerr << "bad --config: " << e.what() << "\n";
      return 2;
    }
  } else {
    std::mt19937 gen(static_cast<std::mt19937::result_type>(args.seed));
    for (int n = 0; n < args.configs; ++n) todo.push_back(ots::FuzzConfig::sample(gen));
  }

  int failures = 0;
  for (std::size_t n = 0; n < todo.size(); ++n) {
    const ots::FuzzConfig& fc = todo[n];
    const ots::EquivalenceResult res = run_one(fc, args);
    report << "[" << n << "] " << ots::summarize(res) << "\n";
    if (res.pass()) continue;

    failures += 1;
    const std::size_t shown =
        args.verbose ? res.failures.size() : std::min<std::size_t>(res.failures.size(), 3);
    for (std::size_t k = 0; k < shown; ++k) report << "    " << res.failures[k] << "\n";

    ots::FuzzConfig repro = fc;
    if (args.shrink) repro = shrink(fc, args, report);
    report << "FAILURE REPRO: fuzz_equivalence --config \"" << repro.to_string() << "\"";
    if (!args.megatron) report << " --no-megatron";
    if (!args.fault_replay) report << " --no-fault-replay";
    report << "\n";
    if (args.shrink && repro.to_string() != fc.to_string()) {
      report << "  (shrunk from: " << fc.to_string() << ")\n";
    }
  }

  report << "fuzz_equivalence: " << todo.size() << " configs, " << failures << " failures, seed="
         << args.seed << "\n";

  std::cout << report.str();
  if (!args.report.empty()) {
    std::ofstream out(args.report);
    if (!out.good()) {
      std::cerr << "cannot write report to " << args.report << "\n";
      return 2;
    }
    out << report.str();
  }
  return failures == 0 ? 0 : 1;
}
