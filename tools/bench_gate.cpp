// Benchmark regression gate for scripts/check.sh and manual use.
//
//   ./bench_gate <baseline.json> <fresh.json> [--tol 0.05] [--include-wall]
//
// Both files are BENCH_*.json arrays as written by bench::JsonWriter. Records
// are matched positionally within same-"name" groups (a bench emits its rows
// in a fixed order, but reordering whole sections must not break the gate).
// Every numeric field present in a baseline record must exist in the fresh
// record and agree within the symmetric relative tolerance
//   |a − b| / max(|a|, |b|) ≤ tol
// (absolute slack 1e-12 covers exact-zero fields). Fields that measure host
// wall time — "gflops" and "wall_ms" — are skipped unless --include-wall is
// given: they are machine-load noise, while everything else in these files
// derives from the deterministic simulated clock. Extra fields in the fresh
// file are allowed (schema growth); a fresh record or field missing for a
// baseline entry is a failure. Exits 0 when everything is within tolerance,
// 1 on any regression or shape mismatch, 2 on usage/parse errors.

#include <cmath>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.hpp"

namespace {

using optimus::obs::Json;

struct Record {
  std::string name;
  const Json* fields = nullptr;  // the record object
  int ordinal = 0;               // position within its name group
};

bool load_records(const char* path, std::vector<Record>& out) {
  std::ifstream in(path);
  if (!in.good()) {
    std::cerr << path << ": cannot open\n";
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  static std::vector<Json> docs;  // keep parsed docs alive for the Json* refs
  try {
    docs.push_back(Json::parse(buf.str()));
  } catch (const std::exception& e) {
    std::cerr << path << ": JSON parse failure: " << e.what() << "\n";
    return false;
  }
  const Json& doc = docs.back();
  if (!doc.is_array()) {
    std::cerr << path << ": top level is not an array\n";
    return false;
  }
  std::map<std::string, int> seen;
  for (const Json& rec : doc.items()) {
    if (!rec.is_object() || !rec.has("name") || !rec.get("name").is_string()) {
      std::cerr << path << ": record without a name field\n";
      return false;
    }
    Record r;
    r.name = rec.get("name").as_string();
    r.fields = &rec;
    r.ordinal = seen[r.name]++;
    out.push_back(r);
  }
  return true;
}

bool within_tol(double a, double b, double tol) {
  const double diff = std::abs(a - b);
  if (diff <= 1e-12) return true;
  return diff / std::max(std::abs(a), std::abs(b)) <= tol;
}

}  // namespace

int main(int argc, char** argv) {
  std::string baseline_path, fresh_path;
  double tol = 0.05;
  bool include_wall = false;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--tol" && i + 1 < argc) {
      tol = std::atof(argv[++i]);
    } else if (a == "--include-wall") {
      include_wall = true;
    } else if (baseline_path.empty()) {
      baseline_path = a;
    } else if (fresh_path.empty()) {
      fresh_path = a;
    } else {
      std::cerr << "usage: bench_gate <baseline.json> <fresh.json> [--tol T] [--include-wall]\n";
      return 2;
    }
  }
  if (fresh_path.empty() || tol <= 0) {
    std::cerr << "usage: bench_gate <baseline.json> <fresh.json> [--tol T] [--include-wall]\n";
    return 2;
  }

  std::vector<Record> base, fresh;
  if (!load_records(baseline_path.c_str(), base) || !load_records(fresh_path.c_str(), fresh)) {
    return 2;
  }

  // Index fresh records by (name, ordinal-within-name).
  std::map<std::pair<std::string, int>, const Json*> fresh_by_key;
  for (const Record& r : fresh) fresh_by_key[{r.name, r.ordinal}] = r.fields;

  int compared = 0, failures = 0;
  for (const Record& b : base) {
    const auto it = fresh_by_key.find({b.name, b.ordinal});
    if (it == fresh_by_key.end()) {
      std::cerr << "FAIL " << b.name << "[" << b.ordinal << "]: missing from " << fresh_path
                << "\n";
      ++failures;
      continue;
    }
    const Json& f = *it->second;
    for (const auto& [key, bval] : b.fields->fields()) {
      if (!bval.is_number()) continue;  // name/shape strings are match keys
      if (!include_wall && (key == "gflops" || key == "wall_ms")) continue;
      if (!f.has(key) || !f.get(key).is_number()) {
        std::cerr << "FAIL " << b.name << "[" << b.ordinal << "]." << key
                  << ": missing from fresh record\n";
        ++failures;
        continue;
      }
      const double bv = bval.as_number();
      const double fv = f.get(key).as_number();
      ++compared;
      if (!within_tol(bv, fv, tol)) {
        std::cerr << "FAIL " << b.name << "[" << b.ordinal << "]." << key << ": baseline "
                  << bv << ", fresh " << fv << " (rel "
                  << std::abs(bv - fv) / std::max(std::abs(bv), std::abs(fv)) << " > tol "
                  << tol << ")\n";
        ++failures;
      }
    }
  }
  if (failures > 0) {
    std::cerr << failures << " regression(s) across " << base.size() << " baseline records\n";
    return 1;
  }
  std::cout << fresh_path << ": ok, " << compared << " fields within " << tol
            << " of baseline (" << base.size() << " records)\n";
  return 0;
}
