// Thread-scaling smoke for the cooperative GEMM (scripts/check.sh step).
//
// Runs the acceptance shape — 1024³ f32 — at 1 and 4 threads and checks that
// threading does not make the kernel slower. The historical failure mode this
// guards is real: before the shared-pack schedule every worker re-packed the
// identical B panel, and the 4-thread wall time was ~1.19× the 1-thread time
// (0.84× "speedup").
//
// The bound is core-count aware. With ≥4 hardware threads the ISSUE bound
// applies directly: fail if wall(4t) > 0.9 × wall(1t). On smaller hosts
// (including the 1-core CI container) a real speedup is physically
// unavailable, so the check degrades to "threads must not regress": fail if
// wall(4t) > 1.15 × wall(1t) — still strict enough to catch the re-packing
// pathology, generous enough not to flake on scheduler noise.
//
// Exit code 0 on pass, 1 on regression. Prints both walls either way.

#include <cstdio>
#include <vector>

#include "kernel/gemm.hpp"
#include "kernel/thread_pool.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"

namespace {

namespace ok = optimus::kernel;
using index_t = ok::index_t;

std::vector<float> random_buffer(index_t n, std::uint64_t seed) {
  optimus::util::Rng rng(seed);
  std::vector<float> v(static_cast<std::size_t>(n));
  for (auto& x : v) x = static_cast<float>(rng.uniform(-1, 1));
  return v;
}

// Best-of-reps wall time in ms: the minimum is the right statistic for a
// regression gate — it estimates the undisturbed run, and noise only ever
// inflates individual samples.
double best_wall_ms(int threads, int reps, const std::vector<float>& A,
                    const std::vector<float>& B, std::vector<float>& C, index_t n) {
  ok::set_threads(threads);
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    optimus::util::Stopwatch sw;
    ok::gemm(C.data(), A.data(), B.data(), n, n, n, n, n, n, ok::Trans::No,
             ok::Trans::No, 1.0f, 0.0f);
    const double ms = sw.elapsed_s() * 1000.0;
    if (ms < best) best = ms;
  }
  ok::set_threads(0);
  return best;
}

}  // namespace

int main() {
  const index_t n = 1024;
  const int reps = 5;
  auto A = random_buffer(n * n, 1);
  auto B = random_buffer(n * n, 2);
  std::vector<float> C(static_cast<std::size_t>(n * n), 0.0f);

  // Warm-up: fault in buffers and spawn the worker team once.
  best_wall_ms(4, 1, A, B, C, n);

  const double wall_1t = best_wall_ms(1, reps, A, B, C, n);
  const double wall_4t = best_wall_ms(4, reps, A, B, C, n);
  const int cores = ok::hardware_threads();

  // cores >= 4: threads must genuinely help (4t <= 0.9 * 1t).
  // cores < 4: no parallel speedup exists to demand; threads must not hurt.
  const double limit = cores >= 4 ? 0.9 * wall_1t : 1.15 * wall_1t;
  const char* regime = cores >= 4 ? "speedup (<= 0.9x of 1t)" : "no-regression (<= 1.15x of 1t)";

  std::printf("thread-scaling smoke: 1024^3 f32, best of %d reps\n", reps);
  std::printf("  hardware threads: %d  -> bound: %s\n", cores, regime);
  std::printf("  wall 1t: %.2f ms\n", wall_1t);
  std::printf("  wall 4t: %.2f ms  (speedup_vs_1t %.2fx, limit %.2f ms)\n", wall_4t,
              wall_1t / wall_4t, limit);

  if (wall_4t > limit) {
    std::printf("FAIL: 4-thread GEMM slower than the %s bound\n", regime);
    return 1;
  }
  std::printf("PASS\n");
  return 0;
}
