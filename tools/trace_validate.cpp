// Chrome-trace / metrics-JSON validator for scripts/check.sh and manual use.
//
//   ./trace_validate trace.json [more.json ...]
//   ./trace_validate --metrics metrics.json [more.json ...]
//
// Trace mode parses each file and checks the invariants the tracer promises:
//   * well-formed JSON with a traceEvents array of "X" (and "M") events;
//   * numeric pid/tid/ts, non-negative dur;
//   * per-(pid, tid) track, timestamps monotone in file order;
//   * spans nest properly — no partially-overlapping siblings on a track;
//   * request lanes: every "request" span sits inside a "lifecycle" span on
//     its lane (orphan spans fail), lifecycles are top-level.
// Metrics mode checks the schema written by comm::write_metrics:
//   * world_size matches the ranks array length;
//   * every rank carries a utilization breakdown whose fractions lie in
//     [0, 1] and sum to ~1, and whose accounted_s matches sim_time_s;
//   * the optional "metrics" registry section has well-formed counter /
//     gauge / histogram entries (histogram quantiles ordered, count matches
//     bucket totals).
// Exits 0 and prints a one-line summary per file on success; exits 1 with
// the first violation otherwise.

#include <cmath>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "obs/trace.hpp"

namespace {

using optimus::obs::Json;

struct MetricsCheck {
  bool ok = true;
  std::string error;
  int ranks = 0;
  int registry_entries = 0;
};

#define MV_FAIL(msg)                  \
  do {                                \
    std::ostringstream os_;           \
    os_ << msg; /* NOLINT */          \
    out.ok = false;                   \
    out.error = os_.str();            \
    return out;                       \
  } while (0)

bool finite_number(const Json& j) { return j.is_number() && std::isfinite(j.as_number()); }

MetricsCheck validate_metrics(const Json& doc) {
  MetricsCheck out;
  if (!doc.is_object()) MV_FAIL("top level is not an object");
  if (!doc.has("world_size") || !finite_number(doc.get("world_size")))
    MV_FAIL("missing numeric world_size");
  const int world = static_cast<int>(doc.get("world_size").as_number());
  if (!doc.has("ranks") || !doc.get("ranks").is_array()) MV_FAIL("missing ranks array");
  const Json& ranks = doc.get("ranks");
  if (static_cast<int>(ranks.size()) != world)
    MV_FAIL("ranks array has " << ranks.size() << " entries, world_size " << world);
  for (std::size_t i = 0; i < ranks.size(); ++i) {
    const Json& r = ranks.items()[i];
    if (!r.is_object()) MV_FAIL("rank " << i << " is not an object");
    for (const char* key : {"rank", "sim_time_s", "comm_time_s"}) {
      if (!r.has(key) || !finite_number(r.get(key)))
        MV_FAIL("rank " << i << " missing numeric " << key);
    }
    if (static_cast<int>(r.get("rank").as_number()) != static_cast<int>(i))
      MV_FAIL("rank entry " << i << " claims rank " << r.get("rank").as_number());
    if (!r.has("utilization") || !r.get("utilization").is_object())
      MV_FAIL("rank " << i << " missing utilization object");
    const Json& u = r.get("utilization");
    const double sim = r.get("sim_time_s").as_number();
    double frac_sum = 0;
    for (const char* base : {"compute", "align_wait", "transfer", "idle"}) {
      const std::string s_key = std::string(base) + "_s";
      const std::string f_key = std::string(base) + "_frac";
      if (!u.has(s_key) || !finite_number(u.get(s_key)))
        MV_FAIL("rank " << i << " utilization missing " << s_key);
      if (!u.has(f_key) || !finite_number(u.get(f_key)))
        MV_FAIL("rank " << i << " utilization missing " << f_key);
      const double f = u.get(f_key).as_number();
      if (f < -1e-9 || f > 1.0 + 1e-9)
        MV_FAIL("rank " << i << " " << f_key << " out of [0,1]: " << f);
      frac_sum += f;
    }
    if (sim > 0 && std::abs(frac_sum - 1.0) > 1e-6)
      MV_FAIL("rank " << i << " utilization fractions sum to " << frac_sum << ", want 1");
    if (!u.has("accounted_s") || !finite_number(u.get("accounted_s")))
      MV_FAIL("rank " << i << " utilization missing accounted_s");
    const double acc = u.get("accounted_s").as_number();
    if (std::abs(acc - sim) > 1e-9 * std::max(1.0, std::abs(sim)))
      MV_FAIL("rank " << i << " accounted_s " << acc << " != sim_time_s " << sim);
  }
  out.ranks = world;
  if (doc.has("metrics")) {
    const Json& reg = doc.get("metrics");
    if (!reg.is_object()) MV_FAIL("metrics section is not an object");
    for (const auto& [name, m] : reg.fields()) {
      if (!m.is_object() || !m.has("type") || !m.get("type").is_string())
        MV_FAIL("metric " << name << " missing type");
      const std::string type = m.get("type").as_string();
      if (type == "counter" || type == "gauge") {
        if (!m.has("value") || !finite_number(m.get("value")))
          MV_FAIL(type << " " << name << " missing numeric value");
      } else if (type == "histogram") {
        for (const char* key : {"count", "min", "max", "p50", "p99", "p999"}) {
          if (!m.has(key) || !m.get(key).is_number())
            MV_FAIL("histogram " << name << " missing " << key);
        }
        const double count = m.get("count").as_number();
        if (count > 0) {
          const double p50 = m.get("p50").as_number();
          const double p99 = m.get("p99").as_number();
          const double p999 = m.get("p999").as_number();
          if (!(p50 <= p99 && p99 <= p999))
            MV_FAIL("histogram " << name << " quantiles not ordered");
        }
        if (!m.has("buckets") || !m.get("buckets").is_array())
          MV_FAIL("histogram " << name << " missing buckets array");
        double bucket_total = 0;
        const Json& buckets = m.get("buckets");
        for (std::size_t b = 0; b < buckets.size(); ++b) {
          const Json& pair = buckets.items()[b];
          if (!pair.is_array() || pair.size() != 2)
            MV_FAIL("histogram " << name << " bucket " << b << " is not a pair");
          bucket_total += pair.items()[1].as_number();
        }
        if (bucket_total != count)
          MV_FAIL("histogram " << name << " bucket counts sum to " << bucket_total
                               << ", count says " << count);
      } else {
        MV_FAIL("metric " << name << " has unknown type " << type);
      }
      ++out.registry_entries;
    }
  }
  return out;
}

#undef MV_FAIL

bool load_json(const char* path, Json& doc) {
  std::ifstream in(path);
  if (!in.good()) {
    std::cerr << path << ": cannot open\n";
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  try {
    doc = Json::parse(buf.str());
  } catch (const std::exception& e) {
    std::cerr << path << ": JSON parse failure: " << e.what() << "\n";
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool metrics_mode = false;
  int first = 1;
  if (argc >= 2 && std::string(argv[1]) == "--metrics") {
    metrics_mode = true;
    first = 2;
  }
  if (argc <= first) {
    std::cerr << "usage: trace_validate [--metrics] <file.json> [more.json ...]\n";
    return 2;
  }
  bool ok = true;
  for (int i = first; i < argc; ++i) {
    Json doc;
    if (!load_json(argv[i], doc)) {
      ok = false;
      continue;
    }
    if (metrics_mode) {
      const MetricsCheck check = validate_metrics(doc);
      if (!check.ok) {
        std::cerr << argv[i] << ": INVALID: " << check.error << "\n";
        ok = false;
        continue;
      }
      std::cout << argv[i] << ": ok, " << check.ranks << " ranks, "
                << check.registry_entries << " registry metrics\n";
      continue;
    }
    const optimus::obs::TraceCheck check = optimus::obs::validate_chrome_trace(doc);
    if (!check.ok) {
      std::cerr << argv[i] << ": INVALID: " << check.error << "\n";
      ok = false;
      continue;
    }
    std::cout << argv[i] << ": ok, " << check.events << " events on " << check.tracks
              << " tracks, " << check.request_lanes << " request lanes\n";
  }
  return ok ? 0 : 1;
}
