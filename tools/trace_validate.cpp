// Chrome-trace validator for scripts/check.sh and manual use.
//
//   ./trace_validate trace.json [more.json ...]
//
// Parses each file and checks the invariants the tracer promises:
//   * well-formed JSON with a traceEvents array of "X" (and "M") events;
//   * numeric pid/tid/ts, non-negative dur;
//   * per-(pid, tid) track, timestamps monotone in file order;
//   * spans nest properly — no partially-overlapping siblings on a track.
// Exits 0 and prints a one-line summary per file on success; exits 1 with
// the first violation otherwise.

#include <fstream>
#include <iostream>
#include <sstream>

#include "obs/trace.hpp"

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: trace_validate <trace.json> [more.json ...]\n";
    return 2;
  }
  bool ok = true;
  for (int i = 1; i < argc; ++i) {
    std::ifstream in(argv[i]);
    if (!in.good()) {
      std::cerr << argv[i] << ": cannot open\n";
      ok = false;
      continue;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    optimus::obs::Json doc;
    try {
      doc = optimus::obs::Json::parse(buf.str());
    } catch (const std::exception& e) {
      std::cerr << argv[i] << ": JSON parse failure: " << e.what() << "\n";
      ok = false;
      continue;
    }
    const optimus::obs::TraceCheck check = optimus::obs::validate_chrome_trace(doc);
    if (!check.ok) {
      std::cerr << argv[i] << ": INVALID: " << check.error << "\n";
      ok = false;
      continue;
    }
    std::cout << argv[i] << ": ok, " << check.events << " events on " << check.tracks
              << " tracks\n";
  }
  return ok ? 0 : 1;
}
