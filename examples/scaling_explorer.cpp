// Scaling explorer: interactive front-end to the analytic performance and
// memory model — "what would Optimus vs Megatron do for MY model?"
//
//   ./scaling_explorer --hidden 8192 --batch 64 --seq 1024 --layers 32
//       [--heads 64] [--vocab 51200] [--budget-gb 16]
//                      [--max-p 256] [--arrangement bunched] [--tree]
//       [--validate] [--trace-out trace.json] [--metrics-out metrics.json]
//
// Prints, for each square device count up to --max-p: predicted step time,
// throughput, parallel efficiency and per-device memory for both schemes,
// the memory-limited max batch, and the communication-volume breakdown.
// Machine constants come from the paper-calibrated fit (overridable).
//
// --validate additionally runs one real LM step of each engine on a small
// p = 4 simulated cluster and checks the measured per-device collective
// traffic against the analytic Table-1 forms (the closed forms above are
// then not just a model — they are an oracle the simulation satisfies), plus
// one KV-cached decode step of each engine against the closed-form
// decode-step cost (perfmodel::predict_*_decode_step_time).
// --trace-out / --metrics-out capture that validation run's span timeline
// and metrics (they imply --validate; the analytic sweep itself runs no
// simulation worth tracing).

#include <cmath>
#include <iostream>

#include "comm/cluster.hpp"
#include "comm/obs_report.hpp"
#include "core/optimus_model.hpp"
#include "megatron/megatron_model.hpp"
#include "mesh/mesh.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "perfmodel/memory.hpp"
#include "perfmodel/scaling.hpp"
#include "perfmodel/validation.hpp"
#include "runtime/data.hpp"
#include "serving/engines.hpp"
#include "summa/summa.hpp"
#include "tensor/tensor.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace opm = optimus::perfmodel;
using optimus::util::Table;

namespace {

/// Runs one real fwd+loss+bwd LM step of each engine at p = 4 and prints the
/// measured collective traffic next to the Table-1 closed forms. Returns
/// false (failure) if either scheme deviates. The Optimus run's cluster
/// report is left in `*optimus_report` for the metrics export.
bool run_validation(optimus::comm::Cluster::Report* optimus_report) {
  namespace oc = optimus::comm;
  namespace ort = optimus::runtime;
  optimus::model::TransformerConfig cfg;
  cfg.batch = 4;
  cfg.seq_len = 8;
  cfg.hidden = 16;
  cfg.heads = 4;
  cfg.vocab = 16;
  cfg.layers = 2;
  cfg.seed = 5;
  opm::Workload w;
  w.b = cfg.batch;
  w.s = cfg.seq_len;
  w.h = cfg.hidden;
  w.n = cfg.heads;
  w.v = cfg.vocab;
  w.layers = cfg.layers;
  const int p = 4;
  ort::RandomLmWorkload workload(cfg.batch, cfg.seq_len, cfg.vocab, 3);
  const auto batch = workload.next();

  std::cout << "\nmeasured vs analytic per-device collective traffic, one LM step at p=4\n";
  Table t({"scheme", "collective", "measured", "predicted", "rel err", "ok?"});
  bool all_ok = true;
  for (const auto scheme : {opm::Scheme::kMegatron, opm::Scheme::kOptimus}) {
    auto report = oc::run_cluster(p, [&](oc::Context& ctx) {
      if (scheme == opm::Scheme::kMegatron) {
        optimus::megatron::MegatronTransformer<float> engine(cfg, ctx.world);
        engine.forward(batch.tokens);
        (void)engine.lm_loss(batch.labels);
        engine.backward_lm();
      } else {
        optimus::mesh::Mesh2D mesh(ctx.world);
        optimus::core::OptimusTransformer<float> engine(cfg, mesh);
        engine.forward(batch.tokens);
        (void)engine.lm_loss(batch.labels);
        engine.backward_lm();
      }
    });
    const auto v = opm::validate_lm_step_comm(scheme, w, p, report.ranks[0].stats);
    for (const auto& row : v.rows) {
      t.add_row({scheme == opm::Scheme::kMegatron ? "Megatron" : "Optimus", row.name,
                 Table::fmt(row.measured, 1), Table::fmt(row.predicted, 1),
                 Table::fmt(row.rel_err(), 12), v.ok() ? "yes" : "NO"});
    }
    all_ok = all_ok && v.ok();
    if (scheme == opm::Scheme::kOptimus) *optimus_report = report;
  }
  t.print(std::cout);

  // SUMMA overlap: one summa_ab under each schedule, simulator clock vs the
  // overlap-aware closed form (perfmodel::predict_summa_ab_times). Also
  // checks the pipelined schedule actually hides communication (≥25% faster
  // than blocking at this size, the Table-1 regime the benches track).
  namespace os = optimus::summa;
  namespace ot = optimus::tensor;
  const int q = 2;
  const ot::index_t nb = 48;  // 96×96 global matrices, 48×48 blocks
  const auto run_mode = [&](bool pipelined) {
    const auto report = oc::run_cluster(p, [&](oc::Context& ctx) {
      os::PipelineGuard guard(pipelined);
      optimus::mesh::Mesh2D mesh(ctx.world);
      ot::TensorT<float> A = ot::TensorT<float>::zeros(ot::Shape{nb, nb});
      ot::TensorT<float> B = ot::TensorT<float>::zeros(ot::Shape{nb, nb});
      ot::TensorT<float> C = ot::TensorT<float>::zeros(ot::Shape{nb, nb});
      os::summa_ab(mesh, A, B, C);
    });
    return report.max_sim_time();
  };
  const double meas_blocking = run_mode(false);
  const double meas_pipelined = run_mode(true);
  const oc::Topology topo(p, /*gpus_per_node=*/4, oc::Arrangement::kBunched, 0);
  const oc::CostModel cost(topo, oc::MachineParams{});
  const auto pred =
      opm::predict_summa_ab_times(cost, q, q * nb, q * nb, q * nb, sizeof(float));
  std::cout << "\nmeasured vs predicted summa_ab sim time, 96x96x96 f32 at q=2\n";
  Table st({"schedule", "measured s", "predicted s", "rel err", "ok?"});
  bool overlap_ok = true;
  const auto add = [&](const char* name, double meas, double predicted) {
    const double rel = std::abs(meas - predicted) / (predicted > 0 ? predicted : 1.0);
    const bool ok = rel <= 1e-9;
    overlap_ok = overlap_ok && ok;
    st.add_row({name, Table::fmt(meas, 12), Table::fmt(predicted, 12),
                Table::fmt(rel, 12), ok ? "yes" : "NO"});
  };
  add("blocking", meas_blocking, pred.blocking_s);
  add("pipelined", meas_pipelined, pred.pipelined_s);
  st.print(std::cout);
  const double saved = (meas_blocking - meas_pipelined) / meas_blocking;
  std::cout << "overlap hides " << Table::fmt(100.0 * saved, 1)
            << "% of the blocking step time\n";
  if (saved < 0.25) {
    std::cout << "FAIL: expected >=25% overlap win at q=2\n";
    overlap_ok = false;
  }

  // 2.5D (Tesseract) step: the same product on a 2×2×2 mesh, simulator clock
  // vs the depth-extended closed form (Table-1 terms /d plus the depth
  // reduction), again under both schedules.
  const int depth = 2;
  const auto run_mode_25d = [&](bool pipelined) {
    const auto report = oc::run_cluster(q * q * depth, [&](oc::Context& ctx) {
      os::PipelineGuard guard(pipelined);
      optimus::mesh::Mesh2D mesh(ctx.world, depth);
      ot::TensorT<float> A = ot::TensorT<float>::zeros(ot::Shape{nb, nb});
      ot::TensorT<float> B = ot::TensorT<float>::zeros(ot::Shape{nb, nb});
      ot::TensorT<float> C = ot::TensorT<float>::zeros(ot::Shape{nb, nb});
      os::summa_ab(mesh, A, B, C);
    });
    return report.max_sim_time();
  };
  const oc::Topology topo25(q * q * depth, /*gpus_per_node=*/4, oc::Arrangement::kBunched, 0);
  const oc::CostModel cost25(topo25, oc::MachineParams{});
  const auto pred25 =
      opm::predict_summa25_ab_times(cost25, q, depth, q * nb, q * nb, q * nb, sizeof(float));
  std::cout << "\nmeasured vs predicted 2.5D summa_ab sim time, 96x96x96 f32 at q=2 d=2\n";
  Table s25({"schedule", "measured s", "predicted s", "rel err", "ok?"});
  bool depth_ok = true;
  const auto add25 = [&](const char* name, double meas, double predicted) {
    const double rel = std::abs(meas - predicted) / (predicted > 0 ? predicted : 1.0);
    const bool ok = rel <= 1e-9;
    depth_ok = depth_ok && ok;
    s25.add_row({name, Table::fmt(meas, 12), Table::fmt(predicted, 12),
                 Table::fmt(rel, 12), ok ? "yes" : "NO"});
  };
  add25("blocking", run_mode_25d(false), pred25.blocking_s);
  add25("pipelined", run_mode_25d(true), pred25.pipelined_s);
  s25.print(std::cout);
  if (!depth_ok) std::cout << "FAIL: 2.5D closed form does not match the simulator\n";

  // KV-cached decode step: one incremental serving step of each distributed
  // engine, simulator clock vs the closed-form decode-step predictor (the
  // exact sum of the step's collectives and GEMM charges). A warmup step
  // first pays the one-time decode parameter fetch and fills every cache
  // slot to length 1 — the lens the predictor is handed.
  std::cout << "\nmeasured vs predicted KV-cached decode-step sim time at p=4\n";
  Table dt({"engine", "measured s", "predicted s", "rel err", "ok?"});
  bool decode_ok = true;
  const std::vector<optimus::tensor::index_t> lens(static_cast<std::size_t>(cfg.batch), 1);
  const std::vector<std::int32_t> step_tokens(static_cast<std::size_t>(cfg.batch), 1);
  const std::vector<std::uint8_t> step_active(static_cast<std::size_t>(cfg.batch), 1);
  const auto add_decode = [&](const char* name, double meas, double predicted) {
    const double rel = std::abs(meas - predicted) / (predicted > 0 ? predicted : 1.0);
    const bool ok = rel <= 1e-9;
    decode_ok = decode_ok && ok;
    dt.add_row({name, Table::fmt(meas, 12), Table::fmt(predicted, 12), Table::fmt(rel, 12),
                ok ? "yes" : "NO"});
  };
  {
    double meas = 0, predicted = 0;
    oc::run_cluster(p, [&](oc::Context& ctx) {
      os::PipelineGuard guard(false);  // the closed form models blocking SUMMA
      optimus::mesh::Mesh2D mesh(ctx.world);
      optimus::core::OptimusTransformer<float> engine(cfg, mesh);
      optimus::serving::OptimusDecodeEngine<float> dec(engine, cfg.batch);
      dec.step(step_tokens, step_active);  // warmup
      const double t0 = ctx.clock.now();
      dec.step(step_tokens, step_active);
      if (ctx.rank == 0) {
        meas = ctx.clock.now() - t0;
        predicted = opm::predict_optimus_decode_step_time(ctx.cost, w, q, lens, sizeof(float));
      }
    });
    add_decode("Optimus q=2", meas, predicted);
  }
  {
    double meas = 0, predicted = 0;
    oc::run_cluster(p, [&](oc::Context& ctx) {
      optimus::megatron::MegatronTransformer<float> engine(cfg, ctx.world);
      optimus::serving::MegatronDecodeEngine<float> dec(engine, ctx.world, cfg.batch);
      dec.step(step_tokens, step_active);  // warmup
      const double t0 = ctx.clock.now();
      dec.step(step_tokens, step_active);
      if (ctx.rank == 0) {
        meas = ctx.clock.now() - t0;
        predicted = opm::predict_megatron_decode_step_time(ctx.cost, w, p, lens, sizeof(float));
      }
    });
    add_decode("Megatron p=4", meas, predicted);
  }
  dt.print(std::cout);
  if (!decode_ok) std::cout << "FAIL: decode-step closed form does not match the simulator\n";
  return all_ok && overlap_ok && depth_ok && decode_ok;
}

}  // namespace

int main(int argc, char** argv) {
  optimus::util::Cli cli(argc, argv);
  opm::Workload w;
  w.h = cli.get_i64("hidden", 8192);
  w.b = cli.get_i64("batch", 64);
  w.s = cli.get_i64("seq", 1024);
  w.n = cli.get_i64("heads", 64);
  w.v = cli.get_i64("vocab", 51200);
  w.layers = cli.get_i64("layers", 32);
  const double budget_gb = cli.get_double("budget-gb", 16.0);
  const int max_p = cli.get_int("max-p", 256);
  const auto arrangement = optimus::comm::parse_arrangement(
      cli.get_string("arrangement", "bunched"));
  opm::Machine machine = opm::calibrate_from_paper();
  if (cli.get_bool("tree", false)) machine.pipelined_collectives = false;
  machine.flop_rate = cli.get_double("flop-rate", machine.flop_rate);
  machine.beta_inter = cli.get_double("beta-inter", machine.beta_inter);
  const std::string trace_out = cli.get_string("trace-out", "");
  const std::string metrics_out = cli.get_string("metrics-out", "");
  const bool validate =
      cli.get_bool("validate", false) || !trace_out.empty() || !metrics_out.empty();
  cli.finish();
  if (!trace_out.empty() || !metrics_out.empty()) optimus::obs::set_enabled(true);
  // The metrics JSON carries the registry section (step latency histograms,
  // serving/training counters) alongside the per-rank report.
  if (!metrics_out.empty()) optimus::obs::set_metrics_enabled(true);

  std::cout << "model: h=" << w.h << " b=" << w.b << " s=" << w.s << " N=" << w.layers
            << " v=" << w.v << "  (" << Table::fmt(opm::total_compute(w) / 1e12, 1)
            << " Tmult per step)\n"
            << "machine: " << Table::fmt(machine.flop_rate / 1e12, 1) << " Tmult/s, "
            << Table::fmt(1.0 / machine.beta_inter / 1e9, 2)
            << " Gscalar/s inter-node, 4 GPUs/node, "
            << (machine.pipelined_collectives ? "pipelined" : "eq-4 tree")
            << " collectives\n\n";

  Table t({"p", "scheme", "step (s)", "seq/s", "efficiency", "mem/device (GB)", "fits?",
           "max batch"});
  const std::uint64_t budget = static_cast<std::uint64_t>(budget_gb * (1ull << 30));
  for (int p = 4; p <= max_p; p *= 4) {
    const int q = static_cast<int>(std::lround(std::sqrt(p)));
    for (const auto scheme : {opm::Scheme::kMegatron, opm::Scheme::kOptimus}) {
      const bool is_meg = scheme == opm::Scheme::kMegatron;
      const opm::StepTime st = is_meg ? opm::megatron_step_time(w, p, machine)
                                      : opm::optimus_step_time(w, p, machine, arrangement);
      const auto mem = is_meg ? opm::megatron_memory(w, p) : opm::optimus_memory(w, p);
      const auto bmax = opm::max_batch(scheme, w, p, budget, is_meg ? 1 : q);
      t.add_row({std::to_string(p), is_meg ? "Megatron" : "Optimus",
                 Table::fmt(st.total(), 3), Table::fmt(w.b / st.total(), 2),
                 Table::fmt(opm::efficiency(scheme, w, p, machine), 3),
                 Table::fmt(static_cast<double>(mem.total()) / (1ull << 30), 2),
                 mem.total() <= budget ? "yes" : "NO", std::to_string(bmax)});
    }
  }
  t.print(std::cout);

  std::cout << "\nper-layer communication volume (beta-weighted scalars, fwd+bwd):\n";
  Table c({"p", "Megatron", "Optimus", "Optimus/Megatron"});
  for (int p = 4; p <= max_p; p *= 4) {
    const double m = opm::megatron_fwd_comm(w, p) + opm::megatron_bwd_comm(w, p);
    const double o = opm::optimus_fwd_comm(w, p) + opm::optimus_bwd_comm(w, p);
    c.add_row({std::to_string(p), Table::fmt(m, 0), Table::fmt(o, 0),
               Table::fmt(o / std::max(m, 1.0), 3)});
  }
  c.print(std::cout);
  std::cout << "\nNotes: Megatron's volume is flat in p while Optimus's falls like\n"
            << "log(p)/sqrt(p); whichever fits memory at your target scale wins.\n";

  if (validate) {
    optimus::comm::Cluster::Report optimus_report;
    const bool ok = run_validation(&optimus_report);
    if (!trace_out.empty()) optimus::obs::write_chrome_trace(trace_out);
    if (!metrics_out.empty()) optimus::comm::write_metrics(metrics_out, optimus_report);
    if (!ok) return 1;
  }
  return 0;
}
