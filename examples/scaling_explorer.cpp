// Scaling explorer: interactive front-end to the analytic performance and
// memory model — "what would Optimus vs Megatron do for MY model?"
//
//   ./scaling_explorer --hidden 8192 --batch 64 --seq 1024 --layers 32
//       [--heads 64] [--vocab 51200] [--budget-gb 16]
//                      [--max-p 256] [--arrangement bunched] [--tree]
//
// Prints, for each square device count up to --max-p: predicted step time,
// throughput, parallel efficiency and per-device memory for both schemes,
// the memory-limited max batch, and the communication-volume breakdown.
// Machine constants come from the paper-calibrated fit (overridable).

#include <cmath>
#include <iostream>

#include "perfmodel/memory.hpp"
#include "perfmodel/scaling.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace opm = optimus::perfmodel;
using optimus::util::Table;

int main(int argc, char** argv) {
  optimus::util::Cli cli(argc, argv);
  opm::Workload w;
  w.h = cli.get_i64("hidden", 8192);
  w.b = cli.get_i64("batch", 64);
  w.s = cli.get_i64("seq", 1024);
  w.n = cli.get_i64("heads", 64);
  w.v = cli.get_i64("vocab", 51200);
  w.layers = cli.get_i64("layers", 32);
  const double budget_gb = cli.get_double("budget-gb", 16.0);
  const int max_p = cli.get_int("max-p", 256);
  const auto arrangement = optimus::comm::parse_arrangement(
      cli.get_string("arrangement", "bunched"));
  opm::Machine machine = opm::calibrate_from_paper();
  if (cli.get_bool("tree", false)) machine.pipelined_collectives = false;
  machine.flop_rate = cli.get_double("flop-rate", machine.flop_rate);
  machine.beta_inter = cli.get_double("beta-inter", machine.beta_inter);
  cli.finish();

  std::cout << "model: h=" << w.h << " b=" << w.b << " s=" << w.s << " N=" << w.layers
            << " v=" << w.v << "  (" << Table::fmt(opm::total_compute(w) / 1e12, 1)
            << " Tmult per step)\n"
            << "machine: " << Table::fmt(machine.flop_rate / 1e12, 1) << " Tmult/s, "
            << Table::fmt(1.0 / machine.beta_inter / 1e9, 2)
            << " Gscalar/s inter-node, 4 GPUs/node, "
            << (machine.pipelined_collectives ? "pipelined" : "eq-4 tree")
            << " collectives\n\n";

  Table t({"p", "scheme", "step (s)", "seq/s", "efficiency", "mem/device (GB)", "fits?",
           "max batch"});
  const std::uint64_t budget = static_cast<std::uint64_t>(budget_gb * (1ull << 30));
  for (int p = 4; p <= max_p; p *= 4) {
    const int q = static_cast<int>(std::lround(std::sqrt(p)));
    for (const auto scheme : {opm::Scheme::kMegatron, opm::Scheme::kOptimus}) {
      const bool is_meg = scheme == opm::Scheme::kMegatron;
      const opm::StepTime st = is_meg ? opm::megatron_step_time(w, p, machine)
                                      : opm::optimus_step_time(w, p, machine, arrangement);
      const auto mem = is_meg ? opm::megatron_memory(w, p) : opm::optimus_memory(w, p);
      const auto bmax = opm::max_batch(scheme, w, p, budget, is_meg ? 1 : q);
      t.add_row({std::to_string(p), is_meg ? "Megatron" : "Optimus",
                 Table::fmt(st.total(), 3), Table::fmt(w.b / st.total(), 2),
                 Table::fmt(opm::efficiency(scheme, w, p, machine), 3),
                 Table::fmt(static_cast<double>(mem.total()) / (1ull << 30), 2),
                 mem.total() <= budget ? "yes" : "NO", std::to_string(bmax)});
    }
  }
  t.print(std::cout);

  std::cout << "\nper-layer communication volume (beta-weighted scalars, fwd+bwd):\n";
  Table c({"p", "Megatron", "Optimus", "Optimus/Megatron"});
  for (int p = 4; p <= max_p; p *= 4) {
    const double m = opm::megatron_fwd_comm(w, p) + opm::megatron_bwd_comm(w, p);
    const double o = opm::optimus_fwd_comm(w, p) + opm::optimus_bwd_comm(w, p);
    c.add_row({std::to_string(p), Table::fmt(m, 0), Table::fmt(o, 0),
               Table::fmt(o / std::max(m, 1.0), 3)});
  }
  c.print(std::cout);
  std::cout << "\nNotes: Megatron's volume is flat in p while Optimus's falls like\n"
            << "log(p)/sqrt(p); whichever fits memory at your target scale wins.\n";
  return 0;
}
