// Mixture-of-Experts demo — the paper's §6 future-work direction, end to end:
// trains an expert-parallel Switch FFN (experts sharded across the simulated
// devices, tokens routed by all_to_all) to imitate a frozen random teacher
// mixture, and reports expert utilisation, drop rates and the communication
// profile.
//
//   ./moe_expert_parallel [--ranks 4] [--experts 8] [--steps 150]
//                         [--tokens 32] [--hidden 16] [--capacity 1.5]

#include <cmath>
#include <iomanip>
#include <iostream>
#include <mutex>

#include "comm/cluster.hpp"
#include "model/moe.hpp"
#include "runtime/optimizer.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace oc = optimus::comm;
namespace om = optimus::model;
namespace ot = optimus::tensor;

int main(int argc, char** argv) {
  optimus::util::Cli cli(argc, argv);
  const int ranks = cli.get_int("ranks", 4);
  const int steps = cli.get_int("steps", 150);
  const int tokens = cli.get_int("tokens", 32);  // per rank
  om::MoeConfig cfg;
  cfg.num_experts = cli.get_int("experts", 8);
  cfg.hidden = cli.get_int("hidden", 16);
  cfg.ffn_hidden = 2 * cfg.hidden;
  cfg.capacity_factor = cli.get_double("capacity", 1.5);
  cfg.aux_loss_coef = 0.02;
  cli.finish();

  std::cout << "expert-parallel Switch FFN: " << cfg.num_experts << " experts over " << ranks
            << " ranks (" << cfg.num_experts / ranks << " each), " << tokens
            << " tokens/rank, capacity factor " << cfg.capacity_factor << "\n\n";

  std::vector<double> losses;
  std::vector<ot::index_t> final_counts(static_cast<std::size_t>(cfg.num_experts), 0);
  double final_aux = 0;
  std::uint64_t a2a_calls = 0, a2a_elems = 0;
  std::mutex mu;
  auto report = oc::run_cluster(ranks, [&](oc::Context& ctx) {
    // The teacher is replicated (same seed everywhere) so every shard fits
    // the same target function; its larger weights give the student a real
    // gap to close.
    auto teacher_cfg = cfg;
    teacher_cfg.init_scale = 0.5;
    om::SwitchFfn<float> teacher(teacher_cfg);
    auto student_cfg = cfg;
    student_cfg.seed = cfg.seed + 1;
    om::ExpertParallelSwitchFfn<float> student(student_cfg, ctx.world);
    optimus::runtime::Adam<float> opt;
    optimus::util::Rng rng(400 + ctx.rank);

    std::vector<double> local_losses;
    std::vector<ot::index_t> counts(static_cast<std::size_t>(cfg.num_experts), 0);
    // A small pool of fixed batches (cycled) keeps the descent visible; fresh
    // random batches at this scale are dominated by routing noise.
    std::vector<ot::Tensor> pool, targets;
    for (int b = 0; b < 4; ++b) {
      ot::Tensor x(ot::Shape{tokens, cfg.hidden});
      for (ot::index_t i = 0; i < x.numel(); ++i) {
        x[i] = static_cast<float>(rng.uniform(-1.5, 1.5));
      }
      pool.push_back(x);
      targets.push_back(teacher.forward(x));
    }
    for (int step = 0; step < steps; ++step) {
      const ot::Tensor& x = pool[step % 4];
      const ot::Tensor& target = targets[step % 4];
      ot::Tensor y = student.forward(x);
      ot::Tensor dy(y.shape());
      double mse = 0;
      for (ot::index_t i = 0; i < y.numel(); ++i) {
        const float diff = y[i] - target[i];
        mse += diff * diff;
        dy[i] = 2.0f * diff / static_cast<float>(y.numel());
      }
      mse /= static_cast<double>(y.numel());
      // The reported trace is this rank's shard MSE (the aux loss is printed
      // separately at the end — near its α lower bound when balanced).
      local_losses.push_back(mse);
      student.zero_grads();
      (void)student.backward(dy);
      opt.step(student.parameters(), student.gradients(), 2e-3);
    }
    if (ctx.rank == 0) {
      std::lock_guard<std::mutex> lock(mu);
      losses = local_losses;
      final_aux = student.aux_loss();
    }
  });

  std::cout << "step | shard mse\n-----+----------\n";
  for (std::size_t i = 0; i < losses.size();
       i += std::max<std::size_t>(1, losses.size() / 8)) {
    std::cout << std::setw(4) << i << " | " << optimus::util::Table::fmt(losses[i], 5)
              << "\n";
  }
  std::cout << std::setw(4) << losses.size() - 1 << " | "
            << optimus::util::Table::fmt(losses.back(), 5) << "\n";

  const auto& st = report.ranks[0].stats;
  a2a_calls = st.alltoall.calls;
  a2a_elems = st.alltoall.elems;
  (void)final_counts;
  std::cout << "\nfinal aux (load-balance) loss: "
            << optimus::util::Table::fmt(final_aux, 5) << "\n"
            << "all_to_all traffic per rank: " << a2a_calls << " calls, " << a2a_elems
            << " elements (4 exchanges per train step: dispatch/return x fwd/bwd)\n"
            << "all-reduce traffic (gate grads + balance stats): " << st.allreduce.calls
            << " calls\n"
            << "simulated time on the modelled cluster: "
            << optimus::util::Table::fmt(report.max_sim_time(), 4) << " s\n";
  return losses.back() < losses.front() ? 0 : 1;
}
