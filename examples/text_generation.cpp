// Text generation: trains a character-level language model on a small
// built-in corpus and then generates text with *distributed inference* on the
// Optimus mesh — the paper's lm-head branch end to end.
//
//   ./text_generation [--engine optimus|serial] [--steps 300] [--q 2]
//                     [--gen-chars 120] [--temperature 0.0] [--prompt "the "]
//
// Distributed generation walkthrough (engine = optimus, b = q streams):
//   * each mesh row owns one generation stream (batch axis is row-split);
//   * the lm-head logits block is computed with SUMMA Algorithm 2;
//   * the owning row all-gathers its vocabulary slices to see the full
//     distribution, samples the next character, and the columns exchange the
//     per-row choices so every device can assemble the next input window.

#include <algorithm>
#include <cmath>
#include <iostream>
#include <mutex>
#include <string>
#include <vector>

#include "comm/cluster.hpp"
#include "core/optimus_model.hpp"
#include "mesh/mesh.hpp"
#include "model/serial_model.hpp"
#include "runtime/data.hpp"
#include "runtime/lr_schedule.hpp"
#include "runtime/optimizer.hpp"
#include "runtime/trainer.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

namespace oc = optimus::comm;
namespace om = optimus::model;
namespace ort = optimus::runtime;
namespace ot = optimus::tensor;

namespace {

/// Greedy / temperature sampling from a full logits row.
std::int32_t sample_token(const std::vector<float>& logits, double temperature,
                          optimus::util::Rng& rng) {
  if (temperature <= 0.0) {
    return static_cast<std::int32_t>(
        std::max_element(logits.begin(), logits.end()) - logits.begin());
  }
  double mx = logits[0];
  for (double v : logits) mx = std::max(mx, v);
  std::vector<double> probs(logits.size());
  double z = 0;
  for (std::size_t i = 0; i < logits.size(); ++i) {
    probs[i] = std::exp((logits[i] - mx) / temperature);
    z += probs[i];
  }
  double u = rng.uniform() * z;
  for (std::size_t i = 0; i < probs.size(); ++i) {
    u -= probs[i];
    if (u <= 0) return static_cast<std::int32_t>(i);
  }
  return static_cast<std::int32_t>(probs.size() - 1);
}

/// Masks the padded vocabulary tail (cfg.vocab is rounded up to a mesh
/// multiple) so sampling can never produce a token the corpus cannot decode.
void mask_padding_vocab(std::vector<float>& logits, ot::index_t real_vocab) {
  for (std::size_t vi = static_cast<std::size_t>(real_vocab); vi < logits.size(); ++vi) {
    logits[vi] = -1e30f;
  }
}

om::TransformerConfig corpus_config(const ort::CharCorpus& corpus, int q,
                                    ot::index_t batch) {
  om::TransformerConfig cfg;
  cfg.batch = batch;
  cfg.seq_len = 32;
  cfg.hidden = 32 * q;
  cfg.heads = 2 * q;
  // Round the corpus vocabulary up to a multiple of q (padding tokens are
  // simply never produced by the data).
  cfg.vocab = (corpus.vocab_size() + q - 1) / q * q;
  cfg.layers = 2;
  cfg.seed = 17;
  cfg.init_scale = 0.04;
  return cfg;
}

void run_serial(const ort::CharCorpus& corpus, int steps, int gen_chars, double temperature,
                const std::string& prompt) {
  const auto cfg = corpus_config(corpus, /*q=*/1, /*batch=*/8);
  om::SerialTransformer<float> model(cfg);
  ort::Adam<float> opt;
  ort::WarmupCosineLr schedule(3e-3, steps / 10 + 1, steps);
  optimus::util::Rng data_rng(3);
  auto losses = ort::train_lm(
      model, opt, schedule,
      [&] { return corpus.sample(cfg.batch, cfg.seq_len, data_rng); }, steps,
      std::max(1, steps / 6));
  std::cout << "final loss " << ort::tail_mean(losses, 10) << " (chance "
            << std::log(static_cast<double>(cfg.vocab)) << ")\n\ngenerated:\n";

  // KV-cached incremental generation at batch 1 — the prompt is fed once and
  // each new character costs a single decode step (the old path re-ran the
  // full context window every character, replicated across the training
  // batch). When the history outgrows the positional capacity the cache is
  // re-primed from the most recent half window (sliding-window hysteresis),
  // so the amortized cost stays O(1) forwards per character.
  auto cache = model.make_kv_cache(/*slots=*/1);
  std::vector<std::int32_t> context;
  for (char c : prompt) context.push_back(corpus.encode(c));
  if (context.empty()) context.push_back(corpus.encode(' '));
  std::size_t base = 0;  // first context index resident in the cache
  std::size_t fed = 0;   // context tokens already appended to the cache
  const auto feed_pending = [&] {
    if (context.size() - base > static_cast<std::size_t>(cfg.seq_len)) {
      base = context.size() - static_cast<std::size_t>(cfg.seq_len) / 2;
      cache.reset(0);
      fed = base;
    }
    ot::ITensor one(ot::Shape{1});
    while (fed < context.size()) {
      one[0] = context[fed++];
      model.forward_decode(one, cache);
    }
  };
  optimus::util::Rng gen_rng(9);
  std::string out = prompt;
  std::vector<float> last(static_cast<std::size_t>(cfg.vocab));
  for (int i = 0; i < gen_chars; ++i) {
    feed_pending();
    ot::Tensor logits = model.lm_logits_decode();  // [1, vocab]
    for (ot::index_t vi = 0; vi < cfg.vocab; ++vi) last[vi] = logits.at(0, vi);
    mask_padding_vocab(last, corpus.vocab_size());
    const std::int32_t next = sample_token(last, temperature, gen_rng);
    out.push_back(corpus.decode(next));
    context.push_back(next);
  }
  std::cout << out << "\n";
}

void run_optimus(const ort::CharCorpus& corpus, int steps, int gen_chars, double temperature,
                 const std::string& prompt, int q) {
  const auto cfg = corpus_config(corpus, q, /*batch=*/4 * q);
  std::cout << "training on a " << q << "x" << q << " mesh ("
            << cfg.parameter_count() << " parameters)\n";

  std::mutex mu;
  std::vector<std::string> streams(static_cast<std::size_t>(q));
  double final_loss = 0;
  // Shared batch cache so every rank trains on identical data.
  optimus::util::Rng data_rng(3);
  auto sampler = ort::make_cached_sampler(
      [&] { return corpus.sample(cfg.batch, cfg.seq_len, data_rng); });
  oc::run_cluster(q * q, [&](oc::Context& ctx) {
    optimus::mesh::Mesh2D mesh(ctx.world);
    optimus::core::OptimusTransformer<float> engine(cfg, mesh);
    ort::Adam<float> opt;
    ort::WarmupCosineLr schedule(3e-3, steps / 10 + 1, steps);
    auto losses = ort::train_lm(
        engine, opt, schedule, [&] { return sampler(ctx.rank); }, steps);
    if (ctx.rank == 0) final_loss = ort::tail_mean(losses, 10);

    // --- Distributed generation: one stream per mesh row (b = q). ---
    // The engine was built for the training batch; rebuild at generation
    // batch b = q and copy the trained parameters over (shapes are identical,
    // only the batch axis changed).
    om::TransformerConfig gcfg = cfg;
    gcfg.batch = q;
    optimus::core::OptimusTransformer<float> genengine(gcfg, mesh);
    {
      auto src = engine.parameters();
      auto dst = genengine.parameters();
      for (std::size_t i = 0; i < src.size(); ++i) dst[i]->copy_from(*src[i]);
    }
    optimus::core::OptimusTransformer<float>* gen = &genengine;

    std::vector<std::int32_t> window(static_cast<std::size_t>(q * gcfg.seq_len));
    {
      // Every row starts from the same prompt.
      std::vector<std::int32_t> seed;
      for (char c : prompt) seed.push_back(corpus.encode(c));
      while (static_cast<ot::index_t>(seed.size()) < gcfg.seq_len) {
        seed.insert(seed.begin(), corpus.encode(' '));
      }
      for (int r = 0; r < q; ++r) {
        for (ot::index_t t = 0; t < gcfg.seq_len; ++t) {
          window[r * gcfg.seq_len + t] = seed[t];
        }
      }
    }
    optimus::util::Rng gen_rng(100 + mesh.row());  // same stream within a row
    std::vector<std::string> local(static_cast<std::size_t>(q));
    for (int i = 0; i < gen_chars; ++i) {
      ot::ITensor tokens = ot::ITensor::from_vector(ot::Shape{q, gcfg.seq_len}, window);
      gen->forward(tokens);
      ot::Tensor block = gen->lm_logits_block();  // [seq_len, v/q] (1 seq/row)
      // Assemble the full distribution of the last position across the row.
      const ot::index_t vq = gcfg.vocab / q;
      std::vector<float> full(static_cast<std::size_t>(gcfg.vocab));
      mesh.row_comm().all_gather(block.data() + (gcfg.seq_len - 1) * vq, vq, full.data());
      mask_padding_vocab(full, corpus.vocab_size());
      const std::int32_t mine = sample_token(full, temperature, gen_rng);
      // Exchange the per-row choices down the columns so every device can
      // build the next window.
      std::vector<std::int32_t> next(static_cast<std::size_t>(q));
      mesh.col_comm().all_gather(&mine, 1, next.data());
      for (int r = 0; r < q; ++r) {
        auto* row_window = window.data() + r * gcfg.seq_len;
        std::rotate(row_window, row_window + 1, row_window + gcfg.seq_len);
        row_window[gcfg.seq_len - 1] = next[static_cast<std::size_t>(r)];
        if (ctx.rank == 0) local[static_cast<std::size_t>(r)].push_back(corpus.decode(next[r]));
      }
    }
    if (ctx.rank == 0) {
      std::lock_guard<std::mutex> lock(mu);
      streams = local;
    }
  });
  std::cout << "final loss " << final_loss << " (chance "
            << std::log(static_cast<double>(cfg.vocab)) << ")\n";
  for (int r = 0; r < q; ++r) {
    std::cout << "\nstream " << r << " (mesh row " << r << "): " << prompt << streams[r]
              << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  optimus::util::Cli cli(argc, argv);
  const std::string engine = cli.get_string("engine", "optimus");
  const int steps = cli.get_int("steps", 300);
  const int gen_chars = cli.get_int("gen-chars", 120);
  const double temperature = cli.get_double("temperature", 0.0);
  const std::string prompt = cli.get_string("prompt", "the ");
  const int q = cli.get_int("q", 2);
  cli.finish();

  ort::CharCorpus corpus(ort::CharCorpus::builtin_text());
  std::cout << "corpus: " << corpus.length() << " chars, vocab " << corpus.vocab_size()
            << "\n";
  if (engine == "serial") {
    run_serial(corpus, steps, gen_chars, temperature, prompt);
  } else {
    run_optimus(corpus, steps, gen_chars, temperature, prompt, q);
  }
  return 0;
}
