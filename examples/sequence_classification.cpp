// Sequence classification: the second output branch of the paper's Figure 1
// ("selects the embedding at certain token position, and predicts a binary
// label for each input sequence").
//
//   ./sequence_classification [--steps 200] [--q 2] [--classes 2]
//                             [--purity 0.9] [--eval-batches 20]
//
// Trains the classification head on synthetic class-conditional token streams
// with both the serial oracle and the Optimus 2D engine, then evaluates
// accuracy on held-out batches. The two engines produce the same model (same
// counter-based initialisation, same batches) so their accuracies agree.

#include <iostream>
#include <mutex>
#include <vector>

#include "comm/cluster.hpp"
#include "core/optimus_model.hpp"
#include "mesh/mesh.hpp"
#include "model/serial_model.hpp"
#include "runtime/data.hpp"
#include "runtime/lr_schedule.hpp"
#include "runtime/optimizer.hpp"
#include "runtime/trainer.hpp"
#include "tensor/distribution.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace oc = optimus::comm;
namespace om = optimus::model;
namespace ort = optimus::runtime;
namespace ot = optimus::tensor;

namespace {

om::TransformerConfig make_config(int q, int classes) {
  om::TransformerConfig cfg;
  cfg.batch = 8 * q;
  cfg.seq_len = 12;
  cfg.hidden = 16 * q;
  cfg.heads = 2 * q;
  cfg.vocab = 16 * q;
  cfg.layers = 2;
  cfg.num_classes = classes;
  cfg.seed = 23;
  return cfg;
}

/// Accuracy of argmax(logits) against labels.
double accuracy(const ot::Tensor& logits, const ot::ITensor& labels) {
  const ot::index_t b = logits.size(0);
  const ot::index_t c = logits.size(1);
  ot::index_t correct = 0;
  for (ot::index_t i = 0; i < b; ++i) {
    ot::index_t best = 0;
    for (ot::index_t j = 1; j < c; ++j) {
      if (logits.at(i, j) > logits.at(i, best)) best = j;
    }
    correct += best == labels[i] ? 1 : 0;
  }
  return static_cast<double>(correct) / static_cast<double>(b);
}

}  // namespace

int main(int argc, char** argv) {
  optimus::util::Cli cli(argc, argv);
  const int steps = cli.get_int("steps", 200);
  const int q = cli.get_int("q", 2);
  const int classes = cli.get_int("classes", 2);
  const double purity = cli.get_double("purity", 0.9);
  const int eval_batches = cli.get_int("eval-batches", 20);
  cli.finish();

  const auto cfg = make_config(q, classes);
  std::cout << "classifying " << classes << "-class synthetic sequences (purity " << purity
            << ", vocab " << cfg.vocab << ", " << cfg.parameter_count() << " parameters)\n";

  // Pre-draw all batches so both engines see identical data.
  std::vector<ort::ClsBatch> train_batches, eval_set;
  {
    ort::SyntheticClsWorkload train(cfg.batch, cfg.seq_len, cfg.vocab, classes, purity, 31);
    for (int i = 0; i < steps; ++i) train_batches.push_back(train.next());
    ort::SyntheticClsWorkload eval(cfg.batch, cfg.seq_len, cfg.vocab, classes, purity, 77);
    for (int i = 0; i < eval_batches; ++i) eval_set.push_back(eval.next());
  }

  // --- Serial oracle ---------------------------------------------------------
  double serial_loss = 0, serial_acc = 0;
  {
    om::SerialTransformer<float> model(cfg);
    ort::Adam<float> opt;
    ort::ConstantLr lr(2e-3);
    std::size_t i = 0;
    auto losses = ort::train_cls(
        model, opt, lr, [&] { return train_batches[i++]; }, steps);
    serial_loss = ort::tail_mean(losses, 10);
    for (const auto& batch : eval_set) {
      model.forward(batch.tokens);
      serial_acc += accuracy(model.cls_logits(), batch.labels);
    }
    serial_acc /= eval_set.size();
  }

  // --- Optimus 2D engine ------------------------------------------------------
  double optimus_loss = 0, optimus_acc = 0;
  {
    std::mutex mu;
    oc::run_cluster(q * q, [&](oc::Context& ctx) {
      optimus::mesh::Mesh2D mesh(ctx.world);
      optimus::core::OptimusTransformer<float> engine(cfg, mesh);
      ort::Adam<float> opt;
      ort::ConstantLr lr(2e-3);
      std::size_t i = 0;
      auto losses = ort::train_cls(
          engine, opt, lr, [&] { return train_batches[i++]; }, steps);

      // Distributed evaluation: each mesh row scores its own b/q sequences
      // (logits are replicated across the row); a world all-reduce of the
      // correct counts over-counts each row q times, so divide back out.
      double correct = 0;
      for (const auto& batch : eval_set) {
        engine.forward(batch.tokens);
        ot::Tensor logits = engine.cls_logits_block();  // [b/q, classes]
        ot::ITensor my_labels =
            ot::row_block(batch.labels, mesh.q(), mesh.row());
        correct += accuracy(logits, my_labels) * static_cast<double>(engine.batch_local());
      }
      ctx.world.all_reduce(&correct, 1);
      correct /= mesh.q();  // every device in a row counted the same rows
      if (ctx.rank == 0) {
        std::lock_guard<std::mutex> lock(mu);
        optimus_loss = ort::tail_mean(losses, 10);
        optimus_acc =
            correct / (static_cast<double>(cfg.batch) * eval_set.size());
      }
    });
  }

  optimus::util::Table t({"engine", "final loss", "eval accuracy"});
  t.add_row({"serial", optimus::util::Table::fmt(serial_loss),
             optimus::util::Table::fmt(serial_acc, 3)});
  t.add_row({"optimus (q=" + std::to_string(q) + ")", optimus::util::Table::fmt(optimus_loss),
             optimus::util::Table::fmt(optimus_acc, 3)});
  t.print(std::cout);
  std::cout << "\nchance accuracy = " << 1.0 / classes << "\n";
  return serial_acc > 1.5 / classes ? 0 : 1;
}
