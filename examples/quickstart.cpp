// Quickstart: train a small language model with Optimus 2D tensor parallelism
// on a 2×2 simulated device mesh.
//
//   ./quickstart [--steps 80] [--q 2] [--lr 0.003]
//               [--trace-out trace.json] [--metrics-out metrics.json]
//
// --trace-out enables the simulation-aware tracer and writes a Chrome
// trace-event file (load it at ui.perfetto.dev): one track per simulated
// device in simulated time, plus host-thread tracks in wall time.
// --metrics-out writes the per-rank communication/memory/pool counters.
// Neither flag changes what is printed to stdout — traced and untraced runs
// are byte-identical there (scripts/check.sh enforces this).
//
// Walks through the whole public API surface:
//   1. describe the model      (model::TransformerConfig)
//   2. launch a device cluster (comm::Cluster — one thread per device)
//   3. build the mesh + engine (mesh::Mesh2D, core::OptimusTransformer)
//   4. train                   (runtime::Adam + runtime::train_lm)
// and prints the loss trace plus per-device communication statistics.

#include <cmath>
#include <iomanip>
#include <iostream>

#include "comm/cluster.hpp"
#include "comm/obs_report.hpp"
#include "core/optimus_model.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "mesh/mesh.hpp"
#include "model/config.hpp"
#include "runtime/data.hpp"
#include "runtime/lr_schedule.hpp"
#include "runtime/optimizer.hpp"
#include "runtime/trainer.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace oc = optimus::comm;
namespace ort = optimus::runtime;

int main(int argc, char** argv) {
  optimus::util::Cli cli(argc, argv);
  const int steps = cli.get_int("steps", 80);
  const int q = cli.get_int("q", 2);
  const double lr = cli.get_double("lr", 3e-3);
  const std::string trace_out = cli.get_string("trace-out", "");
  const std::string metrics_out = cli.get_string("metrics-out", "");
  cli.finish();
  if (!trace_out.empty() || !metrics_out.empty()) optimus::obs::set_enabled(true);
  if (!metrics_out.empty()) optimus::obs::set_metrics_enabled(true);

  // 1. The model: a toy GPT-style stack whose dimensions divide the mesh side.
  optimus::model::TransformerConfig cfg;
  cfg.batch = 4 * q;
  cfg.seq_len = 8;
  cfg.hidden = 16 * q;
  cfg.heads = 2 * q;
  cfg.vocab = 8 * q;
  cfg.layers = 2;
  cfg.seed = 7;

  // A fully predictable periodic token stream — loss should approach zero.
  ort::PatternLmWorkload workload(cfg.batch, cfg.seq_len, cfg.vocab, /*period=*/4,
                                  /*seed=*/11);

  std::cout << "Training a " << cfg.parameter_count() << "-parameter transformer on a " << q
            << "x" << q << " Optimus mesh (" << q * q << " simulated devices)\n";

  // The workload is host-side state shared by all ranks; the cached sampler
  // draws each batch exactly once and replays it to every device.
  auto sampler = ort::make_cached_sampler([&] { return workload.next(); });

  // 2-4. Every device runs this body; collectives keep them in lockstep.
  std::vector<double> losses;
  auto report = oc::run_cluster(q * q, [&](oc::Context& ctx) {
    optimus::mesh::Mesh2D mesh(ctx.world);
    optimus::core::OptimusTransformer<float> engine(cfg, mesh);
    ort::Adam<float> opt;
    ort::ConstantLr schedule(lr);
    auto trace = ort::train_lm(
        engine, opt, schedule, [&] { return sampler(ctx.rank); }, steps);
    if (ctx.rank == 0) losses = trace;
  });

  std::cout << "\nstep | lm loss\n-----+--------\n";
  for (std::size_t i = 0; i < losses.size(); i += std::max<std::size_t>(1, losses.size() / 10)) {
    std::cout << std::setw(4) << i << " | " << optimus::util::Table::fmt(losses[i]) << "\n";
  }
  std::cout << std::setw(4) << losses.size() - 1 << " | "
            << optimus::util::Table::fmt(losses.back()) << " (chance = "
            << optimus::util::Table::fmt(std::log(static_cast<double>(cfg.vocab)), 3) << ")\n";

  const auto& st = report.ranks[0].stats;
  std::cout << "\nper-device communication over the whole run:\n"
            << "  broadcasts     " << st.broadcast.calls << " calls, " << st.broadcast.elems
            << " scalars\n"
            << "  reduces        " << st.reduce.calls << " calls, " << st.reduce.elems
            << " scalars\n"
            << "  all-reduces    " << st.allreduce.calls << " calls, " << st.allreduce.elems
            << " scalars (layernorm/softmax statistics)\n"
            << "  simulated time " << optimus::util::Table::fmt(report.max_sim_time(), 4)
            << " s on the modelled 4-GPU node\n";

  // Observability artefacts go to their own files, never stdout.
  if (!trace_out.empty()) optimus::obs::write_chrome_trace(trace_out);
  if (!metrics_out.empty()) oc::write_metrics(metrics_out, report);
  return losses.back() < 0.5 ? 0 : 1;
}
