// E3 — Table 3 and Figure 7 (right): strong scaling, Megatron vs Optimus.
//
// Fixed problem size (h = 3072, s = 512, N = 24; b = 24 Optimus / 12
// Megatron, as the paper had to halve Megatron's batch to fit memory).
// Model-projected numbers (machine fitted only on Megatron weak-scaling
// rows) against the paper's measurements, the Fig-7-right efficiency series,
// and a real threaded strong-scaling sweep at mini scale where the same
// qualitative signature must appear: Optimus efficiency *rises* with p (its
// per-device communication shrinks) while Megatron's stays flat or decays.

#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "comm/cluster.hpp"
#include "core/optimus_model.hpp"
#include "megatron/megatron_model.hpp"
#include "mesh/mesh.hpp"
#include "perfmodel/scaling.hpp"
#include "util/table.hpp"

namespace {

namespace oc = optimus::comm;
namespace opm = optimus::perfmodel;
namespace ort = optimus::runtime;
using optimus::bench::make_config;
using optimus::util::Table;

void model_projection(const opm::Machine& machine) {
  optimus::bench::print_header(
      "E3 / Table 3 — strong scaling at paper scale (model-projected vs paper-measured)");
  Table t({"scheme", "GPUs", "b", "h", "fwd/seq model", "fwd/seq paper", "bwd/seq model",
           "bwd/seq paper", "thr model", "thr paper"});
  for (const auto scheme : {opm::Scheme::kMegatron, opm::Scheme::kOptimus}) {
    const auto& rows = scheme == opm::Scheme::kMegatron ? opm::paper_strong_megatron()
                                                        : opm::paper_strong_optimus();
    for (const auto& row : rows) {
      const opm::Workload w = opm::strong_scaling_workload(row.gpus, scheme);
      const opm::StepTime st = scheme == opm::Scheme::kMegatron
                                   ? opm::megatron_step_time(w, row.gpus, machine)
                                   : opm::optimus_step_time(w, row.gpus, machine);
      const double b = static_cast<double>(w.b);
      t.add_row({scheme == opm::Scheme::kMegatron ? "Megatron" : "Optimus",
                 std::to_string(row.gpus), std::to_string(w.b), std::to_string(w.h),
                 Table::fmt(st.fwd_s / b), Table::fmt(row.fwd_per_seq_s),
                 Table::fmt(st.bwd_s / b), Table::fmt(row.bwd_per_seq_s),
                 Table::fmt(b / st.total()), Table::fmt(row.throughput)});
    }
  }
  t.print(std::cout);
}

void fig7_right(const opm::Machine& machine) {
  // The paper's Fig-7-right curves track per-sequence speed at fixed problem
  // size, normalised at p = 4 — that is where Megatron's flat/decaying trend
  // and Optimus's rising trend (its per-device communication shrinks with p)
  // are visible. Absolute efficiency E = T1/(p·Tp) is also printed.
  optimus::bench::print_header(
      "E3 / Figure 7 (right) — strong scaling (model): normalised speed and efficiency");
  Table t({"GPUs", "Megatron thr/thr(4)", "Optimus thr/thr(4)", "Optimus trend",
           "Megatron E", "Optimus E"});
  double base_m = 0, base_o = 0, prev_o = 0;
  for (int p : {4, 16, 36, 64}) {
    const opm::Workload wm = opm::strong_scaling_workload(p, opm::Scheme::kMegatron);
    const opm::Workload wo = opm::strong_scaling_workload(p, opm::Scheme::kOptimus);
    const double thr_m =
        wm.b / opm::megatron_step_time(wm, p, machine).total();
    const double thr_o = wo.b / opm::optimus_step_time(wo, p, machine).total();
    if (p == 4) {
      base_m = thr_m;
      base_o = thr_o;
    }
    const double em = opm::efficiency(opm::Scheme::kMegatron, wm, p, machine);
    const double eo = opm::efficiency(opm::Scheme::kOptimus, wo, p, machine);
    t.add_row({std::to_string(p), Table::fmt(thr_m / base_m, 3), Table::fmt(thr_o / base_o, 3),
               prev_o == 0 ? "-" : (thr_o > prev_o ? "rising" : "falling"), Table::fmt(em),
               Table::fmt(eo)});
    prev_o = thr_o;
  }
  t.print(std::cout);
  std::cout << "\nThe paper's 'abnormal' signature: Optimus per-device communication\n"
               "~ log(p)/sqrt(p) * (7bsh + 12h^2) shrinks as p grows at fixed problem\n"
               "size, so its per-sequence speed *rises*, overtaking Megatron by 64 GPUs.\n";
}

void real_mini_runs(const opm::Machine& machine) {
  optimus::bench::print_header(
      "E3 — real threaded strong scaling at mini scale (fixed h = 48, b = 12, n = 12, s = 16, N = 2)");
  Table t({"scheme", "GPUs", "sim step time (s)", "sim comm time (s)", "speedup vs p=1"});
  double base_opt = 0;
  for (int p : {1, 4, 16, 36}) {
    const int q = static_cast<int>(std::lround(std::sqrt(p)));
    // h = 48, b = 12 and n = 12 are divisible by every q in the sweep.
    const auto cfg = make_config(12, 16, 48, 12, 24, 2);
    ort::RandomLmWorkload workload(cfg.batch, cfg.seq_len, cfg.vocab, 5);
    const auto batch = workload.next();
    oc::Topology topo(p, machine.gpus_per_node, oc::Arrangement::kBunched, q);
    oc::Cluster cluster(p, topo, machine.to_comm_params());
    auto report = cluster.run([&](oc::Context& ctx) {
      optimus::mesh::Mesh2D mesh(ctx.world);
      optimus::core::OptimusTransformer<float> engine(cfg, mesh);
      engine.forward(batch.tokens);
      (void)engine.lm_loss(batch.labels);
      engine.backward_lm();
    });
    const double tp = report.max_sim_time();
    if (p == 1) base_opt = tp;
    t.add_row({"Optimus", std::to_string(p), Table::fmt(tp, 6),
               Table::fmt(report.max_comm_time(), 6), Table::fmt(base_opt / tp, 3)});
  }
  double base_meg = 0;
  for (int p : {1, 2, 4, 6}) {
    const auto cfg = make_config(12, 16, 48, 12, 24, 2);  // heads 6 % p == 0 for these p
    ort::RandomLmWorkload workload(cfg.batch, cfg.seq_len, cfg.vocab, 5);
    const auto batch = workload.next();
    oc::Topology topo(p, machine.gpus_per_node, oc::Arrangement::kNaive, 0);
    oc::Cluster cluster(p, topo, machine.to_comm_params());
    auto report = cluster.run([&](oc::Context& ctx) {
      optimus::megatron::MegatronTransformer<float> engine(cfg, ctx.world);
      engine.forward(batch.tokens);
      (void)engine.lm_loss(batch.labels);
      engine.backward_lm();
    });
    const double tp = report.max_sim_time();
    if (p == 1) base_meg = tp;
    t.add_row({"Megatron", std::to_string(p), Table::fmt(tp, 6),
               Table::fmt(report.max_comm_time(), 6), Table::fmt(base_meg / tp, 3)});
  }
  t.print(std::cout);
}

}  // namespace

int main() {
  const opm::Machine machine = opm::calibrate_from_paper();
  model_projection(machine);
  fig7_right(machine);
  real_mini_runs(machine);
  return 0;
}
