// E1 — Table 1: communication and computation cost formulas.
//
// Runs one forward + backward (with activation checkpointing) of a single
// transformer layer through BOTH real engines at several (b, s, h, p),
// counts the actual β-weighted scalars each device moved (CommStats) and the
// actual scalar multiplications each device executed, and compares them to
// the paper's closed forms. Megatron's counts must match exactly; Optimus's
// SUMMA terms match exactly once the small "non-SUMMA" terms the paper calls
// negligible (bias/γβ-slice broadcasts, their gradient reductions, layernorm
// statistics) are listed — the bench prints them separately so the
// "negligible" claim itself is quantified.

#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "comm/cluster.hpp"
#include "core/optimus_model.hpp"
#include "megatron/megatron_model.hpp"
#include "mesh/mesh.hpp"
#include "perfmodel/costs.hpp"
#include "util/table.hpp"

namespace {

namespace oc = optimus::comm;
namespace opm = optimus::perfmodel;
namespace ort = optimus::runtime;
using optimus::bench::make_config;
using optimus::bench::to_workload;
using optimus::util::Table;

struct Case {
  int p;
  optimus::tensor::index_t b, s, h;
};

// Stem-only pass: forward + backward from a synthetic output gradient, so the
// measured counts contain exactly the Table-1 terms (no embedding / lm-head).
// We use the full engines but subtract the separately-measured embedding and
// head terms instead — simpler and it also validates those pieces.
void run_megatron(const Case& c, Table& table) {
  const auto cfg = make_config(c.b, c.s, c.h, /*n=*/c.p, /*v=*/4 * c.p, /*layers=*/1);
  ort::RandomLmWorkload workload(cfg.batch, cfg.seq_len, cfg.vocab, 7);
  const auto batch = workload.next();

  auto report = oc::run_cluster(c.p, [&](oc::Context& ctx) {
    optimus::megatron::MegatronTransformer<float> engine(cfg, ctx.world);
    engine.forward(batch.tokens);
    (void)engine.lm_loss(batch.labels);
    engine.backward_lm();
  });
  const auto& st = report.ranks[0].stats;
  const opm::Workload w = to_workload(cfg);
  const double predicted =
      cfg.layers * (opm::megatron_fwd_comm(w, c.p) + opm::megatron_bwd_comm(w, c.p));
  // Extra-to-Table-1 terms: embedding assembly + lm-head dX + CE statistics.
  const double ar = c.p > 1 ? 2.0 * (c.p - 1) / c.p : 0.0;
  const double extras =
      ar * (2.0 * static_cast<double>(cfg.batch * cfg.seq_len * cfg.hidden) +
            3.0 * static_cast<double>(cfg.batch * cfg.seq_len));
  const double measured_stem = st.allreduce.weighted - extras;
  table.add_row({"Megatron", std::to_string(c.p), std::to_string(c.b), std::to_string(c.s),
                 std::to_string(c.h), Table::fmt(predicted, 0), Table::fmt(measured_stem, 0),
                 Table::fmt(measured_stem / std::max(predicted, 1.0), 4),
                 Table::fmt(extras, 0)});
}

void run_optimus(const Case& c, Table& table) {
  const int q = static_cast<int>(std::lround(std::sqrt(c.p)));
  const auto cfg = make_config(c.b, c.s, c.h, /*n=*/std::max(q, 2) == q ? q : 2 * q,
                               /*v=*/4 * q, /*layers=*/1);
  ort::RandomLmWorkload workload(cfg.batch, cfg.seq_len, cfg.vocab, 7);
  const auto batch = workload.next();

  auto report = oc::run_cluster(c.p, [&](oc::Context& ctx) {
    optimus::mesh::Mesh2D mesh(ctx.world);
    optimus::core::OptimusTransformer<float> engine(cfg, mesh);
    engine.forward(batch.tokens);
    (void)engine.lm_loss(batch.labels);
    engine.backward_lm();
  });
  const auto& st = report.ranks[0].stats;
  const opm::Workload w = to_workload(cfg);
  const double predicted =
      cfg.layers * (opm::optimus_fwd_comm(w, c.p) + opm::optimus_bwd_comm(w, c.p));

  // Exact accounting of the non-Table-1 broadcast/reduce terms (hosted-slice
  // traffic, lm-head SUMMA calls, embedding) — see tests/perfmodel_test.cpp
  // for the line-by-line derivation.
  const double lg = std::log2(static_cast<double>(q));
  const double hq = static_cast<double>(cfg.hidden) / q;
  const double fq = 4.0 * hq, tq = 3.0 * hq;
  const double vq = static_cast<double>(cfg.vocab) / q;
  const double rows = static_cast<double>(cfg.batch) / q * cfg.seq_len;
  const double s = cfg.seq_len;
  const double N = cfg.layers;
  const double lm = lg * q * (vq * hq + rows * vq) + 2.0 * lg * q * (rows * vq + vq * hq);
  const double hosted = N * 3.0 * lg * (4 * hq + tq + 2 * hq + fq);
  const double final_ln = 2.0 * lg * (2 * hq);
  const double embed = 2.0 * lg * (q * vq * hq + s * hq);
  const double extras = q > 1 ? lm + hosted + final_ln + embed : 0.0;
  const double measured_stem = st.broadcast.weighted + st.reduce.weighted - extras;

  table.add_row({"Optimus", std::to_string(c.p), std::to_string(c.b), std::to_string(c.s),
                 std::to_string(c.h), Table::fmt(predicted, 0), Table::fmt(measured_stem, 0),
                 Table::fmt(measured_stem / std::max(predicted, 1.0), 4),
                 Table::fmt(extras + st.allreduce.weighted, 0)});
}

void run_compute(const Case& c, Table& table, bool optimus) {
  const int q = static_cast<int>(std::lround(std::sqrt(c.p)));
  const auto cfg = optimus ? make_config(c.b, c.s, c.h, q, 4 * q, 1)
                           : make_config(c.b, c.s, c.h, c.p, 4 * c.p, 1);
  ort::RandomLmWorkload workload(cfg.batch, cfg.seq_len, cfg.vocab, 7);
  const auto batch = workload.next();
  auto body_mega = [&](oc::Context& ctx) {
    optimus::megatron::MegatronTransformer<float> engine(cfg, ctx.world);
    ctx.device.take_mults();
    const std::uint64_t before = ctx.device.mults_total();
    engine.forward(batch.tokens);
    const std::uint64_t fwd = ctx.device.mults_total() - before;
    (void)engine.lm_loss(batch.labels);
    engine.backward_lm();
    (void)fwd;
  };
  auto body_opti = [&](oc::Context& ctx) {
    optimus::mesh::Mesh2D mesh(ctx.world);
    optimus::core::OptimusTransformer<float> engine(cfg, mesh);
    engine.forward(batch.tokens);
    (void)engine.lm_loss(batch.labels);
    engine.backward_lm();
  };
  auto report =
      optimus ? oc::run_cluster(c.p, body_opti) : oc::run_cluster(c.p, body_mega);
  const opm::Workload w = to_workload(cfg);
  const double predicted_stem =
      cfg.layers * (opm::fwd_compute(w, c.p) + opm::bwd_compute(w, c.p));
  // Extra multiplications outside Table 1: lm-head logits fwd + two backward
  // products (each b·s·v·h/p) and the classifier-free rest is negligible.
  const double extras = 3.0 * static_cast<double>(cfg.batch) * cfg.seq_len * cfg.vocab *
                        cfg.hidden / c.p;
  const double measured = static_cast<double>(report.ranks[0].mults) - extras;
  table.add_row({optimus ? "Optimus" : "Megatron", std::to_string(c.p), std::to_string(c.b),
                 std::to_string(c.s), std::to_string(c.h), Table::fmt(predicted_stem, 0),
                 Table::fmt(measured, 0), Table::fmt(measured / predicted_stem, 4),
                 Table::fmt(extras, 0)});
}

}  // namespace

int main() {
  optimus::bench::print_header(
      "E1 / Table 1 — per-layer communication in beta-weighted scalars (stem fwd+bwd)");
  Table comm_table({"scheme", "p", "b", "s", "h", "Table-1 predicted", "measured (stem)",
                    "ratio", "non-Table-1 terms"});
  run_megatron({4, 8, 16, 32}, comm_table);
  run_megatron({4, 4, 32, 64}, comm_table);
  run_megatron({8, 8, 16, 64}, comm_table);
  run_optimus({4, 8, 16, 32}, comm_table);
  run_optimus({4, 4, 32, 64}, comm_table);
  run_optimus({9, 9, 16, 36}, comm_table);
  run_optimus({16, 8, 16, 64}, comm_table);
  comm_table.print(std::cout);

  optimus::bench::print_header(
      "E1 / Table 1 — per-device computation in scalar multiplications (stem fwd+bwd)");
  Table comp_table({"scheme", "p", "b", "s", "h", "Table-1 predicted", "measured (stem)",
                    "ratio", "lm-head mults"});
  run_compute({4, 8, 16, 32}, comp_table, /*optimus=*/false);
  run_compute({4, 8, 16, 32}, comp_table, /*optimus=*/true);
  run_compute({16, 8, 32, 64}, comp_table, /*optimus=*/true);
  comp_table.print(std::cout);

  std::cout << "\nBoth schemes execute identical stem compute (Table 1, rows 3-4); the\n"
               "communication rows validate 4(p-1)/p*bsh vs log2(p)/(2*sqrt(p))*(7bsh+12h^2)\n"
               "and their backward counterparts.\n"
               "Note: for non-power-of-two q the measured/predicted ratio equals\n"
               "ceil(log2 q)/log2 q (binomial trees take integer rounds; the paper's\n"
               "formula uses the real-valued log) — e.g. 2/log2(3) = 1.26 at q = 3.\n";
  return 0;
}
