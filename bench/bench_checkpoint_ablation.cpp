// E9 — §3.1.1 ablation: activation checkpointing and the p > N/3 bottleneck.
//
// (1) Real engine: peak bytes and executed multiplications with checkpointing
//     on vs off, across layer counts. Checkpointing trades ~4/3 forward
//     recompute for activation memory that no longer grows with N.
// (2) The paper's §3.1.1 observation, via the memory model: with per-device
//     parameters held constant (h ∝ √p), the per-layer working set of
//     Megatron (≥ 3bsh, replicated) overtakes the distributed checkpoint
//     buffer once p > N/3 — while Optimus's working set shrinks ∝ 1/p.

#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "comm/cluster.hpp"
#include "core/optimus_model.hpp"
#include "mesh/mesh.hpp"
#include "perfmodel/memory.hpp"
#include "perfmodel/scaling.hpp"
#include "util/table.hpp"

namespace {

namespace oc = optimus::comm;
namespace ocore = optimus::core;
namespace opm = optimus::perfmodel;
namespace ort = optimus::runtime;
using optimus::bench::make_config;
using optimus::util::Table;

}  // namespace

int main() {
  optimus::bench::print_header(
      "E9 — checkpointing ablation (Optimus, q = 2, one training step)");
  Table t({"layers", "checkpoint", "peak bytes/device", "mults/device", "recompute factor"});
  for (int layers : {2, 4, 8}) {
    std::uint64_t mults_off = 0;
    for (bool checkpoint : {false, true}) {
      const auto cfg = make_config(8, 16, 32, 4, 32, layers);
      ort::RandomLmWorkload workload(cfg.batch, cfg.seq_len, cfg.vocab, 13);
      const auto batch = workload.next();
      auto report = oc::run_cluster(4, [&](oc::Context& ctx) {
        optimus::mesh::Mesh2D mesh(ctx.world);
        ocore::OptimusOptions opts;
        opts.checkpoint = checkpoint;
        opts.buffers = checkpoint ? ocore::BufferMode::kPooled : ocore::BufferMode::kHeap;
        ocore::OptimusTransformer<float> engine(cfg, mesh, opts);
        engine.forward(batch.tokens);
        (void)engine.lm_loss(batch.labels);
        engine.backward_lm();
      });
      const std::uint64_t mults = report.ranks[0].mults;
      if (!checkpoint) mults_off = mults;
      t.add_row({std::to_string(layers), checkpoint ? "on" : "off",
                 std::to_string(report.max_peak_bytes()), std::to_string(mults),
                 checkpoint ? Table::fmt(static_cast<double>(mults) / mults_off, 3) : "1.000"});
    }
  }
  t.print(std::cout);

  optimus::bench::print_header(
      "E9 / §3.1.1 — working set vs checkpoint buffer (model, N = 24, params/device fixed)");
  Table b({"GPUs", "Megatron ckpt buf (GB)", "Megatron working (GB)", "working dominates?",
           "Optimus working (GB)"});
  for (int p : {4, 8, 16, 32, 64}) {
    // h ∝ √p keeps parameters per device constant; b from the paper's table
    // shape (scaled between rows where needed).
    opm::Workload w;
    w.h = static_cast<long long>(1024 * std::sqrt(static_cast<double>(p)));
    w.b = 60;
    w.s = 512;
    w.layers = 24;
    const double gb = 1024.0 * 1024 * 1024;
    // §3.1.1's two Megatron terms: distributed checkpoints N·bsh/p vs the
    // replicated per-layer working set ≥ 3bsh.
    const double ckpt = static_cast<double>(w.layers) * w.b * w.s * w.h * 4 / p / gb;
    const double working = 3.0 * static_cast<double>(w.b) * w.s * w.h * 4 / gb;
    const double optimus_working =
        3.0 * static_cast<double>(w.b) * w.s * w.h * 4 / p / gb;
    b.add_row({std::to_string(p), Table::fmt(ckpt, 3), Table::fmt(working, 3),
               working > ckpt ? (p > w.layers / 3 ? "yes (p > N/3)" : "yes") : "no",
               Table::fmt(optimus_working, 3)});
  }
  b.print(std::cout);
  std::cout << "\nWith N = 24, the crossover lands at p = N/3 = 8, exactly the paper's\n"
               "§3.1.1 argument for why activations must be distributed, not replicated.\n";
  return 0;
}
