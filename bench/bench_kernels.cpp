// GFLOP/s microbenchmark for the dense kernel layer (DESIGN.md §3).
//
// Compares GEMM paths on identical problems:
//   * naive        — the seed's blocked scalar loop (ops::gemm_naive_raw),
//                    built with the portable project flags; this is the
//                    baseline every optimisation is measured against.
//   * packed       — kernel::gemm_packed, the cache-blocked panel-packing
//                    microkernel on one thread.
//   * threadN      — kernel::gemm with the thread budget forced to N. Since
//                    the cooperative rewrite all threaded rows run the
//                    shared-pack schedule (one packed A/B panel per stage,
//                    workers claim MC×NR tiles); threaded rows also carry
//                    `speedup_vs_1t` = wall(threads1) / wall(threadsN) so the
//                    scaling curve is readable without manual division.
//   * shared_pack  — explicit alias row for the cooperative path at the max
//                    thread count, so the schedule named in DESIGN.md §3 has
//                    a greppable record.
//   * fused/unfused bias_gelu — gemm_ex with the BiasGelu epilogue applied
//                    tile-hot vs the same GEMM followed by separate
//                    full-tensor bias and GELU passes (the pre-fusion MLP
//                    h→4h hot loop).
//
// Results go to stdout as a table and to BENCH_kernels.json
// ({name, shape, gflops, wall_ms, sim_ms}); sim_ms is 0 here because these
// are host-only kernels with no simulated cluster in the loop. Pool wait is
// exported as `pool_aggregate_submit_wait_ms` (summed across concurrent
// submitters — can exceed wall time) plus the per-region average
// `pool_avg_region_wait_ms`.

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "kernel/gemm.hpp"
#include "kernel/thread_pool.hpp"
#include "tensor/ops.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"

namespace {

namespace ok = optimus::kernel;
namespace ops = optimus::tensor::ops;
using optimus::bench::JsonWriter;
using index_t = ok::index_t;

template <typename T>
std::vector<T> random_buffer(index_t n, std::uint64_t seed) {
  optimus::util::Rng rng(seed);
  std::vector<T> v(static_cast<std::size_t>(n));
  for (auto& x : v) x = static_cast<T>(rng.uniform(-1, 1));
  return v;
}

// Times `fn` adaptively: one warm-up/calibration rep, then enough reps to
// cover ~0.3 s of wall time (min 1, max 50). Returns ms per rep.
double time_ms(const std::function<void()>& fn) {
  optimus::util::Stopwatch sw;
  fn();
  const double first_s = sw.elapsed_s();
  int reps = 1;
  if (first_s < 0.3) reps = static_cast<int>(0.3 / (first_s + 1e-9)) + 1;
  if (reps > 50) reps = 50;
  optimus::util::Stopwatch sw2;
  for (int i = 0; i < reps; ++i) fn();
  return sw2.elapsed_s() * 1000.0 / reps;
}

template <typename T>
struct Problem {
  std::string tag;  // shape string "m x n x k"
  index_t m, n, k;
};

struct Recorder {
  JsonWriter& json;
  const std::string& tag;
  double flops = 0.0;

  // Pool counters are reset per measurement so each record's worker_share /
  // chunk counts describe that kernel variant alone. `speedup_vs_1t` < 0
  // means "not a threaded row".
  double operator()(const std::string& name, const std::function<void()>& body,
                    double speedup_vs_1t = -1.0) const {
    ok::reset_pool_stats();
    const double ms = time_ms(body);
    const ok::PoolStats ps = ok::pool_stats();
    const double gflops = flops / (ms * 1e-3) / 1e9;
    if (speedup_vs_1t >= 0.0)
      std::printf("%-26s %-18s %12.3f %12.2f %10.2fx\n", name.c_str(), tag.c_str(), ms,
                  gflops, speedup_vs_1t);
    else
      std::printf("%-26s %-18s %12.3f %12.2f\n", name.c_str(), tag.c_str(), ms, gflops);
    std::vector<std::pair<std::string, double>> extra = {
        {"pool_regions", static_cast<double>(ps.regions)},
        {"pool_chunks", static_cast<double>(ps.chunks)},
        {"pool_worker_share", ps.worker_share()},
        {"pool_aggregate_submit_wait_ms", static_cast<double>(ps.submit_wait_ns) / 1e6},
        {"pool_avg_region_wait_ms", ps.avg_region_wait_ns() / 1e6},
        {"pool_barrier_crossings", static_cast<double>(ps.barrier_crossings)}};
    if (speedup_vs_1t >= 0.0) extra.emplace_back("speedup_vs_1t", speedup_vs_1t);
    json.add(name, tag, gflops, ms, 0.0, extra);
    return ms;
  }
};

template <typename T>
void run_gemm_suite(const char* dtype, const std::vector<Problem<T>>& problems,
                    const std::vector<int>& thread_counts, JsonWriter& json) {
  std::printf("%-26s %-18s %12s %12s %11s\n", "name", "shape", "wall_ms", "GFLOP/s",
              "vs_1t");
  for (const auto& p : problems) {
    const index_t m = p.m, n = p.n, k = p.k;
    auto A = random_buffer<T>(m * k, 1);
    auto B = random_buffer<T>(k * n, 2);
    std::vector<T> C(static_cast<std::size_t>(m * n), T{0});
    const Recorder record{json, p.tag, 2.0 * static_cast<double>(m) * n * k};

    record(std::string("gemm_naive_") + dtype, [&] {
      ops::gemm_naive_raw(C.data(), A.data(), B.data(), m, n, k, k, n, n,
                          ops::Trans::No, ops::Trans::No, T{1}, T{0});
    });
    record(std::string("gemm_packed_") + dtype, [&] {
      ok::gemm_packed(C.data(), A.data(), B.data(), m, n, k, k, n, n,
                      ok::Trans::No, ok::Trans::No, T{1}, T{0});
    });
    double wall_1t = 0.0;
    for (int t : thread_counts) {
      ok::set_threads(t);
      const auto body = [&] {
        ok::gemm(C.data(), A.data(), B.data(), m, n, k, k, n, n, ok::Trans::No,
                 ok::Trans::No, T{1}, T{0});
      };
      const std::string name = std::string("gemm_threads") + std::to_string(t) + "_" + dtype;
      if (t <= 1) {
        wall_1t = record(name, body);
      } else {
        // Dry-run once to learn this variant's wall time, then record with the
        // speedup field so BENCH rows carry the ratio directly.
        const double probe = time_ms(body);
        record(name, body, wall_1t > 0.0 ? wall_1t / probe : 0.0);
      }
      ok::set_threads(0);  // back to env/hardware default
    }
  }
  std::printf("\n");
}

// The cooperative shared-pack schedule under its DESIGN.md name, plus the
// fused-epilogue rows: gemm_ex(BiasGelu) applied while each C tile is
// register/L1-hot vs the pre-fusion sequence (GEMM, then a full-tensor bias
// pass, then a full-tensor GELU pass). Same arithmetic order per element, so
// outputs are bitwise identical; only locality differs.
template <typename T>
void run_fusion_suite(const char* dtype, index_t m, index_t n, index_t k,
                      int threads, JsonWriter& json) {
  const std::string tag = std::to_string(m) + "x" + std::to_string(n) + "x" +
                          std::to_string(k);
  auto A = random_buffer<T>(m * k, 1);
  auto B = random_buffer<T>(k * n, 2);
  auto bias = random_buffer<T>(n, 3);
  std::vector<T> C(static_cast<std::size_t>(m * n), T{0});
  std::vector<T> pre(static_cast<std::size_t>(m * n), T{0});
  const Recorder record{json, tag, 2.0 * static_cast<double>(m) * n * k};

  ok::set_threads(threads);
  record(std::string("gemm_shared_pack_") + dtype, [&] {
    ok::gemm(C.data(), A.data(), B.data(), m, n, k, k, n, n, ok::Trans::No,
             ok::Trans::No, T{1}, T{0});
  });

  ok::EpilogueArgs<T> ep;
  ep.op = ok::Epilogue::BiasGelu;
  ep.bias = bias.data();
  ep.pre = pre.data();
  ep.ldp = n;
  record(std::string("gemm_fused_bias_gelu_") + dtype, [&] {
    ok::gemm_ex(C.data(), A.data(), B.data(), m, n, k, k, n, n, ok::Trans::No,
                ok::Trans::No, T{1}, T{0}, ep);
  });
  record(std::string("gemm_unfused_bias_gelu_") + dtype, [&] {
    ok::gemm(C.data(), A.data(), B.data(), m, n, k, k, n, n, ok::Trans::No,
             ok::Trans::No, T{1}, T{0});
    for (index_t i = 0; i < m; ++i) {
      T* row = C.data() + i * n;
      for (index_t j = 0; j < n; ++j) row[j] += bias[j];
    }
    for (index_t i = 0; i < m; ++i) {
      T* prow = pre.data() + i * n;
      T* crow = C.data() + i * n;
      for (index_t j = 0; j < n; ++j) {
        prow[j] = crow[j];
        crow[j] = ok::gelu_scalar(crow[j]);
      }
    }
  });
  ok::set_threads(0);
  std::printf("\n");
}

}  // namespace

int main() {
  optimus::bench::print_header("Kernel GFLOP/s: naive vs packed vs cooperative shared-pack");
  std::printf("hardware threads: %d, default budget: %d\n\n", ok::hardware_threads(),
              ok::effective_threads());

  JsonWriter json;
  const std::vector<int> threads = {1, 2, 4};

  // f32: square problems (256³ warms caches, 1024³ is the acceptance shape),
  // a transformer forward slab (b·s=2048 rows against h=1024..4096 weights),
  // and a skinny vocab-projection shape.
  std::vector<Problem<float>> f32 = {
      {"256x256x256", 256, 256, 256},
      {"512x512x512", 512, 512, 512},
      {"1024x1024x1024", 1024, 1024, 1024},
      {"2048x1024x1024", 2048, 1024, 1024},
      {"2048x4096x1024", 2048, 4096, 1024},
      {"512x8192x512", 512, 8192, 512},
  };
  run_gemm_suite<float>("f32", f32, threads, json);

  // f64 spot checks: half the SIMD width, same blocking.
  std::vector<Problem<double>> f64 = {
      {"512x512x512", 512, 512, 512},
      {"1024x1024x1024", 1024, 1024, 1024},
  };
  run_gemm_suite<double>("f64", f64, threads, json);

  // MLP h→4h epilogue-fusion comparison on the transformer slab shape.
  run_fusion_suite<float>("f32", 2048, 4096, 1024, 4, json);

  json.write("BENCH_kernels.json");
  return 0;
}
