// GFLOP/s microbenchmark for the dense kernel layer (DESIGN.md §3).
//
// Compares three GEMM paths on identical problems:
//   * naive    — the seed's blocked scalar loop (ops::gemm_naive_raw), built
//                with the portable project flags; this is the baseline every
//                optimisation is measured against.
//   * packed   — kernel::gemm_packed, the cache-blocked panel-packing
//                microkernel on one thread.
//   * threadN  — kernel::gemm with the thread budget forced to N (the packed
//                slab algorithm fanned out over M/N tiles).
//
// Results go to stdout as a table and to BENCH_kernels.json
// ({name, shape, gflops, wall_ms, sim_ms}); sim_ms is 0 here because these
// are host-only kernels with no simulated cluster in the loop.

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "kernel/gemm.hpp"
#include "kernel/thread_pool.hpp"
#include "tensor/ops.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"

namespace {

namespace ok = optimus::kernel;
namespace ops = optimus::tensor::ops;
using optimus::bench::JsonWriter;
using index_t = ok::index_t;

template <typename T>
std::vector<T> random_buffer(index_t n, std::uint64_t seed) {
  optimus::util::Rng rng(seed);
  std::vector<T> v(static_cast<std::size_t>(n));
  for (auto& x : v) x = static_cast<T>(rng.uniform(-1, 1));
  return v;
}

// Times `fn` adaptively: one warm-up/calibration rep, then enough reps to
// cover ~0.3 s of wall time (min 1, max 50). Returns ms per rep.
double time_ms(const std::function<void()>& fn) {
  optimus::util::Stopwatch sw;
  fn();
  const double first_s = sw.elapsed_s();
  int reps = 1;
  if (first_s < 0.3) reps = static_cast<int>(0.3 / (first_s + 1e-9)) + 1;
  if (reps > 50) reps = 50;
  optimus::util::Stopwatch sw2;
  for (int i = 0; i < reps; ++i) fn();
  return sw2.elapsed_s() * 1000.0 / reps;
}

template <typename T>
struct Problem {
  std::string tag;  // shape string "m x n x k"
  index_t m, n, k;
};

template <typename T>
void run_gemm_suite(const char* dtype, const std::vector<Problem<T>>& problems,
                    const std::vector<int>& thread_counts, JsonWriter& json) {
  std::printf("%-26s %-18s %12s %12s\n", "name", "shape", "wall_ms", "GFLOP/s");
  for (const auto& p : problems) {
    const index_t m = p.m, n = p.n, k = p.k;
    auto A = random_buffer<T>(m * k, 1);
    auto B = random_buffer<T>(k * n, 2);
    std::vector<T> C(static_cast<std::size_t>(m * n), T{0});
    const double flops = 2.0 * static_cast<double>(m) * n * k;

    // Pool counters are reset per measurement so each record's worker_share /
    // chunk counts describe that kernel variant alone.
    auto record = [&](const std::string& name, const std::function<void()>& body) {
      ok::reset_pool_stats();
      const double ms = time_ms(body);
      const ok::PoolStats ps = ok::pool_stats();
      const double gflops = flops / (ms * 1e-3) / 1e9;
      std::printf("%-26s %-18s %12.3f %12.2f\n", name.c_str(), p.tag.c_str(), ms, gflops);
      json.add(name, p.tag, gflops, ms, 0.0,
               {{"pool_regions", static_cast<double>(ps.regions)},
                {"pool_chunks", static_cast<double>(ps.chunks)},
                {"pool_worker_share", ps.worker_share()},
                {"pool_submit_wait_ms", static_cast<double>(ps.submit_wait_ns) / 1e6}});
    };

    record(std::string("gemm_naive_") + dtype, [&] {
      ops::gemm_naive_raw(C.data(), A.data(), B.data(), m, n, k, k, n, n,
                          ops::Trans::No, ops::Trans::No, T{1}, T{0});
    });
    record(std::string("gemm_packed_") + dtype, [&] {
      ok::gemm_packed(C.data(), A.data(), B.data(), m, n, k, k, n, n,
                      ok::Trans::No, ok::Trans::No, T{1}, T{0});
    });
    for (int t : thread_counts) {
      ok::set_threads(t);
      record(std::string("gemm_threads") + std::to_string(t) + "_" + dtype, [&] {
        ok::gemm(C.data(), A.data(), B.data(), m, n, k, k, n, n, ok::Trans::No,
                 ok::Trans::No, T{1}, T{0});
      });
      ok::set_threads(0);  // back to env/hardware default
    }
  }
  std::printf("\n");
}

}  // namespace

int main() {
  optimus::bench::print_header("Kernel GFLOP/s: naive vs packed vs packed+threaded");
  std::printf("hardware threads: %d, default budget: %d\n\n", ok::hardware_threads(),
              ok::effective_threads());

  JsonWriter json;
  const std::vector<int> threads = {1, 2, 4};

  // f32: square problems (256³ warms caches, 1024³ is the acceptance shape),
  // a transformer forward slab (b·s=2048 rows against h=1024..4096 weights),
  // and a skinny vocab-projection shape.
  std::vector<Problem<float>> f32 = {
      {"256x256x256", 256, 256, 256},
      {"512x512x512", 512, 512, 512},
      {"1024x1024x1024", 1024, 1024, 1024},
      {"2048x1024x1024", 2048, 1024, 1024},
      {"2048x4096x1024", 2048, 4096, 1024},
      {"512x8192x512", 512, 8192, 512},
  };
  run_gemm_suite<float>("f32", f32, threads, json);

  // f64 spot checks: half the SIMD width, same blocking.
  std::vector<Problem<double>> f64 = {
      {"512x512x512", 512, 512, 512},
      {"1024x1024x1024", 1024, 1024, 1024},
  };
  run_gemm_suite<double>("f64", f64, threads, json);

  json.write("BENCH_kernels.json");
  return 0;
}
