// E2 — Table 2 and Figure 7 (left): weak scaling, Megatron vs Optimus.
//
// Two evidence layers:
//
//  1. Model-projected at paper scale (h = 2048…8192, b per Table 2,
//     s = 512, N = 24, p ∈ {4, 16, 36, 64}): the machine constants are fitted
//     ONLY to the paper's Megatron rows (perfmodel::calibrate_from_paper), so
//     every Optimus number and every ratio is an out-of-sample prediction.
//     Printed side by side with the paper's measured values.
//
//  2. Real execution at mini scale: the actual threaded engines run with
//     h = 16·q, b = 2·q (weak scaling: per-device work constant) on the
//     simulated cluster with the same calibrated machine; per-step simulated
//     times and weak-scaling efficiencies are reported. This grounds the
//     model: the engines really move those bytes and multiply those scalars.

#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "comm/cluster.hpp"
#include "core/optimus_model.hpp"
#include "megatron/megatron_model.hpp"
#include "mesh/mesh.hpp"
#include "perfmodel/scaling.hpp"
#include "util/table.hpp"

namespace {

namespace oc = optimus::comm;
namespace opm = optimus::perfmodel;
namespace ort = optimus::runtime;
using optimus::bench::make_config;
using optimus::util::Table;

void model_projection(const opm::Machine& machine) {
  optimus::bench::print_header(
      "E2 / Table 2 — weak scaling at paper scale (model-projected vs paper-measured)");
  Table t({"scheme", "GPUs", "b", "h", "fwd/seq model", "fwd/seq paper", "bwd/seq model",
           "bwd/seq paper", "thr model", "thr paper", "inf model", "inf paper"});
  for (const auto scheme : {opm::Scheme::kMegatron, opm::Scheme::kOptimus}) {
    const auto& rows = scheme == opm::Scheme::kMegatron ? opm::paper_weak_megatron()
                                                        : opm::paper_weak_optimus();
    for (const auto& row : rows) {
      const opm::Workload w = opm::weak_scaling_workload(row.gpus, scheme);
      const opm::StepTime st = scheme == opm::Scheme::kMegatron
                                   ? opm::megatron_step_time(w, row.gpus, machine)
                                   : opm::optimus_step_time(w, row.gpus, machine);
      const double b = static_cast<double>(w.b);
      t.add_row({scheme == opm::Scheme::kMegatron ? "Megatron" : "Optimus",
                 std::to_string(row.gpus), std::to_string(w.b), std::to_string(w.h),
                 Table::fmt(st.fwd_s / b), Table::fmt(row.fwd_per_seq_s),
                 Table::fmt(st.bwd_s / b), Table::fmt(row.bwd_per_seq_s),
                 Table::fmt(b / st.total()), Table::fmt(row.throughput),
                 Table::fmt(b / st.fwd_s), Table::fmt(row.inference)});
    }
  }
  t.print(std::cout);

  // Headline ratios at 64 GPUs (paper: 1.48× training, 1.79× inference).
  const opm::Workload wm = opm::weak_scaling_workload(64, opm::Scheme::kMegatron);
  const opm::Workload wo = opm::weak_scaling_workload(64, opm::Scheme::kOptimus);
  const opm::StepTime tm = opm::megatron_step_time(wm, 64, machine);
  const opm::StepTime to = opm::optimus_step_time(wo, 64, machine);
  std::cout << "\n64-GPU Optimus/Megatron ratios: training "
            << Table::fmt((wo.b / to.total()) / (wm.b / tm.total()), 3) << " (paper 1.482), "
            << "inference " << Table::fmt((wo.b / to.fwd_s) / (wm.b / tm.fwd_s), 3)
            << " (paper 1.791)\n";
}

void fig7_left(const opm::Machine& machine) {
  optimus::bench::print_header("E2 / Figure 7 (left) — weak scaling efficiency (model)");
  Table t({"GPUs", "Megatron E", "Optimus E"});
  for (int p : {4, 16, 36, 64}) {
    const opm::Workload wm = opm::weak_scaling_workload(p, opm::Scheme::kMegatron);
    const opm::Workload wo = opm::weak_scaling_workload(p, opm::Scheme::kOptimus);
    t.add_row({std::to_string(p),
               Table::fmt(opm::efficiency(opm::Scheme::kMegatron, wm, p, machine)),
               Table::fmt(opm::efficiency(opm::Scheme::kOptimus, wo, p, machine))});
  }
  t.print(std::cout);
}

void real_mini_runs(const opm::Machine& machine) {
  optimus::bench::print_header(
      "E2 — real threaded runs at mini scale (h = 16q, b = 2q, s = 16, N = 2)");
  Table t({"scheme", "GPUs", "h", "b", "sim step time (s)", "sim comm time (s)",
           "comm fraction"});
  for (int p : {1, 4, 16, 36, 64}) {
    const int q = static_cast<int>(std::lround(std::sqrt(p)));
    const int qe = std::max(q, 1);
    const auto cfg = make_config(2 * qe, 16, 16 * qe, qe, 8 * qe, 2);
    ort::RandomLmWorkload workload(cfg.batch, cfg.seq_len, cfg.vocab, 5);
    const auto batch = workload.next();

    // Optimus run.
    {
      oc::Topology topo(p, machine.gpus_per_node, oc::Arrangement::kBunched, qe);
      oc::Cluster cluster(p, topo, machine.to_comm_params());
      auto report = cluster.run([&](oc::Context& ctx) {
        optimus::mesh::Mesh2D mesh(ctx.world);
        optimus::core::OptimusTransformer<float> engine(cfg, mesh);
        engine.forward(batch.tokens);
        (void)engine.lm_loss(batch.labels);
        engine.backward_lm();
      });
      const double tp = report.max_sim_time();
      t.add_row({"Optimus", std::to_string(p), std::to_string(cfg.hidden),
                 std::to_string(cfg.batch), Table::fmt(tp, 6),
                 Table::fmt(report.max_comm_time(), 6),
                 Table::fmt(report.max_comm_time() / std::max(tp, 1e-300), 4)});
    }
    // Megatron run (needs heads % p == 0 → heads = p at mini scale).
    if (p <= 16) {
      auto mcfg = make_config(2 * qe, 16, 16 * std::max(p / 4, 1) * 4, p, 8 * p, 2);
      mcfg.heads = p;
      mcfg.hidden = 16 * p;  // keep head_dim fixed at 16
      oc::Topology topo(p, machine.gpus_per_node, oc::Arrangement::kNaive, 0);
      oc::Cluster cluster(p, topo, machine.to_comm_params());
      ort::RandomLmWorkload mworkload(mcfg.batch, mcfg.seq_len, mcfg.vocab, 5);
      const auto mbatch = mworkload.next();
      auto report = cluster.run([&](oc::Context& ctx) {
        optimus::megatron::MegatronTransformer<float> engine(mcfg, ctx.world);
        engine.forward(mbatch.tokens);
        (void)engine.lm_loss(mbatch.labels);
        engine.backward_lm();
      });
      const double tp = report.max_sim_time();
      t.add_row({"Megatron", std::to_string(p), std::to_string(mcfg.hidden),
                 std::to_string(mcfg.batch), Table::fmt(tp, 6),
                 Table::fmt(report.max_comm_time(), 6),
                 Table::fmt(report.max_comm_time() / std::max(tp, 1e-300), 4)});
    }
  }
  t.print(std::cout);
  std::cout << "\n(At mini scale communication dominates — the isoefficiency point: a tiny\n"
               "problem cannot keep large p efficient. The paper-scale projection above is\n"
               "the Table-2 reproduction.)\n";
  std::cout << "\n(Megatron mini rows stop at p = 16: its per-device activation replication\n"
               "makes larger thread counts needlessly slow on the single-core host; the\n"
               "model projection above covers the full range.)\n";
}

}  // namespace

int main() {
  const opm::Machine machine = opm::calibrate_from_paper();
  std::cout << "calibrated machine: flop_rate=" << machine.flop_rate
            << " mult/s, beta_intra=" << machine.beta_intra
            << " s/scalar, beta_inter=" << machine.beta_inter
            << " s/scalar, bwd_overhead=" << machine.bwd_overhead << "\n";
  model_projection(machine);
  fig7_left(machine);
  real_mini_runs(machine);
  return 0;
}
