// E6 — SUMMA kernel benchmarks (google-benchmark).
//
// Two families:
//  * Gemm/...      — the local blocked GEMM in all transpose forms (host wall
//                    time; the compute substrate under everything else).
//  * Summa/...     — distributed SUMMA products on a q×q simulated mesh.
//                    Wall time on this single-core host measures simulation
//                    overhead, so the counters that matter — simulated
//                    communication seconds and β-weighted volume per device —
//                    are exported.

#include <benchmark/benchmark.h>

#include <cmath>
#include <string>

#include "bench_common.hpp"
#include "comm/cluster.hpp"
#include "mesh/mesh.hpp"
#include "summa/summa.hpp"
#include "tensor/distribution.hpp"
#include "tensor/ops.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"

namespace {

namespace oc = optimus::comm;
namespace ot = optimus::tensor;
namespace ops = optimus::tensor::ops;
using ot::Shape;
using ot::Tensor;

Tensor random_tensor(Shape shape, std::uint64_t seed) {
  optimus::util::Rng rng(seed);
  Tensor t(shape);
  for (ot::index_t i = 0; i < t.numel(); ++i) {
    t[i] = static_cast<float>(rng.uniform(-1, 1));
  }
  return t;
}

void BM_GemmNN(benchmark::State& state) {
  const ot::index_t n = state.range(0);
  Tensor A = random_tensor(Shape{n, n}, 1);
  Tensor B = random_tensor(Shape{n, n}, 2);
  Tensor C(Shape{n, n});
  for (auto _ : state) {
    ops::gemm(C, A, B);
    benchmark::DoNotOptimize(C.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_GemmNN)->Arg(64)->Arg(128)->Arg(256);

void BM_GemmNT(benchmark::State& state) {
  const ot::index_t n = state.range(0);
  Tensor A = random_tensor(Shape{n, n}, 1);
  Tensor B = random_tensor(Shape{n, n}, 2);
  Tensor C(Shape{n, n});
  for (auto _ : state) {
    ops::gemm(C, A, B, ops::Trans::No, ops::Trans::Yes);
    benchmark::DoNotOptimize(C.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_GemmNT)->Arg(64)->Arg(256);

void BM_GemmTN(benchmark::State& state) {
  const ot::index_t n = state.range(0);
  Tensor A = random_tensor(Shape{n, n}, 1);
  Tensor B = random_tensor(Shape{n, n}, 2);
  Tensor C(Shape{n, n});
  for (auto _ : state) {
    ops::gemm(C, A, B, ops::Trans::Yes, ops::Trans::No);
    benchmark::DoNotOptimize(C.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_GemmTN)->Arg(64)->Arg(256);

// Distributed SUMMA: global n×n product on a q×q mesh, under the blocking or
// the pipelined (overlapped) schedule. Counters report the per-device
// simulated times — sim_step_s is the critical path the overlap shortens.
template <int kForm, bool kPipelined>  // 0 = AB, 1 = ABt, 2 = AtB
void BM_Summa(benchmark::State& state) {
  const int q = static_cast<int>(state.range(0));
  const ot::index_t n = state.range(1);
  const int p = q * q;
  Tensor A_global = random_tensor(Shape{n, n}, 3);
  Tensor B_global = random_tensor(Shape{n, n}, 4);

  optimus::summa::PipelineGuard guard(kPipelined);
  double sim_step = 0, sim_comm = 0, weighted = 0;
  std::uint64_t calls = 0;
  for (auto _ : state) {
    auto report = oc::run_cluster(p, [&](oc::Context& ctx) {
      optimus::mesh::Mesh2D mesh(ctx.world);
      Tensor A = ot::matrix_block(A_global, q, mesh.row(), mesh.col());
      Tensor B = ot::matrix_block(B_global, q, mesh.row(), mesh.col());
      Tensor C = Tensor::zeros(Shape{n / q, n / q});
      if constexpr (kForm == 0) {
        optimus::summa::summa_ab(mesh, A, B, C);
      } else if constexpr (kForm == 1) {
        optimus::summa::summa_abt(mesh, A, B, C);
      } else {
        optimus::summa::summa_atb(mesh, A, B, C);
      }
      benchmark::DoNotOptimize(C.data());
    });
    sim_step += report.max_sim_time();
    sim_comm += report.max_comm_time();
    weighted += report.ranks[0].stats.total_weighted();
    ++calls;
  }
  state.counters["sim_step_s"] = sim_step / calls;
  state.counters["sim_comm_s"] = sim_comm / calls;
  state.counters["weighted_scalars_per_dev"] = weighted / calls;
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
#define SUMMA_BENCH(form)                                                        \
  BENCHMARK(BM_Summa<form, false>)->Args({2, 96})->Args({4, 96});                \
  BENCHMARK(BM_Summa<form, true>)->Args({2, 96})->Args({4, 96})
BENCHMARK(BM_Summa<0, false>)->Args({1, 96})->Args({3, 96});
SUMMA_BENCH(0);
SUMMA_BENCH(1);
SUMMA_BENCH(2);
#undef SUMMA_BENCH

// Manual sweep mirroring BM_Summa<0> that lands in BENCH_summa.json so SUMMA
// perf is tracked across commits alongside BENCH_kernels.json. wall_ms is
// host time for the whole simulated cluster step; sim_ms is the simulated
// per-device critical path (max over ranks).
void write_summa_json() {
  optimus::bench::JsonWriter json;
  const ot::index_t n = 96;
  Tensor A_global = random_tensor(Shape{n, n}, 3);
  Tensor B_global = random_tensor(Shape{n, n}, 4);
  struct ModeResult {
    double wall_ms = 0, sim_ms = 0;
    oc::Cluster::Report report;
  };
  // kind 0 = SUMMA (2D when d == 1, 2.5D otherwise), 1 = Cannon baseline.
  const auto run_mode = [&](int q, int d, bool pipelined, int kind = 0) {
    const int p = q * q * d;
    optimus::summa::PipelineGuard guard(pipelined);
    ModeResult r;
    const int reps = 3;
    for (int i = 0; i < reps; ++i) {
      optimus::util::Stopwatch sw;
      auto report = oc::run_cluster(p, [&](oc::Context& ctx) {
        optimus::mesh::Mesh2D mesh(ctx.world, d);
        Tensor A = ot::matrix_block(A_global, q, mesh.row(), mesh.col());
        Tensor B = ot::matrix_block(B_global, q, mesh.row(), mesh.col());
        Tensor C = Tensor::zeros(Shape{n / q, n / q});
        if (kind == 0) {
          optimus::summa::summa_ab(mesh, A, B, C);
        } else {
          optimus::summa::cannon_ab(mesh, A, B, C);
        }
        benchmark::DoNotOptimize(C.data());
      });
      r.wall_ms += sw.elapsed_s() * 1000.0;
      r.sim_ms += report.max_sim_time() * 1000.0;
      r.report = report;
    }
    r.wall_ms /= reps;
    r.sim_ms /= reps;
    return r;
  };
  const auto add_row = [&](const std::string& name, int q, const ModeResult& r,
                           double overlap_efficiency) {
    const double gflops = 2.0 * n * n * n / (r.wall_ms * 1e-3) / 1e9;
    // Per-device collective traffic is identical across reps (the schedule is
    // deterministic), so the last report's rank-0 stats are representative.
    const auto& st = r.report.ranks[0].stats;
    json.add(name, std::to_string(n) + "x" + std::to_string(n) + "x" + std::to_string(n),
             gflops, r.wall_ms, r.sim_ms,
             {{"bcast_bytes_per_dev", static_cast<double>(st.broadcast.bytes)},
              {"reduce_bytes_per_dev", static_cast<double>(st.reduce.bytes)},
              {"weighted_scalars_per_dev", st.total_weighted()},
              {"comm_sim_ms", r.report.max_comm_time() * 1000.0},
              {"overlap_efficiency", overlap_efficiency}});
  };
  for (int q : {1, 2, 4}) {
    const ModeResult blocking = run_mode(q, 1, false);
    add_row("summa_ab_q" + std::to_string(q), q, blocking, 0.0);
    if (q > 1) {
      // Pipelined rows ride next to the blocking baselines they are compared
      // against; overlap_efficiency is the fraction of the blocking critical
      // path hidden by the async schedule.
      const ModeResult pipelined = run_mode(q, 1, true);
      const double eff = (blocking.sim_ms - pipelined.sim_ms) / blocking.sim_ms;
      add_row("summa_ab_q" + std::to_string(q) + "_pipelined", q, pipelined, eff);
    }
  }
  // 2.5D (Tesseract) crossover sweep vs both baselines. The q2d4 rows use the
  // same 16 devices as the q4 2D rows above and the Cannon row below, so the
  // sim_ms columns line up as an equal-p crossover table (EXPERIMENTS.md);
  // q2d2 tracks the small-depth point at p = 8.
  for (const auto& [q, d] : {std::pair<int, int>{2, 2}, {2, 4}}) {
    const std::string base = "summa25_ab_q" + std::to_string(q) + "d" + std::to_string(d);
    const ModeResult blocking = run_mode(q, d, false);
    add_row(base, q, blocking, 0.0);
    const ModeResult pipelined = run_mode(q, d, true);
    const double eff = (blocking.sim_ms - pipelined.sim_ms) / blocking.sim_ms;
    add_row(base + "_pipelined", q, pipelined, eff);
  }
  add_row("cannon_ab_q4", 4, run_mode(4, 1, false, /*kind=*/1), 0.0);
  json.write("BENCH_summa.json");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  write_summa_json();
  return 0;
}
