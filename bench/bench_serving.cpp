// E-serving — KV-cached continuous-batching inference, Optimus vs Megatron.
//
// (1) Offered-load sweep: a seeded Poisson open-loop trace is replayed through
//     both distributed engines at several arrival rates; the simulated clock
//     yields p50/p99 request latency, generated tokens/s and queue depth per
//     load point. Both engines serve the identical trace (the scheduler is
//     deterministic and engine-agnostic), so the rows are directly comparable.
// (2) Cached vs recompute: generating K tokens through the KV-cached decode
//     path vs the pre-cache practice of re-running the full context window
//     every token (what examples/text_generation.cpp did before this change).
//     Run at a low-latency machine point (α = 0.1 µs) where payload and
//     compute dominate — the regime real serving clusters operate in; the
//     bench asserts the cached path is ≥ 3× faster at the longest output.
// (3) Decode-step cost model: one measured decode step per engine is asserted
//     against perfmodel::predict_*_decode_step_time to ~round-off, under the
//     blocking SUMMA schedule (the closed forms model the unpipelined path).

#include <cmath>
#include <iostream>
#include <mutex>
#include <vector>

#include "bench_common.hpp"
#include "comm/cluster.hpp"
#include "core/optimus_model.hpp"
#include "megatron/megatron_model.hpp"
#include "mesh/mesh.hpp"
#include "perfmodel/validation.hpp"
#include "serving/serving.hpp"
#include "serving/traffic.hpp"
#include "summa/summa.hpp"
#include "util/table.hpp"

namespace {

namespace oc = optimus::comm;
namespace os = optimus::serving;
namespace opm = optimus::perfmodel;
using optimus::bench::make_config;
using optimus::bench::to_workload;
using optimus::tensor::index_t;
using optimus::util::Table;

constexpr int kMeshQ = 2;      // Optimus 2×2 mesh
constexpr int kMegatronP = 4;  // same device count, 1D

struct SweepPoint {
  double rate = 0;
  os::ServingMetrics metrics;
  std::uint64_t cache_bytes = 0;
};

os::TrafficConfig make_traffic(const optimus::model::TransformerConfig& cfg, double rate) {
  os::TrafficConfig tc;
  tc.rate = rate;
  tc.count = 40;
  tc.prompt_min = 2;
  tc.prompt_max = 6;
  tc.output_min = 4;
  tc.output_max = 16;
  tc.vocab = cfg.vocab;
  tc.capacity = cfg.seq_len;
  tc.seed = 2024;
  return tc;
}

}  // namespace

int main() {
  optimus::bench::print_header("E-serving — continuous batching, 4 devices (q=2 vs p=4)");
  const auto cfg = make_config(/*b=*/8, /*s=*/48, /*h=*/32, /*n=*/4, /*v=*/64, /*layers=*/2);
  optimus::bench::JsonWriter json;
  std::mutex mu;

  // ---- (1) offered-load sweep --------------------------------------------
  const std::vector<double> rates = {50.0, 200.0, 800.0};
  Table t({"engine", "offered req/s", "completed", "tok/s", "p50 lat (ms)", "p99 lat (ms)",
           "mean queue", "max queue"});
  for (const char* engine : {"optimus", "megatron"}) {
    const bool is2d = std::string(engine) == "optimus";
    for (const double rate : rates) {
      const auto reqs = os::poisson_open_loop(make_traffic(cfg, rate));
      SweepPoint pt;
      pt.rate = rate;
      const auto body = [&](oc::Context& ctx, os::DecodeEngine<float>& eng) {
        auto oc2 = os::run_serving<float>(
            eng, reqs, [&] { return ctx.clock.now(); },
            [&](double when) { ctx.clock.set(when); });
        OPT_CHECK(!oc2.aborted, "fault-free run aborted");
        OPT_CHECK(oc2.completed.size() == reqs.size(), "requests dropped");
        std::lock_guard<std::mutex> lock(mu);
        if (ctx.rank == 0) {
          pt.metrics = oc2.metrics;
          pt.cache_bytes = oc2.cache_bytes;
        }
      };
      if (is2d) {
        oc::run_cluster(kMeshQ * kMeshQ, [&](oc::Context& ctx) {
          optimus::mesh::Mesh2D mesh(ctx.world);
          optimus::core::OptimusTransformer<float> m(cfg, mesh);
          os::OptimusDecodeEngine<float> eng(m, cfg.batch);
          body(ctx, eng);
        });
      } else {
        oc::run_cluster(kMegatronP, [&](oc::Context& ctx) {
          optimus::megatron::MegatronTransformer<float> m(cfg, ctx.world);
          os::MegatronDecodeEngine<float> eng(m, ctx.world, cfg.batch);
          body(ctx, eng);
        });
      }
      const auto& m = pt.metrics;
      t.add_row({engine, Table::fmt(rate, 0), std::to_string(m.completed),
                 Table::fmt(m.tokens_per_s, 1), Table::fmt(m.p50_latency * 1e3, 3),
                 Table::fmt(m.p99_latency * 1e3, 3), Table::fmt(m.mean_queue_depth, 2),
                 std::to_string(m.max_queue_depth)});
      json.add(std::string("serving_") + engine, "b8 s48 h32 v64 L2", 0, 0,
               m.span * 1e3,
               {{"offered_rate", pt.rate},
                {"tokens_per_s", m.tokens_per_s},
                {"p50_latency_ms", m.p50_latency * 1e3},
                {"p99_latency_ms", m.p99_latency * 1e3},
                {"p50_first_token_ms", m.p50_first_token * 1e3},
                {"p99_first_token_ms", m.p99_first_token * 1e3},
                {"mean_queue_depth", m.mean_queue_depth},
                {"max_queue_depth", static_cast<double>(m.max_queue_depth)},
                {"completed", static_cast<double>(m.completed)},
                {"decode_steps", static_cast<double>(m.decode_steps)},
                {"cache_bytes_per_rank", static_cast<double>(pt.cache_bytes)}});
    }
  }
  t.print(std::cout);

  // ---- (2) cached decode vs full-window recompute ------------------------
  optimus::bench::print_header("KV cache vs full-window recompute (Optimus q=2, α = 0.1 µs)");
  const index_t kNew = 32;  // longest output in the sweep's range, doubled
  double cached_s = 0, recompute_s = 0;
  {
    oc::Topology topo(kMeshQ * kMeshQ, 4, oc::Arrangement::kBunched, kMeshQ);
    oc::MachineParams mp;
    mp.alpha = 1e-7;
    oc::Cluster cluster(kMeshQ * kMeshQ, topo, mp);
    cluster.run([&](oc::Context& ctx) {
      optimus::mesh::Mesh2D mesh(ctx.world);
      optimus::core::OptimusTransformer<float> m(cfg, mesh);
      os::OptimusDecodeEngine<float> eng(m, cfg.batch);
      std::vector<std::int32_t> toks(static_cast<std::size_t>(cfg.batch), 3);
      std::vector<std::uint8_t> act(static_cast<std::size_t>(cfg.batch), 1);
      eng.step(toks, act);  // prefill one prompt token + decode-param warmup
      const double t0 = ctx.clock.now();
      for (index_t i = 0; i < kNew; ++i) eng.step(toks, act);
      const double t1 = ctx.clock.now();
      // Recompute baseline: every new token re-runs the full context window
      // (prefill forward + logits), exactly what generation without a cache
      // does. One forward is measured and scaled — each window is identical.
      optimus::tensor::ITensor window(optimus::tensor::Shape{cfg.batch, cfg.seq_len});
      for (index_t i = 0; i < window.numel(); ++i) window[i] = 3;
      m.forward(window);
      (void)m.lm_logits_block();
      ctx.world.barrier();
      const double t2 = ctx.clock.now();
      m.forward(window);
      (void)m.lm_logits_block();
      ctx.world.barrier();
      const double t3 = ctx.clock.now();
      std::lock_guard<std::mutex> lock(mu);
      if (ctx.rank == 0) {
        cached_s = t1 - t0;
        recompute_s = static_cast<double>(kNew) * (t3 - t2);
      }
    });
  }
  const double cached_tps = static_cast<double>(cfg.batch * kNew) / cached_s;
  const double recompute_tps = static_cast<double>(cfg.batch * kNew) / recompute_s;
  const double speedup = cached_tps / recompute_tps;
  std::cout << "cached:    " << Table::fmt(cached_tps, 1) << " tok/s ("
            << Table::fmt(cached_s * 1e3, 3) << " ms for " << cfg.batch * kNew << " tokens)\n"
            << "recompute: " << Table::fmt(recompute_tps, 1) << " tok/s ("
            << Table::fmt(recompute_s * 1e3, 3) << " ms)\n"
            << "speedup:   " << Table::fmt(speedup, 2) << "x\n";
  OPT_CHECK(speedup >= 3.0, "KV-cached decode only " << speedup << "x over recompute");
  json.add("decode_cached_vs_recompute", "b8 s48 h32 v64 L2 K32", 0, 0, cached_s * 1e3,
           {{"cached_tokens_per_s", cached_tps},
            {"recompute_tokens_per_s", recompute_tps},
            {"speedup", speedup}});

  // ---- (3) decode-step cost model ----------------------------------------
  optimus::bench::print_header("Decode-step cost: measured sim time vs closed form");
  const auto w = to_workload(cfg);
  for (const char* engine : {"optimus", "megatron"}) {
    const bool is2d = std::string(engine) == "optimus";
    double measured = 0, predicted = 0;
    const auto probe = [&](oc::Context& ctx, os::DecodeEngine<float>& eng, double pred) {
      std::vector<std::int32_t> toks(static_cast<std::size_t>(cfg.batch), 1);
      std::vector<std::uint8_t> act(static_cast<std::size_t>(cfg.batch), 1);
      eng.step(toks, act);  // warmup: one-time decode-param broadcasts
      const double t0 = ctx.clock.now();
      eng.step(toks, act);
      const double t1 = ctx.clock.now();
      std::lock_guard<std::mutex> lock(mu);
      if (ctx.rank == 0) {
        measured = t1 - t0;
        predicted = pred;
      }
    };
    const std::vector<index_t> lens(static_cast<std::size_t>(cfg.batch), 1);
    if (is2d) {
      oc::run_cluster(kMeshQ * kMeshQ, [&](oc::Context& ctx) {
        optimus::summa::PipelineGuard guard(false);
        optimus::mesh::Mesh2D mesh(ctx.world);
        optimus::core::OptimusTransformer<float> m(cfg, mesh);
        os::OptimusDecodeEngine<float> eng(m, cfg.batch);
        probe(ctx, eng,
              opm::predict_optimus_decode_step_time(ctx.cost, w, kMeshQ, lens, sizeof(float)));
      });
    } else {
      oc::run_cluster(kMegatronP, [&](oc::Context& ctx) {
        optimus::megatron::MegatronTransformer<float> m(cfg, ctx.world);
        os::MegatronDecodeEngine<float> eng(m, ctx.world, cfg.batch);
        probe(ctx, eng, opm::predict_megatron_decode_step_time(ctx.cost, w, kMegatronP, lens,
                                                               sizeof(float)));
      });
    }
    const double rel = std::abs(measured - predicted) / predicted;
    std::cout << engine << ": measured " << measured << " s, predicted " << predicted
              << " s, rel err " << rel << "\n";
    OPT_CHECK(rel < 1e-9, engine << " decode-step model off by " << rel);
    json.add(std::string("decode_step_model_") + engine, "b8 s48 h32 v64 L2", 0, 0,
             measured * 1e3, {{"predicted_ms", predicted * 1e3}, {"rel_err", rel}});
  }

  json.write("BENCH_serving.json");
  return 0;
}
