// E-serving — KV-cached continuous-batching inference, Optimus vs Megatron.
//
// (1) Offered-load sweep: a seeded Poisson open-loop trace is replayed through
//     both distributed engines at several arrival rates; the simulated clock
//     yields p50/p99 request latency, generated tokens/s and queue depth per
//     load point. Both engines serve the identical trace (the scheduler is
//     deterministic and engine-agnostic), so the rows are directly comparable.
// (2) Cached vs recompute: generating K tokens through the KV-cached decode
//     path vs the pre-cache practice of re-running the full context window
//     every token (what examples/text_generation.cpp did before this change).
//     Run at a low-latency machine point (α = 0.1 µs) where payload and
//     compute dominate — the regime real serving clusters operate in; the
//     bench asserts the cached path is ≥ 3× faster at the longest output.
// (3) Decode-step cost model: one measured decode step per engine is asserted
//     against perfmodel::predict_*_decode_step_time to ~round-off, under the
//     blocking SUMMA schedule (the closed forms model the unpipelined path).

#include <cmath>
#include <iostream>
#include <mutex>
#include <vector>

#include "bench_common.hpp"
#include "comm/cluster.hpp"
#include "comm/obs_report.hpp"
#include "core/optimus_model.hpp"
#include "megatron/megatron_model.hpp"
#include "mesh/mesh.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "perfmodel/validation.hpp"
#include "serving/serving.hpp"
#include "serving/traffic.hpp"
#include "summa/summa.hpp"
#include "util/table.hpp"

namespace {

namespace oc = optimus::comm;
namespace os = optimus::serving;
namespace opm = optimus::perfmodel;
using optimus::bench::make_config;
using optimus::bench::to_workload;
using optimus::tensor::index_t;
using optimus::util::Table;

constexpr int kMeshQ = 2;      // Optimus 2×2 mesh
constexpr int kMegatronP = 4;  // same device count, 1D

struct SweepPoint {
  double rate = 0;
  os::ServingMetrics metrics;
  std::uint64_t cache_bytes = 0;
};

os::TrafficConfig make_traffic(const optimus::model::TransformerConfig& cfg, double rate) {
  os::TrafficConfig tc;
  tc.rate = rate;
  tc.count = 40;
  tc.prompt_min = 2;
  tc.prompt_max = 6;
  tc.output_min = 4;
  tc.output_max = 16;
  tc.vocab = cfg.vocab;
  tc.capacity = cfg.seq_len;
  tc.seed = 2024;
  return tc;
}

/// Per-rank simulated-timeline breakdown → flat JSON extras on a bench row.
void add_util_extras(optimus::bench::JsonWriter::Metrics& ex,
                     const oc::Cluster::Report& rep) {
  for (std::size_t r = 0; r < rep.ranks.size(); ++r) {
    const auto& rr = rep.ranks[r];
    const double tot = rr.sim_time > 0 ? rr.sim_time : 1.0;
    const std::string p = "rank" + std::to_string(r) + "_";
    ex.emplace_back(p + "compute_frac", rr.util.compute / tot);
    ex.emplace_back(p + "align_wait_frac", rr.util.align_wait / tot);
    ex.emplace_back(p + "transfer_frac", rr.util.transfer / tot);
    ex.emplace_back(p + "idle_frac", rr.util.idle / tot);
  }
}

/// Registry-histogram quantiles for the load point just served (the registry
/// is reset before each point). The histogram view is log-bucketed (≤ 4.4 %
/// rel error), complementing the exact sorted-vector p50/p99 alongside.
void add_latency_hist_extras(optimus::bench::JsonWriter::Metrics& ex) {
  const auto& h =
      optimus::obs::MetricsRegistry::instance().histogram("serving.request_latency_s");
  ex.emplace_back("hist_p50_latency_ms", h.quantile(0.50) * 1e3);
  ex.emplace_back("hist_p99_latency_ms", h.quantile(0.99) * 1e3);
  ex.emplace_back("hist_p999_latency_ms", h.quantile(0.999) * 1e3);
}

/// --smoke: one traced+metered Optimus load point for CI. Writes the Chrome
/// trace (request lanes included) and a byte-reproducible metrics JSON (pool
/// and span sections excluded — they carry wall-clock numbers).
int run_smoke(const std::string& trace_out, const std::string& metrics_out) {
  const auto cfg = make_config(/*b=*/8, /*s=*/48, /*h=*/32, /*n=*/4, /*v=*/64, /*layers=*/2);
  auto tc = make_traffic(cfg, /*rate=*/200.0);
  tc.count = 12;
  const auto reqs = os::poisson_open_loop(tc);
  if (!trace_out.empty()) {
    optimus::obs::set_enabled(true);
    optimus::obs::reset();
  }
  optimus::obs::set_metrics_enabled(true);
  optimus::obs::metrics_reset();
  std::mutex mu;
  os::ServingMetrics sm;
  const auto report = oc::run_cluster(kMeshQ * kMeshQ, [&](oc::Context& ctx) {
    optimus::mesh::Mesh2D mesh(ctx.world);
    optimus::core::OptimusTransformer<float> m(cfg, mesh);
    os::OptimusDecodeEngine<float> eng(m, cfg.batch);
    auto oc2 = os::run_serving<float>(
        eng, reqs, [&] { return ctx.clock.now(); },
        [&](double when) { ctx.clock.set(when); });
    OPT_CHECK(!oc2.aborted, "smoke run aborted");
    OPT_CHECK(oc2.completed.size() == reqs.size(), "smoke run dropped requests");
    std::lock_guard<std::mutex> lock(mu);
    if (ctx.rank == 0) sm = oc2.metrics;
  });
  std::cout << "smoke: completed " << sm.completed << " requests, " << sm.decode_steps
            << " decode steps, p50 " << sm.p50_latency * 1e3 << " ms\n";
  if (!trace_out.empty()) {
    optimus::obs::write_chrome_trace(trace_out);
    std::cout << "wrote " << trace_out << "\n";
  }
  if (!metrics_out.empty()) {
    oc::MetricsReportOptions opts;
    opts.include_spans = false;  // span summary carries wall totals
    opts.include_pool = false;   // pool counters are wall-based
    oc::write_metrics(metrics_out, report, opts);
    std::cout << "wrote " << metrics_out << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_out, metrics_out;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--smoke") {
      smoke = true;
    } else if (a == "--trace-out" && i + 1 < argc) {
      trace_out = argv[++i];
    } else if (a == "--metrics-out" && i + 1 < argc) {
      metrics_out = argv[++i];
    } else {
      std::cerr << "usage: bench_serving [--smoke [--trace-out F] [--metrics-out F]]\n";
      return 2;
    }
  }
  if (smoke) return run_smoke(trace_out, metrics_out);

  optimus::bench::print_header("E-serving — continuous batching, 4 devices (q=2 vs p=4)");
  const auto cfg = make_config(/*b=*/8, /*s=*/48, /*h=*/32, /*n=*/4, /*v=*/64, /*layers=*/2);
  // The registry feeds the per-load histogram columns; reset per point.
  optimus::obs::set_metrics_enabled(true);
  optimus::bench::JsonWriter json;
  std::mutex mu;

  // ---- (1) offered-load sweep --------------------------------------------
  const std::vector<double> rates = {50.0, 200.0, 800.0};
  Table t({"engine", "offered req/s", "completed", "tok/s", "p50 lat (ms)", "p99 lat (ms)",
           "mean queue", "max queue"});
  for (const char* engine : {"optimus", "megatron"}) {
    const bool is2d = std::string(engine) == "optimus";
    for (const double rate : rates) {
      const auto reqs = os::poisson_open_loop(make_traffic(cfg, rate));
      optimus::obs::metrics_reset();  // one registry window per load point
      SweepPoint pt;
      pt.rate = rate;
      oc::Cluster::Report report;
      const auto body = [&](oc::Context& ctx, os::DecodeEngine<float>& eng) {
        auto oc2 = os::run_serving<float>(
            eng, reqs, [&] { return ctx.clock.now(); },
            [&](double when) { ctx.clock.set(when); });
        OPT_CHECK(!oc2.aborted, "fault-free run aborted");
        OPT_CHECK(oc2.completed.size() == reqs.size(), "requests dropped");
        std::lock_guard<std::mutex> lock(mu);
        if (ctx.rank == 0) {
          pt.metrics = oc2.metrics;
          pt.cache_bytes = oc2.cache_bytes;
        }
      };
      if (is2d) {
        report = oc::run_cluster(kMeshQ * kMeshQ, [&](oc::Context& ctx) {
          optimus::mesh::Mesh2D mesh(ctx.world);
          optimus::core::OptimusTransformer<float> m(cfg, mesh);
          os::OptimusDecodeEngine<float> eng(m, cfg.batch);
          body(ctx, eng);
        });
      } else {
        report = oc::run_cluster(kMegatronP, [&](oc::Context& ctx) {
          optimus::megatron::MegatronTransformer<float> m(cfg, ctx.world);
          os::MegatronDecodeEngine<float> eng(m, ctx.world, cfg.batch);
          body(ctx, eng);
        });
      }
      const auto& m = pt.metrics;
      t.add_row({engine, Table::fmt(rate, 0), std::to_string(m.completed),
                 Table::fmt(m.tokens_per_s, 1), Table::fmt(m.p50_latency * 1e3, 3),
                 Table::fmt(m.p99_latency * 1e3, 3), Table::fmt(m.mean_queue_depth, 2),
                 std::to_string(m.max_queue_depth)});
      optimus::bench::JsonWriter::Metrics extras =
               {{"offered_rate", pt.rate},
                {"tokens_per_s", m.tokens_per_s},
                {"p50_latency_ms", m.p50_latency * 1e3},
                {"p99_latency_ms", m.p99_latency * 1e3},
                {"p50_first_token_ms", m.p50_first_token * 1e3},
                {"p99_first_token_ms", m.p99_first_token * 1e3},
                {"mean_queue_depth", m.mean_queue_depth},
                {"max_queue_depth", static_cast<double>(m.max_queue_depth)},
                {"completed", static_cast<double>(m.completed)},
                {"decode_steps", static_cast<double>(m.decode_steps)},
                {"cache_bytes_per_rank", static_cast<double>(pt.cache_bytes)}};
      add_latency_hist_extras(extras);
      extras.emplace_back("p999_latency_ms", m.p999_latency * 1e3);
      add_util_extras(extras, report);
      json.add(std::string("serving_") + engine, "b8 s48 h32 v64 L2", 0, 0,
               m.span * 1e3, extras);
    }
  }
  t.print(std::cout);

  // ---- (2) cached decode vs full-window recompute ------------------------
  optimus::bench::print_header("KV cache vs full-window recompute (Optimus q=2, α = 0.1 µs)");
  const index_t kNew = 32;  // longest output in the sweep's range, doubled
  double cached_s = 0, recompute_s = 0;
  {
    oc::Topology topo(kMeshQ * kMeshQ, 4, oc::Arrangement::kBunched, kMeshQ);
    oc::MachineParams mp;
    mp.alpha = 1e-7;
    oc::Cluster cluster(kMeshQ * kMeshQ, topo, mp);
    cluster.run([&](oc::Context& ctx) {
      optimus::mesh::Mesh2D mesh(ctx.world);
      optimus::core::OptimusTransformer<float> m(cfg, mesh);
      os::OptimusDecodeEngine<float> eng(m, cfg.batch);
      std::vector<std::int32_t> toks(static_cast<std::size_t>(cfg.batch), 3);
      std::vector<std::uint8_t> act(static_cast<std::size_t>(cfg.batch), 1);
      eng.step(toks, act);  // prefill one prompt token + decode-param warmup
      const double t0 = ctx.clock.now();
      for (index_t i = 0; i < kNew; ++i) eng.step(toks, act);
      const double t1 = ctx.clock.now();
      // Recompute baseline: every new token re-runs the full context window
      // (prefill forward + logits), exactly what generation without a cache
      // does. One forward is measured and scaled — each window is identical.
      optimus::tensor::ITensor window(optimus::tensor::Shape{cfg.batch, cfg.seq_len});
      for (index_t i = 0; i < window.numel(); ++i) window[i] = 3;
      m.forward(window);
      (void)m.lm_logits_block();
      ctx.world.barrier();
      const double t2 = ctx.clock.now();
      m.forward(window);
      (void)m.lm_logits_block();
      ctx.world.barrier();
      const double t3 = ctx.clock.now();
      std::lock_guard<std::mutex> lock(mu);
      if (ctx.rank == 0) {
        cached_s = t1 - t0;
        recompute_s = static_cast<double>(kNew) * (t3 - t2);
      }
    });
  }
  const double cached_tps = static_cast<double>(cfg.batch * kNew) / cached_s;
  const double recompute_tps = static_cast<double>(cfg.batch * kNew) / recompute_s;
  const double speedup = cached_tps / recompute_tps;
  std::cout << "cached:    " << Table::fmt(cached_tps, 1) << " tok/s ("
            << Table::fmt(cached_s * 1e3, 3) << " ms for " << cfg.batch * kNew << " tokens)\n"
            << "recompute: " << Table::fmt(recompute_tps, 1) << " tok/s ("
            << Table::fmt(recompute_s * 1e3, 3) << " ms)\n"
            << "speedup:   " << Table::fmt(speedup, 2) << "x\n";
  OPT_CHECK(speedup >= 3.0, "KV-cached decode only " << speedup << "x over recompute");
  json.add("decode_cached_vs_recompute", "b8 s48 h32 v64 L2 K32", 0, 0, cached_s * 1e3,
           {{"cached_tokens_per_s", cached_tps},
            {"recompute_tokens_per_s", recompute_tps},
            {"speedup", speedup}});

  // ---- (3) decode-step cost model ----------------------------------------
  optimus::bench::print_header("Decode-step cost: measured sim time vs closed form");
  const auto w = to_workload(cfg);
  for (const char* engine : {"optimus", "megatron"}) {
    const bool is2d = std::string(engine) == "optimus";
    double measured = 0, predicted = 0;
    const auto probe = [&](oc::Context& ctx, os::DecodeEngine<float>& eng, double pred) {
      std::vector<std::int32_t> toks(static_cast<std::size_t>(cfg.batch), 1);
      std::vector<std::uint8_t> act(static_cast<std::size_t>(cfg.batch), 1);
      eng.step(toks, act);  // warmup: one-time decode-param broadcasts
      const double t0 = ctx.clock.now();
      eng.step(toks, act);
      const double t1 = ctx.clock.now();
      std::lock_guard<std::mutex> lock(mu);
      if (ctx.rank == 0) {
        measured = t1 - t0;
        predicted = pred;
      }
    };
    const std::vector<index_t> lens(static_cast<std::size_t>(cfg.batch), 1);
    if (is2d) {
      oc::run_cluster(kMeshQ * kMeshQ, [&](oc::Context& ctx) {
        optimus::summa::PipelineGuard guard(false);
        optimus::mesh::Mesh2D mesh(ctx.world);
        optimus::core::OptimusTransformer<float> m(cfg, mesh);
        os::OptimusDecodeEngine<float> eng(m, cfg.batch);
        probe(ctx, eng,
              opm::predict_optimus_decode_step_time(ctx.cost, w, kMeshQ, lens, sizeof(float)));
      });
    } else {
      oc::run_cluster(kMegatronP, [&](oc::Context& ctx) {
        optimus::megatron::MegatronTransformer<float> m(cfg, ctx.world);
        os::MegatronDecodeEngine<float> eng(m, ctx.world, cfg.batch);
        probe(ctx, eng, opm::predict_megatron_decode_step_time(ctx.cost, w, kMegatronP, lens,
                                                               sizeof(float)));
      });
    }
    const double rel = std::abs(measured - predicted) / predicted;
    std::cout << engine << ": measured " << measured << " s, predicted " << predicted
              << " s, rel err " << rel << "\n";
    OPT_CHECK(rel < 1e-9, engine << " decode-step model off by " << rel);
    json.add(std::string("decode_step_model_") + engine, "b8 s48 h32 v64 L2", 0, 0,
             measured * 1e3, {{"predicted_ms", predicted * 1e3}, {"rel_err", rel}});
  }

  json.write("BENCH_serving.json");
  return 0;
}
