// E4 — Figure 9: memory limits (max batch size per device count).
//
// Binary-searches the largest global batch each scheme can run under a fixed
// per-device memory budget (16 GB, the Quadro RTX 5000) at the paper's
// weak-scaling dimensions, using the memory model that
// tests/perfmodel_test.cpp pins to the real allocator's measured peaks.
// The paper's Figure-9 signature: Optimus's limit GROWS with p (activations
// fully distributed) while Megatron's SHRINKS (activations replicated while
// h grows), with an 8× gap at 64 GPUs (b = 480 vs 60 total).
//
// A second table validates the model against the real engines' measured peak
// bytes at mini scale, and a third reproduces the b(max-ok)/b(first-fail)
// bracketing the paper's figure labels use.

#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "comm/cluster.hpp"
#include "core/optimus_model.hpp"
#include "megatron/megatron_model.hpp"
#include "mesh/mesh.hpp"
#include "perfmodel/memory.hpp"
#include "perfmodel/scaling.hpp"
#include "util/table.hpp"

namespace {

namespace oc = optimus::comm;
namespace opm = optimus::perfmodel;
namespace ort = optimus::runtime;
using optimus::bench::make_config;
using optimus::util::Table;

void paper_scale(std::uint64_t budget) {
  optimus::bench::print_header("E4 / Figure 9 — max global batch under a 16 GB/device budget");
  Table t({"GPUs", "h", "Megatron b_max", "Optimus b_max", "Optimus/Megatron"});
  for (int p : {4, 16, 36, 64}) {
    const int q = static_cast<int>(std::lround(std::sqrt(p)));
    opm::Workload wm = opm::weak_scaling_workload(p, opm::Scheme::kMegatron);
    opm::Workload wo = opm::weak_scaling_workload(p, opm::Scheme::kOptimus);
    const auto bm = opm::max_batch(opm::Scheme::kMegatron, wm, p, budget);
    const auto bo = opm::max_batch(opm::Scheme::kOptimus, wo, p, budget, q);
    t.add_row({std::to_string(p), std::to_string(wm.h), std::to_string(bm),
               std::to_string(bo),
               Table::fmt(static_cast<double>(bo) / std::max<long long>(bm, 1), 2)});
  }
  t.print(std::cout);
  std::cout << "\nPaper: Megatron's limit falls with p while Optimus's rises, reaching\n"
               "b = 480 (whole activations 7.5 GB) and an 8x gap at 64 GPUs.\n";
}

void bracket_table(std::uint64_t budget) {
  optimus::bench::print_header(
      "E4 / Figure 9 — runnable(failing) batch brackets, Optimus granularity q");
  Table t({"GPUs", "Megatron ok(fail)", "Optimus ok(fail)"});
  for (int p : {4, 16, 36, 64}) {
    const int q = static_cast<int>(std::lround(std::sqrt(p)));
    opm::Workload wm = opm::weak_scaling_workload(p, opm::Scheme::kMegatron);
    opm::Workload wo = opm::weak_scaling_workload(p, opm::Scheme::kOptimus);
    const auto bm = opm::max_batch(opm::Scheme::kMegatron, wm, p, budget);
    const auto bo = opm::max_batch(opm::Scheme::kOptimus, wo, p, budget, q);
    t.add_row({std::to_string(p),
               std::to_string(bm) + "(" + std::to_string(bm + 1) + ")",
               std::to_string(bo) + "(" + std::to_string(bo + q) + ")"});
  }
  t.print(std::cout);
}

void mini_validation() {
  optimus::bench::print_header(
      "E4 — memory model vs real allocator peaks (mini scale, one train step)");
  Table t({"scheme", "p", "b", "h", "modelled bytes", "measured peak", "ratio"});
  for (const auto& [p, b, h] : std::vector<std::array<int, 3>>{{4, 8, 32}, {4, 16, 48}}) {
    const int q = 2;
    const auto cfg = make_config(b, 16, h, 4, 32, 2);
    ort::RandomLmWorkload workload(cfg.batch, cfg.seq_len, cfg.vocab, 5);
    const auto batch = workload.next();
    // Optimus.
    {
      auto report = oc::run_cluster(p, [&](oc::Context& ctx) {
        optimus::mesh::Mesh2D mesh(ctx.world);
        optimus::core::OptimusTransformer<float> engine(cfg, mesh);
        engine.forward(batch.tokens);
        (void)engine.lm_loss(batch.labels);
        engine.backward_lm();
      });
      const auto mem = opm::optimus_memory(optimus::bench::to_workload(cfg), q * q);
      t.add_row({"Optimus", std::to_string(p), std::to_string(b), std::to_string(h),
                 std::to_string(mem.total()), std::to_string(report.max_peak_bytes()),
                 Table::fmt(static_cast<double>(mem.total()) / report.max_peak_bytes(), 3)});
    }
    // Megatron.
    {
      auto report = oc::run_cluster(p, [&](oc::Context& ctx) {
        optimus::megatron::MegatronTransformer<float> engine(cfg, ctx.world);
        engine.forward(batch.tokens);
        (void)engine.lm_loss(batch.labels);
        engine.backward_lm();
      });
      const auto mem = opm::megatron_memory(optimus::bench::to_workload(cfg), p);
      t.add_row({"Megatron", std::to_string(p), std::to_string(b), std::to_string(h),
                 std::to_string(mem.total()), std::to_string(report.max_peak_bytes()),
                 Table::fmt(static_cast<double>(mem.total()) / report.max_peak_bytes(), 3)});
    }
  }
  t.print(std::cout);
}

}  // namespace

int main() {
  const std::uint64_t budget = 16ull << 30;
  paper_scale(budget);
  bracket_table(budget);
  mini_validation();
  return 0;
}
