// E7 — Figure 8: GPU arrangement (naive vs bunched node packing).
//
// Runs the same Optimus training step on two topologies of the identical
// q×q mesh: naive row-major packing (a mesh row per node; columns touch every
// node, one member each, so all q column collectives fight for each node's
// uplink) and the paper's bunched packing (square mesh tiles per node).
// The simulated communication time and the modelled effective β per direction
// quantify Fig. 8's claim.

#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "comm/cluster.hpp"
#include "core/optimus_model.hpp"
#include "mesh/mesh.hpp"
#include "perfmodel/scaling.hpp"
#include "util/table.hpp"

namespace {

namespace oc = optimus::comm;
namespace opm = optimus::perfmodel;
namespace ort = optimus::runtime;
using optimus::bench::make_config;
using optimus::util::Table;

}  // namespace

int main() {
  const opm::Machine machine = opm::calibrate_from_paper();

  optimus::bench::print_header("E7 / Figure 8 — modelled effective beta per mesh direction");
  Table bt({"GPUs", "arrangement", "row-group beta_eff", "col-group beta_eff"});
  for (int p : {16, 64}) {
    const int q = static_cast<int>(std::lround(std::sqrt(p)));
    for (auto arr : {oc::Arrangement::kNaive, oc::Arrangement::kBunched}) {
      oc::Topology topo(p, machine.gpus_per_node, arr, q);
      oc::CostModel cost(topo, machine.to_comm_params());
      std::vector<int> row(q), col(q);
      for (int i = 0; i < q; ++i) {
        row[i] = i;
        col[i] = i * q;
      }
      bt.add_row({std::to_string(p), arr == oc::Arrangement::kNaive ? "naive" : "bunched",
                  Table::fmt(cost.beta_eff(row) * 4, 12),  // per fp32 scalar
                  Table::fmt(cost.beta_eff(col) * 4, 12)});
    }
  }
  bt.print(std::cout);

  optimus::bench::print_header(
      "E7 — real Optimus step, simulated comm time under each arrangement");
  Table t({"GPUs", "arrangement", "sim comm time (s)", "sim step time (s)", "naive/bunched"});
  for (int p : {16, 36}) {
    const int q = static_cast<int>(std::lround(std::sqrt(p)));
    const auto cfg = make_config(4 * q, 32, 64 * q, q, 8 * q, 2);
    ort::RandomLmWorkload workload(cfg.batch, cfg.seq_len, cfg.vocab, 5);
    const auto batch = workload.next();
    double comm_naive = 0;
    for (auto arr : {oc::Arrangement::kNaive, oc::Arrangement::kBunched}) {
      oc::Topology topo(p, machine.gpus_per_node, arr, q);
      oc::Cluster cluster(p, topo, machine.to_comm_params());
      auto report = cluster.run([&](oc::Context& ctx) {
        optimus::mesh::Mesh2D mesh(ctx.world);
        optimus::core::OptimusTransformer<float> engine(cfg, mesh);
        engine.forward(batch.tokens);
        (void)engine.lm_loss(batch.labels);
        engine.backward_lm();
      });
      const double comm = report.max_comm_time();
      if (arr == oc::Arrangement::kNaive) comm_naive = comm;
      t.add_row({std::to_string(p), arr == oc::Arrangement::kNaive ? "naive" : "bunched",
                 Table::fmt(comm, 6), Table::fmt(report.max_sim_time(), 6),
                 arr == oc::Arrangement::kNaive ? "-" : Table::fmt(comm_naive / comm, 3)});
    }
  }
  t.print(std::cout);
  std::cout << "\nBunched tiles keep square sub-blocks of the mesh on one node, cutting the\n"
               "uplink contention of column collectives (Fig. 8b vs 8a).\n";
  return 0;
}
