// E11 — Mixture-of-Experts scaling (paper §6 future work).
//
// Quantifies the communication the paper says future work should streamline:
//
//  (1) all_to_all dispatch volume per device of the expert-parallel Switch
//      FFN vs the SUMMA volume of the dense Optimus MLP it would replace, at
//      matched hidden sizes — per device and per token.
//  (2) Capacity-factor sweep: dropped-token fraction vs capacity, the routing
//      regularity/quality trade Switch makes.

#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "comm/cluster.hpp"
#include "model/moe.hpp"
#include "perfmodel/costs.hpp"
#include "util/table.hpp"

namespace {

namespace oc = optimus::comm;
namespace om = optimus::model;
namespace opm = optimus::perfmodel;
namespace ot = optimus::tensor;
using optimus::util::Table;

}  // namespace

int main() {
  optimus::bench::print_header(
      "E11 — expert-parallel all_to_all vs dense SUMMA MLP (per device, fwd+bwd)");
  Table t({"p", "tokens/rank", "h", "MoE a2a elems", "dense SUMMA elems (weighted)",
           "MoE/dense"});
  for (int p : {4, 16}) {
    const ot::index_t tokens = 64;
    const ot::index_t h = 32;
    om::MoeConfig cfg;
    cfg.hidden = h;
    cfg.ffn_hidden = 4 * h;
    cfg.num_experts = 2 * p;
    cfg.capacity_factor = 2.0;
    auto report = oc::run_cluster(p, [&](oc::Context& ctx) {
      om::ExpertParallelSwitchFfn<float> moe(cfg, ctx.world);
      optimus::util::Rng rng(2000 + ctx.rank);
      ot::Tensor x(ot::Shape{tokens, h});
      for (ot::index_t i = 0; i < x.numel(); ++i) {
        x[i] = static_cast<float>(rng.uniform(-1, 1));
      }
      ot::Tensor y = moe.forward(x);
      ot::Tensor dy = ot::Tensor::full(y.shape(), 1.0f);
      (void)moe.backward(dy);
    });
    const double moe_elems = static_cast<double>(report.ranks[0].stats.alltoall.weighted);
    // The dense MLP the MoE replaces: Optimus's two SUMMA products on the
    // same tokens (Table-1 MLP terms: 5bsh + 8h² forward, 3× with backward —
    // use the closed forms with b·s = tokens·p).
    opm::Workload w;
    w.b = tokens * p;
    w.s = 1;
    w.h = h;
    w.layers = 1;
    const double lg = std::log2(std::sqrt(static_cast<double>(p)));
    const double sp = std::sqrt(static_cast<double>(p));
    const double bsh = static_cast<double>(w.b) * w.h;
    const double dense = lg / sp * ((5.0 * bsh + 8.0 * h * h) +   // fwd MLP terms
                                    (2.0 * (5.0 * bsh + 8.0 * h * h) +  // recompute+bwd
                                     0.0));
    t.add_row({std::to_string(p), std::to_string(tokens), std::to_string(h),
               Table::fmt(moe_elems, 0), Table::fmt(dense, 0),
               Table::fmt(moe_elems / std::max(dense, 1.0), 3)});
  }
  t.print(std::cout);
  std::cout << "\n(The MoE moves activations to weights; the dense layer broadcasts weight\n"
               "and activation blocks. Which wins depends on h and tokens — the paper's\n"
               "future-work §6 asks exactly for streamlining this exchange.)\n";

  optimus::bench::print_header("E11 — capacity factor vs dropped tokens (p = 4)");
  Table c({"capacity factor", "capacity slots", "dropped fraction", "aux loss"});
  for (double cf : {0.5, 1.0, 1.5, 2.0, 4.0}) {
    om::MoeConfig cfg;
    cfg.hidden = 16;
    cfg.ffn_hidden = 32;
    cfg.num_experts = 8;
    cfg.capacity_factor = cf;
    const ot::index_t tokens = 64;
    double dropped = 0, aux = 0;
    ot::index_t cap = 0;
    oc::run_cluster(4, [&](oc::Context& ctx) {
      om::ExpertParallelSwitchFfn<float> moe(cfg, ctx.world);
      optimus::util::Rng rng(3000 + ctx.rank);
      ot::Tensor x(ot::Shape{tokens, cfg.hidden});
      for (ot::index_t i = 0; i < x.numel(); ++i) {
        x[i] = static_cast<float>(rng.uniform(-1, 1));
      }
      (void)moe.forward(x);
      if (ctx.rank == 0) {
        dropped = static_cast<double>(moe.dropped()) / tokens;
        aux = moe.aux_loss();
        cap = moe.capacity();
      }
    });
    c.add_row({Table::fmt(cf, 2), std::to_string(cap), Table::fmt(dropped, 3),
               Table::fmt(aux, 4)});
  }
  c.print(std::cout);
  std::cout << "\nHigher capacity ⇒ fewer drops but more padded compute and a bigger\n"
               "all_to_all — the standard Switch Transformer dial.\n";
  return 0;
}
