// E8 — §3.2.3 ablation: pre-allocated buffer scheme vs naive heap allocation.
//
// Runs identical Optimus training steps in kPooled mode (workspace/forward/
// backward arenas, the paper's scheme) and kHeap mode (every intermediate is
// a fresh allocation) and compares allocation traffic, peak bytes, and the
// arena high-water marks against their pre-computed capacities (how tight
// the §3.2.3 sizing is).

#include <iostream>

#include "bench_common.hpp"
#include "comm/cluster.hpp"
#include "core/optimus_model.hpp"
#include "mesh/mesh.hpp"
#include "util/table.hpp"

namespace {

namespace oc = optimus::comm;
namespace ocore = optimus::core;
namespace ort = optimus::runtime;
using optimus::bench::make_config;
using optimus::util::Table;

struct Result {
  std::uint64_t allocs = 0;
  std::uint64_t peak = 0;
  std::uint64_t ws_hw = 0, fwd_hw = 0, bwd_hw = 0;
};

Result run(ocore::BufferMode mode, const optimus::model::TransformerConfig& cfg, int steps) {
  ort::RandomLmWorkload workload(cfg.batch, cfg.seq_len, cfg.vocab, 9);
  std::vector<ort::LmBatch> batches;
  for (int i = 0; i < steps; ++i) batches.push_back(workload.next());
  Result result;
  auto report = oc::run_cluster(4, [&](oc::Context& ctx) {
    optimus::mesh::Mesh2D mesh(ctx.world);
    ocore::OptimusOptions opts;
    opts.buffers = mode;
    ocore::OptimusTransformer<float> engine(cfg, mesh, opts);
    ctx.device.reset_alloc_count();
    for (const auto& batch : batches) {
      engine.forward(batch.tokens);
      (void)engine.lm_loss(batch.labels);
      engine.zero_grads();
      engine.backward_lm();
    }
    if (ctx.rank == 0) {
      result.ws_hw = engine.workspace_high_water();
      result.fwd_hw = engine.forward_high_water();
      result.bwd_hw = engine.backward_high_water();
    }
  });
  result.allocs = report.ranks[0].alloc_count;
  result.peak = report.max_peak_bytes();
  return result;
}

}  // namespace

int main() {
  optimus::bench::print_header(
      "E8 — buffer scheme ablation (Optimus, q = 2, 3 training steps)");
  Table t({"config (b,s,h,N)", "mode", "allocations/device", "peak bytes", "alloc ratio"});
  for (const auto& dims : {std::array<int, 4>{8, 16, 32, 2}, std::array<int, 4>{8, 32, 64, 4}}) {
    const auto cfg = make_config(dims[0], dims[1], dims[2], 4, 32, dims[3]);
    const Result pooled = run(ocore::BufferMode::kPooled, cfg, 3);
    const Result heap = run(ocore::BufferMode::kHeap, cfg, 3);
    const std::string label = std::to_string(dims[0]) + "," + std::to_string(dims[1]) + "," +
                              std::to_string(dims[2]) + "," + std::to_string(dims[3]);
    t.add_row({label, "pooled (§3.2.3)", std::to_string(pooled.allocs),
               std::to_string(pooled.peak), "1.00"});
    t.add_row({label, "heap", std::to_string(heap.allocs), std::to_string(heap.peak),
               Table::fmt(static_cast<double>(heap.allocs) / pooled.allocs, 2)});
  }
  t.print(std::cout);

  optimus::bench::print_header("E8 — arena sizing tightness (high water / capacity)");
  const auto cfg = make_config(8, 32, 64, 4, 32, 4);
  oc::run_cluster(4, [&](oc::Context& ctx) {
    optimus::mesh::Mesh2D mesh(ctx.world);
    ocore::OptimusTransformer<float> engine(cfg, mesh);
    ort::RandomLmWorkload workload(cfg.batch, cfg.seq_len, cfg.vocab, 9);
    const auto batch = workload.next();
    engine.forward(batch.tokens);
    (void)engine.lm_loss(batch.labels);
    engine.backward_lm();
    if (ctx.rank == 0) {
      std::cout << "workspace high-water " << engine.workspace_high_water()
                << " B, forward " << engine.forward_high_water() << " B, backward "
                << engine.backward_high_water() << " B\n";
    }
  });
  std::cout << "\nThe pooled scheme performs a constant number of allocations regardless of\n"
               "step count and layer count — the paper's fix for allocator fragmentation.\n"
               "Its peak is slightly higher than heap mode's (arenas hold worst-case\n"
               "capacity), the deliberate trade §3.2.3 makes against fragmentation.\n";
  return 0;
}
