#pragma once

// Shared helpers for the bench harness: config construction, paper-vs-measured
// table assembly, and a minimal JSON results emitter so perf numbers can be
// tracked across commits (BENCH_*.json at the repo root / cwd).

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "model/config.hpp"
#include "perfmodel/costs.hpp"
#include "runtime/data.hpp"
#include "util/table.hpp"

namespace optimus::bench {

inline model::TransformerConfig make_config(tensor::index_t b, tensor::index_t s,
                                            tensor::index_t h, tensor::index_t n,
                                            tensor::index_t v, tensor::index_t layers,
                                            std::uint64_t seed = 42) {
  model::TransformerConfig cfg;
  cfg.batch = b;
  cfg.seq_len = s;
  cfg.hidden = h;
  cfg.heads = n;
  cfg.vocab = v;
  cfg.layers = layers;
  cfg.seed = seed;
  return cfg;
}

inline perfmodel::Workload to_workload(const model::TransformerConfig& cfg) {
  perfmodel::Workload w;
  w.b = cfg.batch;
  w.s = cfg.seq_len;
  w.h = cfg.hidden;
  w.n = cfg.heads;
  w.v = cfg.vocab;
  w.layers = cfg.layers;
  return w;
}

inline void print_header(const std::string& title) {
  std::cout << "\n==== " << title << " ====\n\n";
}

// Accumulates benchmark records and writes them as a JSON array with a fixed
// schema: [{"name", "shape", "gflops", "wall_ms", "sim_ms", ...}, ...].
// Records where a field does not apply (e.g. sim_ms for host-only kernels)
// carry 0. Each record may attach extra numeric metrics (collective bytes,
// pool utilization, …) emitted as additional keys after the fixed ones.
class JsonWriter {
 public:
  using Metrics = std::vector<std::pair<std::string, double>>;

  struct Record {
    std::string name;   // benchmark id, e.g. "gemm_packed_f32"
    std::string shape;  // human-readable problem shape, e.g. "1024x1024x1024"
    double gflops = 0;  // useful-flop throughput (2mnk / wall)
    double wall_ms = 0; // measured host wall time per repetition
    double sim_ms = 0;  // simulated device time, when a sim clock is involved
    Metrics metrics;    // extra per-record observability numbers
  };

  void add(std::string name, std::string shape, double gflops, double wall_ms,
           double sim_ms = 0, Metrics metrics = {}) {
    records_.push_back({std::move(name), std::move(shape), gflops, wall_ms, sim_ms,
                        std::move(metrics)});
  }

  const std::vector<Record>& records() const { return records_; }

  // Writes the array to `path`. Returns false (and prints a warning) on I/O
  // failure so benches never abort just because the cwd is read-only.
  bool write(const std::string& path) const {
    std::ofstream out(path);
    if (!out) {
      std::cerr << "warning: cannot write " << path << "\n";
      return false;
    }
    out << "[\n";
    for (std::size_t i = 0; i < records_.size(); ++i) {
      const Record& r = records_[i];
      out << "  {\"name\": \"" << r.name << "\", \"shape\": \"" << r.shape
          << "\", \"gflops\": " << format_double(r.gflops)
          << ", \"wall_ms\": " << format_double(r.wall_ms)
          << ", \"sim_ms\": " << format_double(r.sim_ms);
      for (const auto& [key, value] : r.metrics) {
        out << ", \"" << key << "\": " << format_double(value);
      }
      out << "}";
      out << (i + 1 < records_.size() ? ",\n" : "\n");
    }
    out << "]\n";
    std::cout << "wrote " << path << " (" << records_.size() << " records)\n";
    return static_cast<bool>(out);
  }

 private:
  static std::string format_double(double v) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
  }

  std::vector<Record> records_;
};

}  // namespace optimus::bench
