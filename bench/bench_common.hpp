#pragma once

// Shared helpers for the bench harness: config construction and
// paper-vs-measured table assembly.

#include <iostream>
#include <string>

#include "model/config.hpp"
#include "perfmodel/costs.hpp"
#include "runtime/data.hpp"
#include "util/table.hpp"

namespace optimus::bench {

inline model::TransformerConfig make_config(tensor::index_t b, tensor::index_t s,
                                            tensor::index_t h, tensor::index_t n,
                                            tensor::index_t v, tensor::index_t layers,
                                            std::uint64_t seed = 42) {
  model::TransformerConfig cfg;
  cfg.batch = b;
  cfg.seq_len = s;
  cfg.hidden = h;
  cfg.heads = n;
  cfg.vocab = v;
  cfg.layers = layers;
  cfg.seed = seed;
  return cfg;
}

inline perfmodel::Workload to_workload(const model::TransformerConfig& cfg) {
  perfmodel::Workload w;
  w.b = cfg.batch;
  w.s = cfg.seq_len;
  w.h = cfg.hidden;
  w.n = cfg.heads;
  w.v = cfg.vocab;
  w.layers = cfg.layers;
  return w;
}

inline void print_header(const std::string& title) {
  std::cout << "\n==== " << title << " ====\n\n";
}

}  // namespace optimus::bench
