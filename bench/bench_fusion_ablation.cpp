// E10 — ablations of the paper's §6 / §3.2.3 extension methods, implemented
// in this repository beyond the headline system:
//
//   * fused attention (§6 "operation fusion"): the [b/q, n/q, s, s]
//     probabilities are never materialised — per-device peak memory drops,
//     backward recomputes them (extra bs²h/p multiplies);
//   * fused update (§3.2.3 method 2): parameters update immediately after
//     each layer's backward and the gradient buffer is shared — the
//     parameter-gradient footprint becomes one layer deep;
//   * Cannon's algorithm (§2.4) vs SUMMA: communication pattern comparison
//     (point-to-point shifts vs broadcasts) on the same product.

#include <cmath>
#include <iostream>
#include <mutex>

#include "bench_common.hpp"
#include "comm/cluster.hpp"
#include "core/optimus_model.hpp"
#include "mesh/mesh.hpp"
#include "summa/summa.hpp"
#include "tensor/distribution.hpp"
#include "util/table.hpp"

namespace {

namespace oc = optimus::comm;
namespace ocore = optimus::core;
namespace ort = optimus::runtime;
using optimus::bench::make_config;
using optimus::util::Table;

struct StepStats {
  std::uint64_t peak = 0;
  std::uint64_t mults = 0;
};

StepStats run_step(const optimus::model::TransformerConfig& cfg,
                   const ocore::OptimusOptions& opts, const ort::LmBatch& batch) {
  auto report = oc::run_cluster(4, [&](oc::Context& ctx) {
    optimus::mesh::Mesh2D mesh(ctx.world);
    ocore::OptimusTransformer<float> engine(cfg, mesh, opts);
    engine.forward(batch.tokens);
    (void)engine.lm_loss(batch.labels);
    if (opts.fused_update) {
      engine.backward_lm_fused_update(0.01);
    } else {
      engine.zero_grads();
      engine.backward_lm();
    }
  });
  return {report.max_peak_bytes(), report.ranks[0].mults};
}

}  // namespace

int main() {
  optimus::bench::print_header(
      "E10 — fusion ablations (Optimus q = 2, b = 8, s = 24, h = 32, N = 6)");
  const auto cfg = make_config(8, 24, 32, 4, 32, 6);
  ort::RandomLmWorkload workload(cfg.batch, cfg.seq_len, cfg.vocab, 21);
  const auto batch = workload.next();

  Table t({"variant", "peak bytes/device", "vs baseline", "mults/device", "mult overhead"});
  ocore::OptimusOptions base;
  const StepStats s0 = run_step(cfg, base, batch);
  const auto row = [&](const char* name, const StepStats& s) {
    t.add_row({name, std::to_string(s.peak),
               Table::fmt(static_cast<double>(s.peak) / s0.peak, 3), std::to_string(s.mults),
               Table::fmt(static_cast<double>(s.mults) / s0.mults, 3)});
  };
  row("baseline (§3.2.3 arenas)", s0);
  {
    ocore::OptimusOptions o = base;
    o.fuse_attention = true;
    row("+ fused attention (§6)", run_step(cfg, o, batch));
  }
  {
    ocore::OptimusOptions o = base;
    o.fused_update = true;
    row("+ fused update (§3.2.3-2)", run_step(cfg, o, batch));
  }
  {
    ocore::OptimusOptions o = base;
    o.fuse_attention = true;
    o.fused_update = true;
    row("+ both", run_step(cfg, o, batch));
  }
  t.print(std::cout);
  std::cout << "\nFused attention trades ~bs^2h/p recompute multiplies for the b*n*s^2/p\n"
               "probability tensor; fused update shrinks parameter-gradient memory from\n"
               "N layers to 1. Both preserve numerics bit-for-bit (tests/extensions_test).\n";

  optimus::bench::print_header("E10 — Cannon vs SUMMA on the same C = A*B (per device)");
  Table c({"q", "algorithm", "bcast calls", "bcast elems", "p2p msgs", "p2p bytes",
           "sim comm (s)"});
  for (int q : {2, 4}) {
    const optimus::tensor::index_t n = 24 * q;
    optimus::util::Rng rng(5);
    optimus::tensor::Tensor A(optimus::tensor::Shape{n, n});
    optimus::tensor::Tensor B(optimus::tensor::Shape{n, n});
    for (optimus::tensor::index_t i = 0; i < A.numel(); ++i) {
      A[i] = static_cast<float>(rng.uniform(-1, 1));
      B[i] = static_cast<float>(rng.uniform(-1, 1));
    }
    for (const bool cannon : {false, true}) {
      auto report = oc::run_cluster(q * q, [&](oc::Context& ctx) {
        optimus::mesh::Mesh2D mesh(ctx.world);
        auto a = optimus::tensor::matrix_block(A, q, mesh.row(), mesh.col());
        auto b = optimus::tensor::matrix_block(B, q, mesh.row(), mesh.col());
        optimus::tensor::Tensor out =
            optimus::tensor::Tensor::zeros(optimus::tensor::Shape{n / q, n / q});
        if (cannon) {
          optimus::summa::cannon_ab(mesh, a, b, out);
        } else {
          optimus::summa::summa_ab(mesh, a, b, out);
        }
      });
      const auto& st = report.ranks[0].stats;
      c.add_row({std::to_string(q), cannon ? "Cannon" : "SUMMA",
                 std::to_string(st.broadcast.calls), std::to_string(st.broadcast.elems),
                 std::to_string(st.p2p_messages), std::to_string(st.p2p_bytes),
                 Table::fmt(report.max_comm_time(), 6)});
    }
  }
  c.print(std::cout);
  std::cout << "\nCannon moves 2(q-1) block shifts per operand with no log factor but\n"
               "requires the torus alignment and equal block shapes; SUMMA's broadcasts\n"
               "generalise to the rectangular and transposed products training needs —\n"
               "the paper's reason for building Optimus on SUMMA.\n";
  return 0;
}
