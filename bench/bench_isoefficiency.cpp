// E5 — §3.1.2: isoefficiency functions.
//
// For a range of device counts, finds the smallest problem (hidden size h,
// with b ∝ h, s and N fixed — the paper's scaling assumption) at which each
// scheme sustains a target parallel efficiency, and reports the implied
// problem size W (total multiplications). The paper's claim:
//   Megatron  W ~ p³            (h must grow ∝ p)
//   Optimus   W ~ (√p · log p)³ (h must grow ∝ √p·log p)
// The measured growth exponents of h between successive p are printed next
// to the asymptotic references.

#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "perfmodel/scaling.hpp"
#include "util/table.hpp"

namespace {

namespace opm = optimus::perfmodel;
using optimus::util::Table;

}  // namespace

int main() {
  // §3.1.2's W ~ (√p·log p)³ follows from the paper's eq-4 tree broadcast
  // model, so this analysis disables the pipelined-collectives refinement
  // (with pipelining Optimus grows even slower: h ∝ √p, W ~ p^1.5).
  opm::Machine machine = opm::calibrate_from_paper();
  machine.pipelined_collectives = false;
  const double target = 0.5;

  optimus::bench::print_header("E5 — isoefficiency: minimum problem to hold E = 0.5");
  Table t({"GPUs", "Megatron h_min", "Optimus h_min", "Megatron W (mults)", "Optimus W"});
  std::vector<int> ps{16, 64, 256, 1024};
  std::vector<long long> hm, ho;
  for (int p : ps) {
    const auto h_meg = opm::isoefficiency_hidden(opm::Scheme::kMegatron, p, machine, target);
    const auto h_opt = opm::isoefficiency_hidden(opm::Scheme::kOptimus, p, machine, target);
    hm.push_back(h_meg);
    ho.push_back(h_opt);
    const auto W = [](long long h) {
      opm::Workload w;
      w.h = h;
      w.b = std::max<long long>(1, h / 512);
      w.s = 512;
      w.layers = 24;
      return opm::total_compute(w);
    };
    t.add_row({std::to_string(p), std::to_string(h_meg), std::to_string(h_opt),
               Table::fmt(W(h_meg), 0), Table::fmt(W(h_opt), 0)});
  }
  t.print(std::cout);

  optimus::bench::print_header("E5 — growth of required h per 4x devices (paper exponents)");
  Table g({"p -> 4p", "Megatron measured", "Megatron ref (=4)", "Optimus measured",
           "Optimus ref (2*log ratio)"});
  for (std::size_t i = 1; i < ps.size(); ++i) {
    const double ref_opt = 2.0 * std::log2(static_cast<double>(ps[i])) /
                           std::log2(static_cast<double>(ps[i - 1]));
    g.add_row({std::to_string(ps[i - 1]) + " -> " + std::to_string(ps[i]),
               Table::fmt(static_cast<double>(hm[i]) / hm[i - 1], 3), "4.000",
               Table::fmt(static_cast<double>(ho[i]) / ho[i - 1], 3),
               Table::fmt(ref_opt, 3)});
  }
  g.print(std::cout);

  optimus::bench::print_header("E5 — asymptotic reference W(p) (normalised to p = 16)");
  Table r({"GPUs", "p^3 (Megatron)", "(sqrt(p) log p)^3 (Optimus)"});
  const double m0 = opm::isoefficiency_reference(opm::Scheme::kMegatron, 16);
  const double o0 = opm::isoefficiency_reference(opm::Scheme::kOptimus, 16);
  for (int p : ps) {
    r.add_row({std::to_string(p),
               Table::fmt(opm::isoefficiency_reference(opm::Scheme::kMegatron, p) / m0, 1),
               Table::fmt(opm::isoefficiency_reference(opm::Scheme::kOptimus, p) / o0, 1)});
  }
  r.print(std::cout);
  std::cout << "\nOptimus sustains fixed efficiency with far slower problem growth; at\n"
               "p = 4096 (h cap 4.2M) Megatron can no longer reach E = 0.5 at all while\n"
               "Optimus still can (see perfmodel tests).\n";
  return 0;
}
