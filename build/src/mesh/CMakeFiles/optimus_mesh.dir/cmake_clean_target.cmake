file(REMOVE_RECURSE
  "liboptimus_mesh.a"
)
