file(REMOVE_RECURSE
  "CMakeFiles/optimus_mesh.dir/mesh.cpp.o"
  "CMakeFiles/optimus_mesh.dir/mesh.cpp.o.d"
  "liboptimus_mesh.a"
  "liboptimus_mesh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optimus_mesh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
