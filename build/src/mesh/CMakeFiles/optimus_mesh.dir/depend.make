# Empty dependencies file for optimus_mesh.
# This may be replaced when dependencies are built.
