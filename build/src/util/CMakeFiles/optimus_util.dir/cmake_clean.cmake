file(REMOVE_RECURSE
  "CMakeFiles/optimus_util.dir/cli.cpp.o"
  "CMakeFiles/optimus_util.dir/cli.cpp.o.d"
  "CMakeFiles/optimus_util.dir/logging.cpp.o"
  "CMakeFiles/optimus_util.dir/logging.cpp.o.d"
  "CMakeFiles/optimus_util.dir/rng.cpp.o"
  "CMakeFiles/optimus_util.dir/rng.cpp.o.d"
  "CMakeFiles/optimus_util.dir/table.cpp.o"
  "CMakeFiles/optimus_util.dir/table.cpp.o.d"
  "liboptimus_util.a"
  "liboptimus_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optimus_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
