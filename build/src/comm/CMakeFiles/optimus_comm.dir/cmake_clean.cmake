file(REMOVE_RECURSE
  "CMakeFiles/optimus_comm.dir/cluster.cpp.o"
  "CMakeFiles/optimus_comm.dir/cluster.cpp.o.d"
  "CMakeFiles/optimus_comm.dir/communicator.cpp.o"
  "CMakeFiles/optimus_comm.dir/communicator.cpp.o.d"
  "CMakeFiles/optimus_comm.dir/fabric.cpp.o"
  "CMakeFiles/optimus_comm.dir/fabric.cpp.o.d"
  "CMakeFiles/optimus_comm.dir/obs_report.cpp.o"
  "CMakeFiles/optimus_comm.dir/obs_report.cpp.o.d"
  "CMakeFiles/optimus_comm.dir/topology.cpp.o"
  "CMakeFiles/optimus_comm.dir/topology.cpp.o.d"
  "liboptimus_comm.a"
  "liboptimus_comm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optimus_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
