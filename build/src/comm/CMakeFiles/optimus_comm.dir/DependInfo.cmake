
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/comm/cluster.cpp" "src/comm/CMakeFiles/optimus_comm.dir/cluster.cpp.o" "gcc" "src/comm/CMakeFiles/optimus_comm.dir/cluster.cpp.o.d"
  "/root/repo/src/comm/communicator.cpp" "src/comm/CMakeFiles/optimus_comm.dir/communicator.cpp.o" "gcc" "src/comm/CMakeFiles/optimus_comm.dir/communicator.cpp.o.d"
  "/root/repo/src/comm/fabric.cpp" "src/comm/CMakeFiles/optimus_comm.dir/fabric.cpp.o" "gcc" "src/comm/CMakeFiles/optimus_comm.dir/fabric.cpp.o.d"
  "/root/repo/src/comm/obs_report.cpp" "src/comm/CMakeFiles/optimus_comm.dir/obs_report.cpp.o" "gcc" "src/comm/CMakeFiles/optimus_comm.dir/obs_report.cpp.o.d"
  "/root/repo/src/comm/topology.cpp" "src/comm/CMakeFiles/optimus_comm.dir/topology.cpp.o" "gcc" "src/comm/CMakeFiles/optimus_comm.dir/topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/optimus_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/obs/CMakeFiles/optimus_obs.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/optimus_util.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/optimus_kernel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
