# Empty compiler generated dependencies file for optimus_comm.
# This may be replaced when dependencies are built.
