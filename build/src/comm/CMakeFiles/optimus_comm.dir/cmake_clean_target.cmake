file(REMOVE_RECURSE
  "liboptimus_comm.a"
)
