# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("obs")
subdirs("kernel")
subdirs("tensor")
subdirs("comm")
subdirs("mesh")
subdirs("summa")
subdirs("model")
subdirs("megatron")
subdirs("core")
subdirs("runtime")
subdirs("perfmodel")
