file(REMOVE_RECURSE
  "liboptimus_obs.a"
)
