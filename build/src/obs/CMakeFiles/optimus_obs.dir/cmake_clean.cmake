file(REMOVE_RECURSE
  "CMakeFiles/optimus_obs.dir/json.cpp.o"
  "CMakeFiles/optimus_obs.dir/json.cpp.o.d"
  "CMakeFiles/optimus_obs.dir/trace.cpp.o"
  "CMakeFiles/optimus_obs.dir/trace.cpp.o.d"
  "liboptimus_obs.a"
  "liboptimus_obs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optimus_obs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
