# Empty dependencies file for optimus_obs.
# This may be replaced when dependencies are built.
