file(REMOVE_RECURSE
  "CMakeFiles/optimus_model.dir/attention.cpp.o"
  "CMakeFiles/optimus_model.dir/attention.cpp.o.d"
  "CMakeFiles/optimus_model.dir/moe.cpp.o"
  "CMakeFiles/optimus_model.dir/moe.cpp.o.d"
  "CMakeFiles/optimus_model.dir/serial_model.cpp.o"
  "CMakeFiles/optimus_model.dir/serial_model.cpp.o.d"
  "liboptimus_model.a"
  "liboptimus_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optimus_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
