# Empty compiler generated dependencies file for optimus_model.
# This may be replaced when dependencies are built.
