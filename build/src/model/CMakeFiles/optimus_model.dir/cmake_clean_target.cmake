file(REMOVE_RECURSE
  "liboptimus_model.a"
)
