file(REMOVE_RECURSE
  "CMakeFiles/optimus_perfmodel.dir/costs.cpp.o"
  "CMakeFiles/optimus_perfmodel.dir/costs.cpp.o.d"
  "CMakeFiles/optimus_perfmodel.dir/memory.cpp.o"
  "CMakeFiles/optimus_perfmodel.dir/memory.cpp.o.d"
  "CMakeFiles/optimus_perfmodel.dir/scaling.cpp.o"
  "CMakeFiles/optimus_perfmodel.dir/scaling.cpp.o.d"
  "CMakeFiles/optimus_perfmodel.dir/validation.cpp.o"
  "CMakeFiles/optimus_perfmodel.dir/validation.cpp.o.d"
  "liboptimus_perfmodel.a"
  "liboptimus_perfmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optimus_perfmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
