file(REMOVE_RECURSE
  "liboptimus_perfmodel.a"
)
