
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/perfmodel/costs.cpp" "src/perfmodel/CMakeFiles/optimus_perfmodel.dir/costs.cpp.o" "gcc" "src/perfmodel/CMakeFiles/optimus_perfmodel.dir/costs.cpp.o.d"
  "/root/repo/src/perfmodel/memory.cpp" "src/perfmodel/CMakeFiles/optimus_perfmodel.dir/memory.cpp.o" "gcc" "src/perfmodel/CMakeFiles/optimus_perfmodel.dir/memory.cpp.o.d"
  "/root/repo/src/perfmodel/scaling.cpp" "src/perfmodel/CMakeFiles/optimus_perfmodel.dir/scaling.cpp.o" "gcc" "src/perfmodel/CMakeFiles/optimus_perfmodel.dir/scaling.cpp.o.d"
  "/root/repo/src/perfmodel/validation.cpp" "src/perfmodel/CMakeFiles/optimus_perfmodel.dir/validation.cpp.o" "gcc" "src/perfmodel/CMakeFiles/optimus_perfmodel.dir/validation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/comm/CMakeFiles/optimus_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/optimus_util.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/optimus_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/optimus_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/obs/CMakeFiles/optimus_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
