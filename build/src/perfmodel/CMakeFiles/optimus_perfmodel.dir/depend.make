# Empty dependencies file for optimus_perfmodel.
# This may be replaced when dependencies are built.
