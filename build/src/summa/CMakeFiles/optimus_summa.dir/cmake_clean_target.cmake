file(REMOVE_RECURSE
  "liboptimus_summa.a"
)
