file(REMOVE_RECURSE
  "CMakeFiles/optimus_summa.dir/summa.cpp.o"
  "CMakeFiles/optimus_summa.dir/summa.cpp.o.d"
  "liboptimus_summa.a"
  "liboptimus_summa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optimus_summa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
