# Empty dependencies file for optimus_summa.
# This may be replaced when dependencies are built.
