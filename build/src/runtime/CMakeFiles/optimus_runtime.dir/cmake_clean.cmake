file(REMOVE_RECURSE
  "CMakeFiles/optimus_runtime.dir/checkpoint_io.cpp.o"
  "CMakeFiles/optimus_runtime.dir/checkpoint_io.cpp.o.d"
  "CMakeFiles/optimus_runtime.dir/data.cpp.o"
  "CMakeFiles/optimus_runtime.dir/data.cpp.o.d"
  "CMakeFiles/optimus_runtime.dir/optimizer.cpp.o"
  "CMakeFiles/optimus_runtime.dir/optimizer.cpp.o.d"
  "liboptimus_runtime.a"
  "liboptimus_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optimus_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
