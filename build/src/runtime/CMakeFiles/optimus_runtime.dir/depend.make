# Empty dependencies file for optimus_runtime.
# This may be replaced when dependencies are built.
