file(REMOVE_RECURSE
  "liboptimus_runtime.a"
)
