file(REMOVE_RECURSE
  "CMakeFiles/optimus_kernel.dir/gemm.cpp.o"
  "CMakeFiles/optimus_kernel.dir/gemm.cpp.o.d"
  "CMakeFiles/optimus_kernel.dir/thread_pool.cpp.o"
  "CMakeFiles/optimus_kernel.dir/thread_pool.cpp.o.d"
  "liboptimus_kernel.a"
  "liboptimus_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optimus_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
