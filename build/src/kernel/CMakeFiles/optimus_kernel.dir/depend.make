# Empty dependencies file for optimus_kernel.
# This may be replaced when dependencies are built.
