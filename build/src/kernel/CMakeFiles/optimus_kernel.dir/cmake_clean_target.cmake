file(REMOVE_RECURSE
  "liboptimus_kernel.a"
)
