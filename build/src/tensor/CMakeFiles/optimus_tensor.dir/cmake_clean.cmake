file(REMOVE_RECURSE
  "CMakeFiles/optimus_tensor.dir/device_context.cpp.o"
  "CMakeFiles/optimus_tensor.dir/device_context.cpp.o.d"
  "CMakeFiles/optimus_tensor.dir/distribution.cpp.o"
  "CMakeFiles/optimus_tensor.dir/distribution.cpp.o.d"
  "CMakeFiles/optimus_tensor.dir/ops.cpp.o"
  "CMakeFiles/optimus_tensor.dir/ops.cpp.o.d"
  "liboptimus_tensor.a"
  "liboptimus_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optimus_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
