# Empty compiler generated dependencies file for optimus_tensor.
# This may be replaced when dependencies are built.
