file(REMOVE_RECURSE
  "CMakeFiles/optimus_core.dir/layernorm2d.cpp.o"
  "CMakeFiles/optimus_core.dir/layernorm2d.cpp.o.d"
  "CMakeFiles/optimus_core.dir/optimus_model.cpp.o"
  "CMakeFiles/optimus_core.dir/optimus_model.cpp.o.d"
  "liboptimus_core.a"
  "liboptimus_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optimus_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
