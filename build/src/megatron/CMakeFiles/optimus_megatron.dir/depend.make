# Empty dependencies file for optimus_megatron.
# This may be replaced when dependencies are built.
