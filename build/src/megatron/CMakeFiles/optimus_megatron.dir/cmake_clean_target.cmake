file(REMOVE_RECURSE
  "liboptimus_megatron.a"
)
