file(REMOVE_RECURSE
  "CMakeFiles/optimus_megatron.dir/megatron_model.cpp.o"
  "CMakeFiles/optimus_megatron.dir/megatron_model.cpp.o.d"
  "liboptimus_megatron.a"
  "liboptimus_megatron.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optimus_megatron.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
