# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/kernel_test[1]_include.cmake")
include("/root/repo/build/tests/tensor_test[1]_include.cmake")
include("/root/repo/build/tests/ops_test[1]_include.cmake")
include("/root/repo/build/tests/distribution_test[1]_include.cmake")
include("/root/repo/build/tests/comm_test[1]_include.cmake")
include("/root/repo/build/tests/mesh_test[1]_include.cmake")
include("/root/repo/build/tests/summa_test[1]_include.cmake")
include("/root/repo/build/tests/serial_model_test[1]_include.cmake")
include("/root/repo/build/tests/megatron_test[1]_include.cmake")
include("/root/repo/build/tests/optimus_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_test[1]_include.cmake")
include("/root/repo/build/tests/perfmodel_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/moe_test[1]_include.cmake")
include("/root/repo/build/tests/edge_test[1]_include.cmake")
include("/root/repo/build/tests/hybrid_test[1]_include.cmake")
