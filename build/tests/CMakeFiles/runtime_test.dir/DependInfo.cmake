
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/runtime_test.cpp" "tests/CMakeFiles/runtime_test.dir/runtime_test.cpp.o" "gcc" "tests/CMakeFiles/runtime_test.dir/runtime_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runtime/CMakeFiles/optimus_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/perfmodel/CMakeFiles/optimus_perfmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/optimus_core.dir/DependInfo.cmake"
  "/root/repo/build/src/megatron/CMakeFiles/optimus_megatron.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/optimus_model.dir/DependInfo.cmake"
  "/root/repo/build/src/summa/CMakeFiles/optimus_summa.dir/DependInfo.cmake"
  "/root/repo/build/src/mesh/CMakeFiles/optimus_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/optimus_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/optimus_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/optimus_util.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/optimus_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/obs/CMakeFiles/optimus_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
