# Empty dependencies file for summa_test.
# This may be replaced when dependencies are built.
