file(REMOVE_RECURSE
  "CMakeFiles/summa_test.dir/summa_test.cpp.o"
  "CMakeFiles/summa_test.dir/summa_test.cpp.o.d"
  "summa_test"
  "summa_test.pdb"
  "summa_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/summa_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
