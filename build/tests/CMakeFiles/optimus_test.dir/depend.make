# Empty dependencies file for optimus_test.
# This may be replaced when dependencies are built.
