file(REMOVE_RECURSE
  "CMakeFiles/optimus_test.dir/optimus_test.cpp.o"
  "CMakeFiles/optimus_test.dir/optimus_test.cpp.o.d"
  "optimus_test"
  "optimus_test.pdb"
  "optimus_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optimus_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
