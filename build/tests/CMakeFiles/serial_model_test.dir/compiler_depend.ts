# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for serial_model_test.
