file(REMOVE_RECURSE
  "CMakeFiles/serial_model_test.dir/serial_model_test.cpp.o"
  "CMakeFiles/serial_model_test.dir/serial_model_test.cpp.o.d"
  "serial_model_test"
  "serial_model_test.pdb"
  "serial_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serial_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
