# Empty dependencies file for serial_model_test.
# This may be replaced when dependencies are built.
