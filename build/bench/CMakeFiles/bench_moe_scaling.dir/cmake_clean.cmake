file(REMOVE_RECURSE
  "CMakeFiles/bench_moe_scaling.dir/bench_moe_scaling.cpp.o"
  "CMakeFiles/bench_moe_scaling.dir/bench_moe_scaling.cpp.o.d"
  "bench_moe_scaling"
  "bench_moe_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_moe_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
