# Empty dependencies file for bench_moe_scaling.
# This may be replaced when dependencies are built.
