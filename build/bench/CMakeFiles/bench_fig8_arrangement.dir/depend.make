# Empty dependencies file for bench_fig8_arrangement.
# This may be replaced when dependencies are built.
