file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_arrangement.dir/bench_fig8_arrangement.cpp.o"
  "CMakeFiles/bench_fig8_arrangement.dir/bench_fig8_arrangement.cpp.o.d"
  "bench_fig8_arrangement"
  "bench_fig8_arrangement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_arrangement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
