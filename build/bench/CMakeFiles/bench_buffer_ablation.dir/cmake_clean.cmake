file(REMOVE_RECURSE
  "CMakeFiles/bench_buffer_ablation.dir/bench_buffer_ablation.cpp.o"
  "CMakeFiles/bench_buffer_ablation.dir/bench_buffer_ablation.cpp.o.d"
  "bench_buffer_ablation"
  "bench_buffer_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_buffer_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
