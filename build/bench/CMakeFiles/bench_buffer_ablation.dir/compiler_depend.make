# Empty compiler generated dependencies file for bench_buffer_ablation.
# This may be replaced when dependencies are built.
