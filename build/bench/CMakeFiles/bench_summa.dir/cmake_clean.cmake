file(REMOVE_RECURSE
  "CMakeFiles/bench_summa.dir/bench_summa.cpp.o"
  "CMakeFiles/bench_summa.dir/bench_summa.cpp.o.d"
  "bench_summa"
  "bench_summa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_summa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
