# Empty dependencies file for bench_summa.
# This may be replaced when dependencies are built.
