file(REMOVE_RECURSE
  "CMakeFiles/sequence_classification.dir/sequence_classification.cpp.o"
  "CMakeFiles/sequence_classification.dir/sequence_classification.cpp.o.d"
  "sequence_classification"
  "sequence_classification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sequence_classification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
