# Empty dependencies file for sequence_classification.
# This may be replaced when dependencies are built.
