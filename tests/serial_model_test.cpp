// Tests for the serial reference Transformer: shape invariants, determinism,
// and full finite-difference validation of every parameter gradient for both
// the language-model and classification branches.

#include <gtest/gtest.h>

#include "model/attention.hpp"
#include "model/serial_model.hpp"
#include "test_helpers.hpp"

namespace om = optimus::model;
namespace ot = optimus::tensor;
namespace ops = optimus::tensor::ops;
using ot::DTensor;
using ot::ITensor;
using ot::Shape;

namespace {

om::TransformerConfig tiny_config() {
  om::TransformerConfig cfg;
  cfg.batch = 2;
  cfg.seq_len = 5;
  cfg.hidden = 8;
  cfg.heads = 2;
  cfg.vocab = 11;
  cfg.layers = 2;
  cfg.num_classes = 3;
  cfg.seed = 99;
  return cfg;
}

ITensor random_tokens(const om::TransformerConfig& cfg, std::uint64_t seed) {
  optimus::util::Rng rng(seed);
  ITensor t(Shape{cfg.batch, cfg.seq_len});
  for (ot::index_t i = 0; i < t.numel(); ++i) {
    t[i] = static_cast<std::int32_t>(rng.uniform_index(cfg.vocab));
  }
  return t;
}

ITensor shifted_labels(const ITensor& tokens, const om::TransformerConfig& cfg) {
  // Next-token labels; the last position of each sequence is masked.
  ITensor labels(tokens.shape());
  for (ot::index_t b = 0; b < cfg.batch; ++b) {
    for (ot::index_t t = 0; t < cfg.seq_len; ++t) {
      labels.at(b, t) =
          t + 1 < cfg.seq_len ? tokens.at(b, t + 1) : static_cast<std::int32_t>(-1);
    }
  }
  return labels;
}

}  // namespace

TEST(AttentionCore, CausalMaskBlocksFutureTokens) {
  // With a causal mask, changing token t's QKV must not change outputs at
  // positions before t.
  const ot::index_t b = 1, s = 4, heads = 2, d = 3;
  optimus::util::Rng rng(1);
  DTensor qkv = optimus::testing::random_dtensor(Shape{b * s, heads * 3 * d}, rng);
  DTensor ctx1(Shape{b * s, heads * d}), probs1(Shape{b * heads, s, s});
  om::attention_forward(qkv, b, s, heads, d, /*causal=*/true, ctx1, probs1);

  DTensor qkv2 = qkv.clone();
  for (ot::index_t j = 0; j < heads * 3 * d; ++j) qkv2.at(3, j) += 10.0;  // perturb t=3
  DTensor ctx2(ctx1.shape()), probs2(probs1.shape());
  om::attention_forward(qkv2, b, s, heads, d, true, ctx2, probs2);
  for (ot::index_t t = 0; t < 3; ++t) {
    for (ot::index_t j = 0; j < heads * d; ++j) {
      EXPECT_DOUBLE_EQ(ctx1.at(t, j), ctx2.at(t, j)) << "leak at t=" << t;
    }
  }
  // And position 3 itself must change.
  double diff = 0;
  for (ot::index_t j = 0; j < heads * d; ++j) diff += std::abs(ctx1.at(3, j) - ctx2.at(3, j));
  EXPECT_GT(diff, 1e-6);
}

TEST(AttentionCore, ProbRowsSumToOne) {
  const ot::index_t b = 2, s = 5, heads = 3, d = 4;
  optimus::util::Rng rng(2);
  DTensor qkv = optimus::testing::random_dtensor(Shape{b * s, heads * 3 * d}, rng);
  DTensor ctx(Shape{b * s, heads * d}), probs(Shape{b * heads, s, s});
  om::attention_forward(qkv, b, s, heads, d, true, ctx, probs);
  for (ot::index_t r = 0; r < b * heads * s; ++r) {
    double sum = 0;
    for (ot::index_t c = 0; c < s; ++c) sum += probs[r * s + c];
    EXPECT_NEAR(sum, 1.0, 1e-12);
  }
}

TEST(AttentionCore, GradientMatchesFiniteDifference) {
  const ot::index_t b = 1, s = 3, heads = 2, d = 2;
  optimus::util::Rng rng(3);
  DTensor qkv = optimus::testing::random_dtensor(Shape{b * s, heads * 3 * d}, rng);
  DTensor dctx = optimus::testing::random_dtensor(Shape{b * s, heads * d}, rng);
  DTensor ctx(dctx.shape()), probs(Shape{b * heads, s, s});
  om::attention_forward(qkv, b, s, heads, d, true, ctx, probs);
  DTensor dqkv(qkv.shape());
  om::attention_backward(qkv, probs, dctx, b, s, heads, d, dqkv);
  auto loss = [&] {
    DTensor c(dctx.shape()), p(probs.shape());
    om::attention_forward(qkv, b, s, heads, d, true, c, p);
    double acc = 0;
    for (ot::index_t i = 0; i < c.numel(); ++i) acc += c[i] * dctx[i];
    return acc;
  };
  optimus::testing::check_gradient(qkv, loss, dqkv, 1e-6, 1e-6);
}

TEST(SerialModel, ForwardShapesAndDeterminism) {
  const auto cfg = tiny_config();
  om::SerialTransformer<double> model(cfg);
  ITensor tokens = random_tokens(cfg, 5);
  const DTensor& h1 = model.forward(tokens);
  EXPECT_EQ(h1.shape(), (Shape{cfg.tokens_per_batch(), cfg.hidden}));
  DTensor copy = h1.clone();
  om::SerialTransformer<double> model2(cfg);
  const DTensor& h2 = model2.forward(tokens);
  EXPECT_EQ(ops::max_abs_diff(copy, h2), 0.0);  // identical init → identical output
}

TEST(SerialModel, ParameterCountMatchesFormula) {
  const auto cfg = tiny_config();
  om::SerialTransformer<double> model(cfg);
  std::uint64_t total = 0;
  for (auto* p : model.parameters()) total += p->numel();
  EXPECT_EQ(total, cfg.parameter_count());
  EXPECT_EQ(model.parameters().size(), model.parameter_names().size());
  EXPECT_EQ(model.parameters().size(), model.gradients().size());
}

TEST(SerialModel, LmLossDecreasesAlongGradient) {
  const auto cfg = tiny_config();
  om::SerialTransformer<double> model(cfg);
  ITensor tokens = random_tokens(cfg, 6);
  ITensor labels = shifted_labels(tokens, cfg);
  model.forward(tokens);
  const double loss0 = model.lm_loss(labels);
  model.backward_lm();
  // One small SGD step on all parameters.
  auto params = model.parameters();
  auto grads = model.gradients();
  for (std::size_t i = 0; i < params.size(); ++i) {
    ops::axpy_(*params[i], -0.05, *grads[i]);
  }
  model.forward(tokens);
  const double loss1 = model.lm_loss(labels);
  EXPECT_LT(loss1, loss0);
}

TEST(SerialModel, MaskedLabelsDoNotContribute) {
  const auto cfg = tiny_config();
  om::SerialTransformer<double> model(cfg);
  ITensor tokens = random_tokens(cfg, 7);
  ITensor all_masked(tokens.shape());
  all_masked.fill(-1);
  model.forward(tokens);
  EXPECT_DOUBLE_EQ(model.lm_loss(all_masked), 0.0);
}

TEST(SerialModel, LmGradientsMatchFiniteDifference) {
  // Full end-to-end gradient check of every parameter tensor through
  // embedding, two transformer layers, final LN and the tied lm-head.
  om::TransformerConfig cfg = tiny_config();
  cfg.batch = 1;
  cfg.seq_len = 3;
  cfg.hidden = 6;
  cfg.heads = 2;
  cfg.vocab = 7;
  cfg.layers = 1;
  om::SerialTransformer<double> model(cfg);
  ITensor tokens = random_tokens(cfg, 8);
  ITensor labels = shifted_labels(tokens, cfg);

  model.forward(tokens);
  (void)model.lm_loss(labels);
  model.zero_grads();
  model.backward_lm();

  auto params = model.parameters();
  auto grads = model.gradients();
  auto names = model.parameter_names();
  auto loss = [&] {
    model.forward(tokens);
    return model.lm_loss(labels);
  };
  for (std::size_t i = 0; i < params.size(); ++i) {
    SCOPED_TRACE(names[i]);
    optimus::testing::check_gradient(*params[i], loss, *grads[i], 1e-5, 2e-5);
  }
}

TEST(SerialModel, ClsGradientsMatchFiniteDifference) {
  om::TransformerConfig cfg = tiny_config();
  cfg.batch = 2;
  cfg.seq_len = 3;
  cfg.hidden = 6;
  cfg.heads = 2;
  cfg.vocab = 7;
  cfg.layers = 1;
  cfg.num_classes = 3;
  om::SerialTransformer<double> model(cfg);
  ITensor tokens = random_tokens(cfg, 9);
  ITensor labels = ITensor::from_vector(Shape{2}, {1, 2});

  model.forward(tokens);
  (void)model.cls_loss(labels);
  model.zero_grads();
  model.backward_cls();

  auto params = model.parameters();
  auto grads = model.gradients();
  auto names = model.parameter_names();
  auto loss = [&] {
    model.forward(tokens);
    return model.cls_loss(labels);
  };
  for (std::size_t i = 0; i < params.size(); ++i) {
    SCOPED_TRACE(names[i]);
    optimus::testing::check_gradient(*params[i], loss, *grads[i], 1e-5, 2e-5);
  }
}

TEST(SerialModel, GradAccumulationIsAdditive) {
  const auto cfg = tiny_config();
  om::SerialTransformer<double> model(cfg);
  ITensor tokens = random_tokens(cfg, 10);
  ITensor labels = shifted_labels(tokens, cfg);

  model.forward(tokens);
  (void)model.lm_loss(labels);
  model.zero_grads();
  model.backward_lm();
  DTensor once = model.layer_grad(0).qkv_w.clone();

  model.forward(tokens);
  (void)model.lm_loss(labels);
  model.backward_lm();  // second accumulation, no zero in between
  DTensor twice = model.layer_grad(0).qkv_w;
  for (ot::index_t i = 0; i < once.numel(); ++i) EXPECT_NEAR(twice[i], 2 * once[i], 1e-12);
}

TEST(SerialModel, FloatAndDoubleAgreeLoosely) {
  const auto cfg = tiny_config();
  om::SerialTransformer<double> dmodel(cfg);
  om::SerialTransformer<float> fmodel(cfg);
  ITensor tokens = random_tokens(cfg, 11);
  ITensor labels = shifted_labels(tokens, cfg);
  dmodel.forward(tokens);
  fmodel.forward(tokens);
  const double dl = dmodel.lm_loss(labels);
  const float fl = fmodel.lm_loss(labels);
  EXPECT_NEAR(dl, static_cast<double>(fl), 1e-4 * std::max(1.0, std::abs(dl)));
}

TEST(SerialModel, ClsLogitsShape) {
  const auto cfg = tiny_config();
  om::SerialTransformer<double> model(cfg);
  model.forward(random_tokens(cfg, 12));
  DTensor logits = model.cls_logits();
  EXPECT_EQ(logits.shape(), (Shape{cfg.batch, cfg.num_classes}));
}
