#pragma once

// Shared helpers for the test suite: finite-difference gradient checking and
// random tensor construction in double precision.

#include <cmath>
#include <functional>

#include <gtest/gtest.h>

#include "tensor/ops.hpp"
#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace optimus::testing {

inline tensor::DTensor random_dtensor(tensor::Shape shape, util::Rng& rng, double scale = 1.0) {
  tensor::DTensor t(shape);
  for (tensor::index_t i = 0; i < t.numel(); ++i) {
    t[i] = rng.uniform(-scale, scale);
  }
  return t;
}

inline tensor::Tensor random_tensor(tensor::Shape shape, util::Rng& rng, float scale = 1.0f) {
  tensor::Tensor t(shape);
  for (tensor::index_t i = 0; i < t.numel(); ++i) {
    t[i] = static_cast<float>(rng.uniform(-scale, scale));
  }
  return t;
}

/// Central-difference gradient of a scalar-valued function with respect to
/// `x`, compared against `analytic`. `f` must not retain state across calls.
inline void check_gradient(tensor::DTensor& x,
                           const std::function<double()>& f,
                           const tensor::DTensor& analytic, double eps = 1e-5,
                           double tol = 1e-6) {
  ASSERT_EQ(x.numel(), analytic.numel());
  for (tensor::index_t i = 0; i < x.numel(); ++i) {
    const double saved = x[i];
    x[i] = saved + eps;
    const double up = f();
    x[i] = saved - eps;
    const double down = f();
    x[i] = saved;
    const double numeric = (up - down) / (2 * eps);
    const double scale = std::max({1.0, std::abs(numeric), std::abs(analytic[i])});
    EXPECT_NEAR(numeric, analytic[i], tol * scale)
        << "gradient mismatch at flat index " << i;
  }
}

}  // namespace optimus::testing
