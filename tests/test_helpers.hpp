#pragma once

// Shared helpers for the test suite: the central test seed, finite-difference
// gradient checking, and random tensor construction in double precision.

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <functional>

#include <gtest/gtest.h>

#include "tensor/ops.hpp"
#include "tensor/tensor.hpp"
#include "util/rng.hpp"

/// Registers the seed with gtest so every assertion failure in scope prints
/// the exact environment override that reproduces the run.
#define OPTIMUS_SEED_TRACE(seed) \
  SCOPED_TRACE(::testing::Message() << "rerun with OPTIMUS_TEST_SEED=" << (seed))

namespace optimus::testing {

/// Central seed for randomized tests: the OPTIMUS_TEST_SEED environment
/// variable when set, else `fallback`. Pair with OPTIMUS_SEED_TRACE so
/// failures name the seed that reproduces them.
inline std::uint64_t test_seed(std::uint64_t fallback = 0x5EEDull) {
  if (const char* env = std::getenv("OPTIMUS_TEST_SEED")) {
    return std::strtoull(env, nullptr, 10);
  }
  return fallback;
}

inline tensor::DTensor random_dtensor(tensor::Shape shape, util::Rng& rng, double scale = 1.0) {
  tensor::DTensor t(shape);
  for (tensor::index_t i = 0; i < t.numel(); ++i) {
    t[i] = rng.uniform(-scale, scale);
  }
  return t;
}

inline tensor::Tensor random_tensor(tensor::Shape shape, util::Rng& rng, float scale = 1.0f) {
  tensor::Tensor t(shape);
  for (tensor::index_t i = 0; i < t.numel(); ++i) {
    t[i] = static_cast<float>(rng.uniform(-scale, scale));
  }
  return t;
}

/// Central-difference gradient of a scalar-valued function with respect to
/// `x`, compared against `analytic`. `f` must not retain state across calls.
inline void check_gradient(tensor::DTensor& x,
                           const std::function<double()>& f,
                           const tensor::DTensor& analytic, double eps = 1e-5,
                           double tol = 1e-6) {
  ASSERT_EQ(x.numel(), analytic.numel());
  for (tensor::index_t i = 0; i < x.numel(); ++i) {
    const double saved = x[i];
    x[i] = saved + eps;
    const double up = f();
    x[i] = saved - eps;
    const double down = f();
    x[i] = saved;
    const double numeric = (up - down) / (2 * eps);
    const double scale = std::max({1.0, std::abs(numeric), std::abs(analytic[i])});
    EXPECT_NEAR(numeric, analytic[i], tol * scale)
        << "gradient mismatch at flat index " << i;
  }
}

}  // namespace optimus::testing
