// Deterministic fault injection through the simulated fabric.
//
// The contract under test (comm/fabric.hpp): injected faults must never
// change the math and never hang. Latency spikes and a stalling rank perturb
// thread interleavings only — collectives and whole training steps must stay
// *bitwise* identical. Poisoned payloads must surface as a loud FaultError
// naming the collective in flight, never as silent divergence or a deadlock.
// Every test runs under a watchdog so a wedged collective aborts the suite
// with a diagnosis instead of timing out CI.

#include <gtest/gtest.h>

#include <chrono>
#include <fstream>
#include <mutex>
#include <sstream>
#include <string>
#include <vector>

#include "comm/cluster.hpp"
#include "comm/fabric.hpp"
#include "mesh/mesh.hpp"
#include "obs/flight.hpp"
#include "summa/summa.hpp"
#include "tensor/distribution.hpp"
#include "test_helpers.hpp"
#include "testing/equivalence.hpp"
#include "testing/fuzz_config.hpp"
#include "testing/watchdog.hpp"

namespace oc = optimus::comm;
namespace ots = optimus::testing;

namespace {

/// Per-rank result of an allreduce + barrier round, optionally faulted.
std::vector<std::vector<double>> allreduce_results(int world, const oc::FaultPlan* plan) {
  std::vector<std::vector<double>> out(world);
  std::mutex mu;
  const auto body = [&](oc::Context& ctx) {
    std::vector<double> data(17);
    for (std::size_t i = 0; i < data.size(); ++i) {
      data[i] = (ctx.rank + 1) * 0.5 + static_cast<double>(i) * 0.25;
    }
    ctx.world.all_reduce(data.data(), static_cast<optimus::tensor::index_t>(data.size()));
    ctx.world.barrier();
    std::lock_guard<std::mutex> lock(mu);
    out[ctx.rank] = data;
  };
  if (plan) {
    oc::run_cluster(world, *plan, body);
  } else {
    oc::run_cluster(world, body);
  }
  return out;
}

}  // namespace

TEST(Fault, LatencySpikesLeaveCollectivesBitwiseUnchanged) {
  ots::Watchdog wd("fault spike test", std::chrono::seconds(120));
  const std::uint64_t seed = ots::test_seed(99);
  OPTIMUS_SEED_TRACE(seed);

  const auto base = allreduce_results(4, nullptr);
  oc::FaultPlan plan;
  plan.seed = seed;
  plan.spike_prob = 0.5;
  plan.spike_us = 200;
  EXPECT_EQ(base, allreduce_results(4, &plan));
}

TEST(Fault, StallingRankDoesNotDeadlockOrDiverge) {
  ots::Watchdog wd("fault stall test", std::chrono::seconds(120));
  const std::uint64_t seed = ots::test_seed(100);
  OPTIMUS_SEED_TRACE(seed);

  const auto base = allreduce_results(4, nullptr);
  oc::FaultPlan plan;
  plan.seed = seed;
  plan.stall_rank = 2;  // straggler model: one rank's receives lag
  plan.stall_prob = 0.5;
  plan.stall_us = 300;
  EXPECT_EQ(base, allreduce_results(4, &plan));
}

TEST(Fault, PoisonedPayloadFailsLoudlyNamingTheOp) {
  ots::Watchdog wd("fault poison test", std::chrono::seconds(120));
  oc::FaultPlan plan;
  plan.seed = 7;
  plan.poison_prob = 1.0;
  try {
    allreduce_results(4, &plan);
    FAIL() << "poisoned collective completed silently";
  } catch (const oc::FaultError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("poisoned payload"), std::string::npos) << what;
    EXPECT_NE(what.find("allreduce"), std::string::npos)
        << "diagnostic does not name the op: " << what;
  }
}

TEST(Fault, PoisonDiagnosticIsDeterministic) {
  ots::Watchdog wd("fault determinism test", std::chrono::seconds(120));
  // A single point-to-point message so exactly one poison site exists: the
  // seeded draws and the resulting diagnostic must replay identically.
  oc::FaultPlan plan;
  plan.seed = ots::test_seed(41);
  OPTIMUS_SEED_TRACE(plan.seed);
  plan.poison_prob = 1.0;
  const auto poison_what = [&]() -> std::string {
    try {
      oc::run_cluster(2, plan, [](oc::Context& ctx) {
        std::vector<double> v(9, 1.5);
        if (ctx.rank == 0) {
          ctx.world.send(1, /*tag=*/0, v.data(), 9);
        } else {
          ctx.world.recv(0, /*tag=*/0, v.data(), 9);
        }
      });
      return "";
    } catch (const oc::FaultError& e) {
      return e.what();
    }
  };
  const std::string first = poison_what();
  ASSERT_NE(first.find("poisoned payload"), std::string::npos) << "what: " << first;
  EXPECT_EQ(first, poison_what());
}

TEST(Fault, PoisonedCollectiveLeavesPostmortemOnEveryRank) {
  ots::Watchdog wd("fault postmortem test", std::chrono::seconds(120));
  namespace ob = optimus::obs;
  struct FlightGuard {
    ~FlightGuard() {
      ob::set_flight_enabled(false);
      ob::flight_reset();
      ob::flight_set_postmortem_prefix("");
    }
  } guard;

  oc::FaultPlan plan;
  plan.seed = 7;
  plan.poison_prob = 1.0;  // every rank poisons its own first receive
  const auto slurp = [](const std::string& path) -> std::string {
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << "missing post-mortem dump " << path;
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
  };
  const auto run_dumping = [&](const std::string& prefix) {
    ob::flight_reset();
    ob::set_flight_enabled(true);
    ob::flight_set_postmortem_prefix(prefix);
    try {
      allreduce_results(4, &plan);
      ADD_FAILURE() << "poisoned collective completed silently";
    } catch (const oc::FaultError&) {
    } catch (const oc::FabricAborted&) {
    }
  };

  const std::string prefix_a = ::testing::TempDir() + "postmortem_a";
  run_dumping(prefix_a);
  for (int r = 0; r < 4; ++r) {
    const std::string path = prefix_a + ".rank" + std::to_string(r) + ".json";
    const ob::Json dump = ob::Json::parse(slurp(path));
    EXPECT_EQ(dump.get("rank").as_number(), static_cast<double>(r)) << path;
    // The op each rank was inside when it threw is deterministic and must be
    // named — here every rank dies inside the poisoned allreduce.
    EXPECT_EQ(dump.get("abort_op").as_string(), "allreduce") << path;
    EXPECT_GT(dump.get("events_seen").as_number(), 0.0) << path;
    ASSERT_FALSE(dump.get("events").items().empty()) << path;
    bool named = false;
    for (const auto& e : dump.get("events").items()) {
      named = named || e.get("name").as_string() == "allreduce";
    }
    EXPECT_TRUE(named) << path << " ring never mentions the aborting op";
  }

  // Same seed, fresh run: each rank's dump must be byte-identical (the ring
  // holds only sim timestamps and this rank's own deterministic notes).
  const std::string prefix_b = ::testing::TempDir() + "postmortem_b";
  run_dumping(prefix_b);
  for (int r = 0; r < 4; ++r) {
    const std::string suffix = ".rank" + std::to_string(r) + ".json";
    EXPECT_EQ(slurp(prefix_a + suffix), slurp(prefix_b + suffix))
        << "rank " << r << " dump differs across identical runs";
  }
}

TEST(Fault, OptimusTrainingStepBitwiseUnderLatencyFaults) {
  ots::Watchdog wd("fault training-step test", std::chrono::seconds(120));
  // A fixed q=2 config run through the full differential harness with the
  // fault-replay stage on: the replay requires bitwise-identical hidden
  // states, losses and gradients under spikes + a straggler.
  const ots::FuzzConfig fc = ots::FuzzConfig::parse(
      "q=2,mp=1,b=2,s=3,heads=2,hd=3,v=12,layers=2,mlp=2,dtype=f64,threads=2,"
      "ckpt2d=1,ckpt1d=1,buf=pool,lr=0.05,pseed=2024,dseed=11");
  ots::EquivalenceOptions opts;
  opts.run_megatron = false;
  opts.fault_replay = true;
  const ots::EquivalenceResult res = ots::run_equivalence(fc, opts);
  EXPECT_TRUE(res.pass()) << ots::summarize(res);
  EXPECT_TRUE(res.fault_replay_ran);
  EXPECT_TRUE(res.fault_replay_ok);
}

TEST(Fault, PoisonedAsyncPanelAbortsPipelinedSummaCleanly) {
  ots::Watchdog wd("fault async poison test", std::chrono::seconds(120));
  // Poison an in-flight panel broadcast of the pipelined SUMMA schedule: the
  // consuming wait must abort the whole fabric with a FaultError naming the
  // async op — no deadlock (ranks blocked in irecv unwind via FabricAborted),
  // no silent corruption.
  oc::FaultPlan plan;
  plan.seed = ots::test_seed(55);
  OPTIMUS_SEED_TRACE(plan.seed);
  plan.poison_prob = 1.0;
  try {
    oc::run_cluster(4, plan, [](oc::Context& ctx) {
      optimus::summa::PipelineGuard guard(true);
      optimus::mesh::Mesh2D mesh(ctx.world);
      using DTensor = optimus::tensor::DTensor;
      using Shape = optimus::tensor::Shape;
      DTensor A = DTensor::zeros(Shape{6, 6});
      DTensor B = DTensor::zeros(Shape{6, 6});
      DTensor C = DTensor::zeros(Shape{6, 6});
      optimus::summa::summa_ab(mesh, A, B, C);
    });
    FAIL() << "poisoned pipelined SUMMA completed silently";
  } catch (const oc::FaultError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("poisoned payload"), std::string::npos) << what;
    EXPECT_NE(what.find("ibroadcast"), std::string::npos)
        << "diagnostic does not name the async op: " << what;
  }
}

TEST(Fault, PoisonedDepthReduceAbortsCleanlyNamingTheOp) {
  ots::Watchdog wd("fault depth poison test", std::chrono::seconds(120));
  // On a 1×1×2 mesh the only payload transfers in a 2.5D product are the
  // depth fold's tree reduce and the replica broadcast of C. Poisoning the
  // first receive must abort the fabric with a FaultError naming the depth
  // reduce — every rank unwinds (watchdog proves no deadlock), nothing is
  // silently wrong.
  oc::FaultPlan plan;
  plan.seed = ots::test_seed(57);
  OPTIMUS_SEED_TRACE(plan.seed);
  plan.poison_prob = 1.0;
  try {
    oc::run_cluster(2, plan, [](oc::Context& ctx) {
      optimus::mesh::Mesh2D mesh(ctx.world, /*depth=*/2);
      using DTensor = optimus::tensor::DTensor;
      using Shape = optimus::tensor::Shape;
      DTensor A = DTensor::zeros(Shape{4, 6});
      DTensor B = DTensor::zeros(Shape{6, 4});
      DTensor C = DTensor::zeros(Shape{4, 4});
      optimus::summa::summa_ab(mesh, A, B, C);
    });
    FAIL() << "poisoned 2.5D SUMMA completed silently";
  } catch (const oc::FaultError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("poisoned payload"), std::string::npos) << what;
    EXPECT_NE(what.find("ireduce"), std::string::npos)
        << "diagnostic does not name the depth reduce: " << what;
  }
}

TEST(Fault, PoisonedDepthReduceLeavesDeterministicPostmortems) {
  ots::Watchdog wd("fault depth postmortem test", std::chrono::seconds(120));
  namespace ob = optimus::obs;
  struct FlightGuard {
    ~FlightGuard() {
      ob::set_flight_enabled(false);
      ob::flight_reset();
      ob::flight_set_postmortem_prefix("");
    }
  } guard;

  oc::FaultPlan plan;
  plan.seed = 13;
  plan.poison_prob = 1.0;
  const auto slurp = [](const std::string& path) -> std::string {
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << "missing post-mortem dump " << path;
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
  };
  const auto run_dumping = [&](const std::string& prefix) {
    ob::flight_reset();
    ob::set_flight_enabled(true);
    ob::flight_set_postmortem_prefix(prefix);
    try {
      oc::run_cluster(2, plan, [](oc::Context& ctx) {
        optimus::mesh::Mesh2D mesh(ctx.world, /*depth=*/2);
        using DTensor = optimus::tensor::DTensor;
        using Shape = optimus::tensor::Shape;
        DTensor A = DTensor::zeros(Shape{4, 6});
        DTensor B = DTensor::zeros(Shape{6, 4});
        DTensor C = DTensor::zeros(Shape{4, 4});
        optimus::summa::summa_ab(mesh, A, B, C);
      });
      ADD_FAILURE() << "poisoned 2.5D SUMMA completed silently";
    } catch (const oc::FaultError&) {
    } catch (const oc::FabricAborted&) {
    }
  };

  const std::string prefix_a = ::testing::TempDir() + "postmortem_depth_a";
  run_dumping(prefix_a);
  // Rank 0 is the depth-fold root: its first (and only) receive is the
  // poisoned tree-reduce leg, which the issue-then-wait collective surfaces
  // at the wait — the dump must blame the depth reduce.
  const ob::Json dump0 = ob::Json::parse(slurp(prefix_a + ".rank0.json"));
  EXPECT_EQ(dump0.get("rank").as_number(), 0.0);
  EXPECT_EQ(dump0.get("abort_op").as_string(), "ireduce.wait");
  EXPECT_GT(dump0.get("events_seen").as_number(), 0.0);

  // Same seed, fresh run: each rank's dump must replay byte-identically.
  const std::string prefix_b = ::testing::TempDir() + "postmortem_depth_b";
  run_dumping(prefix_b);
  for (int r = 0; r < 2; ++r) {
    const std::string suffix = ".rank" + std::to_string(r) + ".json";
    EXPECT_EQ(slurp(prefix_a + suffix), slurp(prefix_b + suffix))
        << "rank " << r << " dump differs across identical runs";
  }
}

TEST(Fault, LatencyFaultsLeave25dSummaBitwise) {
  ots::Watchdog wd("fault 2.5d latency test", std::chrono::seconds(120));
  // Spikes plus a straggler on a 2×2×2 mesh perturb arrival order of the
  // sub-panel broadcasts and the depth fold; FIFO matching per (src, tag)
  // must keep every rank's result — all depth replicas included — bitwise
  // identical to the fault-free run, under both schedules.
  const std::uint64_t seed = ots::test_seed(58);
  OPTIMUS_SEED_TRACE(seed);
  using DTensor = optimus::tensor::DTensor;
  using Shape = optimus::tensor::Shape;
  const int q = 2, d = 2;
  const auto run_faulted = [&](const oc::FaultPlan* plan, bool pipelined) {
    std::vector<std::vector<double>> out(q * q * d);
    std::mutex mu;
    const auto body = [&](oc::Context& ctx) {
      optimus::summa::PipelineGuard guard(pipelined);
      optimus::mesh::Mesh2D mesh(ctx.world, d);
      // Seed by mesh cell so depth replicas hold identical blocks, as the
      // 2.5D contract requires.
      optimus::util::Rng rng(800 + mesh.row() * q + mesh.col());
      DTensor A(Shape{4, 6}), B(Shape{6, 4}), C(Shape{4, 4});
      for (optimus::tensor::index_t i = 0; i < A.numel(); ++i) A[i] = rng.uniform(-1, 1);
      for (optimus::tensor::index_t i = 0; i < B.numel(); ++i) B[i] = rng.uniform(-1, 1);
      C.zero();
      optimus::summa::summa_ab(mesh, A, B, C);
      std::vector<double> mine(C.numel());
      for (optimus::tensor::index_t i = 0; i < C.numel(); ++i) mine[i] = C[i];
      std::lock_guard<std::mutex> lock(mu);
      out[ctx.rank] = std::move(mine);
    };
    if (plan) {
      oc::run_cluster(q * q * d, *plan, body);
    } else {
      oc::run_cluster(q * q * d, body);
    }
    return out;
  };
  oc::FaultPlan plan;
  plan.seed = seed;
  plan.spike_prob = 0.5;
  plan.spike_us = 200;
  plan.stall_rank = 5;  // a straggler inside depth layer 1
  plan.stall_prob = 0.5;
  plan.stall_us = 300;
  for (const bool pipelined : {false, true}) {
    const auto base = run_faulted(nullptr, pipelined);
    EXPECT_EQ(base, run_faulted(&plan, pipelined))
        << (pipelined ? "pipelined" : "blocking") << " schedule diverged under faults";
  }
}

TEST(Fault, LatencyFaultsLeavePipelinedSummaBitwise) {
  ots::Watchdog wd("fault async latency test", std::chrono::seconds(120));
  // Spikes and a straggler perturb arrival order of the async panels and
  // reduces; FIFO matching per (src, tag) must keep the pipelined result
  // bitwise identical anyway — for the broadcast forms and the reduce forms.
  const std::uint64_t seed = ots::test_seed(56);
  OPTIMUS_SEED_TRACE(seed);
  using DTensor = optimus::tensor::DTensor;
  using Shape = optimus::tensor::Shape;
  const int q = 2;
  const auto run_faulted = [&](const oc::FaultPlan* plan) {
    DTensor C_global = DTensor::zeros(Shape{12, 8});  // gathered D blocks [6, 4]
    std::mutex mu;
    const auto body = [&](oc::Context& ctx) {
      optimus::summa::PipelineGuard guard(true);
      optimus::mesh::Mesh2D mesh(ctx.world);
      optimus::util::Rng rng(700 + ctx.rank);
      DTensor A(Shape{4, 6}), B(Shape{6, 4}), C(Shape{4, 4}), D(Shape{6, 4});
      for (optimus::tensor::index_t i = 0; i < A.numel(); ++i) A[i] = rng.uniform(-1, 1);
      for (optimus::tensor::index_t i = 0; i < B.numel(); ++i) B[i] = rng.uniform(-1, 1);
      C.zero();
      D.zero();
      optimus::summa::summa_ab(mesh, A, B, C);     // async broadcasts
      optimus::summa::summa_atb(mesh, A, C, D);    // async broadcasts + reduces
      std::lock_guard<std::mutex> lock(mu);
      optimus::tensor::set_matrix_block(C_global, q, mesh.row(), mesh.col(), D);
    };
    if (plan) {
      oc::run_cluster(q * q, *plan, body);
    } else {
      oc::run_cluster(q * q, body);
    }
    return C_global;
  };
  const DTensor base = run_faulted(nullptr);
  oc::FaultPlan plan;
  plan.seed = seed;
  plan.spike_prob = 0.5;
  plan.spike_us = 200;
  plan.stall_rank = 1;
  plan.stall_prob = 0.5;
  plan.stall_us = 300;
  const DTensor faulted = run_faulted(&plan);
  for (optimus::tensor::index_t i = 0; i < base.numel(); ++i) {
    ASSERT_EQ(faulted[i], base[i]) << "diverged at " << i;
  }
}
