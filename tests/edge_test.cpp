// Edge cases and property sweeps across the stack: the gather/scatter
// collectives, nested communicator splits, odd model shapes through the full
// Optimus-vs-serial equivalence, arena stack discipline, and configuration
// validation failure paths.

#include <gtest/gtest.h>

#include <mutex>

#include "comm/cluster.hpp"
#include "core/optimus_model.hpp"
#include "megatron/megatron_model.hpp"
#include "mesh/mesh.hpp"
#include "model/serial_model.hpp"
#include "tensor/arena.hpp"
#include "tensor/distribution.hpp"
#include "test_helpers.hpp"

namespace oc = optimus::comm;
namespace om = optimus::model;
namespace ot = optimus::tensor;
namespace ops = optimus::tensor::ops;
using ot::DTensor;
using ot::ITensor;
using ot::Shape;

// ---------------------------------------------------------------------------
// gather / scatter
// ---------------------------------------------------------------------------

namespace {

class RootedCollectiveSweep : public ::testing::TestWithParam<int> {};

}  // namespace

TEST_P(RootedCollectiveSweep, GatherCollectsInRankOrder) {
  const int p = GetParam();
  const int root = p - 1;
  oc::run_cluster(p, [&](oc::Context& ctx) {
    std::vector<double> mine{ctx.rank + 0.5, ctx.rank + 0.25};
    std::vector<double> out(static_cast<std::size_t>(2 * p), -1);
    ctx.world.gather(mine.data(), 2, out.data(), root);
    if (ctx.rank == root) {
      for (int r = 0; r < p; ++r) {
        ASSERT_DOUBLE_EQ(out[2 * r], r + 0.5);
        ASSERT_DOUBLE_EQ(out[2 * r + 1], r + 0.25);
      }
    }
  });
}

TEST_P(RootedCollectiveSweep, ScatterDistributesChunks) {
  const int p = GetParam();
  oc::run_cluster(p, [&](oc::Context& ctx) {
    std::vector<double> data;
    if (ctx.rank == 0) {
      for (int r = 0; r < p; ++r) data.push_back(100.0 + r);
    } else {
      data.resize(static_cast<std::size_t>(p));  // ignored away from root
    }
    double out = -1;
    ctx.world.scatter(data.data(), 1, &out, /*root=*/0);
    ASSERT_DOUBLE_EQ(out, 100.0 + ctx.rank);
  });
}

TEST_P(RootedCollectiveSweep, GatherThenScatterRoundTrips) {
  const int p = GetParam();
  oc::run_cluster(p, [&](oc::Context& ctx) {
    double v = 7.0 * ctx.rank;
    std::vector<double> all(static_cast<std::size_t>(p));
    ctx.world.gather(&v, 1, all.data(), 0);
    double back = -1;
    ctx.world.scatter(all.data(), 1, &back, 0);
    ASSERT_DOUBLE_EQ(back, v);
  });
}

INSTANTIATE_TEST_SUITE_P(GroupSizes, RootedCollectiveSweep, ::testing::Values(1, 2, 3, 5));

// ---------------------------------------------------------------------------
// Communicator composition
// ---------------------------------------------------------------------------

TEST(CommComposition, SplitOfSplitFormsQuadrants) {
  oc::run_cluster(8, [](oc::Context& ctx) {
    auto half = ctx.world.split(ctx.rank / 4, ctx.rank);   // {0..3}, {4..7}
    auto quad = half.split(half.rank() / 2, half.rank());  // pairs
    ASSERT_EQ(quad.size(), 2);
    double v = ctx.rank;
    quad.all_reduce(&v, 1);
    const int base = (ctx.rank / 2) * 2;
    ASSERT_DOUBLE_EQ(v, base + base + 1);
  });
}

TEST(CommComposition, InterleavedCollectivesOnParentAndChild) {
  // Collectives on a parent and a derived communicator interleave without
  // tag collisions.
  oc::run_cluster(4, [](oc::Context& ctx) {
    auto sub = ctx.world.split(ctx.rank % 2, ctx.rank);
    for (int round = 0; round < 3; ++round) {
      double a = 1.0;
      ctx.world.all_reduce(&a, 1);
      ASSERT_DOUBLE_EQ(a, 4.0);
      double b = 1.0;
      sub.all_reduce(&b, 1);
      ASSERT_DOUBLE_EQ(b, 2.0);
    }
  });
}

TEST(CommComposition, BroadcastOnNonPowerOfTwoGroups) {
  for (int p : {6, 7}) {
    oc::run_cluster(p, [&](oc::Context& ctx) {
      for (int root = 0; root < p; ++root) {
        std::vector<double> v(5, ctx.rank == root ? root * 1.25 : -1.0);
        ctx.world.broadcast(v.data(), 5, root);
        for (double x : v) ASSERT_DOUBLE_EQ(x, root * 1.25);
      }
    });
  }
}

// ---------------------------------------------------------------------------
// Arena stack discipline
// ---------------------------------------------------------------------------

TEST(ArenaScopes, MarkAndResetToNest) {
  ot::Arena arena("nest", 4096);
  auto a = arena.alloc<float>(Shape{8});
  const auto m1 = arena.mark();
  {
    ot::ArenaScope scope(arena);
    (void)arena.alloc<float>(Shape{64});
    {
      ot::ArenaScope inner(arena);
      (void)arena.alloc<float>(Shape{64});
    }
    (void)arena.alloc<float>(Shape{16});
  }
  EXPECT_EQ(arena.mark(), m1);  // both scopes fully unwound
  EXPECT_THROW(arena.reset_to(m1 + 64), optimus::util::CheckError);  // above offset
  arena.reset();
  EXPECT_EQ(arena.used(), 0u);
  (void)a;
}

// ---------------------------------------------------------------------------
// Config validation failure paths
// ---------------------------------------------------------------------------

TEST(ConfigValidation, MeshAndOneDConstraints) {
  om::TransformerConfig cfg;
  cfg.batch = 4;
  cfg.seq_len = 4;
  cfg.hidden = 16;
  cfg.heads = 4;
  cfg.vocab = 16;
  cfg.layers = 1;
  cfg.validate_for_mesh(2);  // fine
  cfg.validate_for_1d(4);    // fine
  auto bad = cfg;
  bad.batch = 3;
  EXPECT_THROW(bad.validate_for_mesh(2), optimus::util::CheckError);
  bad = cfg;
  bad.heads = 3;
  EXPECT_THROW(bad.validate_for_mesh(2), optimus::util::CheckError);
  EXPECT_THROW(bad.validate_for_1d(4), optimus::util::CheckError);
  bad = cfg;
  bad.vocab = 15;
  EXPECT_THROW(bad.validate_for_mesh(2), optimus::util::CheckError);
  bad = cfg;
  bad.hidden = 15;  // not divisible by heads
  EXPECT_THROW(bad.validate(), optimus::util::CheckError);
}

// ---------------------------------------------------------------------------
// Odd-shape end-to-end equivalence properties
// ---------------------------------------------------------------------------

namespace {

struct ShapeCase {
  ot::index_t b, s, h, n, v, layers, mlp_ratio;
  bool causal;
};

class OddShapeSweep : public ::testing::TestWithParam<ShapeCase> {};

ITensor tokens_for(const om::TransformerConfig& cfg, std::uint64_t seed) {
  optimus::util::Rng rng(seed);
  ITensor t(Shape{cfg.batch, cfg.seq_len});
  for (ot::index_t i = 0; i < t.numel(); ++i) {
    t[i] = static_cast<std::int32_t>(rng.uniform_index(cfg.vocab));
  }
  return t;
}

}  // namespace

TEST_P(OddShapeSweep, OptimusMatchesSerialAcrossShapes) {
  const ShapeCase c = GetParam();
  om::TransformerConfig cfg;
  cfg.batch = c.b;
  cfg.seq_len = c.s;
  cfg.hidden = c.h;
  cfg.heads = c.n;
  cfg.vocab = c.v;
  cfg.layers = c.layers;
  cfg.mlp_ratio = c.mlp_ratio;
  cfg.causal = c.causal;
  cfg.seed = 4242;
  const int q = 2;
  ITensor tokens = tokens_for(cfg, 77);
  ITensor labels(tokens.shape());
  for (ot::index_t b = 0; b < cfg.batch; ++b) {
    for (ot::index_t t = 0; t < cfg.seq_len; ++t) {
      labels.at(b, t) = t + 1 < cfg.seq_len ? tokens.at(b, t + 1) : -1;
    }
  }

  om::SerialTransformer<double> oracle(cfg);
  oracle.forward(tokens);
  const double loss_ref = oracle.lm_loss(labels);
  oracle.zero_grads();
  oracle.backward_lm();
  DTensor dx_ref = oracle.input_grad().clone();

  oc::run_cluster(q * q, [&](oc::Context& ctx) {
    optimus::mesh::Mesh2D mesh(ctx.world);
    optimus::core::OptimusTransformer<double> engine(cfg, mesh);
    engine.forward(tokens);
    ASSERT_NEAR(engine.lm_loss(labels), loss_ref, 1e-10);
    engine.zero_grads();
    engine.backward_lm();
    ASSERT_LT(ops::max_abs_diff(engine.input_grad(),
                                ot::matrix_block(dx_ref, q, mesh.row(), mesh.col())),
              1e-9);
  });
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, OddShapeSweep,
    ::testing::Values(ShapeCase{2, 1, 8, 2, 8, 1, 4, true},    // single-token sequences
                      ShapeCase{2, 7, 8, 2, 8, 1, 4, true},    // odd sequence length
                      ShapeCase{2, 3, 8, 2, 8, 1, 2, true},    // narrow MLP
                      ShapeCase{2, 4, 8, 2, 8, 1, 4, false},   // bidirectional attention
                      ShapeCase{4, 2, 24, 6, 10, 3, 4, true},  // 3 layers, 6 heads
                      ShapeCase{2, 5, 8, 8, 8, 1, 4, true}));  // head_dim = 1

TEST(OddShape, MegatronHandlesSingleHeadPerDevice) {
  // p == heads: each device owns exactly one attention head.
  om::TransformerConfig cfg;
  cfg.batch = 2;
  cfg.seq_len = 4;
  cfg.hidden = 8;
  cfg.heads = 4;
  cfg.vocab = 8;
  cfg.layers = 1;
  cfg.seed = 9;
  ITensor tokens = tokens_for(cfg, 3);
  om::SerialTransformer<double> oracle(cfg);
  DTensor hidden_ref = oracle.forward(tokens).clone();
  oc::run_cluster(4, [&](oc::Context& ctx) {
    optimus::megatron::MegatronTransformer<double> engine(cfg, ctx.world);
    ASSERT_LT(ops::max_abs_diff(engine.forward(tokens), hidden_ref), 1e-10);
  });
}

TEST(OddShape, OptimusQ4LargeMesh) {
  // Full 4×4 mesh (16 simulated devices) against the oracle.
  om::TransformerConfig cfg;
  cfg.batch = 4;
  cfg.seq_len = 3;
  cfg.hidden = 32;
  cfg.heads = 4;
  cfg.vocab = 16;
  cfg.layers = 1;
  cfg.seed = 11;
  ITensor tokens = tokens_for(cfg, 5);
  om::SerialTransformer<double> oracle(cfg);
  DTensor hidden_ref = oracle.forward(tokens).clone();
  oc::run_cluster(16, [&](oc::Context& ctx) {
    optimus::mesh::Mesh2D mesh(ctx.world);
    optimus::core::OptimusTransformer<double> engine(cfg, mesh);
    const DTensor& hidden = engine.forward(tokens);
    ASSERT_LT(ops::max_abs_diff(
                  hidden, ot::matrix_block(hidden_ref, 4, mesh.row(), mesh.col())),
              1e-10);
  });
}

TEST(OddShape, SingleDeviceOptimusIsExactlySerial) {
  // q = 1: every SUMMA call degenerates to a local GEMM. The loss formulas
  // differ algebraically (−log softmax vs log-sum-exp − x_l), so agreement is
  // to rounding, not bitwise.
  om::TransformerConfig cfg;
  cfg.batch = 2;
  cfg.seq_len = 4;
  cfg.hidden = 8;
  cfg.heads = 2;
  cfg.vocab = 8;
  cfg.layers = 2;
  cfg.seed = 13;
  ITensor tokens = tokens_for(cfg, 6);
  ITensor labels(tokens.shape());
  labels.fill(1);
  om::SerialTransformer<double> oracle(cfg);
  oracle.forward(tokens);
  const double loss_ref = oracle.lm_loss(labels);
  oc::run_cluster(1, [&](oc::Context& ctx) {
    optimus::mesh::Mesh2D mesh(ctx.world);
    optimus::core::OptimusTransformer<double> engine(cfg, mesh);
    engine.forward(tokens);
    ASSERT_NEAR(engine.lm_loss(labels), loss_ref, 1e-12);
  });
}
