// Tests for the paper's extension / future-work features implemented here:
//   * §6 operation fusion   — fused attention (no materialised probabilities)
//   * §3.2.3 method (2)     — immediate per-layer parameter updates with a
//                             shared one-layer gradient buffer
//   * §2.4 Cannon's algorithm — the other 2D matmul, point-to-point only
//   * checkpoint serialization (save/load round trips, shard files)

#include <gtest/gtest.h>

#include <cstdio>
#include <mutex>
#include <sstream>

#include "comm/cluster.hpp"
#include "core/optimus_model.hpp"
#include "mesh/mesh.hpp"
#include "model/attention.hpp"
#include "model/serial_model.hpp"
#include "runtime/checkpoint_io.hpp"
#include "runtime/data.hpp"
#include "runtime/optimizer.hpp"
#include "summa/summa.hpp"
#include "tensor/distribution.hpp"
#include "test_helpers.hpp"

namespace oc = optimus::comm;
namespace ocore = optimus::core;
namespace om = optimus::model;
namespace ort = optimus::runtime;
namespace ot = optimus::tensor;
namespace ops = optimus::tensor::ops;
using ot::DTensor;
using ot::ITensor;
using ot::Shape;

namespace {

om::TransformerConfig small_config() {
  om::TransformerConfig cfg;
  cfg.batch = 4;
  cfg.seq_len = 6;
  cfg.hidden = 16;
  cfg.heads = 4;
  cfg.vocab = 16;
  cfg.layers = 2;
  cfg.seed = 808;
  return cfg;
}

ITensor random_tokens(const om::TransformerConfig& cfg, std::uint64_t seed) {
  optimus::util::Rng rng(seed);
  ITensor t(Shape{cfg.batch, cfg.seq_len});
  for (ot::index_t i = 0; i < t.numel(); ++i) {
    t[i] = static_cast<std::int32_t>(rng.uniform_index(cfg.vocab));
  }
  return t;
}

ITensor shifted_labels(const ITensor& tokens, const om::TransformerConfig& cfg) {
  ITensor labels(tokens.shape());
  for (ot::index_t b = 0; b < cfg.batch; ++b) {
    for (ot::index_t t = 0; t < cfg.seq_len; ++t) {
      labels.at(b, t) = t + 1 < cfg.seq_len ? tokens.at(b, t + 1) : -1;
    }
  }
  return labels;
}

}  // namespace

// ---------------------------------------------------------------------------
// Fused attention (§6)
// ---------------------------------------------------------------------------

TEST(FusedAttention, ForwardMatchesUnfused) {
  const ot::index_t b = 2, s = 5, heads = 3, d = 4;
  optimus::util::Rng rng(1);
  DTensor qkv = optimus::testing::random_dtensor(Shape{b * s, heads * 3 * d}, rng);
  DTensor ctx_ref(Shape{b * s, heads * d}), probs(Shape{b * heads, s, s});
  om::attention_forward(qkv, b, s, heads, d, true, ctx_ref, probs);
  DTensor ctx_fused(ctx_ref.shape());
  DTensor scratch(Shape{om::attention_fused_scratch_elems(s)});
  om::attention_forward_fused(qkv, b, s, heads, d, true, ctx_fused, scratch);
  EXPECT_EQ(ops::max_abs_diff(ctx_ref, ctx_fused), 0.0);  // identical math
}

TEST(FusedAttention, BackwardMatchesUnfused) {
  const ot::index_t b = 2, s = 4, heads = 2, d = 3;
  optimus::util::Rng rng(2);
  DTensor qkv = optimus::testing::random_dtensor(Shape{b * s, heads * 3 * d}, rng);
  DTensor dctx = optimus::testing::random_dtensor(Shape{b * s, heads * d}, rng);
  DTensor ctx(dctx.shape()), probs(Shape{b * heads, s, s});
  om::attention_forward(qkv, b, s, heads, d, true, ctx, probs);
  DTensor dqkv_ref(qkv.shape());
  om::attention_backward(qkv, probs, dctx, b, s, heads, d, dqkv_ref);
  DTensor dqkv_fused(qkv.shape());
  DTensor scratch(Shape{om::attention_fused_scratch_elems(s)});
  om::attention_backward_fused(qkv, dctx, b, s, heads, d, true, dqkv_fused, scratch);
  EXPECT_EQ(ops::max_abs_diff(dqkv_ref, dqkv_fused), 0.0);
}

TEST(FusedAttention, NonCausalVariantAlsoMatches) {
  const ot::index_t b = 1, s = 4, heads = 2, d = 2;
  optimus::util::Rng rng(3);
  DTensor qkv = optimus::testing::random_dtensor(Shape{b * s, heads * 3 * d}, rng);
  DTensor ctx_ref(Shape{b * s, heads * d}), probs(Shape{b * heads, s, s});
  om::attention_forward(qkv, b, s, heads, d, false, ctx_ref, probs);
  DTensor ctx_fused(ctx_ref.shape());
  DTensor scratch(Shape{om::attention_fused_scratch_elems(s)});
  om::attention_forward_fused(qkv, b, s, heads, d, false, ctx_fused, scratch);
  EXPECT_EQ(ops::max_abs_diff(ctx_ref, ctx_fused), 0.0);
}

TEST(FusedAttention, EngineEquivalenceAndMemorySaving) {
  auto cfg = small_config();
  cfg.batch = 8;      // larger b·n/q makes the probs tensor dominate
  cfg.seq_len = 16;
  ITensor tokens = random_tokens(cfg, 4);
  ITensor labels = shifted_labels(tokens, cfg);

  double loss_plain = 0, loss_fused = 0;
  DTensor grad_plain, grad_fused;
  std::uint64_t peak_plain = 0, peak_fused = 0;
  std::mutex mu;
  for (bool fused : {false, true}) {
    auto report = oc::run_cluster(4, [&](oc::Context& ctx) {
      optimus::mesh::Mesh2D mesh(ctx.world);
      ocore::OptimusOptions opts;
      opts.fuse_attention = fused;
      ocore::OptimusTransformer<double> engine(cfg, mesh, opts);
      engine.forward(tokens);
      const double loss = engine.lm_loss(labels);
      engine.zero_grads();
      engine.backward_lm();
      if (ctx.rank == 0) {
        std::lock_guard<std::mutex> lock(mu);
        (fused ? loss_fused : loss_plain) = loss;
        (fused ? grad_fused : grad_plain) = engine.layer_grad(0).qkv_w.clone();
      }
    });
    (fused ? peak_fused : peak_plain) = report.max_peak_bytes();
  }
  EXPECT_EQ(loss_plain, loss_fused);  // bitwise identical numerics
  EXPECT_EQ(ops::max_abs_diff(grad_plain, grad_fused), 0.0);
  // probs would be (b/q)(n/q)s² = 4·2·256 = 2048 elems; fused scratch is
  // 2s² = 512 — the peak must drop.
  EXPECT_LT(peak_fused, peak_plain);
}

TEST(FusedAttention, ScratchTooSmallThrows) {
  const ot::index_t b = 1, s = 4, heads = 1, d = 2;
  DTensor qkv = DTensor::zeros(Shape{b * s, heads * 3 * d});
  DTensor ctx(Shape{b * s, heads * d});
  DTensor tiny(Shape{s});
  EXPECT_THROW(om::attention_forward_fused(qkv, b, s, heads, d, true, ctx, tiny),
               optimus::util::CheckError);
}

// ---------------------------------------------------------------------------
// Fused update (§3.2.3 method 2)
// ---------------------------------------------------------------------------

TEST(FusedUpdate, MatchesStandardSgdStep) {
  // Per-layer immediate updates with plain SGD are mathematically identical
  // to accumulate-then-step (updates are independent across parameters), so
  // the resulting models must agree to fp64 rounding.
  const auto cfg = small_config();
  ITensor tokens = random_tokens(cfg, 5);
  ITensor labels = shifted_labels(tokens, cfg);
  const double lr = 0.01;
  const int steps = 3;

  DTensor qkv_std, qkv_fused, emb_std, emb_fused;
  std::mutex mu;
  oc::run_cluster(4, [&](oc::Context& ctx) {
    optimus::mesh::Mesh2D mesh(ctx.world);
    ocore::OptimusTransformer<double> engine(cfg, mesh);
    ort::Sgd<double> opt;
    for (int i = 0; i < steps; ++i) {
      engine.forward(tokens);
      (void)engine.lm_loss(labels);
      engine.zero_grads();
      engine.backward_lm();
      opt.step(engine.parameters(), engine.gradients(), lr);
    }
    if (ctx.rank == 0) {
      std::lock_guard<std::mutex> lock(mu);
      qkv_std = engine.layer(1).qkv_w.clone();
      emb_std = engine.embedding_block().clone();
    }
  });
  oc::run_cluster(4, [&](oc::Context& ctx) {
    optimus::mesh::Mesh2D mesh(ctx.world);
    ocore::OptimusOptions opts;
    opts.fused_update = true;
    ocore::OptimusTransformer<double> engine(cfg, mesh, opts);
    for (int i = 0; i < steps; ++i) {
      engine.forward(tokens);
      (void)engine.lm_loss(labels);
      engine.backward_lm_fused_update(lr);
    }
    if (ctx.rank == 0) {
      std::lock_guard<std::mutex> lock(mu);
      qkv_fused = engine.layer(1).qkv_w.clone();
      emb_fused = engine.embedding_block().clone();
    }
  });
  EXPECT_LT(ops::max_abs_diff(qkv_std, qkv_fused), 1e-14);
  EXPECT_LT(ops::max_abs_diff(emb_std, emb_fused), 1e-14);
}

TEST(FusedUpdate, SharedGradientBufferSavesMemory) {
  auto cfg = small_config();
  cfg.layers = 8;  // make the per-layer gradient share visible
  ITensor tokens = random_tokens(cfg, 6);
  ITensor labels = shifted_labels(tokens, cfg);
  std::uint64_t peak_std = 0, peak_fused = 0;
  for (bool fused : {false, true}) {
    auto report = oc::run_cluster(4, [&](oc::Context& ctx) {
      optimus::mesh::Mesh2D mesh(ctx.world);
      ocore::OptimusOptions opts;
      opts.fused_update = fused;
      ocore::OptimusTransformer<float> engine(cfg, mesh, opts);
      engine.forward(tokens);
      (void)engine.lm_loss(labels);
      if (fused) {
        engine.backward_lm_fused_update(0.01);
      } else {
        engine.zero_grads();
        engine.backward_lm();
      }
    });
    (fused ? peak_fused : peak_std) = report.max_peak_bytes();
  }
  EXPECT_LT(peak_fused, peak_std);
}

TEST(FusedUpdate, GuardsAgainstMisuse) {
  const auto cfg = small_config();
  ITensor tokens = random_tokens(cfg, 7);
  ITensor labels = shifted_labels(tokens, cfg);
  oc::run_cluster(1, [&](oc::Context& ctx) {
    optimus::mesh::Mesh2D mesh(ctx.world);
    {
      ocore::OptimusOptions opts;
      opts.fused_update = true;
      ocore::OptimusTransformer<float> engine(cfg, mesh, opts);
      EXPECT_THROW(engine.gradients(), optimus::util::CheckError);
      engine.forward(tokens);
      (void)engine.lm_loss(labels);
      EXPECT_THROW(engine.backward_lm(), optimus::util::CheckError);
      EXPECT_THROW(engine.backward_lm_fused_update(-1.0), optimus::util::CheckError);
    }
    {
      ocore::OptimusTransformer<float> engine(cfg, mesh);  // not fused
      engine.forward(tokens);
      (void)engine.lm_loss(labels);
      EXPECT_THROW(engine.backward_lm_fused_update(0.01), optimus::util::CheckError);
    }
  });
}

TEST(FusedUpdate, TrainingReducesLoss) {
  const auto cfg = small_config();
  ITensor tokens = random_tokens(cfg, 8);
  ITensor labels = shifted_labels(tokens, cfg);
  oc::run_cluster(4, [&](oc::Context& ctx) {
    optimus::mesh::Mesh2D mesh(ctx.world);
    ocore::OptimusOptions opts;
    opts.fused_update = true;
    opts.fuse_attention = true;  // both fusions together
    ocore::OptimusTransformer<float> engine(cfg, mesh, opts);
    engine.forward(tokens);
    const float loss0 = engine.lm_loss(labels);
    for (int i = 0; i < 5; ++i) {
      engine.forward(tokens);
      (void)engine.lm_loss(labels);
      engine.backward_lm_fused_update(0.05);
    }
    engine.forward(tokens);
    ASSERT_LT(engine.lm_loss(labels), loss0);
  });
}

// ---------------------------------------------------------------------------
// Cannon's algorithm (§2.4)
// ---------------------------------------------------------------------------

namespace {

class CannonSweep : public ::testing::TestWithParam<int> {};

}  // namespace

TEST_P(CannonSweep, MatchesSerialProduct) {
  const int q = GetParam();
  optimus::util::Rng rng(40 + q);
  const ot::index_t m = 4 * q, k = 3 * q, n = 5 * q;
  DTensor A = optimus::testing::random_dtensor(Shape{m, k}, rng);
  DTensor B = optimus::testing::random_dtensor(Shape{k, n}, rng);
  DTensor ref = ops::matmul(A, B);
  DTensor C_global = DTensor::zeros(ref.shape());
  std::mutex mu;
  oc::run_cluster(q * q, [&](oc::Context& ctx) {
    optimus::mesh::Mesh2D mesh(ctx.world);
    DTensor a = ot::matrix_block(A, q, mesh.row(), mesh.col());
    DTensor b = ot::matrix_block(B, q, mesh.row(), mesh.col());
    DTensor c = DTensor::zeros(Shape{m / q, n / q});
    optimus::summa::cannon_ab(mesh, a, b, c);
    std::lock_guard<std::mutex> lock(mu);
    ot::set_matrix_block(C_global, q, mesh.row(), mesh.col(), c);
  });
  EXPECT_LT(ops::max_abs_diff(C_global, ref), 1e-11);
}

INSTANTIATE_TEST_SUITE_P(MeshSides, CannonSweep, ::testing::Values(1, 2, 3, 4));

TEST(Cannon, AccumulateAndWorkspace) {
  const int q = 2;
  optimus::util::Rng rng(50);
  DTensor A = optimus::testing::random_dtensor(Shape{4, 4}, rng);
  DTensor B = optimus::testing::random_dtensor(Shape{4, 4}, rng);
  DTensor ref = ops::matmul(A, B);
  std::mutex mu;
  DTensor C_global = DTensor::zeros(Shape{4, 4});
  oc::run_cluster(4, [&](oc::Context& ctx) {
    optimus::mesh::Mesh2D mesh(ctx.world);
    DTensor a = ot::matrix_block(A, q, mesh.row(), mesh.col());
    DTensor b = ot::matrix_block(B, q, mesh.row(), mesh.col());
    DTensor c = DTensor::full(Shape{2, 2}, 2.0);
    ot::Arena ws("cannon", 1 << 12);
    optimus::summa::cannon_ab(mesh, a, b, c, /*accumulate=*/true, &ws);
    ASSERT_EQ(ws.used(), 0u);  // workspace released
    std::lock_guard<std::mutex> lock(mu);
    ot::set_matrix_block(C_global, q, mesh.row(), mesh.col(), c);
  });
  for (ot::index_t i = 0; i < ref.numel(); ++i) EXPECT_NEAR(C_global[i], ref[i] + 2.0, 1e-12);
}

TEST(Cannon, UsesOnlyPointToPoint) {
  const int q = 3;
  auto report = oc::run_cluster(q * q, [&](oc::Context& ctx) {
    optimus::mesh::Mesh2D mesh(ctx.world);
    DTensor a = DTensor::zeros(Shape{2, 2});
    DTensor b = DTensor::zeros(Shape{2, 2});
    DTensor c = DTensor::zeros(Shape{2, 2});
    optimus::summa::cannon_ab(mesh, a, b, c);
  });
  const auto& st = report.ranks[4].stats;  // centre device shifts every round
  EXPECT_EQ(st.broadcast.calls, 0u);
  EXPECT_EQ(st.reduce.calls, 0u);
  EXPECT_GT(st.p2p_messages, 0u);
  // Per device: ≤ 2(q−1) shifts of each of A and B (alignment + rounds).
  EXPECT_LE(st.p2p_messages, static_cast<std::uint64_t>(4 * (q - 1)));
}

// ---------------------------------------------------------------------------
// Checkpoint serialization
// ---------------------------------------------------------------------------

TEST(CheckpointIo, StreamRoundTrip) {
  const auto cfg = small_config();
  om::SerialTransformer<double> a(cfg), b(cfg);
  // Perturb a, save, load into b, compare.
  for (auto* p : a.parameters()) {
    for (ot::index_t i = 0; i < p->numel(); ++i) (*p)[i] += 0.125;
  }
  std::stringstream buffer;
  ort::save_tensors(buffer, a.parameters());
  ort::load_tensors(buffer, b.parameters());
  auto pa = a.parameters();
  auto pb = b.parameters();
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_EQ(ops::max_abs_diff(*pa[i], *pb[i]), 0.0);
  }
}

TEST(CheckpointIo, RejectsWrongShapeAndDtype) {
  const auto cfg = small_config();
  om::SerialTransformer<double> a(cfg);
  std::stringstream buffer;
  ort::save_tensors(buffer, a.parameters());
  // Wrong dtype.
  om::SerialTransformer<float> f(cfg);
  EXPECT_THROW(ort::load_tensors(buffer, f.parameters()), optimus::util::CheckError);
  // Wrong shape.
  buffer.clear();
  buffer.seekg(0);
  auto cfg2 = cfg;
  cfg2.hidden = 32;
  om::SerialTransformer<double> wrong(cfg2);
  EXPECT_THROW(ort::load_tensors(buffer, wrong.parameters()), optimus::util::CheckError);
  // Garbage magic.
  std::stringstream junk("definitely not a checkpoint");
  EXPECT_THROW(ort::load_tensors(junk, a.parameters()), optimus::util::CheckError);
}

TEST(CheckpointIo, DistributedShardRoundTripPreservesTraining) {
  // Train on the mesh, save per-rank shards, reload into fresh engines and
  // check the forward pass is bit-identical.
  const auto cfg = small_config();
  ITensor tokens = random_tokens(cfg, 9);
  ITensor labels = shifted_labels(tokens, cfg);
  const std::string base = "/tmp/optimus_ckpt_test";
  DTensor hidden_before, hidden_after;
  std::mutex mu;
  oc::run_cluster(4, [&](oc::Context& ctx) {
    optimus::mesh::Mesh2D mesh(ctx.world);
    ocore::OptimusTransformer<double> engine(cfg, mesh);
    ort::Sgd<double> opt;
    for (int i = 0; i < 2; ++i) {
      engine.forward(tokens);
      (void)engine.lm_loss(labels);
      engine.zero_grads();
      engine.backward_lm();
      opt.step(engine.parameters(), engine.gradients(), 0.01);
    }
    ort::save_checkpoint(ort::shard_path(base, ctx.rank), engine.parameters());
    if (ctx.rank == 0) {
      std::lock_guard<std::mutex> lock(mu);
      hidden_before = engine.forward(tokens).clone();
    } else {
      engine.forward(tokens);  // keep collectives matched
    }
  });
  oc::run_cluster(4, [&](oc::Context& ctx) {
    optimus::mesh::Mesh2D mesh(ctx.world);
    ocore::OptimusTransformer<double> engine(cfg, mesh);
    ort::load_checkpoint(ort::shard_path(base, ctx.rank), engine.parameters());
    if (ctx.rank == 0) {
      std::lock_guard<std::mutex> lock(mu);
      hidden_after = engine.forward(tokens).clone();
    } else {
      engine.forward(tokens);
    }
  });
  for (int r = 0; r < 4; ++r) std::remove(ort::shard_path(base, r).c_str());
  EXPECT_EQ(ops::max_abs_diff(hidden_before, hidden_after), 0.0);
}

TEST(CheckpointIo, ShardPathFormatting) {
  EXPECT_EQ(ort::shard_path("m.ckpt", 3), "m.ckpt.rank3");
}
