// Equivalence tests for the Megatron 1D engine against the serial oracle:
// forward hidden states, LM loss, classification loss, input gradients and
// every parameter gradient (sliced to each device's partition) must match,
// for p ∈ {1, 2, 4}, with and without activation checkpointing.

#include <gtest/gtest.h>

#include <mutex>

#include "comm/cluster.hpp"
#include "megatron/megatron_model.hpp"
#include "model/serial_model.hpp"
#include "test_helpers.hpp"

namespace oc = optimus::comm;
namespace om = optimus::model;
namespace ot = optimus::tensor;
namespace ops = optimus::tensor::ops;
using optimus::megatron::MegatronTransformer;
using ot::DTensor;
using ot::ITensor;
using ot::Shape;

namespace {

om::TransformerConfig test_config() {
  om::TransformerConfig cfg;
  cfg.batch = 2;
  cfg.seq_len = 4;
  cfg.hidden = 16;
  cfg.heads = 4;
  cfg.vocab = 16;
  cfg.layers = 2;
  cfg.num_classes = 2;
  cfg.seed = 321;
  return cfg;
}

ITensor make_tokens(const om::TransformerConfig& cfg, std::uint64_t seed) {
  optimus::util::Rng rng(seed);
  ITensor t(Shape{cfg.batch, cfg.seq_len});
  for (ot::index_t i = 0; i < t.numel(); ++i) {
    t[i] = static_cast<std::int32_t>(rng.uniform_index(cfg.vocab));
  }
  return t;
}

ITensor make_labels(const ITensor& tokens, const om::TransformerConfig& cfg) {
  ITensor labels(tokens.shape());
  for (ot::index_t b = 0; b < cfg.batch; ++b) {
    for (ot::index_t t = 0; t < cfg.seq_len; ++t) {
      labels.at(b, t) = t + 1 < cfg.seq_len ? tokens.at(b, t + 1) : -1;
    }
  }
  return labels;
}

DTensor col_slice(const DTensor& m, ot::index_t c0, ot::index_t c1) {
  DTensor out(Shape{m.size(0), c1 - c0});
  for (ot::index_t r = 0; r < m.size(0); ++r) {
    for (ot::index_t c = c0; c < c1; ++c) out.at(r, c - c0) = m.at(r, c);
  }
  return out;
}

DTensor row_slice(const DTensor& m, ot::index_t r0, ot::index_t r1) {
  return m.row_range(r0, r1).clone();
}

struct MegatronCase {
  int p;
  bool checkpoint;
};

class MegatronSweep : public ::testing::TestWithParam<MegatronCase> {};

}  // namespace

TEST_P(MegatronSweep, MatchesSerialOracleEndToEnd) {
  const auto [p, checkpoint] = GetParam();
  const auto cfg = test_config();
  ITensor tokens = make_tokens(cfg, 42);
  ITensor labels = make_labels(tokens, cfg);

  // Serial oracle.
  om::SerialTransformer<double> oracle(cfg);
  DTensor hidden_ref = oracle.forward(tokens).clone();
  const double loss_ref = oracle.lm_loss(labels);
  oracle.zero_grads();
  oracle.backward_lm();
  DTensor dx0_ref = oracle.input_grad().clone();

  const ot::index_t h = cfg.hidden;
  const ot::index_t f = cfg.ffn_hidden();
  std::mutex mu;
  oc::run_cluster(p, [&](oc::Context& ctx) {
    MegatronTransformer<double> engine(cfg, ctx.world, checkpoint);
    const DTensor& hidden = engine.forward(tokens);
    const double loss = engine.lm_loss(labels);
    engine.zero_grads();
    engine.backward_lm();

    std::lock_guard<std::mutex> lock(mu);
    // Activations are replicated: every rank holds the full hidden state.
    ASSERT_LT(ops::max_abs_diff(hidden, hidden_ref), 1e-10);
    ASSERT_NEAR(loss, loss_ref, 1e-10);
    ASSERT_LT(ops::max_abs_diff(engine.input_grad(), dx0_ref), 1e-9);

    const int d = ctx.rank;
    // Vocab-parallel embedding gradient.
    DTensor demb_ref =
        row_slice(oracle.embedding_grad(), d * cfg.vocab / p, (d + 1) * cfg.vocab / p);
    ASSERT_LT(ops::max_abs_diff(engine.embedding_grad(), demb_ref), 1e-9);

    for (ot::index_t l = 0; l < cfg.layers; ++l) {
      auto& ref = oracle.layer_grad(l);
      auto& got = engine.layer_grad(l);
      // Replicated layernorm gradients.
      ASSERT_LT(ops::max_abs_diff(got.ln1_g, ref.ln1_g), 1e-9);
      ASSERT_LT(ops::max_abs_diff(got.ln2_b, ref.ln2_b), 1e-9);
      // Column-split gradients.
      ASSERT_LT(ops::max_abs_diff(got.qkv_w,
                                  col_slice(ref.qkv_w, d * 3 * h / p, (d + 1) * 3 * h / p)),
                1e-9);
      ASSERT_LT(ops::max_abs_diff(got.fc1_w, col_slice(ref.fc1_w, d * f / p, (d + 1) * f / p)),
                1e-9);
      // Row-split gradients.
      ASSERT_LT(
          ops::max_abs_diff(got.proj_w, row_slice(ref.proj_w, d * h / p, (d + 1) * h / p)),
          1e-9);
      ASSERT_LT(ops::max_abs_diff(got.fc2_w, row_slice(ref.fc2_w, d * f / p, (d + 1) * f / p)),
                1e-9);
      // Replicated bias gradients.
      ASSERT_LT(ops::max_abs_diff(got.proj_b, ref.proj_b), 1e-9);
      ASSERT_LT(ops::max_abs_diff(got.fc2_b, ref.fc2_b), 1e-9);
    }
  });
}

INSTANTIATE_TEST_SUITE_P(DeviceCounts, MegatronSweep,
                         ::testing::Values(MegatronCase{1, false}, MegatronCase{1, true},
                                           MegatronCase{2, false}, MegatronCase{2, true},
                                           MegatronCase{4, true}));

TEST(Megatron, ClsBranchMatchesSerial) {
  const auto cfg = test_config();
  ITensor tokens = make_tokens(cfg, 77);
  ITensor labels = ITensor::from_vector(Shape{cfg.batch}, {1, 0});

  om::SerialTransformer<double> oracle(cfg);
  oracle.forward(tokens);
  const double loss_ref = oracle.cls_loss(labels);
  oracle.zero_grads();
  oracle.backward_cls();
  DTensor dx0_ref = oracle.input_grad().clone();
  DTensor dcls_ref = *oracle.gradients()[oracle.gradients().size() - 2];  // cls_w grad

  oc::run_cluster(4, [&](oc::Context& ctx) {
    MegatronTransformer<double> engine(cfg, ctx.world);
    engine.forward(tokens);
    const double loss = engine.cls_loss(labels);
    engine.zero_grads();
    engine.backward_cls();
    ASSERT_NEAR(loss, loss_ref, 1e-10);
    ASSERT_LT(ops::max_abs_diff(engine.input_grad(), dx0_ref), 1e-9);
    ASSERT_LT(ops::max_abs_diff(*engine.gradients()[engine.gradients().size() - 2], dcls_ref),
              1e-9);
  });
}

TEST(Megatron, CheckpointingDoesNotChangeResults) {
  const auto cfg = test_config();
  ITensor tokens = make_tokens(cfg, 11);
  ITensor labels = make_labels(tokens, cfg);
  DTensor grad_nock, grad_ck;
  for (bool ck : {false, true}) {
    oc::run_cluster(2, [&](oc::Context& ctx) {
      MegatronTransformer<double> engine(cfg, ctx.world, ck);
      engine.forward(tokens);
      (void)engine.lm_loss(labels);
      engine.zero_grads();
      engine.backward_lm();
      if (ctx.rank == 0) {
        if (ck) {
          grad_ck = engine.layer_grad(0).qkv_w.clone();
        } else {
          grad_nock = engine.layer_grad(0).qkv_w.clone();
        }
      }
    });
  }
  // Recomputation is bit-identical (same deterministic ops).
  ASSERT_EQ(ops::max_abs_diff(grad_ck, grad_nock), 0.0);
}

TEST(Megatron, CommunicationVolumeMatchesTable1Forward) {
  // Forward: 2 all-reduces of bsh per layer plus the embedding assembly and
  // the lm-head terms. With the stem alone (no loss), the weighted units per
  // rank must be N·2·(2(p−1)/p)·bsh + embedding all-reduce.
  const auto cfg = test_config();
  const int p = 4;
  ITensor tokens = make_tokens(cfg, 5);
  auto report = oc::run_cluster(p, [&](oc::Context& ctx) {
    MegatronTransformer<double> engine(cfg, ctx.world);
    engine.forward(tokens);
  });
  const double bsh = static_cast<double>(cfg.tokens_per_batch() * cfg.hidden);
  const double ar_factor = 2.0 * (p - 1) / p;
  const double expected_stem = cfg.layers * 2 * ar_factor * bsh;
  const double expected_embed = ar_factor * bsh;
  EXPECT_NEAR(report.ranks[0].stats.allreduce.weighted, expected_stem + expected_embed, 1e-9);
}

TEST(Megatron, TrainingStepReducesLoss) {
  const auto cfg = test_config();
  ITensor tokens = make_tokens(cfg, 13);
  ITensor labels = make_labels(tokens, cfg);
  oc::run_cluster(4, [&](oc::Context& ctx) {
    MegatronTransformer<float> engine(cfg, ctx.world);
    engine.forward(tokens);
    const float loss0 = engine.lm_loss(labels);
    engine.zero_grads();
    engine.backward_lm();
    auto params = engine.parameters();
    auto grads = engine.gradients();
    for (std::size_t i = 0; i < params.size(); ++i) ops::axpy_(*params[i], -0.05f, *grads[i]);
    engine.forward(tokens);
    const float loss1 = engine.lm_loss(labels);
    ASSERT_LT(loss1, loss0);
  });
}
